// crashloop: the CI entry point for the crash-point enumeration
// campaign (storage/crash_campaign.h). Runs the full write/read ×
// {fail, tear} sweep against a scratch store and prints a one-line
// JSON summary on success — wired into tools/verify.sh and validated
// there with tools/json_check. Any crash point recovery cannot undo
// (byte mismatch, leaked page, failed validation, dead store) exits
// nonzero with the violating site in the error.
//
// Usage: crashloop [--device=file|mmap] [PATH]
//   PATH: scratch device file, default under /tmp

#include <cstdio>
#include <cstring>
#include <string>

#include "storage/crash_campaign.h"
#include "storage/fault.h"

int main(int argc, char** argv) {
  modb::CrashCampaignOptions options;
  options.path = "/tmp/modb_crashloop.bin";
  const char* device = "file";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--device=", 9) == 0) {
      device = argv[i] + 9;
    } else {
      options.path = argv[i];
    }
  }
  if (std::strcmp(device, "mmap") == 0) {
    options.device = modb::StoreDeviceKind::kMmap;
  } else if (std::strcmp(device, "file") != 0) {
    std::fprintf(stderr, "crashloop: unknown --device=%s (file|mmap)\n",
                 device);
    return 2;
  }

  modb::Result<modb::CrashCampaignReport> report =
      modb::RunCrashCampaign(options);
  modb::FaultInjector::Global().Disarm();
  if (!report.ok()) {
    if (report.status().code() == modb::StatusCode::kUnimplemented) {
      // MODB_FAULTS=OFF builds cannot enumerate crash points; report a
      // skip (valid JSON, distinct exit code) so CI wiring can tell
      // "not applicable" from "failed".
      std::printf("{\"crashloop\": \"skipped\", \"reason\": \"%s\"}\n",
                  "fault injection compiled out");
      return 0;
    }
    std::fprintf(stderr, "crashloop: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  const modb::CrashCampaignReport& r = *report;
  std::printf(
      "{\"crashloop\": \"ok\", \"device\": \"%s\", "
      "\"write_sites\": %llu, \"read_sites\": %llu, "
      "\"open_read_sites\": %llu, \"tear_modes\": %llu, \"runs\": %llu, "
      "\"crashes\": %llu, \"recoveries_verified\": %llu, "
      "\"preinit_reopen_failures\": %llu, \"retried_opens\": %llu, "
      "\"orphans_reclaimed\": %llu, \"pages_healed\": %llu, "
      "\"pinned_write_sites\": %llu, \"pinned_reader_runs\": %llu, "
      "\"pinned_views_verified\": %llu}\n",
      device,
      (unsigned long long)r.write_sites, (unsigned long long)r.read_sites,
      (unsigned long long)r.open_read_sites, (unsigned long long)r.tear_modes,
      (unsigned long long)r.runs, (unsigned long long)r.crashes,
      (unsigned long long)r.recoveries_verified,
      (unsigned long long)r.preinit_reopen_failures,
      (unsigned long long)r.retried_opens,
      (unsigned long long)r.orphans_reclaimed,
      (unsigned long long)r.pages_healed,
      (unsigned long long)r.pinned_write_sites,
      (unsigned long long)r.pinned_reader_runs,
      (unsigned long long)r.pinned_views_verified);
  return 0;
}
