// loadgen: closed-loop load generator for modbd. N client threads each
// keep one connection and issue a fixed mixed workload (Q1 select,
// filtered project, the Q2 index join, atinstant batch, present batch)
// back to back; per-kind p50/p99 latencies, error counts, and overall
// throughput land in a google-benchmark-schema JSON that
// bench_compare --serving gates.
//
//   loadgen --port=P [--host=127.0.0.1] [--clients=4] [--requests=32]
//           [--num-threads=1] [--flights=64] [--seed=99]
//           [--out=BENCH_serving.json] [--metrics-out=FILE]
//           [--verify] [--expect-rejections]
//
// --verify rebuilds the server's deterministic Db locally (same
// --flights/--seed) and fails unless every client's reply bytes are
// identical to each other AND to the locally executed query — the
// end-to-end determinism check.
//
// --expect-rejections flips the exit criterion for the overload probe:
// the run must observe at least one typed kResourceExhausted rejection
// and no hard errors.
//
// Ingest mode (the PR-8 closed ingest+query loop):
//
//   loadgen --ingest --port=P [--relation=fleet] [--objects=16]
//           [--fixes=4096] [--batch=64] [--clients=2] [--t0=0]
//           [--seal-units=0] [--out=BENCH_ingest.json] [--verify]
//
// One connection streams deterministic per-object random walks (seeded
// by --seed; dt = 1 starting at --t0) as kMutation batches while
// --clients concurrent connections query the live relation (select /
// atinstant batch / self index join / window aggregate) the whole
// time. --verify then quiesces and replays the identical batches into
// a local Db, failing unless the server's reply bytes for every query
// kind are byte-identical to the local ones — the live-path
// counterpart of the serving determinism check, and the over-the-wire
// form of the bulk-vs-incremental identity theorem (docs/INGEST.md).
//
// exit 0: no errors (and verification/rejection expectations held).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "db/modb.h"
#include "gen/flights_gen.h"
#include "obs/json.h"
#include "serve/client.h"
#include "serve/wire.h"

#ifndef MODB_BUILD_TYPE
#define MODB_BUILD_TYPE "unknown"
#endif

namespace {

using modb::QueryRequest;
using modb::FilterSpec;

struct Options {
  std::string host = "127.0.0.1";
  int port = 0;
  int clients = 4;
  int requests = 32;  // per client
  long num_threads = 1;
  int flights = 64;
  long seed = 99;
  std::string out = "BENCH_serving.json";
  bool out_set = false;
  std::string metrics_out;
  bool verify = false;
  bool expect_rejections = false;

  // Ingest mode.
  bool ingest = false;
  std::string relation = "fleet";
  long objects = 16;
  long fixes = 4096;  // total across all objects
  long batch = 64;    // fixes per mutation frame
  double t0 = 0;      // first fix timestamp (restarted stores continue)
  long seal_units = 0;
};

struct WorkloadKind {
  const char* name;
  QueryRequest request;
};

std::vector<modb::Instant> EvalInstants() {
  std::vector<modb::Instant> ts;
  for (double t = 0; t <= 24.0; t += 0.5) ts.push_back(t);
  return ts;
}

// The fixed workload mix, in issue order. Every request targets the
// resident "planes" relation modbd builds at startup.
std::vector<WorkloadKind> Workload(long num_threads) {
  std::vector<WorkloadKind> kinds;
  {
    QueryRequest q;  // Q1: airline = Lufthansa AND trajectory length
    q.kind = QueryRequest::Kind::kSelect;
    q.relation = "planes";
    q.filters.push_back({FilterSpec::Kind::kStringEquals, "airline",
                         "Lufthansa", 0, 0, 0});
    q.filters.push_back(
        {FilterSpec::Kind::kTrajectoryLengthAtLeast, "flight", "", 5000, 0,
         0});
    kinds.push_back({"q1_select", q});
  }
  {
    QueryRequest q;  // flights in the air at noon, id+airline only
    q.kind = QueryRequest::Kind::kProject;
    q.relation = "planes";
    q.filters.push_back(
        {FilterSpec::Kind::kPresentAt, "flight", "", 0, 12.0, 0});
    q.project = {"airline", "id"};
    kinds.push_back({"project", q});
  }
  {
    QueryRequest q;  // Q2: pairs of planes ever closer than 50
    q.kind = QueryRequest::Kind::kIndexJoin;
    q.relation = "planes";
    q.join_relation = "planes";
    q.attr = "flight";
    q.join_attr = "flight";
    q.distance = 50;
    q.distinct_pairs = true;
    kinds.push_back({"q2_index_join", q});
  }
  {
    QueryRequest q;  // every position at every half hour
    q.kind = QueryRequest::Kind::kAtInstantBatch;
    q.relation = "planes";
    q.attr = "flight";
    q.instants = EvalInstants();
    kinds.push_back({"atinstant_batch", q});
  }
  {
    QueryRequest q;  // presence mask over the same grid
    q.kind = QueryRequest::Kind::kPresentBatch;
    q.relation = "planes";
    q.attr = "flight";
    q.instants = EvalInstants();
    kinds.push_back({"present_batch", q});
  }
  for (WorkloadKind& k : kinds) k.request.num_threads = num_threads;
  return kinds;
}

struct ClientStats {
  // One latency vector per workload kind, ns.
  std::vector<std::vector<std::uint64_t>> latency_ns;
  // First successful reply's result block per kind (identity checks).
  std::vector<std::string> first_block;
  std::uint64_t errors = 0;
  std::uint64_t rejected = 0;
  std::string first_error;
};

void RunClient(const Options& opt, const std::vector<WorkloadKind>& kinds,
               ClientStats* stats) {
  stats->latency_ns.resize(kinds.size());
  stats->first_block.resize(kinds.size());
  auto note_error = [stats](const std::string& what) {
    ++stats->errors;
    if (stats->first_error.empty()) stats->first_error = what;
  };
  modb::Result<modb::serve::Client> client =
      modb::serve::Client::Connect(opt.host, opt.port);
  if (!client.ok()) {
    note_error("connect: " + client.status().ToString());
    return;
  }
  for (int r = 0; r < opt.requests; ++r) {
    const std::size_t k = std::size_t(r) % kinds.size();
    const auto start = std::chrono::steady_clock::now();
    modb::Result<modb::serve::Client::Reply> reply =
        client->Query(kinds[k].request);
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count();
    if (!reply.ok()) {
      note_error(std::string(kinds[k].name) + ": transport: " +
                 reply.status().ToString());
      return;  // the connection is unusable after a transport error
    }
    if (reply->status.code() == modb::StatusCode::kResourceExhausted) {
      ++stats->rejected;  // typed overload rejection: retryable, not an error
      continue;
    }
    if (!reply->status.ok()) {
      note_error(std::string(kinds[k].name) + ": " +
                 reply->status.ToString());
      continue;
    }
    stats->latency_ns[k].push_back(std::uint64_t(ns));
    if (stats->first_block[k].empty()) {
      stats->first_block[k] = reply->result_block;
    }
  }
}

std::uint64_t Percentile(std::vector<std::uint64_t> sorted, double p) {
  if (sorted.empty()) return 0;
  const std::size_t idx =
      std::size_t(double(sorted.size() - 1) * p + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

// Rebuilds the server's Db (same generator parameters) and returns the
// encoded result block for each workload kind, executed locally.
bool LocalBlocks(const Options& opt, const std::vector<WorkloadKind>& kinds,
                 std::vector<std::string>* blocks) {
  modb::FlightsOptions gen;
  gen.num_flights = opt.flights;
  gen.seed = std::uint64_t(opt.seed);
  modb::Result<modb::Relation> planes = modb::GeneratePlanes(gen);
  if (!planes.ok()) return false;
  modb::Db db;
  if (!db.Register(*std::move(planes)).ok()) return false;
  if (!db.BuildIndex("planes", "flight").ok()) return false;
  for (const WorkloadKind& k : kinds) {
    modb::ExecOptions options;
    options.parallel.num_threads = int(k.request.num_threads);
    modb::Result<modb::QueryResult> result = db.Run(k.request, options);
    if (!result.ok()) {
      std::fprintf(stderr, "loadgen: local %s failed: %s\n", k.name,
                   result.status().ToString().c_str());
      return false;
    }
    modb::Result<std::string> block =
        modb::serve::EncodeResultBlock(*result);
    if (!block.ok()) return false;
    blocks->push_back(*std::move(block));
  }
  return true;
}

// ---------------------------------------------------------------------------
// Ingest mode.

// The deterministic fleet: object o's walk is seeded from (seed, o), dt
// is 1 starting at --t0, and fixes interleave round-robin across
// objects so every batch advances the whole fleet. Both the wire path
// and the local --verify replay call this — identical batches by
// construction.
std::vector<modb::MutationRequest> GenBatches(const Options& opt) {
  const std::size_t n = std::size_t(opt.objects);
  std::vector<std::uint64_t> rng(n);
  std::vector<double> px(n), py(n);
  std::vector<std::string> ids(n);
  for (std::size_t o = 0; o < n; ++o) {
    rng[o] = std::uint64_t(opt.seed) * 6364136223846793005ULL +
             (std::uint64_t(o) + 1) * 1442695040888963407ULL;
    px[o] = double(o) * 10.0;
    py[o] = double(o) * -7.0;
    char buf[32];
    std::snprintf(buf, sizeof buf, "obj%05zu", o);
    ids[o] = buf;
  }
  auto step = [&rng](std::size_t o) {
    rng[o] = rng[o] * 6364136223846793005ULL + 1442695040888963407ULL;
    return double(std::int64_t((rng[o] >> 33) % 2001) - 1000) / 100.0;
  };
  std::vector<modb::MutationRequest> batches;
  modb::MutationRequest cur;
  cur.kind = modb::MutationRequest::Kind::kIngest;
  cur.relation = opt.relation;
  for (long i = 0; i < opt.fixes; ++i) {
    const std::size_t o = std::size_t(i) % n;
    const double t = opt.t0 + double(i / long(n));
    px[o] += step(o);
    py[o] += step(o);
    cur.fixes.push_back({ids[o], t, px[o], py[o]});
    if (long(cur.fixes.size()) >= opt.batch) {
      batches.push_back(std::move(cur));
      cur = modb::MutationRequest();
      cur.kind = modb::MutationRequest::Kind::kIngest;
      cur.relation = opt.relation;
    }
  }
  if (!cur.fixes.empty()) batches.push_back(std::move(cur));
  return batches;
}

// The query mix the concurrent clients loop over while ingest runs.
// Windows cover the whole fix time range [t0, t0 + steps].
std::vector<WorkloadKind> LiveWorkload(const Options& opt) {
  const double steps =
      opt.objects > 0 ? double(opt.fixes / opt.objects) : 0;
  std::vector<WorkloadKind> kinds;
  {
    QueryRequest q;  // the whole fleet, ids + trails
    q.kind = QueryRequest::Kind::kSelect;
    q.relation = opt.relation;
    kinds.push_back({"live_select", q});
  }
  {
    QueryRequest q;  // positions on a coarse instant grid
    q.kind = QueryRequest::Kind::kAtInstantBatch;
    q.relation = opt.relation;
    q.attr = "trail";
    const double dt = std::max(1.0, steps / 16.0);
    for (double t = opt.t0; t <= opt.t0 + steps; t += dt) {
      q.instants.push_back(t);
    }
    kinds.push_back({"live_atinstant", q});
  }
  {
    QueryRequest q;  // fleet pairs ever closer than 50
    q.kind = QueryRequest::Kind::kIndexJoin;
    q.relation = opt.relation;
    q.join_relation = opt.relation;
    q.attr = "trail";
    q.join_attr = "trail";
    q.distance = 50;
    q.distinct_pairs = true;
    kinds.push_back({"live_index_join", q});
  }
  {
    QueryRequest q;  // sliding windows over the whole ingest range
    q.kind = QueryRequest::Kind::kWindowAggregate;
    q.relation = opt.relation;
    q.attr = "trail";
    q.window_t0 = opt.t0;
    q.window_t1 = opt.t0 + steps + 1;
    q.window_width = std::max(1.0, steps / 4.0);
    q.window_step = q.window_width / 2;
    kinds.push_back({"live_window", q});
  }
  for (WorkloadKind& k : kinds) k.request.num_threads = opt.num_threads;
  return kinds;
}

// Loops the live workload on its own connection until ingest finishes.
void RunLiveClient(const Options& opt, const std::vector<WorkloadKind>& kinds,
                   const std::atomic<bool>* done, ClientStats* stats) {
  stats->latency_ns.resize(kinds.size());
  stats->first_block.resize(kinds.size());
  auto note_error = [stats](const std::string& what) {
    ++stats->errors;
    if (stats->first_error.empty()) stats->first_error = what;
  };
  modb::Result<modb::serve::Client> client =
      modb::serve::Client::Connect(opt.host, opt.port);
  if (!client.ok()) {
    note_error("connect: " + client.status().ToString());
    return;
  }
  for (std::size_t r = 0; !done->load(std::memory_order_relaxed); ++r) {
    const std::size_t k = r % kinds.size();
    const auto start = std::chrono::steady_clock::now();
    modb::Result<modb::serve::Client::Reply> reply =
        client->Query(kinds[k].request);
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count();
    if (!reply.ok()) {
      note_error(std::string(kinds[k].name) + ": transport: " +
                 reply.status().ToString());
      return;
    }
    if (reply->status.code() == modb::StatusCode::kResourceExhausted) {
      ++stats->rejected;
      continue;
    }
    if (!reply->status.ok()) {
      note_error(std::string(kinds[k].name) + ": " +
                 reply->status.ToString());
      continue;
    }
    stats->latency_ns[k].push_back(std::uint64_t(ns));
  }
}

int RunIngestMode(const Options& opt) {
  if (opt.objects < 1 || opt.fixes < 1 || opt.batch < 1) {
    std::fprintf(stderr,
                 "loadgen: --objects, --fixes and --batch must be >= 1\n");
    return 2;
  }
  const std::vector<modb::MutationRequest> batches = GenBatches(opt);
  const std::vector<WorkloadKind> kinds = LiveWorkload(opt);

  modb::Result<modb::serve::Client> ctl =
      modb::serve::Client::Connect(opt.host, opt.port);
  if (!ctl.ok()) {
    std::fprintf(stderr, "loadgen: connect: %s\n",
                 ctl.status().ToString().c_str());
    return 1;
  }
  {
    modb::MutationRequest reg;
    reg.kind = modb::MutationRequest::Kind::kRegisterLive;
    reg.relation = opt.relation;
    reg.seal_units = std::uint64_t(opt.seal_units < 0 ? 0 : opt.seal_units);
    modb::Result<modb::serve::Client::MutationReply> r = ctl->Mutate(reg);
    if (!r.ok()) {
      std::fprintf(stderr, "loadgen: register: transport: %s\n",
                   r.status().ToString().c_str());
      return 1;
    }
    // FailedPrecondition = already registered (modbd --live, or a rerun
    // against a recovered store) — the ingest target exists either way.
    if (!r->status.ok() &&
        r->status.code() != modb::StatusCode::kFailedPrecondition) {
      std::fprintf(stderr, "loadgen: register: %s\n",
                   r->status.ToString().c_str());
      return 1;
    }
  }

  std::atomic<bool> done{false};
  std::vector<ClientStats> qstats(std::size_t(opt.clients));
  std::vector<std::thread> threads;
  for (int c = 0; c < opt.clients; ++c) {
    threads.emplace_back(
        [&, c] { RunLiveClient(opt, kinds, &done, &qstats[std::size_t(c)]); });
  }

  // The ingest loop: one batch per round trip, closed loop.
  std::vector<std::uint64_t> batch_ns;
  std::uint64_t ingest_errors = 0, accepted = 0;
  std::string first_error;
  modb::MutationResult last_ack;
  std::uint64_t max_delta = 0;
  const auto wall_start = std::chrono::steady_clock::now();
  for (const modb::MutationRequest& b : batches) {
    const auto start = std::chrono::steady_clock::now();
    modb::Result<modb::serve::Client::MutationReply> r = ctl->Mutate(b);
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count();
    if (!r.ok()) {
      ++ingest_errors;
      if (first_error.empty()) {
        first_error = "ingest: transport: " + r.status().ToString();
      }
      break;  // the connection is unusable
    }
    if (!r->status.ok()) {
      ++ingest_errors;
      if (first_error.empty()) {
        first_error = "ingest: " + r->status.ToString();
      }
      continue;  // a rejected batch leaves the server untouched
    }
    batch_ns.push_back(std::uint64_t(ns));
    accepted += r->ack.accepted;
    max_delta = std::max(max_delta, r->ack.delta_entries);
    last_ack = r->ack;
  }
  const std::uint64_t wall_ns =
      std::uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - wall_start)
                        .count());
  done.store(true, std::memory_order_relaxed);
  for (std::thread& t : threads) t.join();

  // Merge query-side stats.
  std::uint64_t qerrors = 0, qrejected = 0, qcompleted = 0;
  std::vector<std::vector<std::uint64_t>> merged(kinds.size());
  for (const ClientStats& s : qstats) {
    qerrors += s.errors;
    qrejected += s.rejected;
    if (first_error.empty()) first_error = s.first_error;
    for (std::size_t k = 0; k < kinds.size(); ++k) {
      qcompleted += s.latency_ns[k].size();
      merged[k].insert(merged[k].end(), s.latency_ns[k].begin(),
                       s.latency_ns[k].end());
    }
  }
  std::vector<std::uint64_t> all;
  for (std::vector<std::uint64_t>& m : merged) {
    std::sort(m.begin(), m.end());
    all.insert(all.end(), m.begin(), m.end());
  }
  std::sort(all.begin(), all.end());
  std::sort(batch_ns.begin(), batch_ns.end());
  const double fix_rate =
      wall_ns > 0 ? double(accepted) * 1e9 / double(wall_ns) : 0;

  // Quiesced verification: replay the identical batches into a local
  // Db, then byte-compare every query kind's result block. Layering on
  // the server (sealed vs merged vs in-tail) is invisible by the
  // identity theorem, so no flush is needed — only quiescence.
  int verify_failures = 0;
  if (opt.verify) {
    modb::Db local;
    modb::ingest::LiveOptions live;
    if (opt.seal_units > 0) live.seal_units = std::size_t(opt.seal_units);
    if (!local.RegisterLive(opt.relation, live).ok()) {
      std::fprintf(stderr, "loadgen: local register failed\n");
      return 1;
    }
    for (const modb::MutationRequest& b : batches) {
      if (!local.Apply(b).ok()) {
        std::fprintf(stderr, "loadgen: local replay failed\n");
        return 1;
      }
    }
    for (const WorkloadKind& k : kinds) {
      modb::ExecOptions options;
      options.parallel.num_threads = int(k.request.num_threads);
      modb::Result<modb::QueryResult> result = local.Run(k.request, options);
      if (!result.ok()) {
        std::fprintf(stderr, "loadgen: local %s failed: %s\n", k.name,
                     result.status().ToString().c_str());
        return 1;
      }
      modb::Result<std::string> block =
          modb::serve::EncodeResultBlock(*result);
      if (!block.ok()) return 1;
      modb::Result<modb::serve::Client::Reply> remote =
          ctl->Query(k.request);
      if (!remote.ok() || !remote->status.ok()) {
        std::fprintf(stderr, "loadgen: VERIFY: remote %s failed\n", k.name);
        ++verify_failures;
        continue;
      }
      if (remote->result_block != *block) {
        std::fprintf(stderr,
                     "loadgen: VERIFY FAILED: %s reply differs from the "
                     "local replay of the same batches\n",
                     k.name);
        ++verify_failures;
      }
    }
    if (verify_failures == 0) {
      std::printf("loadgen: verify passed: %zu query kinds byte-identical "
                  "to the local replay\n",
                  kinds.size());
    }
  }

  const std::uint64_t errors = ingest_errors + qerrors;
  std::printf(
      "loadgen: ingest %llu/%ld fixes in %zu batches (%.0f fixes/s), "
      "%llu query ok, %llu rejected, %llu errors, epoch %llu\n",
      (unsigned long long)accepted, opt.fixes, batches.size(), fix_rate,
      (unsigned long long)qcompleted, (unsigned long long)qrejected,
      (unsigned long long)errors, (unsigned long long)last_ack.epoch);
  if (!first_error.empty()) {
    std::fprintf(stderr, "loadgen: first error: %s\n", first_error.c_str());
  }

  if (!opt.out.empty()) {
    using modb::obs::JsonValue;
    JsonValue ingest = JsonValue::Object();
    ingest.Set("objects", JsonValue::Int(std::uint64_t(opt.objects)));
    ingest.Set("fixes_sent", JsonValue::Int(std::uint64_t(opt.fixes)));
    ingest.Set("fixes_accepted", JsonValue::Int(accepted));
    ingest.Set("batches", JsonValue::Int(std::uint64_t(batches.size())));
    ingest.Set("errors", JsonValue::Int(errors));
    ingest.Set("rejected", JsonValue::Int(qrejected));
    ingest.Set("queries_completed", JsonValue::Int(qcompleted));
    ingest.Set("wall_ns", JsonValue::Int(wall_ns));
    ingest.Set("fix_rate", JsonValue::Number(fix_rate));
    ingest.Set("max_delta_entries", JsonValue::Int(max_delta));
    ingest.Set("final_base_entries", JsonValue::Int(last_ack.base_entries));
    ingest.Set("final_delta_entries", JsonValue::Int(last_ack.delta_entries));
    ingest.Set("final_mem_units", JsonValue::Int(last_ack.mem_units));
    ingest.Set("merges", JsonValue::Int(last_ack.merges));
    ingest.Set("final_epoch", JsonValue::Int(last_ack.epoch));
    JsonValue context = JsonValue::Object();
    context.Set("num_cpus", JsonValue::Int(std::max(
                                1u, std::thread::hardware_concurrency())));
    context.Set("modb_build_type", JsonValue::Str(MODB_BUILD_TYPE));
    context.Set("modb_ingest", std::move(ingest));
    JsonValue benchmarks = JsonValue::Array();
    auto add_row = [&benchmarks](const std::string& name, std::uint64_t ns,
                                 std::uint64_t iterations) {
      JsonValue row = JsonValue::Object();
      row.Set("name", JsonValue::Str(name));
      row.Set("run_type", JsonValue::Str("iteration"));
      row.Set("iterations", JsonValue::Int(iterations));
      row.Set("real_time", JsonValue::Int(ns));
      row.Set("cpu_time", JsonValue::Int(ns));
      row.Set("time_unit", JsonValue::Str("ns"));
      benchmarks.Append(std::move(row));
    };
    add_row("INGEST_batch/p50", Percentile(batch_ns, 0.50), batch_ns.size());
    add_row("INGEST_batch/p99", Percentile(batch_ns, 0.99), batch_ns.size());
    for (std::size_t k = 0; k < kinds.size(); ++k) {
      const std::string base = std::string("LIVE_") + kinds[k].name;
      add_row(base + "/p50", Percentile(merged[k], 0.50), merged[k].size());
      add_row(base + "/p99", Percentile(merged[k], 0.99), merged[k].size());
    }
    add_row("LIVE_all/p50", Percentile(all, 0.50), all.size());
    add_row("LIVE_all/p99", Percentile(all, 0.99), all.size());
    JsonValue doc = JsonValue::Object();
    doc.Set("context", std::move(context));
    doc.Set("benchmarks", std::move(benchmarks));
    std::ofstream out(opt.out, std::ios::binary | std::ios::trunc);
    out << doc.Write() << "\n";
    if (!out) {
      std::fprintf(stderr, "loadgen: cannot write %s\n", opt.out.c_str());
      return 1;
    }
    std::printf("loadgen: wrote %s\n", opt.out.c_str());
  }

  if (!opt.metrics_out.empty()) {
    modb::Result<std::string> metrics =
        modb::serve::FetchMetricsJson(opt.host, opt.port);
    if (!metrics.ok()) {
      std::fprintf(stderr, "loadgen: fetching /metrics: %s\n",
                   metrics.status().ToString().c_str());
      return 1;
    }
    std::ofstream out(opt.metrics_out, std::ios::binary | std::ios::trunc);
    out << *metrics;
    if (!out) {
      std::fprintf(stderr, "loadgen: cannot write %s\n",
                   opt.metrics_out.c_str());
      return 1;
    }
    std::printf("loadgen: wrote %s\n", opt.metrics_out.c_str());
  }

  if (errors != 0) return 1;
  if (verify_failures != 0) return 1;
  if (accepted == 0) {
    std::fprintf(stderr, "loadgen: no fix was accepted\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  auto parse_long = [](const char* arg, const char* flag,
                       long* out) -> bool {
    const std::size_t n = std::strlen(flag);
    if (std::strncmp(arg, flag, n) != 0 || arg[n] != '=') return false;
    char* end = nullptr;
    *out = std::strtol(arg + n + 1, &end, 10);
    return end != nullptr && *end == '\0';
  };
  auto parse_str = [](const char* arg, const char* flag,
                      std::string* out) -> bool {
    const std::size_t n = std::strlen(flag);
    if (std::strncmp(arg, flag, n) != 0 || arg[n] != '=') return false;
    *out = arg + n + 1;
    return true;
  };
  for (int i = 1; i < argc; ++i) {
    long v;
    if (parse_long(argv[i], "--port", &v)) {
      opt.port = int(v);
    } else if (parse_long(argv[i], "--clients", &v)) {
      opt.clients = int(v);
    } else if (parse_long(argv[i], "--requests", &v)) {
      opt.requests = int(v);
    } else if (parse_long(argv[i], "--num-threads", &v)) {
      opt.num_threads = v;
    } else if (parse_long(argv[i], "--flights", &v)) {
      opt.flights = int(v);
    } else if (parse_long(argv[i], "--seed", &v)) {
      opt.seed = v;
    } else if (parse_long(argv[i], "--objects", &v)) {
      opt.objects = v;
    } else if (parse_long(argv[i], "--fixes", &v)) {
      opt.fixes = v;
    } else if (parse_long(argv[i], "--batch", &v)) {
      opt.batch = v;
    } else if (parse_long(argv[i], "--seal-units", &v)) {
      opt.seal_units = v;
    } else if (parse_long(argv[i], "--t0", &v)) {
      opt.t0 = double(v);
    } else if (parse_str(argv[i], "--host", &opt.host) ||
               parse_str(argv[i], "--relation", &opt.relation) ||
               parse_str(argv[i], "--metrics-out", &opt.metrics_out)) {
    } else if (parse_str(argv[i], "--out", &opt.out)) {
      opt.out_set = true;
    } else if (std::strcmp(argv[i], "--ingest") == 0) {
      opt.ingest = true;
    } else if (std::strcmp(argv[i], "--verify") == 0) {
      opt.verify = true;
    } else if (std::strcmp(argv[i], "--expect-rejections") == 0) {
      opt.expect_rejections = true;
    } else {
      std::fprintf(stderr, "loadgen: unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  if (opt.port == 0) {
    std::fprintf(stderr, "loadgen: --port is required\n");
    return 2;
  }
  if (opt.ingest) {
    if (!opt.out_set) opt.out = "BENCH_ingest.json";
    return RunIngestMode(opt);
  }

  const std::vector<WorkloadKind> kinds = Workload(opt.num_threads);
  std::vector<ClientStats> stats(std::size_t(opt.clients));
  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int c = 0; c < opt.clients; ++c) {
    threads.emplace_back(
        [&, c] { RunClient(opt, kinds, &stats[std::size_t(c)]); });
  }
  for (std::thread& t : threads) t.join();
  const std::uint64_t wall_ns =
      std::uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - wall_start)
                        .count());

  // Merge.
  std::uint64_t errors = 0, rejected = 0, completed = 0;
  std::string first_error;
  std::vector<std::vector<std::uint64_t>> merged(kinds.size());
  for (const ClientStats& s : stats) {
    errors += s.errors;
    rejected += s.rejected;
    if (first_error.empty()) first_error = s.first_error;
    for (std::size_t k = 0; k < kinds.size(); ++k) {
      completed += s.latency_ns[k].size();
      merged[k].insert(merged[k].end(), s.latency_ns[k].begin(),
                       s.latency_ns[k].end());
    }
  }
  std::vector<std::uint64_t> all;
  for (std::vector<std::uint64_t>& m : merged) {
    std::sort(m.begin(), m.end());
    all.insert(all.end(), m.begin(), m.end());
  }
  std::sort(all.begin(), all.end());
  const double qps =
      wall_ns > 0 ? double(completed) * 1e9 / double(wall_ns) : 0;

  // Cross-client + local byte identity.
  int verify_failures = 0;
  if (opt.verify) {
    std::vector<std::string> local;
    if (!LocalBlocks(opt, kinds, &local)) {
      std::fprintf(stderr, "loadgen: building local reference failed\n");
      return 1;
    }
    for (std::size_t k = 0; k < kinds.size(); ++k) {
      for (const ClientStats& s : stats) {
        if (s.first_block[k].empty()) continue;  // no success for this kind
        if (s.first_block[k] != local[k]) {
          std::fprintf(stderr,
                       "loadgen: VERIFY FAILED: %s reply differs from the "
                       "direct library result\n",
                       kinds[k].name);
          ++verify_failures;
          break;
        }
      }
    }
  }

  // Report.
  std::printf("loadgen: %d clients x %d requests: %llu ok, %llu rejected, "
              "%llu errors, %.1f qps\n",
              opt.clients, opt.requests, (unsigned long long)completed,
              (unsigned long long)rejected, (unsigned long long)errors, qps);
  if (!first_error.empty()) {
    std::fprintf(stderr, "loadgen: first error: %s\n", first_error.c_str());
  }

  if (!opt.out.empty()) {
    using modb::obs::JsonValue;
    JsonValue serving = JsonValue::Object();
    serving.Set("clients", JsonValue::Int(std::uint64_t(opt.clients)));
    serving.Set("requests_per_client",
                JsonValue::Int(std::uint64_t(opt.requests)));
    serving.Set("completed", JsonValue::Int(completed));
    serving.Set("errors", JsonValue::Int(errors));
    serving.Set("rejected", JsonValue::Int(rejected));
    serving.Set("wall_ns", JsonValue::Int(wall_ns));
    serving.Set("qps", JsonValue::Number(qps));
    JsonValue context = JsonValue::Object();
    context.Set("num_cpus", JsonValue::Int(std::max(
                                1u, std::thread::hardware_concurrency())));
    context.Set("modb_build_type", JsonValue::Str(MODB_BUILD_TYPE));
    context.Set("modb_serving", std::move(serving));
    JsonValue benchmarks = JsonValue::Array();
    auto add_row = [&benchmarks](const std::string& name, std::uint64_t ns,
                                 std::uint64_t iterations) {
      JsonValue row = JsonValue::Object();
      row.Set("name", JsonValue::Str(name));
      row.Set("run_type", JsonValue::Str("iteration"));
      row.Set("iterations", JsonValue::Int(iterations));
      row.Set("real_time", JsonValue::Int(ns));
      row.Set("cpu_time", JsonValue::Int(ns));
      row.Set("time_unit", JsonValue::Str("ns"));
      benchmarks.Append(std::move(row));
    };
    for (std::size_t k = 0; k < kinds.size(); ++k) {
      const std::string base = std::string("SERVE_") + kinds[k].name;
      add_row(base + "/p50", Percentile(merged[k], 0.50), merged[k].size());
      add_row(base + "/p99", Percentile(merged[k], 0.99), merged[k].size());
    }
    add_row("SERVE_all/p50", Percentile(all, 0.50), all.size());
    add_row("SERVE_all/p99", Percentile(all, 0.99), all.size());
    JsonValue doc = JsonValue::Object();
    doc.Set("context", std::move(context));
    doc.Set("benchmarks", std::move(benchmarks));
    std::ofstream out(opt.out, std::ios::binary | std::ios::trunc);
    out << doc.Write() << "\n";
    if (!out) {
      std::fprintf(stderr, "loadgen: cannot write %s\n", opt.out.c_str());
      return 1;
    }
    std::printf("loadgen: wrote %s\n", opt.out.c_str());
  }

  if (!opt.metrics_out.empty()) {
    modb::Result<std::string> metrics =
        modb::serve::FetchMetricsJson(opt.host, opt.port);
    if (!metrics.ok()) {
      std::fprintf(stderr, "loadgen: fetching /metrics: %s\n",
                   metrics.status().ToString().c_str());
      return 1;
    }
    std::ofstream out(opt.metrics_out, std::ios::binary | std::ios::trunc);
    out << *metrics;
    if (!out) {
      std::fprintf(stderr, "loadgen: cannot write %s\n",
                   opt.metrics_out.c_str());
      return 1;
    }
    std::printf("loadgen: wrote %s\n", opt.metrics_out.c_str());
  }

  if (errors != 0) return 1;
  if (verify_failures != 0) return 1;
  if (opt.expect_rejections && rejected == 0) {
    std::fprintf(stderr,
                 "loadgen: expected typed rejections under overload, saw "
                 "none\n");
    return 1;
  }
  if (!opt.expect_rejections && completed == 0) {
    std::fprintf(stderr, "loadgen: no request completed\n");
    return 1;
  }
  return 0;
}
