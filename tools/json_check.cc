// json_check: validates that each argument file parses as a complete
// JSON document. The bench_json CMake target runs it over every
// BENCH_<name>.json and METRICS_<name>.json it produces, so a bench that
// emits malformed JSON fails the build step instead of silently
// corrupting the perf-trajectory record.
//
// Usage: json_check FILE [FILE...]   (exit 0 iff every file is valid)

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/json.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: json_check FILE [FILE...]\n");
    return 2;
  }
  int failures = 0;
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "json_check: cannot open %s\n", argv[i]);
      ++failures;
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    if (text.empty()) {
      std::fprintf(stderr, "json_check: %s is empty\n", argv[i]);
      ++failures;
      continue;
    }
    auto parsed = modb::obs::JsonValue::Parse(text);
    if (!parsed.ok()) {
      std::fprintf(stderr, "json_check: %s: %s\n", argv[i],
                   parsed.status().ToString().c_str());
      ++failures;
      continue;
    }
    std::printf("json_check: %s OK (%zu bytes)\n", argv[i], text.size());
  }
  return failures == 0 ? 0 : 1;
}
