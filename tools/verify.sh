#!/usr/bin/env bash
# CI driver: configure, build, and test the three configurations that
# must stay green —
#   default       RelWithDebInfo, metrics off by default, fault hooks on
#   asan-metrics  ASan+UBSan with the metrics registry enabled
#   nometrics     metrics AND fault hooks compiled out (stub paths)
# Usage: tools/verify.sh [preset ...]   (defaults to all three)
set -euo pipefail
cd "$(dirname "$0")/.."

presets=("$@")
if [ ${#presets[@]} -eq 0 ]; then
  presets=(default asan-metrics nometrics)
fi

declare -A preset_dirs=(
  [default]=build [asan]=build-asan
  [asan-metrics]=build-asan-metrics [nometrics]=build-nometrics
)

# Crash-point enumeration (storage/crash_campaign.h): every device I/O
# of a commit workload is crashed — hard fail and torn write — and
# recovery must land on a committed state with zero leaked pages. Runs
# on every fault-enabled preset (crashloop self-reports a skip on
# nometrics, where the hooks are compiled out); the one-line JSON
# summary is gated through json_check like the bench exports.
run_crashloop() {
  local preset="$1" dir="${preset_dirs[$1]:-build}"
  [ -x "$dir/tools/crashloop" ] || return 0
  echo "==== [$preset] crash campaign ===="
  local out="$dir/CRASHLOOP_${preset}.json"
  "$dir/tools/crashloop" "$dir/crashloop_scratch.bin" | tee "$out"
  "$dir/tools/json_check" "$out"
  rm -f "$dir/crashloop_scratch.bin"
}

jobs=$(nproc 2>/dev/null || echo 4)
for preset in "${presets[@]}"; do
  echo "==== [$preset] configure ===="
  cmake --preset "$preset"
  echo "==== [$preset] build ===="
  cmake --build --preset "$preset" -j "$jobs"
  echo "==== [$preset] test ===="
  ctest --preset "$preset" -j "$jobs"
  run_crashloop "$preset"
done

# Perf smoke on the default (RelWithDebInfo) build: export the key
# query/batch benchmarks to repo-root BENCH_*.json snapshots and gate
# them with bench_compare — >15% cpu_time growth on any benchmark that
# also exists in the previous snapshot fails, same as a test failure.
run_perf_smoke() {
  local name="$1" binary="$2" filter="$3"
  local out="BENCH_${name}.json"
  local prev=""
  if [ -f "$out" ]; then
    prev="$(mktemp)"
    cp "$out" "$prev"
  fi
  "build/bench/${binary}" \
    --benchmark_filter="$filter" \
    --benchmark_min_time=0.1 \
    --benchmark_format=json \
    --benchmark_out="$out" \
    --benchmark_out_format=json
  build/tools/json_check "$out"
  if [ -n "$prev" ]; then
    build/tools/bench_compare "$prev" "$out" --threshold=0.15
    rm -f "$prev"
  else
    echo "perf-smoke: no previous $out snapshot, gate skipped"
  fi
}

if [ -x build/bench/bench_queries ] && [ -x build/bench/bench_batch ]; then
  echo "==== perf smoke ===="
  run_perf_smoke queries bench_queries \
    'BM_Q1_TrajectoryLength/64|BM_Q2_Join_RTree/64|BM_Q2_Join_RTree_Prebuilt/64'
  run_perf_smoke batch bench_batch \
    'BM_AtInstant_Batch/10000/1024|BM_AtInstant_Batch/16384/16384'
else
  echo "==== perf smoke skipped (default build not present) ===="
fi

echo "==== all presets green: ${presets[*]} ===="
