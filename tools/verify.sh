#!/usr/bin/env bash
# CI driver: configure, build, and test the three configurations that
# must stay green —
#   default       RelWithDebInfo, metrics off by default, fault hooks on
#   asan-metrics  ASan+UBSan with the metrics registry enabled
#   nometrics     metrics AND fault hooks compiled out (stub paths)
# Usage: tools/verify.sh [preset ...]   (defaults to all three)
set -euo pipefail
cd "$(dirname "$0")/.."

presets=("$@")
if [ ${#presets[@]} -eq 0 ]; then
  presets=(default asan-metrics nometrics)
fi

jobs=$(nproc 2>/dev/null || echo 4)
for preset in "${presets[@]}"; do
  echo "==== [$preset] configure ===="
  cmake --preset "$preset"
  echo "==== [$preset] build ===="
  cmake --build --preset "$preset" -j "$jobs"
  echo "==== [$preset] test ===="
  ctest --preset "$preset" -j "$jobs"
done
echo "==== all presets green: ${presets[*]} ===="
