#!/usr/bin/env bash
# CI driver: configure, build, and test the three configurations that
# must stay green —
#   default       RelWithDebInfo, metrics off by default, fault hooks on
#   asan-metrics  ASan+UBSan with the metrics registry enabled
#   nometrics     metrics AND fault hooks compiled out (stub paths)
# then a Release (-O3 -DNDEBUG) build runs the perf smoke + thread
# scaling gates, re-recording the repo-root BENCH_*.json snapshots.
# Usage: tools/verify.sh [preset ...]   (defaults to all three)
set -euo pipefail
cd "$(dirname "$0")/.."

presets=("$@")
if [ ${#presets[@]} -eq 0 ]; then
  presets=(default asan-metrics nometrics)
fi

declare -A preset_dirs=(
  [default]=build [release]=build-release [asan]=build-asan
  [asan-metrics]=build-asan-metrics [nometrics]=build-nometrics
)

# Crash-point enumeration (storage/crash_campaign.h): every device I/O
# of a commit workload is crashed — hard fail and torn write — and
# recovery must land on a committed state with zero leaked pages. Runs
# on every fault-enabled preset (crashloop self-reports a skip on
# nometrics, where the hooks are compiled out) and on BOTH PageDevice
# kinds — the two campaigns must produce byte-identical summaries,
# since the devices write the same format and the recovery invariants
# cannot depend on which one backed the store. The one-line JSON
# summaries are gated through json_check like the bench exports.
run_crashloop() {
  local preset="$1" dir="${preset_dirs[$1]:-build}"
  [ -x "$dir/tools/crashloop" ] || return 0
  local device
  for device in file mmap; do
    echo "==== [$preset] crash campaign ($device device) ===="
    local out="$dir/CRASHLOOP_${preset}_${device}.json"
    "$dir/tools/crashloop" --device="$device" \
      "$dir/crashloop_scratch.bin" | tee "$out"
    "$dir/tools/json_check" "$out"
    rm -f "$dir/crashloop_scratch.bin"
  done
  # Byte-identical apart from the self-describing "device" field.
  diff <(sed 's/"device": "[a-z]*", //' \
             "$dir/CRASHLOOP_${preset}_file.json") \
       <(sed 's/"device": "[a-z]*", //' \
             "$dir/CRASHLOOP_${preset}_mmap.json") || {
    echo "crashloop: file and mmap campaigns diverged"
    return 1
  }
}

# Device smoke: re-run the device-parameterized spill/store/epoch
# suites selecting one PageDevice kind at a time (the suites are
# TEST_P over StoreDeviceKind; the instantiation names the params
# "file" and "mmap", so a --device choice maps to a gtest filter).
# ctest already ran both params interleaved — this pass proves each
# kind also holds up in isolation, which is how modbd deploys it.
run_device_smoke() {
  local preset="$1" dir="${preset_dirs[$1]:-build}"
  [ -x "$dir/tests/device_param_test" ] || return 0
  local device
  for device in file mmap; do
    echo "==== [$preset] device smoke (--device=$device) ===="
    "$dir/tests/device_param_test" --gtest_filter="*/${device}" \
      --gtest_brief=1
    "$dir/tests/epoch_pin_test" --gtest_filter="*/${device}" \
      --gtest_brief=1
  done
}

jobs=$(nproc 2>/dev/null || echo 4)
for preset in "${presets[@]}"; do
  echo "==== [$preset] configure ===="
  cmake --preset "$preset"
  echo "==== [$preset] build ===="
  cmake --build --preset "$preset" -j "$jobs"
  echo "==== [$preset] test ===="
  ctest --preset "$preset" -j "$jobs"
  run_device_smoke "$preset"
  run_crashloop "$preset"
done

# Perf smoke on a Release (-O3 -DNDEBUG) build: export the key
# query/batch benchmarks to repo-root BENCH_*.json snapshots and gate
# them with bench_compare — >15% cpu_time growth on any benchmark that
# also exists in the previous snapshot fails, same as a test failure.
# bench_compare --require-release rejects records whose JSON context was
# not stamped by a release binary, so the snapshots can never silently
# drift back to a debug build.
release_dir=build-release
run_perf_smoke() {
  local name="$1" binary="$2" filter="$3"
  local out="BENCH_${name}.json"
  local prev=""
  if [ -f "$out" ]; then
    prev="$(mktemp)"
    cp "$out" "$prev"
  fi
  "$release_dir/bench/${binary}" \
    --benchmark_filter="$filter" \
    --benchmark_min_time=0.1 \
    --benchmark_format=json \
    --benchmark_out="$out" \
    --benchmark_out_format=json
  "$release_dir/tools/json_check" "$out"
  if [ -n "$prev" ]; then
    "$release_dir/tools/bench_compare" "$prev" "$out" \
      --threshold=0.15 --require-release
    rm -f "$prev"
  else
    "$release_dir/tools/bench_compare" --require-release "$out"
    echo "perf-smoke: no previous $out snapshot, regression gate skipped"
  fi
}

echo "==== [release] configure + build (perf smoke) ===="
cmake --preset release
cmake --build --preset release -j "$jobs" \
  --target bench_queries bench_batch bench_scaling bench_storage \
  bench_compare json_check

echo "==== perf smoke (release build) ===="
run_perf_smoke queries bench_queries \
  'BM_Q1_TrajectoryLength/64|BM_Q2_Join_RTree/64|BM_Q2_Join_RTree_Prebuilt/64'
run_perf_smoke batch bench_batch \
  'BM_AtInstant_Batch/10000/1024|BM_AtInstant_Batch/16384/16384'

# Storage device gate: warm page-granular scans through the buffer pool
# on both PageDevice kinds, plus the 4-thread epoch-pinned reader bench.
# bench_compare --storage enforces the single-threaded warm mmap/file
# ratio floor (1.5x) unconditionally — it is honest on any host — and
# warn-skips the reader throughput floor below 4 CPUs.
run_perf_smoke storage bench_storage \
  'BM_Serialize_MovingPoint/256|BM_SpilledScanWarm|BM_SpilledScanCold|BM_SpilledBlobScanWarm|BM_EpochPinnedReaders'
"$release_dir/tools/bench_compare" --storage BENCH_storage.json \
  --require-release

# Thread-scaling sweep + gate: the pipelined Select+Join plan must hit
# 2x at 4 threads vs 1 on hosts with >= 4 CPUs (bench_compare warns and
# skips on smaller hosts — the floor would be dishonest there).
echo "==== scaling sweep (release build) ===="
"$release_dir/bench/bench_scaling" \
  --modb_threads=1,2,4,8 \
  --benchmark_min_time=0.1 \
  --benchmark_format=json \
  --benchmark_out=BENCH_scaling.json \
  --benchmark_out_format=json
"$release_dir/tools/json_check" BENCH_scaling.json
"$release_dir/tools/bench_compare" --scaling BENCH_scaling.json \
  --require-release

# Serving smoke (release build): modbd + loadgen end to end. The load
# generator re-executes every query against an in-process Db and fails
# on any byte difference vs the server's result blocks (--verify);
# json_check and bench_compare --serving gate the recorded latency
# snapshot (p99 ceiling; the qps floor warn-skips on small CI hosts);
# the overload probe (1-thread budget, no queue, 2-thread requests)
# must yield typed rejections only; SIGTERM must drain and exit 0.
echo "==== serving smoke (release build) ===="
cmake --build --preset release -j "$jobs" --target modbd loadgen
serving_pid=""
cleanup_serving() {
  if [ -n "$serving_pid" ]; then kill "$serving_pid" 2>/dev/null || true; fi
}
trap cleanup_serving EXIT

start_modbd() {
  local log="$1"
  shift
  "$release_dir/tools/modbd" "$@" > "$log" &
  serving_pid=$!
  modbd_port=""
  for _ in $(seq 1 100); do
    modbd_port=$(sed -n 's/^modbd listening on .*:\([0-9][0-9]*\)$/\1/p' "$log")
    [ -n "$modbd_port" ] && return 0
    kill -0 "$serving_pid" 2>/dev/null || break
    sleep 0.1
  done
  echo "modbd failed to start:"
  cat "$log"
  return 1
}

start_modbd "$release_dir/modbd.log" --port=0
"$release_dir/tools/loadgen" --port="$modbd_port" --clients=2 --requests=10 \
  --verify --out=BENCH_serving.json --metrics-out="$release_dir/metrics.json"
"$release_dir/tools/json_check" BENCH_serving.json
"$release_dir/tools/json_check" "$release_dir/metrics.json"
"$release_dir/tools/bench_compare" --serving BENCH_serving.json \
  --require-release
kill -TERM "$serving_pid"
wait "$serving_pid"  # graceful drain: modbd must exit 0
serving_pid=""

start_modbd "$release_dir/modbd_overload.log" --port=0 \
  --thread-budget=1 --queue-capacity=0
"$release_dir/tools/loadgen" --port="$modbd_port" --clients=4 --requests=10 \
  --num-threads=2 --expect-rejections \
  --out="$release_dir/BENCH_serving_overload.json"
kill -TERM "$serving_pid"
wait "$serving_pid"
serving_pid=""

# Ingest smoke (release build): the PR-8 closed ingest+query loop.
# modbd hosts a store-backed live relation; loadgen streams
# deterministic fixes while concurrent clients query it, then replays
# the identical batches into a local Db and byte-compares every query
# kind (--verify). The recorded BENCH_ingest.json is gated like the
# serving snapshot. Then the crash-consistency drill: SIGTERM lands
# mid-ingest (the drain seals and commits a final epoch — loadgen's
# severed connection is expected, hence || true), modbd must still exit
# 0, and a restart on the same store must print the recovered epoch.
echo "==== ingest smoke (release build) ===="
fleet_store="$release_dir/fleet.store"
rm -f "$fleet_store"
start_modbd "$release_dir/modbd_ingest.log" --port=0 \
  --live=fleet --store="$fleet_store" --merge-interval-ms=100
"$release_dir/tools/loadgen" --ingest --port="$modbd_port" \
  --objects=8 --fixes=2048 --batch=32 --clients=2 --verify \
  --out=BENCH_ingest.json
"$release_dir/tools/json_check" BENCH_ingest.json
"$release_dir/tools/bench_compare" --ingest BENCH_ingest.json \
  --require-release
kill -TERM "$serving_pid"
wait "$serving_pid"
serving_pid=""

start_modbd "$release_dir/modbd_drain.log" --port=0 \
  --live=fleet --store="$fleet_store" --merge-interval-ms=100
grep -q "modbd recovered epoch" "$release_dir/modbd_drain.log" || {
  echo "modbd did not recover the ingest store:"
  cat "$release_dir/modbd_drain.log"
  exit 1
}
"$release_dir/tools/loadgen" --ingest --port="$modbd_port" \
  --objects=8 --fixes=65536 --batch=16 --clients=1 --t0=10000 \
  --out="$release_dir/BENCH_ingest_drain.json" &
loadgen_pid=$!
sleep 0.7  # let the ingest stream get going, then cut it mid-flight
kill -TERM "$serving_pid"
wait "$serving_pid"  # the drain must still exit 0
serving_pid=""
wait "$loadgen_pid" || true  # severed mid-ingest: failure is expected
start_modbd "$release_dir/modbd_recover.log" --port=0 \
  --live=fleet --store="$fleet_store"
grep -q "modbd recovered epoch" "$release_dir/modbd_recover.log" || {
  echo "modbd did not recover after the mid-ingest drain:"
  cat "$release_dir/modbd_recover.log"
  exit 1
}
kill -TERM "$serving_pid"
wait "$serving_pid"
serving_pid=""
rm -f "$fleet_store"
trap - EXIT

echo "==== all presets green: ${presets[*]} ===="
