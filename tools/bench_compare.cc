// bench_compare: perf gates over google-benchmark JSON export files.
//
// Modes:
//   bench_compare BASELINE.json CURRENT.json [--threshold=0.15]
//       Regression gate. Benchmarks are matched by name (aggregate rows
//       like *_mean are ignored); a benchmark whose cpu_time grew by
//       more than the threshold relative to the baseline fails the run.
//       Benchmarks present in only one file are reported but never fail
//       — the suite is allowed to grow.
//   bench_compare --scaling FILE.json [--min-speedup=2.0]
//       Thread-scaling gate over a bench_scaling export: the pipelined
//       Select+Join plan must be at least min-speedup faster (real
//       time) at 4 threads than at 1. Hosts with fewer than 4 CPUs
//       cannot honestly run this check, so it warns and passes there.
//   bench_compare --serving FILE.json [--max-p99-ms=5000] [--min-qps=25]
//       Serving gate over a loadgen BENCH_serving.json export: the run
//       must have completed requests and zero hard errors (typed
//       admission rejections are NOT errors), and every */p99 latency
//       row must stay under max-p99-ms. The qps floor is a throughput
//       gate, so — like --scaling — it warns and passes on hosts with
//       fewer than 4 CPUs, where throughput numbers are not honest.
//   bench_compare --ingest FILE.json [--max-p99-ms=5000]
//       [--min-fix-rate=1000]
//       Ingest gate over a loadgen --ingest BENCH_ingest.json export:
//       fixes must have been accepted with zero hard errors, every
//       */p99 row (ingest batches AND concurrent live queries) must
//       stay under max-p99-ms, and the sustained fix rate must clear
//       the floor — which, like the qps floor, warns and passes on
//       hosts with fewer than 4 CPUs.
//   bench_compare --storage FILE.json [--min-ratio=1.5]
//       [--min-reader-items=50000]
//       Storage-device gate over a bench_storage export: the warm
//       spilled sequential scan on the mmap device must be at least
//       min-ratio faster (real time) than on the file device — a
//       single-threaded ratio, honest on any host, so it never skips.
//       The epoch-pinned concurrent-reader items/s floor warns and
//       passes on hosts with fewer than 4 CPUs.
//   --require-release (composable with every mode, or alone with one
//       file) rejects a run whose JSON context was not produced by a
//       Release build. The authoritative key is "modb_build_type"
//       (stamped by bench_main from the CMake config that compiled the
//       binary); "library_build_type" only describes how libbenchmark
//       itself was built, so it is a fallback.
//
//   exit 0  all gates passed (or were honestly skipped with a warning)
//   exit 1  a gate failed
//   exit 2  usage / parse error
//
// tools/verify.sh runs this against the repo-root BENCH_*.json
// snapshots so a perf regression fails CI the same way a test failure
// does.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"

namespace {

struct BenchRow {
  std::string name;
  double cpu_time = 0;  // normalized to nanoseconds
  double real_time = 0;
  double items_per_second = 0;  // 0 when the bench reported none
};

struct BenchContext {
  std::string build_type;  // lowercased; empty when absent
  int num_cpus = 0;
};

double UnitToNs(const std::string& unit) {
  if (unit == "us") return 1e3;
  if (unit == "ms") return 1e6;
  if (unit == "s") return 1e9;
  return 1.0;  // ns (google-benchmark's default)
}

std::string LowerCase(std::string s) {
  for (char& c : s) {
    if (c >= 'A' && c <= 'Z') c = char(c - 'A' + 'a');
  }
  return s;
}

bool LoadFile(const char* path, std::vector<BenchRow>* rows,
              BenchContext* context) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "bench_compare: cannot open %s\n", path);
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  auto parsed = modb::obs::JsonValue::Parse(buf.str());
  if (!parsed.ok()) {
    std::fprintf(stderr, "bench_compare: %s: %s\n", path,
                 parsed.status().ToString().c_str());
    return false;
  }
  if (const modb::obs::JsonValue* ctx = parsed->Find("context")) {
    const modb::obs::JsonValue* build = ctx->Find("modb_build_type");
    if (build == nullptr) build = ctx->Find("library_build_type");
    if (build != nullptr) context->build_type = LowerCase(build->string_value());
    if (const modb::obs::JsonValue* cpus = ctx->Find("num_cpus")) {
      context->num_cpus = int(cpus->number_value());
    }
  }
  const modb::obs::JsonValue* benches = parsed->Find("benchmarks");
  if (benches == nullptr ||
      benches->kind() != modb::obs::JsonValue::Kind::kArray) {
    std::fprintf(stderr, "bench_compare: %s has no \"benchmarks\" array\n",
                 path);
    return false;
  }
  for (const modb::obs::JsonValue& b : benches->items()) {
    if (b.kind() != modb::obs::JsonValue::Kind::kObject) continue;
    const modb::obs::JsonValue* run_type = b.Find("run_type");
    if (run_type != nullptr && run_type->string_value() != "iteration") {
      continue;  // skip _mean/_median/_stddev aggregates
    }
    const modb::obs::JsonValue* name = b.Find("name");
    const modb::obs::JsonValue* cpu = b.Find("cpu_time");
    const modb::obs::JsonValue* real = b.Find("real_time");
    if (name == nullptr || cpu == nullptr || real == nullptr) continue;
    double scale = 1.0;
    if (const modb::obs::JsonValue* unit = b.Find("time_unit")) {
      scale = UnitToNs(unit->string_value());
    }
    double items = 0;
    if (const modb::obs::JsonValue* ips = b.Find("items_per_second")) {
      items = ips->number_value();
    }
    rows->push_back({name->string_value(), cpu->number_value() * scale,
                     real->number_value() * scale, items});
  }
  return true;
}

const BenchRow* FindRow(const std::vector<BenchRow>& rows,
                        const std::string& name) {
  for (const BenchRow& r : rows) {
    if (r.name == name) return &r;
  }
  return nullptr;
}

// 0 = pass, 1 = fail.
int CheckRelease(const char* path, const BenchContext& context) {
  if (context.build_type == "release") return 0;
  std::fprintf(stderr,
               "bench_compare: %s was not recorded from a release build "
               "(modb_build_type=\"%s\"); rebuild with --preset release\n",
               path, context.build_type.c_str());
  return 1;
}

int RunScalingGate(const char* path, double min_speedup, bool require_release) {
  std::vector<BenchRow> rows;
  BenchContext context;
  if (!LoadFile(path, &rows, &context)) return 2;
  if (require_release && CheckRelease(path, context) != 0) return 1;
  // UseRealTime() benchmarks report as "<name>/T/real_time"; accept the
  // bare name too so hand-rolled exports still gate.
  const char* kPlan = "BM_Scaling_PipelinedSelectJoin";
  auto find_threads = [&rows](const std::string& base) -> const BenchRow* {
    if (const BenchRow* r = FindRow(rows, base + "/real_time")) return r;
    return FindRow(rows, base);
  };
  const BenchRow* one = find_threads(std::string(kPlan) + "/1");
  const BenchRow* four = find_threads(std::string(kPlan) + "/4");
  if (one == nullptr || four == nullptr) {
    std::fprintf(stderr,
                 "bench_compare: %s is missing %s/1 or %s/4 (run "
                 "bench_scaling with --modb_threads including 1 and 4)\n",
                 path, kPlan, kPlan);
    return 2;
  }
  const double speedup =
      four->real_time > 0 ? one->real_time / four->real_time : 0;
  std::printf("  scaling  %-50s %12.0f -> %12.0f ns  (%.2fx @ 4 threads)\n",
              kPlan, one->real_time, four->real_time, speedup);
  if (context.num_cpus < 4) {
    std::printf(
        "bench_compare: WARNING: host has %d CPUs (< 4); scaling gate "
        "skipped — the %.1fx floor only applies on >= 4 cores\n",
        context.num_cpus, min_speedup);
    return 0;
  }
  if (speedup < min_speedup) {
    std::fprintf(stderr,
                 "bench_compare: scaling gate FAILED: %.2fx at 4 threads "
                 "(floor %.1fx on a %d-CPU host)\n",
                 speedup, min_speedup, context.num_cpus);
    return 1;
  }
  std::printf("bench_compare: scaling gate passed (%.2fx >= %.1fx)\n", speedup,
              min_speedup);
  return 0;
}

int RunServingGate(const char* path, double max_p99_ms, double min_qps,
                   bool require_release) {
  std::vector<BenchRow> rows;
  BenchContext context;
  if (!LoadFile(path, &rows, &context)) return 2;
  if (require_release && CheckRelease(path, context) != 0) return 1;

  // Pull the serving summary out of the context block.
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  auto parsed = modb::obs::JsonValue::Parse(buf.str());
  if (!parsed.ok()) return 2;
  const modb::obs::JsonValue* ctx = parsed->Find("context");
  const modb::obs::JsonValue* serving =
      ctx != nullptr ? ctx->Find("modb_serving") : nullptr;
  if (serving == nullptr) {
    std::fprintf(stderr,
                 "bench_compare: %s has no context.modb_serving block (not "
                 "a loadgen export?)\n",
                 path);
    return 2;
  }
  auto num = [serving](const char* key) -> double {
    const modb::obs::JsonValue* v = serving->Find(key);
    return v != nullptr ? v->number_value() : 0;
  };
  const double completed = num("completed");
  const double errors = num("errors");
  const double rejected = num("rejected");
  const double qps = num("qps");
  std::printf(
      "  serving  completed=%.0f errors=%.0f rejected=%.0f qps=%.1f\n",
      completed, errors, rejected, qps);

  int failures = 0;
  if (completed <= 0) {
    std::fprintf(stderr, "bench_compare: serving gate FAILED: no request "
                         "completed\n");
    ++failures;
  }
  if (errors != 0) {
    std::fprintf(stderr,
                 "bench_compare: serving gate FAILED: %.0f hard errors "
                 "(typed rejections are counted separately: %.0f)\n",
                 errors, rejected);
    ++failures;
  }
  const double max_p99_ns = max_p99_ms * 1e6;
  for (const BenchRow& r : rows) {
    const std::string suffix = "/p99";
    if (r.name.size() < suffix.size() ||
        r.name.compare(r.name.size() - suffix.size(), suffix.size(),
                       suffix) != 0) {
      continue;
    }
    const bool bad = r.real_time > max_p99_ns;
    std::printf("  %-8s %-50s %12.0f ns\n", bad ? "SLOW" : "ok",
                r.name.c_str(), r.real_time);
    if (bad) {
      std::fprintf(stderr,
                   "bench_compare: serving gate FAILED: %s = %.1f ms exceeds "
                   "--max-p99-ms=%.0f\n",
                   r.name.c_str(), r.real_time / 1e6, max_p99_ms);
      ++failures;
    }
  }
  if (qps < min_qps) {
    if (context.num_cpus < 4) {
      std::printf(
          "bench_compare: WARNING: host has %d CPUs (< 4); qps floor "
          "skipped — %.1f qps measured, %.1f required on >= 4 cores\n",
          context.num_cpus, qps, min_qps);
    } else {
      std::fprintf(stderr,
                   "bench_compare: serving gate FAILED: %.1f qps below the "
                   "%.1f floor on a %d-CPU host\n",
                   qps, min_qps, context.num_cpus);
      ++failures;
    }
  }
  if (failures == 0) {
    std::printf("bench_compare: serving gate passed\n");
  }
  return failures == 0 ? 0 : 1;
}

int RunIngestGate(const char* path, double max_p99_ms, double min_fix_rate,
                  bool require_release) {
  std::vector<BenchRow> rows;
  BenchContext context;
  if (!LoadFile(path, &rows, &context)) return 2;
  if (require_release && CheckRelease(path, context) != 0) return 1;

  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  auto parsed = modb::obs::JsonValue::Parse(buf.str());
  if (!parsed.ok()) return 2;
  const modb::obs::JsonValue* ctx = parsed->Find("context");
  const modb::obs::JsonValue* ingest =
      ctx != nullptr ? ctx->Find("modb_ingest") : nullptr;
  if (ingest == nullptr) {
    std::fprintf(stderr,
                 "bench_compare: %s has no context.modb_ingest block (not "
                 "a loadgen --ingest export?)\n",
                 path);
    return 2;
  }
  auto num = [ingest](const char* key) -> double {
    const modb::obs::JsonValue* v = ingest->Find(key);
    return v != nullptr ? v->number_value() : 0;
  };
  const double accepted = num("fixes_accepted");
  const double errors = num("errors");
  const double queries = num("queries_completed");
  const double fix_rate = num("fix_rate");
  std::printf(
      "  ingest   accepted=%.0f errors=%.0f queries=%.0f fix_rate=%.0f/s\n",
      accepted, errors, queries, fix_rate);

  int failures = 0;
  if (accepted <= 0) {
    std::fprintf(stderr,
                 "bench_compare: ingest gate FAILED: no fix accepted\n");
    ++failures;
  }
  if (errors != 0) {
    std::fprintf(stderr,
                 "bench_compare: ingest gate FAILED: %.0f hard errors\n",
                 errors);
    ++failures;
  }
  const double max_p99_ns = max_p99_ms * 1e6;
  for (const BenchRow& r : rows) {
    const std::string suffix = "/p99";
    if (r.name.size() < suffix.size() ||
        r.name.compare(r.name.size() - suffix.size(), suffix.size(),
                       suffix) != 0) {
      continue;
    }
    const bool bad = r.real_time > max_p99_ns;
    std::printf("  %-8s %-50s %12.0f ns\n", bad ? "SLOW" : "ok",
                r.name.c_str(), r.real_time);
    if (bad) {
      std::fprintf(stderr,
                   "bench_compare: ingest gate FAILED: %s = %.1f ms exceeds "
                   "--max-p99-ms=%.0f\n",
                   r.name.c_str(), r.real_time / 1e6, max_p99_ms);
      ++failures;
    }
  }
  if (fix_rate < min_fix_rate) {
    if (context.num_cpus < 4) {
      std::printf(
          "bench_compare: WARNING: host has %d CPUs (< 4); fix-rate floor "
          "skipped — %.0f fixes/s measured, %.0f required on >= 4 cores\n",
          context.num_cpus, fix_rate, min_fix_rate);
    } else {
      std::fprintf(stderr,
                   "bench_compare: ingest gate FAILED: %.0f fixes/s below "
                   "the %.0f floor on a %d-CPU host\n",
                   fix_rate, min_fix_rate, context.num_cpus);
      ++failures;
    }
  }
  if (failures == 0) {
    std::printf("bench_compare: ingest gate passed\n");
  }
  return failures == 0 ? 0 : 1;
}

int RunStorageGate(const char* path, double min_ratio,
                   double min_reader_items, bool require_release) {
  std::vector<BenchRow> rows;
  BenchContext context;
  if (!LoadFile(path, &rows, &context)) return 2;
  if (require_release && CheckRelease(path, context) != 0) return 1;

  const BenchRow* warm_file = FindRow(rows, "BM_SpilledScanWarm_File");
  const BenchRow* warm_mmap = FindRow(rows, "BM_SpilledScanWarm_Mmap");
  if (warm_file == nullptr || warm_mmap == nullptr) {
    std::fprintf(stderr,
                 "bench_compare: %s is missing BM_SpilledScanWarm_File or "
                 "BM_SpilledScanWarm_Mmap (re-run bench_storage)\n",
                 path);
    return 2;
  }
  if (const BenchRow* cold_file = FindRow(rows, "BM_SpilledScanCold_File")) {
    std::printf("  storage  %-50s %12.0f ns\n", cold_file->name.c_str(),
                cold_file->real_time);
  }
  if (const BenchRow* cold_mmap = FindRow(rows, "BM_SpilledScanCold_Mmap")) {
    std::printf("  storage  %-50s %12.0f ns\n", cold_mmap->name.c_str(),
                cold_mmap->real_time);
  }
  const double ratio = warm_mmap->real_time > 0
                           ? warm_file->real_time / warm_mmap->real_time
                           : 0;
  std::printf(
      "  storage  warm scan file %.0f ns vs mmap %.0f ns  (%.2fx)\n",
      warm_file->real_time, warm_mmap->real_time, ratio);

  int failures = 0;
  // The warm-scan ratio is single-threaded, so it is honest on any
  // host: no CPU-count skip, this is the hard gate.
  if (ratio < min_ratio) {
    std::fprintf(stderr,
                 "bench_compare: storage gate FAILED: warm mmap scan is only "
                 "%.2fx faster than file (floor %.1fx)\n",
                 ratio, min_ratio);
    ++failures;
  }

  // Concurrent pinned readers: a throughput floor, honest only with
  // enough cores to actually run the reader threads in parallel.
  const BenchRow* readers = nullptr;
  for (const BenchRow& r : rows) {
    if (r.name.rfind("BM_EpochPinnedReaders", 0) == 0) {
      readers = &r;
      break;
    }
  }
  if (readers == nullptr) {
    std::fprintf(stderr,
                 "bench_compare: %s is missing BM_EpochPinnedReaders\n", path);
    return 2;
  }
  std::printf("  storage  %-50s %12.0f items/s\n", readers->name.c_str(),
              readers->items_per_second);
  if (readers->items_per_second < min_reader_items) {
    if (context.num_cpus < 4) {
      std::printf(
          "bench_compare: WARNING: host has %d CPUs (< 4); pinned-reader "
          "floor skipped — %.0f items/s measured, %.0f required on >= 4 "
          "cores\n",
          context.num_cpus, readers->items_per_second, min_reader_items);
    } else {
      std::fprintf(stderr,
                   "bench_compare: storage gate FAILED: %.0f pinned reads/s "
                   "below the %.0f floor on a %d-CPU host\n",
                   readers->items_per_second, min_reader_items,
                   context.num_cpus);
      ++failures;
    }
  }
  if (failures == 0) {
    std::printf("bench_compare: storage gate passed (%.2fx >= %.1fx)\n", ratio,
                min_ratio);
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  double threshold = 0.15;
  double min_speedup = 2.0;
  double max_p99_ms = 5000;
  double min_qps = 25;
  double min_fix_rate = 1000;
  double min_ratio = 1.5;
  double min_reader_items = 50000;
  bool scaling = false;
  bool serving = false;
  bool ingest = false;
  bool storage = false;
  bool require_release = false;
  std::vector<const char*> files;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threshold=", 12) == 0) {
      threshold = std::atof(argv[i] + 12);
      if (threshold <= 0) {
        std::fprintf(stderr, "bench_compare: bad threshold %s\n", argv[i]);
        return 2;
      }
    } else if (std::strncmp(argv[i], "--min-speedup=", 14) == 0) {
      min_speedup = std::atof(argv[i] + 14);
      if (min_speedup <= 0) {
        std::fprintf(stderr, "bench_compare: bad min-speedup %s\n", argv[i]);
        return 2;
      }
    } else if (std::strncmp(argv[i], "--max-p99-ms=", 13) == 0) {
      max_p99_ms = std::atof(argv[i] + 13);
      if (max_p99_ms <= 0) {
        std::fprintf(stderr, "bench_compare: bad max-p99-ms %s\n", argv[i]);
        return 2;
      }
    } else if (std::strncmp(argv[i], "--min-qps=", 10) == 0) {
      min_qps = std::atof(argv[i] + 10);
      if (min_qps <= 0) {
        std::fprintf(stderr, "bench_compare: bad min-qps %s\n", argv[i]);
        return 2;
      }
    } else if (std::strncmp(argv[i], "--min-fix-rate=", 15) == 0) {
      min_fix_rate = std::atof(argv[i] + 15);
      if (min_fix_rate <= 0) {
        std::fprintf(stderr, "bench_compare: bad min-fix-rate %s\n", argv[i]);
        return 2;
      }
    } else if (std::strncmp(argv[i], "--min-ratio=", 12) == 0) {
      min_ratio = std::atof(argv[i] + 12);
      if (min_ratio <= 0) {
        std::fprintf(stderr, "bench_compare: bad min-ratio %s\n", argv[i]);
        return 2;
      }
    } else if (std::strncmp(argv[i], "--min-reader-items=", 19) == 0) {
      min_reader_items = std::atof(argv[i] + 19);
      if (min_reader_items <= 0) {
        std::fprintf(stderr, "bench_compare: bad min-reader-items %s\n",
                     argv[i]);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--scaling") == 0) {
      scaling = true;
    } else if (std::strcmp(argv[i], "--serving") == 0) {
      serving = true;
    } else if (std::strcmp(argv[i], "--ingest") == 0) {
      ingest = true;
    } else if (std::strcmp(argv[i], "--storage") == 0) {
      storage = true;
    } else if (std::strcmp(argv[i], "--require-release") == 0) {
      require_release = true;
    } else {
      files.push_back(argv[i]);
    }
  }

  if (storage) {
    if (files.size() != 1) {
      std::fprintf(stderr,
                   "usage: bench_compare --storage FILE.json "
                   "[--min-ratio=1.5] [--min-reader-items=50000] "
                   "[--require-release]\n");
      return 2;
    }
    return RunStorageGate(files[0], min_ratio, min_reader_items,
                          require_release);
  }

  if (ingest) {
    if (files.size() != 1) {
      std::fprintf(stderr,
                   "usage: bench_compare --ingest FILE.json "
                   "[--max-p99-ms=5000] [--min-fix-rate=1000] "
                   "[--require-release]\n");
      return 2;
    }
    return RunIngestGate(files[0], max_p99_ms, min_fix_rate, require_release);
  }

  if (serving) {
    if (files.size() != 1) {
      std::fprintf(stderr,
                   "usage: bench_compare --serving FILE.json "
                   "[--max-p99-ms=5000] [--min-qps=25] "
                   "[--require-release]\n");
      return 2;
    }
    return RunServingGate(files[0], max_p99_ms, min_qps, require_release);
  }

  if (scaling) {
    if (files.size() != 1) {
      std::fprintf(stderr,
                   "usage: bench_compare --scaling FILE.json "
                   "[--min-speedup=2.0] [--require-release]\n");
      return 2;
    }
    return RunScalingGate(files[0], min_speedup, require_release);
  }

  if (files.size() == 1 && require_release) {
    // Build-type check only.
    std::vector<BenchRow> rows;
    BenchContext context;
    if (!LoadFile(files[0], &rows, &context)) return 2;
    if (CheckRelease(files[0], context) != 0) return 1;
    std::printf("bench_compare: %s is a release-build record\n", files[0]);
    return 0;
  }

  if (files.size() != 2) {
    std::fprintf(stderr,
                 "usage: bench_compare BASELINE.json CURRENT.json "
                 "[--threshold=0.15] [--require-release]\n"
                 "       bench_compare --scaling FILE.json "
                 "[--min-speedup=2.0]\n"
                 "       bench_compare --require-release FILE.json\n");
    return 2;
  }
  std::vector<BenchRow> baseline, current;
  BenchContext base_ctx, cur_ctx;
  if (!LoadFile(files[0], &baseline, &base_ctx) ||
      !LoadFile(files[1], &current, &cur_ctx)) {
    return 2;
  }
  if (require_release && CheckRelease(files[1], cur_ctx) != 0) return 1;
  int regressions = 0, compared = 0;
  for (const BenchRow& cur : current) {
    const BenchRow* base = FindRow(baseline, cur.name);
    if (base == nullptr) {
      std::printf("  NEW      %-50s %12.0f ns\n", cur.name.c_str(),
                  cur.cpu_time);
      continue;
    }
    ++compared;
    const double ratio =
        base->cpu_time > 0 ? cur.cpu_time / base->cpu_time : 1.0;
    const bool bad = ratio > 1.0 + threshold;
    std::printf("  %-8s %-50s %12.0f -> %12.0f ns  (%+.1f%%)\n",
                bad ? "REGRESS" : "ok", cur.name.c_str(), base->cpu_time,
                cur.cpu_time, (ratio - 1.0) * 100.0);
    if (bad) ++regressions;
  }
  for (const BenchRow& base : baseline) {
    if (FindRow(current, base.name) == nullptr) {
      std::printf("  GONE     %s\n", base.name.c_str());
    }
  }
  std::printf("bench_compare: %d compared, %d regressed (threshold %+.0f%%)\n",
              compared, regressions, threshold * 100.0);
  return regressions == 0 ? 0 : 1;
}
