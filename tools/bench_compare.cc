// bench_compare: regression gate over two google-benchmark JSON export
// files. Benchmarks are matched by name (aggregate rows like *_mean are
// ignored); a benchmark whose cpu_time grew by more than the threshold
// relative to the baseline fails the run. Benchmarks present in only
// one file are reported but never fail — the suite is allowed to grow.
//
// Usage: bench_compare BASELINE.json CURRENT.json [--threshold=0.15]
//   exit 0  no benchmark regressed beyond the threshold
//   exit 1  at least one regression
//   exit 2  usage / parse error
//
// tools/verify.sh runs this against the repo-root BENCH_*.json
// snapshots so a perf regression fails CI the same way a test failure
// does.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"

namespace {

struct BenchRow {
  std::string name;
  double cpu_time = 0;  // normalized to nanoseconds
  double real_time = 0;
};

double UnitToNs(const std::string& unit) {
  if (unit == "us") return 1e3;
  if (unit == "ms") return 1e6;
  if (unit == "s") return 1e9;
  return 1.0;  // ns (google-benchmark's default)
}

bool LoadRows(const char* path, std::vector<BenchRow>* rows) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "bench_compare: cannot open %s\n", path);
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  auto parsed = modb::obs::JsonValue::Parse(buf.str());
  if (!parsed.ok()) {
    std::fprintf(stderr, "bench_compare: %s: %s\n", path,
                 parsed.status().ToString().c_str());
    return false;
  }
  const modb::obs::JsonValue* benches = parsed->Find("benchmarks");
  if (benches == nullptr ||
      benches->kind() != modb::obs::JsonValue::Kind::kArray) {
    std::fprintf(stderr, "bench_compare: %s has no \"benchmarks\" array\n",
                 path);
    return false;
  }
  for (const modb::obs::JsonValue& b : benches->items()) {
    if (b.kind() != modb::obs::JsonValue::Kind::kObject) continue;
    const modb::obs::JsonValue* run_type = b.Find("run_type");
    if (run_type != nullptr && run_type->string_value() != "iteration") {
      continue;  // skip _mean/_median/_stddev aggregates
    }
    const modb::obs::JsonValue* name = b.Find("name");
    const modb::obs::JsonValue* cpu = b.Find("cpu_time");
    const modb::obs::JsonValue* real = b.Find("real_time");
    if (name == nullptr || cpu == nullptr || real == nullptr) continue;
    double scale = 1.0;
    if (const modb::obs::JsonValue* unit = b.Find("time_unit")) {
      scale = UnitToNs(unit->string_value());
    }
    rows->push_back({name->string_value(), cpu->number_value() * scale,
                     real->number_value() * scale});
  }
  return true;
}

const BenchRow* FindRow(const std::vector<BenchRow>& rows,
                        const std::string& name) {
  for (const BenchRow& r : rows) {
    if (r.name == name) return &r;
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  double threshold = 0.15;
  std::vector<const char*> files;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threshold=", 12) == 0) {
      threshold = std::atof(argv[i] + 12);
      if (threshold <= 0) {
        std::fprintf(stderr, "bench_compare: bad threshold %s\n", argv[i]);
        return 2;
      }
    } else {
      files.push_back(argv[i]);
    }
  }
  if (files.size() != 2) {
    std::fprintf(stderr,
                 "usage: bench_compare BASELINE.json CURRENT.json "
                 "[--threshold=0.15]\n");
    return 2;
  }
  std::vector<BenchRow> baseline, current;
  if (!LoadRows(files[0], &baseline) || !LoadRows(files[1], &current)) {
    return 2;
  }
  int regressions = 0, compared = 0;
  for (const BenchRow& cur : current) {
    const BenchRow* base = FindRow(baseline, cur.name);
    if (base == nullptr) {
      std::printf("  NEW      %-50s %12.0f ns\n", cur.name.c_str(),
                  cur.cpu_time);
      continue;
    }
    ++compared;
    const double ratio =
        base->cpu_time > 0 ? cur.cpu_time / base->cpu_time : 1.0;
    const bool bad = ratio > 1.0 + threshold;
    std::printf("  %-8s %-50s %12.0f -> %12.0f ns  (%+.1f%%)\n",
                bad ? "REGRESS" : "ok", cur.name.c_str(), base->cpu_time,
                cur.cpu_time, (ratio - 1.0) * 100.0);
    if (bad) ++regressions;
  }
  for (const BenchRow& base : baseline) {
    if (FindRow(current, base.name) == nullptr) {
      std::printf("  GONE     %s\n", base.name.c_str());
    }
  }
  std::printf("bench_compare: %d compared, %d regressed (threshold %+.0f%%)\n",
              compared, regressions, threshold * 100.0);
  return regressions == 0 ? 0 : 1;
}
