// modbd: the long-running MODB server. Builds the planes relation (the
// paper's running example) with a deterministic seed, keeps it and its
// moving-point R-tree resident in a modb::Db, and serves typed
// QueryRequests over the frame protocol (docs/PROTOCOL.md) until
// SIGTERM/SIGINT, then drains in-flight queries and exits 0.
//
//   modbd [--port=0] [--host=127.0.0.1] [--thread-budget=64]
//         [--queue-capacity=64] [--flights=64] [--seed=99]
//         [--live=NAME] [--store=PATH] [--device=file|mmap]
//         [--merge-interval-ms=500] [--seal-units=0]
//
// --live=NAME additionally registers an empty live relation NAME
// (schema {id: string, trail: mpoint}) as an ingest target for
// kMutation frames, and starts a maintenance thread that runs one
// Db::MergeLive round every --merge-interval-ms. --store=PATH attaches
// a VersionedSpillStore for durability: an existing store is recovered
// (printing "modbd recovered epoch E (N objects)"), a missing one is
// created, and the SIGTERM drain seals every tail and commits one
// final epoch before exit — restart with the same --store resumes
// bitwise-identically. --device picks the PageDevice backing the store
// (default file; mmap serves reads zero-copy out of a shared mapping);
// both kinds write the identical format, so a store created under one
// reopens under the other.
//
// Prints exactly one line "modbd listening on HOST:PORT" once ready —
// scripts (verify.sh) parse the ephemeral port from it.

#include <sys/stat.h>

#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "db/modb.h"
#include "gen/flights_gen.h"
#include "serve/server.h"
#include "storage/recovery.h"

namespace {

bool ParseInt(const char* arg, const char* flag, long* out) {
  const std::size_t n = std::strlen(flag);
  if (std::strncmp(arg, flag, n) != 0 || arg[n] != '=') return false;
  char* end = nullptr;
  *out = std::strtol(arg + n + 1, &end, 10);
  return end != nullptr && *end == '\0';
}

bool ParseStr(const char* arg, const char* flag, std::string* out) {
  const std::size_t n = std::strlen(flag);
  if (std::strncmp(arg, flag, n) != 0 || arg[n] != '=') return false;
  *out = arg + n + 1;
  return true;
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  modb::serve::ServerOptions options;
  long flights = 64;
  long seed = 99;
  long merge_interval_ms = 500;
  long seal_units = 0;
  std::string live_name;
  std::string store_path;
  modb::StoreDeviceKind device = modb::StoreDeviceKind::kFile;
  for (int i = 1; i < argc; ++i) {
    long v;
    std::string s;
    if (ParseInt(argv[i], "--port", &v)) {
      options.port = int(v);
    } else if (ParseStr(argv[i], "--host", &s)) {
      options.host = s;
    } else if (ParseInt(argv[i], "--thread-budget", &v)) {
      options.thread_budget = v;
    } else if (ParseInt(argv[i], "--queue-capacity", &v)) {
      options.queue_capacity = std::size_t(v < 0 ? 0 : v);
    } else if (ParseInt(argv[i], "--flights", &v)) {
      flights = v;
    } else if (ParseInt(argv[i], "--seed", &v)) {
      seed = v;
    } else if (ParseStr(argv[i], "--live", &s)) {
      live_name = s;
    } else if (ParseStr(argv[i], "--store", &s)) {
      store_path = s;
    } else if (ParseStr(argv[i], "--device", &s)) {
      if (s == "file") {
        device = modb::StoreDeviceKind::kFile;
      } else if (s == "mmap") {
        device = modb::StoreDeviceKind::kMmap;
      } else {
        std::fprintf(stderr, "modbd: unknown --device=%s (file|mmap)\n",
                     s.c_str());
        return 2;
      }
    } else if (ParseInt(argv[i], "--merge-interval-ms", &v)) {
      merge_interval_ms = v < 1 ? 1 : v;
    } else if (ParseInt(argv[i], "--seal-units", &v)) {
      seal_units = v < 0 ? 0 : v;
    } else {
      std::fprintf(stderr,
                   "usage: modbd [--port=0] [--host=127.0.0.1] "
                   "[--thread-budget=64] [--queue-capacity=64] "
                   "[--flights=64] [--seed=99] [--live=NAME] "
                   "[--store=PATH] [--device=file|mmap] "
                   "[--merge-interval-ms=500] [--seal-units=0]\n");
      return 2;
    }
  }
  if (!store_path.empty() && live_name.empty()) {
    std::fprintf(stderr, "modbd: --store requires --live=NAME\n");
    return 2;
  }

  // Block the shutdown signals before any thread starts, so they are
  // delivered to sigwait below and nowhere else.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGINT);
  sigaddset(&sigs, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

  modb::FlightsOptions gen;
  gen.num_flights = int(flights);
  gen.seed = std::uint64_t(seed);
  modb::Result<modb::Relation> planes = modb::GeneratePlanes(gen);
  if (!planes.ok()) {
    std::fprintf(stderr, "modbd: generating planes: %s\n",
                 planes.status().ToString().c_str());
    return 1;
  }

  // Declared before the Db so it outlives the live relation it backs.
  std::optional<modb::VersionedSpillStore> store;
  modb::Db db;
  if (modb::Status s = db.Register(*std::move(planes)); !s.ok()) {
    std::fprintf(stderr, "modbd: %s\n", s.ToString().c_str());
    return 1;
  }
  if (modb::Status s = db.BuildIndex("planes", "flight"); !s.ok()) {
    std::fprintf(stderr, "modbd: %s\n", s.ToString().c_str());
    return 1;
  }

  if (!live_name.empty()) {
    modb::ingest::LiveOptions live;
    if (seal_units > 0) live.seal_units = std::size_t(seal_units);
    if (modb::Status s = db.RegisterLive(live_name, live); !s.ok()) {
      std::fprintf(stderr, "modbd: %s\n", s.ToString().c_str());
      return 1;
    }
    if (!store_path.empty()) {
      modb::VersionedSpillStore::Options store_options;
      store_options.device = device;
      modb::Result<modb::VersionedSpillStore> opened =
          FileExists(store_path)
              ? modb::VersionedSpillStore::Open(store_path, store_options)
              : modb::VersionedSpillStore::Create(store_path, store_options);
      if (!opened.ok()) {
        std::fprintf(stderr, "modbd: opening store %s: %s\n",
                     store_path.c_str(),
                     opened.status().ToString().c_str());
        return 1;
      }
      store.emplace(std::move(*opened));
      if (modb::Status s = db.AttachLiveStore(live_name, &*store); !s.ok()) {
        std::fprintf(stderr, "modbd: attaching store: %s\n",
                     s.ToString().c_str());
        return 1;
      }
      if (store->NumRoots() > 0) {
        std::printf("modbd recovered epoch %llu (%zu objects)\n",
                    (unsigned long long)store->epoch(),
                    store->NumRoots() - 1);
        std::fflush(stdout);
      }
    }
  }

  modb::serve::Server server(&db, options);
  if (modb::Status s = server.Start(); !s.ok()) {
    std::fprintf(stderr, "modbd: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("modbd listening on %s:%d\n", options.host.c_str(),
              server.port());
  std::fflush(stdout);

  // LSM maintenance: one background round per interval compacts the
  // live relation's delta into its base off the lock. Failures are
  // non-fatal (the next round retries).
  std::mutex merge_mu;
  std::condition_variable merge_cv;
  bool merge_stop = false;
  std::thread merge_thread;
  if (!live_name.empty()) {
    merge_thread = std::thread([&] {
      std::unique_lock lock(merge_mu);
      while (!merge_stop) {
        merge_cv.wait_for(lock,
                          std::chrono::milliseconds(merge_interval_ms),
                          [&] { return merge_stop; });
        if (merge_stop) return;
        lock.unlock();
        (void)db.MergeLive(live_name);
        lock.lock();
      }
    });
  }

  int sig = 0;
  sigwait(&sigs, &sig);
  std::printf("modbd: received %s, draining\n",
              sig == SIGTERM ? "SIGTERM" : "SIGINT");
  std::fflush(stdout);
  server.Stop();
  if (merge_thread.joinable()) {
    {
      std::lock_guard lock(merge_mu);
      merge_stop = true;
    }
    merge_cv.notify_all();
    merge_thread.join();
  }
  if (!live_name.empty()) {
    // Seal + final commit AFTER the server stopped: no in-flight ingest
    // can race the drain epoch, so restart recovers exactly this state.
    if (modb::Status s = db.DrainLive(live_name); !s.ok()) {
      std::fprintf(stderr, "modbd: draining %s: %s\n", live_name.c_str(),
                   s.ToString().c_str());
      return 1;
    }
    if (store.has_value()) {
      std::printf("modbd: drained %s at epoch %llu\n", live_name.c_str(),
                  (unsigned long long)store->epoch());
    }
  }
  std::printf("modbd: stopped cleanly\n");
  return 0;
}
