// modbd: the long-running MODB server. Builds the planes relation (the
// paper's running example) with a deterministic seed, keeps it and its
// moving-point R-tree resident in a modb::Db, and serves typed
// QueryRequests over the frame protocol (docs/PROTOCOL.md) until
// SIGTERM/SIGINT, then drains in-flight queries and exits 0.
//
//   modbd [--port=0] [--host=127.0.0.1] [--thread-budget=64]
//         [--queue-capacity=64] [--flights=64] [--seed=99]
//
// Prints exactly one line "modbd listening on HOST:PORT" once ready —
// scripts (verify.sh) parse the ephemeral port from it.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "db/modb.h"
#include "gen/flights_gen.h"
#include "serve/server.h"

namespace {

bool ParseInt(const char* arg, const char* flag, long* out) {
  const std::size_t n = std::strlen(flag);
  if (std::strncmp(arg, flag, n) != 0 || arg[n] != '=') return false;
  char* end = nullptr;
  *out = std::strtol(arg + n + 1, &end, 10);
  return end != nullptr && *end == '\0';
}

bool ParseStr(const char* arg, const char* flag, std::string* out) {
  const std::size_t n = std::strlen(flag);
  if (std::strncmp(arg, flag, n) != 0 || arg[n] != '=') return false;
  *out = arg + n + 1;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  modb::serve::ServerOptions options;
  long flights = 64;
  long seed = 99;
  for (int i = 1; i < argc; ++i) {
    long v;
    std::string s;
    if (ParseInt(argv[i], "--port", &v)) {
      options.port = int(v);
    } else if (ParseStr(argv[i], "--host", &s)) {
      options.host = s;
    } else if (ParseInt(argv[i], "--thread-budget", &v)) {
      options.thread_budget = v;
    } else if (ParseInt(argv[i], "--queue-capacity", &v)) {
      options.queue_capacity = std::size_t(v < 0 ? 0 : v);
    } else if (ParseInt(argv[i], "--flights", &v)) {
      flights = v;
    } else if (ParseInt(argv[i], "--seed", &v)) {
      seed = v;
    } else {
      std::fprintf(stderr,
                   "usage: modbd [--port=0] [--host=127.0.0.1] "
                   "[--thread-budget=64] [--queue-capacity=64] "
                   "[--flights=64] [--seed=99]\n");
      return 2;
    }
  }

  // Block the shutdown signals before any thread starts, so they are
  // delivered to sigwait below and nowhere else.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGINT);
  sigaddset(&sigs, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

  modb::FlightsOptions gen;
  gen.num_flights = int(flights);
  gen.seed = std::uint64_t(seed);
  modb::Result<modb::Relation> planes = modb::GeneratePlanes(gen);
  if (!planes.ok()) {
    std::fprintf(stderr, "modbd: generating planes: %s\n",
                 planes.status().ToString().c_str());
    return 1;
  }

  modb::Db db;
  if (modb::Status s = db.Register(*std::move(planes)); !s.ok()) {
    std::fprintf(stderr, "modbd: %s\n", s.ToString().c_str());
    return 1;
  }
  if (modb::Status s = db.BuildIndex("planes", "flight"); !s.ok()) {
    std::fprintf(stderr, "modbd: %s\n", s.ToString().c_str());
    return 1;
  }

  modb::serve::Server server(&db, options);
  if (modb::Status s = server.Start(); !s.ok()) {
    std::fprintf(stderr, "modbd: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("modbd listening on %s:%d\n", options.host.c_str(),
              server.port());
  std::fflush(stdout);

  int sig = 0;
  sigwait(&sigs, &sig);
  std::printf("modbd: received %s, draining\n",
              sig == SIGTERM ? "SIGTERM" : "SIGINT");
  std::fflush(stdout);
  server.Stop();
  std::printf("modbd: stopped cleanly\n");
  return 0;
}
