// Quickstart: the sliced representation in action (Figure 1).
//
// Builds a moving point and a moving real from slices, inspects them with
// the temporal operations, and round-trips the value through the flat
// storage layer.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "storage/flat.h"
#include "temporal/lifted_ops.h"
#include "temporal/moving.h"

using namespace modb;  // Example code; the library itself never does this.

int main() {
  // --- a moving point: three slices of linear motion --------------------
  // A delivery scooter: depot → customer → waiting → back.
  MappingBuilder<UPoint> builder;
  auto slice = [&](double t0, double t1, Point from, Point to, bool last) {
    auto iv = *TimeInterval::Make(t0, t1, true, last);
    (void)builder.Append(*UPoint::FromEndpoints(iv, from, to));
  };
  slice(0, 10, Point(0, 0), Point(40, 30), false);   // Out: speed 5.
  slice(10, 15, Point(40, 30), Point(40, 30), false);  // Wait at customer.
  slice(15, 25, Point(40, 30), Point(0, 0), true);   // Return.
  MovingPoint scooter = *builder.Build();

  std::printf("scooter: %zu units covering %.1f time units\n",
              scooter.NumUnits(), scooter.TotalDuration());

  // --- atinstant / deftime / trajectory ---------------------------------
  Intime<Point> at7 = scooter.AtInstant(7);
  std::printf("position at t=7:    %s\n", at7.val().ToString().c_str());
  std::printf("deftime:            %s\n", scooter.DefTime().ToString().c_str());
  Line path = Trajectory(scooter);
  std::printf("trajectory length:  %.1f (out + back)\n", path.Length());

  // --- lifted operations: a moving real from a distance -----------------
  MovingReal dist = *LiftedDistance(scooter, Point(0, 0));
  std::printf("distance from depot at t=7:  %.2f\n", dist.AtInstant(7).val());
  std::printf("max distance from depot:     %.2f\n", *MaxValue(dist));

  MovingBool far = *Compare(dist, 25.0, CmpOp::kGt);
  Periods when_far = WhenTrue(far);
  std::printf("away more than 25 units during %s\n",
              when_far.ToString().c_str());

  // --- speed is a moving real too ----------------------------------------
  MovingReal speed = *Speed(scooter);
  std::printf("speed at t=5: %.1f   at t=12: %.1f\n",
              speed.AtInstant(5).val(), speed.AtInstant(12).val());

  // --- flat storage round trip (Section 4) -------------------------------
  AttributeStore store;
  std::string tuple = store.Put(ToFlat(scooter));
  MovingPoint back = *MovingPointFromFlat(*store.Get(tuple));
  std::printf("storage round trip: %zu units, tuple %zu bytes, %zu pages\n",
              back.NumUnits(), tuple.size(), store.page_store().NumPages());
  return 0;
}
