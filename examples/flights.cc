// The paper's running example (Section 2): the relation
//   planes(airline: string, id: string, flight: mpoint)
// and its two queries:
//   Q1  SELECT airline, id FROM planes
//       WHERE airline = "Lufthansa" AND length(trajectory(flight)) > 5000
//   Q2  SELECT p.airline, p.id, q.airline, q.id FROM planes p, planes q
//       WHERE val(initial(atmin(distance(p.flight, q.flight)))) < 0.5
//
// Build & run:  ./build/examples/flights

#include <cstdio>

#include "db/expr.h"
#include "db/query.h"
#include "gen/flights_gen.h"
#include "obs/report.h"
#include "temporal/lifted_ops.h"

using namespace modb;

int main() {
  FlightsOptions options;
  options.num_airports = 10;
  options.num_flights = 60;
  options.extent = 10000;  // A 10000 km square world.
  options.units_per_flight = 8;
  options.speed = 800;  // km/h.
  options.departure_window = 24;
  Relation planes = *GeneratePlanes(options);
  std::printf("planes relation: %zu tuples, schema (", planes.NumTuples());
  for (std::size_t i = 0; i < planes.schema().NumAttributes(); ++i) {
    const AttributeDef& d = planes.schema().attribute(i);
    std::printf("%s%s: %s", i ? ", " : "", d.name.c_str(),
                AttributeTypeName(d.type));
  }
  std::printf(")\n\n");

  // ---- Q1: long Lufthansa flights ---------------------------------------
  Relation q1 = *Select(planes, [](const Tuple& t) {
    return std::get<StringValue>(t[kFlightAttrAirline]).value() ==
               "Lufthansa" &&
           Trajectory(std::get<MovingPoint>(t[kFlightAttrFlight])).Length() >
               5000;
  });
  std::printf("Q1: Lufthansa flights longer than 5000 km (%zu rows)\n",
              q1.NumTuples());
  for (const Tuple& t : q1.tuples()) {
    std::printf("  %-10s %-6s  length %.0f km\n",
                std::get<StringValue>(t[0]).value().c_str(),
                std::get<StringValue>(t[1]).value().c_str(),
                Trajectory(std::get<MovingPoint>(t[2])).Length());
  }

  // ---- Q2: close encounters ----------------------------------------------
  const double kCloser = 50;  // "closer than 50 km" for the synthetic data.
  auto close_pred = [kCloser](const Tuple& a, std::size_t i, const Tuple& b,
                              std::size_t j) {
    if (i >= j) return false;
    auto d = LiftedDistance(std::get<MovingPoint>(a[kFlightAttrFlight]),
                            std::get<MovingPoint>(b[kFlightAttrFlight]));
    if (!d.ok() || d->IsEmpty()) return false;
    auto am = AtMin(*d);
    if (!am.ok() || am->IsEmpty()) return false;
    // The paper's expression: val(initial(atmin(distance(p, q)))) < c.
    return am->Initial().val() < kCloser;
  };
  Relation q2 = *NestedLoopJoin(planes, planes, close_pred);
  std::printf("\nQ2: pairs of planes closer than %.0f km (%zu pairs)\n",
              kCloser, q2.NumTuples());
  for (const Tuple& t : q2.tuples()) {
    auto d = *LiftedDistance(std::get<MovingPoint>(t[2]),
                             std::get<MovingPoint>(t[5]));
    auto am = *AtMin(d);
    std::printf("  %-6s / %-6s  min distance %6.2f km at t=%.2f h\n",
                std::get<StringValue>(t[1]).value().c_str(),
                std::get<StringValue>(t[4]).value().c_str(),
                am.Initial().val(), am.Initial().inst());
  }

  // ---- Q1 again, declaratively (the expression layer) ---------------------
  ExprPtr q1_pred =
      And(Eq(Attr("airline"), Lit("Lufthansa")),
          Gt(Call("length", {Call("trajectory", {Attr("flight")})}),
             Lit(5000.0)));
  Relation q1_expr = *SelectWhere(planes, q1_pred);
  std::printf("\nQ1 via expression tree finds the same %zu rows: %s\n",
              q1_expr.NumTuples(),
              q1_expr.NumTuples() == q1.NumTuples() ? "yes" : "NO (bug!)");

  // ---- Q2 again, accelerated with the unit R-tree -------------------------
  // Request an ExecStats tree to see where the join's work went: how
  // many candidate pairs the R-tree produced vs how many survived the
  // exact lifted-distance predicate.
  ExecStats join_stats;
  ExecOptions exec;
  exec.stats = &join_stats;
  Relation q2ix = *IndexJoinOnMovingPoint(planes, kFlightAttrFlight, planes,
                                          kFlightAttrFlight, kCloser,
                                          close_pred, exec);
  std::printf("\nindex-accelerated join finds the same %zu pairs: %s\n",
              q2ix.NumTuples(),
              q2ix.NumTuples() == q2.NumTuples() ? "yes" : "NO (bug!)");

  // ---- Observability: what did all of the above cost? ---------------------
  std::printf("\n%s", obs::DumpStats(&join_stats).c_str());
  std::printf("index join stats as JSON: %s\n", join_stats.ToJson().c_str());
  return 0;
}
