// A fleet analytics report built entirely from the declarative layers:
// the expression language, aggregation/grouping, the timeslice operator,
// and relation persistence — the paper's "plug the types into a DBMS and
// get a query language" story end to end.
//
// Build & run:  ./build/examples/fleet_report

#include <cstdio>

#include "db/aggregate.h"
#include "db/expr.h"
#include "db/relation_io.h"
#include "gen/flights_gen.h"

using namespace modb;

int main() {
  FlightsOptions options;
  options.num_airports = 8;
  options.num_flights = 40;
  options.extent = 8000;
  options.units_per_flight = 6;
  options.speed = 750;
  options.departure_window = 12;
  Relation planes = *GeneratePlanes(options);

  // ---- per-airline aggregates over spatio-temporal expressions ----------
  ExprPtr length = Call("length", {Call("trajectory", {Attr("flight")})});
  ExprPtr hours = Call("duration", {Call("deftime", {Attr("flight")})});

  Relation km = *GroupBy(planes, "airline", AggregateOp::kSum, length);
  Relation avg_h = *GroupBy(planes, "airline", AggregateOp::kAvg, hours);
  std::printf("airline      flights   total km   avg hours\n");
  for (std::size_t i = 0; i < km.NumTuples(); ++i) {
    const std::string& airline = std::get<StringValue>(km.tuple(i)[0]).value();
    Relation of_airline = *SelectWhere(
        planes, Eq(Attr("airline"), Lit(airline.c_str())));
    std::printf("%-12s %7zu %10.0f %11.2f\n", airline.c_str(),
                of_airline.NumTuples(),
                std::get<RealValue>(km.tuple(i)[1]).value(),
                std::get<RealValue>(avg_h.tuple(i)[1]).value());
  }

  // ---- fleet-wide numbers -------------------------------------------------
  std::printf("\nfleet: %0.f flights, longest %0.f km, mean %0.f km\n",
              *Aggregate(planes, AggregateOp::kCount),
              *Aggregate(planes, AggregateOp::kMax, length),
              *Aggregate(planes, AggregateOp::kAvg, length));

  // ---- timeslice: who is airborne at t = 6h? ------------------------------
  Relation at6 = *Timeslice(planes, 6.0);
  std::printf("\nairborne at t=6h: %zu planes\n", at6.NumTuples());
  for (std::size_t i = 0; i < std::min<std::size_t>(5, at6.NumTuples()); ++i) {
    const Point& pos = std::get<Point>(at6.tuple(i)[kFlightAttrFlight]);
    std::printf("  %-6s at %s\n",
                std::get<StringValue>(at6.tuple(i)[kFlightAttrId])
                    .value()
                    .c_str(),
                pos.ToString().c_str());
  }

  // ---- persistence round trip --------------------------------------------
  const char* path = "/tmp/modb_fleet.modb";
  if (!SaveRelation(planes, path).ok()) {
    std::printf("save failed\n");
    return 1;
  }
  Relation back = *LoadRelation(path);
  std::printf("\nsaved and reloaded %zu tuples from %s: %s\n",
              back.NumTuples(), path,
              back.NumTuples() == planes.NumTuples() ? "ok" : "MISMATCH");
  return 0;
}
