// Moving regions: a hurricane (a drifting, growing region with an eye)
// sweeping across shipping lanes — the "more dynamic second class of
// objects" the paper's introduction motivates.
//
// Shows: uregion construction, lifted inside (Section 5.2 algorithm),
// lifted area (exact quadratic closure), and traversed projection.
//
// Build & run:  ./build/examples/hurricane

#include <cstdio>
#include <random>

#include "gen/region_gen.h"
#include "gen/trajectory_gen.h"
#include "temporal/lifted_ops.h"
#include "temporal/mregion_ops.h"

using namespace modb;

int main() {
  std::mt19937_64 rng(2026);

  // ---- the hurricane: drifting north-west, growing, with an eye ---------
  MovingRegionOptions storm_opts;
  storm_opts.shape.num_vertices = 14;
  storm_opts.shape.radius = 80;
  storm_opts.shape.jitter = 0.15;
  storm_opts.shape.center = Point(600, 100);
  storm_opts.shape.with_hole = true;  // The eye.
  storm_opts.num_units = 6;
  storm_opts.unit_duration = 12;  // Hours per slice.
  storm_opts.drift = Point(-70, 45);
  storm_opts.scale_per_unit = 1.08;
  MovingRegion storm = *GenerateMovingRegion(rng, storm_opts);
  std::printf("hurricane: %zu uregion units, %zu moving segments each\n",
              storm.NumUnits(), storm.unit(0).NumMSegs());

  // ---- lifted area over time ---------------------------------------------
  MovingReal area = *Area(storm);
  std::printf("area at t=0h: %.0f km^2, at t=36h: %.0f km^2, at t=72h: %.0f "
              "km^2\n",
              area.AtInstant(0.5).val(), area.AtInstant(36).val(),
              area.AtInstant(71.5).val());

  // ---- ships on shipping lanes -------------------------------------------
  struct Ship {
    const char* name;
    Point from, to;
  };
  const Ship ships[] = {
      {"MV Palermo", Point(700, 500), Point(0, 80)},
      {"MV Kotka", Point(0, 300), Point(800, 300)},
      {"MV Aalborg", Point(50, 0), Point(50, 560)},
  };
  for (const Ship& ship : ships) {
    MovingPoint route = *StraightRoute(ship.from, ship.to, 0, 72, 12);
    MovingBool in_storm = *Inside(route, storm);
    Periods danger = WhenTrue(in_storm);
    double hours = 0;
    for (const TimeInterval& iv : danger.intervals()) hours += Duration(iv);
    std::printf("%-12s inside the hurricane for %5.1f h  %s\n", ship.name,
                hours, danger.ToString().c_str());
  }

  // ---- traversed region: total area ever touched --------------------------
  Region footprint = *Traversed(storm);
  std::printf("storm footprint: %.0f km^2 across %zu faces (bbox %.0f x %.0f "
              "km)\n",
              footprint.Area(), footprint.NumFaces(),
              footprint.BoundingBox().max_x - footprint.BoundingBox().min_x,
              footprint.BoundingBox().max_y - footprint.BoundingBox().min_y);
  return 0;
}
