// Building sliced representations from sampled observations — the
// ingestion path of a moving objects database: GPS fixes arrive as
// (instant, position) pairs; consecutive fixes become upoint units; the
// MappingBuilder keeps the representation minimal by merging units whose
// motion does not change (the uniqueness/minimality constraints of
// Section 3.2.4).
//
// Also demonstrates the storage layer: each track becomes one tuple whose
// large unit array lives in page extents ([DG98] behavior), and the
// simplified fleet is committed to a crash-consistent VersionedSpillStore
// and read back through a pinned epoch. --device picks the PageDevice
// backing that store: `file` (pread/pwrite, the default) or `mmap`
// (reads served zero-copy out of a shared mapping). Both write the
// identical MODBPAGE format, so a store created under one reopens under
// the other.
//
// Build & run:  ./build/examples/tracker [--device=file|mmap]

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <random>
#include <string>
#include <system_error>
#include <vector>

#include "ext/simplify.h"
#include "storage/flat.h"
#include "storage/recovery.h"
#include "temporal/lifted_ops.h"
#include "temporal/moving.h"

using namespace modb;

namespace {

struct Fix {
  Instant t;
  Point pos;
};

// A vehicle driving a Manhattan-style grid: long straight stretches mean
// many samples share one motion — the builder merges them.
std::vector<Fix> SimulateGpsTrack(std::mt19937_64& rng, int num_fixes) {
  std::vector<Fix> fixes;
  Point pos(0, 0);
  Point dir(1, 0);
  std::uniform_int_distribution<int> turn(0, 9);
  std::normal_distribution<double> gps_noise(0, 1.5);  // Receiver jitter.
  for (int i = 0; i < num_fixes; ++i) {
    fixes.push_back(
        {double(i), Point(pos.x + gps_noise(rng), pos.y + gps_noise(rng))});
    if (turn(rng) == 0) {
      dir = (dir.x != 0) ? Point(0, turn(rng) % 2 ? 1 : -1)
                         : Point(turn(rng) % 2 ? 1 : -1, 0);
    }
    pos = pos + dir * 10.0;
  }
  return fixes;
}

Result<MovingPoint> IngestTrack(const std::vector<Fix>& fixes) {
  MappingBuilder<UPoint> builder;
  for (std::size_t i = 0; i + 1 < fixes.size(); ++i) {
    bool last = (i + 2 == fixes.size());
    auto iv = TimeInterval::Make(fixes[i].t, fixes[i + 1].t, true, last);
    if (!iv.ok()) return iv.status();
    auto unit = UPoint::FromEndpoints(*iv, fixes[i].pos, fixes[i + 1].pos);
    if (!unit.ok()) return unit.status();
    MODB_RETURN_IF_ERROR(builder.Append(*unit));
  }
  return builder.Build();
}

}  // namespace

int main(int argc, char** argv) {
  StoreDeviceKind device = StoreDeviceKind::kFile;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--device=file") == 0) {
      device = StoreDeviceKind::kFile;
    } else if (std::strcmp(argv[i], "--device=mmap") == 0) {
      device = StoreDeviceKind::kMmap;
    } else {
      std::fprintf(stderr, "usage: tracker [--device=file|mmap]\n");
      return 2;
    }
  }

  std::mt19937_64 rng(7);
  AttributeStore store;
  std::vector<MovingPoint> fleet;

  std::size_t total_fixes = 0, total_units = 0, total_tuple_bytes = 0;
  for (int vehicle = 0; vehicle < 5; ++vehicle) {
    std::vector<Fix> fixes = SimulateGpsTrack(rng, 2000);
    MovingPoint track = *IngestTrack(fixes);
    total_fixes += fixes.size();
    total_units += track.NumUnits();

    // Lossy second stage: simplify with a 5 m synchronous error bound.
    MovingPoint simplified = *SimplifyTrajectory(track, 5.0);

    std::string tuple = store.Put(ToFlat(simplified));
    total_tuple_bytes += tuple.size();

    // A few queries on the ingested track.
    Line path = Trajectory(track);
    MovingReal dist = *LiftedDistance(track, fixes.front().pos);
    std::printf(
        "vehicle %d: %4zu fixes -> %3zu units -> %3zu units @5m "
        "(%.0fx total), path %6.0f m, ends %4.0f m from start\n",
        vehicle, fixes.size(), track.NumUnits(), simplified.NumUnits(),
        double(fixes.size()) / double(simplified.NumUnits()), path.Length(),
        dist.Final().val());
    fleet.push_back(std::move(simplified));
  }

  std::printf(
      "\ningest summary: %zu fixes -> %zu units; tuples %zu bytes, "
      "page store %zu pages (%zu KiB)\n",
      total_fixes, total_units, total_tuple_bytes,
      store.page_store().NumPages(), store.page_store().BytesAllocated() / 1024);

  // Durability: commit the simplified fleet to a versioned store on the
  // chosen device, then reopen it and read every track back through a
  // pinned epoch — the read path concurrent queries would use while the
  // next day's ingest commits.
  const std::string store_path =
      (std::filesystem::temp_directory_path() / "modb_tracker.store").string();
  std::error_code ec;
  std::filesystem::remove(store_path, ec);
  VersionedSpillStore::Options opts;
  opts.device = device;
  Result<VersionedSpillStore> created =
      VersionedSpillStore::Create(store_path, opts);
  if (!created.ok()) {
    std::fprintf(stderr, "tracker: creating store: %s\n",
                 created.status().ToString().c_str());
    return 1;
  }
  for (const MovingPoint& track : fleet) {
    if (Result<std::size_t> slot = created->StageValue(track); !slot.ok()) {
      std::fprintf(stderr, "tracker: staging track: %s\n",
                   slot.status().ToString().c_str());
      return 1;
    }
  }
  if (Status s = created->Commit(); !s.ok()) {
    std::fprintf(stderr, "tracker: commit: %s\n", s.ToString().c_str());
    return 1;
  }

  Result<VersionedSpillStore> reopened =
      VersionedSpillStore::Open(store_path, opts);
  if (!reopened.ok()) {
    std::fprintf(stderr, "tracker: reopening store: %s\n",
                 reopened.status().ToString().c_str());
    return 1;
  }
  VersionedSpillStore::EpochPin pin = reopened->PinEpoch();
  std::size_t loaded_units = 0;
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    Result<MovingPoint> back = reopened->LoadRoot<MovingPoint>(pin, i);
    if (!back.ok() || back->NumUnits() != fleet[i].NumUnits()) {
      std::fprintf(stderr, "tracker: track %zu did not survive the store\n",
                   i);
      return 1;
    }
    loaded_units += back->NumUnits();
  }
  std::printf(
      "durable fleet: %zu tracks (%zu units) committed at epoch %llu on "
      "the %s device and reloaded through a pinned epoch\n",
      fleet.size(), loaded_units, (unsigned long long)reopened->epoch(),
      device == StoreDeviceKind::kMmap ? "mmap" : "file");
  std::filesystem::remove(store_path, ec);
  return 0;
}
