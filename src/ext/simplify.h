// Extension: trajectory simplification. A mapping(upoint) built from raw
// samples often carries far more units than the motion warrants; this
// module reduces the unit list with a Douglas–Peucker pass over the
// moving point's (x, y, t) polyline — the "3D polyline" view of a moving
// point the paper describes in Section 1 — while guaranteeing a spatial
// error bound: at every original breakpoint instant, the simplified
// point's position deviates by at most `tolerance`.

#ifndef MODB_EXT_SIMPLIFY_H_
#define MODB_EXT_SIMPLIFY_H_

#include "core/status.h"
#include "temporal/moving.h"

namespace modb {

/// Simplifies a continuous moving point (consecutive units share their
/// boundary positions) to fewer units. Requires contiguous deftime;
/// returns kFailedPrecondition for mappings with temporal gaps (simplify
/// each contiguous part separately via AtPeriods).
Result<MovingPoint> SimplifyTrajectory(const MovingPoint& mp,
                                       double tolerance);

/// Maximum position deviation between two moving points at the union of
/// both unit breakpoints and midpoints (the error metric SimplifyTrajectory
/// bounds). Instants where either is undefined are skipped.
double TrajectoryDeviation(const MovingPoint& a, const MovingPoint& b);

}  // namespace modb

#endif  // MODB_EXT_SIMPLIFY_H_
