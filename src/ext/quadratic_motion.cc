#include "ext/quadratic_motion.h"

#include <cmath>

namespace modb {

double QuadraticMotion::AccelerationNorm() const {
  return 2 * std::sqrt(x2 * x2 + y2 * y2);
}

QuadraticMotion QuadraticMotion::Ballistic(Point pos0, Point vel0,
                                           Point accel, Instant t0) {
  // p(t) = pos0 + vel0·(t - t0) + accel/2·(t - t0)².
  QuadraticMotion q;
  q.x2 = accel.x / 2;
  q.y2 = accel.y / 2;
  q.x1 = vel0.x - accel.x * t0;
  q.y1 = vel0.y - accel.y * t0;
  q.x0 = pos0.x - vel0.x * t0 + q.x2 * t0 * t0;
  q.y0 = pos0.y - vel0.y * t0 + q.y2 * t0 * t0;
  return q;
}

int LinearizeSliceCount(const QuadraticMotion& motion,
                        const TimeInterval& interval, double max_error) {
  double dur = Duration(interval);
  if (dur == 0) return 1;
  double accel = motion.AccelerationNorm();
  if (accel == 0) return 1;  // Already linear.
  // Chord error over a span h is accel·h²/8 ≤ max_error.
  double h = std::sqrt(8 * max_error / accel);
  return std::max(1, int(std::ceil(dur / h)));
}

Result<MovingPoint> Linearize(const QuadraticMotion& motion,
                              const TimeInterval& interval,
                              double max_error) {
  if (max_error <= 0) {
    return Status::InvalidArgument("max_error must be positive");
  }
  double dur = Duration(interval);
  if (dur == 0) {
    auto unit = UPoint::Static(interval, motion.At(interval.start()));
    if (!unit.ok()) return unit.status();
    return MovingPoint::Make({*unit});
  }
  int slices = LinearizeSliceCount(motion, interval, max_error);
  MappingBuilder<UPoint> builder;
  for (int k = 0; k < slices; ++k) {
    double t0 = interval.start() + dur * k / slices;
    double t1 = interval.start() + dur * (k + 1) / slices;
    bool lc = (k == 0) ? interval.left_closed() : true;
    bool rc = (k == slices - 1) ? interval.right_closed() : false;
    auto iv = TimeInterval::Make(t0, t1, lc, rc);
    if (!iv.ok()) return iv.status();
    auto unit = UPoint::FromEndpoints(*iv, motion.At(t0), motion.At(t1));
    if (!unit.ok()) return unit.status();
    MODB_RETURN_IF_ERROR(builder.Append(*unit));
  }
  return builder.Build();
}

namespace {

// Recursively emits slice boundaries so that the chord through each span
// stays within max_error of the path at the span midpoint (a sufficient
// probe for convex-ish spans; halving continues until max_depth).
void Subdivide(const std::function<Point(Instant)>& path, Instant t0,
               Instant t1, double max_error, int depth,
               std::vector<Instant>* boundaries) {
  Point p0 = path(t0);
  Point p1 = path(t1);
  Instant mid = (t0 + t1) / 2;
  Point pm = path(mid);
  Point chord_mid((p0.x + p1.x) / 2, (p0.y + p1.y) / 2);
  if (depth <= 0 || Distance(pm, chord_mid) <= max_error) {
    boundaries->push_back(t1);
    return;
  }
  Subdivide(path, t0, mid, max_error, depth - 1, boundaries);
  Subdivide(path, mid, t1, max_error, depth - 1, boundaries);
}

}  // namespace

Result<MovingPoint> LinearizePath(const std::function<Point(Instant)>& path,
                                  const TimeInterval& interval,
                                  double max_error, int max_depth) {
  if (max_error <= 0) {
    return Status::InvalidArgument("max_error must be positive");
  }
  double dur = Duration(interval);
  if (dur == 0) {
    auto unit = UPoint::Static(interval, path(interval.start()));
    if (!unit.ok()) return unit.status();
    return MovingPoint::Make({*unit});
  }
  std::vector<Instant> boundaries = {interval.start()};
  Subdivide(path, interval.start(), interval.end(), max_error, max_depth,
            &boundaries);
  MappingBuilder<UPoint> builder;
  for (std::size_t k = 0; k + 1 < boundaries.size(); ++k) {
    bool lc = (k == 0) ? interval.left_closed() : true;
    bool rc = (k + 2 == boundaries.size()) ? interval.right_closed() : false;
    auto iv = TimeInterval::Make(boundaries[k], boundaries[k + 1], lc, rc);
    if (!iv.ok()) return iv.status();
    auto unit = UPoint::FromEndpoints(*iv, path(boundaries[k]),
                                      path(boundaries[k + 1]));
    if (!unit.ok()) return unit.status();
    MODB_RETURN_IF_ERROR(builder.Append(*unit));
  }
  return builder.Build();
}

}  // namespace modb
