#include "ext/simplify.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/real.h"

namespace modb {

namespace {

struct Sample {
  Instant t;
  Point pos;
};

// Distance at instant s.t between the sample position and the linear
// interpolation of (first..last) evaluated at the same *instant* — the
// synchronous Euclidean distance, the right error metric for moving
// points (space-only Douglas–Peucker would ignore timing errors).
double SynchronousDeviation(const Sample& first, const Sample& last,
                            const Sample& s) {
  double dur = last.t - first.t;
  double f = dur == 0 ? 0 : (s.t - first.t) / dur;
  Point interp(first.pos.x + (last.pos.x - first.pos.x) * f,
               first.pos.y + (last.pos.y - first.pos.y) * f);
  return Distance(interp, s.pos);
}

// Classic Douglas–Peucker on the samples with the synchronous metric.
void Peucker(const std::vector<Sample>& samples, std::size_t lo,
             std::size_t hi, double tolerance, std::vector<bool>* keep) {
  if (hi <= lo + 1) return;
  double worst = -1;
  std::size_t split = lo;
  for (std::size_t i = lo + 1; i < hi; ++i) {
    double d = SynchronousDeviation(samples[lo], samples[hi], samples[i]);
    if (d > worst) {
      worst = d;
      split = i;
    }
  }
  if (worst <= tolerance) return;
  (*keep)[split] = true;
  Peucker(samples, lo, split, tolerance, keep);
  Peucker(samples, split, hi, tolerance, keep);
}

}  // namespace

Result<MovingPoint> SimplifyTrajectory(const MovingPoint& mp,
                                       double tolerance) {
  if (tolerance < 0) {
    return Status::InvalidArgument("tolerance must be non-negative");
  }
  if (mp.NumUnits() <= 1) return mp;
  // Require continuity: contiguous deftime and matching positions at unit
  // boundaries.
  for (std::size_t i = 0; i + 1 < mp.NumUnits(); ++i) {
    const TimeInterval& cur = mp.unit(i).interval();
    const TimeInterval& nxt = mp.unit(i + 1).interval();
    if (cur.end() != nxt.start()) {
      return Status::FailedPrecondition(
          "simplify requires a gap-free moving point");
    }
    if (!ApproxEqual(mp.unit(i).EndPoint(), mp.unit(i + 1).StartPoint(),
                     kEpsilon * 1e3)) {
      return Status::FailedPrecondition(
          "simplify requires continuous unit boundaries");
    }
  }

  std::vector<Sample> samples;
  samples.reserve(mp.NumUnits() + 1);
  samples.push_back(
      {mp.unit(0).interval().start(), mp.unit(0).StartPoint()});
  for (const UPoint& u : mp.units()) {
    samples.push_back({u.interval().end(), u.EndPoint()});
  }

  std::vector<bool> keep(samples.size(), false);
  keep.front() = keep.back() = true;
  Peucker(samples, 0, samples.size() - 1, tolerance, &keep);

  MappingBuilder<UPoint> builder;
  std::size_t prev = 0;
  bool overall_lc = mp.unit(0).interval().left_closed();
  bool overall_rc = mp.units().back().interval().right_closed();
  std::vector<std::size_t> kept_idx;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (keep[i]) kept_idx.push_back(i);
  }
  for (std::size_t k = 0; k + 1 < kept_idx.size(); ++k) {
    prev = kept_idx[k];
    std::size_t next = kept_idx[k + 1];
    bool lc = (k == 0) ? overall_lc : true;
    bool rc = (k + 2 == kept_idx.size()) ? overall_rc : false;
    auto iv =
        TimeInterval::Make(samples[prev].t, samples[next].t, lc, rc);
    if (!iv.ok()) return iv.status();
    auto unit = UPoint::FromEndpoints(*iv, samples[prev].pos,
                                      samples[next].pos);
    if (!unit.ok()) return unit.status();
    MODB_RETURN_IF_ERROR(builder.Append(*unit));
  }
  return builder.Build();
}

double TrajectoryDeviation(const MovingPoint& a, const MovingPoint& b) {
  std::vector<Instant> probes;
  auto add_breaks = [&probes](const MovingPoint& m) {
    for (const UPoint& u : m.units()) {
      probes.push_back(u.interval().start());
      probes.push_back(u.interval().end());
      probes.push_back((u.interval().start() + u.interval().end()) / 2);
    }
  };
  add_breaks(a);
  add_breaks(b);
  double worst = 0;
  for (Instant t : probes) {
    Intime<Point> pa = a.AtInstant(t);
    Intime<Point> pb = b.AtInstant(t);
    if (!pa.defined || !pb.defined) continue;
    worst = std::max(worst, Distance(pa.val(), pb.val()));
  }
  return worst;
}

}  // namespace modb
