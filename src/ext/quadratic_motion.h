// Extension: higher-order motion descriptions and their reduction to the
// sliced linear representation.
//
// The paper deliberately restricts the discrete model to linear unit
// functions but notes that "a moving point could be represented not only
// by a 3D polyline but also by higher order polynomial splines — both
// cases are included within the abstract model" (Section 1), and that a
// sequence of linear slices "can reach an arbitrary precision" (Figure 5
// discussion). This module provides exactly that bridge: quadratic motion
// (constant acceleration) and generic smooth paths, linearized into a
// mapping(upoint) with a guaranteed error bound.

#ifndef MODB_EXT_QUADRATIC_MOTION_H_
#define MODB_EXT_QUADRATIC_MOTION_H_

#include <functional>

#include "core/interval.h"
#include "core/status.h"
#include "spatial/point.h"
#include "temporal/moving.h"

namespace modb {

/// A point under constant acceleration:
///   x(t) = x0 + x1·t + x2·t²,  y(t) = y0 + y1·t + y2·t².
struct QuadraticMotion {
  double x0 = 0, x1 = 0, x2 = 0;
  double y0 = 0, y1 = 0, y2 = 0;

  Point At(Instant t) const {
    return Point(x0 + (x1 + x2 * t) * t, y0 + (y1 + y2 * t) * t);
  }

  /// Magnitude of the (constant) acceleration vector (2·(x2, y2)).
  double AccelerationNorm() const;

  /// Ballistic construction: initial position, velocity, acceleration.
  static QuadraticMotion Ballistic(Point pos0, Point vel0, Point accel,
                                   Instant t0 = 0);
};

/// Linearizes a quadratic motion over `interval` into a mapping(upoint)
/// whose position error never exceeds `max_error`.
///
/// The chord error of a quadratic over a span h is ‖accel‖·h²/8, so the
/// slice count is computed in closed form — no adaptive search needed.
Result<MovingPoint> Linearize(const QuadraticMotion& motion,
                              const TimeInterval& interval, double max_error);

/// Number of slices Linearize will use (exposed for tests/benchmarks).
int LinearizeSliceCount(const QuadraticMotion& motion,
                        const TimeInterval& interval, double max_error);

/// Linearizes an arbitrary (continuous) path by adaptive bisection: a
/// span is split while the path's midpoint deviates from the chord by
/// more than `max_error`. `max_depth` bounds the recursion (the result is
/// then best-effort, reported via the status). This is the generic
/// ingestion path for smooth trajectories.
Result<MovingPoint> LinearizePath(const std::function<Point(Instant)>& path,
                                  const TimeInterval& interval,
                                  double max_error, int max_depth = 24);

}  // namespace modb

#endif  // MODB_EXT_QUADRATIC_MOTION_H_
