// MmapPageDevice: a PageDevice that maps the MODBPAGE file into the
// address space and serves reads as pointers into the mapping — no
// copy, no syscall on the hot path. The exemplar is the classic
// header + fixed-stride mapped-records layout (SNIPPETS.md Snippet 1):
// page `p` lives at kPageFileHeaderSize + p * kPageSize, exactly the
// FilePageDevice format, so the two devices open each other's files.
//
// Growth never remaps: the constructor maps a large fixed virtual
// reservation (Options::reserve_bytes) with MAP_SHARED and the file is
// extended underneath it with ftruncate, so pointers handed out by
// MappedPage() stay valid for the life of the device — pinned
// zero-copy readers survive concurrent growth. Pages the header
// admits but the file does not materialize (a crash tore a growth)
// are detected by bounds-checking against the materialized file size
// instead of faulting SIGBUS, and report the same typed kDataLoss
// shape as FilePageDevice so recovery heals them identically.
//
// Durability: WritePage is a memcpy into the shared mapping; bytes
// reach the file at the kernel's leisure or at Sync() (msync MS_SYNC).
// The two-phase commit in storage/recovery.h calls FlushAll — which
// ends with Sync() — before and after the root-record write, so the
// commit-point ordering is identical on both devices.

#ifndef MODB_STORAGE_MMAP_DEVICE_H_
#define MODB_STORAGE_MMAP_DEVICE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

#include "core/status.h"
#include "storage/page_store.h"

namespace modb {

/// A zero-copy PageDevice over the MODBPAGE file format via mmap.
class MmapPageDevice : public PageDevice {
 public:
  struct Options {
    /// Virtual address space reserved for the mapping. Growth beyond it
    /// returns kResourceExhausted; it costs no physical memory, so the
    /// default is deliberately generous.
    uint64_t reserve_bytes = uint64_t(16) << 30;  // 16 GiB
  };

  /// Creates (truncating) an empty device file and maps it.
  static Result<MmapPageDevice> Create(const std::string& path,
                                       const Options& options);
  static Result<MmapPageDevice> Create(const std::string& path) {
    return Create(path, Options());
  }

  /// Opens and maps an existing device file (e.g. one written by
  /// FilePageDevice or PageStore::SaveToFile).
  static Result<MmapPageDevice> Open(const std::string& path,
                                     const Options& options);
  static Result<MmapPageDevice> Open(const std::string& path) {
    return Open(path, Options());
  }

  ~MmapPageDevice() override;

  MmapPageDevice(const MmapPageDevice&) = delete;
  MmapPageDevice& operator=(const MmapPageDevice&) = delete;
  MmapPageDevice(MmapPageDevice&& other) noexcept;
  MmapPageDevice& operator=(MmapPageDevice&& other) noexcept;

  // PageDevice:
  std::size_t NumPages() const override {
    return std::size_t(num_pages_.load(std::memory_order_acquire));
  }
  Result<uint32_t> AllocatePages(uint32_t n) override;
  Status ReadPage(uint32_t page, char* out) const override;
  Status WritePage(uint32_t page, const char* data) override;
  Result<const char*> MappedPage(uint32_t page) const override;
  void Prefetch(uint32_t first_page, uint32_t num_pages) const override;
  Status Sync() override;

  const std::string& path() const { return path_; }
  uint64_t reserve_bytes() const { return reserved_bytes_; }

 private:
  MmapPageDevice() = default;

  static Result<MmapPageDevice> MapFd(std::string path, int fd,
                                      uint64_t file_size,
                                      const Options& options);

  /// Refreshes the 24-byte header inside the mapping from the members.
  void WriteHeaderInMap();

  /// Grows the file to at least `want_bytes` via ftruncate.
  Status Materialize(uint64_t want_bytes);

  std::string path_;
  int fd_ = -1;
  char* base_ = nullptr;
  uint64_t reserved_bytes_ = 0;
  std::atomic<uint64_t> num_pages_{0};
  uint64_t bytes_used_ = 0;
  // Actual file size: pages whose bytes end beyond it are phantoms a
  // torn growth admitted but never materialized. Readers race benignly
  // with the writer's ftruncate growth.
  std::atomic<uint64_t> materialized_bytes_{0};
};

}  // namespace modb

#endif  // MODB_STORAGE_MMAP_DEVICE_H_
