#include "storage/mmap_device.h"

#include <errno.h>
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>

#include "obs/metrics.h"
#include "storage/fault.h"

namespace modb {

namespace {
constexpr uint64_t kFileMagic = 0x4d4f444250414745ull;  // "MODBPAGE".

uint64_t OsPageAlignUp(uint64_t n) {
  const uint64_t os_page = uint64_t(::sysconf(_SC_PAGESIZE));
  return (n + os_page - 1) / os_page * os_page;
}
}  // namespace

MmapPageDevice::~MmapPageDevice() {
  if (base_ != nullptr) ::munmap(base_, reserved_bytes_);
  if (fd_ >= 0) ::close(fd_);
}

MmapPageDevice::MmapPageDevice(MmapPageDevice&& other) noexcept
    : path_(std::move(other.path_)),
      fd_(other.fd_),
      base_(other.base_),
      reserved_bytes_(other.reserved_bytes_),
      num_pages_(other.num_pages_.load(std::memory_order_relaxed)),
      bytes_used_(other.bytes_used_),
      materialized_bytes_(
          other.materialized_bytes_.load(std::memory_order_relaxed)) {
  other.fd_ = -1;
  other.base_ = nullptr;
}

MmapPageDevice& MmapPageDevice::operator=(MmapPageDevice&& other) noexcept {
  if (this != &other) {
    if (base_ != nullptr) ::munmap(base_, reserved_bytes_);
    if (fd_ >= 0) ::close(fd_);
    path_ = std::move(other.path_);
    fd_ = other.fd_;
    base_ = other.base_;
    reserved_bytes_ = other.reserved_bytes_;
    num_pages_.store(other.num_pages_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    bytes_used_ = other.bytes_used_;
    materialized_bytes_.store(
        other.materialized_bytes_.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    other.fd_ = -1;
    other.base_ = nullptr;
  }
  return *this;
}

void MmapPageDevice::WriteHeaderInMap() {
  uint64_t magic = kFileMagic;
  uint64_t num_pages = num_pages_.load(std::memory_order_relaxed);
  std::memcpy(base_, &magic, sizeof magic);
  std::memcpy(base_ + 8, &num_pages, sizeof num_pages);
  std::memcpy(base_ + 16, &bytes_used_, sizeof bytes_used_);
}

Status MmapPageDevice::Materialize(uint64_t want_bytes) {
  if (want_bytes > reserved_bytes_) {
    return Status::ResourceExhausted(
        "mmap reservation exhausted for " + path_ + ": need " +
        std::to_string(want_bytes) + " bytes, reserved " +
        std::to_string(reserved_bytes_));
  }
  if (::ftruncate(fd_, off_t(want_bytes)) != 0) {
    return Status::Internal("cannot grow " + path_ + ": " +
                            std::strerror(errno));
  }
  materialized_bytes_.store(want_bytes, std::memory_order_release);
  return Status::OK();
}

Result<MmapPageDevice> MmapPageDevice::MapFd(std::string path, int fd,
                                             uint64_t file_size,
                                             const Options& options) {
  MmapPageDevice dev;
  dev.path_ = std::move(path);
  dev.fd_ = fd;
  dev.reserved_bytes_ =
      std::max(OsPageAlignUp(options.reserve_bytes), OsPageAlignUp(file_size));
  void* base = ::mmap(nullptr, dev.reserved_bytes_, PROT_READ | PROT_WRITE,
                      MAP_SHARED, fd, 0);
  if (base == MAP_FAILED) {
    return Status::Internal("cannot mmap " + dev.path_ + ": " +
                            std::strerror(errno));
  }
  dev.base_ = static_cast<char*>(base);
  dev.materialized_bytes_.store(file_size, std::memory_order_relaxed);
  return dev;
}

Result<MmapPageDevice> MmapPageDevice::Create(const std::string& path,
                                              const Options& options) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::Internal("cannot create " + path + ": " +
                            std::strerror(errno));
  }
  if (::ftruncate(fd, off_t(kPageFileHeaderSize)) != 0) {
    Status st = Status::Internal("cannot size " + path + ": " +
                                 std::strerror(errno));
    ::close(fd);
    return st;
  }
  Result<MmapPageDevice> dev =
      MapFd(path, fd, kPageFileHeaderSize, options);
  if (!dev.ok()) {
    ::close(fd);
    return dev.status();
  }
  dev->WriteHeaderInMap();
  MODB_COUNTER_INC("storage.mmap_device.creates");
  return dev;
}

Result<MmapPageDevice> MmapPageDevice::Open(const std::string& path,
                                            const Options& options) {
  int fd = ::open(path.c_str(), O_RDWR | O_CLOEXEC);
  if (fd < 0) {
    return Status::NotFound("cannot open " + path + ": " +
                            std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    Status err = Status::Internal("cannot stat " + path + ": " +
                                  std::strerror(errno));
    ::close(fd);
    return err;
  }
  if (uint64_t(st.st_size) < kPageFileHeaderSize) {
    ::close(fd);
    return Status::InvalidArgument("not a MODB page file: " + path);
  }
  Result<MmapPageDevice> dev =
      MapFd(path, fd, uint64_t(st.st_size), options);
  if (!dev.ok()) {
    ::close(fd);
    return dev.status();
  }
  uint64_t magic = 0, num_pages = 0;
  std::memcpy(&magic, dev->base_, sizeof magic);
  std::memcpy(&num_pages, dev->base_ + 8, sizeof num_pages);
  std::memcpy(&dev->bytes_used_, dev->base_ + 16, sizeof dev->bytes_used_);
  if (magic != kFileMagic) {
    return Status::InvalidArgument("not a MODB page file: " + path);
  }
  dev->num_pages_.store(num_pages, std::memory_order_relaxed);
  MODB_COUNTER_INC("storage.mmap_device.opens");
  return dev;
}

Result<uint32_t> MmapPageDevice::AllocatePages(uint32_t n) {
  std::size_t keep = kFaultKeepAll;
  MODB_RETURN_IF_ERROR(
      FaultInjector::Global().OnWrite("mmap_device.allocate_pages", &keep));
  const uint64_t old_pages = num_pages_.load(std::memory_order_relaxed);
  const uint32_t first = uint32_t(old_pages);
  // A torn allocation materializes only a prefix of the new pages'
  // bytes; the header below is still updated, so later reads of the
  // missing tail report kDataLoss — the same crash-mid-grow shape as
  // FilePageDevice (phantom pages, healed by recovery).
  const uint64_t grow = std::min(uint64_t(keep), uint64_t(n) * kPageSize);
  const uint64_t want =
      std::max(materialized_bytes_.load(std::memory_order_relaxed),
               kPageFileHeaderSize + old_pages * kPageSize + grow);
  MODB_RETURN_IF_ERROR(Materialize(want));
  num_pages_.store(old_pages + n, std::memory_order_release);
  bytes_used_ += std::size_t(n) * kPageSize;
  WriteHeaderInMap();
  MODB_COUNTER_ADD("storage.mmap_device.pages_allocated", n);
  return first;
}

Result<const char*> MmapPageDevice::MappedPage(uint32_t page) const {
  if (page >= num_pages_.load(std::memory_order_acquire)) {
    MODB_COUNTER_INC("storage.mmap_device.read_errors");
    return Status::OutOfRange("page id out of range");
  }
  MODB_RETURN_IF_ERROR(FaultInjector::Global().OnRead("mmap_device.read_page"));
  const uint64_t offset = kPageFileHeaderSize + uint64_t(page) * kPageSize;
  const uint64_t materialized =
      materialized_bytes_.load(std::memory_order_acquire);
  if (offset + kPageSize > materialized) {
    // A phantom page: the header admits it but the file ends first.
    // Touching it through the mapping would SIGBUS, so bounds-check and
    // report the same typed truncation error as FilePageDevice.
    const uint64_t got = materialized > offset ? materialized - offset : 0;
    MODB_COUNTER_INC("storage.mmap_device.read_errors");
    return Status::DataLoss(
        "short page read from " + path_ + " at offset " +
        std::to_string(offset) + ": expected " + std::to_string(kPageSize) +
        " bytes, got " + std::to_string(got));
  }
  MODB_COUNTER_INC("storage.mmap_device.page_reads");
  return Result<const char*>(base_ + offset);
}

Status MmapPageDevice::ReadPage(uint32_t page, char* out) const {
  Result<const char*> mapped = MappedPage(page);
  if (!mapped.ok()) return mapped.status();
  std::memcpy(out, *mapped, kPageSize);
  return Status::OK();
}

Status MmapPageDevice::WritePage(uint32_t page, const char* data) {
  if (page >= num_pages_.load(std::memory_order_acquire)) {
    MODB_COUNTER_INC("storage.mmap_device.write_errors");
    return Status::OutOfRange("page id out of range");
  }
  std::size_t keep = kFaultKeepAll;
  MODB_RETURN_IF_ERROR(
      FaultInjector::Global().OnWrite("mmap_device.write_page", &keep));
  const uint64_t offset = kPageFileHeaderSize + uint64_t(page) * kPageSize;
  const std::size_t want = std::min(keep, kPageSize);
  // Writing to a phantom page materializes exactly the bytes persisted
  // (FilePageDevice's pwrite extends the file the same way): a torn
  // write to the device's tail leaves a short page behind.
  const uint64_t end = offset + want;
  if (end > materialized_bytes_.load(std::memory_order_relaxed)) {
    MODB_RETURN_IF_ERROR(Materialize(end));
  }
  std::memcpy(base_ + offset, data, want);
  MODB_COUNTER_INC("storage.mmap_device.page_writes");
  return Status::OK();
}

void MmapPageDevice::Prefetch(uint32_t first_page, uint32_t num_pages) const {
  if (num_pages == 0) return;
  const uint64_t os_page = uint64_t(::sysconf(_SC_PAGESIZE));
  uint64_t begin = kPageFileHeaderSize + uint64_t(first_page) * kPageSize;
  uint64_t end = begin + uint64_t(num_pages) * kPageSize;
  end = std::min(end, materialized_bytes_.load(std::memory_order_acquire));
  begin = begin / os_page * os_page;
  if (end <= begin) return;
  ::madvise(base_ + begin, std::size_t(end - begin), MADV_WILLNEED);
  MODB_COUNTER_ADD("storage.mmap_device.prefetch_pages", num_pages);
}

Status MmapPageDevice::Sync() {
  const uint64_t len =
      OsPageAlignUp(materialized_bytes_.load(std::memory_order_acquire));
  if (len == 0) return Status::OK();
  if (::msync(base_, std::size_t(std::min(len, reserved_bytes_)), MS_SYNC) !=
      0) {
    return Status::Internal("msync of " + path_ + " failed: " +
                            std::strerror(errno));
  }
  MODB_COUNTER_INC("storage.mmap_device.syncs");
  return Status::OK();
}

}  // namespace modb
