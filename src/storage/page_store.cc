#include "storage/page_store.h"

#include <algorithm>
#include <cstring>
#include <fstream>

#include "obs/metrics.h"

namespace modb {

namespace {
constexpr uint64_t kFileMagic = 0x4d4f444250414745ull;  // "MODBPAGE".
}  // namespace

PageExtent PageStore::Write(std::string_view bytes) {
  PageExtent extent;
  extent.first_page = uint32_t(pages_.size());
  extent.num_bytes = uint32_t(bytes.size());
  extent.num_pages = uint32_t((bytes.size() + kPageSize - 1) / kPageSize);
  for (uint32_t i = 0; i < extent.num_pages; ++i) {
    std::size_t off = std::size_t(i) * kPageSize;
    std::size_t len = std::min(kPageSize, bytes.size() - off);
    std::string page(kPageSize, '\0');
    std::memcpy(page.data(), bytes.data() + off, len);
    pages_.push_back(std::move(page));
  }
  bytes_used_ += bytes.size();
  MODB_COUNTER_INC("storage.page_store.writes");
  MODB_COUNTER_ADD("storage.page_store.pages_written", extent.num_pages);
  MODB_COUNTER_ADD("storage.page_store.bytes_written", bytes.size());
  return extent;
}

Result<std::string> PageStore::Read(const PageExtent& extent) const {
  if (std::size_t(extent.first_page) + extent.num_pages > pages_.size()) {
    MODB_COUNTER_INC("storage.page_store.read_errors");
    return Status::OutOfRange("page extent out of range");
  }
  if (extent.num_bytes > std::size_t(extent.num_pages) * kPageSize) {
    MODB_COUNTER_INC("storage.page_store.read_errors");
    return Status::InvalidArgument("extent byte count exceeds its pages");
  }
  MODB_COUNTER_INC("storage.page_store.reads");
  MODB_COUNTER_ADD("storage.page_store.pages_read", extent.num_pages);
  MODB_COUNTER_ADD("storage.page_store.bytes_read", extent.num_bytes);
  std::string out;
  out.reserve(extent.num_bytes);
  std::size_t remaining = extent.num_bytes;
  for (uint32_t i = 0; i < extent.num_pages && remaining > 0; ++i) {
    std::size_t len = std::min(kPageSize, remaining);
    out.append(pages_[extent.first_page + i].data(), len);
    remaining -= len;
  }
  return out;
}

Status PageStore::SaveToFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::Internal("cannot open " + path + " for writing");
  uint64_t magic = kFileMagic;
  uint64_t num_pages = pages_.size();
  uint64_t bytes_used = bytes_used_;
  out.write(reinterpret_cast<const char*>(&magic), sizeof magic);
  out.write(reinterpret_cast<const char*>(&num_pages), sizeof num_pages);
  out.write(reinterpret_cast<const char*>(&bytes_used), sizeof bytes_used);
  for (const std::string& page : pages_) {
    out.write(page.data(), std::streamsize(kPageSize));
  }
  if (!out) return Status::Internal("short write to " + path);
  MODB_COUNTER_INC("storage.page_store.file_saves");
  MODB_COUNTER_ADD("storage.page_store.pages_saved", pages_.size());
  return Status::OK();
}

Result<PageStore> PageStore::LoadFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  uint64_t magic = 0, num_pages = 0, bytes_used = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof magic);
  in.read(reinterpret_cast<char*>(&num_pages), sizeof num_pages);
  in.read(reinterpret_cast<char*>(&bytes_used), sizeof bytes_used);
  if (!in || magic != kFileMagic) {
    return Status::InvalidArgument("not a MODB page file: " + path);
  }
  PageStore store;
  store.pages_.reserve(num_pages);
  for (uint64_t i = 0; i < num_pages; ++i) {
    std::string page(kPageSize, '\0');
    in.read(page.data(), std::streamsize(kPageSize));
    if (!in) return Status::InvalidArgument("truncated page file: " + path);
    store.pages_.push_back(std::move(page));
  }
  store.bytes_used_ = bytes_used;
  MODB_COUNTER_INC("storage.page_store.file_loads");
  MODB_COUNTER_ADD("storage.page_store.pages_loaded", store.pages_.size());
  return store;
}

}  // namespace modb
