#include "storage/page_store.h"

#include <algorithm>
#include <cstring>

#include "obs/metrics.h"
#include "storage/fault.h"

namespace modb {

namespace {
constexpr uint64_t kFileMagic = 0x4d4f444250414745ull;  // "MODBPAGE".
// File header: magic u64, num_pages u64, bytes_used u64 (all LE).
constexpr std::size_t kFileHeaderSize = 24;
}  // namespace

// -- PageStore ---------------------------------------------------------------

PageExtent PageStore::Write(std::string_view bytes) {
  PageExtent extent;
  extent.first_page = uint32_t(pages_.size());
  extent.num_bytes = uint32_t(bytes.size());
  extent.num_pages = uint32_t((bytes.size() + kPageSize - 1) / kPageSize);
  for (uint32_t i = 0; i < extent.num_pages; ++i) {
    std::size_t off = std::size_t(i) * kPageSize;
    std::size_t len = std::min(kPageSize, bytes.size() - off);
    std::string page(kPageSize, '\0');
    std::memcpy(page.data(), bytes.data() + off, len);
    pages_.push_back(std::move(page));
  }
  bytes_used_ += bytes.size();
  MODB_COUNTER_INC("storage.page_store.writes");
  MODB_COUNTER_ADD("storage.page_store.pages_written", extent.num_pages);
  MODB_COUNTER_ADD("storage.page_store.bytes_written", bytes.size());
  return extent;
}

Result<std::string> PageStore::Read(const PageExtent& extent) const {
  if (std::size_t(extent.first_page) + extent.num_pages > pages_.size()) {
    MODB_COUNTER_INC("storage.page_store.read_errors");
    return Status::OutOfRange("page extent out of range");
  }
  if (extent.num_bytes > std::size_t(extent.num_pages) * kPageSize) {
    MODB_COUNTER_INC("storage.page_store.read_errors");
    return Status::InvalidArgument("extent byte count exceeds its pages");
  }
  MODB_RETURN_IF_ERROR(
      FaultInjector::Global().OnRead("page_store.read_extent"));
  MODB_COUNTER_INC("storage.page_store.reads");
  MODB_COUNTER_ADD("storage.page_store.pages_read", extent.num_pages);
  MODB_COUNTER_ADD("storage.page_store.bytes_read", extent.num_bytes);
  std::string out;
  out.reserve(extent.num_bytes);
  std::size_t remaining = extent.num_bytes;
  for (uint32_t i = 0; i < extent.num_pages && remaining > 0; ++i) {
    std::size_t len = std::min(kPageSize, remaining);
    out.append(pages_[extent.first_page + i].data(), len);
    remaining -= len;
  }
  return out;
}

Result<uint32_t> PageStore::AllocatePages(uint32_t n) {
  uint32_t first = uint32_t(pages_.size());
  for (uint32_t i = 0; i < n; ++i) pages_.emplace_back(kPageSize, '\0');
  MODB_COUNTER_ADD("storage.page_store.pages_allocated", n);
  return first;
}

Status PageStore::ReadPage(uint32_t page, char* out) const {
  if (page >= pages_.size()) {
    MODB_COUNTER_INC("storage.page_store.read_errors");
    return Status::OutOfRange("page id out of range");
  }
  MODB_RETURN_IF_ERROR(FaultInjector::Global().OnRead("page_store.read_page"));
  std::memcpy(out, pages_[page].data(), kPageSize);
  MODB_COUNTER_INC("storage.page_store.page_reads");
  return Status::OK();
}

Status PageStore::WritePage(uint32_t page, const char* data) {
  if (page >= pages_.size()) {
    MODB_COUNTER_INC("storage.page_store.write_errors");
    return Status::OutOfRange("page id out of range");
  }
  std::size_t keep = kFaultKeepAll;
  MODB_RETURN_IF_ERROR(
      FaultInjector::Global().OnWrite("page_store.write_page", &keep));
  // A torn write persists only a prefix of the page; the rest keeps its
  // previous contents, exactly like an interrupted device write.
  std::memcpy(pages_[page].data(), data, std::min(keep, kPageSize));
  MODB_COUNTER_INC("storage.page_store.page_writes");
  return Status::OK();
}

Status PageStore::SaveToFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::Internal("cannot open " + path + " for writing");
  std::size_t keep = kFaultKeepAll;
  MODB_RETURN_IF_ERROR(
      FaultInjector::Global().OnWrite("page_store.save_to_file", &keep));
  // Under a torn write, stream only the first `keep` bytes of the file
  // image — the truncated file must be rejected by LoadFromFile.
  std::size_t budget = keep;
  auto put = [&](const char* p, std::size_t n) {
    std::size_t len = std::min(n, budget);
    out.write(p, std::streamsize(len));
    budget -= len;
  };
  uint64_t magic = kFileMagic;
  uint64_t num_pages = pages_.size();
  uint64_t bytes_used = bytes_used_;
  put(reinterpret_cast<const char*>(&magic), sizeof magic);
  put(reinterpret_cast<const char*>(&num_pages), sizeof num_pages);
  put(reinterpret_cast<const char*>(&bytes_used), sizeof bytes_used);
  for (const std::string& page : pages_) put(page.data(), kPageSize);
  if (!out) return Status::Internal("short write to " + path);
  MODB_COUNTER_INC("storage.page_store.file_saves");
  MODB_COUNTER_ADD("storage.page_store.pages_saved", pages_.size());
  return Status::OK();
}

Result<PageStore> PageStore::LoadFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  MODB_RETURN_IF_ERROR(
      FaultInjector::Global().OnRead("page_store.load_from_file"));
  uint64_t magic = 0, num_pages = 0, bytes_used = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof magic);
  in.read(reinterpret_cast<char*>(&num_pages), sizeof num_pages);
  in.read(reinterpret_cast<char*>(&bytes_used), sizeof bytes_used);
  if (!in || magic != kFileMagic) {
    return Status::InvalidArgument("not a MODB page file: " + path);
  }
  PageStore store;
  store.pages_.reserve(num_pages);
  for (uint64_t i = 0; i < num_pages; ++i) {
    std::string page(kPageSize, '\0');
    in.read(page.data(), std::streamsize(kPageSize));
    if (!in) return Status::InvalidArgument("truncated page file: " + path);
    store.pages_.push_back(std::move(page));
  }
  store.bytes_used_ = bytes_used;
  MODB_COUNTER_INC("storage.page_store.file_loads");
  MODB_COUNTER_ADD("storage.page_store.pages_loaded", store.pages_.size());
  return store;
}

// -- FilePageDevice ----------------------------------------------------------

Status FilePageDevice::WriteHeader() {
  uint64_t magic = kFileMagic;
  file_.seekp(0);
  file_.write(reinterpret_cast<const char*>(&magic), sizeof magic);
  file_.write(reinterpret_cast<const char*>(&num_pages_), sizeof num_pages_);
  file_.write(reinterpret_cast<const char*>(&bytes_used_), sizeof bytes_used_);
  file_.flush();
  if (!file_) return Status::Internal("cannot write header to " + path_);
  return Status::OK();
}

Result<FilePageDevice> FilePageDevice::Create(const std::string& path) {
  // Truncate, then reopen read/write (fstream cannot create-and-truncate
  // in in|out mode on a missing file).
  { std::ofstream trunc(path, std::ios::binary | std::ios::trunc); }
  FilePageDevice dev;
  dev.path_ = path;
  dev.file_.open(path, std::ios::binary | std::ios::in | std::ios::out);
  if (!dev.file_) return Status::Internal("cannot create " + path);
  MODB_RETURN_IF_ERROR(dev.WriteHeader());
  MODB_COUNTER_INC("storage.file_device.creates");
  return dev;
}

Result<FilePageDevice> FilePageDevice::Open(const std::string& path) {
  FilePageDevice dev;
  dev.path_ = path;
  dev.file_.open(path, std::ios::binary | std::ios::in | std::ios::out);
  if (!dev.file_) return Status::NotFound("cannot open " + path);
  uint64_t magic = 0;
  dev.file_.read(reinterpret_cast<char*>(&magic), sizeof magic);
  dev.file_.read(reinterpret_cast<char*>(&dev.num_pages_),
                 sizeof dev.num_pages_);
  dev.file_.read(reinterpret_cast<char*>(&dev.bytes_used_),
                 sizeof dev.bytes_used_);
  if (!dev.file_ || magic != kFileMagic) {
    return Status::InvalidArgument("not a MODB page file: " + path);
  }
  MODB_COUNTER_INC("storage.file_device.opens");
  return dev;
}

Result<uint32_t> FilePageDevice::AllocatePages(uint32_t n) {
  std::size_t keep = kFaultKeepAll;
  MODB_RETURN_IF_ERROR(
      FaultInjector::Global().OnWrite("file_device.allocate_pages", &keep));
  uint32_t first = uint32_t(num_pages_);
  const std::string zeros(kPageSize, '\0');
  file_.clear();
  file_.seekp(std::streamoff(kFileHeaderSize + num_pages_ * kPageSize));
  // A torn allocation appends only a prefix of the new pages' bytes; the
  // header below is still updated, so later reads of the missing tail
  // fail — exactly the crash-mid-grow shape.
  std::size_t budget = keep;
  for (uint32_t i = 0; i < n && budget > 0; ++i) {
    std::size_t len = std::min(kPageSize, budget);
    file_.write(zeros.data(), std::streamsize(len));
    budget -= len;
  }
  if (!file_) return Status::Internal("cannot grow " + path_);
  num_pages_ += n;
  bytes_used_ += std::size_t(n) * kPageSize;
  MODB_RETURN_IF_ERROR(WriteHeader());
  MODB_COUNTER_ADD("storage.file_device.pages_allocated", n);
  return first;
}

Status FilePageDevice::ReadPage(uint32_t page, char* out) const {
  if (page >= num_pages_) {
    MODB_COUNTER_INC("storage.file_device.read_errors");
    return Status::OutOfRange("page id out of range");
  }
  MODB_RETURN_IF_ERROR(FaultInjector::Global().OnRead("file_device.read_page"));
  const uint64_t offset = kFileHeaderSize + uint64_t(page) * kPageSize;
  file_.clear();
  file_.seekg(std::streamoff(offset));
  file_.read(out, std::streamsize(kPageSize));
  if (!file_) {
    // A short read is data loss, not a transient hiccup: the file simply
    // does not contain the bytes the header admits (e.g. a crash tore a
    // previous AllocatePages growth). Report exactly what is missing so
    // recovery can decide to heal rather than retry.
    const std::streamsize got = file_.gcount();
    MODB_COUNTER_INC("storage.file_device.read_errors");
    return Status::DataLoss(
        "short page read from " + path_ + " at offset " +
        std::to_string(offset) + ": expected " + std::to_string(kPageSize) +
        " bytes, got " + std::to_string(got >= 0 ? got : 0));
  }
  MODB_COUNTER_INC("storage.file_device.page_reads");
  return Status::OK();
}

Status FilePageDevice::WritePage(uint32_t page, const char* data) {
  if (page >= num_pages_) {
    MODB_COUNTER_INC("storage.file_device.write_errors");
    return Status::OutOfRange("page id out of range");
  }
  std::size_t keep = kFaultKeepAll;
  MODB_RETURN_IF_ERROR(
      FaultInjector::Global().OnWrite("file_device.write_page", &keep));
  const uint64_t offset = kFileHeaderSize + uint64_t(page) * kPageSize;
  const std::size_t want = std::min(keep, kPageSize);
  file_.clear();
  file_.seekp(std::streamoff(offset));
  file_.write(data, std::streamsize(want));
  file_.flush();
  if (!file_) {
    MODB_COUNTER_INC("storage.file_device.write_errors");
    return Status::DataLoss(
        "short page write to " + path_ + " at offset " +
        std::to_string(offset) + ": expected " + std::to_string(want) +
        " bytes, persisted count unknown");
  }
  MODB_COUNTER_INC("storage.file_device.page_writes");
  return Status::OK();
}

}  // namespace modb
