#include "storage/page_store.h"

#include <errno.h>
#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <fstream>

#include "obs/metrics.h"
#include "storage/fault.h"

namespace modb {

namespace {
constexpr uint64_t kFileMagic = 0x4d4f444250414745ull;  // "MODBPAGE".

// Positioned full-buffer read: retries EINTR and continues short reads
// until `n` bytes arrive or EOF. Returns bytes read (< n only at EOF),
// or -1 with errno set on a hard error.
ssize_t PReadFull(int fd, char* out, std::size_t n, uint64_t offset) {
  std::size_t done = 0;
  while (done < n) {
    ssize_t r = ::pread(fd, out + done, n - done, off_t(offset + done));
    if (r < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (r == 0) break;  // EOF: the file really ends here.
    done += std::size_t(r);
  }
  return ssize_t(done);
}

// Positioned full-buffer write: retries EINTR and continues short
// writes. Returns bytes written (== n on success) or -1 with errno.
ssize_t PWriteFull(int fd, const char* data, std::size_t n, uint64_t offset) {
  std::size_t done = 0;
  while (done < n) {
    ssize_t r = ::pwrite(fd, data + done, n - done, off_t(offset + done));
    if (r < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (r == 0) break;  // no progress (full disk): report short.
    done += std::size_t(r);
  }
  return ssize_t(done);
}
}  // namespace

// -- PageStore ---------------------------------------------------------------

PageExtent PageStore::Write(std::string_view bytes) {
  PageExtent extent;
  extent.first_page = uint32_t(pages_.size());
  extent.num_bytes = uint32_t(bytes.size());
  extent.num_pages = uint32_t((bytes.size() + kPageSize - 1) / kPageSize);
  for (uint32_t i = 0; i < extent.num_pages; ++i) {
    std::size_t off = std::size_t(i) * kPageSize;
    std::size_t len = std::min(kPageSize, bytes.size() - off);
    std::string page(kPageSize, '\0');
    std::memcpy(page.data(), bytes.data() + off, len);
    pages_.push_back(std::move(page));
  }
  bytes_used_ += bytes.size();
  MODB_COUNTER_INC("storage.page_store.writes");
  MODB_COUNTER_ADD("storage.page_store.pages_written", extent.num_pages);
  MODB_COUNTER_ADD("storage.page_store.bytes_written", bytes.size());
  return extent;
}

Result<std::string> PageStore::Read(const PageExtent& extent) const {
  if (std::size_t(extent.first_page) + extent.num_pages > pages_.size()) {
    MODB_COUNTER_INC("storage.page_store.read_errors");
    return Status::OutOfRange("page extent out of range");
  }
  if (extent.num_bytes > std::size_t(extent.num_pages) * kPageSize) {
    MODB_COUNTER_INC("storage.page_store.read_errors");
    return Status::InvalidArgument("extent byte count exceeds its pages");
  }
  MODB_RETURN_IF_ERROR(
      FaultInjector::Global().OnRead("page_store.read_extent"));
  MODB_COUNTER_INC("storage.page_store.reads");
  MODB_COUNTER_ADD("storage.page_store.pages_read", extent.num_pages);
  MODB_COUNTER_ADD("storage.page_store.bytes_read", extent.num_bytes);
  std::string out;
  out.reserve(extent.num_bytes);
  std::size_t remaining = extent.num_bytes;
  for (uint32_t i = 0; i < extent.num_pages && remaining > 0; ++i) {
    std::size_t len = std::min(kPageSize, remaining);
    out.append(pages_[extent.first_page + i].data(), len);
    remaining -= len;
  }
  return out;
}

Result<uint32_t> PageStore::AllocatePages(uint32_t n) {
  uint32_t first = uint32_t(pages_.size());
  for (uint32_t i = 0; i < n; ++i) pages_.emplace_back(kPageSize, '\0');
  MODB_COUNTER_ADD("storage.page_store.pages_allocated", n);
  return first;
}

Status PageStore::ReadPage(uint32_t page, char* out) const {
  if (page >= pages_.size()) {
    MODB_COUNTER_INC("storage.page_store.read_errors");
    return Status::OutOfRange("page id out of range");
  }
  MODB_RETURN_IF_ERROR(FaultInjector::Global().OnRead("page_store.read_page"));
  std::memcpy(out, pages_[page].data(), kPageSize);
  MODB_COUNTER_INC("storage.page_store.page_reads");
  return Status::OK();
}

Status PageStore::WritePage(uint32_t page, const char* data) {
  if (page >= pages_.size()) {
    MODB_COUNTER_INC("storage.page_store.write_errors");
    return Status::OutOfRange("page id out of range");
  }
  std::size_t keep = kFaultKeepAll;
  MODB_RETURN_IF_ERROR(
      FaultInjector::Global().OnWrite("page_store.write_page", &keep));
  // A torn write persists only a prefix of the page; the rest keeps its
  // previous contents, exactly like an interrupted device write.
  std::memcpy(pages_[page].data(), data, std::min(keep, kPageSize));
  MODB_COUNTER_INC("storage.page_store.page_writes");
  return Status::OK();
}

Status PageStore::SaveToFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::Internal("cannot open " + path + " for writing");
  std::size_t keep = kFaultKeepAll;
  MODB_RETURN_IF_ERROR(
      FaultInjector::Global().OnWrite("page_store.save_to_file", &keep));
  // Under a torn write, stream only the first `keep` bytes of the file
  // image — the truncated file must be rejected by LoadFromFile.
  std::size_t budget = keep;
  auto put = [&](const char* p, std::size_t n) {
    std::size_t len = std::min(n, budget);
    out.write(p, std::streamsize(len));
    budget -= len;
  };
  uint64_t magic = kFileMagic;
  uint64_t num_pages = pages_.size();
  uint64_t bytes_used = bytes_used_;
  put(reinterpret_cast<const char*>(&magic), sizeof magic);
  put(reinterpret_cast<const char*>(&num_pages), sizeof num_pages);
  put(reinterpret_cast<const char*>(&bytes_used), sizeof bytes_used);
  for (const std::string& page : pages_) put(page.data(), kPageSize);
  if (!out) return Status::Internal("short write to " + path);
  MODB_COUNTER_INC("storage.page_store.file_saves");
  MODB_COUNTER_ADD("storage.page_store.pages_saved", pages_.size());
  return Status::OK();
}

Result<PageStore> PageStore::LoadFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  MODB_RETURN_IF_ERROR(
      FaultInjector::Global().OnRead("page_store.load_from_file"));
  uint64_t magic = 0, num_pages = 0, bytes_used = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof magic);
  in.read(reinterpret_cast<char*>(&num_pages), sizeof num_pages);
  in.read(reinterpret_cast<char*>(&bytes_used), sizeof bytes_used);
  if (!in || magic != kFileMagic) {
    return Status::InvalidArgument("not a MODB page file: " + path);
  }
  PageStore store;
  store.pages_.reserve(num_pages);
  for (uint64_t i = 0; i < num_pages; ++i) {
    std::string page(kPageSize, '\0');
    in.read(page.data(), std::streamsize(kPageSize));
    if (!in) return Status::InvalidArgument("truncated page file: " + path);
    store.pages_.push_back(std::move(page));
  }
  store.bytes_used_ = bytes_used;
  MODB_COUNTER_INC("storage.page_store.file_loads");
  MODB_COUNTER_ADD("storage.page_store.pages_loaded", store.pages_.size());
  return store;
}

// -- FilePageDevice ----------------------------------------------------------

FilePageDevice::~FilePageDevice() {
  if (fd_ >= 0) ::close(fd_);
}

FilePageDevice::FilePageDevice(FilePageDevice&& other) noexcept
    : path_(std::move(other.path_)),
      fd_(other.fd_),
      num_pages_(other.num_pages_.load(std::memory_order_relaxed)),
      bytes_used_(other.bytes_used_) {
  other.fd_ = -1;
}

FilePageDevice& FilePageDevice::operator=(FilePageDevice&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    path_ = std::move(other.path_);
    fd_ = other.fd_;
    num_pages_.store(other.num_pages_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    bytes_used_ = other.bytes_used_;
    other.fd_ = -1;
  }
  return *this;
}

Status FilePageDevice::WriteHeader() {
  char header[kPageFileHeaderSize];
  uint64_t magic = kFileMagic;
  uint64_t num_pages = num_pages_.load(std::memory_order_relaxed);
  std::memcpy(header, &magic, sizeof magic);
  std::memcpy(header + 8, &num_pages, sizeof num_pages);
  std::memcpy(header + 16, &bytes_used_, sizeof bytes_used_);
  if (PWriteFull(fd_, header, sizeof header, 0) !=
      ssize_t(sizeof header)) {
    return Status::Internal("cannot write header to " + path_ + ": " +
                            std::strerror(errno));
  }
  return Status::OK();
}

Result<FilePageDevice> FilePageDevice::Create(const std::string& path) {
  FilePageDevice dev;
  dev.path_ = path;
  dev.fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (dev.fd_ < 0) {
    return Status::Internal("cannot create " + path + ": " +
                            std::strerror(errno));
  }
  MODB_RETURN_IF_ERROR(dev.WriteHeader());
  MODB_COUNTER_INC("storage.file_device.creates");
  return dev;
}

Result<FilePageDevice> FilePageDevice::Open(const std::string& path) {
  FilePageDevice dev;
  dev.path_ = path;
  dev.fd_ = ::open(path.c_str(), O_RDWR | O_CLOEXEC);
  if (dev.fd_ < 0) {
    return Status::NotFound("cannot open " + path + ": " +
                            std::strerror(errno));
  }
  char header[kPageFileHeaderSize];
  if (PReadFull(dev.fd_, header, sizeof header, 0) != ssize_t(sizeof header)) {
    return Status::InvalidArgument("not a MODB page file: " + path);
  }
  uint64_t magic = 0, num_pages = 0;
  std::memcpy(&magic, header, sizeof magic);
  std::memcpy(&num_pages, header + 8, sizeof num_pages);
  std::memcpy(&dev.bytes_used_, header + 16, sizeof dev.bytes_used_);
  if (magic != kFileMagic) {
    return Status::InvalidArgument("not a MODB page file: " + path);
  }
  dev.num_pages_.store(num_pages, std::memory_order_relaxed);
  MODB_COUNTER_INC("storage.file_device.opens");
  return dev;
}

Result<uint32_t> FilePageDevice::AllocatePages(uint32_t n) {
  std::size_t keep = kFaultKeepAll;
  MODB_RETURN_IF_ERROR(
      FaultInjector::Global().OnWrite("file_device.allocate_pages", &keep));
  const uint64_t old_pages = num_pages_.load(std::memory_order_relaxed);
  uint32_t first = uint32_t(old_pages);
  const std::string zeros(kPageSize, '\0');
  // A torn allocation appends only a prefix of the new pages' bytes; the
  // header below is still updated, so later reads of the missing tail
  // fail — exactly the crash-mid-grow shape.
  std::size_t budget = keep;
  uint64_t offset = kPageFileHeaderSize + old_pages * kPageSize;
  for (uint32_t i = 0; i < n && budget > 0; ++i) {
    std::size_t len = std::min(kPageSize, budget);
    if (PWriteFull(fd_, zeros.data(), len, offset) != ssize_t(len)) {
      return Status::Internal("cannot grow " + path_ + ": " +
                              std::strerror(errno));
    }
    offset += kPageSize;
    budget -= len;
  }
  num_pages_.store(old_pages + n, std::memory_order_release);
  bytes_used_ += std::size_t(n) * kPageSize;
  MODB_RETURN_IF_ERROR(WriteHeader());
  MODB_COUNTER_ADD("storage.file_device.pages_allocated", n);
  return first;
}

Status FilePageDevice::ReadPage(uint32_t page, char* out) const {
  if (page >= num_pages_.load(std::memory_order_acquire)) {
    MODB_COUNTER_INC("storage.file_device.read_errors");
    return Status::OutOfRange("page id out of range");
  }
  MODB_RETURN_IF_ERROR(FaultInjector::Global().OnRead("file_device.read_page"));
  const uint64_t offset = kPageFileHeaderSize + uint64_t(page) * kPageSize;
  const ssize_t got = PReadFull(fd_, out, kPageSize, offset);
  if (got < 0) {
    // A hard I/O error (EIO and friends) is transient from the format's
    // point of view: the bytes may still be on disk, so report it as
    // retryable rather than data loss.
    MODB_COUNTER_INC("storage.file_device.read_errors");
    return Status::Internal("page read from " + path_ + " at offset " +
                            std::to_string(offset) + " failed: " +
                            std::strerror(errno));
  }
  if (std::size_t(got) < kPageSize) {
    // EOF before a full page is data loss, not a transient hiccup: the
    // file simply does not contain the bytes the header admits (e.g. a
    // crash tore a previous AllocatePages growth). Report exactly what
    // is missing so recovery can decide to heal rather than retry.
    MODB_COUNTER_INC("storage.file_device.read_errors");
    return Status::DataLoss(
        "short page read from " + path_ + " at offset " +
        std::to_string(offset) + ": expected " + std::to_string(kPageSize) +
        " bytes, got " + std::to_string(got));
  }
  MODB_COUNTER_INC("storage.file_device.page_reads");
  return Status::OK();
}

Status FilePageDevice::WritePage(uint32_t page, const char* data) {
  if (page >= num_pages_.load(std::memory_order_acquire)) {
    MODB_COUNTER_INC("storage.file_device.write_errors");
    return Status::OutOfRange("page id out of range");
  }
  std::size_t keep = kFaultKeepAll;
  MODB_RETURN_IF_ERROR(
      FaultInjector::Global().OnWrite("file_device.write_page", &keep));
  const uint64_t offset = kPageFileHeaderSize + uint64_t(page) * kPageSize;
  const std::size_t want = std::min(keep, kPageSize);
  if (PWriteFull(fd_, data, want, offset) != ssize_t(want)) {
    MODB_COUNTER_INC("storage.file_device.write_errors");
    return Status::DataLoss(
        "short page write to " + path_ + " at offset " +
        std::to_string(offset) + ": expected " + std::to_string(want) +
        " bytes, persisted count unknown");
  }
  MODB_COUNTER_INC("storage.file_device.page_writes");
  return Status::OK();
}

void FilePageDevice::Prefetch(uint32_t first_page, uint32_t num_pages) const {
  if (num_pages == 0) return;
#if defined(POSIX_FADV_WILLNEED)
  const uint64_t offset = kPageFileHeaderSize + uint64_t(first_page) * kPageSize;
  ::posix_fadvise(fd_, off_t(offset), off_t(uint64_t(num_pages) * kPageSize),
                  POSIX_FADV_WILLNEED);
#endif
}

Status FilePageDevice::Sync() {
  if (::fdatasync(fd_) != 0) {
    return Status::Internal("fdatasync of " + path_ + " failed: " +
                            std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace modb
