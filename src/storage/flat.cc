#include "storage/flat.h"

#include <utility>

namespace modb {

namespace {

constexpr uint32_t kMagic = 0x4d4f4442;  // "MODB"

// -- shared record helpers ---------------------------------------------------

void PutInterval(ByteWriter* w, const TimeInterval& iv) {
  w->PutF64(iv.start());
  w->PutF64(iv.end());
  w->PutU8(iv.left_closed() ? 1 : 0);
  w->PutU8(iv.right_closed() ? 1 : 0);
}

Result<TimeInterval> GetInterval(ByteReader* r) {
  double s, e;
  uint8_t lc, rc;
  MODB_RETURN_IF_ERROR(r->GetF64(&s));
  MODB_RETURN_IF_ERROR(r->GetF64(&e));
  MODB_RETURN_IF_ERROR(r->GetU8(&lc));
  MODB_RETURN_IF_ERROR(r->GetU8(&rc));
  return TimeInterval::Make(s, e, lc != 0, rc != 0);
}

void PutMotion(ByteWriter* w, const LinearMotion& m) {
  w->PutF64(m.x0);
  w->PutF64(m.x1);
  w->PutF64(m.y0);
  w->PutF64(m.y1);
}

Status GetMotion(ByteReader* r, LinearMotion* m) {
  MODB_RETURN_IF_ERROR(r->GetF64(&m->x0));
  MODB_RETURN_IF_ERROR(r->GetF64(&m->x1));
  MODB_RETURN_IF_ERROR(r->GetF64(&m->y0));
  MODB_RETURN_IF_ERROR(r->GetF64(&m->y1));
  return Status::OK();
}

void PutMSeg(ByteWriter* w, const MSeg& m) {
  PutMotion(w, m.s());
  PutMotion(w, m.e());
}

Result<MSeg> GetMSeg(ByteReader* r) {
  LinearMotion s, e;
  MODB_RETURN_IF_ERROR(GetMotion(r, &s));
  MODB_RETURN_IF_ERROR(GetMotion(r, &e));
  return MSeg::Make(s, e);
}

void PutRect(ByteWriter* w, const Rect& r) {
  w->PutF64(r.min_x);
  w->PutF64(r.min_y);
  w->PutF64(r.max_x);
  w->PutF64(r.max_y);
}

Status GetRect(ByteReader* r, Rect* out) {
  MODB_RETURN_IF_ERROR(r->GetF64(&out->min_x));
  MODB_RETURN_IF_ERROR(r->GetF64(&out->min_y));
  MODB_RETURN_IF_ERROR(r->GetF64(&out->max_x));
  MODB_RETURN_IF_ERROR(r->GetF64(&out->max_y));
  return Status::OK();
}

void PutSeg(ByteWriter* w, const Seg& s) {
  w->PutF64(s.a().x);
  w->PutF64(s.a().y);
  w->PutF64(s.b().x);
  w->PutF64(s.b().y);
}

Result<Seg> GetSeg(ByteReader* r) {
  double ax, ay, bx, by;
  MODB_RETURN_IF_ERROR(r->GetF64(&ax));
  MODB_RETURN_IF_ERROR(r->GetF64(&ay));
  MODB_RETURN_IF_ERROR(r->GetF64(&bx));
  MODB_RETURN_IF_ERROR(r->GetF64(&by));
  return Seg::Make(Point(ax, ay), Point(bx, by));
}

// A generic fixed-record base-value encoder.
template <typename T, typename PutFn>
FlatValue BaseToFlat(const BaseValue<T>& v, PutFn put) {
  ByteWriter w;
  w.PutU8(v.defined() ? 1 : 0);
  put(&w, v);
  return FlatValue{w.Take(), {}};
}

// A corrupted count field must not drive a huge allocation before the
// per-record short-read checks get a chance to fire: every record
// consumes at least `min_record_bytes` of the backing array, so any
// count beyond remaining/min_record_bytes is corruption — reject it up
// front instead of reserving for it.
Status CheckCount(uint32_t n, std::size_t remaining,
                  std::size_t min_record_bytes) {
  if (std::size_t(n) > remaining / min_record_bytes) {
    return Status::InvalidArgument("count field exceeds its database array");
  }
  return Status::OK();
}

// Record sizes of the fixed-width array entries (bytes on the wire).
constexpr std::size_t kIntervalBytes = 18;   // 2 f64 + 2 u8
constexpr std::size_t kPointBytes = 16;      // 2 f64
constexpr std::size_t kLineHsBytes = 33;     // seg + left_dominating u8
constexpr std::size_t kRegionHsBytes = 46;   // seg + 2 u8 + 3 i32
constexpr std::size_t kCycleRecBytes = 17;   // 3 i32 + u8 + i32
constexpr std::size_t kFaceRecBytes = 8;     // 2 i32
constexpr std::size_t kSubarrayRefBytes = 8; // offset u32 + count u32

}  // namespace

// -- blob packing ------------------------------------------------------------

std::string SerializeFlat(const FlatValue& value) {
  ByteWriter w;
  w.PutU32(kMagic);
  w.PutU32(uint32_t(value.root.size()));
  w.PutU32(uint32_t(value.arrays.size()));
  w.PutBytes(value.root);
  for (const std::string& a : value.arrays) {
    w.PutU32(uint32_t(a.size()));
    w.PutBytes(a);
  }
  return w.Take();
}

Result<FlatValue> ParseFlat(std::string_view blob) {
  ByteReader r(blob);
  uint32_t magic, root_size, num_arrays;
  MODB_RETURN_IF_ERROR(r.GetU32(&magic));
  if (magic != kMagic) return Status::InvalidArgument("bad magic");
  MODB_RETURN_IF_ERROR(r.GetU32(&root_size));
  MODB_RETURN_IF_ERROR(r.GetU32(&num_arrays));
  FlatValue out;
  MODB_RETURN_IF_ERROR(r.GetBytes(root_size, &out.root));
  for (uint32_t i = 0; i < num_arrays; ++i) {
    uint32_t n;
    MODB_RETURN_IF_ERROR(r.GetU32(&n));
    std::string a;
    MODB_RETURN_IF_ERROR(r.GetBytes(n, &a));
    out.arrays.push_back(std::move(a));
  }
  if (!r.AtEnd()) return Status::InvalidArgument("trailing bytes");
  return out;
}

// -- base types --------------------------------------------------------------

FlatValue ToFlat(const IntValue& v) {
  return BaseToFlat(v, [](ByteWriter* w, const IntValue& x) {
    w->PutI64(x.defined() ? x.value() : 0);
  });
}

Result<IntValue> IntFromFlat(const FlatValue& f) {
  ByteReader r(f.root);
  uint8_t defined;
  int64_t value;
  MODB_RETURN_IF_ERROR(r.GetU8(&defined));
  MODB_RETURN_IF_ERROR(r.GetI64(&value));
  return defined ? IntValue(value) : IntValue::Undefined();
}

FlatValue ToFlat(const RealValue& v) {
  return BaseToFlat(v, [](ByteWriter* w, const RealValue& x) {
    w->PutF64(x.defined() ? x.value() : 0);
  });
}

Result<RealValue> RealFromFlat(const FlatValue& f) {
  ByteReader r(f.root);
  uint8_t defined;
  double value;
  MODB_RETURN_IF_ERROR(r.GetU8(&defined));
  MODB_RETURN_IF_ERROR(r.GetF64(&value));
  return defined ? RealValue(value) : RealValue::Undefined();
}

FlatValue ToFlat(const BoolValue& v) {
  return BaseToFlat(v, [](ByteWriter* w, const BoolValue& x) {
    w->PutU8(x.defined() && x.value() ? 1 : 0);
  });
}

Result<BoolValue> BoolFromFlat(const FlatValue& f) {
  ByteReader r(f.root);
  uint8_t defined, value;
  MODB_RETURN_IF_ERROR(r.GetU8(&defined));
  MODB_RETURN_IF_ERROR(r.GetU8(&value));
  return defined ? BoolValue(value != 0) : BoolValue::Undefined();
}

Result<FlatValue> ToFlat(const StringValue& v) {
  if (v.defined() && !FitsFlatString(v.value())) {
    return Status::InvalidArgument("string exceeds fixed attribute length");
  }
  ByteWriter w;
  w.PutU8(v.defined() ? 1 : 0);
  std::string padded(kMaxStringLength, '\0');
  uint8_t len = 0;
  if (v.defined()) {
    len = uint8_t(v.value().size());
    padded.replace(0, v.value().size(), v.value());
  }
  w.PutU8(len);
  w.PutBytes(padded);
  return FlatValue{w.Take(), {}};
}

Result<StringValue> StringFromFlat(const FlatValue& f) {
  ByteReader r(f.root);
  uint8_t defined, len;
  MODB_RETURN_IF_ERROR(r.GetU8(&defined));
  MODB_RETURN_IF_ERROR(r.GetU8(&len));
  std::string padded;
  MODB_RETURN_IF_ERROR(r.GetBytes(kMaxStringLength, &padded));
  if (len > kMaxStringLength) return Status::InvalidArgument("bad length");
  if (!defined) return StringValue::Undefined();
  return StringValue(padded.substr(0, len));
}

// -- spatial types -----------------------------------------------------------

FlatValue ToFlat(const Point& p) {
  ByteWriter w;
  w.PutF64(p.x);
  w.PutF64(p.y);
  return FlatValue{w.Take(), {}};
}

Result<Point> PointFromFlat(const FlatValue& f) {
  ByteReader r(f.root);
  Point p;
  MODB_RETURN_IF_ERROR(r.GetF64(&p.x));
  MODB_RETURN_IF_ERROR(r.GetF64(&p.y));
  return p;
}

FlatValue ToFlat(const Points& ps) {
  ByteWriter root;
  root.PutU32(uint32_t(ps.Size()));
  PutRect(&root, ps.BoundingBox());
  ByteWriter arr;
  for (const Point& p : ps.points()) {
    arr.PutF64(p.x);
    arr.PutF64(p.y);
  }
  return FlatValue{root.Take(), {arr.Take()}};
}

Result<Points> PointsFromFlat(const FlatValue& f) {
  if (f.arrays.size() != 1) return Status::InvalidArgument("points arity");
  ByteReader root(f.root);
  uint32_t n;
  MODB_RETURN_IF_ERROR(root.GetU32(&n));
  MODB_RETURN_IF_ERROR(CheckCount(n, f.arrays[0].size(), kPointBytes));
  ByteReader arr(f.arrays[0]);
  std::vector<Point> pts(n);
  for (uint32_t i = 0; i < n; ++i) {
    MODB_RETURN_IF_ERROR(arr.GetF64(&pts[i].x));
    MODB_RETURN_IF_ERROR(arr.GetF64(&pts[i].y));
  }
  return Points::FromVector(std::move(pts));
}

FlatValue ToFlat(const Line& l) {
  ByteWriter root;
  root.PutU32(uint32_t(l.NumSegments()));
  root.PutF64(l.Length());
  PutRect(&root, l.BoundingBox());
  ByteWriter arr;
  // Halfsegment array, sorted (Section 4.1).
  for (const HalfSegment& h : l.HalfSegments()) {
    PutSeg(&arr, h.seg);
    arr.PutU8(h.left_dominating ? 1 : 0);
  }
  return FlatValue{root.Take(), {arr.Take()}};
}

Result<Line> LineFromFlat(const FlatValue& f) {
  if (f.arrays.size() != 1) return Status::InvalidArgument("line arity");
  ByteReader root(f.root);
  uint32_t n;
  MODB_RETURN_IF_ERROR(root.GetU32(&n));
  MODB_RETURN_IF_ERROR(CheckCount(n, f.arrays[0].size() / 2, kLineHsBytes));
  ByteReader arr(f.arrays[0]);
  std::vector<Seg> segs;
  segs.reserve(n);
  for (uint32_t i = 0; i < 2 * n; ++i) {
    Result<Seg> s = GetSeg(&arr);
    if (!s.ok()) return s.status();
    uint8_t ldp;
    MODB_RETURN_IF_ERROR(arr.GetU8(&ldp));
    if (ldp) segs.push_back(*s);
  }
  return Line::Make(std::move(segs));
}

FlatValue ToFlat(const Region& reg) {
  ByteWriter root;
  root.PutU32(uint32_t(reg.halfsegments().size()));
  root.PutU32(uint32_t(reg.NumCycles()));
  root.PutU32(uint32_t(reg.NumFaces()));
  root.PutF64(reg.Area());
  root.PutF64(reg.Perimeter());
  PutRect(&root, reg.BoundingBox());
  ByteWriter hs;
  for (const HalfSegment& h : reg.halfsegments()) {
    PutSeg(&hs, h.seg);
    hs.PutU8(h.left_dominating ? 1 : 0);
    hs.PutU8(h.inside_above ? 1 : 0);
    hs.PutI32(h.cycle);
    hs.PutI32(h.face);
    hs.PutI32(h.next_in_cycle);
  }
  ByteWriter cy;
  for (const CycleRecord& c : reg.cycles()) {
    cy.PutI32(c.first_halfsegment);
    cy.PutI32(c.next_cycle_in_face);
    cy.PutI32(c.face);
    cy.PutU8(c.is_hole ? 1 : 0);
    cy.PutI32(c.size);
  }
  ByteWriter fa;
  for (const FaceRecord& fc : reg.faces()) {
    fa.PutI32(fc.first_cycle);
    fa.PutI32(fc.num_holes);
  }
  return FlatValue{root.Take(), {hs.Take(), cy.Take(), fa.Take()}};
}

Result<Region> RegionFromFlat(const FlatValue& f) {
  if (f.arrays.size() != 3) return Status::InvalidArgument("region arity");
  ByteReader root(f.root);
  uint32_t n_hs, n_cy, n_fa;
  double area, perimeter;
  Rect bbox;
  MODB_RETURN_IF_ERROR(root.GetU32(&n_hs));
  MODB_RETURN_IF_ERROR(root.GetU32(&n_cy));
  MODB_RETURN_IF_ERROR(root.GetU32(&n_fa));
  MODB_RETURN_IF_ERROR(root.GetF64(&area));
  MODB_RETURN_IF_ERROR(root.GetF64(&perimeter));
  MODB_RETURN_IF_ERROR(GetRect(&root, &bbox));
  if (n_hs == 0) return Region();
  MODB_RETURN_IF_ERROR(CheckCount(n_hs, f.arrays[0].size(), kRegionHsBytes));
  MODB_RETURN_IF_ERROR(CheckCount(n_cy, f.arrays[1].size(), kCycleRecBytes));
  MODB_RETURN_IF_ERROR(CheckCount(n_fa, f.arrays[2].size(), kFaceRecBytes));
  ByteReader hsr(f.arrays[0]);
  std::vector<HalfSegment> hs;
  hs.reserve(n_hs);
  for (uint32_t i = 0; i < n_hs; ++i) {
    Result<Seg> s = GetSeg(&hsr);
    if (!s.ok()) return s.status();
    uint8_t ldp, ia;
    MODB_RETURN_IF_ERROR(hsr.GetU8(&ldp));
    MODB_RETURN_IF_ERROR(hsr.GetU8(&ia));
    HalfSegment h{.seg = *s, .left_dominating = ldp != 0,
                  .inside_above = ia != 0};
    MODB_RETURN_IF_ERROR(hsr.GetI32(&h.cycle));
    MODB_RETURN_IF_ERROR(hsr.GetI32(&h.face));
    MODB_RETURN_IF_ERROR(hsr.GetI32(&h.next_in_cycle));
    hs.push_back(h);
  }
  ByteReader cyr(f.arrays[1]);
  std::vector<CycleRecord> cycles(n_cy);
  for (uint32_t i = 0; i < n_cy; ++i) {
    uint8_t hole;
    MODB_RETURN_IF_ERROR(cyr.GetI32(&cycles[i].first_halfsegment));
    MODB_RETURN_IF_ERROR(cyr.GetI32(&cycles[i].next_cycle_in_face));
    MODB_RETURN_IF_ERROR(cyr.GetI32(&cycles[i].face));
    MODB_RETURN_IF_ERROR(cyr.GetU8(&hole));
    cycles[i].is_hole = hole != 0;
    MODB_RETURN_IF_ERROR(cyr.GetI32(&cycles[i].size));
  }
  ByteReader far(f.arrays[2]);
  std::vector<FaceRecord> faces(n_fa);
  for (uint32_t i = 0; i < n_fa; ++i) {
    MODB_RETURN_IF_ERROR(far.GetI32(&faces[i].first_cycle));
    MODB_RETURN_IF_ERROR(far.GetI32(&faces[i].num_holes));
  }
  return Region::FromParts(std::move(hs), std::move(cycles), std::move(faces),
                           area, perimeter, bbox);
}

// -- range types -------------------------------------------------------------

FlatValue ToFlat(const Periods& p) {
  ByteWriter root;
  root.PutU32(uint32_t(p.NumIntervals()));
  ByteWriter arr;
  for (const TimeInterval& iv : p.intervals()) PutInterval(&arr, iv);
  return FlatValue{root.Take(), {arr.Take()}};
}

Result<Periods> PeriodsFromFlat(const FlatValue& f) {
  if (f.arrays.size() != 1) return Status::InvalidArgument("periods arity");
  ByteReader root(f.root);
  uint32_t n;
  MODB_RETURN_IF_ERROR(root.GetU32(&n));
  MODB_RETURN_IF_ERROR(CheckCount(n, f.arrays[0].size(), kIntervalBytes));
  ByteReader arr(f.arrays[0]);
  std::vector<TimeInterval> ivs;
  ivs.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Result<TimeInterval> iv = GetInterval(&arr);
    if (!iv.ok()) return iv.status();
    ivs.push_back(*iv);
  }
  return Periods::FromIntervals(std::move(ivs));
}

// -- sliced representations --------------------------------------------------

namespace {

// Fixed-size-unit mappings: one `units` array (Figure 7 with k = 0
// subarrays).
template <typename U, typename PutUnit>
FlatValue FixedMappingToFlat(const Mapping<U>& m, PutUnit put) {
  ByteWriter root;
  root.PutU32(uint32_t(m.NumUnits()));
  ByteWriter units;
  for (const U& u : m.units()) {
    PutInterval(&units, u.interval());
    put(&units, u);
  }
  return FlatValue{root.Take(), {units.Take()}};
}

template <typename U, typename GetUnit>
Result<Mapping<U>> FixedMappingFromFlat(const FlatValue& f, GetUnit get) {
  if (f.arrays.size() != 1) return Status::InvalidArgument("mapping arity");
  ByteReader root(f.root);
  uint32_t n;
  MODB_RETURN_IF_ERROR(root.GetU32(&n));
  MODB_RETURN_IF_ERROR(CheckCount(n, f.arrays[0].size(), kIntervalBytes));
  ByteReader units(f.arrays[0]);
  std::vector<U> out;
  out.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Result<TimeInterval> iv = GetInterval(&units);
    if (!iv.ok()) return iv.status();
    Result<U> u = get(&units, *iv);
    if (!u.ok()) return u.status();
    out.push_back(std::move(*u));
  }
  return Mapping<U>::Make(std::move(out));
}

}  // namespace

FlatValue ToFlat(const MovingBool& m) {
  return FixedMappingToFlat(m, [](ByteWriter* w, const UBool& u) {
    w->PutU8(u.value() ? 1 : 0);
  });
}

Result<MovingBool> MovingBoolFromFlat(const FlatValue& f) {
  return FixedMappingFromFlat<UBool>(
      f, [](ByteReader* r, TimeInterval iv) -> Result<UBool> {
        uint8_t v;
        MODB_RETURN_IF_ERROR(r->GetU8(&v));
        return UBool::Make(iv, v != 0);
      });
}

FlatValue ToFlat(const MovingInt& m) {
  return FixedMappingToFlat(
      m, [](ByteWriter* w, const UInt& u) { w->PutI64(u.value()); });
}

Result<MovingInt> MovingIntFromFlat(const FlatValue& f) {
  return FixedMappingFromFlat<UInt>(
      f, [](ByteReader* r, TimeInterval iv) -> Result<UInt> {
        int64_t v;
        MODB_RETURN_IF_ERROR(r->GetI64(&v));
        return UInt::Make(iv, v);
      });
}

Result<FlatValue> ToFlat(const MovingString& m) {
  for (const UString& u : m.units()) {
    if (!FitsFlatString(u.value())) {
      return Status::InvalidArgument("string exceeds fixed attribute length");
    }
  }
  return FixedMappingToFlat(m, [](ByteWriter* w, const UString& u) {
    std::string padded(kMaxStringLength, '\0');
    padded.replace(0, u.value().size(), u.value());
    w->PutU8(uint8_t(u.value().size()));
    w->PutBytes(padded);
  });
}

Result<MovingString> MovingStringFromFlat(const FlatValue& f) {
  return FixedMappingFromFlat<UString>(
      f, [](ByteReader* r, TimeInterval iv) -> Result<UString> {
        uint8_t len;
        MODB_RETURN_IF_ERROR(r->GetU8(&len));
        std::string padded;
        MODB_RETURN_IF_ERROR(r->GetBytes(kMaxStringLength, &padded));
        if (len > kMaxStringLength) {
          return Status::InvalidArgument("bad string length");
        }
        return UString::Make(iv, padded.substr(0, len));
      });
}

FlatValue ToFlat(const MovingReal& m) {
  return FixedMappingToFlat(m, [](ByteWriter* w, const UReal& u) {
    w->PutF64(u.a());
    w->PutF64(u.b());
    w->PutF64(u.c());
    w->PutU8(u.root() ? 1 : 0);
  });
}

Result<MovingReal> MovingRealFromFlat(const FlatValue& f) {
  return FixedMappingFromFlat<UReal>(
      f, [](ByteReader* r, TimeInterval iv) -> Result<UReal> {
        double a, b, c;
        uint8_t root;
        MODB_RETURN_IF_ERROR(r->GetF64(&a));
        MODB_RETURN_IF_ERROR(r->GetF64(&b));
        MODB_RETURN_IF_ERROR(r->GetF64(&c));
        MODB_RETURN_IF_ERROR(r->GetU8(&root));
        return UReal::Make(iv, a, b, c, root != 0);
      });
}

FlatValue ToFlat(const MovingPoint& m) {
  return FixedMappingToFlat(m, [](ByteWriter* w, const UPoint& u) {
    PutMotion(w, u.motion());
  });
}

Result<MovingPoint> MovingPointFromFlat(const FlatValue& f) {
  return FixedMappingFromFlat<UPoint>(
      f, [](ByteReader* r, TimeInterval iv) -> Result<UPoint> {
        LinearMotion mo;
        MODB_RETURN_IF_ERROR(GetMotion(r, &mo));
        return UPoint::Make(iv, mo);
      });
}

FlatValue ToFlat(const MovingPoints& m) {
  // Figure 7 layout: a units array with subarray references into one
  // shared motions array.
  ByteWriter root;
  root.PutU32(uint32_t(m.NumUnits()));
  ByteWriter units;
  ByteWriter motions;
  uint32_t offset = 0;
  for (const UPoints& u : m.units()) {
    PutInterval(&units, u.interval());
    units.PutU32(offset);
    units.PutU32(uint32_t(u.Size()));
    for (const LinearMotion& mo : u.motions()) PutMotion(&motions, mo);
    offset += uint32_t(u.Size());
  }
  return FlatValue{root.Take(), {units.Take(), motions.Take()}};
}

Result<MovingPoints> MovingPointsFromFlat(const FlatValue& f) {
  if (f.arrays.size() != 2) return Status::InvalidArgument("mpoints arity");
  ByteReader root(f.root);
  uint32_t n;
  MODB_RETURN_IF_ERROR(root.GetU32(&n));
  ByteReader units(f.arrays[0]);
  ByteReader motions(f.arrays[1]);
  // Decode the shared motions array once.
  std::vector<LinearMotion> all;
  while (!motions.AtEnd()) {
    LinearMotion mo;
    MODB_RETURN_IF_ERROR(GetMotion(&motions, &mo));
    all.push_back(mo);
  }
  MODB_RETURN_IF_ERROR(
      CheckCount(n, f.arrays[0].size(), kIntervalBytes + kSubarrayRefBytes));
  std::vector<UPoints> out;
  out.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Result<TimeInterval> iv = GetInterval(&units);
    if (!iv.ok()) return iv.status();
    uint32_t start, count;
    MODB_RETURN_IF_ERROR(units.GetU32(&start));
    MODB_RETURN_IF_ERROR(units.GetU32(&count));
    if (std::size_t(start) + count > all.size()) {
      return Status::OutOfRange("motion subarray out of range");
    }
    out.push_back(UPoints::MakeTrusted(
        *iv, std::vector<LinearMotion>(all.begin() + start,
                                       all.begin() + start + count)));
  }
  return MovingPoints::Make(std::move(out));
}

FlatValue ToFlat(const MovingLine& m) {
  ByteWriter root;
  root.PutU32(uint32_t(m.NumUnits()));
  ByteWriter units;
  ByteWriter msegs;
  uint32_t offset = 0;
  for (const ULine& u : m.units()) {
    PutInterval(&units, u.interval());
    units.PutU32(offset);
    units.PutU32(uint32_t(u.Size()));
    for (const MSeg& s : u.msegs()) PutMSeg(&msegs, s);
    offset += uint32_t(u.Size());
  }
  return FlatValue{root.Take(), {units.Take(), msegs.Take()}};
}

Result<MovingLine> MovingLineFromFlat(const FlatValue& f) {
  if (f.arrays.size() != 2) return Status::InvalidArgument("mline arity");
  ByteReader root(f.root);
  uint32_t n;
  MODB_RETURN_IF_ERROR(root.GetU32(&n));
  ByteReader units(f.arrays[0]);
  ByteReader msr(f.arrays[1]);
  std::vector<MSeg> all;
  while (!msr.AtEnd()) {
    Result<MSeg> ms = GetMSeg(&msr);
    if (!ms.ok()) return ms.status();
    all.push_back(*ms);
  }
  MODB_RETURN_IF_ERROR(
      CheckCount(n, f.arrays[0].size(), kIntervalBytes + kSubarrayRefBytes));
  std::vector<ULine> out;
  out.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Result<TimeInterval> iv = GetInterval(&units);
    if (!iv.ok()) return iv.status();
    uint32_t start, count;
    MODB_RETURN_IF_ERROR(units.GetU32(&start));
    MODB_RETURN_IF_ERROR(units.GetU32(&count));
    if (std::size_t(start) + count > all.size()) {
      return Status::OutOfRange("mseg subarray out of range");
    }
    out.push_back(ULine::MakeTrusted(
        *iv, std::vector<MSeg>(all.begin() + start, all.begin() + start +
                                                        count)));
  }
  return MovingLine::Make(std::move(out));
}

FlatValue ToFlat(const MovingRegion& m) {
  // Figure 7 + Section 4.2: units reference mfaces, which reference
  // mcycles, which reference runs of the shared msegments array.
  ByteWriter root;
  root.PutU32(uint32_t(m.NumUnits()));
  ByteWriter units, mfaces, mcycles, msegs;
  uint32_t face_off = 0, cycle_off = 0, mseg_off = 0;
  for (const URegion& u : m.units()) {
    PutInterval(&units, u.interval());
    units.PutU32(face_off);
    units.PutU32(uint32_t(u.faces().size()));
    for (const MFace& fc : u.faces()) {
      mfaces.PutU32(cycle_off);
      mfaces.PutU32(uint32_t(1 + fc.holes.size()));
      auto put_cycle = [&](const MCycle& cyc, bool is_hole) {
        mcycles.PutU32(mseg_off);
        mcycles.PutU32(uint32_t(cyc.size()));
        mcycles.PutU8(is_hole ? 1 : 0);
        for (const MSeg& s : cyc) PutMSeg(&msegs, s);
        mseg_off += uint32_t(cyc.size());
        ++cycle_off;
      };
      put_cycle(fc.outer, false);
      for (const MCycle& h : fc.holes) put_cycle(h, true);
      ++face_off;
    }
  }
  return FlatValue{
      root.Take(),
      {units.Take(), mfaces.Take(), mcycles.Take(), msegs.Take()}};
}

Result<MovingRegion> MovingRegionFromFlat(const FlatValue& f) {
  if (f.arrays.size() != 4) return Status::InvalidArgument("mregion arity");
  ByteReader root(f.root);
  uint32_t n;
  MODB_RETURN_IF_ERROR(root.GetU32(&n));
  ByteReader units(f.arrays[0]);
  ByteReader mfr(f.arrays[1]);
  ByteReader mcr(f.arrays[2]);
  ByteReader msr(f.arrays[3]);
  std::vector<MSeg> all_msegs;
  while (!msr.AtEnd()) {
    Result<MSeg> ms = GetMSeg(&msr);
    if (!ms.ok()) return ms.status();
    all_msegs.push_back(*ms);
  }
  struct CycleRef {
    uint32_t start, count;
    bool is_hole;
  };
  std::vector<CycleRef> all_cycles;
  while (!mcr.AtEnd()) {
    CycleRef c;
    uint8_t hole;
    MODB_RETURN_IF_ERROR(mcr.GetU32(&c.start));
    MODB_RETURN_IF_ERROR(mcr.GetU32(&c.count));
    MODB_RETURN_IF_ERROR(mcr.GetU8(&hole));
    c.is_hole = hole != 0;
    if (std::size_t(c.start) + c.count > all_msegs.size()) {
      return Status::OutOfRange("mseg run out of range");
    }
    all_cycles.push_back(c);
  }
  struct FaceRef {
    uint32_t start, count;
  };
  std::vector<FaceRef> all_faces;
  while (!mfr.AtEnd()) {
    FaceRef fc;
    MODB_RETURN_IF_ERROR(mfr.GetU32(&fc.start));
    MODB_RETURN_IF_ERROR(mfr.GetU32(&fc.count));
    if (std::size_t(fc.start) + fc.count > all_cycles.size()) {
      return Status::OutOfRange("cycle run out of range");
    }
    all_faces.push_back(fc);
  }
  auto build_cycle = [&](const CycleRef& c) {
    return MCycle(all_msegs.begin() + c.start,
                  all_msegs.begin() + c.start + c.count);
  };
  MODB_RETURN_IF_ERROR(
      CheckCount(n, f.arrays[0].size(), kIntervalBytes + kSubarrayRefBytes));
  std::vector<URegion> out;
  out.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Result<TimeInterval> iv = GetInterval(&units);
    if (!iv.ok()) return iv.status();
    uint32_t start, count;
    MODB_RETURN_IF_ERROR(units.GetU32(&start));
    MODB_RETURN_IF_ERROR(units.GetU32(&count));
    if (std::size_t(start) + count > all_faces.size()) {
      return Status::OutOfRange("face run out of range");
    }
    std::vector<MFace> faces;
    for (uint32_t k = start; k < start + count; ++k) {
      const FaceRef& fr = all_faces[k];
      MFace face;
      bool first = true;
      for (uint32_t c = fr.start; c < fr.start + fr.count; ++c) {
        const CycleRef& cr = all_cycles[c];
        if (first && cr.is_hole) {
          return Status::InvalidArgument("face starts with a hole cycle");
        }
        if (first) {
          face.outer = build_cycle(cr);
          first = false;
        } else {
          face.holes.push_back(build_cycle(cr));
        }
      }
      faces.push_back(std::move(face));
    }
    out.push_back(URegion::MakeTrusted(*iv, std::move(faces)));
  }
  return MovingRegion::Make(std::move(out));
}

// -- AttributeStore ----------------------------------------------------------

std::string AttributeStore::Put(const FlatValue& value) {
  ByteWriter w;
  w.PutU32(kMagic);
  w.PutU32(uint32_t(value.root.size()));
  w.PutU32(uint32_t(value.arrays.size()));
  w.PutBytes(value.root);
  for (const std::string& a : value.arrays) {
    if (a.size() <= inline_threshold_) {
      w.PutU8(1);  // Inline.
      w.PutU32(uint32_t(a.size()));
      w.PutBytes(a);
    } else {
      w.PutU8(0);  // Paged.
      PageExtent e = store_.Write(a);
      w.PutU32(e.first_page);
      w.PutU32(e.num_pages);
      w.PutU32(e.num_bytes);
    }
  }
  return w.Take();
}

Result<FlatValue> AttributeStore::Get(std::string_view tuple) const {
  ByteReader r(tuple);
  uint32_t magic, root_size, num_arrays;
  MODB_RETURN_IF_ERROR(r.GetU32(&magic));
  if (magic != kMagic) return Status::InvalidArgument("bad magic");
  MODB_RETURN_IF_ERROR(r.GetU32(&root_size));
  MODB_RETURN_IF_ERROR(r.GetU32(&num_arrays));
  FlatValue out;
  MODB_RETURN_IF_ERROR(r.GetBytes(root_size, &out.root));
  for (uint32_t i = 0; i < num_arrays; ++i) {
    uint8_t is_inline;
    MODB_RETURN_IF_ERROR(r.GetU8(&is_inline));
    if (is_inline) {
      uint32_t n;
      MODB_RETURN_IF_ERROR(r.GetU32(&n));
      std::string a;
      MODB_RETURN_IF_ERROR(r.GetBytes(n, &a));
      out.arrays.push_back(std::move(a));
    } else {
      PageExtent e;
      MODB_RETURN_IF_ERROR(r.GetU32(&e.first_page));
      MODB_RETURN_IF_ERROR(r.GetU32(&e.num_pages));
      MODB_RETURN_IF_ERROR(r.GetU32(&e.num_bytes));
      Result<std::string> a = store_.Read(e);
      if (!a.ok()) return a.status();
      out.arrays.push_back(std::move(*a));
    }
  }
  return out;
}

}  // namespace modb
