#include "storage/spill.h"

#include <algorithm>
#include <array>
#include <cstring>

#include "obs/metrics.h"

namespace modb {

namespace {

// Per-page header, docs/STORAGE_FORMAT.md. Packed little-endian by
// memcpy of the individual fields (matching ByteWriter's conventions).
struct SpillPageHeader {
  std::uint32_t magic;
  std::uint8_t version;
  std::uint8_t flags;
  std::uint16_t payload_len;
  std::uint32_t seq;
  std::uint32_t crc;
};
static_assert(sizeof(SpillPageHeader) == kSpillHeaderSize);

void PutHeader(char* page, const SpillPageHeader& h) {
  std::memcpy(page, &h, sizeof h);
}

SpillPageHeader GetHeader(const char* page) {
  SpillPageHeader h;
  std::memcpy(&h, page, sizeof h);
  return h;
}

// Frames one page of `blob` (the slice starting at page index `seq`)
// into `page`: zero fill, payload copy, checksummed header.
void FillSpillPage(char* page, std::uint32_t seq, std::string_view blob) {
  std::size_t off = std::size_t(seq) * kSpillPayloadSize;
  std::size_t len =
      off < blob.size() ? std::min(kSpillPayloadSize, blob.size() - off) : 0;
  std::memset(page, 0, kPageSize);
  std::memcpy(page + kSpillHeaderSize, blob.data() + off, len);
  SpillPageHeader h;
  h.magic = kSpillMagic;
  h.version = kSpillVersion;
  h.flags = seq == 0 ? kSpillFlagFirstPage : 0;
  h.payload_len = std::uint16_t(len);
  h.seq = seq;
  h.crc = Crc32(page + kSpillHeaderSize, len);
  PutHeader(page, h);
}

std::uint32_t PagesForBlob(std::string_view blob) {
  std::uint32_t n =
      std::uint32_t((blob.size() + kSpillPayloadSize - 1) / kSpillPayloadSize);
  return n == 0 ? 1 : n;  // an empty value still roots
}

}  // namespace

std::uint32_t SpillPagesNeeded(std::size_t num_bytes) {
  std::uint32_t n =
      std::uint32_t((num_bytes + kSpillPayloadSize - 1) / kSpillPayloadSize);
  return n == 0 ? 1 : n;
}

// Slicing-by-8 CRC-32 (same polynomial and values as the classic
// bytewise loop — table[0] is exactly that table, so the two agree on
// every input): processes 8 bytes per step instead of 1, which matters
// because verification runs over every page a scan pulls through the
// pool — on the zero-copy mmap device it is the dominant per-page cost.
std::uint32_t Crc32(const char* data, std::size_t n) {
  static const std::array<std::array<std::uint32_t, 256>, 8> tables = [] {
    std::array<std::array<std::uint32_t, 256>, 8> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[0][i] = c;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = t[0][i];
      for (int k = 1; k < 8; ++k) {
        c = t[0][c & 0xFFu] ^ (c >> 8);
        t[k][i] = c;
      }
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    // Little-endian reads of the next two words; memcpy keeps it legal
    // on any alignment and compiles to plain loads.
    std::uint32_t lo, hi;
    std::memcpy(&lo, data + i, 4);
    std::memcpy(&hi, data + i + 4, 4);
    lo ^= crc;
    crc = tables[7][lo & 0xFFu] ^ tables[6][(lo >> 8) & 0xFFu] ^
          tables[5][(lo >> 16) & 0xFFu] ^ tables[4][lo >> 24] ^
          tables[3][hi & 0xFFu] ^ tables[2][(hi >> 8) & 0xFFu] ^
          tables[1][(hi >> 16) & 0xFFu] ^ tables[0][hi >> 24];
  }
  for (; i < n; ++i) {
    crc = tables[0][(crc ^ std::uint8_t(data[i])) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

Result<SpillLocator> SpillBlob(PageDevice* device, std::string_view blob) {
  SpillLocator loc;
  loc.num_bytes = std::uint32_t(blob.size());
  loc.num_pages = PagesForBlob(blob);
  Result<std::uint32_t> first = device->AllocatePages(loc.num_pages);
  if (!first.ok()) return first.status();
  loc.first_page = *first;

  char page[kPageSize];
  for (std::uint32_t i = 0; i < loc.num_pages; ++i) {
    FillSpillPage(page, i, blob);
    MODB_RETURN_IF_ERROR(device->WritePage(loc.first_page + i, page));
  }
  MODB_COUNTER_INC("storage.spill.values_spilled");
  MODB_COUNTER_ADD("storage.spill.pages_spilled", loc.num_pages);
  MODB_COUNTER_ADD("storage.spill.bytes_spilled", blob.size());
  return loc;
}

Result<SpillLocator> SpillBlobToPages(BufferPool* pool,
                                      std::uint32_t first_page,
                                      std::string_view blob) {
  SpillLocator loc;
  loc.first_page = first_page;
  loc.num_bytes = std::uint32_t(blob.size());
  loc.num_pages = PagesForBlob(blob);
  if (std::size_t(first_page) + loc.num_pages > pool->NumDevicePages()) {
    return Status::OutOfRange("spill target pages beyond the device");
  }
  for (std::uint32_t i = 0; i < loc.num_pages; ++i) {
    Result<BufferPool::PageRef> ref = pool->Pin(first_page + i);
    if (!ref.ok()) return ref.status();
    FillSpillPage(ref->mutable_data(), i, blob);
  }
  MODB_COUNTER_INC("storage.spill.values_spilled");
  MODB_COUNTER_ADD("storage.spill.pages_spilled", loc.num_pages);
  MODB_COUNTER_ADD("storage.spill.bytes_spilled", blob.size());
  return loc;
}

Result<std::string> ReadSpilledBlob(BufferPool* pool,
                                    const SpillLocator& loc) {
  if (loc.num_pages == 0) {
    // Even an empty value roots one page (SpillPagesNeeded(0) == 1); a
    // zero-page locator never came from a spill.
    return Status::InvalidArgument("spill locator with zero pages");
  }
  if (std::size_t(loc.num_bytes) >
      std::size_t(loc.num_pages) * kSpillPayloadSize) {
    return Status::InvalidArgument("spill locator byte count exceeds pages");
  }
  // Validate an untrusted locator against the device before sizing any
  // allocation: a fuzzed num_pages/num_bytes must yield an error, not a
  // multi-gigabyte reserve (bad_alloc).
  if (std::size_t(loc.first_page) + loc.num_pages > pool->NumDevicePages()) {
    MODB_COUNTER_INC("storage.spill.header_rejects");
    return Status::OutOfRange("spill locator pages beyond the device");
  }
  // The pin loop below touches the run strictly in sequence; hint the
  // whole run up front so the device (madvise/fadvise WILLNEED) can
  // overlap the later faults with the first pages' decode.
  if (loc.num_pages > 1) pool->Prefetch(loc.first_page, loc.num_pages);
  std::string out;
  out.reserve(loc.num_bytes);
  for (std::uint32_t i = 0; i < loc.num_pages; ++i) {
    Result<BufferPool::PageRef> ref = pool->Pin(loc.first_page + i);
    if (!ref.ok()) return ref.status();
    const char* page = ref->data();
    const SpillPageHeader h = GetHeader(page);
    if (h.magic != kSpillMagic) {
      MODB_COUNTER_INC("storage.spill.header_rejects");
      return Status::InvalidArgument("not a spill page (bad magic)");
    }
    if (h.version != kSpillVersion) {
      MODB_COUNTER_INC("storage.spill.header_rejects");
      return Status::InvalidArgument("unsupported spill page version");
    }
    if (h.seq != i || ((h.flags & kSpillFlagFirstPage) != 0) != (i == 0)) {
      MODB_COUNTER_INC("storage.spill.header_rejects");
      return Status::InvalidArgument("spill page sequence mismatch");
    }
    const std::size_t expect =
        std::min(kSpillPayloadSize, std::size_t(loc.num_bytes) - out.size());
    if (std::size_t(h.payload_len) != expect) {
      MODB_COUNTER_INC("storage.spill.header_rejects");
      return Status::InvalidArgument("spill page payload length mismatch");
    }
    if (Crc32(page + kSpillHeaderSize, h.payload_len) != h.crc) {
      MODB_COUNTER_INC("storage.spill.checksum_rejects");
      return Status::InvalidArgument(
          "spill page checksum mismatch (torn or corrupt write)");
    }
    out.append(page + kSpillHeaderSize, h.payload_len);
  }
  if (out.size() != loc.num_bytes) {
    return Status::InvalidArgument("spilled value shorter than its locator");
  }
  MODB_COUNTER_INC("storage.spill.values_loaded");
  MODB_COUNTER_ADD("storage.spill.bytes_loaded", out.size());
  return out;
}

}  // namespace modb
