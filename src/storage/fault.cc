#include "storage/fault.h"

#ifdef MODB_FAULTS

#include <string>

#include "obs/metrics.h"

namespace modb {

FaultInjector& FaultInjector::Global() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::FailNth(FaultOp op, std::uint64_t nth) {
  std::lock_guard<std::mutex> lock(mu_);
  const int i = int(op);
  fail_armed_[i] = true;
  fail_at_[i] = nth;
  count_[i] = 0;
}

void FaultInjector::TearNth(std::uint64_t nth, std::size_t keep_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  tear_armed_ = true;
  tear_at_ = nth;
  tear_keep_ = keep_bytes;
  count_[int(FaultOp::kWrite)] = 0;
}

void FaultInjector::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  fail_armed_[0] = fail_armed_[1] = false;
  tear_armed_ = false;
  halt_after_fire_ = false;
  halted_ = false;
  count_[0] = count_[1] = 0;
  fired_ = 0;
  last_site_ = nullptr;
}

void FaultInjector::HaltAfterFire() {
  std::lock_guard<std::mutex> lock(mu_);
  halt_after_fire_ = true;
}

std::uint64_t FaultInjector::OpCount(FaultOp op) const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_[int(op)];
}

std::uint64_t FaultInjector::FiredCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fired_;
}

const char* FaultInjector::last_fired_site() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_site_;
}

Status FaultInjector::OnRead(const char* site) {
  std::lock_guard<std::mutex> lock(mu_);
  if (halted_) {
    return Status::Internal(std::string("I/O after injected crash at ") + site);
  }
  const int i = int(FaultOp::kRead);
  const std::uint64_t n = count_[i]++;
  if (fail_armed_[i] && n == fail_at_[i]) {
    fail_armed_[i] = false;
    ++fired_;
    last_site_ = site;
    halted_ = halt_after_fire_;
    MODB_COUNTER_INC("storage.fault.injected_read_failures");
    return Status::Internal(std::string("injected read fault at ") + site);
  }
  return Status::OK();
}

Status FaultInjector::OnWrite(const char* site, std::size_t* keep_bytes) {
  *keep_bytes = kFaultKeepAll;
  std::lock_guard<std::mutex> lock(mu_);
  if (halted_) {
    return Status::Internal(std::string("I/O after injected crash at ") + site);
  }
  const int i = int(FaultOp::kWrite);
  const std::uint64_t n = count_[i]++;
  if (fail_armed_[i] && n == fail_at_[i]) {
    fail_armed_[i] = false;
    ++fired_;
    last_site_ = site;
    halted_ = halt_after_fire_;
    MODB_COUNTER_INC("storage.fault.injected_write_failures");
    return Status::Internal(std::string("injected write fault at ") + site);
  }
  if (tear_armed_ && n == tear_at_) {
    tear_armed_ = false;
    *keep_bytes = tear_keep_;
    ++fired_;
    last_site_ = site;
    halted_ = halt_after_fire_;
    MODB_COUNTER_INC("storage.fault.injected_torn_writes");
  }
  return Status::OK();
}

}  // namespace modb

#endif  // MODB_FAULTS
