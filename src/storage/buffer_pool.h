// A sharded LRU buffer pool over a PageDevice — the main-memory half of
// the paper's Section-4 storage contract. Attribute pages live on
// "secondary memory" (the device); queries pin the pages they touch, the
// pool reads each page at most once while it stays resident, and dirty
// pages are written back on eviction or an explicit flush. Pinned pages
// are never evicted, so a PageRef's bytes stay valid for its whole
// lifetime even while other threads fault pages in and out.
//
// Concurrency: the frame table is split into power-of-two shards keyed
// by a page-id hash, each with its own shared_mutex, LRU clock, and free
// list. Pinning a resident page takes only the shard's shared lock plus
// an atomic pin-count increment, so concurrent readers of hot pages
// never serialize; misses, evictions, and writebacks take the shard's
// exclusive lock and run device I/O under it (devices tolerate
// concurrent reads, so distinct shards fault pages in parallel).
// Unpin is lock-free: an atomic decrement plus an LRU-tick store.
// Small pools (capacity < 32 frames) collapse to one shard so their
// eviction order is the exact global LRU the tests and cold-cache
// benchmarks rely on.
//
// Zero-copy devices: when the device can serve a page as a pointer into
// its own storage (MmapPageDevice::MappedPage), the pool pins that
// memory directly — no copy-in, no per-frame allocation. The first
// mutable_data() on such a frame upgrades it to a private copy
// (copy-on-write), so uncommitted scribbles live only in pool memory
// until writeback — exactly like a copying device — and DiscardAll
// really discards them (crash simulation stays honest). Snapshot
// readers holding the original mapped bytes keep seeing the committed
// state.
//
// Hit, miss, eviction, and writeback counts are kept per shard and
// aggregated at export time, so the historical storage.buffer_pool.*
// metric names stay stable; storage.buffer_pool.shard_conflicts and the
// storage.buffer_pool.shard_occupancy histogram expose contention and
// skew across shards (compiled out under MODB_NO_METRICS).

#ifndef MODB_STORAGE_BUFFER_POOL_H_
#define MODB_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "core/status.h"
#include "storage/page_store.h"

namespace modb {

/// Snapshot of the pool's lifetime counters, aggregated across shards.
struct BufferPoolStats {
  std::uint64_t hits = 0;        // pin found the page resident
  std::uint64_t misses = 0;      // pin had to read the device
  std::uint64_t evictions = 0;   // resident page dropped to make room
  std::uint64_t writebacks = 0;  // dirty page written back to the device
  std::uint64_t read_errors = 0;
  std::uint64_t write_errors = 0;
};

/// Fixed-capacity page cache with pin/unpin and dirty-page writeback.
class BufferPool {
 public:
  /// `device` must outlive the pool. `capacity` is the frame count (the
  /// pool's memory budget is capacity * kPageSize). The shard count is
  /// chosen from the capacity: 1 below 32 frames, up to 8 for large
  /// pools.
  BufferPool(PageDevice* device, std::size_t capacity);

  /// As above with an explicit shard count (rounded down to a power of
  /// two and clamped to [1, capacity]). Tests use 1 to get a global
  /// LRU at any capacity.
  BufferPool(PageDevice* device, std::size_t capacity, std::size_t shards);

  /// Flushes dirty pages, swallowing errors; call FlushAll() first to
  /// observe them.
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  struct Frame;  // private in all but name; PageRef carries one
  struct Shard;

  /// An RAII pin on one resident page. While any PageRef for a page is
  /// alive, the page cannot be evicted and data() stays valid. Writing
  /// through mutable_data() marks the page dirty; the dirty bit is
  /// applied when the ref releases.
  class PageRef {
   public:
    PageRef() = default;
    PageRef(PageRef&& o) noexcept { *this = std::move(o); }
    PageRef& operator=(PageRef&& o) noexcept;
    PageRef(const PageRef&) = delete;
    PageRef& operator=(const PageRef&) = delete;
    ~PageRef() { Release(); }

    explicit operator bool() const { return pool_ != nullptr; }
    std::uint32_t page_id() const { return page_; }
    const char* data() const { return data_; }
    /// First call on a zero-copy (device-mapped) frame upgrades it to a
    /// private buffer; the returned pointer may therefore differ from
    /// data() before the call (and data() follows it afterwards).
    char* mutable_data();
    void MarkDirty() { dirty_ = true; }

    /// Early unpin; the ref becomes empty.
    void Release();

   private:
    friend class BufferPool;
    PageRef(BufferPool* pool, Frame* frame, const char* data,
            std::uint32_t page)
        : pool_(pool), frame_(frame), data_(data), page_(page) {}

    BufferPool* pool_ = nullptr;
    Frame* frame_ = nullptr;
    const char* data_ = nullptr;
    std::uint32_t page_ = 0;
    bool dirty_ = false;
  };

  /// Pins `page`, reading it from the device if not resident (possibly
  /// evicting the least-recently-used unpinned page of its shard, with
  /// writeback if it is dirty). Fails with FailedPrecondition when every
  /// frame of the shard is pinned, and propagates device read/writeback
  /// errors — a failed pin changes no cached state, so the caller can
  /// retry.
  Result<PageRef> Pin(std::uint32_t page);

  /// Writes every dirty resident page back to the device, then syncs the
  /// device (msync/fdatasync) so the bytes are durable — the PR-5
  /// two-phase commit relies on this being a real barrier.
  Status FlushAll();

  /// Flushes and evicts every resident page. Fails with
  /// FailedPrecondition if any page is still pinned. Turns the next pins
  /// cold — used by tests and the cold-cache benchmarks.
  Status DropAll();

  /// Evicts every resident page *without* writing anything back — dirty
  /// bytes are lost, exactly as if the process had crashed with them
  /// still in memory. Crash-simulation harnesses use this to abandon a
  /// store mid-commit; never call it on a pool you intend to keep using
  /// as a cache of durable state. Fails with FailedPrecondition if any
  /// page is still pinned.
  Status DiscardAll();

  bool IsResident(std::uint32_t page) const;
  std::size_t capacity() const { return capacity_; }
  /// Page count of the backing device — the bound readers must validate
  /// untrusted locators against before sizing any allocation. Devices
  /// keep this readable concurrently with growth.
  std::size_t NumDevicePages() const { return device_->NumPages(); }
  std::size_t NumResident() const;
  /// Frames currently holding at least one pin.
  std::size_t NumPinned() const;
  std::size_t num_shards() const { return shards_count_; }
  BufferPoolStats stats() const;

  /// Forwards a sequential-readahead hint to the device (fire and
  /// forget). Callers pass device page ranges they are about to Pin.
  void Prefetch(std::uint32_t first_page, std::uint32_t num_pages) const {
    device_->Prefetch(first_page, num_pages);
  }

  struct Frame {
    std::uint32_t page = 0;
    std::atomic<std::uint32_t> pins{0};
    std::atomic<bool> dirty{false};
    bool resident = false;
    std::atomic<std::uint64_t> lru_tick{0};  // larger = more recently used
    // Device-owned bytes (zero-copy); cleared when a COW upgrade moves
    // the frame onto its private `owned` buffer. Atomic so
    // mutable_data's lock-free fast path can test it.
    std::atomic<const char*> mapped{nullptr};
    std::unique_ptr<char[]> owned;      // private copy (COW or copy-in)
    Shard* home = nullptr;

    const char* bytes() const {
      return owned ? owned.get() : mapped.load(std::memory_order_relaxed);
    }
  };

  struct Shard {
    mutable std::shared_mutex mu;
    std::unordered_map<std::uint32_t, Frame*> table;
    std::vector<Frame*> free_frames;
    std::unique_ptr<Frame[]> frames;
    std::size_t num_frames = 0;
    std::atomic<std::uint64_t> tick{0};
    // Aggregated into BufferPoolStats at export; atomics so the
    // shared-lock fast path can bump hits.
    std::atomic<std::uint64_t> hits{0}, misses{0}, evictions{0},
        writebacks{0}, read_errors{0}, write_errors{0};
  };

 private:
  Shard& ShardFor(std::uint32_t page) const;
  void Unpin(Frame* f, bool dirty);
  char* MutableData(Frame* f);
  /// Writes frame's page back; on success clears its dirty bit. Caller
  /// holds the shard's exclusive lock.
  Status WritebackLocked(Shard* s, Frame* f);

  PageDevice* device_;
  std::size_t capacity_;
  std::size_t shards_count_;
  std::uint32_t shard_shift_;
  std::unique_ptr<Shard[]> shards_;
};

}  // namespace modb

#endif  // MODB_STORAGE_BUFFER_POOL_H_
