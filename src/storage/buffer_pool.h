// An LRU buffer pool over a PageDevice — the main-memory half of the
// paper's Section-4 storage contract. Attribute pages live on "secondary
// memory" (the device); queries pin the pages they touch, the pool reads
// each page at most once while it stays resident, and dirty pages are
// written back on eviction or an explicit flush. Pinned pages are never
// evicted, so a PageRef's bytes stay valid for its whole lifetime even
// while other threads fault pages in and out.
//
// Concurrency: one mutex guards the frame table; device I/O runs under
// it. That serializes faults (by design — the backing devices are not
// thread-safe) while keeping pin/unpin of resident pages cheap. Hit,
// miss, eviction, and writeback counts are kept both as plain members
// (stats(), for deterministic tests) and as obs/ metrics counters
// (storage.buffer_pool.*, compiled out under MODB_NO_METRICS).

#ifndef MODB_STORAGE_BUFFER_POOL_H_
#define MODB_STORAGE_BUFFER_POOL_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/status.h"
#include "storage/page_store.h"

namespace modb {

/// Snapshot of the pool's lifetime counters.
struct BufferPoolStats {
  std::uint64_t hits = 0;        // pin found the page resident
  std::uint64_t misses = 0;      // pin had to read the device
  std::uint64_t evictions = 0;   // resident page dropped to make room
  std::uint64_t writebacks = 0;  // dirty page written back to the device
  std::uint64_t read_errors = 0;
  std::uint64_t write_errors = 0;
};

/// Fixed-capacity page cache with pin/unpin and dirty-page writeback.
class BufferPool {
 public:
  /// `device` must outlive the pool. `capacity` is the frame count (the
  /// pool's memory budget is capacity * kPageSize).
  BufferPool(PageDevice* device, std::size_t capacity);

  /// Flushes dirty pages, swallowing errors; call FlushAll() first to
  /// observe them.
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// An RAII pin on one resident page. While any PageRef for a page is
  /// alive, the page cannot be evicted and data() stays valid. Writing
  /// through mutable_data() marks the page dirty; the dirty bit is
  /// applied when the ref releases.
  class PageRef {
   public:
    PageRef() = default;
    PageRef(PageRef&& o) noexcept { *this = std::move(o); }
    PageRef& operator=(PageRef&& o) noexcept;
    PageRef(const PageRef&) = delete;
    PageRef& operator=(const PageRef&) = delete;
    ~PageRef() { Release(); }

    explicit operator bool() const { return pool_ != nullptr; }
    std::uint32_t page_id() const { return page_; }
    const char* data() const { return data_; }
    char* mutable_data() {
      dirty_ = true;
      return data_;
    }
    void MarkDirty() { dirty_ = true; }

    /// Early unpin; the ref becomes empty.
    void Release();

   private:
    friend class BufferPool;
    PageRef(BufferPool* pool, std::size_t frame, char* data,
            std::uint32_t page)
        : pool_(pool), frame_(frame), data_(data), page_(page) {}

    BufferPool* pool_ = nullptr;
    std::size_t frame_ = 0;
    char* data_ = nullptr;
    std::uint32_t page_ = 0;
    bool dirty_ = false;
  };

  /// Pins `page`, reading it from the device if not resident (possibly
  /// evicting the least-recently-used unpinned page, with writeback if it
  /// is dirty). Fails with FailedPrecondition when every frame is pinned,
  /// and propagates device read/writeback errors — a failed pin changes
  /// no cached state, so the caller can retry.
  Result<PageRef> Pin(std::uint32_t page);

  /// Writes every dirty resident page back to the device.
  Status FlushAll();

  /// Flushes and evicts every resident page. Fails with
  /// FailedPrecondition if any page is still pinned. Turns the next pins
  /// cold — used by tests and the cold-cache benchmarks.
  Status DropAll();

  /// Evicts every resident page *without* writing anything back — dirty
  /// bytes are lost, exactly as if the process had crashed with them
  /// still in memory. Crash-simulation harnesses use this to abandon a
  /// store mid-commit; never call it on a pool you intend to keep using
  /// as a cache of durable state. Fails with FailedPrecondition if any
  /// page is still pinned.
  Status DiscardAll();

  bool IsResident(std::uint32_t page) const;
  std::size_t capacity() const { return capacity_; }
  /// Page count of the backing device — the bound readers must validate
  /// untrusted locators against before sizing any allocation. Taken
  /// under the pool mutex because the devices are not thread-safe.
  std::size_t NumDevicePages() const;
  std::size_t NumResident() const;
  /// Frames currently holding at least one pin.
  std::size_t NumPinned() const;
  BufferPoolStats stats() const;

 private:
  struct Frame {
    std::uint32_t page = 0;
    std::uint32_t pins = 0;
    bool dirty = false;
    bool resident = false;
    std::uint64_t lru_tick = 0;  // larger = more recently used
    std::unique_ptr<char[]> data;
  };

  void Unpin(std::size_t frame, bool dirty);
  /// Writes frame's page back; on success clears its dirty bit.
  Status WritebackLocked(Frame* f);

  PageDevice* device_;
  std::size_t capacity_;

  mutable std::mutex mu_;
  std::vector<Frame> frames_;
  std::vector<std::size_t> free_;
  std::unordered_map<std::uint32_t, std::size_t> table_;
  std::uint64_t tick_ = 0;
  BufferPoolStats stats_;
};

}  // namespace modb

#endif  // MODB_STORAGE_BUFFER_POOL_H_
