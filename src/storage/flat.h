// Flat, pointer-free attribute representations (Section 4).
//
// Every data type is represented as a fixed-size *root record* plus zero
// or more *database arrays*; all cross references are array indices. A
// FlatValue holds exactly that decomposition. SerializeFlat/ParseFlat
// pack it into one byte blob; AttributeStore additionally emulates the
// [DG98] policy of storing small arrays inline in the tuple and large
// arrays in separate page extents.

#ifndef MODB_STORAGE_FLAT_H_
#define MODB_STORAGE_FLAT_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "core/base_types.h"
#include "core/range_set.h"
#include "core/status.h"
#include "spatial/line.h"
#include "spatial/points.h"
#include "spatial/region.h"
#include "storage/page_store.h"
#include "temporal/moving.h"

namespace modb {

/// A root record plus database arrays — the decomposition the paper
/// requires of every attribute type.
struct FlatValue {
  std::string root;
  std::vector<std::string> arrays;

  std::size_t TotalBytes() const {
    std::size_t n = root.size();
    for (const std::string& a : arrays) n += a.size();
    return n;
  }
};

/// Little-endian append-only byte writer.
class ByteWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(char(v)); }
  void PutU32(uint32_t v) { Append(&v, sizeof v); }
  void PutI32(int32_t v) { Append(&v, sizeof v); }
  void PutI64(int64_t v) { Append(&v, sizeof v); }
  void PutF64(double v) { Append(&v, sizeof v); }
  void PutBytes(std::string_view s) { buf_.append(s.data(), s.size()); }

  std::string Take() { return std::move(buf_); }
  std::size_t Size() const { return buf_.size(); }

 private:
  void Append(const void* p, std::size_t n) {
    buf_.append(reinterpret_cast<const char*>(p), n);
  }
  std::string buf_;
};

/// Bounds-checked little-endian byte reader.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  Status GetU8(uint8_t* v) { return Get(v, sizeof *v); }
  Status GetU32(uint32_t* v) { return Get(v, sizeof *v); }
  Status GetI32(int32_t* v) { return Get(v, sizeof *v); }
  Status GetI64(int64_t* v) { return Get(v, sizeof *v); }
  Status GetF64(double* v) { return Get(v, sizeof *v); }
  Status GetBytes(std::size_t n, std::string* out) {
    if (pos_ + n > data_.size()) return Status::OutOfRange("short read");
    out->assign(data_.data() + pos_, n);
    pos_ += n;
    return Status::OK();
  }
  bool AtEnd() const { return pos_ == data_.size(); }
  std::size_t Remaining() const { return data_.size() - pos_; }

 private:
  Status Get(void* p, std::size_t n) {
    if (pos_ + n > data_.size()) return Status::OutOfRange("short read");
    std::memcpy(p, data_.data() + pos_, n);
    pos_ += n;
    return Status::OK();
  }
  std::string_view data_;
  std::size_t pos_ = 0;
};

/// Packs a FlatValue into one contiguous blob.
std::string SerializeFlat(const FlatValue& value);
/// Inverse of SerializeFlat.
Result<FlatValue> ParseFlat(std::string_view blob);

// -- base types --------------------------------------------------------------

FlatValue ToFlat(const IntValue& v);
Result<IntValue> IntFromFlat(const FlatValue& f);
FlatValue ToFlat(const RealValue& v);
Result<RealValue> RealFromFlat(const FlatValue& f);
FlatValue ToFlat(const BoolValue& v);
Result<BoolValue> BoolFromFlat(const FlatValue& f);
/// Strings longer than kMaxStringLength are rejected on write (fixed
/// length array of characters, Section 4.1 footnote).
Result<FlatValue> ToFlat(const StringValue& v);
Result<StringValue> StringFromFlat(const FlatValue& f);

// -- spatial types -----------------------------------------------------------

FlatValue ToFlat(const Point& p);
Result<Point> PointFromFlat(const FlatValue& f);
FlatValue ToFlat(const Points& ps);
Result<Points> PointsFromFlat(const FlatValue& f);
FlatValue ToFlat(const Line& l);
Result<Line> LineFromFlat(const FlatValue& f);
FlatValue ToFlat(const Region& r);
Result<Region> RegionFromFlat(const FlatValue& f);

// -- range types -------------------------------------------------------------

FlatValue ToFlat(const Periods& p);
Result<Periods> PeriodsFromFlat(const FlatValue& f);

// -- sliced representations (Figure 7) ---------------------------------------

FlatValue ToFlat(const MovingBool& m);
Result<MovingBool> MovingBoolFromFlat(const FlatValue& f);
FlatValue ToFlat(const MovingInt& m);
Result<MovingInt> MovingIntFromFlat(const FlatValue& f);
Result<FlatValue> ToFlat(const MovingString& m);
Result<MovingString> MovingStringFromFlat(const FlatValue& f);
FlatValue ToFlat(const MovingReal& m);
Result<MovingReal> MovingRealFromFlat(const FlatValue& f);
FlatValue ToFlat(const MovingPoint& m);
Result<MovingPoint> MovingPointFromFlat(const FlatValue& f);
FlatValue ToFlat(const MovingPoints& m);
Result<MovingPoints> MovingPointsFromFlat(const FlatValue& f);
FlatValue ToFlat(const MovingLine& m);
Result<MovingLine> MovingLineFromFlat(const FlatValue& f);
FlatValue ToFlat(const MovingRegion& m);
Result<MovingRegion> MovingRegionFromFlat(const FlatValue& f);

// -- [DG98]-style tuple placement --------------------------------------------

/// Stores attribute values as tuple blobs; database arrays whose size
/// exceeds `inline_threshold` go to a page store and are referenced from
/// the tuple by extent, smaller ones are embedded inline.
class AttributeStore {
 public:
  explicit AttributeStore(std::size_t inline_threshold = 256)
      : inline_threshold_(inline_threshold) {}

  /// Returns the tuple representation of the value.
  std::string Put(const FlatValue& value);
  /// Reassembles the FlatValue from a tuple blob.
  Result<FlatValue> Get(std::string_view tuple) const;

  const PageStore& page_store() const { return store_; }
  std::size_t inline_threshold() const { return inline_threshold_; }

 private:
  std::size_t inline_threshold_;
  PageStore store_;
};

}  // namespace modb

#endif  // MODB_STORAGE_FLAT_H_
