#include "storage/recovery.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "obs/metrics.h"
#include "storage/mmap_device.h"
#include "validate/validate.h"

namespace modb {

namespace {

// Root record field offsets (docs/STORAGE_FORMAT.md): magic u32 @0,
// version u8 @4, reserved u8 @5, num_roots u16 @6, epoch u64 @8,
// crc u32 @16, entries @20 (16 bytes each: first_page, num_pages,
// num_bytes, type_tag — all u32 LE).
constexpr std::size_t kOffMagic = 0;
constexpr std::size_t kOffVersion = 4;
constexpr std::size_t kOffNumRoots = 6;
constexpr std::size_t kOffEpoch = 8;
constexpr std::size_t kOffCrc = 16;

template <typename T>
void PutField(char* page, std::size_t off, T value) {
  std::memcpy(page + off, &value, sizeof value);
}

template <typename T>
T GetField(const char* page, std::size_t off) {
  T value;
  std::memcpy(&value, page + off, sizeof value);
  return value;
}

std::size_t RootRecordBytes(std::size_t num_roots) {
  return kRootHeaderSize + num_roots * kRootEntrySize;
}

void EncodeRootRecord(std::uint64_t epoch,
                      const std::vector<VersionedRoot>& roots, char* page) {
  std::memset(page, 0, kPageSize);
  PutField(page, kOffMagic, kRootMagic);
  PutField(page, kOffVersion, kRootVersion);
  PutField(page, kOffNumRoots, std::uint16_t(roots.size()));
  PutField(page, kOffEpoch, epoch);
  std::size_t off = kRootHeaderSize;
  for (const VersionedRoot& r : roots) {
    PutField(page, off + 0, r.locator.first_page);
    PutField(page, off + 4, r.locator.num_pages);
    PutField(page, off + 8, r.locator.num_bytes);
    PutField(page, off + 12, std::uint32_t(r.type));
    off += kRootEntrySize;
  }
  // CRC over the used prefix, computed with the crc field still zero.
  PutField(page, kOffCrc, Crc32(page, RootRecordBytes(roots.size())));
}

struct RootCandidate {
  std::uint64_t epoch = 0;
  std::vector<VersionedRoot> roots;
};

/// Parses and structurally checks one root-slot page against the device
/// geometry. Any defect — bad magic/version/CRC, an out-of-bounds or
/// overlapping locator, a locator touching the slot pages — rejects the
/// whole candidate; commit atomicity means the other slot still holds a
/// usable epoch.
Result<RootCandidate> DecodeRootRecord(const char* page,
                                       std::size_t num_device_pages) {
  if (GetField<std::uint32_t>(page, kOffMagic) != kRootMagic) {
    return Status::InvalidArgument("root slot: bad magic");
  }
  if (GetField<std::uint8_t>(page, kOffVersion) != kRootVersion) {
    return Status::InvalidArgument("root slot: unsupported version");
  }
  const std::uint16_t num_roots = GetField<std::uint16_t>(page, kOffNumRoots);
  if (num_roots > kMaxRootsPerStore) {
    return Status::InvalidArgument("root slot: root count exceeds capacity");
  }
  const std::uint32_t stored_crc = GetField<std::uint32_t>(page, kOffCrc);
  char scratch[kPageSize];
  std::memcpy(scratch, page, kPageSize);
  PutField(scratch, kOffCrc, std::uint32_t(0));
  if (Crc32(scratch, RootRecordBytes(num_roots)) != stored_crc) {
    return Status::InvalidArgument(
        "root slot: checksum mismatch (torn or corrupt root write)");
  }
  RootCandidate cand;
  cand.epoch = GetField<std::uint64_t>(page, kOffEpoch);
  cand.roots.reserve(num_roots);
  std::size_t off = kRootHeaderSize;
  for (std::uint16_t i = 0; i < num_roots; ++i) {
    VersionedRoot r;
    r.locator.first_page = GetField<std::uint32_t>(page, off + 0);
    r.locator.num_pages = GetField<std::uint32_t>(page, off + 4);
    r.locator.num_bytes = GetField<std::uint32_t>(page, off + 8);
    r.type = SpillValueType(GetField<std::uint32_t>(page, off + 12));
    off += kRootEntrySize;
    if (r.locator.first_page < 2 || r.locator.num_pages == 0 ||
        std::size_t(r.locator.first_page) + r.locator.num_pages >
            num_device_pages) {
      return Status::InvalidArgument("root slot: locator outside the device");
    }
    if (r.locator.num_pages != SpillPagesNeeded(r.locator.num_bytes)) {
      return Status::InvalidArgument(
          "root slot: locator page count disagrees with its byte count");
    }
    cand.roots.push_back(r);
  }
  // Committed values must occupy disjoint page runs — overlap would make
  // the free-list derivation (and the zero-leak accounting) ill-defined.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> runs;
  runs.reserve(cand.roots.size());
  for (const VersionedRoot& r : cand.roots) {
    runs.emplace_back(r.locator.first_page,
                      r.locator.first_page + r.locator.num_pages);
  }
  std::sort(runs.begin(), runs.end());
  for (std::size_t i = 0; i + 1 < runs.size(); ++i) {
    if (runs[i].second > runs[i + 1].first) {
      return Status::InvalidArgument("root slot: locators overlap");
    }
  }
  return cand;
}

bool PageIsAllZero(const char* page) {
  for (std::size_t i = 0; i < kPageSize; ++i) {
    if (page[i] != 0) return false;
  }
  return true;
}

template <typename M, typename Validator>
Status DecodeThenValidate(const FlatValue& flat, Validator&& validator) {
  Result<M> value = FlatCodec<M>::FromFlat(flat);
  if (!value.ok()) return value.status();
  return validator(*value);
}

/// Builds the backing device for `kind`, creating (truncating) or
/// opening `path`. Both kinds speak the same MODBPAGE format.
Result<std::unique_ptr<PageDevice>> MakeDevice(StoreDeviceKind kind,
                                               const std::string& path,
                                               bool create) {
  if (kind == StoreDeviceKind::kMmap) {
    Result<MmapPageDevice> dev =
        create ? MmapPageDevice::Create(path) : MmapPageDevice::Open(path);
    if (!dev.ok()) return dev.status();
    return std::unique_ptr<PageDevice>(
        std::make_unique<MmapPageDevice>(std::move(*dev)));
  }
  Result<FilePageDevice> dev =
      create ? FilePageDevice::Create(path) : FilePageDevice::Open(path);
  if (!dev.ok()) return dev.status();
  return std::unique_ptr<PageDevice>(
      std::make_unique<FilePageDevice>(std::move(*dev)));
}

}  // namespace

Status DecodeAndValidateRootBlob(SpillValueType type, std::string_view blob) {
  if (type == SpillValueType::kOpaque) return Status::OK();
  Result<FlatValue> flat = ParseFlat(blob);
  if (!flat.ok()) return flat.status();
  const validate::MappingValidator vmap;
  switch (type) {
    case SpillValueType::kMovingBool:
      return DecodeThenValidate<MovingBool>(*flat, vmap);
    case SpillValueType::kMovingInt:
      return DecodeThenValidate<MovingInt>(*flat, vmap);
    case SpillValueType::kMovingString:
      return DecodeThenValidate<MovingString>(*flat, vmap);
    case SpillValueType::kMovingReal:
      return DecodeThenValidate<MovingReal>(*flat, vmap);
    case SpillValueType::kMovingPoint:
      return DecodeThenValidate<MovingPoint>(*flat, vmap);
    case SpillValueType::kMovingPoints:
      return DecodeThenValidate<MovingPoints>(*flat, vmap);
    case SpillValueType::kMovingLine:
      return DecodeThenValidate<MovingLine>(*flat, vmap);
    case SpillValueType::kMovingRegion:
      return DecodeThenValidate<MovingRegion>(*flat, vmap);
    case SpillValueType::kPeriods:
      return DecodeThenValidate<Periods>(
          *flat, [](const Periods& p) { return validate::ValidateRangeSet(p); });
    case SpillValueType::kLine:
      return DecodeThenValidate<Line>(
          *flat, [](const Line& l) { return validate::ValidateLine(l); });
    case SpillValueType::kRegion:
      return DecodeThenValidate<Region>(
          *flat, [](const Region& r) { return validate::ValidateRegion(r); });
    case SpillValueType::kOpaque:
      return Status::OK();
  }
  return Status::InvalidArgument("unknown root value type tag " +
                                 std::to_string(std::uint32_t(type)));
}

Result<VersionedSpillStore> VersionedSpillStore::Create(
    const std::string& path) {
  return Create(path, Options());
}

Result<VersionedSpillStore> VersionedSpillStore::Open(const std::string& path) {
  return Open(path, Options());
}

Result<VersionedSpillStore> VersionedSpillStore::Create(
    const std::string& path, Options options) {
  Result<std::unique_ptr<PageDevice>> dev =
      MakeDevice(options.device, path, /*create=*/true);
  if (!dev.ok()) return dev.status();
  VersionedSpillStore store;
  store.device_ = std::move(*dev);
  store.options_ = options;
  store.state_ = std::make_shared<SharedState>();
  Result<std::uint32_t> first = store.device_->AllocatePages(2);
  if (!first.ok()) return first.status();
  // Epoch 0 (the empty state) goes to slot 0; slot 1 stays zeroed. The
  // record write is itself the first commit point: once it is durable,
  // every later crash recovers to at least this empty epoch.
  char page[kPageSize];
  EncodeRootRecord(0, {}, page);
  MODB_RETURN_IF_ERROR(store.device_->WritePage(kRootSlotPages[0], page));
  MODB_RETURN_IF_ERROR(store.device_->Sync());
  store.pool_ =
      std::make_unique<BufferPool>(store.device_.get(), options.pool_capacity);
  store.state_->snapshot = std::make_shared<const EpochSnapshot>();
  store.info_.epoch = 0;
  return store;
}

Result<VersionedSpillStore> VersionedSpillStore::Open(const std::string& path,
                                                      Options options) {
  Result<std::unique_ptr<PageDevice>> dev =
      MakeDevice(options.device, path, /*create=*/false);
  if (!dev.ok()) return dev.status();
  VersionedSpillStore store;
  store.device_ = std::move(*dev);
  store.options_ = options;
  store.state_ = std::make_shared<SharedState>();
  if (store.device_->NumPages() < 2) {
    return Status::DataLoss(
        "store truncated before its root slots existed: " + path);
  }

  // Scan both root slots. A transient read fault is retried; a short
  // read (DataLoss — the slot page is a phantom from a torn growth) is
  // recorded for healing and the slot treated as empty.
  bool heal_slot[2] = {false, false};
  std::vector<RootCandidate> candidates;
  char page[kPageSize];
  for (int s = 0; s < 2; ++s) {
    Status read = RetryTransient(options.retry, [&] {
      return store.device_->ReadPage(kRootSlotPages[s], page);
    });
    if (!read.ok()) {
      if (read.code() != StatusCode::kDataLoss) return read;
      heal_slot[s] = true;
      continue;
    }
    Result<RootCandidate> cand =
        DecodeRootRecord(page, store.device_->NumPages());
    if (cand.ok()) {
      candidates.push_back(std::move(*cand));
    } else if (!PageIsAllZero(page)) {
      ++store.info_.roots_rejected;
      MODB_COUNTER_INC("storage.recovery.root_rejected");
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const RootCandidate& a, const RootCandidate& b) {
              return a.epoch > b.epoch;
            });

  store.pool_ =
      std::make_unique<BufferPool>(store.device_.get(), options.pool_capacity);

  // Newest intact epoch whose every root reads back clean (and, unless
  // disabled, decodes to a value satisfying the Section-3 invariants)
  // wins. A candidate failing either check is rejected wholesale and
  // the older slot gets its turn — that is the "old or new, never a
  // blend" guarantee.
  const RootCandidate* chosen = nullptr;
  Status last_reject = Status::OK();
  for (const RootCandidate& cand : candidates) {
    Status usable = Status::OK();
    for (const VersionedRoot& r : cand.roots) {
      Result<std::string> blob =
          RetryTransientResult<std::string>(options.retry, [&] {
            return ReadSpilledBlob(store.pool_.get(), r.locator);
          });
      if (!blob.ok()) {
        usable = blob.status();
        break;
      }
      if (options.validate_on_open) {
        usable = DecodeAndValidateRootBlob(r.type, *blob);
        if (!usable.ok()) break;
      }
    }
    if (usable.ok()) {
      chosen = &cand;
      break;
    }
    last_reject = usable;
    ++store.info_.roots_rejected;
    MODB_COUNTER_INC("storage.recovery.root_rejected");
  }
  if (chosen == nullptr) {
    return Status::DataLoss(
        "no intact committed state found in " + path +
        (last_reject.ok() ? std::string()
                          : ": " + last_reject.ToString()));
  }

  store.epoch_ = chosen->epoch;
  store.committed_ = chosen->roots;
  store.staged_ = store.committed_;
  store.state_->snapshot = std::make_shared<const EpochSnapshot>(
      EpochSnapshot{store.epoch_, store.committed_});
  store.RecomputeFreeLocked();

  // The free list is derived, never persisted: every page unreachable
  // from the chosen epoch — including shadow pages a crashed commit
  // orphaned — is reclaimed here.
  store.info_.orphans_reclaimed = std::uint32_t(store.state_->free.size());
  MODB_COUNTER_ADD("storage.recovery.orphans_reclaimed",
                   store.state_->free.size());

  // Heal phantom pages: the device header admits them but a torn growth
  // never wrote their bytes, so reads fail until they are materialized.
  // Both free pages (future shadow targets are pinned, which reads
  // first) and an unreadable root slot (the next commit's target) must
  // be healed or the store could never commit again.
  for (std::uint32_t p : store.state_->free) {
    Status probe = RetryTransient(
        options.retry, [&] { return store.device_->ReadPage(p, page); });
    if (probe.ok()) continue;
    if (probe.code() != StatusCode::kDataLoss) return probe;
    std::memset(page, 0, kPageSize);
    MODB_RETURN_IF_ERROR(store.device_->WritePage(p, page));
    ++store.info_.pages_healed;
    MODB_COUNTER_INC("storage.recovery.pages_healed");
  }
  for (int s = 0; s < 2; ++s) {
    if (!heal_slot[s]) continue;
    std::memset(page, 0, kPageSize);
    MODB_RETURN_IF_ERROR(store.device_->WritePage(kRootSlotPages[s], page));
    ++store.info_.pages_healed;
    MODB_COUNTER_INC("storage.recovery.pages_healed");
  }

  store.info_.epoch = store.epoch_;
  store.info_.num_roots = std::uint32_t(store.committed_.size());
  MODB_COUNTER_INC("storage.recovery.replays");
  return store;
}

void VersionedSpillStore::RecomputeFreeLocked() {
  SharedState& s = *state_;
  s.free.clear();
  std::vector<bool> used(device_->NumPages(), false);
  for (std::uint32_t slot : kRootSlotPages) used[slot] = true;
  for (const VersionedRoot& r : committed_) {
    for (std::uint32_t p = 0; p < r.locator.num_pages; ++p) {
      used[r.locator.first_page + p] = true;
    }
  }
  // Retired pages are spoken for until their epoch pins drain —
  // handing them out as shadow targets would scribble over a pinned
  // reader's view.
  for (const RetiredRun& run : s.retired) {
    for (std::uint32_t p : run.pages) used[p] = true;
  }
  for (std::size_t p = 0; p < used.size(); ++p) {
    if (!used[p]) s.free.push_back(std::uint32_t(p));
  }
}

void VersionedSpillStore::DrainRetiredLocked(SharedState* s) {
  const std::uint64_t min_pinned =
      s->pins.empty() ? std::numeric_limits<std::uint64_t>::max()
                      : s->pins.begin()->first;
  auto keep = s->retired.begin();
  for (auto it = s->retired.begin(); it != s->retired.end(); ++it) {
    if (it->last_epoch < min_pinned) {
      MODB_COUNTER_ADD("storage.recovery.retired_reclaimed",
                       it->pages.size());
      s->free.insert(s->free.end(), it->pages.begin(), it->pages.end());
    } else {
      if (keep != it) *keep = std::move(*it);
      ++keep;
    }
  }
  s->retired.erase(keep, s->retired.end());
}

Result<std::uint32_t> VersionedSpillStore::AllocateRun(std::uint32_t n) {
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    std::vector<std::uint32_t>& free = state_->free;
    if (n > 0 && free.size() >= n) {
      std::sort(free.begin(), free.end());
      std::size_t start = 0;
      for (std::size_t i = 1; i <= free.size(); ++i) {
        if (i == free.size() || free[i] != free[i - 1] + 1) {
          if (i - start >= n) {
            std::uint32_t first = free[start];
            free.erase(free.begin() + std::ptrdiff_t(start),
                       free.begin() + std::ptrdiff_t(start + n));
            MODB_COUNTER_ADD("storage.recovery.pages_reused", n);
            return first;
          }
          start = i;
        }
      }
    }
  }
  return device_->AllocatePages(n);
}

Result<SpillLocator> VersionedSpillStore::StageBlobPages(
    std::string_view blob) {
  if (blob.size() > std::size_t(std::uint32_t(-1))) {
    return Status::InvalidArgument("blob too large to spill");
  }
  Result<std::uint32_t> first = AllocateRun(SpillPagesNeeded(blob.size()));
  if (!first.ok()) return first.status();
  return SpillBlobToPages(pool_.get(), *first, blob);
}

Result<std::size_t> VersionedSpillStore::StageBlob(std::string_view blob,
                                                   SpillValueType type) {
  if (abandoned_) return Status::FailedPrecondition("store was abandoned");
  if (staged_.size() >= kMaxRootsPerStore) {
    return Status::FailedPrecondition("root record is full");
  }
  Result<SpillLocator> loc = StageBlobPages(blob);
  if (!loc.ok()) return loc.status();
  staged_.push_back(VersionedRoot{*loc, type});
  return staged_.size() - 1;
}

Status VersionedSpillStore::RestageBlob(std::size_t root_index,
                                        std::string_view blob,
                                        SpillValueType type) {
  if (abandoned_) return Status::FailedPrecondition("store was abandoned");
  if (root_index >= staged_.size()) {
    return Status::OutOfRange("root index out of range");
  }
  Result<SpillLocator> loc = StageBlobPages(blob);
  if (!loc.ok()) return loc.status();
  staged_[root_index] = VersionedRoot{*loc, type};
  return Status::OK();
}

Status VersionedSpillStore::Commit() {
  if (abandoned_) return Status::FailedPrecondition("store was abandoned");
  // Phase 1: every staged data page durable. Only then may the root
  // record mention them — flushing in the other order could persist a
  // root that points at pages the crash never wrote.
  MODB_RETURN_IF_ERROR(pool_->FlushAll());
  const std::uint64_t next = epoch_ + 1;
  {
    Result<BufferPool::PageRef> slot =
        pool_->Pin(kRootSlotPages[next % 2]);
    if (!slot.ok()) return slot.status();
    EncodeRootRecord(next, staged_, slot->mutable_data());
  }
  // Phase 2: the root record is the only dirty page left; this flush is
  // the single-page commit point.
  MODB_RETURN_IF_ERROR(pool_->FlushAll());

  // Pages the outgoing epoch referenced but the new one does not were
  // last needed by epoch `epoch_`; readers pinned there (or earlier)
  // may still be resolving blobs out of them, so they retire instead of
  // freeing and drain when the pins do.
  std::vector<std::uint32_t> new_pages;
  for (const VersionedRoot& r : staged_) {
    for (std::uint32_t p = 0; p < r.locator.num_pages; ++p) {
      new_pages.push_back(r.locator.first_page + p);
    }
  }
  std::sort(new_pages.begin(), new_pages.end());
  RetiredRun retiring;
  retiring.last_epoch = epoch_;
  for (const VersionedRoot& r : committed_) {
    for (std::uint32_t p = 0; p < r.locator.num_pages; ++p) {
      const std::uint32_t page = r.locator.first_page + p;
      if (!std::binary_search(new_pages.begin(), new_pages.end(), page)) {
        retiring.pages.push_back(page);
      }
    }
  }

  epoch_ = next;
  committed_ = staged_;
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    if (!retiring.pages.empty()) {
      MODB_COUNTER_ADD("storage.recovery.pages_retired",
                       retiring.pages.size());
      state_->retired.push_back(std::move(retiring));
    }
    RecomputeFreeLocked();
    state_->snapshot = std::make_shared<const EpochSnapshot>(
        EpochSnapshot{epoch_, committed_});
    DrainRetiredLocked(state_.get());
  }
  MODB_COUNTER_INC("storage.recovery.commits");
  return Status::OK();
}

VersionedSpillStore::EpochPin VersionedSpillStore::PinEpoch() {
  std::lock_guard<std::mutex> lock(state_->mu);
  std::shared_ptr<const EpochSnapshot> snap = state_->snapshot;
  ++state_->pins[snap->epoch];
  MODB_COUNTER_INC("storage.recovery.epoch_pins");
  return EpochPin(state_, std::move(snap));
}

void VersionedSpillStore::EpochPin::Release() {
  if (state_) {
    std::lock_guard<std::mutex> lock(state_->mu);
    auto it = state_->pins.find(snapshot_->epoch);
    if (it != state_->pins.end() && --(it->second) == 0) {
      state_->pins.erase(it);
      DrainRetiredLocked(state_.get());
    }
    state_.reset();
  }
  snapshot_.reset();
}

Result<std::string> VersionedSpillStore::ReadRootBlob(std::size_t i) {
  if (abandoned_) return Status::FailedPrecondition("store was abandoned");
  if (i >= committed_.size()) {
    return Status::OutOfRange("root index out of range");
  }
  const SpillLocator loc = committed_[i].locator;
  return RetryTransientResult<std::string>(
      options_.retry, [&] { return ReadSpilledBlob(pool_.get(), loc); });
}

Result<std::string> VersionedSpillStore::ReadRootBlob(const EpochPin& pin,
                                                      std::size_t i) {
  if (!pin) return Status::InvalidArgument("empty epoch pin");
  if (i >= pin.roots().size()) {
    return Status::OutOfRange("root index out of range");
  }
  // No store lock here: the pin's page runs cannot be reused while it
  // lives, and the buffer pool tolerates concurrent pins, so this runs
  // lock-free against a writer committing the next epoch.
  const SpillLocator loc = pin.roots()[i].locator;
  return RetryTransientResult<std::string>(
      options_.retry, [&] { return ReadSpilledBlob(pool_.get(), loc); });
}

Status VersionedSpillStore::Abandon() {
  abandoned_ = true;
  return pool_->DiscardAll();
}

std::uint64_t VersionedSpillStore::epoch() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->snapshot->epoch;
}

std::size_t VersionedSpillStore::NumFreePages() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->free.size();
}

std::size_t VersionedSpillStore::NumRetiredPages() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  std::size_t n = 0;
  for (const RetiredRun& run : state_->retired) n += run.pages.size();
  return n;
}

std::size_t VersionedSpillStore::NumPinnedEpochs() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->pins.size();
}

Status VersionedSpillStore::VerifyAccounting() const {
  std::size_t reachable = 0;
  for (const VersionedRoot& r : committed_) reachable += r.locator.num_pages;
  std::size_t free_pages = 0, retired = 0;
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    free_pages = state_->free.size();
    for (const RetiredRun& run : state_->retired) retired += run.pages.size();
  }
  const std::size_t total = device_->NumPages();
  if (2 + reachable + free_pages + retired != total) {
    return Status::Internal(
        "page accounting broken: 2 slots + " + std::to_string(reachable) +
        " reachable + " + std::to_string(free_pages) + " free + " +
        std::to_string(retired) + " retired != " + std::to_string(total) +
        " device pages");
  }
  return Status::OK();
}

}  // namespace modb
