// The crash-point enumeration campaign: proof-by-exhaustion that the
// versioned spill store (storage/recovery.h) is crash-consistent.
//
// A scripted workload (create → spill three values → commit → mutate →
// commit → mutate again → commit) is first run clean to count its
// device I/O sites. The campaign then re-runs it once per crash point:
// for every write operation a hard failure and one torn write per
// configured keep-length, and for every read operation a hard failure —
// each with crash semantics (FaultInjector::HaltAfterFire: after the
// fault, all further I/O fails, modeling the process dying mid-I/O).
// The in-memory cache is discarded (never flushed), the file is
// reopened, and recovery must land on a committed state that is
// byte-identical to the pre-crash or in-flight epoch, pass validation,
// account for every device page (zero leaks), and still accept a fresh
// commit. A final sweep arms a transient read failure at every read
// site of a clean Open and requires recovery to succeed via the retry
// policy.
//
// A second, concurrent-reader enumeration runs a workload that pins an
// epoch mid-stream and keeps re-verifying the pinned view — byte for
// byte — while later epochs are staged, committed, and crashed at
// every write site: deferred reclamation must keep every page the pin
// references untouched, and once the pin drains the accounting must
// show zero retired pages and zero leaks.
//
// Exposed as a library so both the storage tests and tools/crashloop
// (the CI entry point, wired into tools/verify.sh) run the same
// enumeration.

#ifndef MODB_STORAGE_CRASH_CAMPAIGN_H_
#define MODB_STORAGE_CRASH_CAMPAIGN_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/status.h"
#include "storage/recovery.h"

namespace modb {

struct CrashCampaignOptions {
  /// Device file the workload runs against (recreated for every run).
  std::string path = "crash_campaign.modb";
  /// Torn-write prefix lengths to inject at every write site. 0 tears
  /// everything away, a mid-header cut and a mid-page cut catch
  /// different parser paths.
  std::vector<std::size_t> tear_keep_bytes = {0, 16, 2048};
  /// Device implementation under test; the guarantees (and this
  /// enumeration) are identical for both.
  StoreDeviceKind device = StoreDeviceKind::kFile;
};

struct CrashCampaignReport {
  /// Device write / read operations in one clean workload.
  std::uint64_t write_sites = 0;
  std::uint64_t read_sites = 0;
  /// Device reads in one clean Open of the final store.
  std::uint64_t open_read_sites = 0;
  std::uint64_t tear_modes = 0;
  /// Injected runs executed / runs where the armed plan actually fired.
  std::uint64_t runs = 0;
  std::uint64_t crashes = 0;
  /// Post-crash recoveries that reopened, byte-matched a committed
  /// epoch, validated, leaked zero pages, and committed again.
  std::uint64_t recoveries_verified = 0;
  /// Crashes so early the store never committed anything; reopen is
  /// allowed to fail with a clean Status then.
  std::uint64_t preinit_reopen_failures = 0;
  /// Opens that hit an injected transient read fault and succeeded
  /// through the retry policy.
  std::uint64_t retried_opens = 0;
  /// Totals across all verified recoveries.
  std::uint64_t orphans_reclaimed = 0;
  std::uint64_t pages_healed = 0;
  /// Concurrent-reader schedule: device writes in one clean run of the
  /// pinned-reader workload, injected runs of it, and pinned-view
  /// byte-identity checks that passed across all of them.
  std::uint64_t pinned_write_sites = 0;
  std::uint64_t pinned_reader_runs = 0;
  std::uint64_t pinned_views_verified = 0;
};

/// Runs the full enumeration. Returns the report, or the first
/// violation found (a crash point recovery could not undo, a byte
/// mismatch, a leaked page, ...). Unimplemented when the build has
/// fault injection compiled out (MODB_FAULTS=OFF).
Result<CrashCampaignReport> RunCrashCampaign(
    const CrashCampaignOptions& options);

}  // namespace modb

#endif  // MODB_STORAGE_CRASH_CAMPAIGN_H_
