#include "storage/crash_campaign.h"

#include <optional>
#include <utility>

#include "core/range_set.h"
#include "storage/fault.h"
#include "storage/recovery.h"
#include "temporal/const_unit.h"
#include "temporal/moving.h"

namespace modb {

namespace {

RetryPolicy FastRetry() {
  RetryPolicy p;
  p.base_delay_micros = 0;  // hundreds of runs; no real sleeping
  return p;
}

VersionedSpillStore::Options StoreOptions(StoreDeviceKind device) {
  VersionedSpillStore::Options o;
  // Small pool: staging must evict through the device, so writeback
  // paths sit inside the enumerated fault window too.
  o.pool_capacity = 8;
  o.retry = FastRetry();
  o.device = device;
  return o;
}

std::string OpaqueBlob(std::size_t n, unsigned seed) {
  std::string b(n, '\0');
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = char((seed + i * 131u) & 0xffu);
  }
  return b;
}

Result<std::string> MovingIntBlob(int gen) {
  std::vector<UInt> units;
  for (int i = 0; i < 4 + gen; ++i) {
    Result<TimeInterval> iv =
        TimeInterval::Make(i * 2.0, i * 2.0 + 1.0, true, false);
    if (!iv.ok()) return iv.status();
    Result<UInt> u = UInt::Make(*iv, 100 * gen + i);
    if (!u.ok()) return u.status();
    units.push_back(*u);
  }
  Result<MovingInt> m = MovingInt::Make(std::move(units));
  if (!m.ok()) return m.status();
  Result<FlatValue> flat = spill_internal::EncodeToFlat(*m);
  if (!flat.ok()) return flat.status();
  return SerializeFlat(*flat);
}

Result<std::string> PeriodsBlob() {
  Result<TimeInterval> a = TimeInterval::Make(0.0, 1.0, true, true);
  if (!a.ok()) return a.status();
  Result<TimeInterval> b = TimeInterval::Make(3.0, 5.0, true, false);
  if (!b.ok()) return b.status();
  Periods p = Periods::FromIntervals({*a, *b});
  Result<FlatValue> flat = spill_internal::EncodeToFlat(p);
  if (!flat.ok()) return flat.status();
  return SerializeFlat(*flat);
}

/// One committed epoch's full expected state: type tag + exact bytes
/// per root. Derived from the script alone (the workload is
/// deterministic), never from reading a store back.
struct EpochState {
  std::uint64_t epoch = 0;
  std::vector<std::pair<SpillValueType, std::string>> roots;
};

/// The scripted workload's inputs and the state after each commit.
struct Script {
  std::string a, b, c, d, e;  // opaque blobs (multi-page and sub-page)
  std::string mi0, mi1, per;
  std::vector<EpochState> expected;  // index == epoch 0..4
};

Result<Script> BuildScript() {
  Script s;
  s.a = OpaqueBlob(9000, 1);   // 3 pages
  s.b = OpaqueBlob(15000, 2);  // 4 pages — forces growth over A's run
  s.c = OpaqueBlob(100, 3);
  s.d = OpaqueBlob(500, 4);  // 1 page — reuses freed shadow pages
  Result<std::string> mi0 = MovingIntBlob(0);
  if (!mi0.ok()) return mi0.status();
  s.mi0 = *mi0;
  Result<std::string> mi1 = MovingIntBlob(1);
  if (!mi1.ok()) return mi1.status();
  s.mi1 = *mi1;
  Result<std::string> per = PeriodsBlob();
  if (!per.ok()) return per.status();
  s.per = *per;
  s.e = OpaqueBlob(6000, 5);  // 2 pages — epoch 4 of the pinned workload

  using VT = SpillValueType;
  s.expected.resize(5);
  for (std::size_t e = 0; e < 5; ++e) s.expected[e].epoch = e;
  s.expected[1].roots = {{VT::kOpaque, s.a},
                         {VT::kMovingInt, s.mi0},
                         {VT::kPeriods, s.per}};
  s.expected[2].roots = {{VT::kOpaque, s.b},
                         {VT::kMovingInt, s.mi0},
                         {VT::kPeriods, s.per},
                         {VT::kOpaque, s.c}};
  s.expected[3].roots = {{VT::kOpaque, s.d},
                         {VT::kMovingInt, s.mi1},
                         {VT::kPeriods, s.per},
                         {VT::kOpaque, s.c}};
  // Epoch 4 exists only in the pinned-reader workload: one more value
  // on top of epoch 3, so its commit must allocate around the pages a
  // live pin still protects.
  s.expected[4].roots = s.expected[3].roots;
  s.expected[4].roots.push_back({VT::kOpaque, s.e});
  return s;
}

/// What one (possibly crashed) workload run observed.
struct RunOutcome {
  bool fired = false;
  bool completed = false;
  const char* site = nullptr;
  /// Index into Script::expected of the last cleanly committed epoch
  /// (-1: the fault hit before even the Create commit completed).
  int last_ok = -1;
  /// Epoch index being staged/committed when the fault fired.
  int attempted = -1;
};

// Runs one step; if the armed plan fired during it the run "crashed":
// record where, throw the unflushed cache away, and end the run as a
// success (the crash is the point). A non-OK status without a fired
// plan is a genuine bug and fails the campaign.
#define MODB_CAMPAIGN_STEP(expr, epoch_idx)                               \
  do {                                                                    \
    Status _step = (expr);                                                \
    if (FaultInjector::Global().FiredCount() > 0) {                       \
      out->fired = true;                                                  \
      out->site = FaultInjector::Global().last_fired_site();              \
      out->attempted = (epoch_idx);                                       \
      if (store) store->Abandon().ok();                                   \
      return Status::OK();                                                \
    }                                                                     \
    if (!_step.ok()) {                                                    \
      if (store) store->Abandon().ok();                                   \
      return Status::Internal("workload failed without an armed fault: " + \
                              _step.ToString());                          \
    }                                                                     \
  } while (0)

Status RunWorkload(const std::string& path,
                   const VersionedSpillStore::Options& sopts,
                   const Script& script, RunOutcome* out) {
  using VT = SpillValueType;
  std::optional<VersionedSpillStore> store;

  {
    Result<VersionedSpillStore> created =
        VersionedSpillStore::Create(path, sopts);
    if (created.ok()) store.emplace(std::move(*created));
    MODB_CAMPAIGN_STEP(created.ok() ? Status::OK() : created.status(), 0);
  }
  out->last_ok = 0;  // Create() durably committed the empty epoch 0

  // epoch 1: three fresh values.
  MODB_CAMPAIGN_STEP(store->StageBlob(script.a, VT::kOpaque).status(), 1);
  MODB_CAMPAIGN_STEP(store->StageBlob(script.mi0, VT::kMovingInt).status(), 1);
  MODB_CAMPAIGN_STEP(store->StageBlob(script.per, VT::kPeriods).status(), 1);
  MODB_CAMPAIGN_STEP(store->Commit(), 1);
  out->last_ok = 1;

  // epoch 2: replace root 0 with a larger version, add one more value.
  MODB_CAMPAIGN_STEP(store->RestageBlob(0, script.b, VT::kOpaque), 2);
  MODB_CAMPAIGN_STEP(store->StageBlob(script.c, VT::kOpaque).status(), 2);
  MODB_CAMPAIGN_STEP(store->Commit(), 2);
  out->last_ok = 2;

  // epoch 3: shrink root 0 (reuses freed shadow pages) and swap root 1.
  MODB_CAMPAIGN_STEP(store->RestageBlob(1, script.mi1, VT::kMovingInt), 3);
  MODB_CAMPAIGN_STEP(store->RestageBlob(0, script.d, VT::kOpaque), 3);
  MODB_CAMPAIGN_STEP(store->Commit(), 3);
  out->last_ok = 3;

  out->completed = true;
  return Status::OK();
}

/// Byte-compares everything visible through `pin` against `expect`.
Status VerifyPinView(VersionedSpillStore* store,
                     const VersionedSpillStore::EpochPin& pin,
                     const EpochState& expect) {
  if (pin.epoch() != expect.epoch || pin.NumRoots() != expect.roots.size()) {
    return Status::Internal("pinned view shape changed under the reader");
  }
  for (std::size_t i = 0; i < expect.roots.size(); ++i) {
    if (pin.roots()[i].type != expect.roots[i].first) {
      return Status::Internal("pinned root " + std::to_string(i) +
                              " changed its type tag under the reader");
    }
    Result<std::string> blob = store->ReadRootBlob(pin, i);
    if (!blob.ok()) return blob.status();
    if (*blob != expect.roots[i].second) {
      return Status::Internal(
          "pinned root " + std::to_string(i) +
          " is no longer byte-identical to its pinned epoch");
    }
  }
  return Status::OK();
}

/// The concurrent-reader schedule: pin epoch 2, then keep proving the
/// pinned view untouched while epochs 3 and 4 stage, commit, or crash
/// over it. `views` counts pinned-view checks that completed cleanly.
Status RunPinnedWorkload(const std::string& path,
                         const VersionedSpillStore::Options& sopts,
                         const Script& script, RunOutcome* out,
                         std::uint64_t* views) {
  using VT = SpillValueType;
  std::optional<VersionedSpillStore> store;

  {
    Result<VersionedSpillStore> created =
        VersionedSpillStore::Create(path, sopts);
    if (created.ok()) store.emplace(std::move(*created));
    MODB_CAMPAIGN_STEP(created.ok() ? Status::OK() : created.status(), 0);
  }
  out->last_ok = 0;

  MODB_CAMPAIGN_STEP(store->StageBlob(script.a, VT::kOpaque).status(), 1);
  MODB_CAMPAIGN_STEP(store->StageBlob(script.mi0, VT::kMovingInt).status(), 1);
  MODB_CAMPAIGN_STEP(store->StageBlob(script.per, VT::kPeriods).status(), 1);
  MODB_CAMPAIGN_STEP(store->Commit(), 1);
  out->last_ok = 1;

  MODB_CAMPAIGN_STEP(store->RestageBlob(0, script.b, VT::kOpaque), 2);
  MODB_CAMPAIGN_STEP(store->StageBlob(script.c, VT::kOpaque).status(), 2);
  MODB_CAMPAIGN_STEP(store->Commit(), 2);
  out->last_ok = 2;

  // The reader arrives: pin epoch 2 and take its fingerprint.
  VersionedSpillStore::EpochPin pin = store->PinEpoch();
  MODB_CAMPAIGN_STEP(VerifyPinView(&*store, pin, script.expected[2]), 3);
  ++*views;

  // Epoch 3 stages shadow pages; staging must not disturb the pin.
  MODB_CAMPAIGN_STEP(store->RestageBlob(1, script.mi1, VT::kMovingInt), 3);
  MODB_CAMPAIGN_STEP(store->RestageBlob(0, script.d, VT::kOpaque), 3);
  MODB_CAMPAIGN_STEP(VerifyPinView(&*store, pin, script.expected[2]), 3);
  ++*views;
  // Commit retires the pages epoch 3 replaced — but the pin holds them.
  MODB_CAMPAIGN_STEP(store->Commit(), 3);
  out->last_ok = 3;
  MODB_CAMPAIGN_STEP(VerifyPinView(&*store, pin, script.expected[2]), 3);
  ++*views;

  // Epoch 4 allocates fresh runs; retired pages must not be handed out.
  MODB_CAMPAIGN_STEP(store->StageBlob(script.e, VT::kOpaque).status(), 4);
  MODB_CAMPAIGN_STEP(store->Commit(), 4);
  out->last_ok = 4;
  MODB_CAMPAIGN_STEP(VerifyPinView(&*store, pin, script.expected[2]), 4);
  ++*views;

  // Reader leaves: the parked pages drain and the books must balance.
  pin.Release();
  if (store->NumRetiredPages() != 0) {
    store->Abandon().ok();
    return Status::Internal(
        "retired pages survived the last pin draining");
  }
  MODB_CAMPAIGN_STEP(store->VerifyAccounting(), 4);

  out->completed = true;
  return Status::OK();
}

#undef MODB_CAMPAIGN_STEP

Status VerifyState(VersionedSpillStore* store, const EpochState& expect) {
  if (store->NumRoots() != expect.roots.size()) {
    return Status::Internal("recovered root count " +
                            std::to_string(store->NumRoots()) +
                            " != committed " +
                            std::to_string(expect.roots.size()));
  }
  for (std::size_t i = 0; i < expect.roots.size(); ++i) {
    if (store->roots()[i].type != expect.roots[i].first) {
      return Status::Internal("recovered root " + std::to_string(i) +
                              " has the wrong type tag");
    }
    Result<std::string> blob = store->ReadRootBlob(i);
    if (!blob.ok()) {
      return Status::Internal("recovered root " + std::to_string(i) +
                              " unreadable: " + blob.status().ToString());
    }
    if (*blob != expect.roots[i].second) {
      return Status::Internal(
          "recovered root " + std::to_string(i) +
          " is not byte-identical to any committed version");
    }
  }
  return store->VerifyAccounting();
}

Status VerifyAfterRun(const std::string& path,
                      const VersionedSpillStore::Options& sopts,
                      const Script& script, const RunOutcome& run,
                      CrashCampaignReport* report) {
  FaultInjector::Global().Disarm();
  const std::string where =
      run.site != nullptr ? std::string(run.site) : std::string("(none)");
  Result<VersionedSpillStore> reopened =
      VersionedSpillStore::Open(path, sopts);
  if (!reopened.ok()) {
    if (run.last_ok < 0) {
      // The crash predates the first commit point; "the store never
      // existed" is a legal outcome as long as it is a clean Status.
      ++report->preinit_reopen_failures;
      return Status::OK();
    }
    return Status::Internal("recovery failed after crash at " + where + ": " +
                            reopened.status().ToString());
  }
  VersionedSpillStore& store = *reopened;

  const EpochState* match = nullptr;
  for (int idx : {run.attempted, run.last_ok}) {
    if (idx >= 0 && idx < int(script.expected.size()) &&
        script.expected[idx].epoch == store.epoch()) {
      match = &script.expected[idx];
      break;
    }
  }
  if (match == nullptr) {
    return Status::Internal(
        "crash at " + where + ": recovered epoch " +
        std::to_string(store.epoch()) +
        " is neither the last committed nor the in-flight state");
  }
  Status state = VerifyState(&store, *match);
  if (!state.ok()) {
    return Status::Internal("crash at " + where + ": " + state.ToString());
  }

  report->orphans_reclaimed += store.recovery_info().orphans_reclaimed;
  report->pages_healed += store.recovery_info().pages_healed;

  // Liveness: a recovered store (healed pages included) must still
  // accept and durably commit new work with clean accounting.
  Result<std::size_t> idx = store.StageBlob(OpaqueBlob(64, 7),
                                            SpillValueType::kOpaque);
  if (!idx.ok()) {
    return Status::Internal("post-recovery stage failed after crash at " +
                            where + ": " + idx.status().ToString());
  }
  Status commit = store.Commit();
  if (!commit.ok()) {
    return Status::Internal("post-recovery commit failed after crash at " +
                            where + ": " + commit.ToString());
  }
  MODB_RETURN_IF_ERROR(store.VerifyAccounting());

  ++report->recoveries_verified;
  return Status::OK();
}

}  // namespace

Result<CrashCampaignReport> RunCrashCampaign(
    const CrashCampaignOptions& options) {
  if (!kFaultsEnabled) {
    return Status::Unimplemented(
        "crash campaign needs fault injection (build with MODB_FAULTS=ON)");
  }
  FaultInjector& inj = FaultInjector::Global();
  CrashCampaignReport report;
  report.tear_modes = options.tear_keep_bytes.size();
  const VersionedSpillStore::Options sopts = StoreOptions(options.device);

  Result<Script> script = BuildScript();
  if (!script.ok()) return script.status();

  // Clean pass: establish the deterministic I/O site counts.
  inj.Disarm();
  {
    RunOutcome clean;
    RunOutcome* out = &clean;
    MODB_RETURN_IF_ERROR(RunWorkload(options.path, sopts, *script, out));
    if (!clean.completed) {
      return Status::Internal("clean workload run did not complete");
    }
  }
  report.write_sites = inj.OpCount(FaultOp::kWrite);
  report.read_sites = inj.OpCount(FaultOp::kRead);

  inj.Disarm();
  {
    Result<VersionedSpillStore> opened =
        VersionedSpillStore::Open(options.path, sopts);
    if (!opened.ok()) return opened.status();
    MODB_RETURN_IF_ERROR(VerifyState(&*opened, script->expected[3]));
  }
  report.open_read_sites = inj.OpCount(FaultOp::kRead);

  auto run_with_arm = [&](auto&& arm) -> Status {
    inj.Disarm();
    arm();
    inj.HaltAfterFire();
    RunOutcome run;
    Status s = RunWorkload(options.path, sopts, *script, &run);
    if (!s.ok()) return s;
    ++report.runs;
    if (run.fired) ++report.crashes;
    return VerifyAfterRun(options.path, sopts, *script, run, &report);
  };

  // Every write site × {hard failure, each torn-write mode}.
  for (std::uint64_t w = 0; w < report.write_sites; ++w) {
    MODB_RETURN_IF_ERROR(
        run_with_arm([&] { inj.FailNth(FaultOp::kWrite, w); }));
    for (std::size_t keep : options.tear_keep_bytes) {
      MODB_RETURN_IF_ERROR(run_with_arm([&] { inj.TearNth(w, keep); }));
    }
  }
  // Every read site × hard failure.
  for (std::uint64_t r = 0; r < report.read_sites; ++r) {
    MODB_RETURN_IF_ERROR(
        run_with_arm([&] { inj.FailNth(FaultOp::kRead, r); }));
  }

  // Concurrent-reader schedules: the pinned workload, crashed at every
  // write site (hard failure; the torn modes above already exercised
  // the byte-level write paths).
  inj.Disarm();
  {
    RunOutcome clean;
    std::uint64_t views = 0;
    MODB_RETURN_IF_ERROR(
        RunPinnedWorkload(options.path, sopts, *script, &clean, &views));
    if (!clean.completed) {
      return Status::Internal("clean pinned-reader run did not complete");
    }
    report.pinned_views_verified += views;
  }
  report.pinned_write_sites = inj.OpCount(FaultOp::kWrite);
  for (std::uint64_t w = 0; w < report.pinned_write_sites; ++w) {
    inj.Disarm();
    inj.FailNth(FaultOp::kWrite, w);
    inj.HaltAfterFire();
    RunOutcome run;
    std::uint64_t views = 0;
    Status s = RunPinnedWorkload(options.path, sopts, *script, &run, &views);
    if (!s.ok()) return s;
    ++report.runs;
    ++report.pinned_reader_runs;
    report.pinned_views_verified += views;
    if (run.fired) ++report.crashes;
    MODB_RETURN_IF_ERROR(
        VerifyAfterRun(options.path, sopts, *script, run, &report));
  }

  // Transient-read sweep: a single flaky (non-crash) read at every site
  // of a recovery Open must be absorbed by the retry policy.
  inj.Disarm();
  {
    RunOutcome rebuild;
    MODB_RETURN_IF_ERROR(RunWorkload(options.path, sopts, *script, &rebuild));
    if (!rebuild.completed) {
      return Status::Internal("rebuild workload run did not complete");
    }
  }
  for (std::uint64_t r = 0; r < report.open_read_sites; ++r) {
    inj.Disarm();
    inj.FailNth(FaultOp::kRead, r);
    Result<VersionedSpillStore> opened =
        VersionedSpillStore::Open(options.path, sopts);
    ++report.runs;
    if (!opened.ok()) {
      return Status::Internal(
          "recovery open did not absorb a transient read fault at read op " +
          std::to_string(r) + ": " + opened.status().ToString());
    }
    MODB_RETURN_IF_ERROR(VerifyState(&*opened, script->expected[3]));
    ++report.retried_opens;
  }
  inj.Disarm();
  return report;
}

}  // namespace modb
