// Fault injection for the storage layer. Real block devices fail: reads
// error, writes error, and a crash mid-write leaves a *torn* page (only a
// prefix persisted). The storage code cannot be called robust until every
// one of those paths is exercised, so the page devices route each I/O
// through the global FaultInjector, which tests arm to fail or tear the
// Nth subsequent operation.
//
// The hooks are compile-time gated: with -DMODB_FAULTS=OFF the injector
// is an inline no-op stub (kFaultsEnabled == false) and the device code
// carries zero fault-checking work. Torn writes are deliberately *silent*
// at the device level — the write "succeeds" but persists only a prefix —
// because that is what a real torn write looks like; the checksummed
// spill page headers (storage/spill.h, docs/STORAGE_FORMAT.md) are what
// must catch them on read.

#ifndef MODB_STORAGE_FAULT_H_
#define MODB_STORAGE_FAULT_H_

#include <cstddef>
#include <cstdint>

#include "core/status.h"

#ifdef MODB_FAULTS
#include <mutex>
#endif

namespace modb {

/// The two I/O directions a fault plan can match.
enum class FaultOp : std::uint8_t { kRead = 0, kWrite = 1 };

/// Sentinel for "persist the whole buffer" (no torn write armed).
inline constexpr std::size_t kFaultKeepAll = std::size_t(-1);

#ifdef MODB_FAULTS

inline constexpr bool kFaultsEnabled = true;

/// Process-wide injector. Arming is one-shot: a plan fires on the Nth
/// matching operation counted from the moment it was armed, then disarms
/// itself. Thread-safe; tests should Disarm() in their teardown so plans
/// never leak across tests.
class FaultInjector {
 public:
  static FaultInjector& Global();

  /// Arms a hard failure: the nth (0-based) subsequent op of kind `op`
  /// returns an Internal error instead of performing any I/O.
  void FailNth(FaultOp op, std::uint64_t nth);

  /// Arms a torn write: the nth subsequent write persists only the first
  /// `keep_bytes` bytes and then reports success.
  void TearNth(std::uint64_t nth, std::size_t keep_bytes);

  /// Arms crash semantics: once any plan fires, every subsequent
  /// operation fails with an Internal error until Disarm(). This models
  /// what a fault means in a crash: the device tears or errors the
  /// in-flight I/O *because the process is dying*, so no later I/O
  /// happens either. Without it a torn write is silent and the workload
  /// keeps writing — the right model for latent-corruption tests, the
  /// wrong one for crash-recovery campaigns.
  void HaltAfterFire();

  /// Clears every armed plan and zeroes the op counters.
  void Disarm();

  /// Operations of kind `op` observed since the last Disarm/arm.
  std::uint64_t OpCount(FaultOp op) const;

  /// Plans (failures or tears) that have fired since the last Disarm.
  /// Crash-campaign drivers poll this after every storage call: a torn
  /// write reports success at the device level, so the only way to model
  /// "the process died during this write" is to stop the workload the
  /// moment the tear plan fires.
  std::uint64_t FiredCount() const;

  /// The call-site label of the most recently fired plan (a string
  /// literal owned by the device code), or nullptr if none fired since
  /// the last Disarm.
  const char* last_fired_site() const;

  // -- hooks called by the page devices --------------------------------------

  /// Consulted before a read; non-OK means the read must fail.
  Status OnRead(const char* site);

  /// Consulted before a write. Non-OK means the write must fail without
  /// persisting anything; OK with *keep_bytes != kFaultKeepAll means the
  /// device must persist only that prefix and report success.
  Status OnWrite(const char* site, std::size_t* keep_bytes);

 private:
  FaultInjector() = default;

  mutable std::mutex mu_;
  std::uint64_t count_[2] = {0, 0};
  bool fail_armed_[2] = {false, false};
  std::uint64_t fail_at_[2] = {0, 0};
  bool tear_armed_ = false;
  std::uint64_t tear_at_ = 0;
  std::size_t tear_keep_ = 0;
  bool halt_after_fire_ = false;
  bool halted_ = false;
  std::uint64_t fired_ = 0;
  const char* last_site_ = nullptr;
};

#else  // !MODB_FAULTS: inline stubs; hooks fold away entirely.

inline constexpr bool kFaultsEnabled = false;

class FaultInjector {
 public:
  static FaultInjector& Global() {
    static FaultInjector injector;
    return injector;
  }
  void FailNth(FaultOp, std::uint64_t) {}
  void TearNth(std::uint64_t, std::size_t) {}
  void HaltAfterFire() {}
  void Disarm() {}
  std::uint64_t OpCount(FaultOp) const { return 0; }
  std::uint64_t FiredCount() const { return 0; }
  const char* last_fired_site() const { return nullptr; }
  Status OnRead(const char*) { return Status::OK(); }
  Status OnWrite(const char*, std::size_t* keep_bytes) {
    *keep_bytes = kFaultKeepAll;
    return Status::OK();
  }

 private:
  FaultInjector() = default;
};

#endif  // MODB_FAULTS

}  // namespace modb

#endif  // MODB_STORAGE_FAULT_H_
