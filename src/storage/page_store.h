// An in-process emulation of the DBMS block environment the paper's data
// structures target (Section 4): attribute values must live in "a small
// number of memory blocks that can be moved efficiently between secondary
// and main memory". PageStore hands out page extents; DbArray-style
// variable-size components are placed either inline in the tuple or in a
// page extent depending on size, following [DG98].

#ifndef MODB_STORAGE_PAGE_STORE_H_
#define MODB_STORAGE_PAGE_STORE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/status.h"

namespace modb {

inline constexpr std::size_t kPageSize = 4096;

/// A contiguous run of pages holding one database array.
struct PageExtent {
  uint32_t first_page = 0;
  uint32_t num_pages = 0;
  uint32_t num_bytes = 0;
};

/// A trivially simple page allocator with read/write access by extent.
class PageStore {
 public:
  PageStore() = default;

  // Page stores own bulk data; copying one is almost always a bug.
  PageStore(const PageStore&) = delete;
  PageStore& operator=(const PageStore&) = delete;
  PageStore(PageStore&&) = default;
  PageStore& operator=(PageStore&&) = default;

  /// Copies `bytes` into freshly allocated pages.
  PageExtent Write(std::string_view bytes);

  /// Reads an extent back.
  Result<std::string> Read(const PageExtent& extent) const;

  /// Persists all pages to a file ("secondary memory": previously issued
  /// extents remain valid against the reloaded store).
  Status SaveToFile(const std::string& path) const;

  /// Reloads a store persisted with SaveToFile.
  static Result<PageStore> LoadFromFile(const std::string& path);

  std::size_t NumPages() const { return pages_.size(); }
  std::size_t BytesAllocated() const { return pages_.size() * kPageSize; }
  std::size_t BytesUsed() const { return bytes_used_; }

 private:
  std::vector<std::string> pages_;
  std::size_t bytes_used_ = 0;
};

}  // namespace modb

#endif  // MODB_STORAGE_PAGE_STORE_H_
