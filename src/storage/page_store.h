// An in-process emulation of the DBMS block environment the paper's data
// structures target (Section 4): attribute values must live in "a small
// number of memory blocks that can be moved efficiently between secondary
// and main memory". PageStore hands out page extents; DbArray-style
// variable-size components are placed either inline in the tuple or in a
// page extent depending on size, following [DG98].
//
// The PageDevice interface is the block-device contract the buffer pool
// (storage/buffer_pool.h) caches over: fixed-size pages addressed by id,
// with fallible page-granular reads and writes. PageStore implements it
// in memory; FilePageDevice implements it directly against a file so
// pages are only brought into main memory on demand ("secondary memory"
// proper — a relation accessed through it can exceed RAM);
// MmapPageDevice (storage/mmap_device.h) maps the same file format and
// serves reads as pointers into the mapping. All devices route every
// page I/O through the fault injector (storage/fault.h).

#ifndef MODB_STORAGE_PAGE_STORE_H_
#define MODB_STORAGE_PAGE_STORE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/status.h"

namespace modb {

inline constexpr std::size_t kPageSize = 4096;

/// The on-disk page file header: magic u64, num_pages u64, bytes_used
/// u64 (all LE). Shared by PageStore::SaveToFile, FilePageDevice, and
/// MmapPageDevice — page `p` lives at byte offset
/// kPageFileHeaderSize + p * kPageSize. See docs/STORAGE_FORMAT.md §2.
inline constexpr std::size_t kPageFileHeaderSize = 24;

/// A contiguous run of pages holding one database array.
struct PageExtent {
  uint32_t first_page = 0;
  uint32_t num_pages = 0;
  uint32_t num_bytes = 0;
};

/// The block-device contract: fixed-size pages addressed by id. All
/// operations are fallible; implementations must not abort on I/O errors.
///
/// Thread safety: ReadPage, WritePage, MappedPage, and Prefetch must
/// tolerate concurrent calls (the sharded buffer pool issues page I/O
/// from several shards at once). AllocatePages and Sync are
/// writer-side operations: callers must serialize them against each
/// other, but reads may proceed concurrently with both.
class PageDevice {
 public:
  virtual ~PageDevice() = default;

  virtual std::size_t NumPages() const = 0;

  /// Appends `n` zeroed pages; returns the id of the first.
  virtual Result<uint32_t> AllocatePages(uint32_t n) = 0;

  /// Copies page `page` into out[0, kPageSize).
  virtual Status ReadPage(uint32_t page, char* out) const = 0;

  /// Overwrites page `page` with data[0, kPageSize).
  virtual Status WritePage(uint32_t page, const char* data) = 0;

  /// Zero-copy read: a pointer to the device's own stable storage for
  /// `page`, valid until the device is destroyed. Returns nullptr (OK)
  /// when the device cannot map pages — the buffer pool then falls back
  /// to a ReadPage copy-in. An error means the page's bytes are not
  /// readable at all (same contract as ReadPage).
  virtual Result<const char*> MappedPage(uint32_t page) const {
    (void)page;
    return Result<const char*>(nullptr);
  }

  /// Advises the device that [first_page, first_page + num_pages) is
  /// about to be read sequentially. Purely a hint; never fails.
  virtual void Prefetch(uint32_t first_page, uint32_t num_pages) const {
    (void)first_page;
    (void)num_pages;
  }

  /// Forces previously written pages down to durable storage (msync /
  /// fdatasync). A no-op for in-memory devices.
  virtual Status Sync() { return Status::OK(); }
};

/// A trivially simple in-memory page allocator with read/write access by
/// extent and by page.
class PageStore : public PageDevice {
 public:
  PageStore() = default;

  // Page stores own bulk data; copying one is almost always a bug.
  PageStore(const PageStore&) = delete;
  PageStore& operator=(const PageStore&) = delete;
  PageStore(PageStore&&) = default;
  PageStore& operator=(PageStore&&) = default;

  /// Copies `bytes` into freshly allocated pages.
  PageExtent Write(std::string_view bytes);

  /// Reads an extent back.
  Result<std::string> Read(const PageExtent& extent) const;

  // PageDevice:
  std::size_t NumPages() const override { return pages_.size(); }
  Result<uint32_t> AllocatePages(uint32_t n) override;
  Status ReadPage(uint32_t page, char* out) const override;
  Status WritePage(uint32_t page, const char* data) override;

  /// Persists all pages to a file ("secondary memory": previously issued
  /// extents remain valid against the reloaded store). The file layout is
  /// specified in docs/STORAGE_FORMAT.md and shared with FilePageDevice.
  Status SaveToFile(const std::string& path) const;

  /// Reloads a store persisted with SaveToFile.
  static Result<PageStore> LoadFromFile(const std::string& path);

  std::size_t BytesAllocated() const { return pages_.size() * kPageSize; }
  std::size_t BytesUsed() const { return bytes_used_; }

 private:
  std::vector<std::string> pages_;
  std::size_t bytes_used_ = 0;
};

/// A file-backed page device over the PageStore file format: pages are
/// read and written in place with positioned I/O (pread/pwrite), one
/// page per call, so only the pages a query actually touches ever occupy
/// main memory and concurrent reads never contend on a shared file
/// offset. Cache it behind a BufferPool to amortize the per-page seeks.
///
/// Short reads/writes and EINTR are retried in a loop; only true
/// truncation — the file ends before the bytes the header admits — is
/// reported as kDataLoss, with the path, offset, and expected/got byte
/// counts so recovery can decide to heal rather than retry.
class FilePageDevice : public PageDevice {
 public:
  /// Creates (truncating) an empty device file.
  static Result<FilePageDevice> Create(const std::string& path);

  /// Opens an existing device file (e.g. one written by
  /// PageStore::SaveToFile).
  static Result<FilePageDevice> Open(const std::string& path);

  ~FilePageDevice() override;

  FilePageDevice(const FilePageDevice&) = delete;
  FilePageDevice& operator=(const FilePageDevice&) = delete;
  FilePageDevice(FilePageDevice&& other) noexcept;
  FilePageDevice& operator=(FilePageDevice&& other) noexcept;

  // PageDevice:
  std::size_t NumPages() const override {
    return std::size_t(num_pages_.load(std::memory_order_acquire));
  }
  Result<uint32_t> AllocatePages(uint32_t n) override;
  Status ReadPage(uint32_t page, char* out) const override;
  Status WritePage(uint32_t page, const char* data) override;
  void Prefetch(uint32_t first_page, uint32_t num_pages) const override;
  Status Sync() override;

  const std::string& path() const { return path_; }

 private:
  FilePageDevice() = default;

  Status WriteHeader();

  std::string path_;
  int fd_ = -1;
  // Readers race benignly with the writer's growth; acquire/release so
  // a page id observed in-range has its backing bytes visible too.
  std::atomic<uint64_t> num_pages_{0};
  uint64_t bytes_used_ = 0;
};

}  // namespace modb

#endif  // MODB_STORAGE_PAGE_STORE_H_
