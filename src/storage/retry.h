// Bounded exponential backoff for transient storage I/O errors.
//
// The storage layer distinguishes *transient* failures (kInternal — the
// device hiccuped; the same I/O may succeed a moment later) from
// *permanent* ones (kDataLoss, kInvalidArgument, kOutOfRange — the bytes
// are gone or the request is wrong; retrying cannot help). Recovery and
// other availability-critical readers wrap their device reads in
// RetryTransient so a single flaky read does not fail a whole Recover(),
// while corruption still surfaces immediately.
//
// Attempts and outcomes land in the metrics registry
// (storage.retry.{attempts,retries,successes_after_retry,exhausted}).

#ifndef MODB_STORAGE_RETRY_H_
#define MODB_STORAGE_RETRY_H_

#include <chrono>
#include <cstdint>
#include <thread>
#include <utility>

#include "core/status.h"
#include "obs/metrics.h"

namespace modb {

/// Backoff schedule: attempt k (0-based) sleeps
/// min(base_delay_micros << k, max_delay_micros) before retrying, up to
/// max_attempts total tries. Tests set base_delay_micros = 0 so a
/// retried campaign stays fast.
struct RetryPolicy {
  int max_attempts = 4;
  std::int64_t base_delay_micros = 100;
  std::int64_t max_delay_micros = 10'000;
};

/// True for errors the storage layer treats as transient and retryable.
inline bool IsTransient(const Status& s) {
  return s.code() == StatusCode::kInternal;
}

/// Runs `fn` (a () -> Status callable) up to policy.max_attempts times,
/// sleeping with bounded exponential backoff between attempts. Non-OK
/// results that are not transient return immediately; a transient error
/// on the last attempt is returned as-is ("exhausted").
template <typename Fn>
Status RetryTransient(const RetryPolicy& policy, Fn&& fn) {
  const int attempts = policy.max_attempts < 1 ? 1 : policy.max_attempts;
  Status last;
  for (int k = 0; k < attempts; ++k) {
    MODB_COUNTER_INC("storage.retry.attempts");
    last = fn();
    if (last.ok()) {
      if (k > 0) MODB_COUNTER_INC("storage.retry.successes_after_retry");
      return last;
    }
    if (!IsTransient(last)) return last;
    if (k + 1 == attempts) break;
    MODB_COUNTER_INC("storage.retry.retries");
    std::int64_t delay = policy.base_delay_micros;
    if (delay > 0) {
      for (int i = 0; i < k && delay < policy.max_delay_micros; ++i) {
        delay *= 2;
      }
      if (delay > policy.max_delay_micros) delay = policy.max_delay_micros;
      std::this_thread::sleep_for(std::chrono::microseconds(delay));
    }
  }
  MODB_COUNTER_INC("storage.retry.exhausted");
  return last;
}

/// Result<T> flavor: `fn` is a () -> Result<T> callable.
template <typename T, typename Fn>
Result<T> RetryTransientResult(const RetryPolicy& policy, Fn&& fn) {
  Result<T> out = Status::Internal("retry never ran");
  Status s = RetryTransient(policy, [&] {
    out = fn();
    return out.ok() ? Status::OK() : out.status();
  });
  if (!s.ok()) return s;
  return out;
}

}  // namespace modb

#endif  // MODB_STORAGE_RETRY_H_
