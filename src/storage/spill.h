// The spill format: a serialized flat attribute value (root record +
// database arrays, storage/flat.h) laid out across device pages, each
// page carrying a checksummed, versioned header. This is the durable,
// self-verifying shape of the paper's Section-4 representation — the
// database arrays of Figure 7 paged per [DG98] — and the reason torn or
// corrupt writes surface as Result<> errors instead of silently decoding
// garbage. Byte-level layout: docs/STORAGE_FORMAT.md.
//
// Reads go through a BufferPool, so a cold value costs one device read
// per page and a warm one costs none; Spilled<M> additionally memoizes
// the decoded value, the load-on-demand handle the paged query readers
// (temporal/paged_ops.h) evaluate AtInstantBatch/Present against.

#ifndef MODB_STORAGE_SPILL_H_
#define MODB_STORAGE_SPILL_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "core/status.h"
#include "storage/buffer_pool.h"
#include "storage/flat.h"
#include "storage/page_store.h"

namespace modb {

// -- page layout constants (see docs/STORAGE_FORMAT.md) ----------------------

inline constexpr std::uint32_t kSpillMagic = 0x4d4f5350;  // "MOSP" (LE)
inline constexpr std::uint8_t kSpillVersion = 1;
/// flags bit 0: set on the first page of a value.
inline constexpr std::uint8_t kSpillFlagFirstPage = 1;
inline constexpr std::size_t kSpillHeaderSize = 16;
inline constexpr std::size_t kSpillPayloadSize = kPageSize - kSpillHeaderSize;

/// Root pointer to one spilled value: `num_bytes` of serialized flat blob
/// in `num_pages` consecutive pages starting at `first_page`.
struct SpillLocator {
  std::uint32_t first_page = 0;
  std::uint32_t num_pages = 0;
  std::uint32_t num_bytes = 0;
};

/// CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320) over `n` bytes.
std::uint32_t Crc32(const char* data, std::size_t n);

/// Pages needed to spill a blob of `num_bytes` (an empty blob still
/// roots one page).
std::uint32_t SpillPagesNeeded(std::size_t num_bytes);

/// Writes `blob` into freshly allocated pages of `device`, each prefixed
/// with a checksummed header.
Result<SpillLocator> SpillBlob(PageDevice* device, std::string_view blob);

/// Writes `blob` into `SpillPagesNeeded(blob.size())` consecutive
/// already-allocated pages starting at `first_page`, going through the
/// pool (pages are pinned, overwritten, and marked dirty — durable after
/// the pool flushes). This is the shadow-paging write path: the
/// versioned store stages new value versions into free pages with it and
/// the cache stays coherent because the pool sees every byte.
Result<SpillLocator> SpillBlobToPages(BufferPool* pool,
                                      std::uint32_t first_page,
                                      std::string_view blob);

/// Reads a spilled blob back through the pool, verifying every page's
/// magic, version, sequence number, payload length, and checksum. Any
/// mismatch — including a torn write that persisted only a prefix of a
/// page — is an error; no corrupt bytes are ever returned.
Result<std::string> ReadSpilledBlob(BufferPool* pool, const SpillLocator& loc);

// -- typed layer -------------------------------------------------------------

namespace spill_internal {

/// Unifies the two ToFlat return shapes (FlatValue and Result<FlatValue>).
template <typename M>
Result<FlatValue> EncodeToFlat(const M& value) {
  return ToFlat(value);
}

}  // namespace spill_internal

/// Per-type decoder; specialized for every flat-codable moving type.
template <typename M>
struct FlatCodec;

#define MODB_SPILL_CODEC(M, FromFn)                  \
  template <>                                        \
  struct FlatCodec<M> {                              \
    static Result<M> FromFlat(const FlatValue& f) {  \
      return FromFn(f);                              \
    }                                                \
  }
MODB_SPILL_CODEC(MovingBool, MovingBoolFromFlat);
MODB_SPILL_CODEC(MovingInt, MovingIntFromFlat);
MODB_SPILL_CODEC(MovingString, MovingStringFromFlat);
MODB_SPILL_CODEC(MovingReal, MovingRealFromFlat);
MODB_SPILL_CODEC(MovingPoint, MovingPointFromFlat);
MODB_SPILL_CODEC(MovingPoints, MovingPointsFromFlat);
MODB_SPILL_CODEC(MovingLine, MovingLineFromFlat);
MODB_SPILL_CODEC(MovingRegion, MovingRegionFromFlat);
// Non-mapping attribute types the versioned store can also root.
MODB_SPILL_CODEC(Periods, PeriodsFromFlat);
MODB_SPILL_CODEC(Line, LineFromFlat);
MODB_SPILL_CODEC(Region, RegionFromFlat);
#undef MODB_SPILL_CODEC

/// A load-on-demand handle to one spilled value. Holds only the locator
/// (12 bytes) until Load() is called; Load pins the value's pages through
/// the pool, verifies them, decodes, and memoizes the result until
/// Release(). A relation of Spilled<M> handles therefore occupies RAM
/// proportional to what queries actually touch, not to its total size.
template <typename M>
class Spilled {
 public:
  Spilled() = default;
  explicit Spilled(SpillLocator loc) : loc_(loc) {}

  /// Serializes `value` and writes it to `device`.
  static Result<Spilled> Spill(const M& value, PageDevice* device) {
    Result<FlatValue> flat = spill_internal::EncodeToFlat(value);
    if (!flat.ok()) return flat.status();
    Result<SpillLocator> loc = SpillBlob(device, SerializeFlat(*flat));
    if (!loc.ok()) return loc.status();
    return Spilled(*loc);
  }

  /// The decoded value, loading through `pool` on first call. When
  /// `build_search_index` is set, the mapping's SoA search index is built
  /// once at load so subsequent batch kernels run at full speed.
  Result<const M*> Load(BufferPool* pool, bool build_search_index = false) {
    if (!cached_) {
      Result<std::string> blob = ReadSpilledBlob(pool, loc_);
      if (!blob.ok()) return blob.status();
      Result<FlatValue> flat = ParseFlat(*blob);
      if (!flat.ok()) return flat.status();
      Result<M> value = FlatCodec<M>::FromFlat(*flat);
      if (!value.ok()) return value.status();
      cached_.emplace(std::move(*value));
      // Non-mapping attribute types (Periods, Line, Region) have no
      // search index; the flag is simply ignored for them.
      if constexpr (requires(M& m) { m.BuildSearchIndex(); }) {
        if (build_search_index) cached_->BuildSearchIndex();
      }
    }
    return &*cached_;
  }

  /// Load with a structural validation pass (e.g.
  /// validate::MappingValidator from src/validate/validate.h) run over
  /// the decoded value before it is memoized: a value that violates the
  /// Section-3 invariants is never served. `validator` is any callable
  /// `const M& -> Status`. Costs one extra pass at decode time only —
  /// warm calls return the memoized value untouched.
  template <typename Validator>
  Result<const M*> LoadValidated(BufferPool* pool, Validator&& validator,
                                 bool build_search_index = false) {
    const bool was_loaded = cached_.has_value();
    Result<const M*> loaded = Load(pool, build_search_index);
    if (!loaded.ok()) return loaded;
    if (!was_loaded) {
      Status valid = validator(**loaded);
      if (!valid.ok()) {
        cached_.reset();  // never serve (or cache) an invalid value
        return valid;
      }
    }
    return loaded;
  }

  /// Drops the decoded value (the pages stay on the device, and possibly
  /// in the pool). The next Load decodes again.
  void Release() { cached_.reset(); }

  bool IsLoaded() const { return cached_.has_value(); }
  const SpillLocator& locator() const { return loc_; }

 private:
  SpillLocator loc_;
  std::optional<M> cached_;
};

}  // namespace modb

#endif  // MODB_STORAGE_SPILL_H_
