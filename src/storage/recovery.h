// Crash-consistent commits for spilled attribute values: shadow paging
// plus an atomically switched, versioned root record.
//
// The paged storage layer (spill.h) writes a value once and never
// moves it; what was missing is a story for *updating* a store without
// a window where a crash loses both the old and the new state. The
// protocol here closes that window:
//
//   1. Staged writes go only to *shadow pages* — pages no committed
//      root references (the in-memory free list, or fresh allocation).
//      Committed bytes are never overwritten.
//   2. Commit makes the staged pages durable (buffer-pool flush), then
//      writes a new root record — epoch, CRC, and one locator per
//      root value — into the root slot the *previous* epoch does not
//      occupy (page `epoch % 2`, alternating between pages 0 and 1),
//      and flushes again. The root-record write is the commit point:
//      a single page write, last-wins by highest intact epoch.
//
// Every crash prefix of that sequence leaves the device with at least
// one intact root record whose pages were never touched afterwards, so
// Open() always lands on a complete committed state — the old epoch or
// the new one, never a blend. Open() re-derives the free list (it is
// deliberately not persisted; pages unreachable from the chosen root
// are reclaimed as orphans), heals phantom pages a torn file growth
// left unreadable, retries transient read errors under a bounded
// backoff (storage/retry.h), and refuses to serve any root whose
// decoded value violates the Section-3 invariants (validate/validate.h).
//
// Concurrent snapshot readers: shadow paging is MVCC for free. A
// reader calls PinEpoch() to take an immutable snapshot of the current
// committed epoch (its number and root table), then resolves blobs
// against the pin — lock-free and unaffected by a writer staging and
// committing the next epoch, because committed pages are never
// overwritten. The one thing a commit does reclaim is the pages a
// *replaced* root occupied; with pins outstanding those runs are
// parked on a retired list and only drain back into the free list when
// every pin on an epoch that could reference them is released —
// deferred reclamation, accounted by VerifyAccounting.
//
// Byte-level layout of the root record: docs/STORAGE_FORMAT.md.

#ifndef MODB_STORAGE_RECOVERY_H_
#define MODB_STORAGE_RECOVERY_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/status.h"
#include "storage/buffer_pool.h"
#include "storage/page_store.h"
#include "storage/retry.h"
#include "storage/spill.h"

namespace modb {

// -- root record layout constants (see docs/STORAGE_FORMAT.md) ---------------

inline constexpr std::uint32_t kRootMagic = 0x4d4f5352;  // "MOSR" (LE)
inline constexpr std::uint8_t kRootVersion = 1;
/// Fixed page ids of the two root slots; epoch e lives in slot e % 2.
inline constexpr std::uint32_t kRootSlotPages[2] = {0, 1};
inline constexpr std::size_t kRootHeaderSize = 20;
inline constexpr std::size_t kRootEntrySize = 16;
/// Roots one record can hold: (4096 - 20) / 16.
inline constexpr std::size_t kMaxRootsPerStore =
    (kPageSize - kRootHeaderSize) / kRootEntrySize;

/// Which PageDevice implementation backs a store's MODBPAGE file. Both
/// kinds read and write the identical format, so a file created under
/// one opens under the other.
enum class StoreDeviceKind {
  kFile,  // FilePageDevice: positioned read/write syscalls per page
  kMmap,  // MmapPageDevice: zero-copy reads out of a shared mapping
};

/// Type tag stored with each root entry so recovery knows how to decode
/// and validate the blob without out-of-band schema knowledge.
enum class SpillValueType : std::uint32_t {
  kOpaque = 0,  // checksummed bytes; no decode/validation possible
  kMovingBool = 1,
  kMovingInt = 2,
  kMovingString = 3,
  kMovingReal = 4,
  kMovingPoint = 5,
  kMovingPoints = 6,
  kMovingLine = 7,
  kMovingRegion = 8,
  kPeriods = 9,
  kLine = 10,
  kRegion = 11,
};

/// Maps a flat-codable type to its root-entry tag.
template <typename M>
struct SpillTypeOf;
#define MODB_SPILL_TYPE_OF(M, tag)                             \
  template <>                                                  \
  struct SpillTypeOf<M> {                                      \
    static constexpr SpillValueType value = SpillValueType::tag; \
  }
MODB_SPILL_TYPE_OF(MovingBool, kMovingBool);
MODB_SPILL_TYPE_OF(MovingInt, kMovingInt);
MODB_SPILL_TYPE_OF(MovingString, kMovingString);
MODB_SPILL_TYPE_OF(MovingReal, kMovingReal);
MODB_SPILL_TYPE_OF(MovingPoint, kMovingPoint);
MODB_SPILL_TYPE_OF(MovingPoints, kMovingPoints);
MODB_SPILL_TYPE_OF(MovingLine, kMovingLine);
MODB_SPILL_TYPE_OF(MovingRegion, kMovingRegion);
MODB_SPILL_TYPE_OF(Periods, kPeriods);
MODB_SPILL_TYPE_OF(Line, kLine);
MODB_SPILL_TYPE_OF(Region, kRegion);
#undef MODB_SPILL_TYPE_OF

/// One committed value: where its bytes live and how to decode them.
struct VersionedRoot {
  SpillLocator locator;
  SpillValueType type = SpillValueType::kOpaque;
};

/// Decodes `blob` according to `type` and checks the Section-3
/// structural invariants of the decoded value (validate/validate.h).
/// kOpaque blobs pass trivially — their integrity is the page CRCs'.
Status DecodeAndValidateRootBlob(SpillValueType type, std::string_view blob);

/// A page-device-backed store of versioned spilled values with
/// crash-consistent commits. Staging and Commit are single-writer;
/// any number of concurrent readers run against pinned epochs.
class VersionedSpillStore {
 public:
  struct Options {
    std::size_t pool_capacity = 64;
    /// Backoff for transient read errors during Open/ReadRootBlob.
    RetryPolicy retry;
    /// When false, Open() serves roots on CRC trust alone (skips the
    /// decode + invariant pass). The validated path is the default;
    /// benches use this to measure its cost.
    bool validate_on_open = true;
    /// Backing device implementation (same on-disk format either way).
    StoreDeviceKind device = StoreDeviceKind::kFile;
  };

  /// What Open()'s recovery pass did — exposed for tests, tools, and
  /// the crash campaign's leak accounting.
  struct RecoveryInfo {
    std::uint64_t epoch = 0;
    std::uint32_t num_roots = 0;
    /// Root-slot candidates rejected (bad magic/CRC, out-of-bounds or
    /// overlapping locators, or values failing decode/validation).
    std::uint32_t roots_rejected = 0;
    /// Unreachable pages reclaimed into the free list. The free list is
    /// not persisted, so this counts every non-root, non-slot page not
    /// referenced by the chosen epoch — orphaned shadow pages included.
    std::uint32_t orphans_reclaimed = 0;
    /// Phantom pages (admitted by the device header but unreadable
    /// after a torn growth) re-materialized as zero pages.
    std::uint32_t pages_healed = 0;
  };

  /// An immutable view of one committed epoch: its number and root
  /// table, snapshotted at pin time.
  struct EpochSnapshot {
    std::uint64_t epoch = 0;
    std::vector<VersionedRoot> roots;
  };

 private:
  /// A run of pages the commit of `last_epoch + 1` un-referenced; free
  /// to reuse only once no pin on any epoch <= last_epoch remains.
  struct RetiredRun {
    std::uint64_t last_epoch = 0;
    std::vector<std::uint32_t> pages;
  };

  /// Reader-visible bookkeeping, heap-shared so pins survive moves of
  /// the store object itself.
  struct SharedState {
    std::mutex mu;
    std::vector<std::uint32_t> free;
    std::vector<RetiredRun> retired;
    std::map<std::uint64_t, std::uint32_t> pins;  // epoch -> pin count
    std::shared_ptr<const EpochSnapshot> snapshot;
  };

 public:
  /// An RAII pin on one committed epoch. While alive, every page run
  /// the pinned epoch references stays untouched on the device — a
  /// writer may stage and commit later epochs concurrently, but
  /// reclamation of the pinned epoch's pages is deferred until the
  /// last pin on it drains. Reads through the pin (ReadRootBlob /
  /// LoadRoot overloads) never take the store's metadata lock.
  class EpochPin {
   public:
    EpochPin() = default;
    EpochPin(EpochPin&& o) noexcept { *this = std::move(o); }
    EpochPin& operator=(EpochPin&& o) noexcept {
      if (this != &o) {
        Release();
        state_ = std::move(o.state_);
        snapshot_ = std::move(o.snapshot_);
      }
      return *this;
    }
    EpochPin(const EpochPin&) = delete;
    EpochPin& operator=(const EpochPin&) = delete;
    ~EpochPin() { Release(); }

    explicit operator bool() const { return snapshot_ != nullptr; }
    std::uint64_t epoch() const { return snapshot_->epoch; }
    const std::vector<VersionedRoot>& roots() const {
      return snapshot_->roots;
    }
    std::size_t NumRoots() const { return snapshot_->roots.size(); }

    /// Early release; the pin becomes empty. Dropping the last pin on
    /// an epoch drains any page runs whose reclamation it deferred.
    void Release();

   private:
    friend class VersionedSpillStore;
    EpochPin(std::shared_ptr<SharedState> state,
             std::shared_ptr<const EpochSnapshot> snapshot)
        : state_(std::move(state)), snapshot_(std::move(snapshot)) {}

    std::shared_ptr<SharedState> state_;
    std::shared_ptr<const EpochSnapshot> snapshot_;
  };

  /// Creates an empty store at `path` (truncating) and commits epoch 0.
  static Result<VersionedSpillStore> Create(const std::string& path,
                                            Options options);
  static Result<VersionedSpillStore> Create(const std::string& path);

  /// Opens and recovers a store: picks the newest intact root record,
  /// verifies and (by default) validates every root value, reclaims
  /// orphans, and heals phantom pages. After a crash at *any* point of
  /// a previous commit, this lands on the old or the new committed
  /// state — never a blend, never corrupt bytes.
  static Result<VersionedSpillStore> Open(const std::string& path,
                                          Options options);
  static Result<VersionedSpillStore> Open(const std::string& path);

  VersionedSpillStore(VersionedSpillStore&&) = default;
  VersionedSpillStore& operator=(VersionedSpillStore&&) = default;

  // -- staging (shadow writes; invisible until Commit) -----------------------

  /// Appends a new root holding `blob`; returns its root index.
  Result<std::size_t> StageBlob(std::string_view blob, SpillValueType type);

  /// Replaces root `root_index` with `blob`. The old version's pages
  /// stay untouched until the commit that abandons them succeeds.
  Status RestageBlob(std::size_t root_index, std::string_view blob,
                     SpillValueType type);

  /// Typed flavors: serialize `value` and stage it under its type tag.
  template <typename M>
  Result<std::size_t> StageValue(const M& value) {
    Result<FlatValue> flat = spill_internal::EncodeToFlat(value);
    if (!flat.ok()) return flat.status();
    return StageBlob(SerializeFlat(*flat), SpillTypeOf<M>::value);
  }
  template <typename M>
  Status RestageValue(std::size_t root_index, const M& value) {
    Result<FlatValue> flat = spill_internal::EncodeToFlat(value);
    if (!flat.ok()) return flat.status();
    return RestageBlob(root_index, SerializeFlat(*flat),
                       SpillTypeOf<M>::value);
  }

  /// Makes every staged change durable and atomically switches to the
  /// next epoch. On failure the previous epoch remains the committed
  /// state (and is what a subsequent Open recovers). Readers pinned on
  /// older epochs are unaffected: the page runs this commit replaces
  /// are parked until their pins drain.
  Status Commit();

  // -- reading committed state -----------------------------------------------

  /// The current committed epoch. Safe to read from any thread, even
  /// while a writer commits (it reads the published snapshot).
  std::uint64_t epoch() const;
  std::size_t NumRoots() const { return committed_.size(); }
  const std::vector<VersionedRoot>& roots() const { return committed_; }

  /// Pins the current committed epoch. Safe to call from any thread;
  /// the returned pin's reads run concurrently with a committing
  /// writer.
  EpochPin PinEpoch();

  /// The committed bytes of root `i`, CRC-verified, with transient read
  /// errors retried under the store's RetryPolicy. The non-pinned
  /// overload reads the writer's current epoch and must not race a
  /// concurrent Commit; the pinned overload is lock-free against one.
  Result<std::string> ReadRootBlob(std::size_t i);
  Result<std::string> ReadRootBlob(const EpochPin& pin, std::size_t i);

  /// Decodes root `i` as `M` (the stored tag must match).
  template <typename M>
  Result<M> LoadRoot(std::size_t i) {
    if (i >= committed_.size()) {
      return Status::OutOfRange("root index out of range");
    }
    if (committed_[i].type != SpillTypeOf<M>::value) {
      return Status::InvalidArgument("root type tag mismatch");
    }
    Result<std::string> blob = ReadRootBlob(i);
    if (!blob.ok()) return blob.status();
    Result<FlatValue> flat = ParseFlat(*blob);
    if (!flat.ok()) return flat.status();
    return FlatCodec<M>::FromFlat(*flat);
  }
  template <typename M>
  Result<M> LoadRoot(const EpochPin& pin, std::size_t i) {
    if (!pin) return Status::InvalidArgument("empty epoch pin");
    if (i >= pin.roots().size()) {
      return Status::OutOfRange("root index out of range");
    }
    if (pin.roots()[i].type != SpillTypeOf<M>::value) {
      return Status::InvalidArgument("root type tag mismatch");
    }
    Result<std::string> blob = ReadRootBlob(pin, i);
    if (!blob.ok()) return blob.status();
    Result<FlatValue> flat = ParseFlat(*blob);
    if (!flat.ok()) return flat.status();
    return FlatCodec<M>::FromFlat(*flat);
  }

  // -- crash simulation / introspection --------------------------------------

  /// Drops every cached page *without* flushing — the in-memory half of
  /// "the process died here". The store must not be used afterwards
  /// except to be destroyed; reopen the file with Open() instead.
  Status Abandon();

  BufferPool* pool() { return pool_.get(); }
  PageDevice* device() { return device_.get(); }
  const RecoveryInfo& recovery_info() const { return info_; }
  std::size_t NumFreePages() const;
  std::size_t NumDevicePages() const { return device_->NumPages(); }
  /// Pages parked on the retired list, waiting for epoch pins to drain.
  std::size_t NumRetiredPages() const;
  /// Distinct epochs currently holding at least one pin.
  std::size_t NumPinnedEpochs() const;

  /// The zero-leak invariant: slots + pages reachable from the
  /// committed roots + free pages + retired (pin-deferred) pages
  /// account for every device page.
  Status VerifyAccounting() const;

 private:
  VersionedSpillStore() = default;

  /// Rebuilds the free list as every page not in {0,1}, not referenced
  /// by `committed_`, and not parked on the retired list. Caller holds
  /// state_->mu (or is single-threaded during Create/Open).
  void RecomputeFreeLocked();

  /// Moves retired runs whose pins have drained into the free list.
  static void DrainRetiredLocked(SharedState* s);

  /// Takes `n` consecutive pages from the free list, or grows the
  /// device. Removed from the free list immediately so a later stage in
  /// the same epoch cannot reuse them.
  Result<std::uint32_t> AllocateRun(std::uint32_t n);

  Result<SpillLocator> StageBlobPages(std::string_view blob);

  std::unique_ptr<PageDevice> device_;
  std::unique_ptr<BufferPool> pool_;
  Options options_;
  std::uint64_t epoch_ = 0;
  std::vector<VersionedRoot> committed_;
  std::vector<VersionedRoot> staged_;
  std::shared_ptr<SharedState> state_;
  RecoveryInfo info_;
  bool abandoned_ = false;
};

}  // namespace modb

#endif  // MODB_STORAGE_RECOVERY_H_
