#include "storage/buffer_pool.h"

#include <cstring>
#include <limits>
#include <mutex>
#include <utility>

#include "obs/metrics.h"

namespace modb {

namespace {
std::size_t FloorPow2(std::size_t n) {
  std::size_t p = 1;
  while (p * 2 <= n) p *= 2;
  return p;
}

// Small pools stay single-sharded so eviction order is a global LRU;
// large pools split into up to 8 shards of >= 16 frames each.
std::size_t AutoShards(std::size_t capacity) {
  if (capacity < 32) return 1;
  return FloorPow2(std::min<std::size_t>(8, capacity / 16));
}
}  // namespace

BufferPool::PageRef& BufferPool::PageRef::operator=(PageRef&& o) noexcept {
  if (this != &o) {
    Release();
    pool_ = std::exchange(o.pool_, nullptr);
    frame_ = std::exchange(o.frame_, nullptr);
    data_ = std::exchange(o.data_, nullptr);
    page_ = o.page_;
    dirty_ = std::exchange(o.dirty_, false);
  }
  return *this;
}

void BufferPool::PageRef::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_, dirty_);
    pool_ = nullptr;
    frame_ = nullptr;
    data_ = nullptr;
    dirty_ = false;
  }
}

char* BufferPool::PageRef::mutable_data() {
  dirty_ = true;
  char* p = pool_->MutableData(frame_);
  data_ = p;
  return p;
}

BufferPool::BufferPool(PageDevice* device, std::size_t capacity)
    : BufferPool(device, capacity, AutoShards(capacity == 0 ? 1 : capacity)) {}

BufferPool::BufferPool(PageDevice* device, std::size_t capacity,
                       std::size_t shards)
    : device_(device), capacity_(capacity == 0 ? 1 : capacity) {
  shards_count_ = FloorPow2(
      std::max<std::size_t>(1, std::min(shards == 0 ? 1 : shards, capacity_)));
  std::uint32_t bits = 0;
  while ((std::size_t(1) << bits) < shards_count_) ++bits;
  shard_shift_ = 32 - bits;
  shards_ = std::make_unique<Shard[]>(shards_count_);
  const std::size_t base = capacity_ / shards_count_;
  const std::size_t rem = capacity_ % shards_count_;
  for (std::size_t i = 0; i < shards_count_; ++i) {
    Shard& s = shards_[i];
    s.num_frames = base + (i < rem ? 1 : 0);
    s.frames = std::make_unique<Frame[]>(s.num_frames);
    s.free_frames.reserve(s.num_frames);
    // Hand frames out in index order (pop_back): 0, 1, 2, ...
    for (std::size_t j = s.num_frames; j > 0; --j) {
      s.frames[j - 1].home = &s;
      s.free_frames.push_back(&s.frames[j - 1]);
    }
  }
}

BufferPool::~BufferPool() { FlushAll().ok(); }

BufferPool::Shard& BufferPool::ShardFor(std::uint32_t page) const {
  if (shards_count_ == 1) return shards_[0];
  // Fibonacci-style multiplicative hash; the upper bits decorrelate the
  // sequential page ids spill extents produce.
  const std::uint32_t h = page * 2654435761u;
  return shards_[h >> shard_shift_];
}

Result<BufferPool::PageRef> BufferPool::Pin(std::uint32_t page) {
  Shard& s = ShardFor(page);
  {
    // Fast path: a resident page needs only the shared lock and an
    // atomic pin bump, so concurrent pins of hot pages never serialize.
    std::shared_lock<std::shared_mutex> lock(s.mu, std::try_to_lock);
    if (!lock.owns_lock()) {
      MODB_COUNTER_INC("storage.buffer_pool.shard_conflicts");
      lock.lock();
    }
    auto it = s.table.find(page);
    if (it != s.table.end()) {
      Frame* f = it->second;
      f->pins.fetch_add(1, std::memory_order_acq_rel);
      f->lru_tick.store(s.tick.fetch_add(1, std::memory_order_relaxed) + 1,
                        std::memory_order_relaxed);
      s.hits.fetch_add(1, std::memory_order_relaxed);
      MODB_COUNTER_INC("storage.buffer_pool.hits");
      return PageRef(this, f, f->bytes(), page);
    }
  }

  std::unique_lock<std::shared_mutex> lock(s.mu, std::try_to_lock);
  if (!lock.owns_lock()) {
    MODB_COUNTER_INC("storage.buffer_pool.shard_conflicts");
    lock.lock();
  }
  // Another thread may have faulted the page in while we dropped the
  // shared lock.
  auto it = s.table.find(page);
  if (it != s.table.end()) {
    Frame* f = it->second;
    f->pins.fetch_add(1, std::memory_order_acq_rel);
    f->lru_tick.store(s.tick.fetch_add(1, std::memory_order_relaxed) + 1,
                      std::memory_order_relaxed);
    s.hits.fetch_add(1, std::memory_order_relaxed);
    MODB_COUNTER_INC("storage.buffer_pool.hits");
    return PageRef(this, f, f->bytes(), page);
  }
  s.misses.fetch_add(1, std::memory_order_relaxed);
  MODB_COUNTER_INC("storage.buffer_pool.misses");

  Frame* f = nullptr;
  if (!s.free_frames.empty()) {
    f = s.free_frames.back();
    s.free_frames.pop_back();
  } else {
    // Evict the least-recently-used unpinned frame of this shard.
    std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
    for (std::size_t i = 0; i < s.num_frames; ++i) {
      Frame& c = s.frames[i];
      if (c.resident && c.pins.load(std::memory_order_acquire) == 0 &&
          c.lru_tick.load(std::memory_order_relaxed) < best) {
        best = c.lru_tick.load(std::memory_order_relaxed);
        f = &c;
      }
    }
    if (f == nullptr) {
      MODB_COUNTER_INC("storage.buffer_pool.pin_exhausted");
      return Status::FailedPrecondition(
          "buffer pool exhausted: every frame is pinned");
    }
    if (f->dirty.load(std::memory_order_acquire)) {
      Status wb = WritebackLocked(&s, f);
      if (!wb.ok()) {
        // The dirty victim stays resident — failing the pin must not
        // lose its unwritten bytes.
        s.write_errors.fetch_add(1, std::memory_order_relaxed);
        return wb;
      }
    }
    s.table.erase(f->page);
    f->resident = false;
    f->owned.reset();
    f->mapped.store(nullptr, std::memory_order_relaxed);
    s.evictions.fetch_add(1, std::memory_order_relaxed);
    MODB_COUNTER_INC("storage.buffer_pool.evictions");
  }

  // Zero-copy devices serve the page as a pointer into their own
  // storage; copying devices get a private frame buffer filled by
  // ReadPage.
  Result<const char*> mapped = device_->MappedPage(page);
  if (!mapped.ok()) {
    s.read_errors.fetch_add(1, std::memory_order_relaxed);
    s.free_frames.push_back(f);
    return mapped.status();
  }
  if (*mapped != nullptr) {
    f->mapped.store(*mapped, std::memory_order_relaxed);
    f->owned.reset();
  } else {
    if (!f->owned) f->owned = std::make_unique<char[]>(kPageSize);
    f->mapped.store(nullptr, std::memory_order_relaxed);
    Status read = device_->ReadPage(page, f->owned.get());
    if (!read.ok()) {
      s.read_errors.fetch_add(1, std::memory_order_relaxed);
      s.free_frames.push_back(f);
      return read;
    }
  }
  f->page = page;
  f->pins.store(1, std::memory_order_relaxed);
  f->dirty.store(false, std::memory_order_relaxed);
  f->resident = true;
  f->lru_tick.store(s.tick.fetch_add(1, std::memory_order_relaxed) + 1,
                    std::memory_order_relaxed);
  s.table.emplace(page, f);
  MODB_HISTOGRAM_RECORD("storage.buffer_pool.shard_occupancy",
                        s.table.size());
  return PageRef(this, f, f->bytes(), page);
}

void BufferPool::Unpin(Frame* f, bool dirty) {
  // Lock-free: the dirty bit is published before the pin drops, so an
  // evictor that observes pins == 0 under the exclusive lock also sees
  // the dirty bit.
  if (dirty) f->dirty.store(true, std::memory_order_release);
  Shard* s = f->home;
  const std::uint64_t tick =
      s->tick.fetch_add(1, std::memory_order_relaxed) + 1;
  f->lru_tick.store(tick, std::memory_order_relaxed);
  f->pins.fetch_sub(1, std::memory_order_acq_rel);
}

char* BufferPool::MutableData(Frame* f) {
  // Copy-in frames own their buffer from the moment they were loaded
  // (published by the table insert under the exclusive lock), and a
  // mapped frame whose upgrade completed published `owned` before
  // clearing `mapped` — either way a null `mapped` means `owned` is
  // safe to hand out with no lock.
  if (f->mapped.load(std::memory_order_acquire) == nullptr) {
    return f->owned.get();
  }
  // Copy-on-write upgrade of a device-mapped frame: scribbles must live
  // in pool memory only, so DiscardAll can really discard them and
  // snapshot readers of the mapped bytes keep the committed state.
  Shard& s = *f->home;
  std::unique_lock<std::shared_mutex> lock(s.mu);
  const char* mapped = f->mapped.load(std::memory_order_relaxed);
  if (mapped != nullptr) {
    auto copy = std::make_unique<char[]>(kPageSize);
    std::memcpy(copy.get(), mapped, kPageSize);
    f->owned = std::move(copy);
    f->mapped.store(nullptr, std::memory_order_release);
  }
  return f->owned.get();
}

Status BufferPool::WritebackLocked(Shard* s, Frame* f) {
  if (f->owned) {
    Status st = device_->WritePage(f->page, f->owned.get());
    if (!st.ok()) return st;
    s->writebacks.fetch_add(1, std::memory_order_relaxed);
    MODB_COUNTER_INC("storage.buffer_pool.writebacks");
  }
  // A mapped frame with no private copy has nothing to write: its bytes
  // already live in the device's storage.
  f->dirty.store(false, std::memory_order_relaxed);
  return Status::OK();
}

Status BufferPool::FlushAll() {
  for (std::size_t i = 0; i < shards_count_; ++i) {
    Shard& s = shards_[i];
    std::unique_lock<std::shared_mutex> lock(s.mu);
    for (std::size_t j = 0; j < s.num_frames; ++j) {
      Frame& f = s.frames[j];
      if (f.resident && f.dirty.load(std::memory_order_acquire)) {
        Status st = WritebackLocked(&s, &f);
        if (!st.ok()) {
          s.write_errors.fetch_add(1, std::memory_order_relaxed);
          return st;
        }
      }
    }
  }
  // The durability barrier: written pages must survive a crash before
  // the caller (e.g. the two-phase commit) proceeds.
  return device_->Sync();
}

Status BufferPool::DropAll() {
  std::vector<std::unique_lock<std::shared_mutex>> locks;
  locks.reserve(shards_count_);
  for (std::size_t i = 0; i < shards_count_; ++i) {
    locks.emplace_back(shards_[i].mu);
  }
  for (std::size_t i = 0; i < shards_count_; ++i) {
    Shard& s = shards_[i];
    for (std::size_t j = 0; j < s.num_frames; ++j) {
      const Frame& f = s.frames[j];
      if (f.resident && f.pins.load(std::memory_order_acquire) > 0) {
        return Status::FailedPrecondition("cannot drop: pages are pinned");
      }
    }
  }
  for (std::size_t i = 0; i < shards_count_; ++i) {
    Shard& s = shards_[i];
    for (std::size_t j = 0; j < s.num_frames; ++j) {
      Frame& f = s.frames[j];
      if (!f.resident) continue;
      if (f.dirty.load(std::memory_order_acquire)) {
        Status st = WritebackLocked(&s, &f);
        if (!st.ok()) {
          s.write_errors.fetch_add(1, std::memory_order_relaxed);
          return st;
        }
      }
      s.table.erase(f.page);
      f.resident = false;
      f.owned.reset();
      f.mapped.store(nullptr, std::memory_order_relaxed);
      s.evictions.fetch_add(1, std::memory_order_relaxed);
      MODB_COUNTER_INC("storage.buffer_pool.evictions");
      s.free_frames.push_back(&f);
    }
  }
  Status sync = device_->Sync();
  if (!sync.ok()) return sync;
  return Status::OK();
}

Status BufferPool::DiscardAll() {
  std::vector<std::unique_lock<std::shared_mutex>> locks;
  locks.reserve(shards_count_);
  for (std::size_t i = 0; i < shards_count_; ++i) {
    locks.emplace_back(shards_[i].mu);
  }
  for (std::size_t i = 0; i < shards_count_; ++i) {
    Shard& s = shards_[i];
    for (std::size_t j = 0; j < s.num_frames; ++j) {
      const Frame& f = s.frames[j];
      if (f.resident && f.pins.load(std::memory_order_acquire) > 0) {
        return Status::FailedPrecondition("cannot discard: pages are pinned");
      }
    }
  }
  for (std::size_t i = 0; i < shards_count_; ++i) {
    Shard& s = shards_[i];
    for (std::size_t j = 0; j < s.num_frames; ++j) {
      Frame& f = s.frames[j];
      if (!f.resident) continue;
      s.table.erase(f.page);
      f.resident = false;
      f.dirty.store(false, std::memory_order_relaxed);
      f.owned.reset();
      f.mapped.store(nullptr, std::memory_order_relaxed);
      s.evictions.fetch_add(1, std::memory_order_relaxed);
      MODB_COUNTER_INC("storage.buffer_pool.evictions");
      s.free_frames.push_back(&f);
    }
  }
  return Status::OK();
}

bool BufferPool::IsResident(std::uint32_t page) const {
  Shard& s = ShardFor(page);
  std::shared_lock<std::shared_mutex> lock(s.mu);
  return s.table.count(page) != 0;
}

std::size_t BufferPool::NumResident() const {
  std::size_t n = 0;
  for (std::size_t i = 0; i < shards_count_; ++i) {
    Shard& s = shards_[i];
    std::shared_lock<std::shared_mutex> lock(s.mu);
    n += s.table.size();
  }
  return n;
}

std::size_t BufferPool::NumPinned() const {
  std::size_t n = 0;
  for (std::size_t i = 0; i < shards_count_; ++i) {
    Shard& s = shards_[i];
    std::shared_lock<std::shared_mutex> lock(s.mu);
    for (std::size_t j = 0; j < s.num_frames; ++j) {
      const Frame& f = s.frames[j];
      if (f.resident && f.pins.load(std::memory_order_acquire) > 0) ++n;
    }
  }
  return n;
}

BufferPoolStats BufferPool::stats() const {
  BufferPoolStats out;
  for (std::size_t i = 0; i < shards_count_; ++i) {
    const Shard& s = shards_[i];
    out.hits += s.hits.load(std::memory_order_relaxed);
    out.misses += s.misses.load(std::memory_order_relaxed);
    out.evictions += s.evictions.load(std::memory_order_relaxed);
    out.writebacks += s.writebacks.load(std::memory_order_relaxed);
    out.read_errors += s.read_errors.load(std::memory_order_relaxed);
    out.write_errors += s.write_errors.load(std::memory_order_relaxed);
  }
  return out;
}

}  // namespace modb
