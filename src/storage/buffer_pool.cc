#include "storage/buffer_pool.h"

#include <limits>
#include <utility>

#include "obs/metrics.h"

namespace modb {

BufferPool::PageRef& BufferPool::PageRef::operator=(PageRef&& o) noexcept {
  if (this != &o) {
    Release();
    pool_ = std::exchange(o.pool_, nullptr);
    frame_ = o.frame_;
    data_ = std::exchange(o.data_, nullptr);
    page_ = o.page_;
    dirty_ = std::exchange(o.dirty_, false);
  }
  return *this;
}

void BufferPool::PageRef::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_, dirty_);
    pool_ = nullptr;
    data_ = nullptr;
    dirty_ = false;
  }
}

BufferPool::BufferPool(PageDevice* device, std::size_t capacity)
    : device_(device), capacity_(capacity == 0 ? 1 : capacity) {
  frames_.resize(capacity_);
  free_.reserve(capacity_);
  // Hand frames out in index order (pop_back): 0, 1, 2, ...
  for (std::size_t i = capacity_; i > 0; --i) free_.push_back(i - 1);
}

BufferPool::~BufferPool() { FlushAll().ok(); }

Result<BufferPool::PageRef> BufferPool::Pin(std::uint32_t page) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = table_.find(page);
  if (it != table_.end()) {
    Frame& f = frames_[it->second];
    ++f.pins;
    f.lru_tick = ++tick_;
    ++stats_.hits;
    MODB_COUNTER_INC("storage.buffer_pool.hits");
    return PageRef(this, it->second, f.data.get(), page);
  }
  ++stats_.misses;
  MODB_COUNTER_INC("storage.buffer_pool.misses");

  std::size_t victim;
  if (!free_.empty()) {
    victim = free_.back();
    free_.pop_back();
  } else {
    // Evict the least-recently-used unpinned frame.
    victim = capacity_;
    std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
    for (std::size_t i = 0; i < capacity_; ++i) {
      const Frame& f = frames_[i];
      if (f.resident && f.pins == 0 && f.lru_tick < best) {
        best = f.lru_tick;
        victim = i;
      }
    }
    if (victim == capacity_) {
      MODB_COUNTER_INC("storage.buffer_pool.pin_exhausted");
      return Status::FailedPrecondition(
          "buffer pool exhausted: every frame is pinned");
    }
    Frame& v = frames_[victim];
    if (v.dirty) {
      Status wb = WritebackLocked(&v);
      if (!wb.ok()) {
        // The dirty victim stays resident — failing the pin must not
        // lose its unwritten bytes.
        ++stats_.write_errors;
        return wb;
      }
    }
    table_.erase(v.page);
    v.resident = false;
    ++stats_.evictions;
    MODB_COUNTER_INC("storage.buffer_pool.evictions");
  }

  Frame& f = frames_[victim];
  if (!f.data) f.data = std::make_unique<char[]>(kPageSize);
  Status read = device_->ReadPage(page, f.data.get());
  if (!read.ok()) {
    ++stats_.read_errors;
    free_.push_back(victim);
    return read;
  }
  f.page = page;
  f.pins = 1;
  f.dirty = false;
  f.resident = true;
  f.lru_tick = ++tick_;
  table_.emplace(page, victim);
  return PageRef(this, victim, f.data.get(), page);
}

void BufferPool::Unpin(std::size_t frame, bool dirty) {
  std::lock_guard<std::mutex> lock(mu_);
  Frame& f = frames_[frame];
  f.dirty = f.dirty || dirty;
  if (f.pins > 0) --f.pins;
  if (f.pins == 0) f.lru_tick = ++tick_;
}

Status BufferPool::WritebackLocked(Frame* f) {
  Status s = device_->WritePage(f->page, f->data.get());
  if (!s.ok()) return s;
  f->dirty = false;
  ++stats_.writebacks;
  MODB_COUNTER_INC("storage.buffer_pool.writebacks");
  return Status::OK();
}

Status BufferPool::FlushAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Frame& f : frames_) {
    if (f.resident && f.dirty) {
      Status s = WritebackLocked(&f);
      if (!s.ok()) {
        ++stats_.write_errors;
        return s;
      }
    }
  }
  return Status::OK();
}

Status BufferPool::DropAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Frame& f : frames_) {
    if (f.resident && f.pins > 0) {
      return Status::FailedPrecondition("cannot drop: pages are pinned");
    }
  }
  for (std::size_t i = 0; i < capacity_; ++i) {
    Frame& f = frames_[i];
    if (!f.resident) continue;
    if (f.dirty) {
      Status s = WritebackLocked(&f);
      if (!s.ok()) {
        ++stats_.write_errors;
        return s;
      }
    }
    table_.erase(f.page);
    f.resident = false;
    ++stats_.evictions;
    MODB_COUNTER_INC("storage.buffer_pool.evictions");
    free_.push_back(i);
  }
  return Status::OK();
}

Status BufferPool::DiscardAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Frame& f : frames_) {
    if (f.resident && f.pins > 0) {
      return Status::FailedPrecondition("cannot discard: pages are pinned");
    }
  }
  for (std::size_t i = 0; i < capacity_; ++i) {
    Frame& f = frames_[i];
    if (!f.resident) continue;
    table_.erase(f.page);
    f.resident = false;
    f.dirty = false;
    ++stats_.evictions;
    MODB_COUNTER_INC("storage.buffer_pool.evictions");
    free_.push_back(i);
  }
  return Status::OK();
}

std::size_t BufferPool::NumDevicePages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return device_->NumPages();
}

bool BufferPool::IsResident(std::uint32_t page) const {
  std::lock_guard<std::mutex> lock(mu_);
  return table_.count(page) != 0;
}

std::size_t BufferPool::NumResident() const {
  std::lock_guard<std::mutex> lock(mu_);
  return table_.size();
}

std::size_t BufferPool::NumPinned() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const Frame& f : frames_) {
    if (f.resident && f.pins > 0) ++n;
  }
  return n;
}

BufferPoolStats BufferPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace modb
