// intime(α) of Sections 2/3.2.3: a pair of a time instant and a value,
// e.g. the result of the initial/final/atinstant operations.

#ifndef MODB_CORE_INTIME_H_
#define MODB_CORE_INTIME_H_

#include <utility>

#include "core/instant.h"

namespace modb {

/// A value of type intime(α): (instant, value). The `defined` flag models
/// the undefined result of projecting an empty moving value.
template <typename T>
struct Intime {
  Instant instant = 0;
  T value{};
  bool defined = false;

  Intime() = default;
  Intime(Instant t, T v) : instant(t), value(std::move(v)), defined(true) {}

  static Intime Undefined() { return Intime(); }

  /// The `val` operation of Section 2 (projection onto the value).
  const T& val() const { return value; }
  /// The `inst` operation (projection onto the instant).
  Instant inst() const { return instant; }
};

}  // namespace modb

#endif  // MODB_CORE_INTIME_H_
