// The TIME kind of the discrete model (Table 2): type `instant`.
//
// The paper defines Instant = real (Section 3.2.1); we use double. The
// undefined value required by the abstract model is provided by wrapping
// in BaseValue<Instant> (core/base_types.h) where needed; the raw Instant
// is used inside intervals and units, which never hold undefined instants.

#ifndef MODB_CORE_INSTANT_H_
#define MODB_CORE_INSTANT_H_

namespace modb {

/// A point on the (continuous, totally ordered) time axis.
using Instant = double;

}  // namespace modb

#endif  // MODB_CORE_INSTANT_H_
