#include "core/base_types.h"

namespace modb {

bool FitsFlatString(const std::string& s) {
  return s.size() <= kMaxStringLength;
}

}  // namespace modb
