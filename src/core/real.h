// Numeric policy for the MODB library.
//
// The paper's discrete model is defined over the programming-language type
// `real`; we use IEEE double. All tolerance decisions are concentrated here
// so that the epsilon policy is auditable in one place.

#ifndef MODB_CORE_REAL_H_
#define MODB_CORE_REAL_H_

#include <cmath>
#include <limits>

namespace modb {

/// Absolute tolerance used by geometric and temporal comparisons.
/// Coordinates and instants in this library are expected to be "human
/// scale" (|v| < 1e9), for which 1e-9 absolute tolerance is conservative.
inline constexpr double kEpsilon = 1e-9;

/// True iff |a - b| <= eps.
inline bool ApproxEq(double a, double b, double eps = kEpsilon) {
  return std::fabs(a - b) <= eps;
}

/// True iff a < b - eps (strictly less under tolerance).
inline bool DefinitelyLess(double a, double b, double eps = kEpsilon) {
  return a < b - eps;
}

/// True iff a > b + eps (strictly greater under tolerance).
inline bool DefinitelyGreater(double a, double b, double eps = kEpsilon) {
  return a > b + eps;
}

/// True iff a <= b + eps.
inline bool ApproxLe(double a, double b, double eps = kEpsilon) {
  return a <= b + eps;
}

/// True iff a >= b - eps.
inline bool ApproxGe(double a, double b, double eps = kEpsilon) {
  return a >= b - eps;
}

/// Clamps values within eps of zero to exactly zero. Used to stabilize
/// polynomial coefficients derived from differences of coordinates.
inline double SnapZero(double v, double eps = kEpsilon) {
  return std::fabs(v) <= eps ? 0.0 : v;
}

inline constexpr double kInfinity = std::numeric_limits<double>::infinity();

}  // namespace modb

#endif  // MODB_CORE_REAL_H_
