// The BASE kind of the discrete model (Section 3.2.1).
//
// Carrier sets are D_int = int ∪ {⊥}, D_real = real ∪ {⊥},
// D_string = string ∪ {⊥}, D_bool = bool ∪ {⊥}: ordinary programming
// language types extended with an explicit undefined value. BaseValue<T>
// models exactly that extension.

#ifndef MODB_CORE_BASE_TYPES_H_
#define MODB_CORE_BASE_TYPES_H_

#include <cassert>
#include <compare>
#include <cstdint>
#include <ostream>
#include <string>
#include <utility>

namespace modb {

/// A value of a base type: either a defined T or the undefined value ⊥.
///
/// Comparison semantics: undefined values compare equal to each other and
/// less than every defined value, giving the total order needed by
/// range(α) and by the canonical set representations of Section 4.
template <typename T>
class BaseValue {
 public:
  /// Constructs the undefined value ⊥.
  BaseValue() : defined_(false), value_() {}
  /// Constructs a defined value.
  BaseValue(T value) : defined_(true), value_(std::move(value)) {}  // NOLINT

  static BaseValue Undefined() { return BaseValue(); }

  bool defined() const { return defined_; }

  /// Requires defined().
  const T& value() const {
    assert(defined_);
    return value_;
  }

  /// Returns the contained value, or `fallback` when undefined.
  T value_or(T fallback) const { return defined_ ? value_ : fallback; }

  friend bool operator==(const BaseValue& a, const BaseValue& b) {
    if (a.defined_ != b.defined_) return false;
    return !a.defined_ || a.value_ == b.value_;
  }

  friend bool operator<(const BaseValue& a, const BaseValue& b) {
    if (a.defined_ != b.defined_) return !a.defined_;
    return a.defined_ && a.value_ < b.value_;
  }

 private:
  bool defined_;
  T value_;
};

template <typename T>
std::ostream& operator<<(std::ostream& os, const BaseValue<T>& v) {
  if (!v.defined()) return os << "undefined";
  return os << v.value();
}

/// D_int: 64-bit integers plus ⊥.
using IntValue = BaseValue<int64_t>;
/// D_real: doubles plus ⊥.
using RealValue = BaseValue<double>;
/// D_bool: booleans plus ⊥.
using BoolValue = BaseValue<bool>;
/// D_string: strings plus ⊥. The flat storage layer (Section 4.1 footnote:
/// "fixed length array of characters") caps strings at kMaxStringLength.
using StringValue = BaseValue<std::string>;

/// Maximum string length accepted by the flat attribute representation,
/// mirroring SECONDO's fixed-length string attribute.
inline constexpr std::size_t kMaxStringLength = 48;

/// True iff `s` fits the flat fixed-length string representation.
bool FitsFlatString(const std::string& s);

}  // namespace modb

#endif  // MODB_CORE_BASE_TYPES_H_
