#include "core/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace modb {
namespace simd {

namespace {

bool DetectAvx2() {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

// Environment preference, read once. kAuto when MODB_SIMD is unset or
// unrecognized.
Mode EnvMode() {
  const char* env = std::getenv("MODB_SIMD");
  if (env == nullptr) return Mode::kAuto;
  if (std::strcmp(env, "scalar") == 0 || std::strcmp(env, "off") == 0) {
    return Mode::kScalar;
  }
  if (std::strcmp(env, "avx2") == 0) return Mode::kAvx2;
  return Mode::kAuto;
}

std::atomic<Mode> g_forced{Mode::kAuto};

}  // namespace

void SetSimdMode(Mode mode) {
  g_forced.store(mode, std::memory_order_relaxed);
}

Mode GetSimdMode() { return g_forced.load(std::memory_order_relaxed); }

bool CpuHasAvx2() {
  static const bool has = DetectAvx2();
  return has;
}

bool UseAvx2() {
  Mode mode = g_forced.load(std::memory_order_relaxed);
  if (mode == Mode::kAuto) {
    static const Mode env = EnvMode();
    mode = env;
  }
  if (mode == Mode::kScalar) return false;
  return CpuHasAvx2();  // kAvx2 and kAuto both require hardware support.
}

}  // namespace simd
}  // namespace modb
