// range(α) of Section 3.2.3: finite sets of pairwise disjoint,
// non-adjacent intervals over an ordered domain, in canonical (unique and
// minimal) representation.
//
// The data structure follows Section 4.1: an ordered array of interval
// records. Canonicalization merges overlapping/adjacent inputs so that the
// IntervalSet conditions hold by construction.

#ifndef MODB_CORE_RANGE_SET_H_
#define MODB_CORE_RANGE_SET_H_

#include <algorithm>
#include <cstddef>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/instant.h"
#include "core/interval.h"

namespace modb {

/// A value of type range(α): canonical ordered set of disjoint,
/// non-adjacent intervals.
template <typename T>
class RangeSet {
 public:
  /// The empty range value.
  RangeSet() = default;

  /// Builds a canonical range set from arbitrary intervals: overlapping or
  /// adjacent inputs are merged. Never fails (canonicalization repairs all
  /// violations of the IntervalSet conditions).
  static RangeSet FromIntervals(std::vector<Interval<T>> intervals) {
    std::sort(intervals.begin(), intervals.end());
    std::vector<Interval<T>> merged;
    for (const Interval<T>& iv : intervals) {
      if (!merged.empty() && (!Interval<T>::Disjoint(merged.back(), iv) ||
                              Interval<T>::Adjacent(merged.back(), iv))) {
        merged.back() = Interval<T>::Merge(merged.back(), iv);
      } else {
        merged.push_back(iv);
      }
    }
    return RangeSet(std::move(merged));
  }

  /// Single-interval range.
  static RangeSet Of(const Interval<T>& iv) { return FromIntervals({iv}); }

  /// Adopts `sorted_disjoint` verbatim, skipping canonicalization — for
  /// storage paths replaying intervals that were canonical when written.
  /// The IntervalSet conditions become the caller's obligation; pair
  /// with validate::ValidateRangeSet when the source is untrusted.
  static RangeSet MakeTrusted(std::vector<Interval<T>> sorted_disjoint) {
    return RangeSet(std::move(sorted_disjoint));
  }

  bool IsEmpty() const { return intervals_.empty(); }
  std::size_t NumIntervals() const { return intervals_.size(); }
  const std::vector<Interval<T>>& intervals() const { return intervals_; }
  const Interval<T>& interval(std::size_t i) const { return intervals_[i]; }

  /// Membership test; O(log n).
  bool Contains(const T& v) const {
    auto it = std::upper_bound(
        intervals_.begin(), intervals_.end(), v,
        [](const T& val, const Interval<T>& iv) { return val < iv.start(); });
    if (it == intervals_.begin()) return false;
    return std::prev(it)->Contains(v);
  }

  /// True iff every point of `iv` is in this range set.
  bool Covers(const Interval<T>& iv) const {
    for (const Interval<T>& mine : intervals_) {
      if (iv.IsContainedIn(mine)) return true;
    }
    return false;
  }

  /// Smallest value bound: the start of the first interval (undefined on
  /// empty ranges — caller must check IsEmpty()).
  const T& Minimum() const { return intervals_.front().start(); }
  /// Largest value bound: the end of the last interval.
  const T& Maximum() const { return intervals_.back().end(); }

  /// Set union.
  static RangeSet Union(const RangeSet& a, const RangeSet& b) {
    std::vector<Interval<T>> all = a.intervals_;
    all.insert(all.end(), b.intervals_.begin(), b.intervals_.end());
    return FromIntervals(std::move(all));
  }

  /// Set intersection.
  static RangeSet Intersection(const RangeSet& a, const RangeSet& b) {
    std::vector<Interval<T>> out;
    std::size_t i = 0, j = 0;
    while (i < a.intervals_.size() && j < b.intervals_.size()) {
      const Interval<T>& u = a.intervals_[i];
      const Interval<T>& v = b.intervals_[j];
      if (auto inter = Interval<T>::Intersect(u, v)) out.push_back(*inter);
      // Advance the interval that ends first.
      if (u.end() < v.end() || (u.end() == v.end() && !u.right_closed())) {
        ++i;
      } else {
        ++j;
      }
    }
    return RangeSet(std::move(out));
  }

  /// Set difference a \ b.
  static RangeSet Difference(const RangeSet& a, const RangeSet& b) {
    std::vector<Interval<T>> out;
    for (const Interval<T>& u : a.intervals_) {
      // Carve b's intervals out of u.
      T s = u.start();
      bool lc = u.left_closed();
      bool emitted_all = false;
      for (const Interval<T>& v : b.intervals_) {
        auto inter = Interval<T>::Intersect(u, v);
        if (!inter) continue;
        // Piece before the intersection: [s .. inter.start)
        if (s < inter->start() || (s == inter->start() && lc &&
                                   !inter->left_closed())) {
          bool piece_rc = !inter->left_closed();
          auto piece = Interval<T>::Make(s, inter->start(), lc, piece_rc);
          if (piece.ok()) out.push_back(*piece);
        }
        // Continue after the intersection.
        s = inter->end();
        lc = !inter->right_closed();
        if (inter->end() == u.end() &&
            (inter->right_closed() || !u.right_closed())) {
          emitted_all = true;
          break;
        }
      }
      if (!emitted_all) {
        auto piece = Interval<T>::Make(s, u.end(), lc, u.right_closed());
        if (piece.ok()) out.push_back(*piece);
      }
    }
    return FromIntervals(std::move(out));
  }

  friend bool operator==(const RangeSet& a, const RangeSet& b) {
    return a.intervals_ == b.intervals_;
  }

  std::string ToString() const {
    std::ostringstream os;
    os << "{";
    for (std::size_t i = 0; i < intervals_.size(); ++i) {
      if (i) os << ", ";
      os << intervals_[i].ToString();
    }
    os << "}";
    return os.str();
  }

 private:
  explicit RangeSet(std::vector<Interval<T>> sorted_disjoint)
      : intervals_(std::move(sorted_disjoint)) {}

  std::vector<Interval<T>> intervals_;
};

/// range(instant) — the set of time intervals a moving value is defined on
/// (result of the deftime operation).
using Periods = RangeSet<Instant>;
/// range(real) / range(int) — used by rangevalues on moving reals/ints.
using RealRange = RangeSet<double>;
using IntRange = RangeSet<int64_t>;

}  // namespace modb

#endif  // MODB_CORE_RANGE_SET_H_
