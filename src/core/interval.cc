#include "core/interval.h"

namespace modb {

// Interval<T> is header-only; explicit instantiations of the most common
// carriers keep the template code compiled (and warnings surfaced) even in
// translation units that never use them.
template class Interval<Instant>;
template class Interval<int64_t>;

}  // namespace modb
