// Runtime SIMD dispatch for the vectorized hot-path kernels (the flat
// R-tree hit-mask and the batch position-evaluation kernels). Every
// kernel has a scalar core that is the semantic reference; the AVX2
// specializations must produce byte-identical results (they use the
// same multiply-then-add rounding, never FMA contraction) and are
// selected at runtime so one binary runs correctly on any x86-64 and
// the two paths can be differentially tested against each other.
//
// Selection order:
//   1. SetSimdMode() (tests/benches force a path programmatically),
//   2. the MODB_SIMD environment variable ("scalar" | "avx2" | "auto"),
//   3. auto-detection via cpuid.
// Forcing "avx2" on a CPU without AVX2 falls back to scalar rather than
// faulting.

#ifndef MODB_CORE_SIMD_H_
#define MODB_CORE_SIMD_H_

namespace modb {
namespace simd {

enum class Mode {
  kAuto,    // use AVX2 when the CPU supports it
  kScalar,  // force the scalar reference kernels
  kAvx2,    // force AVX2 (ignored when the CPU lacks it)
};

/// Overrides the dispatch mode process-wide (kAuto restores env/cpuid
/// selection). Intended for tests and benchmarks; not thread-safe
/// against concurrent kernel launches, so flip it only between runs.
void SetSimdMode(Mode mode);

/// The mode currently forced via SetSimdMode (kAuto when none).
Mode GetSimdMode();

/// True when the dispatched kernels will take the AVX2 path right now:
/// the CPU supports AVX2 and neither SetSimdMode(kScalar) nor
/// MODB_SIMD=scalar is in effect.
bool UseAvx2();

/// True when this build and CPU can run the AVX2 kernels at all.
bool CpuHasAvx2();

}  // namespace simd
}  // namespace modb

#endif  // MODB_CORE_SIMD_H_
