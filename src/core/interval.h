// Interval(S) of Section 3.2.3: half-open/closed intervals over a totally
// ordered carrier set, represented as (s, e, lc, rc).
//
// The paper's predicates r-disjoint / disjoint / r-adjacent / adjacent are
// implemented verbatim, including the discrete-domain clause of r-adjacent
// ("¬∃ w ∈ S : e_u < w < s_v"), which is decidable here for integral S.

#ifndef MODB_CORE_INTERVAL_H_
#define MODB_CORE_INTERVAL_H_

#include <algorithm>
#include <optional>
#include <ostream>
#include <sstream>
#include <string>
#include <type_traits>

#include "core/instant.h"
#include "core/status.h"

namespace modb {

/// An interval (s, e, lc, rc) over the ordered domain T.
///
/// Invariants (enforced by Make): s <= e, and s == e implies lc && rc
/// (a degenerate interval is a single closed point).
template <typename T>
class Interval {
 public:
  /// Validating factory.
  static Result<Interval> Make(T s, T e, bool lc, bool rc) {
    if (e < s) {
      return Status::InvalidArgument("interval end precedes start");
    }
    if (s == e && !(lc && rc)) {
      return Status::InvalidArgument(
          "degenerate interval must be closed on both sides");
    }
    return Interval(s, e, lc, rc);
  }

  /// Convenience factory for a closed interval [s, e]; requires s <= e.
  static Result<Interval> Closed(T s, T e) { return Make(s, e, true, true); }

  /// Convenience factory for the degenerate interval [v, v].
  static Interval At(T v) { return Interval(v, v, true, true); }

  const T& start() const { return start_; }
  const T& end() const { return end_; }
  bool left_closed() const { return left_closed_; }
  bool right_closed() const { return right_closed_; }

  bool IsDegenerate() const { return start_ == end_; }

  /// σ((s,e,lc,rc)) ∋ v — membership in the interval.
  bool Contains(const T& v) const {
    if (v < start_ || end_ < v) return false;
    if (v == start_ && !left_closed_) return false;
    if (v == end_ && !right_closed_) return false;
    return true;
  }

  /// σ'(i) ∋ v — membership in the open part of the interval.
  bool ContainsOpen(const T& v) const { return start_ < v && v < end_; }

  /// True iff this interval's point set is a subset of `other`'s.
  bool IsContainedIn(const Interval& other) const {
    if (start_ < other.start_) return false;
    if (start_ == other.start_ && left_closed_ && !other.left_closed_) {
      return false;
    }
    if (other.end_ < end_) return false;
    if (end_ == other.end_ && right_closed_ && !other.right_closed_) {
      return false;
    }
    return true;
  }

  /// r-disjoint(u, v) of the paper: u entirely before v.
  static bool RDisjoint(const Interval& u, const Interval& v) {
    return u.end_ < v.start_ ||
           (u.end_ == v.start_ && !(u.right_closed_ && v.left_closed_));
  }

  /// disjoint(u, v): no common point.
  static bool Disjoint(const Interval& u, const Interval& v) {
    return RDisjoint(u, v) || RDisjoint(v, u);
  }

  /// r-adjacent(u, v): disjoint and u immediately precedes v.
  static bool RAdjacent(const Interval& u, const Interval& v) {
    if (!Disjoint(u, v)) return false;
    if (u.end_ == v.start_ && (u.right_closed_ || v.left_closed_)) return true;
    // Discrete-domain clause: closed gap [e_u, s_v] with no domain value
    // strictly between. Only decidable (and only non-empty) for integral T.
    if constexpr (std::is_integral_v<T>) {
      if (u.end_ < v.start_ && u.right_closed_ && v.left_closed_ &&
          u.end_ + 1 == v.start_) {
        return true;
      }
    }
    return false;
  }

  /// adjacent(u, v): r-adjacent in either order.
  static bool Adjacent(const Interval& u, const Interval& v) {
    return RAdjacent(u, v) || RAdjacent(v, u);
  }

  /// Intersection of point sets; nullopt when disjoint.
  static std::optional<Interval> Intersect(const Interval& u,
                                           const Interval& v) {
    T s = std::max(u.start_, v.start_);
    T e = std::min(u.end_, v.end_);
    if (e < s) return std::nullopt;
    bool lc = (u.start_ == s ? u.left_closed_ : true) &&
              (v.start_ == s ? v.left_closed_ : true);
    bool rc = (u.end_ == e ? u.right_closed_ : true) &&
              (v.end_ == e ? v.right_closed_ : true);
    if (s == e && !(lc && rc)) return std::nullopt;
    return Interval(s, e, lc, rc);
  }

  /// Union of two intervals whose point sets overlap or are adjacent.
  /// Precondition: !Disjoint(u,v) || Adjacent(u,v).
  static Interval Merge(const Interval& u, const Interval& v) {
    T s;
    bool lc;
    if (u.start_ < v.start_) {
      s = u.start_;
      lc = u.left_closed_;
    } else if (v.start_ < u.start_) {
      s = v.start_;
      lc = v.left_closed_;
    } else {
      s = u.start_;
      lc = u.left_closed_ || v.left_closed_;
    }
    T e;
    bool rc;
    if (u.end_ > v.end_) {
      e = u.end_;
      rc = u.right_closed_;
    } else if (v.end_ > u.end_) {
      e = v.end_;
      rc = v.right_closed_;
    } else {
      e = u.end_;
      rc = u.right_closed_ || v.right_closed_;
    }
    return Interval(s, e, lc, rc);
  }

  friend bool operator==(const Interval& a, const Interval& b) {
    return a.start_ == b.start_ && a.end_ == b.end_ &&
           a.left_closed_ == b.left_closed_ &&
           a.right_closed_ == b.right_closed_;
  }

  /// Order by start point (then left-closedness, end, right-closedness).
  /// Total order on the canonical (pairwise disjoint) interval sets used
  /// throughout the library.
  friend bool operator<(const Interval& a, const Interval& b) {
    if (a.start_ != b.start_) return a.start_ < b.start_;
    if (a.left_closed_ != b.left_closed_) return a.left_closed_;
    if (a.end_ != b.end_) return a.end_ < b.end_;
    return b.right_closed_ && !a.right_closed_;
  }

  std::string ToString() const {
    std::ostringstream os;
    os << (left_closed_ ? '[' : '(') << start_ << ", " << end_
       << (right_closed_ ? ']' : ')');
    return os.str();
  }

 private:
  Interval(T s, T e, bool lc, bool rc)
      : start_(std::move(s)),
        end_(std::move(e)),
        left_closed_(lc),
        right_closed_(rc) {}

  T start_;
  T end_;
  bool left_closed_;
  bool right_closed_;
};

template <typename T>
std::ostream& operator<<(std::ostream& os, const Interval<T>& i) {
  return os << i.ToString();
}

/// The unit-interval type used by all temporal units (Section 3.2.4).
using TimeInterval = Interval<Instant>;

/// Duration of a time interval.
inline double Duration(const TimeInterval& i) { return i.end() - i.start(); }

}  // namespace modb

#endif  // MODB_CORE_INTERVAL_H_
