// Status and Result<T>: exception-free error handling for the MODB library.
//
// The library follows the Google C++ style rule of not using exceptions.
// Every fallible constructor is a static factory returning Result<T>, so
// invariant-carrying types (Line, Region, Mapping, units) can never exist
// in an invalid state.

#ifndef MODB_CORE_STATUS_H_
#define MODB_CORE_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace modb {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  // Unrecoverable loss or corruption of stored data (short device
  // read/write, torn page detected by checksum). Unlike kInternal —
  // which storage treats as transient and retryable — a DataLoss error
  // is permanent: retrying the same I/O cannot succeed.
  kDataLoss,
  // A bounded resource (the modbd query-thread budget, an admission
  // queue) is exhausted. Retryable by the caller after backoff; the
  // serving layer returns it as a typed overload rejection instead of
  // queueing without bound.
  kResourceExhausted,
};

/// Returns a stable human-readable name for a status code.
const char* StatusCodeName(StatusCode code);

/// A lightweight success/error value. Cheap to copy in the OK case.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Formats as "OK" or "<CODE>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Holds either a value of type T or an error Status.
///
/// Usage:
///   Result<Line> line = Line::Make(segments);
///   if (!line.ok()) return line.status();
///   Use(line.value());
template <typename T>
class Result {
 public:
  // Intentionally implicit so factories can `return value;` / `return status;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace modb

// Propagates a non-OK status from an expression producing a Status.
#define MODB_RETURN_IF_ERROR(expr)                  \
  do {                                              \
    ::modb::Status _modb_status = (expr);           \
    if (!_modb_status.ok()) return _modb_status;    \
  } while (0)

#endif  // MODB_CORE_STATUS_H_
