// LSM-style layering over the flattened SoA R-tree (index/rtree3d.h):
// RTree3D::BulkLoad is static, so a live relation cannot afford to
// rebuild the whole tree per ingest batch. Instead the index is kept as
// three layers queried as a union —
//
//   base   large immutable STR-bulk-loaded tree (all long-sealed units)
//   delta  small STR-tiled run over recently sealed units, rebuilt
//          cheaply at each seal event and periodically merged into base
//   mem    the unsealed tail units, a plain entry array scanned linearly
//          (bounded by objects x seal threshold, so a scan beats a tree)
//
// Correctness rests on a set-union argument, not on tree shape: the
// index-join probe collects candidate ids across layers, then sorts and
// deduplicates them (exec/pipeline.cc) before evaluating the exact
// predicate in ascending id order. Two indexes over the same entry set
// therefore produce byte-identical join output no matter how the
// entries are partitioned into layers — which is why a bulk-built
// single tree and an incrementally grown base+delta+mem stack are
// interchangeable, the property the differential tests pin down.
//
// Concurrency: a snapshot is mutated only under the owning Db's writer
// lock; queries run under the reader lock and see a frozen layer stack.
// Merges are prepared off-lock (PrepareMerge copies the entries, the
// caller bulk-loads without holding any lock) and applied under the
// writer lock only if no seal intervened (generation check) — the LSM
// background-merge protocol without ever blocking readers on a build.

#ifndef MODB_INDEX_DELTA_INDEX_H_
#define MODB_INDEX_DELTA_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "index/rtree3d.h"
#include "spatial/bbox.h"

namespace modb {

/// A borrowed, read-only view of the layer stack: what the exec engine
/// probes. Either tree pointer may be null (layer empty); `mem` is a
/// borrowed span. Everything pointed at must outlive the view — in the
/// serving path that is guaranteed by the Db reader lock.
struct IndexLayersView {
  const RTree3D* base = nullptr;
  const RTree3D* delta = nullptr;
  const RTree3D::Entry* mem = nullptr;
  std::size_t mem_count = 0;
  /// Union of the layer bounds; empty cube when all layers are empty.
  /// Callers prefilter probe cubes against it exactly as they would
  /// against a single tree's Bounds().
  Cube bounds;

  /// Wraps a single classic tree (the batch-built path) so one probe
  /// implementation serves both worlds.
  static IndexLayersView Single(const RTree3D* tree);

  /// Builds a view over an explicit layer stack, computing the bounds
  /// union.
  static IndexLayersView Over(const RTree3D* base, const RTree3D* delta,
                              const RTree3D::Entry* mem,
                              std::size_t mem_count);

  const Cube& Bounds() const { return bounds; }

  bool HasEntries() const {
    return (base != nullptr && base->NumEntries() > 0) ||
           (delta != nullptr && delta->NumEntries() > 0) || mem_count > 0;
  }

  /// Visits every entry id whose cube intersects `query`, across all
  /// layers. Ids may repeat across and within layers — callers dedupe,
  /// exactly as they already must for a single tree (one id per unit).
  template <typename Fn>
  void QueryVisit(const Cube& query, Fn&& fn) const {
    if (base != nullptr) base->QueryVisit(query, fn);
    if (delta != nullptr) delta->QueryVisit(query, fn);
    for (std::size_t i = 0; i < mem_count; ++i) {
      if (Cube::Intersect(mem[i].cube, query)) fn(mem[i].id);
    }
  }
};

/// A prepared base+delta compaction: the entry union to bulk-load and
/// the generation it was prepared against.
struct MergePlan {
  std::vector<RTree3D::Entry> entries;
  std::uint64_t generation = 0;
};

/// The owning layer stack of one live relation's moving-point index.
class IndexSnapshot {
 public:
  IndexSnapshot() = default;

  IndexLayersView View() const {
    return IndexLayersView::Over(&base_, &delta_, mem_.data(), mem_.size());
  }

  /// Replaces the mem layer (rebuilt from the unsealed tail units after
  /// every ingest batch).
  void SetMem(std::vector<RTree3D::Entry> mem) { mem_ = std::move(mem); }

  /// Appends newly sealed units to the delta run and re-tiles it (STR
  /// bulk load over the accumulated run — small by construction).
  void AppendToDelta(const std::vector<RTree3D::Entry>& sealed, int fanout);

  /// Snapshot of base+delta for an off-lock merge build; nullopt when
  /// the delta run is empty (nothing to compact).
  std::optional<MergePlan> PrepareMerge() const;

  /// Installs an off-lock-built merged tree. Returns false (and
  /// discards) when a seal advanced the generation since PrepareMerge —
  /// the merge must be re-prepared.
  bool ApplyMerge(const MergePlan& plan, RTree3D merged);

  /// Inline compaction under the writer lock (attached-store commit
  /// path and tests).
  void MergeInline(int fanout);

  /// Rebuilds base from scratch over `entries` and clears delta/mem
  /// (recovery: the reopened state is fully compacted).
  void ResetBase(std::vector<RTree3D::Entry> entries, int fanout);

  std::size_t MemEntries() const { return mem_.size(); }
  std::size_t DeltaEntries() const { return delta_entries_.size(); }
  std::size_t BaseEntries() const { return base_entries_.size(); }
  std::uint64_t generation() const { return generation_; }
  std::uint64_t merges() const { return merges_; }

 private:
  RTree3D base_;
  std::vector<RTree3D::Entry> base_entries_;
  RTree3D delta_;
  std::vector<RTree3D::Entry> delta_entries_;
  std::vector<RTree3D::Entry> mem_;
  /// Bumped by every delta/base mutation; guards ApplyMerge.
  std::uint64_t generation_ = 0;
  std::uint64_t merges_ = 0;
};

}  // namespace modb

#endif  // MODB_INDEX_DELTA_INDEX_H_
