// A 3D (x, y, t) R-tree over unit bounding cubes. Section 4.2 stores a
// bounding cube with every variable-size unit; this index puts those
// cubes to work for spatio-temporal joins (the ablation of
// bench_queries). Built by Sort-Tile-Recursive bulk loading.

#ifndef MODB_INDEX_RTREE3D_H_
#define MODB_INDEX_RTREE3D_H_

#include <cstdint>
#include <vector>

#include "spatial/bbox.h"

namespace modb {

class RTree3D {
 public:
  struct Entry {
    Cube cube;
    int64_t id = 0;
  };

  RTree3D() = default;

  /// Builds the tree from all entries at once (STR bulk load).
  static RTree3D BulkLoad(std::vector<Entry> entries, int fanout = 16);

  /// Ids of all entries whose cubes intersect the query cube.
  std::vector<int64_t> Query(const Cube& query) const;

  /// Visits intersecting entries without materializing the id vector.
  /// Traversal work (node visits, leaf entry tests/hits) is accumulated
  /// in locals and flushed to the obs metrics registry once per query —
  /// a no-op (and fully optimized out) under MODB_NO_METRICS.
  template <typename Fn>
  void QueryVisit(const Cube& query, Fn&& fn) const {
    if (nodes_.empty()) return;
    QueryCounters counters;
    VisitRec(int32_t(nodes_.size()) - 1, query, fn, &counters);
    counters.Flush();
  }

  std::size_t NumEntries() const { return num_entries_; }
  std::size_t NumNodes() const { return nodes_.size(); }
  int Height() const { return height_; }

 private:
  struct Node {
    Cube cube;
    bool leaf = true;
    // Leaf: indices into entries_. Internal: indices into nodes_.
    std::vector<int32_t> children;
  };

  // Per-query traversal tallies; Flush (rtree3d.cc) adds them to the
  // "index.rtree3d.*" counters and is empty under MODB_NO_METRICS.
  struct QueryCounters {
    std::uint64_t node_visits = 0;
    std::uint64_t leaf_entry_tests = 0;
    std::uint64_t leaf_hits = 0;
#ifdef MODB_NO_METRICS
    // Inline no-op so the local tallies above are provably dead and the
    // compiler strips the increments from the traversal.
    void Flush() const {}
#else
    void Flush() const;  // rtree3d.cc
#endif
  };

  template <typename Fn>
  void VisitRec(int32_t node_idx, const Cube& query, Fn& fn,
                QueryCounters* counters) const {
    const Node& node = nodes_[std::size_t(node_idx)];
    ++counters->node_visits;
    if (!Cube::Intersect(node.cube, query)) return;
    if (node.leaf) {
      for (int32_t e : node.children) {
        const Entry& entry = entries_[std::size_t(e)];
        ++counters->leaf_entry_tests;
        if (Cube::Intersect(entry.cube, query)) {
          ++counters->leaf_hits;
          fn(entry.id);
        }
      }
      return;
    }
    for (int32_t c : node.children) VisitRec(c, query, fn, counters);
  }

  std::vector<Entry> entries_;
  std::vector<Node> nodes_;  // Root is the last node.
  std::size_t num_entries_ = 0;
  int height_ = 0;
};

}  // namespace modb

#endif  // MODB_INDEX_RTREE3D_H_
