// A 3D (x, y, t) R-tree over unit bounding cubes. Section 4.2 stores a
// bounding cube with every variable-size unit; this index puts those
// cubes to work for spatio-temporal joins (the ablation of
// bench_queries). Built by Sort-Tile-Recursive bulk loading.
//
// Layout (Section 4's pointer-free "database arrays" applied to the
// query side): the tree is flattened into level-ordered implicit
// arrays. Every node owns a fixed stride of child slots, and the child
// bounding cubes are stored as six SoA plane arrays (min/max per axis),
// so a node's full fanout intersection test is one branchless pass
// producing a hit bitmask — an autovectorizable scalar core with an
// AVX2 specialization dispatched at runtime (core/simd.h, MODB_SIMD).
// Leaf slots carry the entry ids in the same position, so the leaf
// mask IS the entry filter and no per-entry records are chased.

#ifndef MODB_INDEX_RTREE3D_H_
#define MODB_INDEX_RTREE3D_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "spatial/bbox.h"

namespace modb {

namespace rtree_internal {

/// Base pointers of the six SoA child-cube plane arrays.
struct Planes {
  const double* min_x;
  const double* min_y;
  const double* min_t;
  const double* max_x;
  const double* max_y;
  const double* max_t;
};

/// Computes the intersection bitmask of `stride` child slots starting at
/// `base` against the query cube (bit s set ⟺ slot s hits). Padding
/// slots store inverted cubes (min = +inf, max = -inf) and never hit.
using MaskFn = std::uint32_t (*)(const Planes&, std::size_t base,
                                 std::int32_t stride, const Cube& query);

/// The kernel the runtime dispatch selects right now (rtree3d.cc):
/// AVX2 when available and not disabled, else the scalar core.
MaskFn ActiveMaskFn();

/// The scalar reference kernel, always available (differential tests
/// compare the dispatched kernel against it).
std::uint32_t HitMaskScalar(const Planes& p, std::size_t base,
                            std::int32_t stride, const Cube& query);

}  // namespace rtree_internal

class RTree3D {
 public:
  struct Entry {
    Cube cube;
    int64_t id = 0;
  };

  RTree3D() = default;

  /// Builds the tree from all entries at once (STR bulk load). The
  /// fanout is clamped to [2, 32] (the hit mask is 32 bits wide).
  static RTree3D BulkLoad(std::vector<Entry> entries, int fanout = 16);

  /// Ids of all entries whose cubes intersect the query cube.
  std::vector<int64_t> Query(const Cube& query) const;

  /// Caller-buffer overload: clears `*out` and fills it with the hit
  /// ids, reusing its capacity. Zero allocations after warmup.
  void Query(const Cube& query, std::vector<int64_t>* out) const;

  /// Visits intersecting entries without materializing the id vector.
  /// Traversal work (node visits, leaf entry tests/hits) is accumulated
  /// in locals and flushed to the obs metrics registry once per query —
  /// a no-op (and fully optimized out) under MODB_NO_METRICS.
  template <typename Fn>
  void QueryVisit(const Cube& query, Fn&& fn) const {
    QueryCounters counters;
    if (!leaf_.empty() && Cube::Intersect(bounds_, query)) {
      const rtree_internal::MaskFn mask_fn = rtree_internal::ActiveMaskFn();
      const rtree_internal::Planes planes{min_x_.data(), min_y_.data(),
                                          min_t_.data(), max_x_.data(),
                                          max_y_.data(), max_t_.data()};
      // DFS over node indices. The bound holds because the height is at
      // most kMaxHeight and a pop pushes at most stride_ - 1 net nodes.
      std::int32_t stack[kMaxHeight * 31 + 1];
      int sp = 0;
      stack[sp++] = 0;
      while (sp > 0) {
        const std::int32_t n = stack[--sp];
        ++counters.node_visits;
        const std::size_t base = std::size_t(n) * std::size_t(stride_);
        std::uint32_t mask = mask_fn(planes, base, stride_, query);
        if (leaf_[std::size_t(n)]) {
          counters.leaf_entry_tests += count_[std::size_t(n)];
          counters.leaf_hits += std::uint32_t(std::popcount(mask));
          while (mask != 0) {
            const int s = std::countr_zero(mask);
            mask &= mask - 1;
            fn(slot_[base + std::size_t(s)]);
          }
        } else {
          // Push hits high-slot first so they pop in ascending slot
          // order — the same DFS order as the pointer-tree recursion.
          while (mask != 0) {
            const int s = 31 - std::countl_zero(mask);
            mask &= ~(std::uint32_t(1) << s);
            stack[sp++] = std::int32_t(slot_[base + std::size_t(s)]);
          }
        }
      }
    }
    counters.Flush();
  }

  /// Bounding cube of the whole tree (empty cube when no entries). Lets
  /// callers prefilter probe cubes before descending.
  const Cube& Bounds() const { return bounds_; }

  std::size_t NumEntries() const { return num_entries_; }
  std::size_t NumNodes() const { return leaf_.size(); }
  int Height() const { return height_; }

  /// Child-slot stride per node (fanout rounded up to the vector width).
  std::int32_t SlotStride() const { return stride_; }

 private:
  // With fanout >= 2 every level at least halves the node count, so
  // int32 node indices bound the height well under 32.
  static constexpr int kMaxHeight = 32;

  // Per-query traversal tallies; Flush (rtree3d.cc) adds them to the
  // "index.rtree3d.*" counters and is empty under MODB_NO_METRICS.
  struct QueryCounters {
    std::uint64_t node_visits = 0;
    std::uint64_t leaf_entry_tests = 0;
    std::uint64_t leaf_hits = 0;
#ifdef MODB_NO_METRICS
    // Inline no-op so the local tallies above are provably dead and the
    // compiler strips the increments from the traversal.
    void Flush() const {}
#else
    void Flush() const;  // rtree3d.cc
#endif
  };

  // Level-ordered flat arrays. Node i owns child slots
  // [i * stride_, (i + 1) * stride_); the root is node 0 and every
  // node's children are contiguous in node order. Slot planes live in
  // the six SoA arrays; slot_ holds the child node index (internal
  // nodes) or the entry id (leaves). Padding slots hold inverted cubes
  // and are never visited.
  std::int32_t stride_ = 0;
  std::vector<double> min_x_, min_y_, min_t_, max_x_, max_y_, max_t_;
  std::vector<std::int64_t> slot_;
  std::vector<std::uint8_t> leaf_;    // per node
  std::vector<std::uint16_t> count_;  // per node: live (non-pad) slots
  Cube bounds_;
  std::size_t num_entries_ = 0;
  int height_ = 0;
};

}  // namespace modb

#endif  // MODB_INDEX_RTREE3D_H_
