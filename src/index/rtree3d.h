// A 3D (x, y, t) R-tree over unit bounding cubes. Section 4.2 stores a
// bounding cube with every variable-size unit; this index puts those
// cubes to work for spatio-temporal joins (the ablation of
// bench_queries). Built by Sort-Tile-Recursive bulk loading.

#ifndef MODB_INDEX_RTREE3D_H_
#define MODB_INDEX_RTREE3D_H_

#include <cstdint>
#include <vector>

#include "spatial/bbox.h"

namespace modb {

class RTree3D {
 public:
  struct Entry {
    Cube cube;
    int64_t id = 0;
  };

  RTree3D() = default;

  /// Builds the tree from all entries at once (STR bulk load).
  static RTree3D BulkLoad(std::vector<Entry> entries, int fanout = 16);

  /// Ids of all entries whose cubes intersect the query cube.
  std::vector<int64_t> Query(const Cube& query) const;

  /// Visits intersecting entries without materializing the id vector.
  template <typename Fn>
  void QueryVisit(const Cube& query, Fn&& fn) const {
    if (nodes_.empty()) return;
    VisitRec(int32_t(nodes_.size()) - 1, query, fn);
  }

  std::size_t NumEntries() const { return num_entries_; }
  std::size_t NumNodes() const { return nodes_.size(); }
  int Height() const { return height_; }

 private:
  struct Node {
    Cube cube;
    bool leaf = true;
    // Leaf: indices into entries_. Internal: indices into nodes_.
    std::vector<int32_t> children;
  };

  template <typename Fn>
  void VisitRec(int32_t node_idx, const Cube& query, Fn& fn) const {
    const Node& node = nodes_[std::size_t(node_idx)];
    if (!Cube::Intersect(node.cube, query)) return;
    if (node.leaf) {
      for (int32_t e : node.children) {
        const Entry& entry = entries_[std::size_t(e)];
        if (Cube::Intersect(entry.cube, query)) fn(entry.id);
      }
      return;
    }
    for (int32_t c : node.children) VisitRec(c, query, fn);
  }

  std::vector<Entry> entries_;
  std::vector<Node> nodes_;  // Root is the last node.
  std::size_t num_entries_ = 0;
  int height_ = 0;
};

}  // namespace modb

#endif  // MODB_INDEX_RTREE3D_H_
