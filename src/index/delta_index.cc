#include "index/delta_index.h"

#include <utility>

#include "obs/metrics.h"

namespace modb {

IndexLayersView IndexLayersView::Single(const RTree3D* tree) {
  IndexLayersView v;
  v.base = tree;
  if (tree != nullptr) v.bounds = tree->Bounds();
  return v;
}

IndexLayersView IndexLayersView::Over(const RTree3D* base, const RTree3D* delta,
                                      const RTree3D::Entry* mem,
                                      std::size_t mem_count) {
  IndexLayersView v;
  v.base = base;
  v.delta = delta;
  v.mem = mem;
  v.mem_count = mem_count;
  if (base != nullptr && base->NumEntries() > 0) v.bounds.Extend(base->Bounds());
  if (delta != nullptr && delta->NumEntries() > 0) {
    v.bounds.Extend(delta->Bounds());
  }
  for (std::size_t i = 0; i < mem_count; ++i) v.bounds.Extend(mem[i].cube);
  return v;
}

void IndexSnapshot::AppendToDelta(const std::vector<RTree3D::Entry>& sealed,
                                  int fanout) {
  if (sealed.empty()) return;
  delta_entries_.insert(delta_entries_.end(), sealed.begin(), sealed.end());
  delta_ = RTree3D::BulkLoad(delta_entries_, fanout);
  ++generation_;
  MODB_COUNTER_ADD("index.delta.sealed_entries", sealed.size());
  MODB_COUNTER_INC("index.delta.rebuilds");
}

std::optional<MergePlan> IndexSnapshot::PrepareMerge() const {
  if (delta_entries_.empty()) return std::nullopt;
  MergePlan plan;
  plan.entries.reserve(base_entries_.size() + delta_entries_.size());
  plan.entries.insert(plan.entries.end(), base_entries_.begin(),
                      base_entries_.end());
  plan.entries.insert(plan.entries.end(), delta_entries_.begin(),
                      delta_entries_.end());
  plan.generation = generation_;
  return plan;
}

bool IndexSnapshot::ApplyMerge(const MergePlan& plan, RTree3D merged) {
  if (plan.generation != generation_) {
    MODB_COUNTER_INC("index.delta.merge_stale");
    return false;
  }
  base_entries_ = plan.entries;
  base_ = std::move(merged);
  delta_entries_.clear();
  delta_ = RTree3D();
  ++generation_;
  ++merges_;
  MODB_COUNTER_INC("index.delta.merges");
  return true;
}

void IndexSnapshot::MergeInline(int fanout) {
  std::optional<MergePlan> plan = PrepareMerge();
  if (!plan) return;
  RTree3D merged = RTree3D::BulkLoad(plan->entries, fanout);
  (void)ApplyMerge(*plan, std::move(merged));
}

void IndexSnapshot::ResetBase(std::vector<RTree3D::Entry> entries, int fanout) {
  base_entries_ = std::move(entries);
  base_ = RTree3D::BulkLoad(base_entries_, fanout);
  delta_entries_.clear();
  delta_ = RTree3D();
  mem_.clear();
  ++generation_;
}

}  // namespace modb
