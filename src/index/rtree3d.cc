#include "index/rtree3d.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/simd.h"
#include "obs/metrics.h"

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace modb {

namespace {

double CenterX(const Cube& c) { return (c.rect.min_x + c.rect.max_x) / 2; }
double CenterY(const Cube& c) { return (c.rect.min_y + c.rect.max_y) / 2; }
double CenterT(const Cube& c) { return (c.min_t + c.max_t) / 2; }

// Sort-Tile-Recursive grouping: partitions `items` (ordered arbitrarily)
// into groups of at most `fanout`, tiling by x slabs, then y runs, then t.
template <typename GetCube>
std::vector<std::vector<int32_t>> StrGroups(std::vector<int32_t> items,
                                            int fanout, GetCube cube_of) {
  const std::size_t n = items.size();
  const std::size_t num_groups = (n + fanout - 1) / std::size_t(fanout);
  const int s = std::max(1, int(std::ceil(std::cbrt(double(num_groups)))));
  std::sort(items.begin(), items.end(), [&](int32_t a, int32_t b) {
    return CenterX(cube_of(a)) < CenterX(cube_of(b));
  });
  std::vector<std::vector<int32_t>> groups;
  const std::size_t slab = (n + s - 1) / std::size_t(s);
  for (std::size_t x0 = 0; x0 < n; x0 += slab) {
    std::size_t x1 = std::min(n, x0 + slab);
    std::sort(items.begin() + x0, items.begin() + x1,
              [&](int32_t a, int32_t b) {
                return CenterY(cube_of(a)) < CenterY(cube_of(b));
              });
    const std::size_t run = (x1 - x0 + s - 1) / std::size_t(s);
    for (std::size_t y0 = x0; y0 < x1; y0 += run) {
      std::size_t y1 = std::min(x1, y0 + run);
      std::sort(items.begin() + y0, items.begin() + y1,
                [&](int32_t a, int32_t b) {
                  return CenterT(cube_of(a)) < CenterT(cube_of(b));
                });
      for (std::size_t t0 = y0; t0 < y1; t0 += std::size_t(fanout)) {
        std::size_t t1 = std::min(y1, t0 + std::size_t(fanout));
        groups.emplace_back(items.begin() + t0, items.begin() + t1);
      }
    }
  }
  return groups;
}

// Build-time tree shape: the STR levels before flattening. Leaf nodes
// reference entry ordinals, internal nodes reference other temp nodes.
struct TempNode {
  Cube cube;
  bool leaf = true;
  std::vector<int32_t> children;
};

}  // namespace

namespace rtree_internal {

std::uint32_t HitMaskScalar(const Planes& p, std::size_t base,
                            std::int32_t stride, const Cube& q) {
  const double qmin_x = q.rect.min_x, qmax_x = q.rect.max_x;
  const double qmin_y = q.rect.min_y, qmax_y = q.rect.max_y;
  const double qmin_t = q.min_t, qmax_t = q.max_t;
  std::uint32_t mask = 0;
  for (std::int32_t s = 0; s < stride; ++s) {
    const std::size_t i = base + std::size_t(s);
    // Single-pass branchless conjunction; padding slots (min = +inf,
    // max = -inf) fail every comparison.
    const bool hit = unsigned(p.min_x[i] <= qmax_x) &
                     unsigned(qmin_x <= p.max_x[i]) &
                     unsigned(p.min_y[i] <= qmax_y) &
                     unsigned(qmin_y <= p.max_y[i]) &
                     unsigned(p.min_t[i] <= qmax_t) &
                     unsigned(qmin_t <= p.max_t[i]);
    mask |= std::uint32_t(hit) << s;
  }
  return mask;
}

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))

// Four slots per iteration: six plane compares folded with vector ANDs,
// one movemask per group. _CMP_LE_OQ matches the scalar <= exactly, so
// the two kernels are bit-for-bit interchangeable.
__attribute__((target("avx2"))) std::uint32_t HitMaskAvx2(
    const Planes& p, std::size_t base, std::int32_t stride, const Cube& q) {
  const __m256d qmin_x = _mm256_set1_pd(q.rect.min_x);
  const __m256d qmax_x = _mm256_set1_pd(q.rect.max_x);
  const __m256d qmin_y = _mm256_set1_pd(q.rect.min_y);
  const __m256d qmax_y = _mm256_set1_pd(q.rect.max_y);
  const __m256d qmin_t = _mm256_set1_pd(q.min_t);
  const __m256d qmax_t = _mm256_set1_pd(q.max_t);
  std::uint32_t mask = 0;
  for (std::int32_t s = 0; s < stride; s += 4) {
    const std::size_t i = base + std::size_t(s);
    __m256d hit = _mm256_and_pd(
        _mm256_cmp_pd(_mm256_loadu_pd(p.min_x + i), qmax_x, _CMP_LE_OQ),
        _mm256_cmp_pd(qmin_x, _mm256_loadu_pd(p.max_x + i), _CMP_LE_OQ));
    hit = _mm256_and_pd(
        hit,
        _mm256_cmp_pd(_mm256_loadu_pd(p.min_y + i), qmax_y, _CMP_LE_OQ));
    hit = _mm256_and_pd(
        hit,
        _mm256_cmp_pd(qmin_y, _mm256_loadu_pd(p.max_y + i), _CMP_LE_OQ));
    hit = _mm256_and_pd(
        hit,
        _mm256_cmp_pd(_mm256_loadu_pd(p.min_t + i), qmax_t, _CMP_LE_OQ));
    hit = _mm256_and_pd(
        hit,
        _mm256_cmp_pd(qmin_t, _mm256_loadu_pd(p.max_t + i), _CMP_LE_OQ));
    mask |= std::uint32_t(_mm256_movemask_pd(hit)) << s;
  }
  return mask;
}

#endif  // __x86_64__

MaskFn ActiveMaskFn() {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  if (simd::UseAvx2()) return &HitMaskAvx2;
#endif
  return &HitMaskScalar;
}

}  // namespace rtree_internal

#ifndef MODB_NO_METRICS
void RTree3D::QueryCounters::Flush() const {
  MODB_COUNTER_INC("index.rtree3d.queries");
  MODB_COUNTER_ADD("index.rtree3d.node_visits", node_visits);
  MODB_COUNTER_ADD("index.rtree3d.leaf_entry_tests", leaf_entry_tests);
  MODB_COUNTER_ADD("index.rtree3d.leaf_hits", leaf_hits);
}
#endif

RTree3D RTree3D::BulkLoad(std::vector<Entry> entries, int fanout) {
  fanout = std::clamp(fanout, 2, 32);
  RTree3D tree;
  tree.num_entries_ = entries.size();
  MODB_COUNTER_INC("index.rtree3d.bulk_loads");
  MODB_COUNTER_ADD("index.rtree3d.entries_loaded", tree.num_entries_);
  if (entries.empty()) return tree;

  // STR levels, bottom-up (same grouping as the historical pointer
  // tree, so the DFS visit order is preserved). The root is the last
  // temp node.
  std::vector<TempNode> tmp;
  std::vector<int32_t> ids(entries.size());
  for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = int32_t(i);
  auto entry_cube = [&entries](int32_t i) -> const Cube& {
    return entries[std::size_t(i)].cube;
  };
  std::vector<int32_t> level;
  for (auto& group : StrGroups(std::move(ids), fanout, entry_cube)) {
    TempNode node;
    node.leaf = true;
    node.children = std::move(group);
    for (int32_t e : node.children) node.cube.Extend(entry_cube(e));
    tmp.push_back(std::move(node));
    level.push_back(int32_t(tmp.size()) - 1);
  }
  tree.height_ = 1;
  auto node_cube = [&tmp](int32_t i) -> const Cube& {
    return tmp[std::size_t(i)].cube;
  };
  while (level.size() > 1) {
    const std::size_t prev = level.size();
    auto groups = StrGroups(std::move(level), fanout, node_cube);
    if (groups.size() >= prev) {
      // Degenerate tiling: at small fanout the slab/run arithmetic can
      // emit one group per input, so the level would never shrink.
      // Re-chunk the (already STR-sorted) sequence into runs of
      // `fanout`; with fanout >= 2 this strictly reduces the level.
      std::vector<int32_t> seq;
      seq.reserve(prev);
      for (auto& g : groups) seq.insert(seq.end(), g.begin(), g.end());
      groups.clear();
      for (std::size_t i = 0; i < seq.size(); i += std::size_t(fanout)) {
        const std::size_t j = std::min(seq.size(), i + std::size_t(fanout));
        groups.emplace_back(seq.begin() + i, seq.begin() + j);
      }
    }
    std::vector<int32_t> next;
    for (auto& group : groups) {
      TempNode node;
      node.leaf = false;
      node.children = std::move(group);
      for (int32_t c : node.children) node.cube.Extend(node_cube(c));
      tmp.push_back(std::move(node));
      next.push_back(int32_t(tmp.size()) - 1);
    }
    level = std::move(next);
    ++tree.height_;
  }

  // Flatten in BFS order: the root becomes node 0 and every node's
  // children occupy consecutive flat indices. Pass 1 assigns indices,
  // pass 2 fills the SoA slot planes.
  const int32_t root_tmp = int32_t(tmp.size()) - 1;
  tree.bounds_ = tmp[std::size_t(root_tmp)].cube;
  tree.stride_ = int32_t(fanout + 3) & ~int32_t(3);
  std::vector<int32_t> order;  // BFS sequence of temp indices
  std::vector<int32_t> flat_of(tmp.size(), -1);
  order.reserve(tmp.size());
  order.push_back(root_tmp);
  flat_of[std::size_t(root_tmp)] = 0;
  for (std::size_t head = 0; head < order.size(); ++head) {
    const TempNode& node = tmp[std::size_t(order[head])];
    if (node.leaf) continue;
    for (int32_t c : node.children) {
      flat_of[std::size_t(c)] = int32_t(order.size());
      order.push_back(c);
    }
  }

  const std::size_t num_nodes = order.size();
  const std::size_t num_slots = num_nodes * std::size_t(tree.stride_);
  constexpr double kInf = std::numeric_limits<double>::infinity();
  tree.min_x_.assign(num_slots, kInf);
  tree.min_y_.assign(num_slots, kInf);
  tree.min_t_.assign(num_slots, kInf);
  tree.max_x_.assign(num_slots, -kInf);
  tree.max_y_.assign(num_slots, -kInf);
  tree.max_t_.assign(num_slots, -kInf);
  tree.slot_.assign(num_slots, 0);
  tree.leaf_.resize(num_nodes);
  tree.count_.resize(num_nodes);
  for (std::size_t f = 0; f < num_nodes; ++f) {
    const TempNode& node = tmp[std::size_t(order[f])];
    tree.leaf_[f] = node.leaf ? 1 : 0;
    tree.count_[f] = std::uint16_t(node.children.size());
    const std::size_t base = f * std::size_t(tree.stride_);
    for (std::size_t s = 0; s < node.children.size(); ++s) {
      const int32_t c = node.children[s];
      const Cube& cube =
          node.leaf ? entries[std::size_t(c)].cube : tmp[std::size_t(c)].cube;
      tree.min_x_[base + s] = cube.rect.min_x;
      tree.min_y_[base + s] = cube.rect.min_y;
      tree.min_t_[base + s] = cube.min_t;
      tree.max_x_[base + s] = cube.rect.max_x;
      tree.max_y_[base + s] = cube.rect.max_y;
      tree.max_t_[base + s] = cube.max_t;
      tree.slot_[base + s] = node.leaf ? entries[std::size_t(c)].id
                                       : int64_t(flat_of[std::size_t(c)]);
    }
  }
  return tree;
}

std::vector<int64_t> RTree3D::Query(const Cube& query) const {
  std::vector<int64_t> out;
  Query(query, &out);
  return out;
}

void RTree3D::Query(const Cube& query, std::vector<int64_t>* out) const {
  out->clear();
  QueryVisit(query, [out](int64_t id) { out->push_back(id); });
}

}  // namespace modb
