#include "index/rtree3d.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"

namespace modb {

namespace {

double CenterX(const Cube& c) { return (c.rect.min_x + c.rect.max_x) / 2; }
double CenterY(const Cube& c) { return (c.rect.min_y + c.rect.max_y) / 2; }
double CenterT(const Cube& c) { return (c.min_t + c.max_t) / 2; }

// Sort-Tile-Recursive grouping: partitions `items` (ordered arbitrarily)
// into groups of at most `fanout`, tiling by x slabs, then y runs, then t.
template <typename GetCube>
std::vector<std::vector<int32_t>> StrGroups(std::vector<int32_t> items,
                                            int fanout, GetCube cube_of) {
  const std::size_t n = items.size();
  const std::size_t num_groups = (n + fanout - 1) / std::size_t(fanout);
  const int s = std::max(1, int(std::ceil(std::cbrt(double(num_groups)))));
  std::sort(items.begin(), items.end(), [&](int32_t a, int32_t b) {
    return CenterX(cube_of(a)) < CenterX(cube_of(b));
  });
  std::vector<std::vector<int32_t>> groups;
  const std::size_t slab = (n + s - 1) / std::size_t(s);
  for (std::size_t x0 = 0; x0 < n; x0 += slab) {
    std::size_t x1 = std::min(n, x0 + slab);
    std::sort(items.begin() + x0, items.begin() + x1,
              [&](int32_t a, int32_t b) {
                return CenterY(cube_of(a)) < CenterY(cube_of(b));
              });
    const std::size_t run = (x1 - x0 + s - 1) / std::size_t(s);
    for (std::size_t y0 = x0; y0 < x1; y0 += run) {
      std::size_t y1 = std::min(x1, y0 + run);
      std::sort(items.begin() + y0, items.begin() + y1,
                [&](int32_t a, int32_t b) {
                  return CenterT(cube_of(a)) < CenterT(cube_of(b));
                });
      for (std::size_t t0 = y0; t0 < y1; t0 += std::size_t(fanout)) {
        std::size_t t1 = std::min(y1, t0 + std::size_t(fanout));
        groups.emplace_back(items.begin() + t0, items.begin() + t1);
      }
    }
  }
  return groups;
}

}  // namespace

#ifndef MODB_NO_METRICS
void RTree3D::QueryCounters::Flush() const {
  MODB_COUNTER_INC("index.rtree3d.queries");
  MODB_COUNTER_ADD("index.rtree3d.node_visits", node_visits);
  MODB_COUNTER_ADD("index.rtree3d.leaf_entry_tests", leaf_entry_tests);
  MODB_COUNTER_ADD("index.rtree3d.leaf_hits", leaf_hits);
}
#endif

RTree3D RTree3D::BulkLoad(std::vector<Entry> entries, int fanout) {
  RTree3D tree;
  tree.entries_ = std::move(entries);
  tree.num_entries_ = tree.entries_.size();
  MODB_COUNTER_INC("index.rtree3d.bulk_loads");
  MODB_COUNTER_ADD("index.rtree3d.entries_loaded", tree.num_entries_);
  if (tree.entries_.empty()) return tree;

  // Leaf level.
  std::vector<int32_t> ids(tree.entries_.size());
  for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = int32_t(i);
  auto entry_cube = [&tree](int32_t i) -> const Cube& {
    return tree.entries_[std::size_t(i)].cube;
  };
  std::vector<int32_t> level;
  for (auto& group : StrGroups(std::move(ids), fanout, entry_cube)) {
    Node node;
    node.leaf = true;
    node.children = std::move(group);
    for (int32_t e : node.children) node.cube.Extend(entry_cube(e));
    tree.nodes_.push_back(std::move(node));
    level.push_back(int32_t(tree.nodes_.size()) - 1);
  }
  tree.height_ = 1;

  // Internal levels.
  auto node_cube = [&tree](int32_t i) -> const Cube& {
    return tree.nodes_[std::size_t(i)].cube;
  };
  while (level.size() > 1) {
    std::vector<int32_t> next;
    for (auto& group : StrGroups(std::move(level), fanout, node_cube)) {
      Node node;
      node.leaf = false;
      node.children = std::move(group);
      for (int32_t c : node.children) node.cube.Extend(node_cube(c));
      tree.nodes_.push_back(std::move(node));
      next.push_back(int32_t(tree.nodes_.size()) - 1);
    }
    level = std::move(next);
    ++tree.height_;
  }
  return tree;
}

std::vector<int64_t> RTree3D::Query(const Cube& query) const {
  std::vector<int64_t> out;
  QueryVisit(query, [&out](int64_t id) { out.push_back(id); });
  return out;
}

}  // namespace modb
