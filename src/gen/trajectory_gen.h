// Synthetic moving-point workloads. The paper evaluates no dataset of its
// own (it is a data-model paper); these generators produce the
// trajectories its examples and complexity claims are exercised with:
// piecewise-linear random walks and waypoint routes, sliced exactly as a
// mapping(upoint).

#ifndef MODB_GEN_TRAJECTORY_GEN_H_
#define MODB_GEN_TRAJECTORY_GEN_H_

#include <cstdint>
#include <random>

#include "core/status.h"
#include "temporal/moving.h"

namespace modb {

struct TrajectoryOptions {
  /// Number of upoint units.
  int num_units = 16;
  Instant start_time = 0;
  /// Duration of each unit.
  double unit_duration = 1.0;
  /// Region of the plane the walk stays in ([0, extent] × [0, extent]).
  double extent = 1000.0;
  /// Maximum displacement per unit.
  double max_step = 20.0;
  /// Probability that a unit is stationary (a stop).
  double stop_probability = 0.0;
};

/// A random-walk moving point; consecutive units share their boundary
/// positions exactly (the continuity the sliced representation encodes).
Result<MovingPoint> RandomWalkPoint(std::mt19937_64& rng,
                                    const TrajectoryOptions& options);

/// A straight flight from `from` to `to` at constant speed, sliced into
/// `num_units` units of equal duration starting at `departure`.
Result<MovingPoint> StraightRoute(const Point& from, const Point& to,
                                  Instant departure, double duration,
                                  int num_units);

}  // namespace modb

#endif  // MODB_GEN_TRAJECTORY_GEN_H_
