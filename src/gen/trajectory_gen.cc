#include "gen/trajectory_gen.h"

#include <algorithm>

namespace modb {

Result<MovingPoint> RandomWalkPoint(std::mt19937_64& rng,
                                    const TrajectoryOptions& options) {
  std::uniform_real_distribution<double> coord(0, options.extent);
  std::uniform_real_distribution<double> step(-options.max_step,
                                              options.max_step);
  std::uniform_real_distribution<double> unit01(0, 1);

  MappingBuilder<UPoint> builder;
  Point pos(coord(rng), coord(rng));
  Instant t = options.start_time;
  for (int i = 0; i < options.num_units; ++i) {
    Point next = pos;
    if (unit01(rng) >= options.stop_probability) {
      next.x = std::clamp(pos.x + step(rng), 0.0, options.extent);
      next.y = std::clamp(pos.y + step(rng), 0.0, options.extent);
    }
    auto iv = TimeInterval::Make(t, t + options.unit_duration, true,
                                 /*rc=*/i + 1 == options.num_units);
    if (!iv.ok()) return iv.status();
    auto unit = UPoint::FromEndpoints(*iv, pos, next);
    if (!unit.ok()) return unit.status();
    MODB_RETURN_IF_ERROR(builder.Append(*unit));
    pos = next;
    t += options.unit_duration;
  }
  return builder.Build();
}

Result<MovingPoint> StraightRoute(const Point& from, const Point& to,
                                  Instant departure, double duration,
                                  int num_units) {
  if (num_units < 1 || duration <= 0) {
    return Status::InvalidArgument("route needs >= 1 unit and > 0 duration");
  }
  MappingBuilder<UPoint> builder;
  // A single linear motion sliced into equal units. Because consecutive
  // units share the same motion coefficients, the builder merges them —
  // which is exactly the minimality the mapping constraints require. To
  // keep the requested slicing observable we instead construct units via
  // endpoint interpolation, which yields bitwise-different (but
  // value-equal) coefficients only if rounding differs; merge handles the
  // rest. Either way the result is a valid minimal mapping.
  for (int i = 0; i < num_units; ++i) {
    double f0 = double(i) / num_units;
    double f1 = double(i + 1) / num_units;
    Point p0(from.x + (to.x - from.x) * f0, from.y + (to.y - from.y) * f0);
    Point p1(from.x + (to.x - from.x) * f1, from.y + (to.y - from.y) * f1);
    auto iv = TimeInterval::Make(departure + duration * f0,
                                 departure + duration * f1, true,
                                 i + 1 == num_units);
    if (!iv.ok()) return iv.status();
    auto unit = UPoint::FromEndpoints(*iv, p0, p1);
    if (!unit.ok()) return unit.status();
    MODB_RETURN_IF_ERROR(builder.Append(*unit));
  }
  return builder.Build();
}

}  // namespace modb
