// Synthetic region and moving-region workloads: jittered convex polygons
// (optionally with a hole), and moving regions that translate and scale —
// the motions the non-rotation constraint of Section 3.2.6 represents
// exactly.

#ifndef MODB_GEN_REGION_GEN_H_
#define MODB_GEN_REGION_GEN_H_

#include <cstdint>
#include <random>
#include <vector>

#include "core/status.h"
#include "spatial/region.h"
#include "temporal/moving.h"

namespace modb {

struct RegionGenOptions {
  /// Vertices of the outer cycle.
  int num_vertices = 16;
  Point center = Point(0, 0);
  double radius = 100.0;
  /// Relative radial jitter in [0, 1); 0 gives a regular polygon.
  double jitter = 0.3;
  /// Add a concentric hole of half the (min) radius.
  bool with_hole = false;
};

/// The outer (or hole) ring as a vertex list; radii are jittered but kept
/// star-shaped so the ring is always simple.
std::vector<Point> GenerateRing(std::mt19937_64& rng,
                                const RegionGenOptions& options,
                                double scale = 1.0);

/// A random region value.
Result<Region> GenerateRegion(std::mt19937_64& rng,
                              const RegionGenOptions& options);

struct MovingRegionOptions {
  RegionGenOptions shape;
  /// Number of uregion units.
  int num_units = 4;
  Instant start_time = 0;
  double unit_duration = 10.0;
  /// Center displacement per unit.
  Point drift = Point(20, 0);
  /// Added to the drift on even units and subtracted on odd units
  /// (zig-zag). A constant drift makes consecutive units share one linear
  /// motion, which the mapping builder merges into a single unit; any
  /// non-zero alternation keeps the requested slicing observable.
  Point drift_alternation = Point(0, 0);
  /// Multiplicative size change per unit (1 = rigid translation).
  double scale_per_unit = 1.0;
};

/// A moving region that drifts and scales. Each unit interpolates the
/// ring vertices linearly (matching a-to-a), so every moving segment is
/// trivially coplanar (Figure 5's construction).
Result<MovingRegion> GenerateMovingRegion(std::mt19937_64& rng,
                                          const MovingRegionOptions& options);

}  // namespace modb

#endif  // MODB_GEN_REGION_GEN_H_
