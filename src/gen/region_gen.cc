#include "gen/region_gen.h"

#include <cmath>
#include <numbers>

namespace modb {

namespace {

// Builds the moving cycle interpolating ring0 (at t0) to ring1 (at t1).
Result<MCycle> InterpolateCycle(const std::vector<Point>& ring0,
                                const std::vector<Point>& ring1, Instant t0,
                                Instant t1) {
  MCycle cycle;
  const std::size_t n = ring0.size();
  for (std::size_t i = 0; i < n; ++i) {
    auto s0 = Seg::Make(ring0[i], ring0[(i + 1) % n]);
    auto s1 = Seg::Make(ring1[i], ring1[(i + 1) % n]);
    if (!s0.ok()) return s0.status();
    if (!s1.ok()) return s1.status();
    // Match endpoints in ring order, not in Seg-normalized order, so the
    // same physical vertex interpolates to itself.
    Point a0 = ring0[i], b0 = ring0[(i + 1) % n];
    Point a1 = ring1[i], b1 = ring1[(i + 1) % n];
    double dur = t1 - t0;
    auto motion = [&](const Point& p0, const Point& p1) {
      double x1 = (p1.x - p0.x) / dur;
      double y1 = (p1.y - p0.y) / dur;
      return LinearMotion{p0.x - x1 * t0, x1, p0.y - y1 * t0, y1};
    };
    auto ms = MSeg::Make(motion(a0, a1), motion(b0, b1));
    if (!ms.ok()) return ms.status();
    cycle.push_back(*ms);
  }
  return cycle;
}

std::vector<Point> TransformRing(const std::vector<Point>& ring,
                                 const Point& center, const Point& shift,
                                 double scale) {
  std::vector<Point> out;
  out.reserve(ring.size());
  for (const Point& p : ring) {
    out.push_back(Point(center.x + shift.x + (p.x - center.x) * scale,
                        center.y + shift.y + (p.y - center.y) * scale));
  }
  return out;
}

}  // namespace

std::vector<Point> GenerateRing(std::mt19937_64& rng,
                                const RegionGenOptions& options,
                                double scale) {
  std::uniform_real_distribution<double> jitter(-options.jitter,
                                                options.jitter);
  std::vector<Point> ring;
  ring.reserve(std::size_t(options.num_vertices));
  for (int i = 0; i < options.num_vertices; ++i) {
    double angle = 2 * std::numbers::pi * i / options.num_vertices;
    double r = options.radius * scale * (1 + jitter(rng));
    ring.push_back(Point(options.center.x + r * std::cos(angle),
                         options.center.y + r * std::sin(angle)));
  }
  return ring;
}

Result<Region> GenerateRegion(std::mt19937_64& rng,
                              const RegionGenOptions& options) {
  std::vector<Point> outer = GenerateRing(rng, options);
  std::vector<std::vector<Point>> holes;
  if (options.with_hole) {
    RegionGenOptions hole_opts = options;
    hole_opts.jitter = 0;  // Keep the hole strictly inside.
    holes.push_back(GenerateRing(rng, hole_opts, 0.4));
  }
  return Region::FromRings(outer, holes);
}

Result<MovingRegion> GenerateMovingRegion(std::mt19937_64& rng,
                                          const MovingRegionOptions& options) {
  std::vector<Point> base = GenerateRing(rng, options.shape);
  std::vector<Point> hole_base;
  if (options.shape.with_hole) {
    RegionGenOptions hole_opts = options.shape;
    hole_opts.jitter = 0;
    hole_base = GenerateRing(rng, hole_opts, 0.4);
  }

  MappingBuilder<URegion> builder;
  Instant t = options.start_time;
  Point shift(0, 0);
  double scale = 1.0;
  for (int k = 0; k < options.num_units; ++k) {
    Instant t0 = t;
    Instant t1 = t + options.unit_duration;
    double alt = (k % 2 == 0) ? 1.0 : -1.0;
    Point shift1(shift.x + options.drift.x + alt * options.drift_alternation.x,
                 shift.y + options.drift.y + alt * options.drift_alternation.y);
    double scale1 = scale * options.scale_per_unit;

    std::vector<Point> ring0 =
        TransformRing(base, options.shape.center, shift, scale);
    std::vector<Point> ring1 =
        TransformRing(base, options.shape.center, shift1, scale1);
    Result<MCycle> outer = InterpolateCycle(ring0, ring1, t0, t1);
    if (!outer.ok()) return outer.status();
    MFace face{std::move(*outer), {}};
    if (!hole_base.empty()) {
      std::vector<Point> h0 =
          TransformRing(hole_base, options.shape.center, shift, scale);
      std::vector<Point> h1 =
          TransformRing(hole_base, options.shape.center, shift1, scale1);
      Result<MCycle> hole = InterpolateCycle(h0, h1, t0, t1);
      if (!hole.ok()) return hole.status();
      face.holes.push_back(std::move(*hole));
    }
    auto iv = TimeInterval::Make(t0, t1, true, k + 1 == options.num_units);
    if (!iv.ok()) return iv.status();
    auto unit = URegion::Make(*iv, {std::move(face)});
    if (!unit.ok()) return unit.status();
    MODB_RETURN_IF_ERROR(builder.Append(*unit));
    t = t1;
    shift = shift1;
    scale = scale1;
  }
  return builder.Build();
}

}  // namespace modb
