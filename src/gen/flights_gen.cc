#include "gen/flights_gen.h"

#include <string>
#include <vector>

#include "gen/trajectory_gen.h"

namespace modb {

Result<Relation> GeneratePlanes(const FlightsOptions& options) {
  if (options.num_airports < 2) {
    return Status::InvalidArgument("need at least 2 airports");
  }
  std::mt19937_64 rng(options.seed);
  std::uniform_real_distribution<double> coord(0, options.extent);
  std::uniform_int_distribution<int> airport(0, options.num_airports - 1);
  std::uniform_real_distribution<double> depart(0, options.departure_window);

  std::vector<Point> airports;
  airports.reserve(std::size_t(options.num_airports));
  for (int i = 0; i < options.num_airports; ++i) {
    airports.push_back(Point(coord(rng), coord(rng)));
  }

  const std::vector<std::string> airlines = {"Lufthansa", "Alitalia", "KLM",
                                             "Iberia", "Sabena"};
  Relation planes("planes",
                  Schema({{"airline", AttributeType::kString},
                          {"id", AttributeType::kString},
                          {"flight", AttributeType::kMovingPoint}}));
  for (int i = 0; i < options.num_flights; ++i) {
    int from = airport(rng);
    int to = airport(rng);
    while (to == from) to = airport(rng);
    double dist = Distance(airports[std::size_t(from)],
                           airports[std::size_t(to)]);
    double duration = dist / options.speed;
    Result<MovingPoint> flight =
        StraightRoute(airports[std::size_t(from)], airports[std::size_t(to)],
                      depart(rng), duration, options.units_per_flight);
    if (!flight.ok()) return flight.status();
    const std::string& airline = airlines[std::size_t(i) % airlines.size()];
    std::string id = airline.substr(0, 2) + std::to_string(100 + i);
    MODB_RETURN_IF_ERROR(planes.Insert(
        {StringValue(airline), StringValue(id), std::move(*flight)}));
  }
  return planes;
}

}  // namespace modb
