// Generator for the paper's running example relation
//   planes(airline: string, id: string, flight: mpoint)
// (Section 2): a synthetic airport network and straight-line flights
// between airports, sliced into upoint units.

#ifndef MODB_GEN_FLIGHTS_GEN_H_
#define MODB_GEN_FLIGHTS_GEN_H_

#include <cstdint>
#include <random>

#include "core/status.h"
#include "db/relation.h"

namespace modb {

struct FlightsOptions {
  int num_airports = 12;
  int num_flights = 50;
  /// Side length of the square world (km scale in the examples).
  double extent = 10000.0;
  /// Units per flight leg.
  int units_per_flight = 8;
  /// Flight speed (distance per time unit).
  double speed = 800.0;
  /// Departures are drawn uniformly from [0, departure_window].
  double departure_window = 24.0;
  std::uint64_t seed = 42;
};

/// Index of the flight attribute in the generated schema.
inline constexpr int kFlightAttrAirline = 0;
inline constexpr int kFlightAttrId = 1;
inline constexpr int kFlightAttrFlight = 2;

/// Builds the planes relation.
Result<Relation> GeneratePlanes(const FlightsOptions& options);

}  // namespace modb

#endif  // MODB_GEN_FLIGHTS_GEN_H_
