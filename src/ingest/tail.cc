#include "ingest/tail.h"

#include <utility>

#include "core/interval.h"

namespace modb {
namespace ingest {

Status TailSeries::Absorb(Instant t, const Point& p) {
  if (!has_fix_) {
    has_fix_ = true;
    last_t_ = t;
    last_p_ = p;
    return Status::OK();
  }
  if (!(t > last_t_)) {
    return Status::OutOfRange(
        "fix at t = " + std::to_string(t) +
        " is not after the object's last fix at t = " + std::to_string(last_t_));
  }

  // The current last unit is about to gain a successor: flip its right
  // bound open, matching the generator convention (interior units
  // right-open). The motion coefficients and the bounding cube are both
  // closedness-independent, so this is representation-only.
  if (!units_.empty() && units_.back().interval().right_closed()) {
    const UPoint& back = units_.back();
    Result<TimeInterval> open =
        TimeInterval::Make(back.interval().start(), back.interval().end(),
                           back.interval().left_closed(), false);
    MODB_RETURN_IF_ERROR(open.status());
    Result<UPoint> flipped = UPoint::Make(*open, back.motion());
    MODB_RETURN_IF_ERROR(flipped.status());
    units_.back() = *std::move(flipped);
  }

  Result<TimeInterval> iv = TimeInterval::Make(last_t_, t, true, true);
  MODB_RETURN_IF_ERROR(iv.status());
  Result<UPoint> unit = UPoint::FromEndpoints(*iv, last_p_, p);
  MODB_RETURN_IF_ERROR(unit.status());

  // MappingBuilder::Append's merge rule, verbatim: adjacent interval +
  // equal unit function collapse into one unit that keeps the NEW
  // unit's coefficients over the merged interval. Replicating the exact
  // rule (not just an equivalent one) is what keeps the incremental
  // unit vector bitwise equal to the bulk-built one.
  if (!units_.empty() &&
      TimeInterval::Adjacent(units_.back().interval(), unit->interval()) &&
      UPoint::FunctionEqual(units_.back(), *unit)) {
    TimeInterval merged =
        TimeInterval::Merge(units_.back().interval(), unit->interval());
    Result<UPoint> m = unit->WithInterval(merged);
    MODB_RETURN_IF_ERROR(m.status());
    units_.back() = *std::move(m);
    // The merge target was the (mutable) last unit, so the frontier can
    // only have pointed at or below it; clamp for safety.
    if (sealed_ >= units_.size()) sealed_ = units_.size() - 1;
  } else {
    units_.push_back(*std::move(unit));
  }
  last_t_ = t;
  last_p_ = p;
  return Status::OK();
}

std::size_t TailSeries::Seal() {
  if (!units_.empty()) sealed_ = units_.size() - 1;
  return sealed_;
}

Result<MovingPoint> TailSeries::Materialize() const {
  // The validating factory re-checks disjointness/minimality — a free
  // structural audit of the absorb algorithm on every materialization.
  return MovingPoint::Make(units_);
}

Result<TailSeries> TailSeries::Resume(const MovingPoint& persisted,
                                      Instant last_t, const Point& last_p) {
  TailSeries tail;
  tail.units_ = persisted.units();
  if (!tail.units_.empty()) {
    const TimeInterval& back = tail.units_.back().interval();
    if (!back.right_closed() || back.end() != last_t) {
      return Status::InvalidArgument(
          "persisted tail does not end closed at the recorded last fix (" +
          back.ToString() + " vs t = " + std::to_string(last_t) + ")");
    }
    tail.sealed_ = tail.units_.size() - 1;
  }
  tail.has_fix_ = true;
  tail.last_t_ = last_t;
  tail.last_p_ = last_p;
  return tail;
}

}  // namespace ingest
}  // namespace modb
