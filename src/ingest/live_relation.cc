#include "ingest/live_relation.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string_view>
#include <utility>

#include "obs/metrics.h"

namespace modb {
namespace ingest {

namespace {

// Manifest (store root 0), hand-encoded little-endian:
//   "MOLV" u32 version  u32 count
//   per object, in row order:
//     u32 id_len  id bytes  u8 has_units  f64 last_t  f64 last_x  f64 last_y
// The last fix is persisted verbatim: re-deriving it from the final
// unit's motion coefficients would round, and bitwise resume needs the
// exact anchor the next Absorb will extend from.
constexpr char kManifestMagic[4] = {'M', 'O', 'L', 'V'};
constexpr std::uint32_t kManifestVersion = 1;
// Root slot for an object that has an anchor but no units yet: a 1-byte
// opaque placeholder keeps root i+1 <-> row i alignment.
constexpr std::string_view kPlaceholderBlob = std::string_view("\0", 1);

void AppendU32(std::string* out, std::uint32_t v) {
  char b[4];
  std::memcpy(b, &v, sizeof v);
  out->append(b, sizeof v);
}

void AppendF64(std::string* out, double v) {
  char b[8];
  std::memcpy(b, &v, sizeof v);
  out->append(b, sizeof v);
}

bool ReadU32(std::string_view s, std::size_t* off, std::uint32_t* v) {
  if (s.size() - *off < sizeof *v) return false;
  std::memcpy(v, s.data() + *off, sizeof *v);
  *off += sizeof *v;
  return true;
}

bool ReadF64(std::string_view s, std::size_t* off, double* v) {
  if (s.size() - *off < sizeof *v) return false;
  std::memcpy(v, s.data() + *off, sizeof *v);
  *off += sizeof *v;
  return true;
}

Status BadManifest(const std::string& what) {
  return Status::DataLoss("live relation manifest: " + what);
}

}  // namespace

LiveRelation::LiveRelation(std::string name, LiveOptions options)
    : options_(options),
      rel_(std::move(name),
           Schema({{"id", AttributeType::kString},
                   {"trail", AttributeType::kMovingPoint}})) {
  if (options_.seal_units == 0) options_.seal_units = 1;
  if (options_.merge_threshold == 0) options_.merge_threshold = 1;
}

std::optional<std::size_t> LiveRelation::RowOf(
    const std::string& object_id) const {
  auto it = rows_.find(object_id);
  if (it == rows_.end()) return std::nullopt;
  return it->second;
}

Result<std::size_t> LiveRelation::AddObject(const std::string& object_id) {
  const std::size_t row = objects_.size();
  Tuple tuple;
  tuple.emplace_back(StringValue(object_id));
  tuple.emplace_back(MovingPoint());
  MODB_RETURN_IF_ERROR(rel_.Insert(std::move(tuple)));
  objects_.emplace_back();
  rows_.emplace(object_id, row);
  return row;
}

Status LiveRelation::Ingest(const std::vector<IngestFix>& fixes) {
  // Validation pass: nothing below may mutate state until the whole
  // batch is known good, so a rejected batch is a no-op.
  std::unordered_map<std::string, Instant> batch_last;
  std::size_t new_objects = 0;
  for (const IngestFix& fix : fixes) {
    if (!std::isfinite(fix.t) || !std::isfinite(fix.x) ||
        !std::isfinite(fix.y)) {
      return Status::InvalidArgument("ingest fix for object '" +
                                     fix.object_id +
                                     "' has a non-finite field");
    }
    auto it = batch_last.find(fix.object_id);
    if (it != batch_last.end()) {
      if (!(fix.t > it->second)) {
        return Status::OutOfRange(
            "ingest batch for object '" + fix.object_id +
            "' is not strictly increasing in time");
      }
      it->second = fix.t;
      continue;
    }
    auto rit = rows_.find(fix.object_id);
    if (rit != rows_.end()) {
      const TailSeries& tail = objects_[rit->second].tail;
      if (tail.has_fix() && !(fix.t > tail.last_time())) {
        return Status::OutOfRange("ingest fix for object '" + fix.object_id +
                                  "' at t=" + std::to_string(fix.t) +
                                  " is not after the tail frontier t=" +
                                  std::to_string(tail.last_time()));
      }
    } else {
      ++new_objects;
    }
    batch_last.emplace(fix.object_id, fix.t);
  }
  if (store_ != nullptr && objects_.size() + new_objects > kMaxStoredObjects) {
    return Status::ResourceExhausted(
        "live relation " + rel_.name() + " is store-backed and capped at " +
        std::to_string(kMaxStoredObjects) + " objects");
  }

  // Mutation pass: every Absorb below must succeed (validation mirrored
  // the tail's only rejection rule), so state stays consistent.
  std::vector<std::size_t> touched;
  touched.reserve(batch_last.size());
  for (const IngestFix& fix : fixes) {
    std::size_t row;
    auto rit = rows_.find(fix.object_id);
    if (rit != rows_.end()) {
      row = rit->second;
    } else {
      Result<std::size_t> added = AddObject(fix.object_id);
      MODB_RETURN_IF_ERROR(added.status());
      row = *added;
    }
    ObjectState& st = objects_[row];
    MODB_RETURN_IF_ERROR(st.tail.Absorb(fix.t, Point(fix.x, fix.y)));
    st.dirty = true;
    touched.push_back(row);
  }
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());

  // Refresh + seal pass, ascending row order for determinism.
  std::vector<RTree3D::Entry> sealed_entries;
  for (std::size_t row : touched) {
    ObjectState& st = objects_[row];
    Result<MovingPoint> mp = st.tail.Materialize();
    MODB_RETURN_IF_ERROR(mp.status());
    MODB_RETURN_IF_ERROR(
        rel_.SetValue(row, std::size_t(kTrailSlot), std::move(*mp)));
    if (st.tail.NumUnits() - st.tail.sealed() > options_.seal_units) {
      const std::size_t old_frontier = st.tail.sealed();
      const std::size_t frontier = st.tail.Seal();
      for (std::size_t u = old_frontier; u < frontier; ++u) {
        sealed_entries.push_back(
            {st.tail.units()[u].BoundingCube(), std::int64_t(row)});
      }
    }
  }
  if (!sealed_entries.empty()) {
    index_.AppendToDelta(sealed_entries, options_.fanout);
  }
  RebuildMem();
  if (index_.DeltaEntries() >= options_.merge_threshold) {
    index_.MergeInline(options_.fanout);
  }
  MODB_COUNTER_ADD("ingest.fixes", fixes.size());
  MODB_COUNTER_INC("ingest.batches");
  return Status::OK();
}

void LiveRelation::SealAll() {
  std::vector<RTree3D::Entry> sealed_entries;
  for (std::size_t row = 0; row < objects_.size(); ++row) {
    TailSeries& tail = objects_[row].tail;
    const std::size_t old_frontier = tail.sealed();
    const std::size_t frontier = tail.Seal();
    for (std::size_t u = old_frontier; u < frontier; ++u) {
      sealed_entries.push_back(
          {tail.units()[u].BoundingCube(), std::int64_t(row)});
    }
  }
  if (!sealed_entries.empty()) {
    index_.AppendToDelta(sealed_entries, options_.fanout);
  }
  RebuildMem();
  index_.MergeInline(options_.fanout);
}

void LiveRelation::RebuildMem() {
  std::vector<RTree3D::Entry> mem;
  for (std::size_t row = 0; row < objects_.size(); ++row) {
    const TailSeries& tail = objects_[row].tail;
    const std::vector<UPoint>& units = tail.units();
    for (std::size_t u = tail.sealed(); u < units.size(); ++u) {
      mem.push_back({units[u].BoundingCube(), std::int64_t(row)});
    }
  }
  index_.SetMem(std::move(mem));
}

std::string LiveRelation::EncodeManifest() const {
  std::string out;
  out.append(kManifestMagic, sizeof kManifestMagic);
  AppendU32(&out, kManifestVersion);
  AppendU32(&out, std::uint32_t(objects_.size()));
  for (std::size_t row = 0; row < objects_.size(); ++row) {
    const std::string& id =
        std::get<StringValue>(rel_.tuple(row)[std::size_t(kIdSlot)]).value();
    const TailSeries& tail = objects_[row].tail;
    AppendU32(&out, std::uint32_t(id.size()));
    out += id;
    out.push_back(tail.NumUnits() > 0 ? 1 : 0);
    AppendF64(&out, tail.last_time());
    AppendF64(&out, tail.last_point().x);
    AppendF64(&out, tail.last_point().y);
  }
  return out;
}

Status LiveRelation::AttachStore(VersionedSpillStore* store) {
  if (store_ != nullptr) {
    return Status::FailedPrecondition("live relation " + rel_.name() +
                                      " already has a store attached");
  }
  if (store->NumRoots() == 0) {
    if (objects_.size() > kMaxStoredObjects) {
      return Status::ResourceExhausted(
          "live relation " + rel_.name() + " exceeds the store cap of " +
          std::to_string(kMaxStoredObjects) + " objects");
    }
    store_ = store;
    persisted_objects_ = 0;
    manifest_root_exists_ = false;
    return Status::OK();
  }
  if (!objects_.empty()) {
    return Status::FailedPrecondition(
        "a non-empty store can only be attached to a fresh live relation");
  }
  return RecoverFrom(store);
}

Status LiveRelation::RecoverFrom(VersionedSpillStore* store) {
  Result<std::string> manifest = store->ReadRootBlob(0);
  MODB_RETURN_IF_ERROR(manifest.status());
  std::string_view s = *manifest;
  if (s.size() < sizeof kManifestMagic ||
      std::memcmp(s.data(), kManifestMagic, sizeof kManifestMagic) != 0) {
    return BadManifest("bad magic");
  }
  std::size_t off = sizeof kManifestMagic;
  std::uint32_t version = 0, count = 0;
  if (!ReadU32(s, &off, &version)) return BadManifest("truncated version");
  if (version != kManifestVersion) {
    return BadManifest("unknown version " + std::to_string(version));
  }
  if (!ReadU32(s, &off, &count)) return BadManifest("truncated object count");
  if (store->NumRoots() != std::size_t(count) + 1) {
    return BadManifest("object count " + std::to_string(count) +
                       " disagrees with " + std::to_string(store->NumRoots()) +
                       " store roots");
  }

  std::vector<RTree3D::Entry> base;
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint32_t id_len = 0;
    if (!ReadU32(s, &off, &id_len)) return BadManifest("truncated id length");
    if (s.size() - off < std::size_t(id_len) + 1) {
      return BadManifest("truncated object");
    }
    std::string id(s.substr(off, id_len));
    off += id_len;
    const bool has_units = s[off++] != 0;
    double last_t = 0, last_x = 0, last_y = 0;
    if (!ReadF64(s, &off, &last_t) || !ReadF64(s, &off, &last_x) ||
        !ReadF64(s, &off, &last_y)) {
      return BadManifest("truncated last fix");
    }
    if (rows_.count(id) != 0) return BadManifest("duplicate object id " + id);

    const std::size_t row = objects_.size();
    ObjectState st;
    MovingPoint trail;
    if (has_units) {
      Result<MovingPoint> mp = store->LoadRoot<MovingPoint>(i + 1);
      MODB_RETURN_IF_ERROR(mp.status());
      Result<TailSeries> tail =
          TailSeries::Resume(*mp, last_t, Point(last_x, last_y));
      MODB_RETURN_IF_ERROR(tail.status());
      st.tail = std::move(*tail);
      trail = std::move(*mp);
      // Resume leaves only the newest unit hot; everything below the
      // frontier is immutable and goes straight into base.
      for (std::size_t u = 0; u < st.tail.sealed(); ++u) {
        base.push_back(
            {st.tail.units()[u].BoundingCube(), std::int64_t(row)});
      }
    } else {
      MODB_RETURN_IF_ERROR(st.tail.Absorb(last_t, Point(last_x, last_y)));
    }
    Tuple tuple;
    tuple.emplace_back(StringValue(id));
    tuple.emplace_back(std::move(trail));
    MODB_RETURN_IF_ERROR(rel_.Insert(std::move(tuple)));
    objects_.push_back(std::move(st));
    rows_.emplace(std::move(id), row);
  }
  if (off != s.size()) return BadManifest("trailing bytes");

  index_.ResetBase(std::move(base), options_.fanout);
  RebuildMem();
  store_ = store;
  persisted_objects_ = objects_.size();
  manifest_root_exists_ = true;
  MODB_COUNTER_INC("ingest.recoveries");
  return Status::OK();
}

Status LiveRelation::Persist() {
  if (store_ == nullptr) {
    return Status::FailedPrecondition("live relation " + rel_.name() +
                                      " has no store attached");
  }
  std::lock_guard<std::mutex> persist_lock(persist_mu_);
  const std::string manifest = EncodeManifest();
  if (!manifest_root_exists_) {
    Result<std::size_t> root =
        store_->StageBlob(manifest, SpillValueType::kOpaque);
    MODB_RETURN_IF_ERROR(root.status());
    manifest_root_exists_ = true;
  } else {
    MODB_RETURN_IF_ERROR(
        store_->RestageBlob(0, manifest, SpillValueType::kOpaque));
  }
  for (std::size_t row = 0; row < objects_.size(); ++row) {
    ObjectState& st = objects_[row];
    const bool is_new_root = row >= persisted_objects_;
    if (!is_new_root && !st.dirty) continue;
    if (st.tail.NumUnits() == 0) {
      if (is_new_root) {
        MODB_RETURN_IF_ERROR(
            store_->StageBlob(kPlaceholderBlob, SpillValueType::kOpaque)
                .status());
      } else {
        MODB_RETURN_IF_ERROR(store_->RestageBlob(
            row + 1, kPlaceholderBlob, SpillValueType::kOpaque));
      }
    } else {
      Result<MovingPoint> mp = st.tail.Materialize();
      MODB_RETURN_IF_ERROR(mp.status());
      if (is_new_root) {
        MODB_RETURN_IF_ERROR(store_->StageValue(*mp).status());
      } else {
        MODB_RETURN_IF_ERROR(store_->RestageValue(row + 1, *mp));
      }
    }
  }
  MODB_RETURN_IF_ERROR(store_->Commit());
  persisted_objects_ = objects_.size();
  for (ObjectState& st : objects_) st.dirty = false;
  MODB_COUNTER_INC("ingest.persists");
  return Status::OK();
}

}  // namespace ingest
}  // namespace modb
