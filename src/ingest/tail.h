// The live append path for moving points (ROADMAP item 1): a per-object
// mutable *tail* of upoint units that absorbs GPS fixes one at a time
// and stays unit-for-unit BITWISE identical to bulk-building the same
// fix sequence through MappingBuilder with the generator slicing
// convention (trajectory_gen.cc): interior units right-open, the last
// unit right-closed, coefficients from UPoint::FromEndpoints.
//
// Why bitwise identity is achievable incrementally:
//   * FromEndpoints derives the motion coefficients from the interval's
//     numeric endpoints and the two positions only — interval
//     *closedness* never enters the arithmetic. So re-deriving a unit
//     after flipping its right bound open (because a successor arrived)
//     cannot change its coefficients.
//   * MappingBuilder::Append's merge rule (adjacent intervals + equal
//     motion ⇒ one unit carrying the NEW unit's coefficients over the
//     merged interval) is a pure function of the previous unit and the
//     appended one; Absorb replicates it verbatim.
//   * A unit's BoundingCube is also closedness-independent, so a right
//     bound flip never moves an index entry.
//
// Consequence (the identity theorem the differential tests enforce):
// after absorbing fixes (t_0,p_0)..(t_k,p_k) in order, units() equals —
// byte for byte — what MappingBuilder produces for the unit sequence
//   FromEndpoints([t_i, t_{i+1}) right-open except the last, p_i, p_{i+1})
// and therefore every query over the incrementally built state returns
// byte-identical results to the batch-built one.
//
// Sealing: sealed() is the index-layer frontier — units below it are
// frozen (Absorb only ever mutates the LAST unit: a right-bound flip,
// which keeps the cube, or a motion-equal merge). Seal() advances the
// frontier to size-1, always keeping the newest unit "hot", so sealed
// units can be handed to an immutable index run and never touched again.

#ifndef MODB_INGEST_TAIL_H_
#define MODB_INGEST_TAIL_H_

#include <cstddef>
#include <vector>

#include "core/status.h"
#include "spatial/point.h"
#include "temporal/moving.h"
#include "temporal/upoint.h"

namespace modb {
namespace ingest {

class TailSeries {
 public:
  TailSeries() = default;

  /// Absorbs one fix. The first fix only records an anchor (a linear
  /// unit needs two observations); every later fix must be strictly
  /// after the previous one — a stale or duplicate timestamp is
  /// OutOfRange and leaves the tail untouched.
  Status Absorb(Instant t, const Point& p);

  /// The units built so far: interior units right-open, the last unit
  /// right-closed (empty until the second fix).
  const std::vector<UPoint>& units() const { return units_; }
  std::size_t NumUnits() const { return units_.size(); }

  bool has_fix() const { return has_fix_; }
  Instant last_time() const { return last_t_; }
  const Point& last_point() const { return last_p_; }

  /// Frontier of immutable units: units_[0, sealed()) will never change
  /// again. Always < NumUnits() while the tail is non-empty.
  std::size_t sealed() const { return sealed_; }

  /// Advances the frontier to NumUnits() - 1 (the newest unit stays
  /// mutable — the next Absorb may flip or merge into it). Returns the
  /// new frontier.
  std::size_t Seal();

  /// The full trajectory as a validated minimal mapping (empty mapping
  /// with fewer than two fixes).
  Result<MovingPoint> Materialize() const;

  /// Rebuilds a tail from a persisted mapping plus the exact last fix
  /// (persisted separately: recomputing the anchor from the motion
  /// coefficients would round, breaking bitwise resume). Every persisted
  /// unit is immediately below the sealed frontier except the last.
  static Result<TailSeries> Resume(const MovingPoint& persisted, Instant last_t,
                                   const Point& last_p);

 private:
  std::vector<UPoint> units_;
  std::size_t sealed_ = 0;
  bool has_fix_ = false;
  Instant last_t_ = 0;
  Point last_p_;
};

}  // namespace ingest
}  // namespace modb

#endif  // MODB_INGEST_TAIL_H_
