// A live relation: the ingest-facing owner of one fleet of moving
// points. It glues together the three PR-8 pieces —
//
//   * per-object TailSeries (ingest/tail.h) absorbing fixes with the
//     bitwise-identity guarantee,
//   * the {id: string, trail: mpoint} Relation whose trail attribute is
//     re-materialized in place after every batch (so every existing
//     query operator works on live data unchanged), and
//   * the LSM-layered IndexSnapshot (index/delta_index.h) whose
//     base/delta/mem union always equals the bulk entry set over the
//     current relation: one {unit cube, row} entry per trajectory unit.
//
// Batch atomicity: Ingest validates the WHOLE batch first (per-object
// strictly increasing timestamps, both within the batch and against the
// tail frontier; finite coordinates; object cap when a store is
// attached) and only then mutates — a rejected batch leaves relation,
// tails and index untouched.
//
// Layer invariant (why live queries match batch queries byte for byte):
// Absorb only ever mutates the LAST unit of a tail, and a right-bound
// flip never moves that unit's cube; sealed units [0, frontier) are
// frozen. So entries handed to delta on Seal() stay valid forever, mem
// is rebuilt from the unsealed suffix after each batch, and
//   base ∪ delta ∪ mem  =  { (unit cube, row) : all units of all rows }
// which is exactly what RTree3D bulk-built over the relation holds. The
// probe's sort+dedupe makes the layering invisible (delta_index.h).
//
// Durability (optional VersionedSpillStore): root 0 is a manifest
// (object ids + the exact last fix per object — persisted verbatim
// because recomputing the anchor from motion coefficients would round,
// breaking bitwise resume); root i+1 is object row i's trajectory
// (kMovingPoint), or a 1-byte kOpaque placeholder while the object has
// a single fix and no units yet. Persist() restages dirty roots and
// commits — one epoch per acknowledged batch, so an ingest ack implies
// durability. Recovery reopens fully compacted: every persisted unit
// except each tail's newest lands in base, the newest units form mem,
// delta is empty. The index itself is never persisted — it is derived
// state, rebuilt from the trajectories on open.

#ifndef MODB_INGEST_LIVE_RELATION_H_
#define MODB_INGEST_LIVE_RELATION_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/status.h"
#include "db/relation.h"
#include "index/delta_index.h"
#include "ingest/tail.h"
#include "storage/recovery.h"

namespace modb {
namespace ingest {

/// One GPS fix as it arrives over the wire.
struct IngestFix {
  std::string object_id;
  Instant t = 0;
  double x = 0;
  double y = 0;
};

struct LiveOptions {
  /// Seal a tail once its unsealed suffix exceeds this many units.
  std::size_t seal_units = 8;
  /// Inline-compact delta into base once it holds this many entries.
  std::size_t merge_threshold = 1024;
  /// STR fanout for every bulk load this relation performs.
  int fanout = 16;
};

class LiveRelation {
 public:
  static constexpr int kIdSlot = 0;
  static constexpr int kTrailSlot = 1;
  /// Store layout is manifest + one root per object, and a store holds
  /// at most kMaxRootsPerStore roots.
  static constexpr std::size_t kMaxStoredObjects = kMaxRootsPerStore - 1;

  explicit LiveRelation(std::string name, LiveOptions options = LiveOptions());

  /// Absorbs a batch of fixes atomically (all or nothing), refreshes the
  /// relation's trail attributes, reseals/retiles the index layers, and
  /// inline-merges past the delta threshold. New object ids register
  /// rows on first sight.
  Status Ingest(const std::vector<IngestFix>& fixes);

  /// Seals every tail to its frontier and compacts delta into base (the
  /// drain path: makes in-memory state match what recovery rebuilds).
  void SealAll();

  /// Inline base+delta compaction (maintenance path when the off-lock
  /// protocol below is not needed).
  void MergeNow() { index_.MergeInline(options_.fanout); }

  /// Off-lock merge protocol passthrough: PrepareMerge under a reader
  /// lock, bulk-load with no lock, ApplyMerge under the writer lock.
  std::optional<MergePlan> PrepareMerge() const {
    return index_.PrepareMerge();
  }
  bool ApplyMerge(const MergePlan& plan, RTree3D merged) {
    return index_.ApplyMerge(plan, std::move(merged));
  }

  /// Attaches a durability store. An empty store is adopted as-is; a
  /// non-empty one must be attached to a fresh LiveRelation and is
  /// recovered into it (rows in persisted order, fully compacted
  /// index). The store must outlive this relation.
  Status AttachStore(VersionedSpillStore* store);
  bool HasStore() const { return store_ != nullptr; }

  /// Stages the manifest and every dirty object and commits one epoch.
  /// FailedPrecondition without an attached store.
  ///
  /// Concurrency: Persist serializes against other Persist calls on an
  /// internal mutex, and its reads of the in-memory state must not
  /// overlap an Ingest (Db::Apply guarantees this by mutating under the
  /// writer lock and persisting under the reader lock). It runs safely
  /// alongside queries — the commit's I/O no longer stalls readers.
  Status Persist();

  /// Pins the store's current committed epoch (empty pin when no store
  /// is attached). Queries take one per request so a concurrent
  /// Persist commit can never reclaim the pages their snapshot could
  /// still resolve blobs from.
  VersionedSpillStore::EpochPin PinStoreEpoch() const {
    return store_ != nullptr ? store_->PinEpoch()
                             : VersionedSpillStore::EpochPin();
  }

  const Relation& relation() const { return rel_; }
  IndexLayersView View() const { return index_.View(); }
  const IndexSnapshot& index() const { return index_; }
  std::size_t NumObjects() const { return objects_.size(); }
  const LiveOptions& options() const { return options_; }
  std::uint64_t epoch() const { return store_ != nullptr ? store_->epoch() : 0; }

  /// Row of `object_id`, or nullopt.
  std::optional<std::size_t> RowOf(const std::string& object_id) const;
  const TailSeries& tail(std::size_t row) const { return objects_[row].tail; }

 private:
  struct ObjectState {
    TailSeries tail;
    /// Set by Ingest, cleared by Persist: this object's root is stale.
    bool dirty = false;
  };

  /// Registers a new object row (relation tuple + tail + row map).
  Result<std::size_t> AddObject(const std::string& object_id);
  /// Rebuilds the mem layer from every tail's unsealed suffix.
  void RebuildMem();
  std::string EncodeManifest() const;
  Status RecoverFrom(VersionedSpillStore* store);

  LiveOptions options_;
  Relation rel_;
  std::vector<ObjectState> objects_;  // row i <-> objects_[i]
  std::unordered_map<std::string, std::size_t> rows_;
  IndexSnapshot index_;

  VersionedSpillStore* store_ = nullptr;
  /// Objects whose roots exist in the store (committed or staged);
  /// rows >= this stage fresh roots on the next Persist.
  std::size_t persisted_objects_ = 0;
  bool manifest_root_exists_ = false;
  /// Serializes Persist against itself (writer-vs-writer); readers are
  /// never behind it.
  std::mutex persist_mu_;
};

}  // namespace ingest
}  // namespace modb

#endif  // MODB_INGEST_LIVE_RELATION_H_
