// A deliberately small relational layer demonstrating the paper's claim
// that the spatio-temporal types "can be plugged as attribute types into
// any DBMS data model". Enough machinery to express the two Section-2
// queries over the planes relation.

#ifndef MODB_DB_RELATION_H_
#define MODB_DB_RELATION_H_

#include <cstddef>
#include <string>
#include <vector>

#include "core/status.h"
#include "db/value.h"

namespace modb {

/// An attribute declaration: name and type.
struct AttributeDef {
  std::string name;
  AttributeType type;
};

/// A relation schema.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<AttributeDef> attributes)
      : attributes_(std::move(attributes)) {}

  std::size_t NumAttributes() const { return attributes_.size(); }
  const std::vector<AttributeDef>& attributes() const { return attributes_; }
  const AttributeDef& attribute(std::size_t i) const { return attributes_[i]; }

  /// Index of the attribute named `name`, or -1.
  int IndexOf(const std::string& name) const;

  /// Schema of the cartesian product, prefixing attribute names.
  static Schema Concat(const Schema& a, const std::string& prefix_a,
                       const Schema& b, const std::string& prefix_b);

 private:
  std::vector<AttributeDef> attributes_;
};

/// A tuple: one AttributeValue per schema attribute.
using Tuple = std::vector<AttributeValue>;

/// A relation: schema + tuples. Insertion is type checked.
class Relation {
 public:
  Relation() = default;
  Relation(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  std::size_t NumTuples() const { return tuples_.size(); }
  const std::vector<Tuple>& tuples() const { return tuples_; }
  const Tuple& tuple(std::size_t i) const { return tuples_[i]; }

  /// Appends a tuple after checking arity and attribute types.
  Status Insert(Tuple tuple);

  /// Replaces one attribute of an existing tuple, type checked against
  /// the schema (the live-ingest refresh path: a tail's trajectory
  /// attribute is re-materialized in place after each absorbed batch).
  Status SetValue(std::size_t row, std::size_t slot, AttributeValue value);

 private:
  std::string name_;
  Schema schema_;
  std::vector<Tuple> tuples_;
};

}  // namespace modb

#endif  // MODB_DB_RELATION_H_
