// Attribute values for the relational embedding (Section 2): the data
// types of Table 2 plugged into a relation schema as abstract data types,
// exactly as in the `planes(airline: string, id: string, flight: mpoint)`
// example.

#ifndef MODB_DB_VALUE_H_
#define MODB_DB_VALUE_H_

#include <string>
#include <variant>

#include "core/base_types.h"
#include "core/range_set.h"
#include "spatial/line.h"
#include "spatial/points.h"
#include "spatial/region.h"
#include "temporal/moving.h"

namespace modb {

enum class AttributeType {
  kInt,
  kReal,
  kBool,
  kString,
  kPoint,
  kPoints,
  kLine,
  kRegion,
  kPeriods,
  kMovingBool,
  kMovingInt,
  kMovingString,
  kMovingReal,
  kMovingPoint,
  kMovingPoints,
  kMovingLine,
  kMovingRegion,
};

const char* AttributeTypeName(AttributeType type);

/// One attribute value; the variant alternatives correspond 1:1 to
/// AttributeType.
using AttributeValue =
    std::variant<IntValue, RealValue, BoolValue, StringValue, Point, Points,
                 Line, Region, Periods, MovingBool, MovingInt, MovingString,
                 MovingReal, MovingPoint, MovingPoints, MovingLine,
                 MovingRegion>;

/// The dynamic type of a value.
AttributeType TypeOf(const AttributeValue& value);

}  // namespace modb

#endif  // MODB_DB_VALUE_H_
