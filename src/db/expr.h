// A typed expression language over relations — the "query language"
// side of the paper's Section 2: the spatio-temporal operations become
// callable expressions over attributes, so the example queries read like
// their SQL originals:
//
//   Q1 predicate:
//     And(Eq(Attr("airline"), Lit("Lufthansa")),
//         Gt(Call("length", {Call("trajectory", {Attr("flight")})}),
//            Lit(5000.0)))
//
//   Q2 predicate (on the join schema):
//     Lt(Call("initial_val",
//             {Call("atmin", {Call("distance", {Attr("p.flight"),
//                                               Attr("q.flight")})})}),
//        Lit(0.5))
//
// Expressions are type checked against the schema before evaluation;
// every operation dispatches on its argument types exactly like the
// overloaded operations of the abstract model.

#ifndef MODB_DB_EXPR_H_
#define MODB_DB_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "core/status.h"
#include "db/relation.h"

namespace modb {

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// An expression node: attribute reference, literal, or operation call.
class Expr {
 public:
  enum class Kind { kAttr, kConst, kCall };

  static ExprPtr MakeAttr(std::string name);
  static ExprPtr MakeConst(AttributeValue value);
  static ExprPtr MakeCall(std::string op, std::vector<ExprPtr> args);

  Kind kind() const { return kind_; }
  const std::string& name() const { return name_; }
  const AttributeValue& constant() const { return constant_; }
  const std::vector<ExprPtr>& args() const { return args_; }

 private:
  Kind kind_;
  std::string name_;           // Attribute name or operation name.
  AttributeValue constant_{};  // For kConst.
  std::vector<ExprPtr> args_;  // For kCall.
};

// -- convenience constructors -------------------------------------------------

ExprPtr Attr(std::string name);
ExprPtr Lit(double v);
ExprPtr Lit(const char* s);
ExprPtr Lit(bool v);
ExprPtr Lit(int64_t v);
ExprPtr Lit(AttributeValue v);
ExprPtr Call(std::string op, std::vector<ExprPtr> args);

ExprPtr And(ExprPtr a, ExprPtr b);
ExprPtr Or(ExprPtr a, ExprPtr b);
ExprPtr NotE(ExprPtr a);
ExprPtr Eq(ExprPtr a, ExprPtr b);
ExprPtr Lt(ExprPtr a, ExprPtr b);
ExprPtr Le(ExprPtr a, ExprPtr b);
ExprPtr Gt(ExprPtr a, ExprPtr b);
ExprPtr Ge(ExprPtr a, ExprPtr b);

/// Infers the result type of `expr` against `schema`; fails on unknown
/// attributes, unknown operations, or argument-type mismatches.
Result<AttributeType> InferType(const Expr& expr, const Schema& schema);

/// Evaluates `expr` on one tuple. The expression should be type checked
/// first; evaluation re-verifies as it dispatches.
Result<AttributeValue> Eval(const Expr& expr, const Schema& schema,
                            const Tuple& tuple);

/// σ with a boolean expression.
Result<Relation> SelectWhere(const Relation& rel, const ExprPtr& predicate);

/// Join with a boolean expression over the concatenated schema
/// (attributes prefixed "<a.name>." / "<b.name>."). Self-join pairs can
/// be deduplicated with `dedup_self_pairs`.
Result<Relation> JoinWhere(const Relation& a, const Relation& b,
                           const ExprPtr& predicate,
                           bool dedup_self_pairs = false);

/// The operations understood by Call, for documentation/tests.
std::vector<std::string> SupportedOperations();

}  // namespace modb

#endif  // MODB_DB_EXPR_H_
