#include "db/expr.h"

#include <utility>

#include "spatial/spatial_ops.h"
#include "temporal/lifted_ops.h"
#include "temporal/mline_ops.h"
#include "temporal/mregion_ops.h"

namespace modb {

namespace {

using AT = AttributeType;

bool IsNumeric(AT t) { return t == AT::kInt || t == AT::kReal; }

// Numeric accessor with int → real coercion.
Result<double> AsReal(const AttributeValue& v) {
  if (TypeOf(v) == AT::kReal) {
    const RealValue& r = std::get<RealValue>(v);
    if (!r.defined()) return Status::FailedPrecondition("undefined real");
    return r.value();
  }
  if (TypeOf(v) == AT::kInt) {
    const IntValue& i = std::get<IntValue>(v);
    if (!i.defined()) return Status::FailedPrecondition("undefined int");
    return double(i.value());
  }
  return Status::InvalidArgument("expected a numeric value");
}

Result<bool> AsBool(const AttributeValue& v) {
  if (TypeOf(v) != AT::kBool) {
    return Status::InvalidArgument("expected a bool value");
  }
  const BoolValue& b = std::get<BoolValue>(v);
  if (!b.defined()) return Status::FailedPrecondition("undefined bool");
  return b.value();
}

Status WrongArgs(const std::string& op) {
  return Status::InvalidArgument("operation '" + op +
                                 "' does not accept these argument types");
}

double PeriodsDuration(const Periods& p) {
  double total = 0;
  for (const TimeInterval& iv : p.intervals()) total += Duration(iv);
  return total;
}

}  // namespace

// -- construction -------------------------------------------------------------

ExprPtr Expr::MakeAttr(std::string name) {
  auto e = std::make_shared<Expr>();
  e->kind_ = Kind::kAttr;
  e->name_ = std::move(name);
  return e;
}

ExprPtr Expr::MakeConst(AttributeValue value) {
  auto e = std::make_shared<Expr>();
  e->kind_ = Kind::kConst;
  e->constant_ = std::move(value);
  return e;
}

ExprPtr Expr::MakeCall(std::string op, std::vector<ExprPtr> args) {
  auto e = std::make_shared<Expr>();
  e->kind_ = Kind::kCall;
  e->name_ = std::move(op);
  e->args_ = std::move(args);
  return e;
}

ExprPtr Attr(std::string name) { return Expr::MakeAttr(std::move(name)); }
ExprPtr Lit(double v) { return Expr::MakeConst(RealValue(v)); }
ExprPtr Lit(const char* s) {
  return Expr::MakeConst(StringValue(std::string(s)));
}
ExprPtr Lit(bool v) { return Expr::MakeConst(BoolValue(v)); }
ExprPtr Lit(int64_t v) { return Expr::MakeConst(IntValue(v)); }
ExprPtr Lit(AttributeValue v) { return Expr::MakeConst(std::move(v)); }
ExprPtr Call(std::string op, std::vector<ExprPtr> args) {
  return Expr::MakeCall(std::move(op), std::move(args));
}

ExprPtr And(ExprPtr a, ExprPtr b) { return Call("and", {a, b}); }
ExprPtr Or(ExprPtr a, ExprPtr b) { return Call("or", {a, b}); }
ExprPtr NotE(ExprPtr a) { return Call("not", {a}); }
ExprPtr Eq(ExprPtr a, ExprPtr b) { return Call("eq", {a, b}); }
ExprPtr Lt(ExprPtr a, ExprPtr b) { return Call("lt", {a, b}); }
ExprPtr Le(ExprPtr a, ExprPtr b) { return Call("le", {a, b}); }
ExprPtr Gt(ExprPtr a, ExprPtr b) { return Call("gt", {a, b}); }
ExprPtr Ge(ExprPtr a, ExprPtr b) { return Call("ge", {a, b}); }

// -- type inference -----------------------------------------------------------

namespace {

Result<AT> InferCall(const std::string& op, const std::vector<AT>& a) {
  const std::size_t n = a.size();
  // Unary.
  if (op == "trajectory" && n == 1 && a[0] == AT::kMovingPoint) {
    return AT::kLine;
  }
  if (op == "length" && n == 1) {
    if (a[0] == AT::kLine) return AT::kReal;
    if (a[0] == AT::kMovingLine) return AT::kMovingReal;
  }
  if ((op == "area" || op == "perimeter") && n == 1) {
    if (a[0] == AT::kRegion) return AT::kReal;
    if (a[0] == AT::kMovingRegion) return AT::kMovingReal;
  }
  if (op == "traversed" && n == 1 &&
      (a[0] == AT::kMovingRegion || a[0] == AT::kMovingLine)) {
    return AT::kRegion;
  }
  if (op == "speed" && n == 1 && a[0] == AT::kMovingPoint) {
    return AT::kMovingReal;
  }
  if ((op == "atmin" || op == "atmax") && n == 1 && a[0] == AT::kMovingReal) {
    return AT::kMovingReal;
  }
  if ((op == "initial_val" || op == "final_val") && n == 1) {
    if (a[0] == AT::kMovingReal) return AT::kReal;
    if (a[0] == AT::kMovingPoint) return AT::kPoint;
    if (a[0] == AT::kMovingBool) return AT::kBool;
  }
  if ((op == "initial_inst" || op == "final_inst") && n == 1 &&
      (a[0] == AT::kMovingReal || a[0] == AT::kMovingPoint ||
       a[0] == AT::kMovingBool)) {
    return AT::kReal;
  }
  if ((op == "min" || op == "max") && n == 1 && a[0] == AT::kMovingReal) {
    return AT::kReal;
  }
  if (op == "deftime" && n == 1 &&
      (a[0] == AT::kMovingBool || a[0] == AT::kMovingReal ||
       a[0] == AT::kMovingPoint || a[0] == AT::kMovingRegion)) {
    return AT::kPeriods;
  }
  if (op == "duration" && n == 1 && a[0] == AT::kPeriods) return AT::kReal;
  if (op == "when_true" && n == 1 && a[0] == AT::kMovingBool) {
    return AT::kPeriods;
  }
  if (op == "not" && n == 1) {
    if (a[0] == AT::kBool) return AT::kBool;
    if (a[0] == AT::kMovingBool) return AT::kMovingBool;
  }
  // Binary.
  if (op == "distance" && n == 2) {
    if (a[0] == AT::kMovingPoint && a[1] == AT::kMovingPoint) {
      return AT::kMovingReal;
    }
    if (a[0] == AT::kMovingPoint && a[1] == AT::kPoint) {
      return AT::kMovingReal;
    }
    if (a[0] == AT::kPoint && a[1] == AT::kPoint) return AT::kReal;
  }
  if (op == "inside" && n == 2) {
    if (a[0] == AT::kMovingPoint && a[1] == AT::kMovingRegion) {
      return AT::kMovingBool;
    }
    if (a[0] == AT::kMovingPoint && a[1] == AT::kRegion) {
      return AT::kMovingBool;
    }
    if (a[0] == AT::kPoint && a[1] == AT::kMovingRegion) {
      return AT::kMovingBool;
    }
    if (a[0] == AT::kPoint && a[1] == AT::kRegion) return AT::kBool;
  }
  if (op == "passes" && n == 2) {
    if (a[0] == AT::kMovingPoint && a[1] == AT::kPoint) return AT::kBool;
    if (a[0] == AT::kMovingReal && IsNumeric(a[1])) return AT::kBool;
  }
  if (op == "present" && n == 2 && IsNumeric(a[1]) &&
      (a[0] == AT::kMovingBool || a[0] == AT::kMovingReal ||
       a[0] == AT::kMovingPoint || a[0] == AT::kMovingRegion)) {
    return AT::kBool;
  }
  if (op == "atinstant" && n == 2 && IsNumeric(a[1])) {
    switch (a[0]) {
      case AT::kMovingBool:
        return AT::kBool;
      case AT::kMovingReal:
        return AT::kReal;
      case AT::kMovingPoint:
        return AT::kPoint;
      case AT::kMovingRegion:
        return AT::kRegion;
      default:
        break;
    }
  }
  if ((op == "and" || op == "or") && n == 2) {
    if (a[0] == AT::kBool && a[1] == AT::kBool) return AT::kBool;
    if (a[0] == AT::kMovingBool && a[1] == AT::kMovingBool) {
      return AT::kMovingBool;
    }
  }
  if ((op == "lt" || op == "le" || op == "gt" || op == "ge" || op == "eq") &&
      n == 2) {
    if (IsNumeric(a[0]) && IsNumeric(a[1])) return AT::kBool;
    if (a[0] == AT::kMovingReal && IsNumeric(a[1])) return AT::kMovingBool;
    if (a[0] == AT::kMovingReal && a[1] == AT::kMovingReal) {
      return AT::kMovingBool;
    }
    if (op == "eq" && a[0] == a[1] &&
        (a[0] == AT::kString || a[0] == AT::kBool)) {
      return AT::kBool;
    }
  }
  return Status::InvalidArgument("no overload of '" + op + "' matches");
}

}  // namespace

Result<AttributeType> InferType(const Expr& expr, const Schema& schema) {
  switch (expr.kind()) {
    case Expr::Kind::kAttr: {
      int idx = schema.IndexOf(expr.name());
      if (idx < 0) return Status::NotFound("no attribute " + expr.name());
      return schema.attribute(std::size_t(idx)).type;
    }
    case Expr::Kind::kConst:
      return TypeOf(expr.constant());
    case Expr::Kind::kCall: {
      std::vector<AT> arg_types;
      for (const ExprPtr& arg : expr.args()) {
        Result<AT> t = InferType(*arg, schema);
        if (!t.ok()) return t.status();
        arg_types.push_back(*t);
      }
      return InferCall(expr.name(), arg_types);
    }
  }
  return Status::Internal("corrupt expression node");
}

// -- evaluation ---------------------------------------------------------------

namespace {

CmpOp ToCmpOp(const std::string& op) {
  if (op == "lt") return CmpOp::kLt;
  if (op == "le") return CmpOp::kLe;
  if (op == "gt") return CmpOp::kGt;
  if (op == "ge") return CmpOp::kGe;
  return CmpOp::kEq;
}

Result<AttributeValue> EvalCall(const std::string& op,
                                std::vector<AttributeValue> a) {
  const std::size_t n = a.size();
  auto type = [&](std::size_t i) { return TypeOf(a[i]); };

  if (op == "trajectory" && n == 1 && type(0) == AT::kMovingPoint) {
    return AttributeValue(Trajectory(std::get<MovingPoint>(a[0])));
  }
  if (op == "length" && n == 1) {
    if (type(0) == AT::kLine) {
      return AttributeValue(RealValue(std::get<Line>(a[0]).Length()));
    }
    if (type(0) == AT::kMovingLine) {
      Result<MovingReal> r = Length(std::get<MovingLine>(a[0]));
      if (!r.ok()) return r.status();
      return AttributeValue(std::move(*r));
    }
  }
  if (op == "area" && n == 1) {
    if (type(0) == AT::kRegion) {
      return AttributeValue(RealValue(std::get<Region>(a[0]).Area()));
    }
    if (type(0) == AT::kMovingRegion) {
      Result<MovingReal> r = Area(std::get<MovingRegion>(a[0]));
      if (!r.ok()) return r.status();
      return AttributeValue(std::move(*r));
    }
  }
  if (op == "perimeter" && n == 1) {
    if (type(0) == AT::kRegion) {
      return AttributeValue(RealValue(std::get<Region>(a[0]).Perimeter()));
    }
    if (type(0) == AT::kMovingRegion) {
      Result<MovingReal> r = PerimeterApprox(std::get<MovingRegion>(a[0]));
      if (!r.ok()) return r.status();
      return AttributeValue(std::move(*r));
    }
  }
  if (op == "traversed" && n == 1) {
    if (type(0) == AT::kMovingRegion) {
      Result<Region> r = Traversed(std::get<MovingRegion>(a[0]));
      if (!r.ok()) return r.status();
      return AttributeValue(std::move(*r));
    }
    if (type(0) == AT::kMovingLine) {
      Result<Region> r = Traversed(std::get<MovingLine>(a[0]));
      if (!r.ok()) return r.status();
      return AttributeValue(std::move(*r));
    }
  }
  if (op == "speed" && n == 1 && type(0) == AT::kMovingPoint) {
    Result<MovingReal> r = Speed(std::get<MovingPoint>(a[0]));
    if (!r.ok()) return r.status();
    return AttributeValue(std::move(*r));
  }
  if ((op == "atmin" || op == "atmax") && n == 1 &&
      type(0) == AT::kMovingReal) {
    Result<MovingReal> r = op == "atmin" ? AtMin(std::get<MovingReal>(a[0]))
                                         : AtMax(std::get<MovingReal>(a[0]));
    if (!r.ok()) return r.status();
    return AttributeValue(std::move(*r));
  }
  if ((op == "initial_val" || op == "final_val" || op == "initial_inst" ||
       op == "final_inst") &&
      n == 1) {
    bool initial = op.rfind("initial", 0) == 0;
    bool want_val = op.ends_with("_val");
    auto project = [&](auto intime) -> Result<AttributeValue> {
      if (!intime.defined) {
        return Status::FailedPrecondition("initial/final of empty moving");
      }
      if (!want_val) return AttributeValue(RealValue(intime.inst()));
      using V = decltype(intime.value);
      if constexpr (std::is_same_v<V, double>) {
        return AttributeValue(RealValue(intime.val()));
      } else if constexpr (std::is_same_v<V, bool>) {
        return AttributeValue(BoolValue(intime.val()));
      } else {
        return AttributeValue(intime.val());
      }
    };
    if (type(0) == AT::kMovingReal) {
      const auto& m = std::get<MovingReal>(a[0]);
      return project(initial ? m.Initial() : m.Final());
    }
    if (type(0) == AT::kMovingPoint) {
      const auto& m = std::get<MovingPoint>(a[0]);
      return project(initial ? m.Initial() : m.Final());
    }
    if (type(0) == AT::kMovingBool) {
      const auto& m = std::get<MovingBool>(a[0]);
      return project(initial ? m.Initial() : m.Final());
    }
  }
  if ((op == "min" || op == "max") && n == 1 && type(0) == AT::kMovingReal) {
    auto v = op == "min" ? MinValue(std::get<MovingReal>(a[0]))
                         : MaxValue(std::get<MovingReal>(a[0]));
    if (!v) return Status::FailedPrecondition("min/max of empty moving real");
    return AttributeValue(RealValue(*v));
  }
  if (op == "deftime" && n == 1) {
    switch (type(0)) {
      case AT::kMovingBool:
        return AttributeValue(std::get<MovingBool>(a[0]).DefTime());
      case AT::kMovingReal:
        return AttributeValue(std::get<MovingReal>(a[0]).DefTime());
      case AT::kMovingPoint:
        return AttributeValue(std::get<MovingPoint>(a[0]).DefTime());
      case AT::kMovingRegion:
        return AttributeValue(std::get<MovingRegion>(a[0]).DefTime());
      default:
        break;
    }
  }
  if (op == "duration" && n == 1 && type(0) == AT::kPeriods) {
    return AttributeValue(RealValue(PeriodsDuration(std::get<Periods>(a[0]))));
  }
  if (op == "when_true" && n == 1 && type(0) == AT::kMovingBool) {
    return AttributeValue(WhenTrue(std::get<MovingBool>(a[0])));
  }
  if (op == "not" && n == 1) {
    if (type(0) == AT::kBool) {
      Result<bool> b = AsBool(a[0]);
      if (!b.ok()) return b.status();
      return AttributeValue(BoolValue(!*b));
    }
    if (type(0) == AT::kMovingBool) {
      return AttributeValue(Not(std::get<MovingBool>(a[0])));
    }
  }
  if (op == "distance" && n == 2) {
    if (type(0) == AT::kMovingPoint && type(1) == AT::kMovingPoint) {
      Result<MovingReal> r = LiftedDistance(std::get<MovingPoint>(a[0]),
                                            std::get<MovingPoint>(a[1]));
      if (!r.ok()) return r.status();
      return AttributeValue(std::move(*r));
    }
    if (type(0) == AT::kMovingPoint && type(1) == AT::kPoint) {
      Result<MovingReal> r = LiftedDistance(std::get<MovingPoint>(a[0]),
                                            std::get<Point>(a[1]));
      if (!r.ok()) return r.status();
      return AttributeValue(std::move(*r));
    }
    if (type(0) == AT::kPoint && type(1) == AT::kPoint) {
      return AttributeValue(
          RealValue(Distance(std::get<Point>(a[0]), std::get<Point>(a[1]))));
    }
  }
  if (op == "inside" && n == 2) {
    if (type(0) == AT::kMovingPoint && type(1) == AT::kMovingRegion) {
      Result<MovingBool> r = Inside(std::get<MovingPoint>(a[0]),
                                    std::get<MovingRegion>(a[1]));
      if (!r.ok()) return r.status();
      return AttributeValue(std::move(*r));
    }
    if (type(0) == AT::kMovingPoint && type(1) == AT::kRegion) {
      Result<MovingBool> r =
          Inside(std::get<MovingPoint>(a[0]), std::get<Region>(a[1]));
      if (!r.ok()) return r.status();
      return AttributeValue(std::move(*r));
    }
    if (type(0) == AT::kPoint && type(1) == AT::kMovingRegion) {
      Result<MovingBool> r =
          Inside(std::get<Point>(a[0]), std::get<MovingRegion>(a[1]));
      if (!r.ok()) return r.status();
      return AttributeValue(std::move(*r));
    }
    if (type(0) == AT::kPoint && type(1) == AT::kRegion) {
      return AttributeValue(BoolValue(
          Inside(std::get<Point>(a[0]), std::get<Region>(a[1]))));
    }
  }
  if (op == "passes" && n == 2) {
    if (type(0) == AT::kMovingPoint && type(1) == AT::kPoint) {
      return AttributeValue(BoolValue(
          Passes(std::get<MovingPoint>(a[0]), std::get<Point>(a[1]))));
    }
    if (type(0) == AT::kMovingReal && IsNumeric(type(1))) {
      Result<double> v = AsReal(a[1]);
      if (!v.ok()) return v.status();
      return AttributeValue(
          BoolValue(Passes(std::get<MovingReal>(a[0]), *v)));
    }
  }
  if (op == "present" && n == 2 && IsNumeric(type(1))) {
    Result<double> t = AsReal(a[1]);
    if (!t.ok()) return t.status();
    switch (type(0)) {
      case AT::kMovingBool:
        return AttributeValue(BoolValue(std::get<MovingBool>(a[0]).Present(*t)));
      case AT::kMovingReal:
        return AttributeValue(BoolValue(std::get<MovingReal>(a[0]).Present(*t)));
      case AT::kMovingPoint:
        return AttributeValue(
            BoolValue(std::get<MovingPoint>(a[0]).Present(*t)));
      case AT::kMovingRegion:
        return AttributeValue(
            BoolValue(std::get<MovingRegion>(a[0]).Present(*t)));
      default:
        break;
    }
  }
  if (op == "atinstant" && n == 2 && IsNumeric(type(1))) {
    Result<double> t = AsReal(a[1]);
    if (!t.ok()) return t.status();
    auto undefined = [] {
      return Status::FailedPrecondition("atinstant outside the deftime");
    };
    switch (type(0)) {
      case AT::kMovingBool: {
        auto v = std::get<MovingBool>(a[0]).AtInstant(*t);
        if (!v.defined) return undefined();
        return AttributeValue(BoolValue(v.val()));
      }
      case AT::kMovingReal: {
        auto v = std::get<MovingReal>(a[0]).AtInstant(*t);
        if (!v.defined) return undefined();
        return AttributeValue(RealValue(v.val()));
      }
      case AT::kMovingPoint: {
        auto v = std::get<MovingPoint>(a[0]).AtInstant(*t);
        if (!v.defined) return undefined();
        return AttributeValue(v.val());
      }
      case AT::kMovingRegion: {
        auto v = std::get<MovingRegion>(a[0]).AtInstant(*t);
        if (!v.defined) return undefined();
        return AttributeValue(v.val());
      }
      default:
        break;
    }
  }
  if ((op == "and" || op == "or") && n == 2) {
    if (type(0) == AT::kBool && type(1) == AT::kBool) {
      Result<bool> x = AsBool(a[0]);
      Result<bool> y = AsBool(a[1]);
      if (!x.ok()) return x.status();
      if (!y.ok()) return y.status();
      return AttributeValue(
          BoolValue(op == "and" ? (*x && *y) : (*x || *y)));
    }
    if (type(0) == AT::kMovingBool && type(1) == AT::kMovingBool) {
      Result<MovingBool> r =
          op == "and"
              ? And(std::get<MovingBool>(a[0]), std::get<MovingBool>(a[1]))
              : Or(std::get<MovingBool>(a[0]), std::get<MovingBool>(a[1]));
      if (!r.ok()) return r.status();
      return AttributeValue(std::move(*r));
    }
  }
  if ((op == "lt" || op == "le" || op == "gt" || op == "ge" || op == "eq") &&
      n == 2) {
    if (IsNumeric(type(0)) && IsNumeric(type(1))) {
      Result<double> x = AsReal(a[0]);
      Result<double> y = AsReal(a[1]);
      if (!x.ok()) return x.status();
      if (!y.ok()) return y.status();
      bool v = op == "lt"   ? *x < *y
               : op == "le" ? *x <= *y
               : op == "gt" ? *x > *y
               : op == "ge" ? *x >= *y
                            : *x == *y;
      return AttributeValue(BoolValue(v));
    }
    if (type(0) == AT::kMovingReal && IsNumeric(type(1))) {
      Result<double> y = AsReal(a[1]);
      if (!y.ok()) return y.status();
      Result<MovingBool> r =
          Compare(std::get<MovingReal>(a[0]), *y, ToCmpOp(op));
      if (!r.ok()) return r.status();
      return AttributeValue(std::move(*r));
    }
    if (type(0) == AT::kMovingReal && type(1) == AT::kMovingReal) {
      Result<MovingBool> r = Compare(std::get<MovingReal>(a[0]),
                                     std::get<MovingReal>(a[1]), ToCmpOp(op));
      if (!r.ok()) return r.status();
      return AttributeValue(std::move(*r));
    }
    if (op == "eq" && type(0) == AT::kString && type(1) == AT::kString) {
      return AttributeValue(BoolValue(std::get<StringValue>(a[0]) ==
                                      std::get<StringValue>(a[1])));
    }
    if (op == "eq" && type(0) == AT::kBool && type(1) == AT::kBool) {
      return AttributeValue(BoolValue(std::get<BoolValue>(a[0]) ==
                                      std::get<BoolValue>(a[1])));
    }
  }
  return WrongArgs(op);
}

}  // namespace

Result<AttributeValue> Eval(const Expr& expr, const Schema& schema,
                            const Tuple& tuple) {
  switch (expr.kind()) {
    case Expr::Kind::kAttr: {
      int idx = schema.IndexOf(expr.name());
      if (idx < 0) return Status::NotFound("no attribute " + expr.name());
      return tuple[std::size_t(idx)];
    }
    case Expr::Kind::kConst:
      return expr.constant();
    case Expr::Kind::kCall: {
      std::vector<AttributeValue> args;
      args.reserve(expr.args().size());
      for (const ExprPtr& arg : expr.args()) {
        Result<AttributeValue> v = Eval(*arg, schema, tuple);
        if (!v.ok()) return v.status();
        args.push_back(std::move(*v));
      }
      return EvalCall(expr.name(), std::move(args));
    }
  }
  return Status::Internal("corrupt expression node");
}

Result<Relation> SelectWhere(const Relation& rel, const ExprPtr& predicate) {
  Result<AttributeType> t = InferType(*predicate, rel.schema());
  if (!t.ok()) return t.status();
  if (*t != AT::kBool) {
    return Status::InvalidArgument("selection predicate must be bool, got " +
                                   std::string(AttributeTypeName(*t)));
  }
  Relation out(rel.name() + "_sel", rel.schema());
  for (const Tuple& tuple : rel.tuples()) {
    Result<AttributeValue> v = Eval(*predicate, rel.schema(), tuple);
    if (!v.ok()) return v.status();
    Result<bool> b = AsBool(*v);
    if (!b.ok()) return b.status();
    if (*b) MODB_RETURN_IF_ERROR(out.Insert(tuple));
  }
  return out;
}

Result<Relation> JoinWhere(const Relation& a, const Relation& b,
                           const ExprPtr& predicate, bool dedup_self_pairs) {
  Schema joined = Schema::Concat(a.schema(), a.name() + ".", b.schema(),
                                 b.name() + ".");
  Result<AttributeType> t = InferType(*predicate, joined);
  if (!t.ok()) return t.status();
  if (*t != AT::kBool) {
    return Status::InvalidArgument("join predicate must be bool");
  }
  Relation out(a.name() + "_x_" + b.name(), joined);
  for (std::size_t i = 0; i < a.NumTuples(); ++i) {
    for (std::size_t j = 0; j < b.NumTuples(); ++j) {
      if (dedup_self_pairs && i >= j) continue;
      Tuple combined = a.tuple(i);
      combined.insert(combined.end(), b.tuple(j).begin(), b.tuple(j).end());
      Result<AttributeValue> v = Eval(*predicate, joined, combined);
      if (!v.ok()) return v.status();
      Result<bool> keep = AsBool(*v);
      if (!keep.ok()) return keep.status();
      if (*keep) MODB_RETURN_IF_ERROR(out.Insert(std::move(combined)));
    }
  }
  return out;
}

std::vector<std::string> SupportedOperations() {
  return {"trajectory", "length",    "area",       "perimeter", "traversed",
          "speed",      "atmin",     "atmax",      "initial_val",
          "final_val",  "initial_inst", "final_inst", "min",    "max",
          "deftime",    "duration",  "when_true",  "not",       "distance",
          "inside",     "passes",    "present",    "atinstant", "and",
          "or",         "lt",        "le",         "gt",        "ge",
          "eq"};
}

}  // namespace modb
