// Aggregation over relations: count/sum/avg/min/max of a real-valued
// expression, and grouping by a string attribute — enough to phrase the
// summary queries a moving objects database is typically asked ("average
// flight length per airline").

#ifndef MODB_DB_AGGREGATE_H_
#define MODB_DB_AGGREGATE_H_

#include <string>

#include "core/status.h"
#include "db/expr.h"

namespace modb {

enum class AggregateOp { kCount, kSum, kAvg, kMin, kMax };

/// Aggregates `expr` (must infer to a numeric type; ignored for kCount)
/// over all tuples. kMin/kMax/kAvg of an empty relation fail with
/// kFailedPrecondition; kCount/kSum yield 0.
Result<double> Aggregate(const Relation& rel, AggregateOp op,
                         const ExprPtr& expr = nullptr);

/// GROUP BY over a string attribute: returns a relation
/// (key: string, value: real) with `op` applied to `expr` per group.
/// Group keys appear in first-seen order.
Result<Relation> GroupBy(const Relation& rel, const std::string& key_attr,
                         AggregateOp op, const ExprPtr& expr = nullptr);

}  // namespace modb

#endif  // MODB_DB_AGGREGATE_H_
