// Relation persistence: every attribute value serializes to its flat
// representation (Section 4) prefixed with its type tag; a relation file
// is schema + tuples of tagged blobs. This closes the loop of the paper's
// DBMS-embedding story: moving objects stored as attribute values survive
// a round trip through secondary memory.

#ifndef MODB_DB_RELATION_IO_H_
#define MODB_DB_RELATION_IO_H_

#include <string>
#include <string_view>

#include "core/status.h"
#include "db/relation.h"

namespace modb {

/// Serializes one attribute value (type tag + flat blob).
Result<std::string> SerializeAttribute(const AttributeValue& value);

/// Inverse of SerializeAttribute.
Result<AttributeValue> DeserializeAttribute(std::string_view blob);

/// Writes the relation (name, schema, tuples) to a file.
Status SaveRelation(const Relation& rel, const std::string& path);

/// Reads a relation written by SaveRelation. All values are rebuilt
/// through the validating flat decoders.
Result<Relation> LoadRelation(const std::string& path);

/// The timeslice operator: evaluates every moving attribute at instant t,
/// yielding a relation of static values (undefined moving attributes
/// become undefined base values / empty spatial values; mpoint → point,
/// mregion → region, mreal → real, …).
Result<Relation> Timeslice(const Relation& rel, Instant t);

}  // namespace modb

#endif  // MODB_DB_RELATION_IO_H_
