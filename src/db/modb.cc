#include "db/modb.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <utility>

#include "core/interval.h"
#include "core/range_set.h"
#include "db/query.h"
#include "exec/pipeline.h"
#include "exec/planner.h"
#include "temporal/batch_ops.h"
#include "temporal/lifted_ops.h"
#include "temporal/moving.h"

namespace modb {
namespace {

// Resolves `attr` in `schema` and checks its declared type, naming the
// attribute, the relation, and both types on failure so a remote caller
// can fix the request from the message alone.
Result<int> ResolveSlot(const Relation& rel, const std::string& attr,
                        AttributeType want) {
  const int slot = rel.schema().IndexOf(attr);
  if (slot < 0) {
    return Status::InvalidArgument("relation '" + rel.name() +
                                   "' has no attribute '" + attr + "'");
  }
  const AttributeType got = rel.schema().attribute(slot).type;
  if (got != want) {
    return Status::InvalidArgument(
        "attribute '" + attr + "' of relation '" + rel.name() + "' is " +
        AttributeTypeName(got) + ", expected " + AttributeTypeName(want));
  }
  return slot;
}

// Lowers one FilterSpec to an exec::Predicate. The shape strings key the
// plan cache, so they identify the filter template (kind + slot), not
// its constants.
Result<exec::Predicate> LowerFilter(const Relation& rel,
                                    const FilterSpec& f) {
  exec::Predicate p;
  switch (f.kind) {
    case FilterSpec::Kind::kStringEquals: {
      Result<int> slot = ResolveSlot(rel, f.attr, AttributeType::kString);
      MODB_RETURN_IF_ERROR(slot.status());
      const int s = *slot;
      const std::string value = f.value;
      p.fn = [s, value](const Tuple& t) {
        return std::get<StringValue>(t[s]).value() == value;
      };
      p.shape = "modb.string_eq:" + std::to_string(s);
      return p;
    }
    case FilterSpec::Kind::kTrajectoryLengthAtLeast: {
      Result<int> slot = ResolveSlot(rel, f.attr, AttributeType::kMovingPoint);
      MODB_RETURN_IF_ERROR(slot.status());
      const int s = *slot;
      const double threshold = f.threshold;
      p.fn = [s, threshold](const Tuple& t) {
        return Trajectory(std::get<MovingPoint>(t[s])).Length() >= threshold;
      };
      p.shape = "modb.trajlen_ge:" + std::to_string(s);
      return p;
    }
    case FilterSpec::Kind::kPresentAt: {
      Result<int> slot = ResolveSlot(rel, f.attr, AttributeType::kMovingPoint);
      MODB_RETURN_IF_ERROR(slot.status());
      const int s = *slot;
      const Instant t0 = f.t0;
      p.fn = [s, t0](const Tuple& t) {
        return std::get<MovingPoint>(t[s]).Present(t0);
      };
      p.shape = "modb.present_at:" + std::to_string(s);
      p.window = exec::TimeWindow{s, t0, t0};
      return p;
    }
    case FilterSpec::Kind::kDeftimeIntersects: {
      Result<int> slot = ResolveSlot(rel, f.attr, AttributeType::kMovingPoint);
      MODB_RETURN_IF_ERROR(slot.status());
      if (!(f.t0 <= f.t1)) {
        return Status::InvalidArgument(
            "deftime_intersects window is empty: t0 = " +
            std::to_string(f.t0) + " > t1 = " + std::to_string(f.t1));
      }
      const int s = *slot;
      Result<Interval<Instant>> iv = Interval<Instant>::Closed(f.t0, f.t1);
      MODB_RETURN_IF_ERROR(iv.status());
      const Periods window = Periods::Of(*iv);
      p.fn = [s, window](const Tuple& t) {
        return std::get<MovingPoint>(t[s]).Present(window);
      };
      p.shape = "modb.deftime_x:" + std::to_string(s);
      p.window = exec::TimeWindow{s, f.t0, f.t1};
      return p;
    }
  }
  return Status::InvalidArgument("unknown filter kind " +
                                 std::to_string(int(f.kind)));
}

// ---- window aggregation (kWindowAggregate) --------------------------------

// Hard ceiling on emitted windows: one row each, so this bounds both
// the response size and the serial aggregation loop.
constexpr std::uint64_t kMaxWindows = std::uint64_t(1) << 20;

// A set of instants {t : lo <= t <= hi} with endpoint closedness — the
// working type of the exact window/unit/rect intersection. All three
// operand kinds lower to it: unit intervals (their own closedness),
// windows (closed-open), rect crossing ranges (closed).
struct TRange {
  double lo = 0;
  double hi = 0;
  bool lc = true;
  bool rc = true;
  bool empty = false;
};

TRange EmptyRange() {
  TRange r;
  r.empty = true;
  return r;
}

TRange IntersectRanges(const TRange& a, const TRange& b) {
  if (a.empty || b.empty) return EmptyRange();
  TRange r;
  if (a.lo > b.lo) {
    r.lo = a.lo;
    r.lc = a.lc;
  } else if (b.lo > a.lo) {
    r.lo = b.lo;
    r.lc = b.lc;
  } else {
    r.lo = a.lo;
    r.lc = a.lc && b.lc;
  }
  if (a.hi < b.hi) {
    r.hi = a.hi;
    r.rc = a.rc;
  } else if (b.hi < a.hi) {
    r.hi = b.hi;
    r.rc = b.rc;
  } else {
    r.hi = a.hi;
    r.rc = a.rc && b.rc;
  }
  // A degenerate instant survives only if BOTH operands actually
  // contain it — this is what makes a fix exactly on a window edge
  // count in exactly one window.
  if (r.lo > r.hi || (r.lo == r.hi && !(r.lc && r.rc))) return EmptyRange();
  return r;
}

// Time range where c0 + c1*t lies in [lo, hi] (closed): a closed
// interval for c1 != 0, everything or nothing for constant motion.
TRange AxisCrossingRange(double c0, double c1, double lo, double hi) {
  TRange r;
  if (c1 == 0) {
    if (c0 < lo || c0 > hi) return EmptyRange();
    r.lo = -std::numeric_limits<double>::infinity();
    r.hi = std::numeric_limits<double>::infinity();
    return r;
  }
  double a = (lo - c0) / c1;
  double b = (hi - c0) / c1;
  if (a > b) std::swap(a, b);
  r.lo = a;
  r.hi = b;
  return r;
}

TRange RangeOfInterval(const TimeInterval& iv) {
  TRange r;
  r.lo = iv.start();
  r.hi = iv.end();
  r.lc = iv.left_closed();
  r.rc = iv.right_closed();
  return r;
}

// Per-object accumulation over one window: presence inside the rect,
// plus distance traveled / time covered under the TEMPORAL clip only
// (the rect does not clip distance — documented in docs/INGEST.md).
struct WindowRowAgg {
  bool qualifies = false;
  double distance = 0;
  double covered = 0;
};

WindowRowAgg AggregateRowWindow(const MovingPoint& mp, const TRange& window,
                                bool has_rect, double min_x, double min_y,
                                double max_x, double max_y) {
  WindowRowAgg agg;
  for (const UPoint& u : mp.units()) {
    const TimeInterval& iv = u.interval();
    if (iv.end() < window.lo) continue;
    if (iv.start() > window.hi) break;
    const TRange clip = IntersectRanges(RangeOfInterval(iv), window);
    if (clip.empty) continue;
    const double dur = clip.hi - clip.lo;
    agg.distance += u.Speed() * dur;
    agg.covered += dur;
    if (!agg.qualifies) {
      if (!has_rect) {
        agg.qualifies = true;
      } else {
        const LinearMotion& m = u.motion();
        const TRange q = IntersectRanges(
            IntersectRanges(clip, AxisCrossingRange(m.x0, m.x1, min_x, max_x)),
            AxisCrossingRange(m.y0, m.y1, min_y, max_y));
        if (!q.empty) agg.qualifies = true;
      }
    }
  }
  return agg;
}

// The Q2 predicate template: ever closer than `dist`, optionally only
// distinct (i < j) pairs.
exec::JoinPred EverCloserPred(int slot_a, int slot_b, double dist,
                              bool distinct_pairs) {
  exec::JoinPred p;
  p.fn = [slot_a, slot_b, dist, distinct_pairs](
             const Tuple& a, std::size_t i, const Tuple& b, std::size_t j) {
    if (distinct_pairs && i >= j) return false;
    Result<MovingReal> d = LiftedDistance(std::get<MovingPoint>(a[slot_a]),
                                          std::get<MovingPoint>(b[slot_b]));
    if (!d.ok() || d->IsEmpty()) return false;
    Result<MovingReal> am = AtMin(*d);
    return am.ok() && !am->IsEmpty() && am->Initial().val() < dist;
  };
  p.shape = "modb.ever_closer:" + std::to_string(slot_a) + ":" +
            std::to_string(slot_b) + (distinct_pairs ? ":distinct" : "");
  return p;
}

}  // namespace

Status Db::Register(Relation rel) {
  if (rel.name().empty()) {
    return Status::InvalidArgument("relation name must be non-empty");
  }
  std::unique_lock lock(mu_);
  auto [it, inserted] = relations_.try_emplace(rel.name());
  if (!inserted) {
    return Status::FailedPrecondition("relation '" + rel.name() +
                                      "' is already registered");
  }
  it->second.rel = std::move(rel);
  return Status::OK();
}

Status Db::Drop(const std::string& name) {
  std::unique_lock lock(mu_);
  if (relations_.erase(name) == 0) {
    return Status::NotFound("no relation named '" + name + "'");
  }
  return Status::OK();
}

Status Db::BuildIndex(const std::string& relation, const std::string& attr) {
  std::unique_lock lock(mu_);
  auto it = relations_.find(relation);
  if (it == relations_.end()) {
    return Status::NotFound("no relation named '" + relation + "'");
  }
  if (it->second.live != nullptr) {
    return Status::FailedPrecondition(
        "relation '" + relation +
        "' is live and maintains its own layered index");
  }
  Result<int> slot =
      ResolveSlot(it->second.rel, attr, AttributeType::kMovingPoint);
  MODB_RETURN_IF_ERROR(slot.status());
  Result<RTree3D> tree = BuildMovingPointIndex(it->second.rel, *slot);
  MODB_RETURN_IF_ERROR(tree.status());
  it->second.indexes.insert_or_assign(*slot, *std::move(tree));
  return Status::OK();
}

std::vector<std::string> Db::RelationNames() const {
  std::shared_lock lock(mu_);
  std::vector<std::string> names;
  names.reserve(relations_.size());
  for (const auto& [name, entry] : relations_) names.push_back(name);
  return names;
}

Result<std::uint64_t> Db::NumTuples(const std::string& name) const {
  std::shared_lock lock(mu_);
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("no relation named '" + name + "'");
  }
  return std::uint64_t{RelOf(it->second).NumTuples()};
}

Status Db::RegisterLive(const std::string& name, ingest::LiveOptions options) {
  if (name.empty()) {
    return Status::InvalidArgument("relation name must be non-empty");
  }
  std::unique_lock lock(mu_);
  auto [it, inserted] = relations_.try_emplace(name);
  if (!inserted) {
    return Status::FailedPrecondition("relation '" + name +
                                      "' is already registered");
  }
  it->second.live = std::make_unique<ingest::LiveRelation>(name, options);
  return Status::OK();
}

Status Db::AttachLiveStore(const std::string& name,
                           VersionedSpillStore* store) {
  std::unique_lock lock(mu_);
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("no relation named '" + name + "'");
  }
  if (it->second.live == nullptr) {
    return Status::FailedPrecondition("relation '" + name +
                                      "' is not a live relation");
  }
  return it->second.live->AttachStore(store);
}

Result<MutationResult> Db::Apply(const MutationRequest& req) {
  std::unique_lock lock(mu_);
  MutationResult ack;
  switch (req.kind) {
    case MutationRequest::Kind::kRegisterLive: {
      if (req.relation.empty()) {
        return Status::InvalidArgument("relation name must be non-empty");
      }
      auto [it, inserted] = relations_.try_emplace(req.relation);
      if (!inserted) {
        return Status::FailedPrecondition("relation '" + req.relation +
                                          "' is already registered");
      }
      ingest::LiveOptions options;
      if (req.seal_units > 0) {
        options.seal_units = std::size_t(req.seal_units);
      }
      it->second.live =
          std::make_unique<ingest::LiveRelation>(req.relation, options);
      return ack;
    }

    case MutationRequest::Kind::kDropRelation: {
      if (relations_.erase(req.relation) == 0) {
        return Status::NotFound("no relation named '" + req.relation + "'");
      }
      return ack;
    }

    case MutationRequest::Kind::kIngest: {
      auto it = relations_.find(req.relation);
      if (it == relations_.end()) {
        return Status::NotFound("no relation named '" + req.relation +
                                "' (ingest target)");
      }
      ingest::LiveRelation* live = it->second.live.get();
      if (live == nullptr) {
        return Status::FailedPrecondition("relation '" + req.relation +
                                          "' is not a live relation");
      }
      std::vector<ingest::IngestFix> fixes;
      fixes.reserve(req.fixes.size());
      for (const MutationRequest::Fix& f : req.fixes) {
        fixes.push_back({f.object_id, f.t, f.x, f.y});
      }
      MODB_RETURN_IF_ERROR(live->Ingest(fixes));
      ack.accepted = fixes.size();
      ack.objects = live->NumObjects();
      ack.mem_units = live->index().MemEntries();
      ack.delta_entries = live->index().DeltaEntries();
      ack.base_entries = live->index().BaseEntries();
      ack.merges = live->index().merges();
      ack.epoch = live->epoch();
      if (!live->HasStore()) return ack;

      // Durability before the ack: a store-backed ingest is committed
      // as one epoch, so a crash after the reply loses nothing the
      // client was told about. The commit's I/O runs under the READER
      // lock — queries proceed concurrently (pinned to the epoch they
      // started on); only the in-memory mutation above excluded them.
      // Persist-vs-Persist is serialized inside LiveRelation, and
      // Persist's reads cannot overlap an Ingest because Ingest holds
      // the writer lock, which waits out our reader lock.
      lock.unlock();
      std::shared_lock rlock(mu_);
      auto again = relations_.find(req.relation);
      if (again == relations_.end() || again->second.live.get() != live) {
        return Status::FailedPrecondition(
            "relation '" + req.relation +
            "' was dropped before its ingest batch became durable");
      }
      MODB_RETURN_IF_ERROR(live->Persist());
      ack.epoch = live->epoch();
      return ack;
    }
  }
  return Status::InvalidArgument("unknown mutation kind " +
                                 std::to_string(int(req.kind)));
}

Status Db::MergeLive(const std::string& name) {
  std::optional<MergePlan> plan;
  int fanout = 16;
  {
    std::shared_lock lock(mu_);
    auto it = relations_.find(name);
    if (it == relations_.end()) {
      return Status::NotFound("no relation named '" + name + "'");
    }
    if (it->second.live == nullptr) {
      return Status::FailedPrecondition("relation '" + name +
                                        "' is not a live relation");
    }
    fanout = it->second.live->options().fanout;
    plan = it->second.live->PrepareMerge();
  }
  if (!plan) return Status::OK();  // empty delta — nothing to compact

  // The expensive part runs with NO lock held.
  RTree3D merged = RTree3D::BulkLoad(plan->entries, fanout);

  std::unique_lock lock(mu_);
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("no relation named '" + name + "'");
  }
  if (it->second.live == nullptr) {
    return Status::FailedPrecondition("relation '" + name +
                                      "' is not a live relation");
  }
  // A stale generation (a seal raced the build) is a clean no-op; the
  // next maintenance round re-prepares against the new generation.
  (void)it->second.live->ApplyMerge(*plan, std::move(merged));
  return Status::OK();
}

Status Db::DrainLive(const std::string& name) {
  std::unique_lock lock(mu_);
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("no relation named '" + name + "'");
  }
  if (it->second.live == nullptr) {
    return Status::FailedPrecondition("relation '" + name +
                                      "' is not a live relation");
  }
  it->second.live->SealAll();
  if (it->second.live->HasStore()) {
    return it->second.live->Persist();
  }
  return Status::OK();
}

Result<QueryResult> Db::Run(const QueryRequest& req,
                            const ExecOptions& options) const {
  MODB_RETURN_IF_ERROR(ValidateParallelOptions(options.parallel));
  std::shared_lock lock(mu_);

  auto src_it = relations_.find(req.relation);
  if (src_it == relations_.end()) {
    return Status::NotFound("no relation named '" + req.relation + "'");
  }
  const Entry& src = src_it->second;
  const Relation& src_rel = RelOf(src);

  // Store-backed live source: pin its committed epoch for the whole
  // request. A concurrent ingest may commit later epochs while we run
  // (its Persist holds only the reader lock too), but deferred
  // reclamation keeps every page of the pinned snapshot intact until
  // this pin drains with the request.
  VersionedSpillStore::EpochPin epoch_pin;
  if (src.live != nullptr) epoch_pin = src.live->PinStoreEpoch();

  QueryResult result;
  ExecOptions run = options;
  run.stats = &result.stats;

  switch (req.kind) {
    case QueryRequest::Kind::kSelect:
    case QueryRequest::Kind::kProject:
    case QueryRequest::Kind::kJoin:
    case QueryRequest::Kind::kIndexJoin: {
      exec::LogicalQuery q;
      q.rel = &src_rel;
      for (const FilterSpec& f : req.filters) {
        Result<exec::Predicate> p = LowerFilter(src_rel, f);
        MODB_RETURN_IF_ERROR(p.status());
        q.filters.push_back(*std::move(p));
      }
      if (req.kind == QueryRequest::Kind::kProject) {
        if (req.project.empty()) {
          return Status::InvalidArgument(
              "project requires at least one attribute");
        }
        std::vector<int> slots;
        for (const std::string& name : req.project) {
          const int slot = src_rel.schema().IndexOf(name);
          if (slot < 0) {
            return Status::InvalidArgument("relation '" + req.relation +
                                           "' has no attribute '" + name +
                                           "'");
          }
          slots.push_back(slot);
        }
        q.project = std::move(slots);
      } else if (req.kind != QueryRequest::Kind::kSelect) {
        auto inner_it = relations_.find(req.join_relation);
        if (inner_it == relations_.end()) {
          return Status::NotFound("no relation named '" + req.join_relation +
                                  "' (join inner)");
        }
        const Entry& inner = inner_it->second;
        const Relation& inner_rel = RelOf(inner);
        Result<int> outer_slot =
            ResolveSlot(src_rel, req.attr, AttributeType::kMovingPoint);
        MODB_RETURN_IF_ERROR(outer_slot.status());
        Result<int> inner_slot =
            ResolveSlot(inner_rel, req.join_attr, AttributeType::kMovingPoint);
        MODB_RETURN_IF_ERROR(inner_slot.status());
        exec::LogicalQuery::JoinSpec join;
        join.inner = &inner_rel;
        join.attr_outer = *outer_slot;
        join.attr_inner = *inner_slot;
        join.expand = req.distance;
        join.pred = EverCloserPred(*outer_slot, *inner_slot, req.distance,
                                   req.distinct_pairs);
        if (req.kind == QueryRequest::Kind::kJoin) {
          join.algorithm = exec::LogicalQuery::JoinSpec::Algorithm::kNestedLoop;
        } else {
          join.algorithm = exec::LogicalQuery::JoinSpec::Algorithm::kIndex;
          if (inner.live != nullptr &&
              *inner_slot == ingest::LiveRelation::kTrailSlot) {
            // Live inner: probe the base/delta/mem stack instead of
            // building a throwaway tree. The probe's sort+dedupe makes
            // the layering invisible in the output.
            join.layers = inner.live->View();
          } else {
            auto tree = inner.indexes.find(*inner_slot);
            if (tree != inner.indexes.end()) join.prebuilt = &tree->second;
          }
        }
        q.join = std::move(join);
      }
      Result<exec::PhysicalPlan> plan = exec::PlanQuery(q);
      MODB_RETURN_IF_ERROR(plan.status());
      Result<Relation> rows = exec::RunPlan(*plan, run);
      MODB_RETURN_IF_ERROR(rows.status());
      result.payload = QueryResult::Payload::kRows;
      result.rows = *std::move(rows);
      break;
    }

    case QueryRequest::Kind::kAtInstantBatch: {
      Result<int> slot =
          ResolveSlot(src_rel, req.attr, AttributeType::kMovingPoint);
      MODB_RETURN_IF_ERROR(slot.status());
      std::vector<const MovingPoint*> maps;
      maps.reserve(src_rel.NumTuples());
      for (const Tuple& t : src_rel.tuples()) {
        maps.push_back(&std::get<MovingPoint>(t[*slot]));
      }
      std::vector<BatchXYOutput> outs;
      MODB_RETURN_IF_ERROR(
          AtInstantBatchManyXY(maps, req.instants, &outs, run));
      result.payload = QueryResult::Payload::kXY;
      result.batch_tuples = maps.size();
      result.batch_instants = req.instants.size();
      const std::size_t cells = maps.size() * req.instants.size();
      result.xs.reserve(cells);
      result.ys.reserve(cells);
      result.defined.reserve(cells);
      for (const BatchXYOutput& out : outs) {
        result.xs.insert(result.xs.end(), out.xs.begin(), out.xs.end());
        result.ys.insert(result.ys.end(), out.ys.begin(), out.ys.end());
        result.defined.insert(result.defined.end(), out.defined.begin(),
                              out.defined.end());
      }
      break;
    }

    case QueryRequest::Kind::kPresentBatch: {
      Result<int> slot =
          ResolveSlot(src_rel, req.attr, AttributeType::kMovingPoint);
      MODB_RETURN_IF_ERROR(slot.status());
      const auto start = std::chrono::steady_clock::now();
      result.payload = QueryResult::Payload::kPresent;
      result.batch_tuples = src_rel.NumTuples();
      result.batch_instants = req.instants.size();
      result.present.reserve(result.batch_tuples * result.batch_instants);
      std::vector<std::uint8_t> buf;
      for (const Tuple& t : src_rel.tuples()) {
        // Per-tuple kernels run serial inline; the whole loop already
        // holds the reader lock, and stats are aggregated manually so
        // the root node covers the full batch.
        MODB_RETURN_IF_ERROR(PresentBatchInto(std::get<MovingPoint>(t[*slot]),
                                              req.instants, &buf));
        result.present.insert(result.present.end(), buf.begin(), buf.end());
      }
      result.stats.op = "present_batch_many";
      result.stats.tuples_in = result.batch_tuples * result.batch_instants;
      result.stats.workers = 1;
      for (std::uint8_t b : result.present) result.stats.tuples_out += b;
      result.stats.wall_ns = std::uint64_t(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - start)
              .count());
      break;
    }

    case QueryRequest::Kind::kWindowAggregate: {
      Result<int> slot =
          ResolveSlot(src_rel, req.attr, AttributeType::kMovingPoint);
      MODB_RETURN_IF_ERROR(slot.status());
      if (!(req.window_width > 0) || !(req.window_step > 0)) {
        return Status::InvalidArgument(
            "window aggregate requires window_width > 0 and window_step > 0");
      }
      if (!std::isfinite(req.window_t0) || !std::isfinite(req.window_t1) ||
          !std::isfinite(req.window_width) || !std::isfinite(req.window_step)) {
        return Status::InvalidArgument(
            "window aggregate fields must be finite");
      }
      if (req.window_t1 < req.window_t0) {
        return Status::InvalidArgument(
            "window sweep is inverted: window_t1 < window_t0");
      }
      if ((req.window_t1 - req.window_t0) / req.window_step >
          double(kMaxWindows)) {
        return Status::InvalidArgument(
            "window sweep would emit more than " +
            std::to_string(kMaxWindows) + " windows");
      }
      // The rect is optional: an inverted rect means no spatial
      // constraint (every defined instant qualifies).
      const bool has_rect = req.min_x <= req.max_x && req.min_y <= req.max_y;

      // Filters ride the ordinary select pipeline first, so pushdown,
      // stats, and determinism behave exactly as for kSelect; the
      // aggregation below is a serial pass in row order.
      exec::LogicalQuery q;
      q.rel = &src_rel;
      for (const FilterSpec& f : req.filters) {
        Result<exec::Predicate> p = LowerFilter(src_rel, f);
        MODB_RETURN_IF_ERROR(p.status());
        q.filters.push_back(*std::move(p));
      }
      q.root_op = "window_aggregate";
      Result<exec::PhysicalPlan> plan = exec::PlanQuery(q);
      MODB_RETURN_IF_ERROR(plan.status());
      Result<Relation> filtered = exec::RunPlan(*plan, run);
      MODB_RETURN_IF_ERROR(filtered.status());

      Relation out(src_rel.name() + "_win",
                   Schema({{"w_start", AttributeType::kReal},
                           {"w_end", AttributeType::kReal},
                           {"count", AttributeType::kInt},
                           {"distance", AttributeType::kReal},
                           {"avg_speed", AttributeType::kReal}}));
      // s = t0 + i*step (never accumulated), so window boundaries are
      // bit-reproducible regardless of how many windows precede them.
      for (std::uint64_t i = 0;; ++i) {
        const Instant s = req.window_t0 + double(i) * req.window_step;
        if (!(s < req.window_t1)) break;
        TRange window;
        window.lo = s;
        window.hi = s + req.window_width;
        window.lc = true;
        window.rc = false;  // closed-open: [s, s + width)
        std::uint64_t count = 0;
        double distance = 0;
        double covered = 0;
        for (const Tuple& t : filtered->tuples()) {
          const WindowRowAgg agg = AggregateRowWindow(
              std::get<MovingPoint>(t[std::size_t(*slot)]), window, has_rect,
              req.min_x, req.min_y, req.max_x, req.max_y);
          if (!agg.qualifies) continue;
          ++count;
          distance += agg.distance;
          covered += agg.covered;
        }
        Tuple row;
        row.emplace_back(RealValue(window.lo));
        row.emplace_back(RealValue(window.hi));
        row.emplace_back(IntValue(std::int64_t(count)));
        row.emplace_back(RealValue(distance));
        row.emplace_back(RealValue(covered > 0 ? distance / covered : 0.0));
        MODB_RETURN_IF_ERROR(out.Insert(std::move(row)));
      }
      result.payload = QueryResult::Payload::kRows;
      result.rows = std::move(out);
      break;
    }

    default:
      return Status::InvalidArgument("unknown query kind " +
                                     std::to_string(int(req.kind)));
  }

  if (options.stats != nullptr) *options.stats = result.stats;
  return result;
}

}  // namespace modb
