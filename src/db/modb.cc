#include "db/modb.h"

#include <chrono>
#include <utility>

#include "core/interval.h"
#include "core/range_set.h"
#include "db/query.h"
#include "exec/pipeline.h"
#include "exec/planner.h"
#include "temporal/batch_ops.h"
#include "temporal/lifted_ops.h"
#include "temporal/moving.h"

namespace modb {
namespace {

// Resolves `attr` in `schema` and checks its declared type, naming the
// attribute, the relation, and both types on failure so a remote caller
// can fix the request from the message alone.
Result<int> ResolveSlot(const Relation& rel, const std::string& attr,
                        AttributeType want) {
  const int slot = rel.schema().IndexOf(attr);
  if (slot < 0) {
    return Status::InvalidArgument("relation '" + rel.name() +
                                   "' has no attribute '" + attr + "'");
  }
  const AttributeType got = rel.schema().attribute(slot).type;
  if (got != want) {
    return Status::InvalidArgument(
        "attribute '" + attr + "' of relation '" + rel.name() + "' is " +
        AttributeTypeName(got) + ", expected " + AttributeTypeName(want));
  }
  return slot;
}

// Lowers one FilterSpec to an exec::Predicate. The shape strings key the
// plan cache, so they identify the filter template (kind + slot), not
// its constants.
Result<exec::Predicate> LowerFilter(const Relation& rel,
                                    const FilterSpec& f) {
  exec::Predicate p;
  switch (f.kind) {
    case FilterSpec::Kind::kStringEquals: {
      Result<int> slot = ResolveSlot(rel, f.attr, AttributeType::kString);
      MODB_RETURN_IF_ERROR(slot.status());
      const int s = *slot;
      const std::string value = f.value;
      p.fn = [s, value](const Tuple& t) {
        return std::get<StringValue>(t[s]).value() == value;
      };
      p.shape = "modb.string_eq:" + std::to_string(s);
      return p;
    }
    case FilterSpec::Kind::kTrajectoryLengthAtLeast: {
      Result<int> slot = ResolveSlot(rel, f.attr, AttributeType::kMovingPoint);
      MODB_RETURN_IF_ERROR(slot.status());
      const int s = *slot;
      const double threshold = f.threshold;
      p.fn = [s, threshold](const Tuple& t) {
        return Trajectory(std::get<MovingPoint>(t[s])).Length() >= threshold;
      };
      p.shape = "modb.trajlen_ge:" + std::to_string(s);
      return p;
    }
    case FilterSpec::Kind::kPresentAt: {
      Result<int> slot = ResolveSlot(rel, f.attr, AttributeType::kMovingPoint);
      MODB_RETURN_IF_ERROR(slot.status());
      const int s = *slot;
      const Instant t0 = f.t0;
      p.fn = [s, t0](const Tuple& t) {
        return std::get<MovingPoint>(t[s]).Present(t0);
      };
      p.shape = "modb.present_at:" + std::to_string(s);
      p.window = exec::TimeWindow{s, t0, t0};
      return p;
    }
    case FilterSpec::Kind::kDeftimeIntersects: {
      Result<int> slot = ResolveSlot(rel, f.attr, AttributeType::kMovingPoint);
      MODB_RETURN_IF_ERROR(slot.status());
      if (!(f.t0 <= f.t1)) {
        return Status::InvalidArgument(
            "deftime_intersects window is empty: t0 = " +
            std::to_string(f.t0) + " > t1 = " + std::to_string(f.t1));
      }
      const int s = *slot;
      Result<Interval<Instant>> iv = Interval<Instant>::Closed(f.t0, f.t1);
      MODB_RETURN_IF_ERROR(iv.status());
      const Periods window = Periods::Of(*iv);
      p.fn = [s, window](const Tuple& t) {
        return std::get<MovingPoint>(t[s]).Present(window);
      };
      p.shape = "modb.deftime_x:" + std::to_string(s);
      p.window = exec::TimeWindow{s, f.t0, f.t1};
      return p;
    }
  }
  return Status::InvalidArgument("unknown filter kind " +
                                 std::to_string(int(f.kind)));
}

// The Q2 predicate template: ever closer than `dist`, optionally only
// distinct (i < j) pairs.
exec::JoinPred EverCloserPred(int slot_a, int slot_b, double dist,
                              bool distinct_pairs) {
  exec::JoinPred p;
  p.fn = [slot_a, slot_b, dist, distinct_pairs](
             const Tuple& a, std::size_t i, const Tuple& b, std::size_t j) {
    if (distinct_pairs && i >= j) return false;
    Result<MovingReal> d = LiftedDistance(std::get<MovingPoint>(a[slot_a]),
                                          std::get<MovingPoint>(b[slot_b]));
    if (!d.ok() || d->IsEmpty()) return false;
    Result<MovingReal> am = AtMin(*d);
    return am.ok() && !am->IsEmpty() && am->Initial().val() < dist;
  };
  p.shape = "modb.ever_closer:" + std::to_string(slot_a) + ":" +
            std::to_string(slot_b) + (distinct_pairs ? ":distinct" : "");
  return p;
}

}  // namespace

Status Db::Register(Relation rel) {
  if (rel.name().empty()) {
    return Status::InvalidArgument("relation name must be non-empty");
  }
  std::unique_lock lock(mu_);
  auto [it, inserted] = relations_.try_emplace(rel.name());
  if (!inserted) {
    return Status::FailedPrecondition("relation '" + rel.name() +
                                      "' is already registered");
  }
  it->second.rel = std::move(rel);
  return Status::OK();
}

Status Db::Drop(const std::string& name) {
  std::unique_lock lock(mu_);
  if (relations_.erase(name) == 0) {
    return Status::NotFound("no relation named '" + name + "'");
  }
  return Status::OK();
}

Status Db::BuildIndex(const std::string& relation, const std::string& attr) {
  std::unique_lock lock(mu_);
  auto it = relations_.find(relation);
  if (it == relations_.end()) {
    return Status::NotFound("no relation named '" + relation + "'");
  }
  Result<int> slot =
      ResolveSlot(it->second.rel, attr, AttributeType::kMovingPoint);
  MODB_RETURN_IF_ERROR(slot.status());
  Result<RTree3D> tree = BuildMovingPointIndex(it->second.rel, *slot);
  MODB_RETURN_IF_ERROR(tree.status());
  it->second.indexes.insert_or_assign(*slot, *std::move(tree));
  return Status::OK();
}

std::vector<std::string> Db::RelationNames() const {
  std::shared_lock lock(mu_);
  std::vector<std::string> names;
  names.reserve(relations_.size());
  for (const auto& [name, entry] : relations_) names.push_back(name);
  return names;
}

Result<std::uint64_t> Db::NumTuples(const std::string& name) const {
  std::shared_lock lock(mu_);
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("no relation named '" + name + "'");
  }
  return std::uint64_t{it->second.rel.NumTuples()};
}

Result<QueryResult> Db::Run(const QueryRequest& req,
                            const ExecOptions& options) const {
  MODB_RETURN_IF_ERROR(ValidateParallelOptions(options.parallel));
  std::shared_lock lock(mu_);

  auto src_it = relations_.find(req.relation);
  if (src_it == relations_.end()) {
    return Status::NotFound("no relation named '" + req.relation + "'");
  }
  const Entry& src = src_it->second;

  QueryResult result;
  ExecOptions run = options;
  run.stats = &result.stats;

  switch (req.kind) {
    case QueryRequest::Kind::kSelect:
    case QueryRequest::Kind::kProject:
    case QueryRequest::Kind::kJoin:
    case QueryRequest::Kind::kIndexJoin: {
      exec::LogicalQuery q;
      q.rel = &src.rel;
      for (const FilterSpec& f : req.filters) {
        Result<exec::Predicate> p = LowerFilter(src.rel, f);
        MODB_RETURN_IF_ERROR(p.status());
        q.filters.push_back(*std::move(p));
      }
      if (req.kind == QueryRequest::Kind::kProject) {
        if (req.project.empty()) {
          return Status::InvalidArgument(
              "project requires at least one attribute");
        }
        std::vector<int> slots;
        for (const std::string& name : req.project) {
          const int slot = src.rel.schema().IndexOf(name);
          if (slot < 0) {
            return Status::InvalidArgument("relation '" + req.relation +
                                           "' has no attribute '" + name +
                                           "'");
          }
          slots.push_back(slot);
        }
        q.project = std::move(slots);
      } else if (req.kind != QueryRequest::Kind::kSelect) {
        auto inner_it = relations_.find(req.join_relation);
        if (inner_it == relations_.end()) {
          return Status::NotFound("no relation named '" + req.join_relation +
                                  "' (join inner)");
        }
        const Entry& inner = inner_it->second;
        Result<int> outer_slot =
            ResolveSlot(src.rel, req.attr, AttributeType::kMovingPoint);
        MODB_RETURN_IF_ERROR(outer_slot.status());
        Result<int> inner_slot =
            ResolveSlot(inner.rel, req.join_attr, AttributeType::kMovingPoint);
        MODB_RETURN_IF_ERROR(inner_slot.status());
        exec::LogicalQuery::JoinSpec join;
        join.inner = &inner.rel;
        join.attr_outer = *outer_slot;
        join.attr_inner = *inner_slot;
        join.expand = req.distance;
        join.pred = EverCloserPred(*outer_slot, *inner_slot, req.distance,
                                   req.distinct_pairs);
        if (req.kind == QueryRequest::Kind::kJoin) {
          join.algorithm = exec::LogicalQuery::JoinSpec::Algorithm::kNestedLoop;
        } else {
          join.algorithm = exec::LogicalQuery::JoinSpec::Algorithm::kIndex;
          auto tree = inner.indexes.find(*inner_slot);
          if (tree != inner.indexes.end()) join.prebuilt = &tree->second;
        }
        q.join = std::move(join);
      }
      Result<exec::PhysicalPlan> plan = exec::PlanQuery(q);
      MODB_RETURN_IF_ERROR(plan.status());
      Result<Relation> rows = exec::RunPlan(*plan, run);
      MODB_RETURN_IF_ERROR(rows.status());
      result.payload = QueryResult::Payload::kRows;
      result.rows = *std::move(rows);
      break;
    }

    case QueryRequest::Kind::kAtInstantBatch: {
      Result<int> slot =
          ResolveSlot(src.rel, req.attr, AttributeType::kMovingPoint);
      MODB_RETURN_IF_ERROR(slot.status());
      std::vector<const MovingPoint*> maps;
      maps.reserve(src.rel.NumTuples());
      for (const Tuple& t : src.rel.tuples()) {
        maps.push_back(&std::get<MovingPoint>(t[*slot]));
      }
      std::vector<BatchXYOutput> outs;
      MODB_RETURN_IF_ERROR(
          AtInstantBatchManyXY(maps, req.instants, &outs, run));
      result.payload = QueryResult::Payload::kXY;
      result.batch_tuples = maps.size();
      result.batch_instants = req.instants.size();
      const std::size_t cells = maps.size() * req.instants.size();
      result.xs.reserve(cells);
      result.ys.reserve(cells);
      result.defined.reserve(cells);
      for (const BatchXYOutput& out : outs) {
        result.xs.insert(result.xs.end(), out.xs.begin(), out.xs.end());
        result.ys.insert(result.ys.end(), out.ys.begin(), out.ys.end());
        result.defined.insert(result.defined.end(), out.defined.begin(),
                              out.defined.end());
      }
      break;
    }

    case QueryRequest::Kind::kPresentBatch: {
      Result<int> slot =
          ResolveSlot(src.rel, req.attr, AttributeType::kMovingPoint);
      MODB_RETURN_IF_ERROR(slot.status());
      const auto start = std::chrono::steady_clock::now();
      result.payload = QueryResult::Payload::kPresent;
      result.batch_tuples = src.rel.NumTuples();
      result.batch_instants = req.instants.size();
      result.present.reserve(result.batch_tuples * result.batch_instants);
      std::vector<std::uint8_t> buf;
      for (const Tuple& t : src.rel.tuples()) {
        // Per-tuple kernels run serial inline; the whole loop already
        // holds the reader lock, and stats are aggregated manually so
        // the root node covers the full batch.
        MODB_RETURN_IF_ERROR(PresentBatchInto(std::get<MovingPoint>(t[*slot]),
                                              req.instants, &buf));
        result.present.insert(result.present.end(), buf.begin(), buf.end());
      }
      result.stats.op = "present_batch_many";
      result.stats.tuples_in = result.batch_tuples * result.batch_instants;
      result.stats.workers = 1;
      for (std::uint8_t b : result.present) result.stats.tuples_out += b;
      result.stats.wall_ns = std::uint64_t(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - start)
              .count());
      break;
    }

    default:
      return Status::InvalidArgument("unknown query kind " +
                                     std::to_string(int(req.kind)));
  }

  if (options.stats != nullptr) *options.stats = result.stats;
  return result;
}

}  // namespace modb
