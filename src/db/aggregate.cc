#include "db/aggregate.h"

#include <algorithm>
#include <map>
#include <vector>

namespace modb {

namespace {

struct Accumulator {
  double sum = 0;
  double min = 0;
  double max = 0;
  std::size_t count = 0;

  void Add(double v) {
    if (count == 0) {
      min = max = v;
    } else {
      min = std::min(min, v);
      max = std::max(max, v);
    }
    sum += v;
    ++count;
  }

  Result<double> Finish(AggregateOp op) const {
    switch (op) {
      case AggregateOp::kCount:
        return double(count);
      case AggregateOp::kSum:
        return sum;
      case AggregateOp::kAvg:
        if (count == 0) {
          return Status::FailedPrecondition("avg over zero tuples");
        }
        return sum / double(count);
      case AggregateOp::kMin:
      case AggregateOp::kMax:
        if (count == 0) {
          return Status::FailedPrecondition("min/max over zero tuples");
        }
        return op == AggregateOp::kMin ? min : max;
    }
    return Status::Internal("unknown aggregate");
  }
};

// Evaluates the expression to a double (with int coercion).
Result<double> EvalNumeric(const Expr& expr, const Schema& schema,
                           const Tuple& tuple) {
  Result<AttributeValue> v = Eval(expr, schema, tuple);
  if (!v.ok()) return v.status();
  if (TypeOf(*v) == AttributeType::kReal) {
    const RealValue& r = std::get<RealValue>(*v);
    if (!r.defined()) return Status::FailedPrecondition("undefined real");
    return r.value();
  }
  if (TypeOf(*v) == AttributeType::kInt) {
    const IntValue& i = std::get<IntValue>(*v);
    if (!i.defined()) return Status::FailedPrecondition("undefined int");
    return double(i.value());
  }
  return Status::InvalidArgument("aggregate expression must be numeric");
}

Status CheckExpr(const Relation& rel, AggregateOp op, const ExprPtr& expr) {
  if (op == AggregateOp::kCount) return Status::OK();
  if (!expr) {
    return Status::InvalidArgument("this aggregate needs an expression");
  }
  Result<AttributeType> t = InferType(*expr, rel.schema());
  if (!t.ok()) return t.status();
  if (*t != AttributeType::kReal && *t != AttributeType::kInt) {
    return Status::InvalidArgument("aggregate expression must be numeric");
  }
  return Status::OK();
}

}  // namespace

Result<double> Aggregate(const Relation& rel, AggregateOp op,
                         const ExprPtr& expr) {
  MODB_RETURN_IF_ERROR(CheckExpr(rel, op, expr));
  Accumulator acc;
  for (const Tuple& t : rel.tuples()) {
    if (op == AggregateOp::kCount) {
      acc.Add(0);
      continue;
    }
    Result<double> v = EvalNumeric(*expr, rel.schema(), t);
    if (!v.ok()) return v.status();
    acc.Add(*v);
  }
  return acc.Finish(op);
}

Result<Relation> GroupBy(const Relation& rel, const std::string& key_attr,
                         AggregateOp op, const ExprPtr& expr) {
  int key_idx = rel.schema().IndexOf(key_attr);
  if (key_idx < 0) {
    return Status::NotFound("no attribute named " + key_attr);
  }
  if (rel.schema().attribute(std::size_t(key_idx)).type !=
      AttributeType::kString) {
    return Status::InvalidArgument("group-by key must be a string attribute");
  }
  MODB_RETURN_IF_ERROR(CheckExpr(rel, op, expr));

  std::vector<std::string> order;
  std::map<std::string, Accumulator> groups;
  for (const Tuple& t : rel.tuples()) {
    const StringValue& key = std::get<StringValue>(t[std::size_t(key_idx)]);
    if (!key.defined()) {
      return Status::FailedPrecondition("undefined group-by key");
    }
    if (groups.find(key.value()) == groups.end()) order.push_back(key.value());
    Accumulator& acc = groups[key.value()];
    if (op == AggregateOp::kCount) {
      acc.Add(0);
    } else {
      Result<double> v = EvalNumeric(*expr, rel.schema(), t);
      if (!v.ok()) return v.status();
      acc.Add(*v);
    }
  }

  Relation out(rel.name() + "_grouped",
               Schema({{key_attr, AttributeType::kString},
                       {"value", AttributeType::kReal}}));
  for (const std::string& key : order) {
    Result<double> v = groups[key].Finish(op);
    if (!v.ok()) return v.status();
    MODB_RETURN_IF_ERROR(out.Insert({StringValue(key), RealValue(*v)}));
  }
  return out;
}

}  // namespace modb
