#include "db/query.h"

#include <algorithm>
#include <chrono>

#include "obs/metrics.h"

namespace modb {

namespace {

// Joined tuples for outer tuple i of the index join, appended to *out in
// ascending candidate order. One body for every execution policy keeps
// their outputs identical. The candidate ids are collected through the
// caller's ProbeScratch (sort + unique replaces the historical std::set,
// preserving the ascending iteration order without per-probe
// allocation), so a warm scratch makes the whole probe allocation-free.
void ProbeIndexJoinTuple(
    const Relation& a, int attr_a, const Relation& b, const RTree3D& tree,
    double expand, std::size_t i,
    const std::function<bool(const Tuple&, std::size_t, const Tuple&,
                             std::size_t)>& pred,
    std::vector<Tuple>* out, ExecStats* stats, ProbeScratch* scratch) {
  const auto& mp = std::get<MovingPoint>(a.tuple(i)[std::size_t(attr_a)]);
  std::vector<int64_t>& candidates = scratch->candidates;
  candidates.clear();
  const Cube& bounds = tree.Bounds();
  for (const UPoint& u : mp.units()) {
    Cube c = u.BoundingCube();
    c.rect.min_x -= expand;
    c.rect.min_y -= expand;
    c.rect.max_x += expand;
    c.rect.max_y += expand;
    // Bbox prefilter: a probe cube disjoint from the whole tree cannot
    // produce candidates; skip the descent outright.
    if (!Cube::Intersect(c, bounds)) continue;
    tree.QueryVisit(c, [&candidates](int64_t id) { candidates.push_back(id); });
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  stats->units_scanned += mp.units().size();
  stats->index_candidates += candidates.size();
  for (int64_t j : candidates) {
    ++stats->predicate_evals;
    if (!pred(a.tuple(i), i, b.tuple(std::size_t(j)), std::size_t(j))) {
      continue;
    }
    ++stats->index_hits;
    Tuple joined = a.tuple(i);
    joined.insert(joined.end(), b.tuple(std::size_t(j)).begin(),
                  b.tuple(std::size_t(j)).end());
    out->push_back(std::move(joined));
  }
}

Status ValidateOptions(const ExecOptions& options) {
  if (options.parallel.num_threads > kMaxQueryThreads) {
    return Status::InvalidArgument(
        "ExecOptions.parallel.num_threads = " +
        std::to_string(options.parallel.num_threads) + " exceeds the sanity "
        "bound of " + std::to_string(kMaxQueryThreads) +
        " (<= 0 selects one chunk per pool thread)");
  }
  return Status::OK();
}

// Timing wrapper: clock reads only happen when a stats sink was given.
class OptionalTimer {
 public:
  explicit OptionalTimer(bool enabled) : enabled_(enabled) {
    if (enabled_) start_ = std::chrono::steady_clock::now();
  }
  std::uint64_t ElapsedNs() const {
    if (!enabled_) return 0;
    auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - start_)
                  .count();
    return ns > 0 ? std::uint64_t(ns) : 0;
  }

 private:
  bool enabled_;
  std::chrono::steady_clock::time_point start_;
};

// Operator epilogue: report to the caller's sink (if any) and mirror the
// headline counters into the global metrics registry so bench/example
// metric dumps attribute work to the query layer too.
void FinishNode(ExecStats&& node, std::uint64_t wall_ns,
                const ExecOptions& options) {
#ifndef MODB_NO_METRICS
  // Dynamic names, so no MODB_COUNTER_* macro (its per-call-site pointer
  // cache assumes one name per site). One registry lookup per operator
  // call is far off any hot path.
  obs::Metrics& metrics = obs::Metrics::Global();
  metrics.counter("query." + node.op + ".calls")->Inc();
  metrics.counter("query." + node.op + ".tuples_out")->Inc(node.tuples_out);
  metrics.counter("query." + node.op + ".predicate_evals")
      ->Inc(node.predicate_evals);
#endif
  if (options.stats != nullptr) {
    node.wall_ns = wall_ns;
    *options.stats = std::move(node);
  }
}

// Upper bound on the chunk count RunOuterLoop will use for these
// options (ParallelFor may clamp further when n is small). Operators
// that keep per-chunk scratch state size it with this before running.
std::size_t PlannedChunks(const ExecOptions& options) {
  const int nt = options.parallel.num_threads;
  if (nt == 1) return 1;
  ThreadPool& pool =
      options.parallel.pool ? *options.parallel.pool : ThreadPool::Shared();
  return nt > 0 ? std::size_t(nt) : std::size_t(std::max(1, pool.num_threads()));
}

// Runs fn(chunk, i, &chunk_buffer, &chunk_stats) over the outer indices
// [0, n), then merges buffered tuples and stats in ascending chunk
// order — the same order a serial i-ascending loop produces,
// independent of thread scheduling. The chunk index (always <
// PlannedChunks(options)) lets fn address per-chunk scratch state.
// num_threads == 1 stays on the calling thread and never resolves a
// pool.
void RunOuterLoop(
    std::size_t n, const ExecOptions& options, Relation* out, ExecStats* node,
    const std::function<void(std::size_t, std::size_t, std::vector<Tuple>*,
                             ExecStats*)>& fn) {
  const int nt = options.parallel.num_threads;
  if (nt == 1 || n == 0) {
    std::vector<Tuple> buf;
    for (std::size_t i = 0; i < n; ++i) {
      fn(0, i, &buf, node);
      for (Tuple& t : buf) {
        // Insert cannot fail: tuples conform to the output schema.
        (void)out->Insert(std::move(t));
      }
      buf.clear();
    }
    node->workers = 1;
    return;
  }
  const std::size_t chunks = PlannedChunks(options);
  ThreadPool& pool =
      options.parallel.pool ? *options.parallel.pool : ThreadPool::Shared();
  std::vector<std::vector<Tuple>> buffers(chunks);
  std::vector<ExecStats> chunk_stats(chunks);
  std::vector<std::pair<std::size_t, std::size_t>> ranges(chunks, {0, 0});
  ParallelFor(pool, n, chunks,
              [&](std::size_t c, std::size_t begin, std::size_t end) {
                ranges[c] = {begin, end};
                for (std::size_t i = begin; i < end; ++i) {
                  fn(c, i, &buffers[c], &chunk_stats[c]);
                }
              });
  const bool keep_children = options.stats != nullptr;
  for (std::size_t c = 0; c < chunks; ++c) {
    node->MergeCountersFrom(chunk_stats[c]);
    if (keep_children) {
      // Per-chunk cardinalities (outer tuples seen / tuples emitted) are
      // filled here, after the merge, so the parent's own explicit
      // tuples_in/tuples_out are not double-counted.
      chunk_stats[c].op = "chunk[" + std::to_string(c) + "]";
      chunk_stats[c].workers = 1;
      chunk_stats[c].tuples_in = ranges[c].second - ranges[c].first;
      chunk_stats[c].tuples_out = buffers[c].size();
      node->children.push_back(std::move(chunk_stats[c]));
    }
    for (Tuple& t : buffers[c]) {
      (void)out->Insert(std::move(t));
    }
  }
  node->workers = chunks;
}

}  // namespace

Result<Relation> Select(const Relation& rel,
                        const std::function<bool(const Tuple&)>& pred,
                        const ExecOptions& options) {
  MODB_RETURN_IF_ERROR(ValidateOptions(options));
  OptionalTimer timer(options.stats != nullptr);
  ExecStats node;
  node.op = "select";
  node.tuples_in = rel.NumTuples();
  Relation out(rel.name() + "_sel", rel.schema());
  RunOuterLoop(rel.NumTuples(), options, &out, &node,
               [&](std::size_t, std::size_t i, std::vector<Tuple>* buf,
                   ExecStats* s) {
                 ++s->predicate_evals;
                 if (pred(rel.tuple(i))) buf->push_back(rel.tuple(i));
               });
  node.tuples_out = out.NumTuples();
  FinishNode(std::move(node), timer.ElapsedNs(), options);
  return out;
}

Result<Relation> Project(const Relation& rel,
                         const std::vector<std::string>& attributes,
                         const ExecOptions& options) {
  MODB_RETURN_IF_ERROR(ValidateOptions(options));
  OptionalTimer timer(options.stats != nullptr);
  std::vector<int> indices;
  std::vector<AttributeDef> defs;
  for (const std::string& name : attributes) {
    int idx = rel.schema().IndexOf(name);
    if (idx < 0) {
      return Status::NotFound("no attribute named " + name + " in " +
                              rel.name());
    }
    indices.push_back(idx);
    defs.push_back(rel.schema().attribute(std::size_t(idx)));
  }
  ExecStats node;
  node.op = "project";
  node.tuples_in = rel.NumTuples();
  Relation out(rel.name() + "_proj", Schema(std::move(defs)));
  for (const Tuple& t : rel.tuples()) {
    Tuple projected;
    projected.reserve(indices.size());
    for (int idx : indices) projected.push_back(t[std::size_t(idx)]);
    (void)out.Insert(std::move(projected));
  }
  node.tuples_out = out.NumTuples();
  node.workers = 1;
  FinishNode(std::move(node), timer.ElapsedNs(), options);
  return out;
}

Result<Relation> NestedLoopJoin(
    const Relation& a, const Relation& b,
    const std::function<bool(const Tuple&, std::size_t, const Tuple&,
                             std::size_t)>& pred,
    const ExecOptions& options) {
  MODB_RETURN_IF_ERROR(ValidateOptions(options));
  OptionalTimer timer(options.stats != nullptr);
  ExecStats node;
  node.op = "nested_loop_join";
  node.tuples_in = a.NumTuples() + b.NumTuples();
  Relation out(a.name() + "_x_" + b.name(),
               Schema::Concat(a.schema(), a.name() + ".", b.schema(),
                              b.name() + "."));
  RunOuterLoop(
      a.NumTuples(), options, &out, &node,
      [&](std::size_t, std::size_t i, std::vector<Tuple>* buf, ExecStats* s) {
        for (std::size_t j = 0; j < b.NumTuples(); ++j) {
          ++s->predicate_evals;
          if (!pred(a.tuple(i), i, b.tuple(j), j)) continue;
          Tuple joined = a.tuple(i);
          joined.insert(joined.end(), b.tuple(j).begin(), b.tuple(j).end());
          buf->push_back(std::move(joined));
        }
      });
  node.tuples_out = out.NumTuples();
  FinishNode(std::move(node), timer.ElapsedNs(), options);
  return out;
}

Result<RTree3D> BuildMovingPointIndex(const Relation& b, int attr_b) {
  if (attr_b < 0 || std::size_t(attr_b) >= b.schema().NumAttributes()) {
    return Status::InvalidArgument("moving-point index attribute " +
                                   std::to_string(attr_b) +
                                   " out of range for " + b.name());
  }
  std::vector<RTree3D::Entry> entries;
  for (std::size_t j = 0; j < b.NumTuples(); ++j) {
    const auto* mp =
        std::get_if<MovingPoint>(&b.tuple(j)[std::size_t(attr_b)]);
    if (mp == nullptr) {
      return Status::InvalidArgument("attribute " + std::to_string(attr_b) +
                                     " of " + b.name() +
                                     " is not a moving point");
    }
    for (const UPoint& u : mp->units()) {
      entries.push_back({u.BoundingCube(), int64_t(j)});
    }
  }
  MODB_COUNTER_INC("query.index_join.index_builds");
  return RTree3D::BulkLoad(std::move(entries));
}

namespace {

// Shared body of the two IndexJoinOnMovingPoint overloads; index_builds
// records whether this call paid for the R-tree construction.
Result<Relation> IndexJoinImpl(
    const Relation& a, int attr_a, const Relation& b, const RTree3D& tree,
    double expand,
    const std::function<bool(const Tuple&, std::size_t, const Tuple&,
                             std::size_t)>& pred,
    const ExecOptions& options, std::uint64_t index_builds,
    const OptionalTimer& timer) {
  ExecStats node;
  node.op = "index_join_on_moving_point";
  node.tuples_in = a.NumTuples() + b.NumTuples();
  node.index_builds = index_builds;
  Relation out(a.name() + "_ix_" + b.name(),
               Schema::Concat(a.schema(), a.name() + ".", b.schema(),
                              b.name() + "."));
  std::vector<ProbeScratch> scratch(PlannedChunks(options));
  RunOuterLoop(a.NumTuples(), options, &out, &node,
               [&](std::size_t c, std::size_t i, std::vector<Tuple>* buf,
                   ExecStats* s) {
                 ProbeIndexJoinTuple(a, attr_a, b, tree, expand, i, pred, buf,
                                     s, &scratch[c]);
               });
  node.tuples_out = out.NumTuples();
  FinishNode(std::move(node), timer.ElapsedNs(), options);
  return out;
}

}  // namespace

Result<Relation> IndexJoinOnMovingPoint(
    const Relation& a, int attr_a, const Relation& b, int attr_b,
    double expand,
    const std::function<bool(const Tuple&, std::size_t, const Tuple&,
                             std::size_t)>& pred,
    const ExecOptions& options) {
  MODB_RETURN_IF_ERROR(ValidateOptions(options));
  OptionalTimer timer(options.stats != nullptr);
  Result<RTree3D> tree = BuildMovingPointIndex(b, attr_b);
  if (!tree.ok()) return tree.status();
  return IndexJoinImpl(a, attr_a, b, *tree, expand, pred, options,
                       /*index_builds=*/1, timer);
}

Result<Relation> IndexJoinOnMovingPoint(
    const Relation& a, int attr_a, const Relation& b, const RTree3D& index,
    double expand,
    const std::function<bool(const Tuple&, std::size_t, const Tuple&,
                             std::size_t)>& pred,
    const ExecOptions& options) {
  MODB_RETURN_IF_ERROR(ValidateOptions(options));
  OptionalTimer timer(options.stats != nullptr);
  return IndexJoinImpl(a, attr_a, b, index, expand, pred, options,
                       /*index_builds=*/0, timer);
}

}  // namespace modb
