#include "db/query.h"

#include <algorithm>
#include <chrono>
#include <set>

#include "obs/metrics.h"

namespace modb {

namespace {

// Shared by the serial and parallel index joins: the R-tree over all
// unit bounding cubes of b's moving-point attribute. Entry ids are the
// owning tuple indices (duplicates collapsed at query time).
RTree3D BuildUnitTree(const Relation& b, int attr_b) {
  std::vector<RTree3D::Entry> entries;
  for (std::size_t j = 0; j < b.NumTuples(); ++j) {
    const auto& mp = std::get<MovingPoint>(b.tuple(j)[std::size_t(attr_b)]);
    for (const UPoint& u : mp.units()) {
      entries.push_back({u.BoundingCube(), int64_t(j)});
    }
  }
  return RTree3D::BulkLoad(std::move(entries));
}

// Joined tuples for outer tuple i of the index join, appended to *out in
// ascending candidate order. One body for every execution policy keeps
// their outputs identical.
void ProbeIndexJoinTuple(
    const Relation& a, int attr_a, const Relation& b, const RTree3D& tree,
    double expand, std::size_t i,
    const std::function<bool(const Tuple&, std::size_t, const Tuple&,
                             std::size_t)>& pred,
    std::vector<Tuple>* out, ExecStats* stats) {
  const auto& mp = std::get<MovingPoint>(a.tuple(i)[std::size_t(attr_a)]);
  std::set<int64_t> candidates;
  for (const UPoint& u : mp.units()) {
    Cube c = u.BoundingCube();
    c.rect.min_x -= expand;
    c.rect.min_y -= expand;
    c.rect.max_x += expand;
    c.rect.max_y += expand;
    tree.QueryVisit(c, [&candidates](int64_t id) { candidates.insert(id); });
  }
  stats->units_scanned += mp.units().size();
  stats->index_candidates += candidates.size();
  for (int64_t j : candidates) {
    ++stats->predicate_evals;
    if (!pred(a.tuple(i), i, b.tuple(std::size_t(j)), std::size_t(j))) {
      continue;
    }
    ++stats->index_hits;
    Tuple joined = a.tuple(i);
    joined.insert(joined.end(), b.tuple(std::size_t(j)).begin(),
                  b.tuple(std::size_t(j)).end());
    out->push_back(std::move(joined));
  }
}

Status ValidateOptions(const ExecOptions& options) {
  if (options.parallel.num_threads > kMaxQueryThreads) {
    return Status::InvalidArgument(
        "ExecOptions.parallel.num_threads = " +
        std::to_string(options.parallel.num_threads) + " exceeds the sanity "
        "bound of " + std::to_string(kMaxQueryThreads) +
        " (<= 0 selects one chunk per pool thread)");
  }
  return Status::OK();
}

// Timing wrapper: clock reads only happen when a stats sink was given.
class OptionalTimer {
 public:
  explicit OptionalTimer(bool enabled) : enabled_(enabled) {
    if (enabled_) start_ = std::chrono::steady_clock::now();
  }
  std::uint64_t ElapsedNs() const {
    if (!enabled_) return 0;
    auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - start_)
                  .count();
    return ns > 0 ? std::uint64_t(ns) : 0;
  }

 private:
  bool enabled_;
  std::chrono::steady_clock::time_point start_;
};

// Operator epilogue: report to the caller's sink (if any) and mirror the
// headline counters into the global metrics registry so bench/example
// metric dumps attribute work to the query layer too.
void FinishNode(ExecStats&& node, std::uint64_t wall_ns,
                const ExecOptions& options) {
#ifndef MODB_NO_METRICS
  // Dynamic names, so no MODB_COUNTER_* macro (its per-call-site pointer
  // cache assumes one name per site). One registry lookup per operator
  // call is far off any hot path.
  obs::Metrics& metrics = obs::Metrics::Global();
  metrics.counter("query." + node.op + ".calls")->Inc();
  metrics.counter("query." + node.op + ".tuples_out")->Inc(node.tuples_out);
  metrics.counter("query." + node.op + ".predicate_evals")
      ->Inc(node.predicate_evals);
#endif
  if (options.stats != nullptr) {
    node.wall_ns = wall_ns;
    *options.stats = std::move(node);
  }
}

// Runs fn(i, &chunk_buffer, &chunk_stats) over the outer indices [0, n),
// then merges buffered tuples and stats in ascending chunk order — the
// same order a serial i-ascending loop produces, independent of thread
// scheduling. num_threads == 1 stays on the calling thread and never
// resolves a pool.
void RunOuterLoop(
    std::size_t n, const ExecOptions& options, Relation* out, ExecStats* node,
    const std::function<void(std::size_t, std::vector<Tuple>*, ExecStats*)>&
        fn) {
  const int nt = options.parallel.num_threads;
  if (nt == 1 || n == 0) {
    std::vector<Tuple> buf;
    for (std::size_t i = 0; i < n; ++i) {
      fn(i, &buf, node);
      for (Tuple& t : buf) {
        // Insert cannot fail: tuples conform to the output schema.
        (void)out->Insert(std::move(t));
      }
      buf.clear();
    }
    node->workers = 1;
    return;
  }
  ThreadPool& pool =
      options.parallel.pool ? *options.parallel.pool : ThreadPool::Shared();
  const std::size_t chunks =
      nt > 0 ? std::size_t(nt) : std::size_t(std::max(1, pool.num_threads()));
  std::vector<std::vector<Tuple>> buffers(chunks);
  std::vector<ExecStats> chunk_stats(chunks);
  std::vector<std::pair<std::size_t, std::size_t>> ranges(chunks, {0, 0});
  ParallelFor(pool, n, chunks,
              [&](std::size_t c, std::size_t begin, std::size_t end) {
                ranges[c] = {begin, end};
                for (std::size_t i = begin; i < end; ++i) {
                  fn(i, &buffers[c], &chunk_stats[c]);
                }
              });
  const bool keep_children = options.stats != nullptr;
  for (std::size_t c = 0; c < chunks; ++c) {
    node->MergeCountersFrom(chunk_stats[c]);
    if (keep_children) {
      // Per-chunk cardinalities (outer tuples seen / tuples emitted) are
      // filled here, after the merge, so the parent's own explicit
      // tuples_in/tuples_out are not double-counted.
      chunk_stats[c].op = "chunk[" + std::to_string(c) + "]";
      chunk_stats[c].workers = 1;
      chunk_stats[c].tuples_in = ranges[c].second - ranges[c].first;
      chunk_stats[c].tuples_out = buffers[c].size();
      node->children.push_back(std::move(chunk_stats[c]));
    }
    for (Tuple& t : buffers[c]) {
      (void)out->Insert(std::move(t));
    }
  }
  node->workers = chunks;
}

}  // namespace

Result<Relation> Select(const Relation& rel,
                        const std::function<bool(const Tuple&)>& pred,
                        const ExecOptions& options) {
  MODB_RETURN_IF_ERROR(ValidateOptions(options));
  OptionalTimer timer(options.stats != nullptr);
  ExecStats node;
  node.op = "select";
  node.tuples_in = rel.NumTuples();
  Relation out(rel.name() + "_sel", rel.schema());
  RunOuterLoop(rel.NumTuples(), options, &out, &node,
               [&](std::size_t i, std::vector<Tuple>* buf, ExecStats* s) {
                 ++s->predicate_evals;
                 if (pred(rel.tuple(i))) buf->push_back(rel.tuple(i));
               });
  node.tuples_out = out.NumTuples();
  FinishNode(std::move(node), timer.ElapsedNs(), options);
  return out;
}

Result<Relation> Project(const Relation& rel,
                         const std::vector<std::string>& attributes,
                         const ExecOptions& options) {
  MODB_RETURN_IF_ERROR(ValidateOptions(options));
  OptionalTimer timer(options.stats != nullptr);
  std::vector<int> indices;
  std::vector<AttributeDef> defs;
  for (const std::string& name : attributes) {
    int idx = rel.schema().IndexOf(name);
    if (idx < 0) {
      return Status::NotFound("no attribute named " + name + " in " +
                              rel.name());
    }
    indices.push_back(idx);
    defs.push_back(rel.schema().attribute(std::size_t(idx)));
  }
  ExecStats node;
  node.op = "project";
  node.tuples_in = rel.NumTuples();
  Relation out(rel.name() + "_proj", Schema(std::move(defs)));
  for (const Tuple& t : rel.tuples()) {
    Tuple projected;
    projected.reserve(indices.size());
    for (int idx : indices) projected.push_back(t[std::size_t(idx)]);
    (void)out.Insert(std::move(projected));
  }
  node.tuples_out = out.NumTuples();
  node.workers = 1;
  FinishNode(std::move(node), timer.ElapsedNs(), options);
  return out;
}

Result<Relation> NestedLoopJoin(
    const Relation& a, const Relation& b,
    const std::function<bool(const Tuple&, std::size_t, const Tuple&,
                             std::size_t)>& pred,
    const ExecOptions& options) {
  MODB_RETURN_IF_ERROR(ValidateOptions(options));
  OptionalTimer timer(options.stats != nullptr);
  ExecStats node;
  node.op = "nested_loop_join";
  node.tuples_in = a.NumTuples() + b.NumTuples();
  Relation out(a.name() + "_x_" + b.name(),
               Schema::Concat(a.schema(), a.name() + ".", b.schema(),
                              b.name() + "."));
  RunOuterLoop(
      a.NumTuples(), options, &out, &node,
      [&](std::size_t i, std::vector<Tuple>* buf, ExecStats* s) {
        for (std::size_t j = 0; j < b.NumTuples(); ++j) {
          ++s->predicate_evals;
          if (!pred(a.tuple(i), i, b.tuple(j), j)) continue;
          Tuple joined = a.tuple(i);
          joined.insert(joined.end(), b.tuple(j).begin(), b.tuple(j).end());
          buf->push_back(std::move(joined));
        }
      });
  node.tuples_out = out.NumTuples();
  FinishNode(std::move(node), timer.ElapsedNs(), options);
  return out;
}

Result<Relation> IndexJoinOnMovingPoint(
    const Relation& a, int attr_a, const Relation& b, int attr_b,
    double expand,
    const std::function<bool(const Tuple&, std::size_t, const Tuple&,
                             std::size_t)>& pred,
    const ExecOptions& options) {
  MODB_RETURN_IF_ERROR(ValidateOptions(options));
  OptionalTimer timer(options.stats != nullptr);
  ExecStats node;
  node.op = "index_join_on_moving_point";
  node.tuples_in = a.NumTuples() + b.NumTuples();
  RTree3D tree = BuildUnitTree(b, attr_b);
  Relation out(a.name() + "_ix_" + b.name(),
               Schema::Concat(a.schema(), a.name() + ".", b.schema(),
                              b.name() + "."));
  RunOuterLoop(a.NumTuples(), options, &out, &node,
               [&](std::size_t i, std::vector<Tuple>* buf, ExecStats* s) {
                 ProbeIndexJoinTuple(a, attr_a, b, tree, expand, i, pred, buf,
                                     s);
               });
  node.tuples_out = out.NumTuples();
  FinishNode(std::move(node), timer.ElapsedNs(), options);
  return out;
}

}  // namespace modb
