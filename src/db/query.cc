#include "db/query.h"

#include <utility>

#include "exec/pipeline.h"
#include "exec/planner.h"
#include "obs/metrics.h"

namespace modb {

namespace {

// Shared wrapper tail: plan the logical query, run it pipelined, mirror
// the headline counters into the global metrics registry, and hand the
// stats tree to the caller's sink. The wrappers exist so the historical
// operator API keeps compiling (and keeps its output names, schemas,
// and stats semantics) while every query executes on the morsel engine.
Result<Relation> PlanAndRun(const exec::LogicalQuery& q,
                            const ExecOptions& options) {
  Result<exec::PhysicalPlan> plan = exec::PlanQuery(q);
  if (!plan.ok()) return plan.status();
  ExecStats node;
  ExecOptions engine_options = options;
  engine_options.stats = &node;
  Result<Relation> out = exec::RunPlan(*plan, engine_options);
  if (!out.ok()) return out.status();
#ifndef MODB_NO_METRICS
  // Dynamic names, so no MODB_COUNTER_* macro (its per-call-site pointer
  // cache assumes one name per site). One registry lookup per operator
  // call is far off any hot path.
  obs::Metrics& metrics = obs::Metrics::Global();
  metrics.counter("query." + node.op + ".calls")->Inc();
  metrics.counter("query." + node.op + ".tuples_out")->Inc(node.tuples_out);
  metrics.counter("query." + node.op + ".predicate_evals")
      ->Inc(node.predicate_evals);
#endif
  if (options.stats != nullptr) *options.stats = std::move(node);
  return out;
}

}  // namespace

Result<Relation> Select(const Relation& rel,
                        const std::function<bool(const Tuple&)>& pred,
                        const ExecOptions& options) {
  exec::LogicalQuery q;
  q.rel = &rel;
  q.filters.push_back(exec::Predicate{pred, "user", std::nullopt});
  q.root_op = "select";
  return PlanAndRun(q, options);
}

Result<Relation> Project(const Relation& rel,
                         const std::vector<std::string>& attributes,
                         const ExecOptions& options) {
  std::vector<int> indices;
  indices.reserve(attributes.size());
  for (const std::string& name : attributes) {
    int idx = rel.schema().IndexOf(name);
    if (idx < 0) {
      return Status::NotFound("no attribute named " + name + " in " +
                              rel.name());
    }
    indices.push_back(idx);
  }
  exec::LogicalQuery q;
  q.rel = &rel;
  q.project = std::move(indices);
  q.root_op = "project";
  return PlanAndRun(q, options);
}

Result<Relation> NestedLoopJoin(
    const Relation& a, const Relation& b,
    const std::function<bool(const Tuple&, std::size_t, const Tuple&,
                             std::size_t)>& pred,
    const ExecOptions& options) {
  exec::LogicalQuery q;
  q.rel = &a;
  exec::LogicalQuery::JoinSpec join;
  join.algorithm = exec::LogicalQuery::JoinSpec::Algorithm::kNestedLoop;
  join.inner = &b;
  join.pred = exec::JoinPred{pred, "user"};
  q.join = std::move(join);
  q.root_op = "nested_loop_join";
  return PlanAndRun(q, options);
}

Result<RTree3D> BuildMovingPointIndex(const Relation& b, int attr_b) {
  if (attr_b < 0 || std::size_t(attr_b) >= b.schema().NumAttributes()) {
    return Status::InvalidArgument("moving-point index attribute " +
                                   std::to_string(attr_b) +
                                   " out of range for " + b.name());
  }
  std::vector<RTree3D::Entry> entries;
  for (std::size_t j = 0; j < b.NumTuples(); ++j) {
    const auto* mp =
        std::get_if<MovingPoint>(&b.tuple(j)[std::size_t(attr_b)]);
    if (mp == nullptr) {
      return Status::InvalidArgument("attribute " + std::to_string(attr_b) +
                                     " of " + b.name() +
                                     " is not a moving point");
    }
    for (const UPoint& u : mp->units()) {
      entries.push_back({u.BoundingCube(), int64_t(j)});
    }
  }
  MODB_COUNTER_INC("query.index_join.index_builds");
  return RTree3D::BulkLoad(std::move(entries));
}

Result<Relation> IndexJoinOnMovingPoint(
    const Relation& a, int attr_a, const Relation& b, int attr_b,
    double expand,
    const std::function<bool(const Tuple&, std::size_t, const Tuple&,
                             std::size_t)>& pred,
    const ExecOptions& options) {
  exec::LogicalQuery q;
  q.rel = &a;
  exec::LogicalQuery::JoinSpec join;
  join.algorithm = exec::LogicalQuery::JoinSpec::Algorithm::kIndex;
  join.inner = &b;
  join.attr_outer = attr_a;
  join.attr_inner = attr_b;
  join.expand = expand;
  join.pred = exec::JoinPred{pred, "user"};
  q.join = std::move(join);
  q.root_op = "index_join_on_moving_point";
  return PlanAndRun(q, options);
}

Result<Relation> IndexJoinOnMovingPoint(
    const Relation& a, int attr_a, const Relation& b, const RTree3D& index,
    double expand,
    const std::function<bool(const Tuple&, std::size_t, const Tuple&,
                             std::size_t)>& pred,
    const ExecOptions& options) {
  exec::LogicalQuery q;
  q.rel = &a;
  exec::LogicalQuery::JoinSpec join;
  join.algorithm = exec::LogicalQuery::JoinSpec::Algorithm::kIndex;
  join.inner = &b;
  join.attr_outer = attr_a;
  join.expand = expand;
  join.pred = exec::JoinPred{pred, "user"};
  join.prebuilt = &index;
  q.join = std::move(join);
  q.root_op = "index_join_on_moving_point";
  return PlanAndRun(q, options);
}

}  // namespace modb
