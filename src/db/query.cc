#include "db/query.h"

#include <algorithm>
#include <set>

namespace modb {

Relation Select(const Relation& rel,
                const std::function<bool(const Tuple&)>& pred) {
  Relation out(rel.name() + "_sel", rel.schema());
  for (const Tuple& t : rel.tuples()) {
    if (pred(t)) {
      // Insert cannot fail: tuples already conform to the schema.
      (void)out.Insert(t);
    }
  }
  return out;
}

Result<Relation> Project(const Relation& rel,
                         const std::vector<std::string>& attributes) {
  std::vector<int> indices;
  std::vector<AttributeDef> defs;
  for (const std::string& name : attributes) {
    int idx = rel.schema().IndexOf(name);
    if (idx < 0) {
      return Status::NotFound("no attribute named " + name + " in " +
                              rel.name());
    }
    indices.push_back(idx);
    defs.push_back(rel.schema().attribute(std::size_t(idx)));
  }
  Relation out(rel.name() + "_proj", Schema(std::move(defs)));
  for (const Tuple& t : rel.tuples()) {
    Tuple projected;
    projected.reserve(indices.size());
    for (int idx : indices) projected.push_back(t[std::size_t(idx)]);
    (void)out.Insert(std::move(projected));
  }
  return out;
}

Relation NestedLoopJoin(
    const Relation& a, const Relation& b,
    const std::function<bool(const Tuple&, std::size_t, const Tuple&,
                             std::size_t)>& pred) {
  Relation out(a.name() + "_x_" + b.name(),
               Schema::Concat(a.schema(), a.name() + ".", b.schema(),
                              b.name() + "."));
  for (std::size_t i = 0; i < a.NumTuples(); ++i) {
    for (std::size_t j = 0; j < b.NumTuples(); ++j) {
      if (!pred(a.tuple(i), i, b.tuple(j), j)) continue;
      Tuple joined = a.tuple(i);
      joined.insert(joined.end(), b.tuple(j).begin(), b.tuple(j).end());
      (void)out.Insert(std::move(joined));
    }
  }
  return out;
}

Relation IndexJoinOnMovingPoint(
    const Relation& a, int attr_a, const Relation& b, int attr_b,
    double expand,
    const std::function<bool(const Tuple&, std::size_t, const Tuple&,
                             std::size_t)>& pred) {
  // Index b's units: entry id packs (tuple index << 20 | unit index); we
  // only need the tuple index here, so duplicates are collapsed.
  std::vector<RTree3D::Entry> entries;
  for (std::size_t j = 0; j < b.NumTuples(); ++j) {
    const auto& mp = std::get<MovingPoint>(b.tuple(j)[std::size_t(attr_b)]);
    for (const UPoint& u : mp.units()) {
      entries.push_back({u.BoundingCube(), int64_t(j)});
    }
  }
  RTree3D tree = RTree3D::BulkLoad(std::move(entries));

  Relation out(a.name() + "_ix_" + b.name(),
               Schema::Concat(a.schema(), a.name() + ".", b.schema(),
                              b.name() + "."));
  for (std::size_t i = 0; i < a.NumTuples(); ++i) {
    const auto& mp = std::get<MovingPoint>(a.tuple(i)[std::size_t(attr_a)]);
    std::set<int64_t> candidates;
    for (const UPoint& u : mp.units()) {
      Cube c = u.BoundingCube();
      c.rect.min_x -= expand;
      c.rect.min_y -= expand;
      c.rect.max_x += expand;
      c.rect.max_y += expand;
      tree.QueryVisit(c, [&candidates](int64_t id) { candidates.insert(id); });
    }
    for (int64_t j : candidates) {
      if (!pred(a.tuple(i), i, b.tuple(std::size_t(j)), std::size_t(j))) {
        continue;
      }
      Tuple joined = a.tuple(i);
      joined.insert(joined.end(), b.tuple(std::size_t(j)).begin(),
                    b.tuple(std::size_t(j)).end());
      (void)out.Insert(std::move(joined));
    }
  }
  return out;
}

}  // namespace modb
