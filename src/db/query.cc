#include "db/query.h"

#include <algorithm>
#include <set>

namespace modb {

namespace {

// Shared by the serial and parallel index joins: the R-tree over all
// unit bounding cubes of b's moving-point attribute. Entry ids are the
// owning tuple indices (duplicates collapsed at query time).
RTree3D BuildUnitTree(const Relation& b, int attr_b) {
  std::vector<RTree3D::Entry> entries;
  for (std::size_t j = 0; j < b.NumTuples(); ++j) {
    const auto& mp = std::get<MovingPoint>(b.tuple(j)[std::size_t(attr_b)]);
    for (const UPoint& u : mp.units()) {
      entries.push_back({u.BoundingCube(), int64_t(j)});
    }
  }
  return RTree3D::BulkLoad(std::move(entries));
}

// Joined tuples for outer tuple i of the index join, appended to *out in
// ascending candidate order. One body for both operator variants keeps
// their outputs identical.
void ProbeIndexJoinTuple(
    const Relation& a, int attr_a, const Relation& b, const RTree3D& tree,
    double expand, std::size_t i,
    const std::function<bool(const Tuple&, std::size_t, const Tuple&,
                             std::size_t)>& pred,
    std::vector<Tuple>* out) {
  const auto& mp = std::get<MovingPoint>(a.tuple(i)[std::size_t(attr_a)]);
  std::set<int64_t> candidates;
  for (const UPoint& u : mp.units()) {
    Cube c = u.BoundingCube();
    c.rect.min_x -= expand;
    c.rect.min_y -= expand;
    c.rect.max_x += expand;
    c.rect.max_y += expand;
    tree.QueryVisit(c, [&candidates](int64_t id) { candidates.insert(id); });
  }
  for (int64_t j : candidates) {
    if (!pred(a.tuple(i), i, b.tuple(std::size_t(j)), std::size_t(j))) {
      continue;
    }
    Tuple joined = a.tuple(i);
    joined.insert(joined.end(), b.tuple(std::size_t(j)).begin(),
                  b.tuple(std::size_t(j)).end());
    out->push_back(std::move(joined));
  }
}

std::size_t EffectiveChunks(const ParallelOptions& options) {
  if (options.num_threads > 0) return std::size_t(options.num_threads);
  int n = options.pool ? options.pool->num_threads()
                       : ThreadPool::Shared().num_threads();
  return std::size_t(std::max(1, n));
}

ThreadPool& EffectivePool(const ParallelOptions& options) {
  return options.pool ? *options.pool : ThreadPool::Shared();
}

// Runs fn(i, &buffer_for_i's_chunk) over the outer indices [0, n) in
// `chunks` contiguous ranges, then inserts all buffered tuples into
// `out` in chunk order — the same order a serial i-ascending loop
// produces.
void ParallelOuterLoop(
    std::size_t n, const ParallelOptions& options, Relation* out,
    const std::function<void(std::size_t, std::vector<Tuple>*)>& fn) {
  const std::size_t chunks = EffectiveChunks(options);
  std::vector<std::vector<Tuple>> buffers(std::max<std::size_t>(chunks, 1));
  ParallelFor(EffectivePool(options), n, chunks,
              [&](std::size_t c, std::size_t begin, std::size_t end) {
                for (std::size_t i = begin; i < end; ++i) {
                  fn(i, &buffers[c]);
                }
              });
  for (std::vector<Tuple>& buf : buffers) {
    for (Tuple& t : buf) {
      // Insert cannot fail: tuples conform to the output schema.
      (void)out->Insert(std::move(t));
    }
  }
}

}  // namespace

Relation Select(const Relation& rel,
                const std::function<bool(const Tuple&)>& pred) {
  Relation out(rel.name() + "_sel", rel.schema());
  for (const Tuple& t : rel.tuples()) {
    if (pred(t)) {
      // Insert cannot fail: tuples already conform to the schema.
      (void)out.Insert(t);
    }
  }
  return out;
}

Result<Relation> Project(const Relation& rel,
                         const std::vector<std::string>& attributes) {
  std::vector<int> indices;
  std::vector<AttributeDef> defs;
  for (const std::string& name : attributes) {
    int idx = rel.schema().IndexOf(name);
    if (idx < 0) {
      return Status::NotFound("no attribute named " + name + " in " +
                              rel.name());
    }
    indices.push_back(idx);
    defs.push_back(rel.schema().attribute(std::size_t(idx)));
  }
  Relation out(rel.name() + "_proj", Schema(std::move(defs)));
  for (const Tuple& t : rel.tuples()) {
    Tuple projected;
    projected.reserve(indices.size());
    for (int idx : indices) projected.push_back(t[std::size_t(idx)]);
    (void)out.Insert(std::move(projected));
  }
  return out;
}

Relation NestedLoopJoin(
    const Relation& a, const Relation& b,
    const std::function<bool(const Tuple&, std::size_t, const Tuple&,
                             std::size_t)>& pred) {
  Relation out(a.name() + "_x_" + b.name(),
               Schema::Concat(a.schema(), a.name() + ".", b.schema(),
                              b.name() + "."));
  for (std::size_t i = 0; i < a.NumTuples(); ++i) {
    for (std::size_t j = 0; j < b.NumTuples(); ++j) {
      if (!pred(a.tuple(i), i, b.tuple(j), j)) continue;
      Tuple joined = a.tuple(i);
      joined.insert(joined.end(), b.tuple(j).begin(), b.tuple(j).end());
      (void)out.Insert(std::move(joined));
    }
  }
  return out;
}

Relation IndexJoinOnMovingPoint(
    const Relation& a, int attr_a, const Relation& b, int attr_b,
    double expand,
    const std::function<bool(const Tuple&, std::size_t, const Tuple&,
                             std::size_t)>& pred) {
  RTree3D tree = BuildUnitTree(b, attr_b);
  Relation out(a.name() + "_ix_" + b.name(),
               Schema::Concat(a.schema(), a.name() + ".", b.schema(),
                              b.name() + "."));
  std::vector<Tuple> buf;
  for (std::size_t i = 0; i < a.NumTuples(); ++i) {
    buf.clear();
    ProbeIndexJoinTuple(a, attr_a, b, tree, expand, i, pred, &buf);
    for (Tuple& t : buf) (void)out.Insert(std::move(t));
  }
  return out;
}

Relation SelectParallel(const Relation& rel,
                        const std::function<bool(const Tuple&)>& pred,
                        const ParallelOptions& options) {
  Relation out(rel.name() + "_sel", rel.schema());
  ParallelOuterLoop(rel.NumTuples(), options, &out,
                    [&](std::size_t i, std::vector<Tuple>* buf) {
                      if (pred(rel.tuple(i))) buf->push_back(rel.tuple(i));
                    });
  return out;
}

Relation NestedLoopJoinParallel(
    const Relation& a, const Relation& b,
    const std::function<bool(const Tuple&, std::size_t, const Tuple&,
                             std::size_t)>& pred,
    const ParallelOptions& options) {
  Relation out(a.name() + "_x_" + b.name(),
               Schema::Concat(a.schema(), a.name() + ".", b.schema(),
                              b.name() + "."));
  ParallelOuterLoop(
      a.NumTuples(), options, &out,
      [&](std::size_t i, std::vector<Tuple>* buf) {
        for (std::size_t j = 0; j < b.NumTuples(); ++j) {
          if (!pred(a.tuple(i), i, b.tuple(j), j)) continue;
          Tuple joined = a.tuple(i);
          joined.insert(joined.end(), b.tuple(j).begin(), b.tuple(j).end());
          buf->push_back(std::move(joined));
        }
      });
  return out;
}

Relation IndexJoinOnMovingPointParallel(
    const Relation& a, int attr_a, const Relation& b, int attr_b,
    double expand,
    const std::function<bool(const Tuple&, std::size_t, const Tuple&,
                             std::size_t)>& pred,
    const ParallelOptions& options) {
  RTree3D tree = BuildUnitTree(b, attr_b);
  Relation out(a.name() + "_ix_" + b.name(),
               Schema::Concat(a.schema(), a.name() + ".", b.schema(),
                              b.name() + "."));
  ParallelOuterLoop(a.NumTuples(), options, &out,
                    [&](std::size_t i, std::vector<Tuple>* buf) {
                      ProbeIndexJoinTuple(a, attr_a, b, tree, expand, i, pred,
                                          buf);
                    });
  return out;
}

}  // namespace modb
