#include "db/parallel.h"

#include <algorithm>
#include <string>
#include <utility>

#include "obs/metrics.h"

namespace modb {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    num_threads = int(std::max(1u, std::thread::hardware_concurrency()));
  }
  workers_.reserve(std::size_t(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool pool;
  return pool;
}

Status ValidateParallelOptions(const ParallelOptions& options) {
  if (options.num_threads > kMaxQueryThreads) {
    return Status::InvalidArgument(
        "ParallelOptions.num_threads = " + std::to_string(options.num_threads) +
        " exceeds kMaxQueryThreads = " + std::to_string(kMaxQueryThreads) +
        " (valid range: num_threads <= " + std::to_string(kMaxQueryThreads) +
        "; <= 0 selects one worker per pool thread)");
  }
  return Status::OK();
}

std::size_t ResolveWorkerCount(const ParallelOptions& options) {
  if (options.num_threads == 1) return 1;
  if (options.num_threads > 1) return std::size_t(options.num_threads);
  return std::size_t(std::max(1, ResolvePool(options).num_threads()));
}

ThreadPool& ResolvePool(const ParallelOptions& options) {
  return options.pool != nullptr ? *options.pool : ThreadPool::Shared();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and queue drained.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ParallelFor(
    ThreadPool& pool, std::size_t n, std::size_t chunks,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  chunks = std::min(std::max<std::size_t>(chunks, 1), n);
  auto bound = [n, chunks](std::size_t c) { return c * n / chunks; };
  MODB_COUNTER_INC("parallel.for_calls");
  if (chunks == 1) {
    MODB_COUNTER_INC("parallel.inline_runs");
    fn(0, 0, n);
    return;
  }
  MODB_COUNTER_ADD("parallel.chunks_dispatched", chunks);
  // Self-contained completion latch: ParallelFor invocations never share
  // state, so nested/concurrent calls on the same pool are safe (though
  // the caller must not invoke ParallelFor from inside a pool task).
  std::mutex mu;
  std::condition_variable done;
  std::size_t remaining = chunks;
  for (std::size_t c = 0; c < chunks; ++c) {
    pool.Submit([&, c] {
      fn(c, bound(c), bound(c + 1));
      std::lock_guard<std::mutex> lock(mu);
      if (--remaining == 0) done.notify_one();
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  done.wait(lock, [&] { return remaining == 0; });
}

}  // namespace modb
