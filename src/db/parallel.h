// A small fixed thread pool and a deterministic parallel-for, backing
// the parallel query operators (query.h). Workers are started once and
// reused; ParallelFor statically partitions an index range into
// contiguous chunks so callers can keep per-chunk result buffers and
// merge them in chunk order — making parallel operator output identical
// to the serial operator's.

#ifndef MODB_DB_PARALLEL_H_
#define MODB_DB_PARALLEL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "core/status.h"

namespace modb {

namespace obs {
struct ExecStats;
}  // namespace obs

/// Fixed-size pool of worker threads draining a FIFO task queue.
class ThreadPool {
 public:
  /// num_threads <= 0 selects std::thread::hardware_concurrency().
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return int(workers_.size()); }

  /// Enqueues a task; runs on some worker thread.
  void Submit(std::function<void()> task);

  /// Process-wide shared pool, sized to the hardware, started lazily.
  static ThreadPool& Shared();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Parallel execution policy shared by the query operators (db/query.h)
/// and the pipelined execution engine (src/exec/).
///
/// Determinism guarantee: every consumer partitions its input by rules
/// that depend only on (input size, worker count) — never on thread
/// scheduling — and merges per-partition results in a fixed order, so
/// parallel output is identical (tuple-for-tuple and byte-for-byte) to
/// serial output. Predicates must be thread-safe when more than one
/// worker runs: they are invoked concurrently from pool workers.
struct ParallelOptions {
  /// Worker count. 1 runs serially inline on the calling thread (no
  /// pool is touched); <= 0 uses one worker per thread of the pool;
  /// values above kMaxQueryThreads are rejected with InvalidArgument.
  int num_threads = 0;
  /// Pool to run on; nullptr uses ThreadPool::Shared().
  ThreadPool* pool = nullptr;
};

/// Upper bound on ParallelOptions.num_threads. Worker counts beyond
/// this are certainly a bug (a garbage or overflowed value), not a
/// policy.
inline constexpr int kMaxQueryThreads = 4096;

/// The one validation point for every ParallelOptions consumer — the
/// query operators, the exec engine, the batch kernels, and the modbd
/// server all call this, so the sanity bound is enforced (and phrased)
/// identically everywhere. The error message names the offending field
/// and the violated bound so a remote caller seeing the round-tripped
/// kInvalidArgument can fix its request without reading server logs.
Status ValidateParallelOptions(const ParallelOptions& options);

/// Per-call execution options shared by every query operator
/// (db/query.h) and the unified temporal batch front-ends
/// (temporal/batch_ops.h, temporal/paged_ops.h): one entrypoint shape,
/// Result<…>(…, const ExecOptions&), across the whole public surface.
struct ExecOptions {
  /// Chunking/pool policy. ExecOptions defaults to serial inline
  /// (num_threads = 1); a ParallelOptions you construct yourself keeps
  /// its historical default of 0 = one chunk per pool thread.
  ParallelOptions parallel{.num_threads = 1};
  /// When non-null, the operator fills one ExecStats node here
  /// (cardinalities, predicate/index counters, wall time, one child per
  /// worker chunk). Null skips even the clock reads.
  obs::ExecStats* stats = nullptr;
};

/// The worker/chunk count `options` resolves to: 1 when serial, the
/// explicit count when positive, one per pool thread otherwise.
/// Consumers size per-worker scratch state with this before running.
std::size_t ResolveWorkerCount(const ParallelOptions& options);

/// The pool `options` resolves to (ThreadPool::Shared() when unset).
ThreadPool& ResolvePool(const ParallelOptions& options);

/// Splits [0, n) into `chunks` contiguous ranges and runs
/// fn(chunk_index, begin, end) for each on the pool, blocking until all
/// complete. Chunk boundaries depend only on (n, chunks), so per-chunk
/// outputs can be merged deterministically. fn must be thread-safe.
/// chunks <= 1 (or n == 0) runs inline on the calling thread.
void ParallelFor(
    ThreadPool& pool, std::size_t n, std::size_t chunks,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn);

}  // namespace modb

#endif  // MODB_DB_PARALLEL_H_
