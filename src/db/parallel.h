// A small fixed thread pool and a deterministic parallel-for, backing
// the parallel query operators (query.h). Workers are started once and
// reused; ParallelFor statically partitions an index range into
// contiguous chunks so callers can keep per-chunk result buffers and
// merge them in chunk order — making parallel operator output identical
// to the serial operator's.

#ifndef MODB_DB_PARALLEL_H_
#define MODB_DB_PARALLEL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace modb {

/// Fixed-size pool of worker threads draining a FIFO task queue.
class ThreadPool {
 public:
  /// num_threads <= 0 selects std::thread::hardware_concurrency().
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return int(workers_.size()); }

  /// Enqueues a task; runs on some worker thread.
  void Submit(std::function<void()> task);

  /// Process-wide shared pool, sized to the hardware, started lazily.
  static ThreadPool& Shared();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Splits [0, n) into `chunks` contiguous ranges and runs
/// fn(chunk_index, begin, end) for each on the pool, blocking until all
/// complete. Chunk boundaries depend only on (n, chunks), so per-chunk
/// outputs can be merged deterministically. fn must be thread-safe.
/// chunks <= 1 (or n == 0) runs inline on the calling thread.
void ParallelFor(
    ThreadPool& pool, std::size_t n, std::size_t chunks,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn);

}  // namespace modb

#endif  // MODB_DB_PARALLEL_H_
