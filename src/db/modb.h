// modb::Db — the supported embedding facade and the serving layer's
// execution target. A Db holds named relations and prebuilt moving-point
// R-trees resident and answers typed QueryRequests: a closed, fully
// serializable query model (no std::function, no pointers) that a remote
// client can ship over the wire and a local embedder can construct
// directly. Db::Run lowers a request onto the rule-based planner and the
// morsel-driven pipelined engine (src/exec/), so results are
// byte-identical for any thread count — the property the serving layer's
// concurrent-client determinism contract rests on.
//
// Thread model: Register/Drop/BuildIndex take the writer lock; Run takes
// the reader lock for its whole execution, so queries run concurrently
// with each other and never observe a half-registered relation. Results
// are materialized copies — safe to use after the lock is released.
// A store-backed ingest (Apply kIngest) holds the writer lock only for
// the in-memory mutation; the durability commit runs under the reader
// lock, concurrently with queries, each of which pins the store epoch it
// started on (storage/recovery.h) so reclamation can never pull pages
// out from under a running request.

#ifndef MODB_DB_MODB_H_
#define MODB_DB_MODB_H_

#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "core/instant.h"
#include "core/status.h"
#include "db/parallel.h"
#include "db/relation.h"
#include "index/rtree3d.h"
#include "ingest/live_relation.h"
#include "obs/exec_stats.h"

namespace modb {

/// One selection filter of the closed request model. `attr` names an
/// attribute of the source relation; which other fields are read depends
/// on `kind`. Unknown attributes and type mismatches are
/// InvalidArgument at Run time, never undefined behavior.
struct FilterSpec {
  enum class Kind : std::uint8_t {
    /// String attribute equals `value` (Q1's airline = "Lufthansa").
    kStringEquals = 0,
    /// length(trajectory(mpoint attr)) >= `threshold` (Q1's second
    /// conjunct).
    kTrajectoryLengthAtLeast = 1,
    /// Moving-point attr is defined at instant `t0`.
    kPresentAt = 2,
    /// Moving-point attr's deftime intersects [t0, t1]. Annotated with a
    /// TimeWindow, so the planner can push it into spilled scans.
    kDeftimeIntersects = 3,
  };
  Kind kind = Kind::kStringEquals;
  std::string attr;
  std::string value;      // kStringEquals
  double threshold = 0;   // kTrajectoryLengthAtLeast
  Instant t0 = 0;         // kPresentAt, kDeftimeIntersects
  Instant t1 = 0;         // kDeftimeIntersects
};

/// A typed query against a Db. Pure data: serve/wire.h encodes it 1:1.
struct QueryRequest {
  enum class Kind : std::uint8_t {
    /// σ(relation) under `filters`.
    kSelect = 0,
    /// π(σ(relation)) onto the `project` attribute names.
    kProject = 1,
    /// Nested-loop ever-closer-than join of relation × join_relation.
    kJoin = 2,
    /// Same join through the R-tree (prebuilt via Db::BuildIndex when
    /// available, else built inside the plan).
    kIndexJoin = 3,
    /// atinstant of every tuple's `attr` at each of `instants`
    /// (ascending) — xs/ys/defined, row-major [tuple][instant].
    kAtInstantBatch = 4,
    /// present of every tuple's `attr` at each of `instants`.
    kPresentBatch = 5,
    /// Continuous-window aggregation over `attr`: tumbling (step ==
    /// width) or sliding (step < width) windows [s, s + width) with
    /// s = window_t0 + i*window_step while s < window_t1. Per window,
    /// over the (optionally filtered) source: how many objects are
    /// inside the rect at some instant of the window, the distance
    /// those objects travel during it, and their average speed. Emits
    /// one row per window (empty windows included) as rows payload
    /// {w_start, w_end, count, distance, avg_speed}.
    kWindowAggregate = 6,
  };
  Kind kind = Kind::kSelect;

  /// Source relation name (join outer).
  std::string relation;
  /// Pre-filters, applied in order (kSelect/kProject/kJoin/kIndexJoin).
  std::vector<FilterSpec> filters;
  /// Output attribute names, in order (kProject).
  std::vector<std::string> project;

  /// Join inner relation (may equal `relation` — Q2's self join).
  std::string join_relation;
  /// Moving-point attribute on the source: the join outer attribute for
  /// kJoin/kIndexJoin, the evaluation target for the batch kinds.
  std::string attr;
  /// Moving-point attribute on `join_relation`.
  std::string join_attr;
  /// Join predicate: val(initial(atmin(distance(a, b)))) < distance.
  double distance = 0;
  /// Self-join dedup: emit only pairs with outer row < inner row.
  bool distinct_pairs = true;

  /// Evaluation instants for the batch kinds; must be ascending.
  std::vector<Instant> instants;

  /// kWindowAggregate: the window sweep [window_t0, window_t1) cut into
  /// windows of `window_width` advancing by `window_step` (both > 0).
  Instant window_t0 = 0;
  Instant window_t1 = 0;
  Instant window_width = 0;
  Instant window_step = 0;
  /// kWindowAggregate: the query rect, closed on all sides. An inverted
  /// rect (min > max on either axis — the default) means "no spatial
  /// constraint": every defined instant qualifies.
  double min_x = 0;
  double min_y = 0;
  double max_x = -1;
  double max_y = -1;

  /// Wire-level execution hint: the worker count the client asks for.
  /// The server copies it into ExecOptions.parallel and the shared
  /// ValidateParallelOptions bound applies; Db::Run itself executes
  /// under the ExecOptions it is given, not this field.
  std::int64_t num_threads = 1;
};

/// The answer to a QueryRequest. Exactly one payload is populated —
/// `payload` says which: `rows` for the relational kinds, xs/ys/defined
/// for kAtInstantBatch, `present` for kPresentBatch. `stats` is always
/// filled.
struct QueryResult {
  enum class Payload : std::uint8_t { kRows = 0, kXY = 1, kPresent = 2 };
  Payload payload = Payload::kRows;

  Relation rows;

  /// Batch payload geometry: row-major [tuple][instant] flattening.
  std::uint64_t batch_tuples = 0;
  std::uint64_t batch_instants = 0;
  std::vector<double> xs;
  std::vector<double> ys;
  std::vector<std::uint8_t> defined;
  std::vector<std::uint8_t> present;

  ExecStats stats;
};

/// A typed mutation against a Db — the write-side counterpart of
/// QueryRequest, equally closed and wire-encodable (serve/wire.h).
struct MutationRequest {
  enum class Kind : std::uint8_t {
    /// Creates an empty live relation named `relation` (schema
    /// {id: string, trail: mpoint}); `seal_units` > 0 overrides the
    /// default seal threshold.
    kRegisterLive = 0,
    /// Drops `relation` (live or not) and everything derived from it.
    kDropRelation = 1,
    /// Appends `fixes` to live relation `relation`, atomically: the
    /// whole batch is validated first and rejected as a unit. When the
    /// relation is store-backed the batch is committed before the ack —
    /// an acknowledged ingest is durable.
    kIngest = 2,
  };
  Kind kind = Kind::kIngest;
  std::string relation;

  struct Fix {
    std::string object_id;
    Instant t = 0;
    double x = 0;
    double y = 0;
  };
  std::vector<Fix> fixes;

  /// kRegisterLive: 0 keeps the LiveOptions default.
  std::uint64_t seal_units = 0;
};

/// The ack for a MutationRequest: what was applied plus a snapshot of
/// the live relation's layer sizes (zeros for kRegisterLive/kDrop).
struct MutationResult {
  std::uint64_t accepted = 0;
  std::uint64_t objects = 0;
  std::uint64_t mem_units = 0;
  std::uint64_t delta_entries = 0;
  std::uint64_t base_entries = 0;
  std::uint64_t merges = 0;
  /// Store epoch after the mutation; 0 when no store is attached.
  std::uint64_t epoch = 0;
};

/// The resident database: named relations plus prebuilt R-trees over
/// their moving-point attributes.
class Db {
 public:
  Db() = default;
  Db(const Db&) = delete;
  Db& operator=(const Db&) = delete;

  /// Registers `rel` under its name. FailedPrecondition if the name is
  /// taken, InvalidArgument on an empty name.
  Status Register(Relation rel);

  /// Drops the relation and any indexes built over it. NotFound if
  /// absent.
  Status Drop(const std::string& name);

  /// Builds (or rebuilds) the R-tree over `relation`'s moving-point
  /// attribute `attr` and keeps it resident; subsequent kIndexJoin
  /// requests with this inner attribute probe it without a build step.
  /// FailedPrecondition on live relations — they maintain their own
  /// layered index.
  Status BuildIndex(const std::string& relation, const std::string& attr);

  /// Creates an empty live relation (ingest target). Name rules as for
  /// Register.
  Status RegisterLive(const std::string& name,
                      ingest::LiveOptions options = ingest::LiveOptions());

  /// Attaches a durability store to live relation `name` (adopting an
  /// empty store or recovering a populated one — see
  /// ingest::LiveRelation::AttachStore). The store must outlive the Db
  /// entry.
  Status AttachLiveStore(const std::string& name, VersionedSpillStore* store);

  /// Applies a mutation. The in-memory effect happens under the writer
  /// lock; for a store-backed kIngest the durability commit then runs
  /// under the reader lock (concurrently with queries) before the ack
  /// returns, so an acknowledged batch is still always durable. The ack
  /// reflects the post-batch (and, when store-backed, post-commit)
  /// state.
  Result<MutationResult> Apply(const MutationRequest& req);

  /// One LSM maintenance round for live relation `name`: snapshots the
  /// base+delta union under the reader lock, bulk-loads the merged tree
  /// with NO lock held, and installs it under the writer lock unless a
  /// seal intervened (in which case the round is a no-op and a later
  /// round retries). Queries are never blocked on the build.
  Status MergeLive(const std::string& name);

  /// Final drain for live relation `name` (modbd's shutdown path):
  /// seals every tail, compacts delta into base, and — when
  /// store-backed — commits one final epoch, so recovery reopens to
  /// exactly this state. NotFound if absent, FailedPrecondition if not
  /// live.
  Status DrainLive(const std::string& name);

  /// Registered relation names, sorted.
  std::vector<std::string> RelationNames() const;
  /// Tuple count of a registered relation; NotFound if absent.
  Result<std::uint64_t> NumTuples(const std::string& name) const;

  /// Executes `req` under `options` (policy + optional extra stats
  /// sink; the result's own `stats` member is always populated).
  /// Deterministic: for a fixed Db state and request, the payload is
  /// byte-identical for every valid options.parallel.num_threads.
  Result<QueryResult> Run(const QueryRequest& req,
                          const ExecOptions& options = {}) const;

 private:
  struct Entry {
    Relation rel;
    /// Prebuilt R-trees by attribute slot.
    std::map<int, RTree3D> indexes;
    /// Set for live relations; `rel` is then unused and the relation's
    /// tuples live inside (live->relation()).
    std::unique_ptr<ingest::LiveRelation> live;
  };

  /// The queryable relation of an entry (live or static).
  static const Relation& RelOf(const Entry& e) {
    return e.live != nullptr ? e.live->relation() : e.rel;
  }

  mutable std::shared_mutex mu_;
  std::map<std::string, Entry> relations_;
};

}  // namespace modb

#endif  // MODB_DB_MODB_H_
