// modb::Db — the supported embedding facade and the serving layer's
// execution target. A Db holds named relations and prebuilt moving-point
// R-trees resident and answers typed QueryRequests: a closed, fully
// serializable query model (no std::function, no pointers) that a remote
// client can ship over the wire and a local embedder can construct
// directly. Db::Run lowers a request onto the rule-based planner and the
// morsel-driven pipelined engine (src/exec/), so results are
// byte-identical for any thread count — the property the serving layer's
// concurrent-client determinism contract rests on.
//
// Thread model: Register/Drop/BuildIndex take the writer lock; Run takes
// the reader lock for its whole execution, so queries run concurrently
// with each other and never observe a half-registered relation. Results
// are materialized copies — safe to use after the lock is released.

#ifndef MODB_DB_MODB_H_
#define MODB_DB_MODB_H_

#include <cstdint>
#include <map>
#include <shared_mutex>
#include <string>
#include <vector>

#include "core/instant.h"
#include "core/status.h"
#include "db/parallel.h"
#include "db/relation.h"
#include "index/rtree3d.h"
#include "obs/exec_stats.h"

namespace modb {

/// One selection filter of the closed request model. `attr` names an
/// attribute of the source relation; which other fields are read depends
/// on `kind`. Unknown attributes and type mismatches are
/// InvalidArgument at Run time, never undefined behavior.
struct FilterSpec {
  enum class Kind : std::uint8_t {
    /// String attribute equals `value` (Q1's airline = "Lufthansa").
    kStringEquals = 0,
    /// length(trajectory(mpoint attr)) >= `threshold` (Q1's second
    /// conjunct).
    kTrajectoryLengthAtLeast = 1,
    /// Moving-point attr is defined at instant `t0`.
    kPresentAt = 2,
    /// Moving-point attr's deftime intersects [t0, t1]. Annotated with a
    /// TimeWindow, so the planner can push it into spilled scans.
    kDeftimeIntersects = 3,
  };
  Kind kind = Kind::kStringEquals;
  std::string attr;
  std::string value;      // kStringEquals
  double threshold = 0;   // kTrajectoryLengthAtLeast
  Instant t0 = 0;         // kPresentAt, kDeftimeIntersects
  Instant t1 = 0;         // kDeftimeIntersects
};

/// A typed query against a Db. Pure data: serve/wire.h encodes it 1:1.
struct QueryRequest {
  enum class Kind : std::uint8_t {
    /// σ(relation) under `filters`.
    kSelect = 0,
    /// π(σ(relation)) onto the `project` attribute names.
    kProject = 1,
    /// Nested-loop ever-closer-than join of relation × join_relation.
    kJoin = 2,
    /// Same join through the R-tree (prebuilt via Db::BuildIndex when
    /// available, else built inside the plan).
    kIndexJoin = 3,
    /// atinstant of every tuple's `attr` at each of `instants`
    /// (ascending) — xs/ys/defined, row-major [tuple][instant].
    kAtInstantBatch = 4,
    /// present of every tuple's `attr` at each of `instants`.
    kPresentBatch = 5,
  };
  Kind kind = Kind::kSelect;

  /// Source relation name (join outer).
  std::string relation;
  /// Pre-filters, applied in order (kSelect/kProject/kJoin/kIndexJoin).
  std::vector<FilterSpec> filters;
  /// Output attribute names, in order (kProject).
  std::vector<std::string> project;

  /// Join inner relation (may equal `relation` — Q2's self join).
  std::string join_relation;
  /// Moving-point attribute on the source: the join outer attribute for
  /// kJoin/kIndexJoin, the evaluation target for the batch kinds.
  std::string attr;
  /// Moving-point attribute on `join_relation`.
  std::string join_attr;
  /// Join predicate: val(initial(atmin(distance(a, b)))) < distance.
  double distance = 0;
  /// Self-join dedup: emit only pairs with outer row < inner row.
  bool distinct_pairs = true;

  /// Evaluation instants for the batch kinds; must be ascending.
  std::vector<Instant> instants;

  /// Wire-level execution hint: the worker count the client asks for.
  /// The server copies it into ExecOptions.parallel and the shared
  /// ValidateParallelOptions bound applies; Db::Run itself executes
  /// under the ExecOptions it is given, not this field.
  std::int64_t num_threads = 1;
};

/// The answer to a QueryRequest. Exactly one payload is populated —
/// `payload` says which: `rows` for the relational kinds, xs/ys/defined
/// for kAtInstantBatch, `present` for kPresentBatch. `stats` is always
/// filled.
struct QueryResult {
  enum class Payload : std::uint8_t { kRows = 0, kXY = 1, kPresent = 2 };
  Payload payload = Payload::kRows;

  Relation rows;

  /// Batch payload geometry: row-major [tuple][instant] flattening.
  std::uint64_t batch_tuples = 0;
  std::uint64_t batch_instants = 0;
  std::vector<double> xs;
  std::vector<double> ys;
  std::vector<std::uint8_t> defined;
  std::vector<std::uint8_t> present;

  ExecStats stats;
};

/// The resident database: named relations plus prebuilt R-trees over
/// their moving-point attributes.
class Db {
 public:
  Db() = default;
  Db(const Db&) = delete;
  Db& operator=(const Db&) = delete;

  /// Registers `rel` under its name. FailedPrecondition if the name is
  /// taken, InvalidArgument on an empty name.
  Status Register(Relation rel);

  /// Drops the relation and any indexes built over it. NotFound if
  /// absent.
  Status Drop(const std::string& name);

  /// Builds (or rebuilds) the R-tree over `relation`'s moving-point
  /// attribute `attr` and keeps it resident; subsequent kIndexJoin
  /// requests with this inner attribute probe it without a build step.
  Status BuildIndex(const std::string& relation, const std::string& attr);

  /// Registered relation names, sorted.
  std::vector<std::string> RelationNames() const;
  /// Tuple count of a registered relation; NotFound if absent.
  Result<std::uint64_t> NumTuples(const std::string& name) const;

  /// Executes `req` under `options` (policy + optional extra stats
  /// sink; the result's own `stats` member is always populated).
  /// Deterministic: for a fixed Db state and request, the payload is
  /// byte-identical for every valid options.parallel.num_threads.
  Result<QueryResult> Run(const QueryRequest& req,
                          const ExecOptions& options = {}) const;

 private:
  struct Entry {
    Relation rel;
    /// Prebuilt R-trees by attribute slot.
    std::map<int, RTree3D> indexes;
  };

  mutable std::shared_mutex mu_;
  std::map<std::string, Entry> relations_;
};

}  // namespace modb

#endif  // MODB_DB_MODB_H_
