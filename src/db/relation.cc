#include "db/relation.h"

namespace modb {

const char* AttributeTypeName(AttributeType type) {
  switch (type) {
    case AttributeType::kInt:
      return "int";
    case AttributeType::kReal:
      return "real";
    case AttributeType::kBool:
      return "bool";
    case AttributeType::kString:
      return "string";
    case AttributeType::kPoint:
      return "point";
    case AttributeType::kPoints:
      return "points";
    case AttributeType::kLine:
      return "line";
    case AttributeType::kRegion:
      return "region";
    case AttributeType::kPeriods:
      return "periods";
    case AttributeType::kMovingBool:
      return "mbool";
    case AttributeType::kMovingInt:
      return "mint";
    case AttributeType::kMovingString:
      return "mstring";
    case AttributeType::kMovingReal:
      return "mreal";
    case AttributeType::kMovingPoint:
      return "mpoint";
    case AttributeType::kMovingPoints:
      return "mpoints";
    case AttributeType::kMovingLine:
      return "mline";
    case AttributeType::kMovingRegion:
      return "mregion";
  }
  return "unknown";
}

AttributeType TypeOf(const AttributeValue& value) {
  return static_cast<AttributeType>(value.index());
}

int Schema::IndexOf(const std::string& name) const {
  for (std::size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == name) return int(i);
  }
  return -1;
}

Schema Schema::Concat(const Schema& a, const std::string& prefix_a,
                      const Schema& b, const std::string& prefix_b) {
  std::vector<AttributeDef> defs;
  defs.reserve(a.NumAttributes() + b.NumAttributes());
  for (const AttributeDef& d : a.attributes()) {
    defs.push_back({prefix_a + d.name, d.type});
  }
  for (const AttributeDef& d : b.attributes()) {
    defs.push_back({prefix_b + d.name, d.type});
  }
  return Schema(std::move(defs));
}

Status Relation::Insert(Tuple tuple) {
  if (tuple.size() != schema_.NumAttributes()) {
    return Status::InvalidArgument("tuple arity mismatch for relation " +
                                   name_);
  }
  for (std::size_t i = 0; i < tuple.size(); ++i) {
    if (TypeOf(tuple[i]) != schema_.attribute(i).type) {
      return Status::InvalidArgument(
          "attribute " + schema_.attribute(i).name + " expects type " +
          AttributeTypeName(schema_.attribute(i).type) + " but got " +
          AttributeTypeName(TypeOf(tuple[i])));
    }
  }
  tuples_.push_back(std::move(tuple));
  return Status::OK();
}

Status Relation::SetValue(std::size_t row, std::size_t slot,
                          AttributeValue value) {
  if (row >= tuples_.size()) {
    return Status::OutOfRange("row " + std::to_string(row) +
                              " out of range for relation " + name_);
  }
  if (slot >= schema_.NumAttributes()) {
    return Status::OutOfRange("attribute slot " + std::to_string(slot) +
                              " out of range for relation " + name_);
  }
  if (TypeOf(value) != schema_.attribute(slot).type) {
    return Status::InvalidArgument(
        "attribute " + schema_.attribute(slot).name + " expects type " +
        AttributeTypeName(schema_.attribute(slot).type) + " but got " +
        AttributeTypeName(TypeOf(value)));
  }
  tuples_[row][slot] = std::move(value);
  return Status::OK();
}

}  // namespace modb
