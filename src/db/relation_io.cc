#include "db/relation_io.h"

#include <fstream>

#include "storage/flat.h"

namespace modb {

namespace {

constexpr uint32_t kRelationMagic = 0x4d4f4452;  // "MODR".

Result<FlatValue> AttributeToFlat(const AttributeValue& value) {
  switch (TypeOf(value)) {
    case AttributeType::kInt:
      return ToFlat(std::get<IntValue>(value));
    case AttributeType::kReal:
      return ToFlat(std::get<RealValue>(value));
    case AttributeType::kBool:
      return ToFlat(std::get<BoolValue>(value));
    case AttributeType::kString:
      return ToFlat(std::get<StringValue>(value));
    case AttributeType::kPoint:
      return ToFlat(std::get<Point>(value));
    case AttributeType::kPoints:
      return ToFlat(std::get<Points>(value));
    case AttributeType::kLine:
      return ToFlat(std::get<Line>(value));
    case AttributeType::kRegion:
      return ToFlat(std::get<Region>(value));
    case AttributeType::kPeriods:
      return ToFlat(std::get<Periods>(value));
    case AttributeType::kMovingBool:
      return ToFlat(std::get<MovingBool>(value));
    case AttributeType::kMovingInt:
      return ToFlat(std::get<MovingInt>(value));
    case AttributeType::kMovingString:
      return ToFlat(std::get<MovingString>(value));
    case AttributeType::kMovingReal:
      return ToFlat(std::get<MovingReal>(value));
    case AttributeType::kMovingPoint:
      return ToFlat(std::get<MovingPoint>(value));
    case AttributeType::kMovingPoints:
      return ToFlat(std::get<MovingPoints>(value));
    case AttributeType::kMovingLine:
      return ToFlat(std::get<MovingLine>(value));
    case AttributeType::kMovingRegion:
      return ToFlat(std::get<MovingRegion>(value));
  }
  return Status::Internal("unknown attribute type");
}

Result<AttributeValue> AttributeFromFlat(AttributeType type,
                                         const FlatValue& flat) {
  auto wrap = [](auto result) -> Result<AttributeValue> {
    if (!result.ok()) return result.status();
    return AttributeValue(std::move(*result));
  };
  switch (type) {
    case AttributeType::kInt:
      return wrap(IntFromFlat(flat));
    case AttributeType::kReal:
      return wrap(RealFromFlat(flat));
    case AttributeType::kBool:
      return wrap(BoolFromFlat(flat));
    case AttributeType::kString:
      return wrap(StringFromFlat(flat));
    case AttributeType::kPoint:
      return wrap(PointFromFlat(flat));
    case AttributeType::kPoints:
      return wrap(PointsFromFlat(flat));
    case AttributeType::kLine:
      return wrap(LineFromFlat(flat));
    case AttributeType::kRegion:
      return wrap(RegionFromFlat(flat));
    case AttributeType::kPeriods:
      return wrap(PeriodsFromFlat(flat));
    case AttributeType::kMovingBool:
      return wrap(MovingBoolFromFlat(flat));
    case AttributeType::kMovingInt:
      return wrap(MovingIntFromFlat(flat));
    case AttributeType::kMovingString:
      return wrap(MovingStringFromFlat(flat));
    case AttributeType::kMovingReal:
      return wrap(MovingRealFromFlat(flat));
    case AttributeType::kMovingPoint:
      return wrap(MovingPointFromFlat(flat));
    case AttributeType::kMovingPoints:
      return wrap(MovingPointsFromFlat(flat));
    case AttributeType::kMovingLine:
      return wrap(MovingLineFromFlat(flat));
    case AttributeType::kMovingRegion:
      return wrap(MovingRegionFromFlat(flat));
  }
  return Status::InvalidArgument("unknown attribute type tag");
}

}  // namespace

Result<std::string> SerializeAttribute(const AttributeValue& value) {
  Result<FlatValue> flat = AttributeToFlat(value);
  if (!flat.ok()) return flat.status();
  ByteWriter w;
  w.PutU8(uint8_t(TypeOf(value)));
  w.PutBytes(SerializeFlat(*flat));
  return w.Take();
}

Result<AttributeValue> DeserializeAttribute(std::string_view blob) {
  ByteReader r(blob);
  uint8_t tag;
  MODB_RETURN_IF_ERROR(r.GetU8(&tag));
  if (tag > uint8_t(AttributeType::kMovingRegion)) {
    return Status::InvalidArgument("bad attribute type tag");
  }
  std::string rest;
  MODB_RETURN_IF_ERROR(r.GetBytes(r.Remaining(), &rest));
  Result<FlatValue> flat = ParseFlat(rest);
  if (!flat.ok()) return flat.status();
  return AttributeFromFlat(AttributeType(tag), *flat);
}

Status SaveRelation(const Relation& rel, const std::string& path) {
  ByteWriter w;
  w.PutU32(kRelationMagic);
  w.PutU32(uint32_t(rel.name().size()));
  w.PutBytes(rel.name());
  w.PutU32(uint32_t(rel.schema().NumAttributes()));
  for (const AttributeDef& d : rel.schema().attributes()) {
    w.PutU32(uint32_t(d.name.size()));
    w.PutBytes(d.name);
    w.PutU8(uint8_t(d.type));
  }
  w.PutU32(uint32_t(rel.NumTuples()));
  for (const Tuple& t : rel.tuples()) {
    for (const AttributeValue& v : t) {
      Result<std::string> blob = SerializeAttribute(v);
      if (!blob.ok()) return blob.status();
      w.PutU32(uint32_t(blob->size()));
      w.PutBytes(*blob);
    }
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::Internal("cannot open " + path + " for writing");
  std::string bytes = w.Take();
  out.write(bytes.data(), std::streamsize(bytes.size()));
  if (!out) return Status::Internal("short write to " + path);
  return Status::OK();
}

Result<Relation> LoadRelation(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  ByteReader r(bytes);
  uint32_t magic;
  MODB_RETURN_IF_ERROR(r.GetU32(&magic));
  if (magic != kRelationMagic) {
    return Status::InvalidArgument("not a MODB relation file: " + path);
  }
  uint32_t name_len;
  MODB_RETURN_IF_ERROR(r.GetU32(&name_len));
  std::string name;
  MODB_RETURN_IF_ERROR(r.GetBytes(name_len, &name));
  uint32_t num_attrs;
  MODB_RETURN_IF_ERROR(r.GetU32(&num_attrs));
  std::vector<AttributeDef> defs;
  for (uint32_t i = 0; i < num_attrs; ++i) {
    uint32_t len;
    MODB_RETURN_IF_ERROR(r.GetU32(&len));
    AttributeDef def;
    MODB_RETURN_IF_ERROR(r.GetBytes(len, &def.name));
    uint8_t tag;
    MODB_RETURN_IF_ERROR(r.GetU8(&tag));
    if (tag > uint8_t(AttributeType::kMovingRegion)) {
      return Status::InvalidArgument("bad schema type tag");
    }
    def.type = AttributeType(tag);
    defs.push_back(std::move(def));
  }
  Relation rel(name, Schema(std::move(defs)));
  uint32_t num_tuples;
  MODB_RETURN_IF_ERROR(r.GetU32(&num_tuples));
  for (uint32_t i = 0; i < num_tuples; ++i) {
    Tuple tuple;
    for (uint32_t a = 0; a < num_attrs; ++a) {
      uint32_t len;
      MODB_RETURN_IF_ERROR(r.GetU32(&len));
      std::string blob;
      MODB_RETURN_IF_ERROR(r.GetBytes(len, &blob));
      Result<AttributeValue> v = DeserializeAttribute(blob);
      if (!v.ok()) return v.status();
      tuple.push_back(std::move(*v));
    }
    MODB_RETURN_IF_ERROR(rel.Insert(std::move(tuple)));
  }
  return rel;
}

Result<Relation> Timeslice(const Relation& rel, Instant t) {
  // Schema: moving types collapse to their instantaneous types.
  auto slice_type = [](AttributeType type) {
    switch (type) {
      case AttributeType::kMovingBool:
        return AttributeType::kBool;
      case AttributeType::kMovingInt:
        return AttributeType::kInt;
      case AttributeType::kMovingString:
        return AttributeType::kString;
      case AttributeType::kMovingReal:
        return AttributeType::kReal;
      case AttributeType::kMovingPoint:
        return AttributeType::kPoint;
      case AttributeType::kMovingPoints:
        return AttributeType::kPoints;
      case AttributeType::kMovingLine:
        return AttributeType::kLine;
      case AttributeType::kMovingRegion:
        return AttributeType::kRegion;
      default:
        return type;
    }
  };
  std::vector<AttributeDef> defs;
  for (const AttributeDef& d : rel.schema().attributes()) {
    defs.push_back({d.name, slice_type(d.type)});
  }
  Relation out(rel.name() + "@t", Schema(std::move(defs)));

  for (const Tuple& tuple : rel.tuples()) {
    Tuple sliced;
    bool defined = true;
    for (const AttributeValue& v : tuple) {
      switch (TypeOf(v)) {
        case AttributeType::kMovingBool: {
          auto it = std::get<MovingBool>(v).AtInstant(t);
          if (!it.defined) defined = false;
          sliced.push_back(BoolValue(it.defined && it.val()));
          break;
        }
        case AttributeType::kMovingInt: {
          auto it = std::get<MovingInt>(v).AtInstant(t);
          if (!it.defined) defined = false;
          sliced.push_back(IntValue(it.defined ? it.val() : 0));
          break;
        }
        case AttributeType::kMovingString: {
          auto it = std::get<MovingString>(v).AtInstant(t);
          if (!it.defined) defined = false;
          sliced.push_back(StringValue(it.defined ? it.val() : ""));
          break;
        }
        case AttributeType::kMovingReal: {
          auto it = std::get<MovingReal>(v).AtInstant(t);
          if (!it.defined) defined = false;
          sliced.push_back(RealValue(it.defined ? it.val() : 0));
          break;
        }
        case AttributeType::kMovingPoint: {
          auto it = std::get<MovingPoint>(v).AtInstant(t);
          if (!it.defined) defined = false;
          sliced.push_back(it.defined ? it.val() : Point());
          break;
        }
        case AttributeType::kMovingPoints: {
          auto it = std::get<MovingPoints>(v).AtInstant(t);
          if (!it.defined) defined = false;
          sliced.push_back(it.defined ? it.val() : Points());
          break;
        }
        case AttributeType::kMovingLine: {
          auto it = std::get<MovingLine>(v).AtInstant(t);
          if (!it.defined) defined = false;
          sliced.push_back(it.defined ? it.val() : Line());
          break;
        }
        case AttributeType::kMovingRegion: {
          auto it = std::get<MovingRegion>(v).AtInstant(t);
          if (!it.defined) defined = false;
          sliced.push_back(it.defined ? it.val() : Region());
          break;
        }
        default:
          sliced.push_back(v);
      }
    }
    // Tuples whose moving attributes are undefined at t are dropped —
    // the timeslice contains only objects that exist at t.
    if (!defined) continue;
    MODB_RETURN_IF_ERROR(out.Insert(std::move(sliced)));
  }
  return out;
}

}  // namespace modb
