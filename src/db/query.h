// Minimal functional query operators over Relation: scan-based selection,
// projection, and (nested-loop or index-accelerated) join. These are what
// the examples and benchmarks use to express the Section-2 queries.

#ifndef MODB_DB_QUERY_H_
#define MODB_DB_QUERY_H_

#include <functional>
#include <string>
#include <vector>

#include "core/status.h"
#include "db/parallel.h"
#include "db/relation.h"
#include "index/rtree3d.h"

namespace modb {

/// Options for the parallel operator variants. Each operator partitions
/// its outer relation into `num_threads` contiguous chunks with
/// per-worker result buffers merged in chunk order, so the output
/// relation is identical (tuple-for-tuple and byte-for-byte) to the
/// serial operator's. Predicates must be thread-safe: they are invoked
/// concurrently from pool workers.
struct ParallelOptions {
  /// Worker/chunk count; <= 0 uses the shared pool's thread count.
  int num_threads = 0;
  /// Pool to run on; nullptr uses ThreadPool::Shared().
  ThreadPool* pool = nullptr;
};

/// σ: tuples of `rel` satisfying `pred`.
Relation Select(const Relation& rel,
                const std::function<bool(const Tuple&)>& pred);

/// π: the named attributes, in the given order.
Result<Relation> Project(const Relation& rel,
                         const std::vector<std::string>& attributes);

/// Nested-loop join with an arbitrary predicate over the two tuples.
/// For a self join pass the same relation twice; `pred` receives
/// (left tuple, left index, right tuple, right index) so self-join pairs
/// can be deduplicated by index.
Relation NestedLoopJoin(
    const Relation& a, const Relation& b,
    const std::function<bool(const Tuple&, std::size_t, const Tuple&,
                             std::size_t)>& pred);

/// Index nested-loop join specialized for spatio-temporal joins over
/// moving-point attributes: an R-tree over the unit bounding cubes of
/// `b`'s attribute prunes candidate pairs before `pred` runs. `expand`
/// grows each query cube by a spatial slack (e.g. the join distance).
Relation IndexJoinOnMovingPoint(
    const Relation& a, int attr_a, const Relation& b, int attr_b,
    double expand,
    const std::function<bool(const Tuple&, std::size_t, const Tuple&,
                             std::size_t)>& pred);

/// Parallel σ: output identical to Select(rel, pred).
Relation SelectParallel(const Relation& rel,
                        const std::function<bool(const Tuple&)>& pred,
                        const ParallelOptions& options = {});

/// Parallel nested-loop join: the outer relation is partitioned across
/// workers; output identical to NestedLoopJoin(a, b, pred).
Relation NestedLoopJoinParallel(
    const Relation& a, const Relation& b,
    const std::function<bool(const Tuple&, std::size_t, const Tuple&,
                             std::size_t)>& pred,
    const ParallelOptions& options = {});

/// Parallel index join: the R-tree over `b` is built once (serially),
/// then probed concurrently for chunks of `a`; output identical to
/// IndexJoinOnMovingPoint(a, attr_a, b, attr_b, expand, pred).
Relation IndexJoinOnMovingPointParallel(
    const Relation& a, int attr_a, const Relation& b, int attr_b,
    double expand,
    const std::function<bool(const Tuple&, std::size_t, const Tuple&,
                             std::size_t)>& pred,
    const ParallelOptions& options = {});

}  // namespace modb

#endif  // MODB_DB_QUERY_H_
