// Minimal functional query operators over Relation: scan-based selection,
// projection, and (nested-loop or index-accelerated) join. These are what
// the examples and benchmarks use to express the Section-2 queries.
//
// All operators share one entrypoint shape: they take an ExecOptions
// (execution policy + optional ExecStats sink) and return
// Result<Relation>. Serial vs parallel execution is a policy knob, not a
// separate function.

#ifndef MODB_DB_QUERY_H_
#define MODB_DB_QUERY_H_

#include <functional>
#include <string>
#include <vector>

#include "core/status.h"
#include "db/parallel.h"
#include "db/relation.h"
#include "index/rtree3d.h"
#include "obs/exec_stats.h"

namespace modb {

// ParallelOptions, kMaxQueryThreads, ValidateParallelOptions, and
// ExecOptions live in db/parallel.h so the sanity bound is validated by
// one shared helper — and the entrypoint shape is shared — across the
// query operators, the exec engine, and the temporal batch kernels.

/// σ: tuples of `rel` satisfying `pred`.
Result<Relation> Select(const Relation& rel,
                        const std::function<bool(const Tuple&)>& pred,
                        const ExecOptions& options = {});

/// π: the named attributes, in the given order. Always serial (it is a
/// pure copy); `options` only supplies the stats sink.
Result<Relation> Project(const Relation& rel,
                         const std::vector<std::string>& attributes,
                         const ExecOptions& options = {});

/// Nested-loop join with an arbitrary predicate over the two tuples.
/// For a self join pass the same relation twice; `pred` receives
/// (left tuple, left index, right tuple, right index) so self-join pairs
/// can be deduplicated by index.
Result<Relation> NestedLoopJoin(
    const Relation& a, const Relation& b,
    const std::function<bool(const Tuple&, std::size_t, const Tuple&,
                             std::size_t)>& pred,
    const ExecOptions& options = {});

/// Builds the R-tree the index join probes: one entry per unit bounding
/// cube of `b`'s moving-point attribute, entry id = owning tuple index.
/// Build it once and pass it to the prebuilt-index join overload to
/// amortize the build across repeated joins against the same inner
/// relation (the tree stays valid as long as `b` is unchanged).
Result<RTree3D> BuildMovingPointIndex(const Relation& b, int attr_b);

/// Reusable per-probe buffers for the index join's candidate
/// collection. One instance per worker chunk keeps the probe loop
/// allocation-free after warmup; operators manage these internally, and
/// callers driving RTree3D::QueryVisit directly can reuse one too.
struct ProbeScratch {
  std::vector<int64_t> candidates;
};

/// Index nested-loop join specialized for spatio-temporal joins over
/// moving-point attributes: an R-tree over the unit bounding cubes of
/// `b`'s attribute prunes candidate pairs before `pred` runs. `expand`
/// grows each query cube by a spatial slack (e.g. the join distance).
/// The R-tree is built once (serially), then probed per outer chunk;
/// ExecStats.index_builds records the build (1 here, 0 when a prebuilt
/// index is supplied).
Result<Relation> IndexJoinOnMovingPoint(
    const Relation& a, int attr_a, const Relation& b, int attr_b,
    double expand,
    const std::function<bool(const Tuple&, std::size_t, const Tuple&,
                             std::size_t)>& pred,
    const ExecOptions& options = {});

/// Prebuilt-index overload: probes `index` (from BuildMovingPointIndex
/// over `b`'s join attribute) instead of rebuilding the R-tree — the
/// output is identical to the building overload's. The caller owns the
/// index and must keep it consistent with `b`.
Result<Relation> IndexJoinOnMovingPoint(
    const Relation& a, int attr_a, const Relation& b, const RTree3D& index,
    double expand,
    const std::function<bool(const Tuple&, std::size_t, const Tuple&,
                             std::size_t)>& pred,
    const ExecOptions& options = {});

}  // namespace modb

#endif  // MODB_DB_QUERY_H_
