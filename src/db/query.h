// Minimal functional query operators over Relation: scan-based selection,
// projection, and (nested-loop or index-accelerated) join. These are what
// the examples and benchmarks use to express the Section-2 queries.

#ifndef MODB_DB_QUERY_H_
#define MODB_DB_QUERY_H_

#include <functional>
#include <string>
#include <vector>

#include "core/status.h"
#include "db/relation.h"
#include "index/rtree3d.h"

namespace modb {

/// σ: tuples of `rel` satisfying `pred`.
Relation Select(const Relation& rel,
                const std::function<bool(const Tuple&)>& pred);

/// π: the named attributes, in the given order.
Result<Relation> Project(const Relation& rel,
                         const std::vector<std::string>& attributes);

/// Nested-loop join with an arbitrary predicate over the two tuples.
/// For a self join pass the same relation twice; `pred` receives
/// (left tuple, left index, right tuple, right index) so self-join pairs
/// can be deduplicated by index.
Relation NestedLoopJoin(
    const Relation& a, const Relation& b,
    const std::function<bool(const Tuple&, std::size_t, const Tuple&,
                             std::size_t)>& pred);

/// Index nested-loop join specialized for spatio-temporal joins over
/// moving-point attributes: an R-tree over the unit bounding cubes of
/// `b`'s attribute prunes candidate pairs before `pred` runs. `expand`
/// grows each query cube by a spatial slack (e.g. the join distance).
Relation IndexJoinOnMovingPoint(
    const Relation& a, int attr_a, const Relation& b, int attr_b,
    double expand,
    const std::function<bool(const Tuple&, std::size_t, const Tuple&,
                             std::size_t)>& pred);

}  // namespace modb

#endif  // MODB_DB_QUERY_H_
