// Morsel-driven scheduling (src/exec/): the unit of parallel work in
// the pipelined query engine is a *morsel* — a fixed-size contiguous
// row range of a pipeline's source — not an operator-sized chunk. A
// worker claims a morsel, streams it through every stage of its
// pipeline (scan → filters → terminal) without materializing anything
// between stages, deposits the result in the morsel's output slot, and
// claims the next one. Because results are keyed by morsel sequence
// number and concatenated in that order by the sink, the output is
// byte-identical regardless of which worker ran which morsel or in
// what order they finished.
//
// Work stealing: morsel sequence numbers are statically sharded into
// one contiguous range per worker (the same boundary rule as
// ParallelFor). A worker drains its own shard front-to-back through an
// atomic cursor, and when its shard is empty it steals from the
// victim with the most remaining morsels — so a worker that hits
// expensive morsels (skewed predicates, cold spilled pages) sheds its
// tail to idle peers instead of serializing the whole pipeline behind
// it. Claims are one fetch_add per morsel either way.

#ifndef MODB_EXEC_MORSEL_H_
#define MODB_EXEC_MORSEL_H_

#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

namespace modb {
namespace exec {

/// Default rows per morsel. Small enough that a skewed stage rebalances
/// across workers, large enough that the per-morsel claim (one atomic
/// fetch_add) is noise.
inline constexpr std::size_t kDefaultMorselRows = 256;

/// One unit of pipeline work: source rows [begin, end), with `seq` its
/// position in the deterministic output order.
struct Morsel {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t seq = 0;
};

/// Rows per morsel for an n-row source run by `workers` workers.
/// `requested` pins the size (tests use 1-row morsels to maximize
/// scheduling freedom); 0 picks min(kDefaultMorselRows, ceil(n / (4 *
/// workers))) so even small inputs split into ~4 morsels per worker —
/// enough slack for stealing to matter. Depends only on (n, workers,
/// requested), never on scheduling, so morsel boundaries are
/// deterministic.
std::size_t PickMorselRows(std::size_t n, std::size_t workers,
                           std::size_t requested);

/// Work-stealing morsel dispenser for one pipeline run. Shards the
/// morsel sequence [0, num_morsels) into one contiguous range per
/// worker; Next(w) pops from w's own shard until it drains, then
/// steals from the victim with the most remaining morsels. Every
/// morsel is claimed exactly once.
class MorselScheduler {
 public:
  MorselScheduler(std::size_t num_rows, std::size_t morsel_rows,
                  std::size_t workers);

  std::size_t num_morsels() const { return num_morsels_; }
  std::size_t num_workers() const { return workers_; }

  /// The morsel with sequence number `seq`.
  Morsel MorselAt(std::size_t seq) const;

  /// Claims the next morsel for worker `w`. Returns false when every
  /// morsel has been claimed. *stolen is set when the morsel came from
  /// another worker's shard.
  bool Next(std::size_t w, Morsel* out, bool* stolen);

 private:
  std::size_t shard_end(std::size_t w) const {
    return (w + 1) * num_morsels_ / workers_;
  }

  std::size_t num_rows_ = 0;
  std::size_t morsel_rows_ = 1;
  std::size_t num_morsels_ = 0;
  std::size_t workers_ = 1;
  // next_[w]: first unclaimed seq of w's shard (may overshoot shard_end
  // after the shard drains; claims are valid only below shard_end).
  std::unique_ptr<std::atomic<std::size_t>[]> next_;
};

/// Test instrumentation for the engine. `before_morsel` runs on the
/// claiming worker right before a morsel's stages execute — the
/// work-stealing determinism test installs a hook that stalls chosen
/// sequence numbers to permute completion order. Null hooks cost one
/// pointer load per morsel.
struct ExecTestHooks {
  std::function<void(std::size_t worker, std::size_t seq)> before_morsel;
};

/// Installs `hooks` (nullptr to clear) and returns the previous
/// installation. Not thread-safe against concurrently running plans;
/// tests install hooks around their own runs only.
ExecTestHooks* SetExecTestHooks(ExecTestHooks* hooks);

/// The installed hooks, or nullptr.
const ExecTestHooks* GetExecTestHooks();

}  // namespace exec
}  // namespace modb

#endif  // MODB_EXEC_MORSEL_H_
