// The rule-based planner: turns a LogicalQuery (source, filters,
// terminal) into a PhysicalPlan for the pipelined engine. Three rules:
//
//   1. Predicate pushdown — a filter annotated with a TimeWindow on the
//      source's spilled attribute becomes the pipeline's scan window:
//      the scan tests each row's resident SpilledStats record and skips
//      rows that provably cannot qualify WITHOUT faulting their pages
//      into the BufferPool. The exact predicate still runs on every
//      surviving row, so pushdown never changes the result.
//
//   2. Join algorithm choice — kAuto picks IndexJoinOnMovingPoint vs
//      nested loop from cheap cardinality stats (outer rows × inner
//      rows vs index build cost measured in inner units; for spilled
//      outers the resident deftime/bbox stats). kAuto is only sound
//      under the envelope contract: the predicate must imply that some
//      outer unit cube expanded by `expand` intersects a matching inner
//      unit cube — the same contract under which a caller may choose
//      IndexJoinOnMovingPoint by hand. Callers whose predicate does not
//      satisfy it must pin kNestedLoop.
//
//   3. Plan caching — planning decisions are memoized under a key built
//      from the schema signatures and predicate shapes, so repeated
//      queries of the same shape skip the costing pass. The cache holds
//      decisions (algorithm, pushdown applicability), never pointers,
//      so entries are safe across relation lifetimes.

#ifndef MODB_EXEC_PLANNER_H_
#define MODB_EXEC_PLANNER_H_

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "core/status.h"
#include "exec/pipeline.h"

namespace modb {
namespace exec {

/// Declarative query description. Exactly one of rel/spilled is the
/// source; filters apply in order; at most one of project/join is the
/// terminal. The planner copies predicates into the plan but only
/// points at relations/indexes — sources must outlive the returned
/// PhysicalPlan's execution.
struct LogicalQuery {
  const Relation* rel = nullptr;
  SpilledRelation* spilled = nullptr;

  std::vector<Predicate> filters;

  /// Projection: attribute slots of the source schema, in output order.
  std::optional<std::vector<int>> project;

  struct JoinSpec {
    enum class Algorithm { kAuto, kNestedLoop, kIndex };
    Algorithm algorithm = Algorithm::kAuto;
    const Relation* inner = nullptr;
    /// Moving-point join attributes (outer slot in the source schema,
    /// inner slot in `inner`'s). Only consulted for the index variant,
    /// but kAuto requires both so either choice is executable.
    int attr_outer = -1;
    int attr_inner = -1;
    /// Spatial slack added to each probe cube (the join distance).
    double expand = 0;
    JoinPred pred;
    /// Optional prebuilt R-tree over `inner`'s join attribute; forces
    /// the index variant without a build step.
    const RTree3D* prebuilt = nullptr;
    /// Optional layered index view (live relations: base + delta + mem
    /// over `inner`'s join attribute); forces the index variant without
    /// a build step and takes precedence over `prebuilt`. The referenced
    /// layers must outlive the plan's execution.
    std::optional<IndexLayersView> layers;
  };
  std::optional<JoinSpec> join;

  /// Output relation name; "" derives the legacy operator-chain name
  /// (source + "_sel" / "_proj" / "_x_" / "_ix_" suffixes), which is
  /// what keeps pipelined output byte-identical to composed operators.
  std::string out_name;
  /// Root ExecStats op label ("select", "pipeline", ...).
  std::string root_op = "pipeline";
  /// Rows per morsel; 0 = engine default.
  std::size_t morsel_rows = 0;
};

/// Plans `q`. Fails with InvalidArgument on malformed queries (no
/// source, both terminals, attribute slots out of range or of the wrong
/// type for the chosen join algorithm).
Result<PhysicalPlan> PlanQuery(const LogicalQuery& q);

/// The cache key PlanQuery memoizes under — exposed so tests can assert
/// hit/miss behavior for specific query shapes.
std::string PlanCacheKey(const LogicalQuery& q);

/// Number of cached planning decisions / reset (tests).
std::size_t PlanCacheSize();
void PlanCacheClear();

}  // namespace exec
}  // namespace modb

#endif  // MODB_EXEC_PLANNER_H_
