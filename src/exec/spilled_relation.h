// A relation whose moving-point attribute lives on checksummed pages
// (storage/spill.h) instead of RAM, plus the per-value statistics the
// planner's pushdown rule consults. Spilling records, for every value,
// its deftime bounds, bounding cube, and unit count — a 48-byte stats
// record that stays resident. A pipelined scan with a pushed-down time
// window tests the stats record first and only faults qualifying
// values into the BufferPool: tuples that provably cannot satisfy the
// predicate are skipped without a single page read.

#ifndef MODB_EXEC_SPILLED_RELATION_H_
#define MODB_EXEC_SPILLED_RELATION_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "core/instant.h"
#include "core/status.h"
#include "db/relation.h"
#include "spatial/bbox.h"
#include "storage/buffer_pool.h"
#include "storage/spill.h"

namespace modb {
namespace exec {

/// Resident statistics for one spilled moving-point value, recorded at
/// spill time. Enough for the planner's conservative pushdown tests
/// without faulting the value in.
struct SpilledStats {
  /// Deftime bounds: [min_start, max_end] contains every unit interval.
  /// An empty mapping keeps the inverted defaults (min_start > max_end).
  Instant min_start = std::numeric_limits<Instant>::infinity();
  Instant max_end = -std::numeric_limits<Instant>::infinity();
  /// Union of the unit bounding cubes (IsEmpty() for an empty mapping).
  Cube bbox;
  std::uint32_t num_units = 0;

  bool IsEmpty() const { return num_units == 0; }

  /// Conservative test: can any unit interval intersect the closed
  /// window [t0, t1]? A false here proves `present` over the window is
  /// false (and so is any predicate that implies it); a true decides
  /// nothing — the exact predicate still runs on the loaded value.
  bool MayIntersectWindow(Instant t0, Instant t1) const {
    return num_units > 0 && !(max_end < t0) && !(t1 < min_start);
  }
};

/// A relation with one moving-point attribute spilled to pages. The
/// skeleton keeps every other attribute in RAM (the spilled slot holds
/// an empty placeholder); handles are load-on-demand Spilled<> values
/// that read through the given BufferPool.
///
/// Thread-safety: concurrent MaterializeTuple calls on *distinct* rows
/// are safe (the BufferPool serializes page I/O internally; each row
/// owns its handle). The engine partitions rows into disjoint morsels,
/// so a pipeline scan never touches one row from two workers.
class SpilledRelation {
 public:
  /// Spills attribute `attr` (must be kMovingPoint) of every tuple of
  /// `rel` to `device`, recording per-value stats. Reads at query time
  /// go through `pool`, which must be backed by `device`.
  static Result<SpilledRelation> Spill(const Relation& rel, int attr,
                                       PageDevice* device, BufferPool* pool);

  const std::string& name() const { return skeleton_.name(); }
  const Schema& schema() const { return skeleton_.schema(); }
  std::size_t NumTuples() const { return skeleton_.NumTuples(); }
  int spilled_attr() const { return attr_; }
  const SpilledStats& stats(std::size_t i) const { return stats_[i]; }

  /// Whether row i's spilled value has been faulted in (decoded and
  /// memoized). The pushdown tests assert this stays false for rows a
  /// scan skipped.
  bool IsLoaded(std::size_t i) const { return handles_[i].IsLoaded(); }

  /// Row i with the spilled value loaded (faulting its pages through
  /// the pool on first touch) and substituted into the spilled slot.
  /// The value is memoized on the handle, so repeated materialization
  /// reads no pages. The loaded mapping gets its SoA search index.
  Result<Tuple> MaterializeTuple(std::size_t i);

  /// Readahead hint for row i's page run (no-op once the row is
  /// loaded). Scans call this for every qualifying row of a morsel
  /// before materializing any of them, so cold sequential faults
  /// overlap with decode/predicate compute.
  void PrefetchRow(std::size_t i) const {
    if (handles_[i].IsLoaded()) return;
    const SpillLocator& loc = handles_[i].locator();
    pool_->Prefetch(loc.first_page, loc.num_pages);
  }

  /// The fully in-memory relation (loads every value): the legacy-path
  /// input the differential tests compare pipelined spilled scans
  /// against. Name and schema match the spilled source, so results are
  /// byte-identical.
  Result<Relation> MaterializeAll();

 private:
  SpilledRelation(Relation skeleton, int attr, BufferPool* pool,
                  std::vector<Spilled<MovingPoint>> handles,
                  std::vector<SpilledStats> stats)
      : skeleton_(std::move(skeleton)),
        attr_(attr),
        pool_(pool),
        handles_(std::move(handles)),
        stats_(std::move(stats)) {}

  Relation skeleton_;
  int attr_ = -1;
  BufferPool* pool_ = nullptr;
  std::vector<Spilled<MovingPoint>> handles_;
  std::vector<SpilledStats> stats_;
};

}  // namespace exec
}  // namespace modb

#endif  // MODB_EXEC_SPILLED_RELATION_H_
