// The pipelined execution engine: a physical query plan is a small DAG
// of steps — index builds and *pipelines* — scheduled in topological
// order. A pipeline streams fixed-size morsels (row ranges over its
// source) through a fused stage chain
//
//   Scan → Select* → (Project | Join probe | none) → Sink
//
// with work-stealing across a shared ThreadPool: each worker claims a
// morsel, runs it through every stage on its own stack (no Relation is
// materialized between stages), and deposits the result tuples in the
// morsel's output slot. The sink concatenates slots in morsel order,
// so output is byte-identical to the serial single-operator path for
// any worker count and any steal schedule.
//
// Determinism argument, in full:
//   1. Morsel boundaries depend only on (row count, worker count,
//      requested morsel size) — never on scheduling.
//   2. Each morsel is claimed exactly once, and its stage chain is a
//      pure function of the morsel's rows (per-worker scratch is
//      reset per morsel; stats are commutative counters).
//   3. The sink concatenates per-morsel outputs in ascending sequence
//      order, which equals ascending source-row order — exactly the
//      order a serial loop produces.
//
// Plans are built by the rule-based planner (exec/planner.h); the
// db/query.h operators are thin wrappers that plan and run here.

#ifndef MODB_EXEC_PIPELINE_H_
#define MODB_EXEC_PIPELINE_H_

#include <cstddef>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/instant.h"
#include "core/status.h"
#include "db/query.h"
#include "db/relation.h"
#include "exec/morsel.h"
#include "exec/spilled_relation.h"
#include "index/delta_index.h"
#include "index/rtree3d.h"
#include "obs/exec_stats.h"

namespace modb {
namespace exec {

/// A conservative time-window annotation on a predicate: the predicate
/// is false for any tuple whose moving attribute `attr` has no unit
/// intersecting the closed window [t0, t1]. The planner pushes the
/// window into spilled scans (stats-only test, no page faults); the
/// exact predicate still runs on every tuple that survives the scan.
struct TimeWindow {
  int attr = -1;
  Instant t0 = 0;
  Instant t1 = 0;
};

/// A selection predicate: the exact row test plus the planner-facing
/// shape (plan-cache key component) and optional pushdown window.
struct Predicate {
  std::function<bool(const Tuple&)> fn;
  std::string shape = "user";
  std::optional<TimeWindow> window;
};

/// A join predicate over (outer tuple, outer row, inner tuple, inner
/// row). In a pipelined plan the outer row id is the SOURCE row index
/// (stable under upstream filters), not the ordinal within the
/// filtered stream.
struct JoinPred {
  std::function<bool(const Tuple&, std::size_t, const Tuple&, std::size_t)>
      fn;
  std::string shape = "user";
};

/// Terminal projection stage: emit the given attribute slots, in order.
struct ProjectOp {
  std::vector<int> indices;
};

/// Terminal join-probe stage. kIndex probes an index over the inner
/// attribute's unit bounding cubes (a single tree — prebuilt or produced
/// by a build step of the same plan — or a live relation's layered
/// base/delta/mem stack) with each outer unit cube expanded by
/// `expand`; kNestedLoop tests every inner row. Both emit surviving
/// pairs as (outer row ascending, inner row ascending), so their
/// outputs coincide whenever the predicate implies the expanded-cube
/// envelope — the contract under which the planner may choose freely.
/// The probe sorts and deduplicates candidate ids before evaluating the
/// predicate, so any layering of the same entry set (one tree, or
/// base+delta+mem) yields byte-identical output.
struct JoinProbeOp {
  enum class Kind { kIndex, kNestedLoop };
  Kind kind = Kind::kIndex;
  const Relation* inner = nullptr;
  int attr_outer = -1;
  double expand = 0;
  JoinPred pred;
  /// Layered index view (kIndex only): probes a live relation's
  /// base/delta/mem stack. Takes precedence over tree/build_step.
  std::optional<IndexLayersView> layers;
  /// Prebuilt index (kIndex only); when null and `layers` is unset,
  /// `build_step` names the plan step whose output tree this probe uses.
  const RTree3D* tree = nullptr;
  int build_step = -1;
};

/// One streaming pipeline: exactly one source (in-memory relation or
/// spilled relation), filters, and at most one terminal op.
struct Pipeline {
  const Relation* rel = nullptr;
  SpilledRelation* spilled = nullptr;
  /// Pushdown window applied at the spilled scan: rows whose stats
  /// cannot intersect are skipped without faulting pages.
  std::optional<TimeWindow> scan_window;
  std::vector<Predicate> filters;
  std::optional<ProjectOp> project;
  std::optional<JoinProbeOp> join;
  /// Rows per morsel; 0 = PickMorselRows default.
  std::size_t morsel_rows = 0;

  std::size_t NumSourceRows() const {
    return rel != nullptr ? rel->NumTuples() : spilled->NumTuples();
  }
};

/// A step of the plan DAG: exactly one of `build` (serial R-tree
/// construction over an inner relation's moving-point attribute) or
/// `pipe` (a morsel-parallel pipeline). `deps` are step indices that
/// must complete first.
struct BuildIndexOp {
  const Relation* rel = nullptr;
  int attr = -1;
};

struct PlanStep {
  std::vector<std::size_t> deps;
  std::optional<BuildIndexOp> build;
  std::optional<Pipeline> pipe;
};

/// A physical plan: topologically scheduled steps, the last pipeline
/// step producing the output relation (out_name / out_schema).
/// legacy_tuples_in carries the operator-semantics cardinality for the
/// root ExecStats node (outer + inner for joins, as the materializing
/// operators reported).
struct PhysicalPlan {
  std::vector<PlanStep> steps;
  std::string out_name;
  Schema out_schema;
  std::string root_op = "pipeline";
  std::uint64_t legacy_tuples_in = 0;
};

/// Executes the plan. Steps run in deterministic topological order
/// (lowest ready index first); each pipeline step runs morsel-parallel
/// per `options.parallel` with per-worker ExecStats accumulation.
/// When `options.stats` is set, the node gets one child per stage
/// ("build_index", "scan", "select", "project", "join_probe") with
/// rows in/out, morsels scheduled/stolen, and pushdown skips; the
/// root's `materializations` counts Relations the plan materialized —
/// always exactly 1 (the sink), which is what "zero intermediate
/// materializations" means operationally.
Result<Relation> RunPlan(const PhysicalPlan& plan, const ExecOptions& options);

}  // namespace exec
}  // namespace modb

#endif  // MODB_EXEC_PIPELINE_H_
