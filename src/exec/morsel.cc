#include "exec/morsel.h"

#include <algorithm>

namespace modb {
namespace exec {

std::size_t PickMorselRows(std::size_t n, std::size_t workers,
                           std::size_t requested) {
  if (requested > 0) return requested;
  if (n == 0) return 1;
  workers = std::max<std::size_t>(workers, 1);
  const std::size_t per_worker_target = (n + 4 * workers - 1) / (4 * workers);
  return std::max<std::size_t>(
      1, std::min<std::size_t>(kDefaultMorselRows, per_worker_target));
}

MorselScheduler::MorselScheduler(std::size_t num_rows, std::size_t morsel_rows,
                                 std::size_t workers)
    : num_rows_(num_rows),
      morsel_rows_(std::max<std::size_t>(morsel_rows, 1)),
      num_morsels_((num_rows + morsel_rows_ - 1) / morsel_rows_),
      workers_(std::max<std::size_t>(workers, 1)),
      next_(new std::atomic<std::size_t>[workers_]) {
  for (std::size_t w = 0; w < workers_; ++w) {
    next_[w].store(w * num_morsels_ / workers_, std::memory_order_relaxed);
  }
}

Morsel MorselScheduler::MorselAt(std::size_t seq) const {
  Morsel m;
  m.seq = seq;
  m.begin = seq * morsel_rows_;
  m.end = std::min(m.begin + morsel_rows_, num_rows_);
  return m;
}

bool MorselScheduler::Next(std::size_t w, Morsel* out, bool* stolen) {
  // Own shard first.
  std::size_t seq = next_[w].fetch_add(1, std::memory_order_relaxed);
  if (seq < shard_end(w)) {
    *out = MorselAt(seq);
    *stolen = false;
    return true;
  }
  // Steal: claim from the victim with the most remaining morsels. The
  // size snapshot is racy, but a stale pick only means a slightly less
  // loaded victim — the claim itself is still a single atomic
  // fetch_add checked against the victim's true shard end. Retry until
  // a scan observes every shard drained: claims are monotonic, so that
  // observation is stable and the loop terminates.
  for (;;) {
    std::size_t victim = workers_;
    std::size_t best_remaining = 0;
    for (std::size_t v = 0; v < workers_; ++v) {
      if (v == w) continue;
      const std::size_t end = shard_end(v);
      const std::size_t pos = next_[v].load(std::memory_order_relaxed);
      const std::size_t remaining = pos < end ? end - pos : 0;
      if (remaining > best_remaining) {
        best_remaining = remaining;
        victim = v;
      }
    }
    if (victim == workers_) return false;  // every shard drained
    seq = next_[victim].fetch_add(1, std::memory_order_relaxed);
    if (seq < shard_end(victim)) {
      *out = MorselAt(seq);
      *stolen = true;
      return true;
    }
  }
}

namespace {
ExecTestHooks* g_hooks = nullptr;
}  // namespace

ExecTestHooks* SetExecTestHooks(ExecTestHooks* hooks) {
  ExecTestHooks* prev = g_hooks;
  g_hooks = hooks;
  return prev;
}

const ExecTestHooks* GetExecTestHooks() { return g_hooks; }

}  // namespace exec
}  // namespace modb
