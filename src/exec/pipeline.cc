#include "exec/pipeline.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <limits>
#include <mutex>
#include <utility>

#include "db/parallel.h"
#include "obs/metrics.h"

namespace modb {
namespace exec {

namespace {

// Per-stage tallies accumulated in worker-local plain integers and
// summed after the barrier (addition is commutative, so the totals are
// schedule-independent).
struct StageCounters {
  std::uint64_t rows_in = 0;
  std::uint64_t rows_out = 0;
  std::uint64_t predicate_evals = 0;
  std::uint64_t index_candidates = 0;
  std::uint64_t index_hits = 0;
  std::uint64_t units_scanned = 0;
  std::uint64_t pushdown_skips = 0;
};

// Worker-private buffers reused across the morsels a worker claims; a
// warm worker allocates nothing per morsel.
struct WorkerState {
  std::vector<std::size_t> rows;  // surviving source row ids
  std::vector<Tuple> mat;         // materialized tuples (spilled scan)
  ProbeScratch probe;
  std::vector<StageCounters> stages;
  std::uint64_t morsels = 0;
  std::uint64_t morsels_stolen = 0;
};

class OptionalTimer {
 public:
  explicit OptionalTimer(bool enabled) : enabled_(enabled) {
    if (enabled_) start_ = std::chrono::steady_clock::now();
  }
  std::uint64_t ElapsedNs() const {
    if (!enabled_) return 0;
    auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - start_)
                  .count();
    return ns > 0 ? std::uint64_t(ns) : 0;
  }

 private:
  bool enabled_;
  std::chrono::steady_clock::time_point start_;
};

// First-error capture with deterministic tie-break: the error of the
// smallest morsel sequence wins, so a failing plan reports the same
// Status regardless of worker schedule.
class FirstError {
 public:
  void Record(std::size_t seq, Status status) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!has_ || seq < seq_) {
      has_ = true;
      seq_ = seq;
      status_ = std::move(status);
    }
    failed_.store(true, std::memory_order_release);
  }
  bool Failed() const { return failed_.load(std::memory_order_acquire); }
  Status Take() {
    std::lock_guard<std::mutex> lock(mu_);
    return status_;
  }

 private:
  std::mutex mu_;
  bool has_ = false;
  std::size_t seq_ = 0;
  Status status_ = Status::OK();
  std::atomic<bool> failed_{false};
};

// Stage ids within a pipeline's counter arrays: 0 = scan, 1..F =
// filters, F+1 = terminal (project / join probe / implicit copy sink).
std::size_t NumStages(const Pipeline& pipe) {
  return pipe.filters.size() + 2;
}

// Joined tuples for one surviving outer row of the index-join probe,
// appended in ascending candidate order — the same body (and the same
// stats semantics) for every execution policy, which is what keeps
// pipelined output byte-identical to the materializing operator's.
void ProbeIndexJoinRow(const Tuple& outer, std::size_t outer_row,
                       const JoinProbeOp& op, const IndexLayersView& view,
                       std::vector<Tuple>* out, StageCounters* s,
                       ProbeScratch* scratch) {
  const Relation& b = *op.inner;
  const auto& mp = std::get<MovingPoint>(outer[std::size_t(op.attr_outer)]);
  std::vector<int64_t>& candidates = scratch->candidates;
  candidates.clear();
  const Cube& bounds = view.Bounds();
  for (const UPoint& u : mp.units()) {
    Cube c = u.BoundingCube();
    c.rect.min_x -= op.expand;
    c.rect.min_y -= op.expand;
    c.rect.max_x += op.expand;
    c.rect.max_y += op.expand;
    // Bbox prefilter: a probe cube disjoint from every layer cannot
    // produce candidates; skip the descent outright.
    if (!Cube::Intersect(c, bounds)) continue;
    view.QueryVisit(c, [&candidates](int64_t id) { candidates.push_back(id); });
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  s->units_scanned += mp.units().size();
  s->index_candidates += candidates.size();
  for (int64_t j : candidates) {
    ++s->predicate_evals;
    if (!op.pred.fn(outer, outer_row, b.tuple(std::size_t(j)),
                    std::size_t(j))) {
      continue;
    }
    ++s->index_hits;
    Tuple joined = outer;
    joined.insert(joined.end(), b.tuple(std::size_t(j)).begin(),
                  b.tuple(std::size_t(j)).end());
    out->push_back(std::move(joined));
  }
}

void ProbeNestedLoopRow(const Tuple& outer, std::size_t outer_row,
                        const JoinProbeOp& op, std::vector<Tuple>* out,
                        StageCounters* s) {
  const Relation& b = *op.inner;
  for (std::size_t j = 0; j < b.NumTuples(); ++j) {
    ++s->predicate_evals;
    if (!op.pred.fn(outer, outer_row, b.tuple(j), j)) continue;
    Tuple joined = outer;
    joined.insert(joined.end(), b.tuple(j).begin(), b.tuple(j).end());
    out->push_back(std::move(joined));
  }
}

// One morsel through the fused stage chain. Returns non-OK only for
// source faults (spilled page errors); predicate work never fails.
Status ProcessMorsel(const Pipeline& pipe, const IndexLayersView& view,
                     const Morsel& m, WorkerState* w,
                     std::vector<Tuple>* out) {
  w->rows.clear();
  w->mat.clear();
  const bool from_spill = pipe.spilled != nullptr;

  // Scan: enumerate (and for spilled sources, materialize) the morsel's
  // rows. The pushed-down window tests the resident stats record first,
  // so disqualified rows never fault a page.
  StageCounters& scan = w->stages[0];
  scan.rows_in += m.end - m.begin;
  // Readahead sweep: hint every page run this morsel will fault —
  // qualifying rows only, so the pushdown still saves the skipped I/O —
  // before the materialize loop starts paying for them.
  if (from_spill) {
    for (std::size_t i = m.begin; i < m.end; ++i) {
      if (pipe.scan_window &&
          !pipe.spilled->stats(i).MayIntersectWindow(pipe.scan_window->t0,
                                                     pipe.scan_window->t1)) {
        continue;
      }
      pipe.spilled->PrefetchRow(i);
    }
  }
  for (std::size_t i = m.begin; i < m.end; ++i) {
    if (from_spill) {
      if (pipe.scan_window &&
          !pipe.spilled->stats(i).MayIntersectWindow(pipe.scan_window->t0,
                                                     pipe.scan_window->t1)) {
        ++scan.pushdown_skips;
        continue;
      }
      Result<Tuple> t = pipe.spilled->MaterializeTuple(i);
      if (!t.ok()) return t.status();
      w->mat.push_back(std::move(*t));
    }
    w->rows.push_back(i);
  }
  scan.rows_out += w->rows.size();

  auto tuple_at = [&](std::size_t k) -> const Tuple& {
    return from_spill ? w->mat[k] : pipe.rel->tuple(w->rows[k]);
  };

  // Filters: in-place compaction of the surviving row list.
  for (std::size_t f = 0; f < pipe.filters.size(); ++f) {
    StageCounters& s = w->stages[1 + f];
    s.rows_in += w->rows.size();
    std::size_t kept = 0;
    for (std::size_t k = 0; k < w->rows.size(); ++k) {
      ++s.predicate_evals;
      if (!pipe.filters[f].fn(tuple_at(k))) continue;
      if (kept != k) {
        w->rows[kept] = w->rows[k];
        if (from_spill) w->mat[kept] = std::move(w->mat[k]);
      }
      ++kept;
    }
    w->rows.resize(kept);
    if (from_spill) w->mat.resize(kept);
    s.rows_out += kept;
  }

  // Terminal: emit this morsel's output tuples.
  StageCounters& term = w->stages[NumStages(pipe) - 1];
  term.rows_in += w->rows.size();
  if (pipe.join) {
    for (std::size_t k = 0; k < w->rows.size(); ++k) {
      if (pipe.join->kind == JoinProbeOp::Kind::kIndex) {
        ProbeIndexJoinRow(tuple_at(k), w->rows[k], *pipe.join, view, out,
                          &term, &w->probe);
      } else {
        ProbeNestedLoopRow(tuple_at(k), w->rows[k], *pipe.join, out, &term);
      }
    }
  } else if (pipe.project) {
    for (std::size_t k = 0; k < w->rows.size(); ++k) {
      const Tuple& t = tuple_at(k);
      Tuple projected;
      projected.reserve(pipe.project->indices.size());
      for (int idx : pipe.project->indices) {
        projected.push_back(t[std::size_t(idx)]);
      }
      out->push_back(std::move(projected));
    }
  } else {
    for (std::size_t k = 0; k < w->rows.size(); ++k) {
      out->push_back(tuple_at(k));
    }
  }
  term.rows_out += out->size();
  return Status::OK();
}

const char* TerminalOpName(const Pipeline& pipe) {
  if (pipe.join) return "join_probe";
  if (pipe.project) return "project";
  return "sink";
}

// Runs one pipeline step morsel-parallel and appends its output to
// `out` in morsel order. `node` (when kept) receives one child per
// stage plus the root-level morsel/steal counters.
Status RunPipeline(const Pipeline& pipe, const IndexLayersView& view,
                   const ExecOptions& options, Relation* out,
                   ExecStats* node) {
  const std::size_t n = pipe.NumSourceRows();
  const std::size_t workers = ResolveWorkerCount(options.parallel);
  const std::size_t morsel_rows =
      PickMorselRows(n, workers, pipe.morsel_rows);
  MorselScheduler sched(n, morsel_rows, workers);
  const std::size_t num_morsels = sched.num_morsels();

  std::vector<std::vector<Tuple>> outputs(num_morsels);
  std::vector<WorkerState> states(workers);
  for (WorkerState& w : states) w.stages.resize(NumStages(pipe));
  FirstError error;
  const ExecTestHooks* hooks = GetExecTestHooks();

  auto worker_loop = [&](std::size_t w) {
    WorkerState& state = states[w];
    Morsel m;
    bool stolen = false;
    while (!error.Failed() && sched.Next(w, &m, &stolen)) {
      if (hooks != nullptr && hooks->before_morsel) {
        hooks->before_morsel(w, m.seq);
      }
      ++state.morsels;
      if (stolen) ++state.morsels_stolen;
      Status s = ProcessMorsel(pipe, view, m, &state, &outputs[m.seq]);
      if (!s.ok()) error.Record(m.seq, std::move(s));
    }
  };

  if (workers == 1 || num_morsels <= 1) {
    // Serial inline (or nothing to overlap): never resolves a pool.
    worker_loop(0);
  } else {
    ThreadPool& pool = ResolvePool(options.parallel);
    std::mutex mu;
    std::condition_variable done;
    std::size_t remaining = workers;
    for (std::size_t w = 0; w < workers; ++w) {
      pool.Submit([&, w] {
        worker_loop(w);
        std::lock_guard<std::mutex> lock(mu);
        if (--remaining == 0) done.notify_one();
      });
    }
    std::unique_lock<std::mutex> lock(mu);
    done.wait(lock, [&] { return remaining == 0; });
  }

  if (error.Failed()) return error.Take();

  // Deterministic sink: concatenate per-morsel outputs in ascending
  // sequence order — ascending source-row order, the serial order.
  for (std::size_t seq = 0; seq < num_morsels; ++seq) {
    for (Tuple& t : outputs[seq]) {
      // Insert cannot fail: tuples conform to the output schema.
      (void)out->Insert(std::move(t));
    }
  }

  // Merge worker-local stage counters (sums, schedule-independent).
  std::vector<StageCounters> totals(NumStages(pipe));
  std::uint64_t morsels = 0, morsels_stolen = 0;
  for (const WorkerState& w : states) {
    morsels += w.morsels;
    morsels_stolen += w.morsels_stolen;
    for (std::size_t s = 0; s < totals.size(); ++s) {
      StageCounters& t = totals[s];
      const StageCounters& c = w.stages[s];
      t.rows_in += c.rows_in;
      t.rows_out += c.rows_out;
      t.predicate_evals += c.predicate_evals;
      t.index_candidates += c.index_candidates;
      t.index_hits += c.index_hits;
      t.units_scanned += c.units_scanned;
      t.pushdown_skips += c.pushdown_skips;
    }
  }

  if (node != nullptr) {
    node->workers += workers;
    node->morsels += morsels;
    node->morsels_stolen += morsels_stolen;
    auto stage_node = [&](const char* op, const StageCounters& c) {
      ExecStats s;
      s.op = op;
      s.tuples_in = c.rows_in;
      s.tuples_out = c.rows_out;
      s.predicate_evals = c.predicate_evals;
      s.index_candidates = c.index_candidates;
      s.index_hits = c.index_hits;
      s.units_scanned = c.units_scanned;
      s.pushdown_skips = c.pushdown_skips;
      node->children.push_back(std::move(s));
    };
    stage_node("scan", totals[0]);
    for (std::size_t f = 0; f < pipe.filters.size(); ++f) {
      stage_node("select", totals[1 + f]);
    }
    stage_node(TerminalOpName(pipe), totals[NumStages(pipe) - 1]);
  }
  // Roll the pipeline's counters into the parent node so wrapper-level
  // semantics (predicate_evals, index candidates/hits, units scanned,
  // pushdown skips) survive even without children.
  if (node != nullptr) {
    for (const StageCounters& c : totals) {
      node->predicate_evals += c.predicate_evals;
      node->index_candidates += c.index_candidates;
      node->index_hits += c.index_hits;
      node->units_scanned += c.units_scanned;
      node->pushdown_skips += c.pushdown_skips;
    }
  }

  MODB_COUNTER_ADD("exec.morsels_scheduled", morsels);
  MODB_COUNTER_ADD("exec.morsels_stolen", morsels_stolen);
  MODB_COUNTER_ADD("exec.pushdown_skips", totals[0].pushdown_skips);
  return Status::OK();
}

}  // namespace

Result<Relation> RunPlan(const PhysicalPlan& plan, const ExecOptions& options) {
  MODB_RETURN_IF_ERROR(ValidateParallelOptions(options.parallel));
  OptionalTimer timer(options.stats != nullptr);

  // Exactly one pipeline step produces the output.
  std::size_t pipe_steps = 0;
  for (const PlanStep& step : plan.steps) {
    if (step.pipe.has_value() == step.build.has_value()) {
      return Status::InvalidArgument(
          "plan step must be exactly one of build or pipeline");
    }
    if (step.pipe) ++pipe_steps;
  }
  if (pipe_steps != 1) {
    return Status::InvalidArgument(
        "plan must contain exactly one pipeline step, got " +
        std::to_string(pipe_steps));
  }

  ExecStats node;
  node.op = plan.root_op;
  node.tuples_in = plan.legacy_tuples_in;
  node.materializations = 1;  // the sink; stages materialize nothing
  ExecStats* stats = options.stats != nullptr ? &node : nullptr;

  Relation out(plan.out_name, plan.out_schema);
  std::vector<std::optional<RTree3D>> built(plan.steps.size());
  std::vector<bool> executed(plan.steps.size(), false);

  // Deterministic topological schedule: repeatedly run the
  // lowest-index step whose dependencies have all completed. Build
  // steps run serially (their output is a shared read-only index);
  // pipeline steps run morsel-parallel.
  for (std::size_t done = 0; done < plan.steps.size();) {
    std::size_t ready = plan.steps.size();
    for (std::size_t i = 0; i < plan.steps.size(); ++i) {
      if (executed[i]) continue;
      bool deps_ok = true;
      for (std::size_t d : plan.steps[i].deps) {
        if (d >= plan.steps.size() || !executed[d]) {
          deps_ok = false;
          break;
        }
      }
      if (deps_ok) {
        ready = i;
        break;
      }
    }
    if (ready == plan.steps.size()) {
      return Status::InvalidArgument("plan DAG has a dependency cycle");
    }
    const PlanStep& step = plan.steps[ready];
    if (step.build) {
      OptionalTimer build_timer(stats != nullptr);
      Result<RTree3D> tree =
          BuildMovingPointIndex(*step.build->rel, step.build->attr);
      if (!tree.ok()) return tree.status();
      built[ready].emplace(std::move(*tree));
      if (stats != nullptr) {
        ExecStats b;
        b.op = "build_index";
        b.tuples_in = step.build->rel->NumTuples();
        b.index_builds = 1;
        b.wall_ns = build_timer.ElapsedNs();
        node.children.push_back(std::move(b));
      }
      node.index_builds += 1;
    } else {
      const Pipeline& pipe = *step.pipe;
      // Resolve the index the probe runs against: a live relation's
      // layered view, a prebuilt tree, or this plan's build step — all
      // wrapped as an IndexLayersView so the probe has one body.
      IndexLayersView view;
      if (pipe.join && pipe.join->kind == JoinProbeOp::Kind::kIndex) {
        if (pipe.join->layers) {
          view = *pipe.join->layers;
        } else if (pipe.join->tree != nullptr) {
          view = IndexLayersView::Single(pipe.join->tree);
        } else if (pipe.join->build_step >= 0 &&
                   std::size_t(pipe.join->build_step) < built.size() &&
                   built[std::size_t(pipe.join->build_step)]) {
          view = IndexLayersView::Single(
              &*built[std::size_t(pipe.join->build_step)]);
        } else {
          return Status::InvalidArgument(
              "index join probe has no layered view, no prebuilt tree, and "
              "no completed build step");
        }
      }
      MODB_RETURN_IF_ERROR(RunPipeline(pipe, view, options, &out, &node));
    }
    executed[ready] = true;
    ++done;
  }

  node.tuples_out = out.NumTuples();
  node.wall_ns = timer.ElapsedNs();
  if (options.stats != nullptr) *options.stats = std::move(node);
  MODB_COUNTER_INC("exec.plans_run");
  MODB_COUNTER_INC("exec.relations_materialized");
  return out;
}

}  // namespace exec
}  // namespace modb
