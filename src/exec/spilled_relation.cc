#include "exec/spilled_relation.h"

#include <utility>

#include "obs/metrics.h"
#include "temporal/upoint.h"

namespace modb {
namespace exec {

Result<SpilledRelation> SpilledRelation::Spill(const Relation& rel, int attr,
                                               PageDevice* device,
                                               BufferPool* pool) {
  if (attr < 0 || std::size_t(attr) >= rel.schema().NumAttributes()) {
    return Status::InvalidArgument("spill attribute " + std::to_string(attr) +
                                   " out of range for " + rel.name());
  }
  Relation skeleton(rel.name(), rel.schema());
  std::vector<Spilled<MovingPoint>> handles;
  std::vector<SpilledStats> stats;
  handles.reserve(rel.NumTuples());
  stats.reserve(rel.NumTuples());
  for (std::size_t i = 0; i < rel.NumTuples(); ++i) {
    const Tuple& t = rel.tuple(i);
    const auto* mp = std::get_if<MovingPoint>(&t[std::size_t(attr)]);
    if (mp == nullptr) {
      return Status::InvalidArgument("attribute " + std::to_string(attr) +
                                     " of " + rel.name() +
                                     " is not a moving point");
    }
    SpilledStats s;
    s.num_units = std::uint32_t(mp->NumUnits());
    if (!mp->IsEmpty()) {
      s.min_start = mp->units().front().interval().start();
      s.max_end = mp->units().back().interval().end();
      for (const UPoint& u : mp->units()) s.bbox.Extend(u.BoundingCube());
    }
    Result<Spilled<MovingPoint>> handle = Spilled<MovingPoint>::Spill(*mp, device);
    if (!handle.ok()) return handle.status();
    Tuple skel = t;
    skel[std::size_t(attr)] = MovingPoint();  // placeholder; value is on pages
    MODB_RETURN_IF_ERROR(skeleton.Insert(std::move(skel)));
    handles.push_back(std::move(*handle));
    stats.push_back(s);
  }
  MODB_COUNTER_ADD("exec.spilled_relation.values_spilled", rel.NumTuples());
  return SpilledRelation(std::move(skeleton), attr, pool, std::move(handles),
                         std::move(stats));
}

Result<Tuple> SpilledRelation::MaterializeTuple(std::size_t i) {
  Result<const MovingPoint*> mp =
      handles_[i].Load(pool_, /*build_search_index=*/true);
  if (!mp.ok()) return mp.status();
  Tuple t = skeleton_.tuple(i);
  t[std::size_t(attr_)] = **mp;
  return t;
}

Result<Relation> SpilledRelation::MaterializeAll() {
  Relation out(skeleton_.name(), skeleton_.schema());
  for (std::size_t i = 0; i < NumTuples(); ++i) {
    Result<Tuple> t = MaterializeTuple(i);
    if (!t.ok()) return t.status();
    MODB_RETURN_IF_ERROR(out.Insert(std::move(*t)));
  }
  return out;
}

}  // namespace exec
}  // namespace modb
