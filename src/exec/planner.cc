#include "exec/planner.h"

#include <algorithm>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "db/value.h"
#include "obs/metrics.h"

namespace modb {
namespace exec {

namespace {

// Below this many predicate evaluations a nested loop beats paying for
// an R-tree build: at ~a few thousand evals the O(U log U) bulk load
// plus per-probe descents cost more than just testing every pair.
constexpr std::uint64_t kNestedLoopEvalBudget = 4096;

// What the plan cache remembers for a query shape. Decisions only —
// never pointers — so entries survive relation lifetimes.
struct PlanDecision {
  bool use_index_join = false;
  bool pushdown = false;
};

struct PlanCache {
  std::mutex mu;
  std::unordered_map<std::string, PlanDecision> entries;
};

PlanCache& Cache() {
  static PlanCache* cache = new PlanCache();
  return *cache;
}

// Coarse log2 cardinality bucket for the cache key: the join-choice
// rule depends on input sizes, so same-shape queries share a cached
// decision only within a ~2x size band.
std::size_t SizeBucket(std::uint64_t n) {
  std::size_t b = 0;
  while (n > 1) {
    n >>= 1;
    ++b;
  }
  return b;
}

void AppendSchemaSig(const Schema& schema, std::string* key) {
  for (const AttributeDef& def : schema.attributes()) {
    key->push_back(' ');
    *key += def.name;
    key->push_back(':');
    *key += AttributeTypeName(def.type);
  }
}

const Schema& SourceSchema(const LogicalQuery& q) {
  return q.rel != nullptr ? q.rel->schema() : q.spilled->schema();
}

Status ValidateQuery(const LogicalQuery& q) {
  if ((q.rel != nullptr) == (q.spilled != nullptr)) {
    return Status::InvalidArgument(
        "logical query needs exactly one source (rel or spilled)");
  }
  if (q.project && q.join) {
    return Status::InvalidArgument(
        "a pipeline terminal is a projection or a join, not both");
  }
  const Schema& schema = SourceSchema(q);
  for (const Predicate& p : q.filters) {
    if (!p.fn) {
      return Status::InvalidArgument("filter predicate is empty");
    }
    if (p.window && (p.window->attr < 0 ||
                     std::size_t(p.window->attr) >= schema.NumAttributes())) {
      return Status::InvalidArgument(
          "predicate window attribute " + std::to_string(p.window->attr) +
          " out of range");
    }
  }
  if (q.project) {
    for (int idx : *q.project) {
      if (idx < 0 || std::size_t(idx) >= schema.NumAttributes()) {
        return Status::InvalidArgument("projection attribute " +
                                       std::to_string(idx) + " out of range");
      }
    }
  }
  if (q.join) {
    const LogicalQuery::JoinSpec& j = *q.join;
    if (j.inner == nullptr) {
      return Status::InvalidArgument("join has no inner relation");
    }
    if (!j.pred.fn) {
      return Status::InvalidArgument("join predicate is empty");
    }
    const bool may_use_index =
        j.algorithm != LogicalQuery::JoinSpec::Algorithm::kNestedLoop;
    if (may_use_index) {
      if (j.attr_outer < 0 ||
          std::size_t(j.attr_outer) >= schema.NumAttributes()) {
        return Status::InvalidArgument(
            "join outer attribute " + std::to_string(j.attr_outer) +
            " out of range");
      }
      if (schema.attribute(std::size_t(j.attr_outer)).type !=
          AttributeType::kMovingPoint) {
        return Status::InvalidArgument(
            "join outer attribute " + std::to_string(j.attr_outer) +
            " is not a moving point");
      }
      if (j.prebuilt == nullptr && !j.layers &&
          (j.attr_inner < 0 ||
           std::size_t(j.attr_inner) >= j.inner->schema().NumAttributes())) {
        return Status::InvalidArgument(
            "join inner attribute " + std::to_string(j.attr_inner) +
            " out of range");
      }
    }
  }
  return Status::OK();
}

// Cost rule for kAuto: compare the nested loop's predicate evaluations
// (outer rows × inner rows) against a budget that stands in for the
// index build + probe overhead. Tiny inputs stay nested-loop; anything
// sizable takes the index. A prebuilt tree makes the index free, so it
// always wins.
bool ChooseIndexJoin(const LogicalQuery& q) {
  const LogicalQuery::JoinSpec& j = *q.join;
  if (j.prebuilt != nullptr || j.layers) return true;
  const std::uint64_t outer_rows =
      q.rel != nullptr ? q.rel->NumTuples() : q.spilled->NumTuples();
  const std::uint64_t nl_evals = outer_rows * j.inner->NumTuples();
  return nl_evals > kNestedLoopEvalBudget;
}

// Pushdown rule: the tightest window over the source's spilled
// attribute, intersected across all annotated filters. nullopt when the
// source is in-memory or no filter annotates the spilled slot.
std::optional<TimeWindow> PushdownWindow(const LogicalQuery& q) {
  if (q.spilled == nullptr) return std::nullopt;
  std::optional<TimeWindow> window;
  for (const Predicate& p : q.filters) {
    if (!p.window || p.window->attr != q.spilled->spilled_attr()) continue;
    if (!window) {
      window = *p.window;
    } else {
      window->t0 = std::max(window->t0, p.window->t0);
      window->t1 = std::min(window->t1, p.window->t1);
    }
  }
  return window;
}

std::string DeriveOutName(const LogicalQuery& q, bool use_index_join) {
  std::string name = q.rel != nullptr ? q.rel->name() : q.spilled->name();
  if (!q.filters.empty()) name += "_sel";
  if (q.join) {
    name += use_index_join ? "_ix_" : "_x_";
    name += q.join->inner->name();
  } else if (q.project) {
    name += "_proj";
  }
  return name;
}

}  // namespace

std::string PlanCacheKey(const LogicalQuery& q) {
  std::string key = q.spilled != nullptr
                        ? "spill[" + std::to_string(q.spilled->spilled_attr()) +
                              "]"
                        : "mem";
  AppendSchemaSig(SourceSchema(q), &key);
  key += " n~" + std::to_string(SizeBucket(
                     q.rel != nullptr ? q.rel->NumTuples()
                                      : q.spilled->NumTuples()));
  key += "|filters";
  for (const Predicate& p : q.filters) {
    key.push_back(' ');
    key += p.shape;
    if (p.window) key += "@w" + std::to_string(p.window->attr);
  }
  if (q.project) {
    key += "|proj";
    for (int idx : *q.project) key += " " + std::to_string(idx);
  }
  if (q.join) {
    const LogicalQuery::JoinSpec& j = *q.join;
    key += "|join ";
    key += j.algorithm == LogicalQuery::JoinSpec::Algorithm::kAuto
               ? "auto"
               : (j.algorithm == LogicalQuery::JoinSpec::Algorithm::kIndex
                      ? "index"
                      : "nl");
    key += j.layers ? " layers" : (j.prebuilt != nullptr ? " prebuilt" : " build");
    key += " " + std::to_string(j.attr_outer) + "/" +
           std::to_string(j.attr_inner) + " ";
    key += j.pred.shape;
    AppendSchemaSig(j.inner->schema(), &key);
    key += " m~" + std::to_string(SizeBucket(j.inner->NumTuples()));
  }
  return key;
}

std::size_t PlanCacheSize() {
  PlanCache& cache = Cache();
  std::lock_guard<std::mutex> lock(cache.mu);
  return cache.entries.size();
}

void PlanCacheClear() {
  PlanCache& cache = Cache();
  std::lock_guard<std::mutex> lock(cache.mu);
  cache.entries.clear();
}

Result<PhysicalPlan> PlanQuery(const LogicalQuery& q) {
  MODB_RETURN_IF_ERROR(ValidateQuery(q));

  // Rule 3: look the decision up before costing. The cached value is
  // only a decision (never validity — validation always runs above).
  const std::string key = PlanCacheKey(q);
  PlanDecision decision;
  bool cached = false;
  {
    PlanCache& cache = Cache();
    std::lock_guard<std::mutex> lock(cache.mu);
    auto it = cache.entries.find(key);
    if (it != cache.entries.end()) {
      decision = it->second;
      cached = true;
    }
  }
  if (cached) {
    MODB_COUNTER_INC("exec.plan_cache.hits");
  } else {
    MODB_COUNTER_INC("exec.plan_cache.misses");
    if (q.join) {
      switch (q.join->algorithm) {
        case LogicalQuery::JoinSpec::Algorithm::kIndex:
          decision.use_index_join = true;
          break;
        case LogicalQuery::JoinSpec::Algorithm::kNestedLoop:
          decision.use_index_join = false;
          break;
        case LogicalQuery::JoinSpec::Algorithm::kAuto:
          decision.use_index_join = ChooseIndexJoin(q);
          break;
      }
    }
    decision.pushdown = PushdownWindow(q).has_value();
    PlanCache& cache = Cache();
    std::lock_guard<std::mutex> lock(cache.mu);
    cache.entries.emplace(key, decision);
  }
  if (q.join) {
    MODB_COUNTER_INC(decision.use_index_join ? "exec.planner.chose_index_join"
                                             : "exec.planner.chose_nested_loop");
  }
  if (decision.pushdown) MODB_COUNTER_INC("exec.planner.pushdown_applied");

  PhysicalPlan plan;
  plan.root_op = q.root_op;
  plan.out_name = !q.out_name.empty()
                      ? q.out_name
                      : DeriveOutName(q, decision.use_index_join);

  Pipeline pipe;
  pipe.rel = q.rel;
  pipe.spilled = q.spilled;
  pipe.filters = q.filters;
  pipe.morsel_rows = q.morsel_rows;
  if (decision.pushdown) pipe.scan_window = PushdownWindow(q);

  const Schema& schema = SourceSchema(q);
  const std::uint64_t source_rows =
      q.rel != nullptr ? q.rel->NumTuples() : q.spilled->NumTuples();
  plan.legacy_tuples_in = source_rows;

  PlanStep pipe_step;
  if (q.join) {
    const LogicalQuery::JoinSpec& j = *q.join;
    plan.legacy_tuples_in += j.inner->NumTuples();
    const std::string outer_name =
        (q.rel != nullptr ? q.rel->name() : q.spilled->name()) +
        (q.filters.empty() ? "" : "_sel");
    plan.out_schema =
        Schema::Concat(schema, outer_name + ".", j.inner->schema(),
                       j.inner->name() + ".");
    JoinProbeOp op;
    op.kind = decision.use_index_join ? JoinProbeOp::Kind::kIndex
                                      : JoinProbeOp::Kind::kNestedLoop;
    op.inner = j.inner;
    op.attr_outer = j.attr_outer;
    op.expand = j.expand;
    op.pred = j.pred;
    if (decision.use_index_join) {
      if (j.layers) {
        op.layers = j.layers;
      } else if (j.prebuilt != nullptr) {
        op.tree = j.prebuilt;
      } else {
        PlanStep build;
        build.build = BuildIndexOp{j.inner, j.attr_inner};
        plan.steps.push_back(std::move(build));
        op.build_step = int(plan.steps.size()) - 1;
        pipe_step.deps.push_back(plan.steps.size() - 1);
      }
    }
    pipe.join = std::move(op);
  } else if (q.project) {
    std::vector<AttributeDef> defs;
    defs.reserve(q.project->size());
    for (int idx : *q.project) defs.push_back(schema.attribute(std::size_t(idx)));
    plan.out_schema = Schema(std::move(defs));
    pipe.project = ProjectOp{*q.project};
  } else {
    plan.out_schema = schema;
  }

  pipe_step.pipe = std::move(pipe);
  plan.steps.push_back(std::move(pipe_step));
  return plan;
}

}  // namespace exec
}  // namespace modb
