#include "obs/exec_stats.h"

#include <utility>

#include "obs/json.h"

namespace modb {
namespace obs {

void ExecStats::MergeCountersFrom(const ExecStats& other) {
  tuples_in += other.tuples_in;
  tuples_out += other.tuples_out;
  predicate_evals += other.predicate_evals;
  index_candidates += other.index_candidates;
  index_hits += other.index_hits;
  index_builds += other.index_builds;
  units_scanned += other.units_scanned;
  workers += other.workers;
  morsels += other.morsels;
  morsels_stolen += other.morsels_stolen;
  pushdown_skips += other.pushdown_skips;
  materializations += other.materializations;
}

namespace {

JsonValue ToJsonValue(const ExecStats& s) {
  JsonValue obj = JsonValue::Object();
  obj.Set("op", JsonValue::Str(s.op));
  auto set_if = [&obj](const char* key, std::uint64_t v) {
    if (v) obj.Set(key, JsonValue::Int(v));
  };
  set_if("tuples_in", s.tuples_in);
  set_if("tuples_out", s.tuples_out);
  set_if("predicate_evals", s.predicate_evals);
  set_if("index_candidates", s.index_candidates);
  set_if("index_hits", s.index_hits);
  set_if("index_builds", s.index_builds);
  set_if("units_scanned", s.units_scanned);
  set_if("workers", s.workers);
  set_if("morsels", s.morsels);
  set_if("morsels_stolen", s.morsels_stolen);
  set_if("pushdown_skips", s.pushdown_skips);
  set_if("materializations", s.materializations);
  set_if("wall_ns", s.wall_ns);
  if (!s.children.empty()) {
    JsonValue children = JsonValue::Array();
    for (const ExecStats& child : s.children) {
      children.Append(ToJsonValue(child));
    }
    obj.Set("children", std::move(children));
  }
  return obj;
}

Result<ExecStats> FromJsonValue(const JsonValue& v) {
  if (v.kind() != JsonValue::Kind::kObject) {
    return Status::InvalidArgument("ExecStats node must be a JSON object");
  }
  ExecStats out;
  for (const auto& [key, val] : v.members()) {
    if (key == "op") {
      if (val.kind() != JsonValue::Kind::kString) {
        return Status::InvalidArgument("ExecStats.op must be a string");
      }
      out.op = val.string_value();
    } else if (key == "children") {
      if (val.kind() != JsonValue::Kind::kArray) {
        return Status::InvalidArgument("ExecStats.children must be an array");
      }
      for (const JsonValue& child : val.items()) {
        Result<ExecStats> c = FromJsonValue(child);
        if (!c.ok()) return c.status();
        out.children.push_back(std::move(*c));
      }
    } else {
      if (val.kind() != JsonValue::Kind::kNumber) {
        return Status::InvalidArgument("ExecStats." + key +
                                       " must be a number");
      }
      std::uint64_t n = val.uint_value();
      if (key == "tuples_in") out.tuples_in = n;
      else if (key == "tuples_out") out.tuples_out = n;
      else if (key == "predicate_evals") out.predicate_evals = n;
      else if (key == "index_candidates") out.index_candidates = n;
      else if (key == "index_hits") out.index_hits = n;
      else if (key == "index_builds") out.index_builds = n;
      else if (key == "units_scanned") out.units_scanned = n;
      else if (key == "workers") out.workers = n;
      else if (key == "morsels") out.morsels = n;
      else if (key == "morsels_stolen") out.morsels_stolen = n;
      else if (key == "pushdown_skips") out.pushdown_skips = n;
      else if (key == "materializations") out.materializations = n;
      else if (key == "wall_ns") out.wall_ns = n;
      else return Status::InvalidArgument("unknown ExecStats field: " + key);
    }
  }
  return out;
}

}  // namespace

std::string ExecStats::ToJson() const { return ToJsonValue(*this).Write(); }

Result<ExecStats> ExecStats::FromJson(const std::string& json) {
  Result<JsonValue> v = JsonValue::Parse(json);
  if (!v.ok()) return v.status();
  return FromJsonValue(*v);
}

}  // namespace obs
}  // namespace modb
