// DumpStats: the human-readable observability report the examples print.
// Renders the global metrics registry (counters sorted by name,
// histograms with count/mean) and, when given one, an ExecStats tree
// with per-node cardinalities — the quick answer to "where did this
// query's time and work go?" without leaving the terminal.

#ifndef MODB_OBS_REPORT_H_
#define MODB_OBS_REPORT_H_

#include <string>

#include "obs/exec_stats.h"

namespace modb {
namespace obs {

/// Multi-line report of the global metrics registry plus an optional
/// query stats tree. Under MODB_NO_METRICS the registry section reports
/// that metrics are compiled out; a provided ExecStats tree still
/// renders (it is caller-owned, not registry-backed).
std::string DumpStats(const ExecStats* stats = nullptr);

}  // namespace obs
}  // namespace modb

#endif  // MODB_OBS_REPORT_H_
