// A minimal JSON document model with a compact writer and a strict
// recursive-descent parser. This exists so the observability layer can
// emit machine-readable metric/stat dumps (and round-trip them in tests)
// without pulling a third-party JSON dependency into the build; it is
// also what tools/json_check uses to validate the bench output files.
//
// Scope: the JSON interchange subset the obs layer needs — objects keep
// insertion order, numbers are IEEE doubles (integers up to 2^53 are
// written without a decimal point and round-trip exactly), strings are
// UTF-8 with \uXXXX escapes decoded on parse.

#ifndef MODB_OBS_JSON_H_
#define MODB_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/status.h"

namespace modb {
namespace obs {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}

  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b) {
    JsonValue v;
    v.kind_ = Kind::kBool;
    v.bool_ = b;
    return v;
  }
  static JsonValue Number(double d) {
    JsonValue v;
    v.kind_ = Kind::kNumber;
    v.number_ = d;
    return v;
  }
  static JsonValue Int(std::uint64_t n) { return Number(double(n)); }
  static JsonValue Str(std::string s) {
    JsonValue v;
    v.kind_ = Kind::kString;
    v.string_ = std::move(s);
    return v;
  }
  static JsonValue Array() {
    JsonValue v;
    v.kind_ = Kind::kArray;
    return v;
  }
  static JsonValue Object() {
    JsonValue v;
    v.kind_ = Kind::kObject;
    return v;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }

  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  /// number_value as a non-negative integer (counters), clamped at 0.
  std::uint64_t uint_value() const {
    return number_ > 0 ? std::uint64_t(number_) : 0;
  }
  const std::string& string_value() const { return string_; }

  // Array access.
  void Append(JsonValue v) { items_.push_back(std::move(v)); }
  const std::vector<JsonValue>& items() const { return items_; }

  // Object access: members keep insertion order; Set overwrites in place.
  void Set(std::string key, JsonValue v);
  const JsonValue* Find(const std::string& key) const;
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  /// Compact serialization (no whitespace).
  std::string Write() const;
  void WriteTo(std::string* out) const;

  /// Parses a complete JSON document; trailing non-whitespace is an error.
  static Result<JsonValue> Parse(std::string_view text);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

}  // namespace obs
}  // namespace modb

#endif  // MODB_OBS_JSON_H_
