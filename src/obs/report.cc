#include "obs/report.h"

#include <cstdarg>
#include <cstdio>

#include "obs/metrics.h"

namespace modb {
namespace obs {

namespace {

void AppendLine(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  out->append(buf);
  out->push_back('\n');
}

void AppendStatsNode(const ExecStats& s, int depth, std::string* out) {
  std::string indent(std::size_t(depth) * 2, ' ');
  AppendLine(out, "%s%s: in=%llu out=%llu pred=%llu", indent.c_str(),
             s.op.empty() ? "(node)" : s.op.c_str(),
             (unsigned long long)s.tuples_in, (unsigned long long)s.tuples_out,
             (unsigned long long)s.predicate_evals);
  if (s.index_candidates || s.index_hits || s.units_scanned) {
    AppendLine(out, "%s  index: candidates=%llu hits=%llu units_scanned=%llu",
               indent.c_str(), (unsigned long long)s.index_candidates,
               (unsigned long long)s.index_hits,
               (unsigned long long)s.units_scanned);
  }
  if (s.workers || s.wall_ns) {
    AppendLine(out, "%s  exec: workers=%llu wall=%.3f ms", indent.c_str(),
               (unsigned long long)s.workers, double(s.wall_ns) / 1e6);
  }
  for (const ExecStats& child : s.children) {
    AppendStatsNode(child, depth + 1, out);
  }
}

}  // namespace

std::string DumpStats(const ExecStats* stats) {
  std::string out;
  out.append("== modb observability report ==\n");
#ifdef MODB_NO_METRICS
  out.append("metrics: compiled out (MODB_NO_METRICS)\n");
#else
  Metrics& metrics = Metrics::Global();
  auto counters = metrics.SnapshotCounters();
  auto histograms = metrics.SnapshotHistograms();
  AppendLine(&out, "counters (%zu):", counters.size());
  for (const CounterSnapshot& c : counters) {
    AppendLine(&out, "  %-44s %12llu", c.name.c_str(),
               (unsigned long long)c.value);
  }
  AppendLine(&out, "histograms (%zu):", histograms.size());
  for (const HistogramSnapshot& h : histograms) {
    double mean = h.count ? double(h.sum) / double(h.count) : 0;
    AppendLine(&out, "  %-44s count=%llu mean=%.1f", h.name.c_str(),
               (unsigned long long)h.count, mean);
  }
#endif
  if (stats != nullptr) {
    out.append("query stats:\n");
    AppendStatsNode(*stats, 1, &out);
  }
  return out;
}

}  // namespace obs
}  // namespace modb
