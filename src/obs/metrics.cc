#include "obs/metrics.h"

#include "obs/json.h"

#ifndef MODB_NO_METRICS
#include <bit>
#endif

namespace modb {
namespace obs {

#ifndef MODB_NO_METRICS

void Histogram::Record(std::uint64_t sample) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(sample, std::memory_order_relaxed);
  buckets_[std::bit_width(sample)].fetch_add(1, std::memory_order_relaxed);
}

void Histogram::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

Metrics& Metrics::Global() {
  static Metrics* metrics = new Metrics();  // Leaked: outlives all users.
  return *metrics;
}

Counter* Metrics::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Histogram* Metrics::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

std::vector<CounterSnapshot> Metrics::SnapshotCounters() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<CounterSnapshot> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.push_back({name, counter->value()});
  }
  return out;  // std::map iteration is already name-sorted.
}

std::vector<HistogramSnapshot> Metrics::SnapshotHistograms() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<HistogramSnapshot> out;
  out.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot snap;
    snap.name = name;
    snap.count = histogram->count();
    snap.sum = histogram->sum();
    for (int i = 0; i < Histogram::kNumBuckets; ++i) {
      std::uint64_t n = histogram->bucket(i);
      if (n) snap.buckets.emplace_back(i, n);
    }
    out.push_back(std::move(snap));
  }
  return out;
}

void Metrics::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

std::string Metrics::ToJson() const {
  JsonValue counters = JsonValue::Object();
  for (const CounterSnapshot& c : SnapshotCounters()) {
    counters.Set(c.name, JsonValue::Int(c.value));
  }
  JsonValue histograms = JsonValue::Object();
  for (const HistogramSnapshot& h : SnapshotHistograms()) {
    JsonValue entry = JsonValue::Object();
    entry.Set("count", JsonValue::Int(h.count));
    entry.Set("sum", JsonValue::Int(h.sum));
    JsonValue buckets = JsonValue::Array();
    for (const auto& [bucket, n] : h.buckets) {
      JsonValue pair = JsonValue::Array();
      pair.Append(JsonValue::Int(std::uint64_t(bucket)));
      pair.Append(JsonValue::Int(n));
      buckets.Append(std::move(pair));
    }
    entry.Set("buckets", std::move(buckets));
    histograms.Set(h.name, std::move(entry));
  }
  JsonValue root = JsonValue::Object();
  root.Set("counters", std::move(counters));
  root.Set("histograms", std::move(histograms));
  return root.Write();
}

#else  // MODB_NO_METRICS

Metrics& Metrics::Global() {
  static Metrics* metrics = new Metrics();
  return *metrics;
}

std::string Metrics::ToJson() const {
  return R"({"counters":{},"histograms":{}})";
}

#endif  // MODB_NO_METRICS

}  // namespace obs
}  // namespace modb
