#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace modb {
namespace obs {

void JsonValue::Set(std::string key, JsonValue v) {
  for (auto& member : members_) {
    if (member.first == key) {
      member.second = std::move(v);
      return;
    }
  }
  members_.emplace_back(std::move(key), std::move(v));
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  for (const auto& member : members_) {
    if (member.first == key) return &member.second;
  }
  return nullptr;
}

namespace {

// Largest integer magnitude a double represents exactly; integers within
// it are written without a decimal point so counters round-trip
// byte-identically.
constexpr double kMaxExactInt = 9007199254740992.0;  // 2^53

void WriteString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(char(c));
        }
    }
  }
  out->push_back('"');
}

void WriteNumber(double d, std::string* out) {
  if (!std::isfinite(d)) {  // JSON has no Inf/NaN; degrade to null.
    out->append("null");
    return;
  }
  double integral;
  if (std::modf(d, &integral) == 0.0 && std::fabs(d) < kMaxExactInt) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(d));
    out->append(buf);
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  out->append(buf);
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> ParseDocument() {
    Result<JsonValue> v = ParseValue();
    if (!v.ok()) return v;
    SkipWs();
    if (pos_ != text_.size()) {
      return Err("trailing characters after JSON document");
    }
    return v;
  }

 private:
  Status Err(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue() {
    if (++depth_ > kMaxDepth) return Err("nesting too deep");
    SkipWs();
    if (pos_ >= text_.size()) return Err("unexpected end of input");
    Result<JsonValue> out = ParseValueInner();
    --depth_;
    return out;
  }

  Result<JsonValue> ParseValueInner() {
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        Result<std::string> s = ParseString();
        if (!s.ok()) return s.status();
        return JsonValue::Str(std::move(*s));
      }
      case 't':
        if (ConsumeWord("true")) return JsonValue::Bool(true);
        return Err("invalid literal");
      case 'f':
        if (ConsumeWord("false")) return JsonValue::Bool(false);
        return Err("invalid literal");
      case 'n':
        if (ConsumeWord("null")) return JsonValue::Null();
        return Err("invalid literal");
      default:
        return ParseNumber();
    }
  }

  Result<JsonValue> ParseObject() {
    ++pos_;  // '{'
    JsonValue obj = JsonValue::Object();
    SkipWs();
    if (Consume('}')) return obj;
    for (;;) {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Err("expected object key string");
      }
      Result<std::string> key = ParseString();
      if (!key.ok()) return key.status();
      SkipWs();
      if (!Consume(':')) return Err("expected ':' after object key");
      Result<JsonValue> val = ParseValue();
      if (!val.ok()) return val;
      obj.Set(std::move(*key), std::move(*val));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume('}')) return obj;
      return Err("expected ',' or '}' in object");
    }
  }

  Result<JsonValue> ParseArray() {
    ++pos_;  // '['
    JsonValue arr = JsonValue::Array();
    SkipWs();
    if (Consume(']')) return arr;
    for (;;) {
      Result<JsonValue> val = ParseValue();
      if (!val.ok()) return val;
      arr.Append(std::move(*val));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume(']')) return arr;
      return Err("expected ',' or ']' in array");
    }
  }

  Result<std::string> ParseString() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < text_.size()) {
      unsigned char c = (unsigned char)text_[pos_];
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (c < 0x20) return Err("unescaped control character in string");
      if (c != '\\') {
        out.push_back(char(c));
        ++pos_;
        continue;
      }
      ++pos_;
      if (pos_ >= text_.size()) return Err("dangling escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned cp = 0;
          if (pos_ + 4 > text_.size()) return Err("truncated \\u escape");
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= unsigned(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= unsigned(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= unsigned(h - 'A' + 10);
            else return Err("invalid hex digit in \\u escape");
          }
          if (cp >= 0xD800 && cp <= 0xDFFF) {
            return Err("surrogate \\u escapes are not supported");
          }
          // Encode the BMP code point as UTF-8.
          if (cp < 0x80) {
            out.push_back(char(cp));
          } else if (cp < 0x800) {
            out.push_back(char(0xC0 | (cp >> 6)));
            out.push_back(char(0x80 | (cp & 0x3F)));
          } else {
            out.push_back(char(0xE0 | (cp >> 12)));
            out.push_back(char(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(char(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default:
          return Err("invalid escape character");
      }
    }
    return Err("unterminated string");
  }

  Result<JsonValue> ParseNumber() {
    const std::size_t start = pos_;
    if (Consume('-')) {}
    if (pos_ >= text_.size() || !std::isdigit((unsigned char)text_[pos_])) {
      return Err("invalid number");
    }
    while (pos_ < text_.size() && std::isdigit((unsigned char)text_[pos_])) {
      ++pos_;
    }
    if (Consume('.')) {
      if (pos_ >= text_.size() || !std::isdigit((unsigned char)text_[pos_])) {
        return Err("invalid number: expected fraction digits");
      }
      while (pos_ < text_.size() && std::isdigit((unsigned char)text_[pos_])) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || !std::isdigit((unsigned char)text_[pos_])) {
        return Err("invalid number: expected exponent digits");
      }
      while (pos_ < text_.size() && std::isdigit((unsigned char)text_[pos_])) {
        ++pos_;
      }
    }
    std::string token(text_.substr(start, pos_ - start));
    return JsonValue::Number(std::strtod(token.c_str(), nullptr));
  }

  static constexpr int kMaxDepth = 256;

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

void JsonValue::WriteTo(std::string* out) const {
  switch (kind_) {
    case Kind::kNull:
      out->append("null");
      return;
    case Kind::kBool:
      out->append(bool_ ? "true" : "false");
      return;
    case Kind::kNumber:
      WriteNumber(number_, out);
      return;
    case Kind::kString:
      WriteString(string_, out);
      return;
    case Kind::kArray: {
      out->push_back('[');
      bool first = true;
      for (const JsonValue& item : items_) {
        if (!first) out->push_back(',');
        first = false;
        item.WriteTo(out);
      }
      out->push_back(']');
      return;
    }
    case Kind::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& member : members_) {
        if (!first) out->push_back(',');
        first = false;
        WriteString(member.first, out);
        out->push_back(':');
        member.second.WriteTo(out);
      }
      out->push_back('}');
      return;
    }
  }
}

std::string JsonValue::Write() const {
  std::string out;
  WriteTo(&out);
  return out;
}

Result<JsonValue> JsonValue::Parse(std::string_view text) {
  return Parser(text).ParseDocument();
}

}  // namespace obs
}  // namespace modb
