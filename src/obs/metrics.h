// The process-wide metrics registry: named monotonic counters, log2
// histograms, and scoped wall-clock timers. This is the low-level half of
// the observability layer (the structured per-query half is
// obs/exec_stats.h); the storage, index, temporal-kernel, and parallel
// layers bump these counters so a bench or example run can explain where
// its work went (see obs/report.h and the METRICS_<bench>.json export).
//
// Hot-path discipline:
//   * Increments are single relaxed atomic adds — no locks, no branches.
//   * Registration (name -> counter lookup) takes a mutex, but the
//     MODB_COUNTER_* macros cache the resolved pointer in a function-local
//     static, so each call site pays the lookup once per process.
//   * Layers that count per-element (R-tree node visits, sweep steps)
//     accumulate into plain locals and flush one atomic add per call.
//   * Compiling with -DMODB_NO_METRICS (CMake: -DMODB_METRICS=OFF)
//     replaces everything here with empty inline stubs; the macros expand
//     to ((void)0) and instrumented code is byte-for-byte free of
//     metrics work. The API surface stays available so callers need no
//     #ifdefs: ToJson() still emits a valid (empty) document.

#ifndef MODB_OBS_METRICS_H_
#define MODB_OBS_METRICS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#ifndef MODB_NO_METRICS
#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#endif

namespace modb {
namespace obs {

#ifndef MODB_NO_METRICS

/// A monotonically increasing counter. Increment is one relaxed atomic
/// add; reads are racy-but-coherent snapshots (fine for reporting).
class Counter {
 public:
  void Inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// A histogram over non-negative integer samples with power-of-two
/// buckets: bucket i counts samples whose bit width is i (0 -> bucket 0,
/// 1 -> 1, 2..3 -> 2, 4..7 -> 3, ...). Recording is two relaxed adds.
class Histogram {
 public:
  static constexpr int kNumBuckets = 65;  // bit widths 0..64

  void Record(std::uint64_t sample);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t bucket(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  void Reset();

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> buckets_[kNumBuckets] = {};
};

struct CounterSnapshot {
  std::string name;
  std::uint64_t value = 0;
};

struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  // (bucket index, count) for the non-empty buckets, ascending.
  std::vector<std::pair<int, std::uint64_t>> buckets;
};

/// The registry. Counter/Histogram objects live as long as the registry
/// (i.e. the process, for Global()), so cached pointers never dangle.
class Metrics {
 public:
  Metrics() = default;
  Metrics(const Metrics&) = delete;
  Metrics& operator=(const Metrics&) = delete;

  /// The process-wide registry all macros and library code use.
  static Metrics& Global();

  /// Finds or registers a counter/histogram. Thread-safe; O(log n) under
  /// a mutex — cache the pointer on hot paths (the macros below do).
  Counter* counter(const std::string& name);
  Histogram* histogram(const std::string& name);

  /// Stable (name-sorted) snapshots of everything registered.
  std::vector<CounterSnapshot> SnapshotCounters() const;
  std::vector<HistogramSnapshot> SnapshotHistograms() const;

  /// Zeroes every registered counter and histogram (entries remain
  /// registered). For tests and per-phase deltas.
  void ResetAll();

  /// {"counters":{...},"histograms":{name:{"count":..,"sum":..,
  /// "buckets":[[i,n],...]}}} — compact, keys sorted.
  std::string ToJson() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Records the scope's wall time in nanoseconds into a histogram.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* h)
      : h_(h), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - start_)
                  .count();
    h_->Record(ns > 0 ? std::uint64_t(ns) : 0);
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* h_;
  std::chrono::steady_clock::time_point start_;
};

// Hot-path macros: resolve the metric once per call site, then one
// relaxed atomic op per use.
#define MODB_COUNTER_INC(name) MODB_COUNTER_ADD(name, 1)
#define MODB_COUNTER_ADD(name, n)                                       \
  do {                                                                  \
    static ::modb::obs::Counter* _modb_counter =                        \
        ::modb::obs::Metrics::Global().counter(name);                   \
    _modb_counter->Inc(std::uint64_t(n));                               \
  } while (0)
#define MODB_HISTOGRAM_RECORD(name, sample)                             \
  do {                                                                  \
    static ::modb::obs::Histogram* _modb_histogram =                    \
        ::modb::obs::Metrics::Global().histogram(name);                 \
    _modb_histogram->Record(std::uint64_t(sample));                     \
  } while (0)
#define MODB_SCOPED_TIMER(name)                                         \
  ::modb::obs::ScopedTimer _modb_scoped_timer_##__LINE__(               \
      ::modb::obs::Metrics::Global().histogram(name))

#else  // MODB_NO_METRICS: the whole layer compiles to nothing.

class Counter {
 public:
  void Inc(std::uint64_t = 1) {}
  std::uint64_t value() const { return 0; }
  void Reset() {}
};

class Histogram {
 public:
  static constexpr int kNumBuckets = 65;
  void Record(std::uint64_t) {}
  std::uint64_t count() const { return 0; }
  std::uint64_t sum() const { return 0; }
  std::uint64_t bucket(int) const { return 0; }
  void Reset() {}
};

struct CounterSnapshot {
  std::string name;
  std::uint64_t value = 0;
};

struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::vector<std::pair<int, std::uint64_t>> buckets;
};

class Metrics {
 public:
  static Metrics& Global();
  Counter* counter(const std::string&) { return &counter_; }
  Histogram* histogram(const std::string&) { return &histogram_; }
  std::vector<CounterSnapshot> SnapshotCounters() const { return {}; }
  std::vector<HistogramSnapshot> SnapshotHistograms() const { return {}; }
  void ResetAll() {}
  std::string ToJson() const;

 private:
  Counter counter_;
  Histogram histogram_;
};

class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram*) {}
};

#define MODB_COUNTER_INC(name) ((void)0)
#define MODB_COUNTER_ADD(name, n) ((void)0)
#define MODB_HISTOGRAM_RECORD(name, sample) ((void)0)
#define MODB_SCOPED_TIMER(name) ((void)0)

#endif  // MODB_NO_METRICS

}  // namespace obs
}  // namespace modb

#endif  // MODB_OBS_METRICS_H_
