// ExecStats: the per-query-node execution profile tree. Every unified
// query operator (db/query.h) fills one node when ExecOptions.stats is
// set: cardinalities in/out, predicate evaluations, index candidates vs
// hits, and units touched, plus wall time and — for parallel runs — one
// child node per worker chunk, merged deterministically in chunk order
// (chunk boundaries depend only on (n, chunks), so two runs of the same
// query produce the same tree regardless of thread scheduling).
//
// Unlike the obs/metrics.h registry (process-global, always-on counters),
// an ExecStats tree is caller-owned and opt-in: operators pay for
// plain local increments only, and skip even the clock reads when no
// tree was requested. ToJson/FromJson round-trip exactly, so stats can
// ride alongside the BENCH_*.json files and be diffed across runs.

#ifndef MODB_OBS_EXEC_STATS_H_
#define MODB_OBS_EXEC_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/status.h"

namespace modb {
namespace obs {

struct ExecStats {
  /// Operator (or worker-chunk) label: "select", "nested_loop_join",
  /// "index_join_on_moving_point", "project", "chunk[3]", ...
  std::string op;

  // Cardinalities. For joins, tuples_in counts outer + inner tuples.
  std::uint64_t tuples_in = 0;
  std::uint64_t tuples_out = 0;

  /// Times the caller's predicate ran (after any index pruning).
  std::uint64_t predicate_evals = 0;

  /// Index join: candidate tuples the index produced, and candidates
  /// that survived the exact predicate. candidates - hits = wasted
  /// refinements; tuples_in(outer) - candidates = pruning power.
  std::uint64_t index_candidates = 0;
  std::uint64_t index_hits = 0;

  /// Index structures built by this operator call (0 when a prebuilt
  /// index was reused — the rebuild-per-call antipattern shows up here).
  std::uint64_t index_builds = 0;

  /// Moving-object units touched while probing/evaluating (e.g. units
  /// whose bounding cubes were used as index query windows).
  std::uint64_t units_scanned = 0;

  /// Worker chunks the operator ran as (1 = serial inline).
  std::uint64_t workers = 0;

  /// Pipelined engine (src/exec/): morsels this node processed, and how
  /// many of them a worker stole from another worker's shard.
  std::uint64_t morsels = 0;
  std::uint64_t morsels_stolen = 0;

  /// Spilled-scan rows skipped by a pushed-down predicate window using
  /// resident stats only — no page was faulted for these rows.
  std::uint64_t pushdown_skips = 0;

  /// Relations this node materialized. A pipelined plan reports exactly
  /// 1 (the sink); a composed chain of materializing operators reports
  /// one per operator — the difference is the engine's whole point.
  std::uint64_t materializations = 0;

  /// Operator wall time; 0 unless a stats tree was requested.
  std::uint64_t wall_ns = 0;

  /// Per-worker (or sub-operator) nodes, in deterministic chunk order.
  std::vector<ExecStats> children;

  /// Sums every counter of `other` into this node, workers included.
  /// op and children are untouched, and wall_ns is NOT summed — wall
  /// time is not additive across concurrent workers; the parent
  /// measures its own.
  void MergeCountersFrom(const ExecStats& other);

  /// Compact JSON; zero-valued fields are omitted, so dumps stay small.
  std::string ToJson() const;

  /// Inverse of ToJson (unknown keys are rejected, missing keys are 0).
  static Result<ExecStats> FromJson(const std::string& json);
};

}  // namespace obs

// The query layer exposes the type in the modb namespace.
using ExecStats = obs::ExecStats;

}  // namespace modb

#endif  // MODB_OBS_EXEC_STATS_H_
