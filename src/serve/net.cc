#include "serve/net.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace modb {
namespace serve {
namespace {

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

Result<sockaddr_in> MakeAddr(const std::string& host, int port) {
  if (port < 0 || port > 65535) {
    return Status::InvalidArgument("port " + std::to_string(port) +
                                   " out of range [0, 65535]");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(std::uint16_t(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("cannot parse IPv4 address '" + host +
                                   "'");
  }
  return addr;
}

}  // namespace

Result<int> ListenTcp(const std::string& host, int port) {
  Result<sockaddr_in> addr = MakeAddr(host, port);
  MODB_RETURN_IF_ERROR(addr.status());
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&*addr), sizeof *addr) <
      0) {
    Status s = Errno("bind " + host + ":" + std::to_string(port));
    ::close(fd);
    return s;
  }
  if (::listen(fd, 64) < 0) {
    Status s = Errno("listen");
    ::close(fd);
    return s;
  }
  return fd;
}

Result<int> BoundPort(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    return Errno("getsockname");
  }
  return int(ntohs(addr.sin_port));
}

Result<int> ConnectTcp(const std::string& host, int port) {
  Result<sockaddr_in> addr = MakeAddr(host, port);
  MODB_RETURN_IF_ERROR(addr.status());
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&*addr),
                sizeof *addr) < 0) {
    Status s = Errno("connect " + host + ":" + std::to_string(port));
    ::close(fd);
    return s;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

Result<bool> ReadFullOrEof(int fd, void* buf, std::size_t n) {
  char* p = static_cast<char*>(buf);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, p + got, n - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Errno("read");
    }
    if (r == 0) {
      if (got == 0) return false;
      return Status::DataLoss("connection closed mid-message (" +
                              std::to_string(got) + " of " +
                              std::to_string(n) + " bytes)");
    }
    got += std::size_t(r);
  }
  return true;
}

Status ReadFull(int fd, void* buf, std::size_t n) {
  Result<bool> r = ReadFullOrEof(fd, buf, n);
  MODB_RETURN_IF_ERROR(r.status());
  if (!*r) {
    return Status::DataLoss("connection closed before message");
  }
  return Status::OK();
}

Status WriteFull(int fd, const void* buf, std::size_t n) {
  const char* p = static_cast<const char*>(buf);
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t w = ::write(fd, p + sent, n - sent);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Errno("write");
    }
    sent += std::size_t(w);
  }
  return Status::OK();
}

void ShutdownFd(int fd) {
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

void ShutdownReadFd(int fd) {
  if (fd >= 0) ::shutdown(fd, SHUT_RD);
}

void CloseFd(int fd) {
  if (fd >= 0) ::close(fd);
}

Status WriteFrame(int fd, FrameType type, std::string_view payload) {
  if (payload.size() > kMaxFramePayload) {
    return Status::InvalidArgument(
        "frame payload of " + std::to_string(payload.size()) +
        " bytes exceeds the " + std::to_string(kMaxFramePayload) +
        "-byte cap");
  }
  std::string msg = EncodeFrameHeader(type, std::uint32_t(payload.size()));
  msg.append(payload.data(), payload.size());
  return WriteFull(fd, msg.data(), msg.size());
}

Result<std::optional<Frame>> ReadFrame(int fd) {
  char header[kFrameHeaderBytes];
  Result<bool> got = ReadFullOrEof(fd, header, sizeof header);
  MODB_RETURN_IF_ERROR(got.status());
  if (!*got) return std::optional<Frame>();
  Result<FrameHeader> h =
      DecodeFrameHeader(std::string_view(header, sizeof header));
  MODB_RETURN_IF_ERROR(h.status());
  Frame frame;
  frame.type = h->type;
  frame.payload.resize(h->payload_len);
  if (h->payload_len > 0) {
    MODB_RETURN_IF_ERROR(ReadFull(fd, frame.payload.data(), h->payload_len));
  }
  return std::optional<Frame>(std::move(frame));
}

}  // namespace serve
}  // namespace modb
