// The modbd client: one TCP connection speaking the frame protocol,
// issuing QueryRequests and decoding replies. Used by tools/loadgen and
// by any embedder that wants to talk to a remote modbd instead of an
// in-process modb::Db — Reply mirrors what Db::Run returns, plus the
// raw result-block bytes for byte-identity comparisons.

#ifndef MODB_SERVE_CLIENT_H_
#define MODB_SERVE_CLIENT_H_

#include <string>

#include "core/status.h"
#include "db/modb.h"

namespace modb {
namespace serve {

class Client {
 public:
  static Result<Client> Connect(const std::string& host, int port);
  ~Client();

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  struct Reply {
    /// The server's verdict on the query — a failed query (unknown
    /// relation, invalid num_threads, admission rejection) arrives
    /// here, NOT as the transport error of Query().
    Status status;
    /// Decoded result; meaningful only when status is OK.
    QueryResult result;
    /// The raw result block: byte-identical across runs and thread
    /// counts for the same query against the same Db state.
    std::string result_block;
  };

  /// Sends `req` and waits for the reply. The returned status is the
  /// transport/protocol verdict; the server's query verdict is
  /// Reply::status.
  Result<Reply> Query(const QueryRequest& req);

  struct MutationReply {
    /// The server's verdict on the mutation (unknown relation, rejected
    /// batch, admission rejection) — NOT the transport error.
    Status status;
    /// Decoded ack; meaningful only when status is OK.
    MutationResult ack;
  };

  /// Sends a mutation frame and waits for its ack.
  Result<MutationReply> Mutate(const MutationRequest& req);

  int fd() const { return fd_; }

 private:
  explicit Client(int fd) : fd_(fd) {}
  int fd_ = -1;
};

/// Fetches the server's /metrics JSON over HTTP on the same port.
Result<std::string> FetchMetricsJson(const std::string& host, int port);

}  // namespace serve
}  // namespace modb

#endif  // MODB_SERVE_CLIENT_H_
