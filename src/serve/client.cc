#include "serve/client.h"

#include <optional>
#include <utility>

#include "obs/exec_stats.h"
#include "serve/net.h"
#include "serve/wire.h"

namespace modb {
namespace serve {

Result<Client> Client::Connect(const std::string& host, int port) {
  Result<int> fd = ConnectTcp(host, port);
  MODB_RETURN_IF_ERROR(fd.status());
  return Client(*fd);
}

Client::~Client() { CloseFd(fd_); }

Client::Client(Client&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    CloseFd(fd_);
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Result<Client::Reply> Client::Query(const QueryRequest& req) {
  if (fd_ < 0) {
    return Status::FailedPrecondition("client is not connected");
  }
  MODB_RETURN_IF_ERROR(
      WriteFrame(fd_, FrameType::kQuery, EncodeQueryRequest(req)));
  Result<std::optional<Frame>> frame = ReadFrame(fd_);
  MODB_RETURN_IF_ERROR(frame.status());
  if (!frame->has_value()) {
    return Status::DataLoss("server closed the connection before replying");
  }
  if ((*frame)->type != FrameType::kReply) {
    return Status::InvalidArgument("expected a reply frame, got type " +
                                   std::to_string(int((*frame)->type)));
  }
  Result<WireReply> wire = DecodeReply((*frame)->payload);
  MODB_RETURN_IF_ERROR(wire.status());
  Reply reply;
  reply.status = wire->status;
  if (wire->status.ok()) {
    Result<QueryResult> result = DecodeResultBlock(wire->result_block);
    MODB_RETURN_IF_ERROR(result.status());
    reply.result = *std::move(result);
    reply.result_block = std::move(wire->result_block);
    if (!wire->stats_json.empty()) {
      Result<ExecStats> stats = ExecStats::FromJson(wire->stats_json);
      MODB_RETURN_IF_ERROR(stats.status());
      reply.result.stats = *std::move(stats);
    }
  }
  return reply;
}

Result<Client::MutationReply> Client::Mutate(const MutationRequest& req) {
  if (fd_ < 0) {
    return Status::FailedPrecondition("client is not connected");
  }
  MODB_RETURN_IF_ERROR(
      WriteFrame(fd_, FrameType::kMutation, EncodeMutationRequest(req)));
  Result<std::optional<Frame>> frame = ReadFrame(fd_);
  MODB_RETURN_IF_ERROR(frame.status());
  if (!frame->has_value()) {
    return Status::DataLoss("server closed the connection before replying");
  }
  if ((*frame)->type != FrameType::kReply) {
    return Status::InvalidArgument("expected a reply frame, got type " +
                                   std::to_string(int((*frame)->type)));
  }
  Result<WireReply> wire = DecodeReply((*frame)->payload);
  MODB_RETURN_IF_ERROR(wire.status());
  MutationReply reply;
  reply.status = wire->status;
  if (wire->status.ok()) {
    Result<MutationResult> ack = DecodeMutationAck(wire->result_block);
    MODB_RETURN_IF_ERROR(ack.status());
    reply.ack = *std::move(ack);
  }
  return reply;
}

Result<std::string> FetchMetricsJson(const std::string& host, int port) {
  Result<int> fd = ConnectTcp(host, port);
  MODB_RETURN_IF_ERROR(fd.status());
  const std::string request =
      "GET /metrics HTTP/1.0\r\nHost: " + host + "\r\n\r\n";
  Status sent = WriteFull(*fd, request.data(), request.size());
  if (!sent.ok()) {
    CloseFd(*fd);
    return sent;
  }
  std::string response;
  char buf[4096];
  for (;;) {
    Result<bool> got = ReadFullOrEof(*fd, buf, 1);
    if (!got.ok()) {
      CloseFd(*fd);
      return got.status();
    }
    if (!*got) break;
    response.push_back(buf[0]);
    if (response.size() > (8u << 20)) {
      CloseFd(*fd);
      return Status::InvalidArgument("metrics response exceeds 8 MiB");
    }
  }
  CloseFd(*fd);
  const std::size_t body = response.find("\r\n\r\n");
  if (body == std::string::npos) {
    return Status::DataLoss("malformed HTTP response (no header terminator)");
  }
  if (response.rfind("HTTP/1.0 200", 0) != 0 &&
      response.rfind("HTTP/1.1 200", 0) != 0) {
    return Status::Internal("metrics endpoint returned: " +
                            response.substr(0, response.find("\r\n")));
  }
  return response.substr(body + 4);
}

}  // namespace serve
}  // namespace modb
