// Thin POSIX TCP helpers shared by the modbd server and the client:
// bind/listen/connect plus loop-until-done reads and writes, and the
// frame I/O built on them. Everything returns Status/Result — no
// exceptions, no partial-read surprises — and file descriptors are
// plain ints owned by the caller.

#ifndef MODB_SERVE_NET_H_
#define MODB_SERVE_NET_H_

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>

#include "core/status.h"
#include "serve/wire.h"

namespace modb {
namespace serve {

/// Binds and listens on host:port (port 0 picks an ephemeral port).
/// Returns the listening fd.
Result<int> ListenTcp(const std::string& host, int port);

/// The locally bound port of a socket (resolves port-0 binds).
Result<int> BoundPort(int fd);

/// Connects to host:port; returns the connected fd.
Result<int> ConnectTcp(const std::string& host, int port);

/// Reads exactly n bytes. Internal on error, DataLoss on EOF mid-read.
Status ReadFull(int fd, void* buf, std::size_t n);

/// Like ReadFull, but a clean EOF before the first byte returns false
/// (the peer closed between messages — not an error).
Result<bool> ReadFullOrEof(int fd, void* buf, std::size_t n);

/// Writes exactly n bytes.
Status WriteFull(int fd, const void* buf, std::size_t n);

/// Half-closes / closes, ignoring errors (teardown paths).
/// ShutdownReadFd closes only the read side: a blocked read returns,
/// but a reply in flight can still be written.
void ShutdownFd(int fd);
void ShutdownReadFd(int fd);
void CloseFd(int fd);

/// Writes one frame (header + payload). The payload must fit the frame
/// cap.
Status WriteFrame(int fd, FrameType type, std::string_view payload);

struct Frame {
  FrameType type = FrameType::kQuery;
  std::string payload;
};

/// Reads one frame; nullopt on clean EOF at a frame boundary. Header
/// decode errors (bad magic, oversized length) surface as the header
/// decoder's typed status without reading the payload.
Result<std::optional<Frame>> ReadFrame(int fd);

}  // namespace serve
}  // namespace modb

#endif  // MODB_SERVE_NET_H_
