#include "serve/server.h"

#include <sys/socket.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <string_view>
#include <utility>

#include "db/parallel.h"
#include "obs/metrics.h"
#include "serve/net.h"
#include "serve/wire.h"

namespace modb {
namespace serve {
namespace {

// num_threads travels as i64; fold it into int range without changing
// whether ValidateParallelOptions accepts it (every value outside
// [-2^30, 2^30] is far outside [anything, kMaxQueryThreads] anyway).
int ClampThreads(std::int64_t n) {
  constexpr std::int64_t kLimit = std::int64_t{1} << 30;
  return int(std::clamp(n, -kLimit, kLimit));
}

std::string HttpResponse(const std::string& status_line,
                         const std::string& body) {
  return "HTTP/1.0 " + status_line +
         "\r\nContent-Type: application/json\r\nContent-Length: " +
         std::to_string(body.size()) + "\r\nConnection: close\r\n\r\n" +
         body;
}

}  // namespace

AdmissionController::AdmissionController(std::int64_t budget,
                                         std::size_t queue_capacity)
    : budget_(budget), queue_capacity_(queue_capacity) {}

Status AdmissionController::Acquire(std::int64_t cost) {
  if (cost <= 0) {
    return Status::InvalidArgument("admission cost must be positive, got " +
                                   std::to_string(cost));
  }
  std::unique_lock lock(mu_);
  if (cost > budget_) {
    ++rejected_;
    return Status::ResourceExhausted(
        "query needs " + std::to_string(cost) +
        " worker threads but the server budget is " +
        std::to_string(budget_) + " (lower the request's num_threads)");
  }
  if (in_use_ + cost <= budget_ && queued_ == 0) {
    in_use_ += cost;
    ++next_ticket_;
    ++serving_ticket_;
    return Status::OK();
  }
  if (queued_ >= queue_capacity_) {
    ++rejected_;
    return Status::ResourceExhausted(
        "admission queue is full (" + std::to_string(queue_capacity_) +
        " queries already waiting for the " + std::to_string(budget_) +
        "-thread budget); retry after backoff");
  }
  const std::uint64_t ticket = next_ticket_++;
  ++queued_;
  cv_.wait(lock, [&] {
    return serving_ticket_ == ticket && in_use_ + cost <= budget_;
  });
  --queued_;
  in_use_ += cost;
  ++serving_ticket_;
  // The next waiter may also fit (e.g. two cheap queries released
  // together); let it re-check.
  cv_.notify_all();
  return Status::OK();
}

void AdmissionController::Release(std::int64_t cost) {
  {
    std::lock_guard lock(mu_);
    in_use_ -= cost;
  }
  cv_.notify_all();
}

std::int64_t AdmissionController::in_use() const {
  std::lock_guard lock(mu_);
  return in_use_;
}

std::size_t AdmissionController::queued() const {
  std::lock_guard lock(mu_);
  return queued_;
}

std::uint64_t AdmissionController::rejected() const {
  std::lock_guard lock(mu_);
  return rejected_;
}

Server::Server(Db* db, ServerOptions options)
    : db_(db),
      options_(std::move(options)),
      admission_(options_.thread_budget, options_.queue_capacity) {}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (options_.thread_budget < 1 ||
      options_.thread_budget > kMaxQueryThreads) {
    return Status::InvalidArgument(
        "ServerOptions.thread_budget = " +
        std::to_string(options_.thread_budget) + " must be in [1, " +
        std::to_string(kMaxQueryThreads) + "] (kMaxQueryThreads)");
  }
  Result<int> fd = ListenTcp(options_.host, options_.port);
  MODB_RETURN_IF_ERROR(fd.status());
  Result<int> port = BoundPort(*fd);
  if (!port.ok()) {
    CloseFd(*fd);
    return port.status();
  }
  listen_fd_ = *fd;
  port_ = *port;
  {
    std::lock_guard lock(mu_);
    started_ = true;
    stopping_ = false;
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void Server::Stop() {
  {
    std::lock_guard lock(mu_);
    if (!started_) return;
    started_ = false;  // claim the shutdown; later Stop()s return above
    stopping_ = true;
  }
  // Wake the blocking accept().
  ShutdownFd(listen_fd_);
  if (accept_thread_.joinable()) accept_thread_.join();
  // Half-close every open connection: reads drain to EOF so the
  // per-connection loops exit after their current request, while reply
  // writes for in-flight queries still go out.
  {
    std::lock_guard lock(mu_);
    for (int fd : open_fds_) ShutdownReadFd(fd);
  }
  for (std::thread& t : connections_) {
    if (t.joinable()) t.join();
  }
  connections_.clear();
  CloseFd(listen_fd_);
  listen_fd_ = -1;
}

void Server::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    std::lock_guard lock(mu_);
    if (stopping_) {
      if (fd >= 0) CloseFd(fd);
      return;
    }
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;  // listening socket is gone
    }
    MODB_COUNTER_INC("serve.connections");
    open_fds_.push_back(fd);
    connections_.emplace_back([this, fd] { ServeConnection(fd); });
  }
}

void Server::ServeConnection(int fd) {
  // Sniff the first bytes: an HTTP GET (the /metrics endpoint) instead
  // of a frame magic diverts the whole connection to the HTTP path.
  char sniff[4];
  Result<bool> got = ReadFullOrEof(fd, sniff, sizeof sniff);
  if (got.ok() && *got && std::string_view(sniff, 4) == "GET ") {
    ServeHttp(fd, std::string(sniff, 4));
  } else if (got.ok() && *got) {
    bool first = true;
    for (;;) {
      char header[kFrameHeaderBytes];
      if (first) {
        std::memcpy(header, sniff, 4);
        if (!ReadFull(fd, header + 4, sizeof header - 4).ok()) break;
        first = false;
      } else {
        Result<bool> more = ReadFullOrEof(fd, header, sizeof header);
        if (!more.ok() || !*more) break;
      }
      Result<FrameHeader> h =
          DecodeFrameHeader(std::string_view(header, sizeof header));
      if (!h.ok()) {
        // The stream cannot be resynchronized after a bad header; send
        // the typed error and drop the connection.
        Result<std::string> reply = EncodeReply(h.status(), nullptr);
        if (reply.ok()) (void)WriteFrame(fd, FrameType::kReply, *reply);
        MODB_COUNTER_INC("serve.errors");
        break;
      }
      std::string payload(h->payload_len, '\0');
      if (h->payload_len > 0 &&
          !ReadFull(fd, payload.data(), payload.size()).ok()) {
        break;
      }
      std::string reply;
      if (h->type == FrameType::kQuery) {
        reply = HandleQuery(payload);
      } else if (h->type == FrameType::kMutation) {
        reply = HandleMutation(payload);
      } else {
        Result<std::string> r = EncodeReply(
            Status::InvalidArgument("expected a query or mutation frame"),
            nullptr);
        reply = r.ok() ? *std::move(r) : std::string();
        MODB_COUNTER_INC("serve.errors");
      }
      if (reply.empty() || !WriteFrame(fd, FrameType::kReply, reply).ok()) {
        break;
      }
    }
  }
  std::lock_guard lock(mu_);
  open_fds_.erase(std::find(open_fds_.begin(), open_fds_.end(), fd));
  CloseFd(fd);
}

void Server::ServeHttp(int fd, const std::string& sniffed) {
  // Read the rest of the request head (bounded; body-less GET).
  std::string head = sniffed;
  char c;
  while (head.size() < 8192 &&
         head.find("\r\n\r\n") == std::string::npos) {
    Result<bool> got = ReadFullOrEof(fd, &c, 1);
    if (!got.ok() || !*got) break;
    head.push_back(c);
  }
  const std::size_t path_begin = 4;  // after "GET "
  const std::size_t path_end = head.find(' ', path_begin);
  const std::string path = path_end == std::string::npos
                               ? std::string()
                               : head.substr(path_begin, path_end - path_begin);
  std::string response;
  if (path == "/metrics") {
    response = HttpResponse("200 OK", obs::Metrics::Global().ToJson());
  } else {
    response = HttpResponse("404 Not Found", "{\"error\":\"not found\"}");
  }
  (void)WriteFull(fd, response.data(), response.size());
}

std::string Server::HandleQuery(const std::string& payload) {
  const auto start = std::chrono::steady_clock::now();
  MODB_COUNTER_INC("serve.requests");
  auto reply_error = [](const Status& s) {
    Result<std::string> r = EncodeReply(s, nullptr);
    MODB_COUNTER_INC("serve.errors");
    return r.ok() ? *std::move(r) : std::string();
  };

  Result<QueryRequest> req = DecodeQueryRequest(payload);
  if (!req.ok()) return reply_error(req.status());

  ExecOptions options;
  options.parallel.num_threads = ClampThreads(req->num_threads);
  // The shared validation point; its message names the offending field
  // and bound, and the reply round-trips it as kInvalidArgument.
  if (Status s = ValidateParallelOptions(options.parallel); !s.ok()) {
    return reply_error(s);
  }

  const std::int64_t cost =
      std::int64_t(ResolveWorkerCount(options.parallel));
  if (Status s = admission_.Acquire(cost); !s.ok()) {
    MODB_COUNTER_INC("serve.rejected");
    return reply_error(s);
  }
  Result<QueryResult> result = db_->Run(*req, options);
  admission_.Release(cost);
  if (!result.ok()) return reply_error(result.status());

  Result<std::string> reply = EncodeReply(Status::OK(), &*result);
  if (!reply.ok()) return reply_error(reply.status());
  MODB_HISTOGRAM_RECORD(
      "serve.request_ns",
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  return *std::move(reply);
}

std::string Server::HandleMutation(const std::string& payload) {
  const auto start = std::chrono::steady_clock::now();
  MODB_COUNTER_INC("serve.requests");
  auto reply_error = [](const Status& s) {
    Result<std::string> r = EncodeMutationReply(s, nullptr);
    MODB_COUNTER_INC("serve.errors");
    return r.ok() ? *std::move(r) : std::string();
  };

  Result<MutationRequest> req = DecodeMutationRequest(payload);
  if (!req.ok()) return reply_error(req.status());

  // Mutations run single-threaded under the Db writer lock; they cost
  // one worker against the same budget queries draw from, so a write
  // burst degrades into the same typed rejections as a query burst.
  if (Status s = admission_.Acquire(1); !s.ok()) {
    MODB_COUNTER_INC("serve.rejected");
    return reply_error(s);
  }
  Result<MutationResult> ack = db_->Apply(*req);
  admission_.Release(1);
  if (!ack.ok()) return reply_error(ack.status());

  Result<std::string> reply = EncodeMutationReply(Status::OK(), &*ack);
  if (!reply.ok()) return reply_error(reply.status());
  MODB_HISTOGRAM_RECORD(
      "serve.request_ns",
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  return *std::move(reply);
}

}  // namespace serve
}  // namespace modb
