// modbd's serving core: a thread-per-connection TCP server that holds a
// modb::Db resident and executes QueryRequests through it, plus the
// admission controller that bounds the server-wide query-thread budget.
//
// Admission control: every query costs the worker count its
// ParallelOptions resolve to. Costs are debited from a fixed budget; a
// query that does not fit waits in a bounded FIFO queue, and when the
// queue is full — or the query could never fit — it is rejected with a
// typed kResourceExhausted, which the wire layer round-trips to the
// client. Overload therefore degrades into fast typed rejections, never
// unbounded queueing, hangs, or crashes.
//
// Graceful shutdown: Stop() stops accepting, half-closes every open
// connection (so idle clients see EOF and per-connection loops exit
// after their current request), then joins every connection thread —
// in-flight and admission-queued queries run to completion and their
// replies are delivered before Stop() returns.
//
// Observability: requests, rejections, errors, and per-request wall
// times go to the process-global obs::Metrics registry; an HTTP
// "GET /metrics" on the same port (sniffed from the first bytes of a
// connection) returns the registry's JSON snapshot.

#ifndef MODB_SERVE_SERVER_H_
#define MODB_SERVE_SERVER_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/status.h"
#include "db/modb.h"

namespace modb {
namespace serve {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 picks an ephemeral port; read it back via Server::port().
  int port = 0;
  /// Server-wide worker budget queries are admitted against. Must be in
  /// [1, kMaxQueryThreads].
  std::int64_t thread_budget = 64;
  /// Queries allowed to wait for budget before rejections start.
  std::size_t queue_capacity = 64;
};

/// The query-thread budget gate. Exposed (rather than buried in the
/// server) so tests can drive overload deterministically without
/// sockets.
class AdmissionController {
 public:
  AdmissionController(std::int64_t budget, std::size_t queue_capacity);

  /// Debits `cost` workers, waiting in FIFO order while the budget is
  /// exhausted. ResourceExhausted when `cost` exceeds the whole budget
  /// (can never fit) or the wait queue is full. InvalidArgument for a
  /// non-positive cost.
  Status Acquire(std::int64_t cost);
  /// Credits `cost` back and wakes the longest-waiting query.
  void Release(std::int64_t cost);

  std::int64_t budget() const { return budget_; }
  std::int64_t in_use() const;
  std::size_t queued() const;
  std::uint64_t rejected() const;

 private:
  const std::int64_t budget_;
  const std::size_t queue_capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::int64_t in_use_ = 0;
  std::size_t queued_ = 0;
  /// FIFO fairness: tickets admit waiters in arrival order, so a cheap
  /// query cannot starve an expensive one that arrived first.
  std::uint64_t next_ticket_ = 0;
  std::uint64_t serving_ticket_ = 0;
  std::uint64_t rejected_ = 0;
};

/// The server. Owns its accept and connection threads; does NOT own the
/// Db (the embedder does — modbd's main builds one, registers
/// relations, then starts a Server over it).
class Server {
 public:
  /// `db` must outlive the server.
  Server(Db* db, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts accepting. InvalidArgument if the
  /// options are out of range (thread_budget vs kMaxQueryThreads).
  Status Start();

  /// The bound port (valid after Start()).
  int port() const { return port_; }

  /// Graceful shutdown; idempotent. Returns after every connection
  /// thread has drained and joined.
  void Stop();

  const AdmissionController& admission() const { return admission_; }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);
  /// Handles one already-sniffed HTTP connection (metrics endpoint).
  void ServeHttp(int fd, const std::string& sniffed);
  /// Decodes, admits, executes, and encodes one query payload.
  std::string HandleQuery(const std::string& payload);
  /// Decodes, admits, applies, and acks one mutation payload.
  std::string HandleMutation(const std::string& payload);

  Db* const db_;
  const ServerOptions options_;
  AdmissionController admission_;

  int listen_fd_ = -1;
  int port_ = -1;
  std::thread accept_thread_;

  std::mutex mu_;
  bool started_ = false;
  bool stopping_ = false;
  std::vector<std::thread> connections_;
  std::vector<int> open_fds_;
};

}  // namespace serve
}  // namespace modb

#endif  // MODB_SERVE_SERVER_H_
