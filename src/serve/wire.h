// The modbd wire protocol codec: pure byte-level encoding of frames,
// QueryRequests, and replies, with no sockets anywhere — everything here
// operates on strings, so the fuzz tests can throw arbitrary bytes at
// the decoders without a server. See docs/PROTOCOL.md for the normative
// description.
//
// Framing: every message is a 12-byte header followed by the payload.
//
//   offset  size  field
//   0       4     magic "MODB"
//   4       1     protocol version (kWireVersion)
//   5       1     frame type (FrameType)
//   6       2     reserved, must be 0
//   8       4     payload length, unsigned little-endian
//
// Payloads are sequences of little-endian primitives and u32
// length-prefixed strings. Every decoder is bounds-checked and total: a
// truncated, oversized, or garbage frame yields a typed InvalidArgument
// (or DataLoss for a bad magic), never a crash or an over-read, and
// trailing bytes after a well-formed payload are rejected.

#ifndef MODB_SERVE_WIRE_H_
#define MODB_SERVE_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "core/status.h"
#include "db/modb.h"

namespace modb {
namespace serve {

inline constexpr char kMagic[4] = {'M', 'O', 'D', 'B'};
/// v2 added mutation frames (kMutation), the mutation ack result block,
/// and the trailing window-aggregate fields of the query payload. The
/// protocol is single-version lockstep: a peer speaking any other
/// version is rejected at the frame header (see docs/PROTOCOL.md,
/// "Versioning").
inline constexpr std::uint8_t kWireVersion = 2;
inline constexpr std::size_t kFrameHeaderBytes = 12;
/// Upper bound on a frame payload; larger length fields are rejected
/// before any allocation.
inline constexpr std::uint32_t kMaxFramePayload = 64u << 20;

enum class FrameType : std::uint8_t {
  /// client -> server: an encoded QueryRequest.
  kQuery = 1,
  /// server -> client: an encoded reply (status + optional result).
  kReply = 2,
  /// client -> server: an encoded MutationRequest (ingest / register /
  /// drop). Answered with a kReply whose result block is a mutation
  /// ack.
  kMutation = 3,
};

struct FrameHeader {
  FrameType type = FrameType::kQuery;
  std::uint32_t payload_len = 0;
};

/// Encodes the 12-byte frame header.
std::string EncodeFrameHeader(FrameType type, std::uint32_t payload_len);

/// Decodes a frame header. `bytes` must be exactly kFrameHeaderBytes;
/// bad magic is DataLoss (the stream is not speaking this protocol —
/// resynchronization is hopeless), anything else wrong (version, type,
/// reserved, oversized length) is InvalidArgument.
Result<FrameHeader> DecodeFrameHeader(std::string_view bytes);

/// Little-endian payload writer.
class WireWriter {
 public:
  void U8(std::uint8_t v);
  void U16(std::uint16_t v);
  void U32(std::uint32_t v);
  void U64(std::uint64_t v);
  void I64(std::int64_t v);
  void F64(double v);
  /// u32 length prefix + raw bytes.
  void Str(std::string_view v);

  const std::string& bytes() const { return buf_; }
  std::string Take() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Bounds-checked little-endian payload reader. Every accessor returns
/// InvalidArgument instead of reading past the end.
class WireReader {
 public:
  explicit WireReader(std::string_view data) : data_(data) {}

  Status U8(std::uint8_t* v);
  Status U16(std::uint16_t* v);
  Status U32(std::uint32_t* v);
  Status U64(std::uint64_t* v);
  Status I64(std::int64_t* v);
  Status F64(double* v);
  Status Str(std::string* v);

  std::size_t remaining() const { return data_.size() - pos_; }
  /// InvalidArgument unless the payload was consumed exactly.
  Status ExpectEnd() const;

 private:
  Status Need(std::size_t n) const;
  std::string_view data_;
  std::size_t pos_ = 0;
};

/// QueryRequest <-> bytes, field for field.
std::string EncodeQueryRequest(const QueryRequest& req);
Result<QueryRequest> DecodeQueryRequest(std::string_view payload);

/// MutationRequest <-> bytes, field for field.
std::string EncodeMutationRequest(const MutationRequest& req);
Result<MutationRequest> DecodeMutationRequest(std::string_view payload);

/// MutationResult <-> bytes. The ack travels in the reply's result
/// block slot under its own block kind (3), deliberately outside the
/// QueryResult payload range so DecodeResultBlock keeps rejecting it —
/// a client cannot mistake an ack for rows.
std::string EncodeMutationAck(const MutationResult& ack);
Result<MutationResult> DecodeMutationAck(std::string_view block);

/// QueryResult payload <-> bytes: the deterministic part of a reply
/// (rows / xy / present geometry), NOT including stats — two runs of the
/// same query produce byte-identical result blocks for any thread
/// count, which is what the concurrent-client determinism tests and
/// loadgen --verify compare.
Result<std::string> EncodeResultBlock(const QueryResult& result);
Result<QueryResult> DecodeResultBlock(std::string_view block);

/// A decoded reply: the remote status, the raw result block (empty on
/// error — kept so clients can compare identity without re-encoding),
/// and the ExecStats JSON (outside the identity-compared bytes: wall
/// times differ run to run).
struct WireReply {
  Status status;
  std::string result_block;
  std::string stats_json;
};

/// Reply payload: u32 status code, string message, string result block
/// (empty on error), string stats JSON.
Result<std::string> EncodeReply(const Status& status,
                                const QueryResult* result);
/// Reply to a mutation: same layout, the block is a mutation ack and
/// the stats JSON is empty.
Result<std::string> EncodeMutationReply(const Status& status,
                                        const MutationResult* ack);
Result<WireReply> DecodeReply(std::string_view payload);

}  // namespace serve
}  // namespace modb

#endif  // MODB_SERVE_WIRE_H_
