#include "serve/wire.h"

#include <cstring>
#include <utility>
#include <vector>

#include "db/relation_io.h"
#include "obs/exec_stats.h"

namespace modb {
namespace serve {
namespace {

constexpr std::uint8_t kMaxQueryKind =
    std::uint8_t(QueryRequest::Kind::kWindowAggregate);
constexpr std::uint8_t kMaxFilterKind =
    std::uint8_t(FilterSpec::Kind::kDeftimeIntersects);
constexpr std::uint8_t kMaxPayloadKind =
    std::uint8_t(QueryResult::Payload::kPresent);
constexpr std::uint8_t kMaxMutationKind =
    std::uint8_t(MutationRequest::Kind::kIngest);
constexpr std::uint32_t kMaxStatusCode =
    std::uint32_t(StatusCode::kResourceExhausted);
constexpr std::uint8_t kMaxAttributeType =
    std::uint8_t(AttributeType::kMovingRegion);
/// Result-block kind of a mutation ack: first value outside the
/// QueryResult::Payload range, so DecodeResultBlock rejects it.
constexpr std::uint8_t kAckBlockKind = 3;

}  // namespace

std::string EncodeFrameHeader(FrameType type, std::uint32_t payload_len) {
  std::string h(kFrameHeaderBytes, '\0');
  std::memcpy(h.data(), kMagic, 4);
  h[4] = char(kWireVersion);
  h[5] = char(std::uint8_t(type));
  h[6] = 0;
  h[7] = 0;
  h[8] = char(payload_len & 0xff);
  h[9] = char((payload_len >> 8) & 0xff);
  h[10] = char((payload_len >> 16) & 0xff);
  h[11] = char((payload_len >> 24) & 0xff);
  return h;
}

Result<FrameHeader> DecodeFrameHeader(std::string_view bytes) {
  if (bytes.size() != kFrameHeaderBytes) {
    return Status::InvalidArgument("frame header must be " +
                                   std::to_string(kFrameHeaderBytes) +
                                   " bytes, got " +
                                   std::to_string(bytes.size()));
  }
  if (std::memcmp(bytes.data(), kMagic, 4) != 0) {
    return Status::DataLoss("bad frame magic (not a MODB stream)");
  }
  const std::uint8_t version = std::uint8_t(bytes[4]);
  if (version != kWireVersion) {
    return Status::InvalidArgument("unsupported protocol version " +
                                   std::to_string(version) + ", expected " +
                                   std::to_string(kWireVersion));
  }
  const std::uint8_t type = std::uint8_t(bytes[5]);
  if (type != std::uint8_t(FrameType::kQuery) &&
      type != std::uint8_t(FrameType::kReply) &&
      type != std::uint8_t(FrameType::kMutation)) {
    return Status::InvalidArgument("unknown frame type " +
                                   std::to_string(type));
  }
  if (bytes[6] != 0 || bytes[7] != 0) {
    return Status::InvalidArgument("reserved frame header bytes must be 0");
  }
  const std::uint32_t len = std::uint32_t(std::uint8_t(bytes[8])) |
                            std::uint32_t(std::uint8_t(bytes[9])) << 8 |
                            std::uint32_t(std::uint8_t(bytes[10])) << 16 |
                            std::uint32_t(std::uint8_t(bytes[11])) << 24;
  if (len > kMaxFramePayload) {
    return Status::InvalidArgument(
        "frame payload length " + std::to_string(len) +
        " exceeds the " + std::to_string(kMaxFramePayload) + "-byte cap");
  }
  return FrameHeader{FrameType(type), len};
}

void WireWriter::U8(std::uint8_t v) { buf_.push_back(char(v)); }

void WireWriter::U16(std::uint16_t v) {
  U8(std::uint8_t(v & 0xff));
  U8(std::uint8_t(v >> 8));
}

void WireWriter::U32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) U8(std::uint8_t((v >> (8 * i)) & 0xff));
}

void WireWriter::U64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) U8(std::uint8_t((v >> (8 * i)) & 0xff));
}

void WireWriter::I64(std::int64_t v) { U64(std::uint64_t(v)); }

void WireWriter::F64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  U64(bits);
}

void WireWriter::Str(std::string_view v) {
  U32(std::uint32_t(v.size()));
  buf_.append(v.data(), v.size());
}

Status WireReader::Need(std::size_t n) const {
  if (remaining() < n) {
    return Status::InvalidArgument(
        "truncated payload: need " + std::to_string(n) + " bytes at offset " +
        std::to_string(pos_) + ", have " + std::to_string(remaining()));
  }
  return Status::OK();
}

Status WireReader::U8(std::uint8_t* v) {
  MODB_RETURN_IF_ERROR(Need(1));
  *v = std::uint8_t(data_[pos_++]);
  return Status::OK();
}

Status WireReader::U16(std::uint16_t* v) {
  MODB_RETURN_IF_ERROR(Need(2));
  *v = std::uint16_t(std::uint8_t(data_[pos_])) |
       std::uint16_t(std::uint8_t(data_[pos_ + 1])) << 8;
  pos_ += 2;
  return Status::OK();
}

Status WireReader::U32(std::uint32_t* v) {
  MODB_RETURN_IF_ERROR(Need(4));
  *v = 0;
  for (int i = 0; i < 4; ++i) {
    *v |= std::uint32_t(std::uint8_t(data_[pos_ + i])) << (8 * i);
  }
  pos_ += 4;
  return Status::OK();
}

Status WireReader::U64(std::uint64_t* v) {
  MODB_RETURN_IF_ERROR(Need(8));
  *v = 0;
  for (int i = 0; i < 8; ++i) {
    *v |= std::uint64_t(std::uint8_t(data_[pos_ + i])) << (8 * i);
  }
  pos_ += 8;
  return Status::OK();
}

Status WireReader::I64(std::int64_t* v) {
  std::uint64_t u;
  MODB_RETURN_IF_ERROR(U64(&u));
  *v = std::int64_t(u);
  return Status::OK();
}

Status WireReader::F64(double* v) {
  std::uint64_t bits;
  MODB_RETURN_IF_ERROR(U64(&bits));
  std::memcpy(v, &bits, sizeof *v);
  return Status::OK();
}

Status WireReader::Str(std::string* v) {
  std::uint32_t len;
  MODB_RETURN_IF_ERROR(U32(&len));
  MODB_RETURN_IF_ERROR(Need(len));
  v->assign(data_.data() + pos_, len);
  pos_ += len;
  return Status::OK();
}

Status WireReader::ExpectEnd() const {
  if (remaining() != 0) {
    return Status::InvalidArgument(std::to_string(remaining()) +
                                   " trailing bytes after payload");
  }
  return Status::OK();
}

std::string EncodeQueryRequest(const QueryRequest& req) {
  WireWriter w;
  w.U8(std::uint8_t(req.kind));
  w.Str(req.relation);
  w.U32(std::uint32_t(req.filters.size()));
  for (const FilterSpec& f : req.filters) {
    w.U8(std::uint8_t(f.kind));
    w.Str(f.attr);
    w.Str(f.value);
    w.F64(f.threshold);
    w.F64(f.t0);
    w.F64(f.t1);
  }
  w.U32(std::uint32_t(req.project.size()));
  for (const std::string& name : req.project) w.Str(name);
  w.Str(req.join_relation);
  w.Str(req.attr);
  w.Str(req.join_attr);
  w.F64(req.distance);
  w.U8(req.distinct_pairs ? 1 : 0);
  w.U32(std::uint32_t(req.instants.size()));
  for (Instant t : req.instants) w.F64(t);
  w.I64(req.num_threads);
  // v2: the window-aggregate fields ride at the end of every query
  // payload (fixed size, defaults for the other kinds).
  w.F64(req.window_t0);
  w.F64(req.window_t1);
  w.F64(req.window_width);
  w.F64(req.window_step);
  w.F64(req.min_x);
  w.F64(req.min_y);
  w.F64(req.max_x);
  w.F64(req.max_y);
  return w.Take();
}

Result<QueryRequest> DecodeQueryRequest(std::string_view payload) {
  WireReader r(payload);
  QueryRequest req;
  std::uint8_t kind;
  MODB_RETURN_IF_ERROR(r.U8(&kind));
  if (kind > kMaxQueryKind) {
    return Status::InvalidArgument("unknown query kind " +
                                   std::to_string(kind));
  }
  req.kind = QueryRequest::Kind(kind);
  MODB_RETURN_IF_ERROR(r.Str(&req.relation));
  std::uint32_t num_filters;
  MODB_RETURN_IF_ERROR(r.U32(&num_filters));
  for (std::uint32_t i = 0; i < num_filters; ++i) {
    FilterSpec f;
    std::uint8_t fk;
    MODB_RETURN_IF_ERROR(r.U8(&fk));
    if (fk > kMaxFilterKind) {
      return Status::InvalidArgument("unknown filter kind " +
                                     std::to_string(fk));
    }
    f.kind = FilterSpec::Kind(fk);
    MODB_RETURN_IF_ERROR(r.Str(&f.attr));
    MODB_RETURN_IF_ERROR(r.Str(&f.value));
    MODB_RETURN_IF_ERROR(r.F64(&f.threshold));
    MODB_RETURN_IF_ERROR(r.F64(&f.t0));
    MODB_RETURN_IF_ERROR(r.F64(&f.t1));
    req.filters.push_back(std::move(f));
  }
  std::uint32_t num_project;
  MODB_RETURN_IF_ERROR(r.U32(&num_project));
  for (std::uint32_t i = 0; i < num_project; ++i) {
    std::string name;
    MODB_RETURN_IF_ERROR(r.Str(&name));
    req.project.push_back(std::move(name));
  }
  MODB_RETURN_IF_ERROR(r.Str(&req.join_relation));
  MODB_RETURN_IF_ERROR(r.Str(&req.attr));
  MODB_RETURN_IF_ERROR(r.Str(&req.join_attr));
  MODB_RETURN_IF_ERROR(r.F64(&req.distance));
  std::uint8_t distinct;
  MODB_RETURN_IF_ERROR(r.U8(&distinct));
  if (distinct > 1) {
    return Status::InvalidArgument("distinct_pairs must be 0 or 1, got " +
                                   std::to_string(distinct));
  }
  req.distinct_pairs = distinct != 0;
  std::uint32_t num_instants;
  MODB_RETURN_IF_ERROR(r.U32(&num_instants));
  for (std::uint32_t i = 0; i < num_instants; ++i) {
    double t;
    MODB_RETURN_IF_ERROR(r.F64(&t));
    req.instants.push_back(t);
  }
  MODB_RETURN_IF_ERROR(r.I64(&req.num_threads));
  MODB_RETURN_IF_ERROR(r.F64(&req.window_t0));
  MODB_RETURN_IF_ERROR(r.F64(&req.window_t1));
  MODB_RETURN_IF_ERROR(r.F64(&req.window_width));
  MODB_RETURN_IF_ERROR(r.F64(&req.window_step));
  MODB_RETURN_IF_ERROR(r.F64(&req.min_x));
  MODB_RETURN_IF_ERROR(r.F64(&req.min_y));
  MODB_RETURN_IF_ERROR(r.F64(&req.max_x));
  MODB_RETURN_IF_ERROR(r.F64(&req.max_y));
  MODB_RETURN_IF_ERROR(r.ExpectEnd());
  return req;
}

std::string EncodeMutationRequest(const MutationRequest& req) {
  WireWriter w;
  w.U8(std::uint8_t(req.kind));
  w.Str(req.relation);
  w.U32(std::uint32_t(req.fixes.size()));
  for (const MutationRequest::Fix& f : req.fixes) {
    w.Str(f.object_id);
    w.F64(f.t);
    w.F64(f.x);
    w.F64(f.y);
  }
  w.U64(req.seal_units);
  return w.Take();
}

Result<MutationRequest> DecodeMutationRequest(std::string_view payload) {
  WireReader r(payload);
  MutationRequest req;
  std::uint8_t kind;
  MODB_RETURN_IF_ERROR(r.U8(&kind));
  if (kind > kMaxMutationKind) {
    return Status::InvalidArgument("unknown mutation kind " +
                                   std::to_string(kind));
  }
  req.kind = MutationRequest::Kind(kind);
  MODB_RETURN_IF_ERROR(r.Str(&req.relation));
  std::uint32_t num_fixes;
  MODB_RETURN_IF_ERROR(r.U32(&num_fixes));
  for (std::uint32_t i = 0; i < num_fixes; ++i) {
    MutationRequest::Fix f;
    MODB_RETURN_IF_ERROR(r.Str(&f.object_id));
    MODB_RETURN_IF_ERROR(r.F64(&f.t));
    MODB_RETURN_IF_ERROR(r.F64(&f.x));
    MODB_RETURN_IF_ERROR(r.F64(&f.y));
    req.fixes.push_back(std::move(f));
  }
  MODB_RETURN_IF_ERROR(r.U64(&req.seal_units));
  MODB_RETURN_IF_ERROR(r.ExpectEnd());
  return req;
}

std::string EncodeMutationAck(const MutationResult& ack) {
  WireWriter w;
  w.U8(kAckBlockKind);
  w.U64(ack.accepted);
  w.U64(ack.objects);
  w.U64(ack.mem_units);
  w.U64(ack.delta_entries);
  w.U64(ack.base_entries);
  w.U64(ack.merges);
  w.U64(ack.epoch);
  return w.Take();
}

Result<MutationResult> DecodeMutationAck(std::string_view block) {
  WireReader r(block);
  MutationResult ack;
  std::uint8_t kind;
  MODB_RETURN_IF_ERROR(r.U8(&kind));
  if (kind != kAckBlockKind) {
    return Status::InvalidArgument("not a mutation ack block (kind " +
                                   std::to_string(kind) + ")");
  }
  MODB_RETURN_IF_ERROR(r.U64(&ack.accepted));
  MODB_RETURN_IF_ERROR(r.U64(&ack.objects));
  MODB_RETURN_IF_ERROR(r.U64(&ack.mem_units));
  MODB_RETURN_IF_ERROR(r.U64(&ack.delta_entries));
  MODB_RETURN_IF_ERROR(r.U64(&ack.base_entries));
  MODB_RETURN_IF_ERROR(r.U64(&ack.merges));
  MODB_RETURN_IF_ERROR(r.U64(&ack.epoch));
  MODB_RETURN_IF_ERROR(r.ExpectEnd());
  return ack;
}

Result<std::string> EncodeResultBlock(const QueryResult& result) {
  WireWriter w;
  w.U8(std::uint8_t(result.payload));
  switch (result.payload) {
    case QueryResult::Payload::kRows: {
      const Relation& rel = result.rows;
      w.Str(rel.name());
      w.U32(std::uint32_t(rel.schema().NumAttributes()));
      for (const AttributeDef& attr : rel.schema().attributes()) {
        w.Str(attr.name);
        w.U8(std::uint8_t(attr.type));
      }
      w.U32(std::uint32_t(rel.NumTuples()));
      for (const Tuple& t : rel.tuples()) {
        for (const AttributeValue& v : t) {
          Result<std::string> blob = SerializeAttribute(v);
          MODB_RETURN_IF_ERROR(blob.status());
          w.Str(*blob);
        }
      }
      break;
    }
    case QueryResult::Payload::kXY: {
      w.U64(result.batch_tuples);
      w.U64(result.batch_instants);
      for (double x : result.xs) w.F64(x);
      for (double y : result.ys) w.F64(y);
      for (std::uint8_t d : result.defined) w.U8(d);
      break;
    }
    case QueryResult::Payload::kPresent: {
      w.U64(result.batch_tuples);
      w.U64(result.batch_instants);
      for (std::uint8_t p : result.present) w.U8(p);
      break;
    }
  }
  return w.Take();
}

Result<QueryResult> DecodeResultBlock(std::string_view block) {
  WireReader r(block);
  QueryResult result;
  std::uint8_t payload;
  MODB_RETURN_IF_ERROR(r.U8(&payload));
  if (payload > kMaxPayloadKind) {
    return Status::InvalidArgument("unknown result payload kind " +
                                   std::to_string(payload));
  }
  result.payload = QueryResult::Payload(payload);
  switch (result.payload) {
    case QueryResult::Payload::kRows: {
      std::string name;
      MODB_RETURN_IF_ERROR(r.Str(&name));
      std::uint32_t num_attrs;
      MODB_RETURN_IF_ERROR(r.U32(&num_attrs));
      std::vector<AttributeDef> attrs;
      for (std::uint32_t i = 0; i < num_attrs; ++i) {
        AttributeDef attr;
        MODB_RETURN_IF_ERROR(r.Str(&attr.name));
        std::uint8_t type;
        MODB_RETURN_IF_ERROR(r.U8(&type));
        if (type > kMaxAttributeType) {
          return Status::InvalidArgument("unknown attribute type " +
                                         std::to_string(type));
        }
        attr.type = AttributeType(type);
        attrs.push_back(std::move(attr));
      }
      Relation rel(std::move(name), Schema(std::move(attrs)));
      std::uint32_t num_tuples;
      MODB_RETURN_IF_ERROR(r.U32(&num_tuples));
      std::string blob;
      for (std::uint32_t i = 0; i < num_tuples; ++i) {
        Tuple t;
        for (std::size_t a = 0; a < rel.schema().NumAttributes(); ++a) {
          MODB_RETURN_IF_ERROR(r.Str(&blob));
          Result<AttributeValue> v = DeserializeAttribute(blob);
          MODB_RETURN_IF_ERROR(v.status());
          t.push_back(*std::move(v));
        }
        // Insert re-checks arity and types against the decoded schema.
        MODB_RETURN_IF_ERROR(rel.Insert(std::move(t)));
      }
      result.rows = std::move(rel);
      break;
    }
    case QueryResult::Payload::kXY: {
      MODB_RETURN_IF_ERROR(r.U64(&result.batch_tuples));
      MODB_RETURN_IF_ERROR(r.U64(&result.batch_instants));
      if (result.batch_instants != 0 &&
          result.batch_tuples > kMaxFramePayload / result.batch_instants) {
        return Status::InvalidArgument("xy payload geometry overflows");
      }
      const std::uint64_t cells = result.batch_tuples * result.batch_instants;
      double v;
      for (std::uint64_t i = 0; i < cells; ++i) {
        MODB_RETURN_IF_ERROR(r.F64(&v));
        result.xs.push_back(v);
      }
      for (std::uint64_t i = 0; i < cells; ++i) {
        MODB_RETURN_IF_ERROR(r.F64(&v));
        result.ys.push_back(v);
      }
      std::uint8_t d;
      for (std::uint64_t i = 0; i < cells; ++i) {
        MODB_RETURN_IF_ERROR(r.U8(&d));
        if (d > 1) {
          return Status::InvalidArgument("defined byte must be 0 or 1");
        }
        result.defined.push_back(d);
      }
      break;
    }
    case QueryResult::Payload::kPresent: {
      MODB_RETURN_IF_ERROR(r.U64(&result.batch_tuples));
      MODB_RETURN_IF_ERROR(r.U64(&result.batch_instants));
      if (result.batch_instants != 0 &&
          result.batch_tuples > kMaxFramePayload / result.batch_instants) {
        return Status::InvalidArgument("present payload geometry overflows");
      }
      const std::uint64_t cells = result.batch_tuples * result.batch_instants;
      std::uint8_t p;
      for (std::uint64_t i = 0; i < cells; ++i) {
        MODB_RETURN_IF_ERROR(r.U8(&p));
        if (p > 1) {
          return Status::InvalidArgument("present byte must be 0 or 1");
        }
        result.present.push_back(p);
      }
      break;
    }
  }
  MODB_RETURN_IF_ERROR(r.ExpectEnd());
  return result;
}

namespace {

// Shared reply layout: u32 code, string message, string block, string
// stats JSON. Errors always carry empty block and stats.
std::string EncodeReplyFrom(const Status& status, std::string_view block,
                            std::string_view stats_json) {
  WireWriter w;
  w.U32(std::uint32_t(status.code()));
  w.Str(status.message());
  if (status.ok()) {
    w.Str(block);
    w.Str(stats_json);
  } else {
    w.Str("");
    w.Str("");
  }
  return w.Take();
}

}  // namespace

Result<std::string> EncodeReply(const Status& status,
                                const QueryResult* result) {
  if (status.ok() && result != nullptr) {
    Result<std::string> block = EncodeResultBlock(*result);
    MODB_RETURN_IF_ERROR(block.status());
    return EncodeReplyFrom(status, *block, result->stats.ToJson());
  }
  return EncodeReplyFrom(status, "", "");
}

Result<std::string> EncodeMutationReply(const Status& status,
                                        const MutationResult* ack) {
  if (status.ok() && ack != nullptr) {
    return EncodeReplyFrom(status, EncodeMutationAck(*ack), "");
  }
  return EncodeReplyFrom(status, "", "");
}

Result<WireReply> DecodeReply(std::string_view payload) {
  WireReader r(payload);
  WireReply reply;
  std::uint32_t code;
  MODB_RETURN_IF_ERROR(r.U32(&code));
  if (code > kMaxStatusCode) {
    return Status::InvalidArgument("unknown status code " +
                                   std::to_string(code));
  }
  std::string message;
  MODB_RETURN_IF_ERROR(r.Str(&message));
  reply.status = Status(StatusCode(code), std::move(message));
  MODB_RETURN_IF_ERROR(r.Str(&reply.result_block));
  MODB_RETURN_IF_ERROR(r.Str(&reply.stats_json));
  MODB_RETURN_IF_ERROR(r.ExpectEnd());
  if (reply.status.ok() && reply.result_block.empty()) {
    return Status::InvalidArgument("OK reply carries no result block");
  }
  if (!reply.status.ok() &&
      !(reply.result_block.empty() && reply.stats_json.empty())) {
    return Status::InvalidArgument("error reply carries a result block");
  }
  return reply;
}

}  // namespace serve
}  // namespace modb
