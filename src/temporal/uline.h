// The uline unit type (Section 3.2.6): a set of non-rotating moving
// segments whose evaluation is a valid line value at every instant of the
// open unit interval. At the closed endpoints, segments may degenerate to
// points or overlap; the ι_s/ι_e cleanup (drop degenerates, merge-segs)
// repairs the value there.

#ifndef MODB_TEMPORAL_ULINE_H_
#define MODB_TEMPORAL_ULINE_H_

#include <string>
#include <vector>

#include "core/interval.h"
#include "core/status.h"
#include "spatial/bbox.h"
#include "spatial/line.h"
#include "temporal/mseg.h"

namespace modb {

class ULine {
 public:
  using ValueType = Line;

  /// Validating factory. Checks, exactly:
  ///   * no moving segment degenerates inside the open interval,
  ///   * no two moving segments are collinear-overlapping at any instant
  ///     of the open interval (candidate instants are the roots of the
  ///     pairwise collinearity quadratics, plus sampled probes for the
  ///     always-collinear case).
  static Result<ULine> Make(TimeInterval interval, std::vector<MSeg> msegs);

  /// Non-validating factory for the storage layer: reconstructs a unit
  /// whose invariants were established before serialization.
  static ULine MakeTrusted(TimeInterval interval, std::vector<MSeg> msegs) {
    return ULine(interval, std::move(msegs));
  }

  const TimeInterval& interval() const { return interval_; }
  const std::vector<MSeg>& msegs() const { return msegs_; }
  std::size_t Size() const { return msegs_.size(); }

  /// ι(M, t) with cleanup: inside the open interval this is the plain
  /// evaluation; at the interval endpoints degenerate members are dropped
  /// and overlapping segments merged (ι_s / ι_e of Section 3.2.6).
  Line ValueAt(Instant t) const;

  Cube BoundingCube() const;

  static bool FunctionEqual(const ULine& a, const ULine& b) {
    return a.msegs_ == b.msegs_;
  }

  Result<ULine> WithInterval(TimeInterval sub) const;

  std::string ToString() const;

 private:
  ULine(TimeInterval interval, std::vector<MSeg> msegs)
      : interval_(interval), msegs_(std::move(msegs)) {}

  TimeInterval interval_;
  std::vector<MSeg> msegs_;
};

/// Instants inside `within` at which moving segments a and b are
/// collinear AND share a positive-length overlap — the configuration
/// D_uline forbids. `always` reports permanently collinear overlapping
/// pairs.
struct OverlapEvents {
  std::vector<Instant> times;
  bool always = false;
};

OverlapEvents CollinearOverlapTimes(const MSeg& a, const MSeg& b,
                                    const TimeInterval& within);

}  // namespace modb

#endif  // MODB_TEMPORAL_ULINE_H_
