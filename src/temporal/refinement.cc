#include "temporal/refinement.h"

namespace modb {

// RefinementPartition is a header-only template; this TU exists to give
// the build a stable home for future non-template helpers and to compile
// the header standalone.

}  // namespace modb
