// The uregion unit type (Section 3.2.6): moving faces (outer moving
// cycle plus moving hole cycles) built from non-rotating moving segments,
// valid as a region value at every instant of the open unit interval.
//
//   MCycle = sets of ≥3 MSeg,  MFace = (MCycle, set of MCycle),
//   D_uregion = {(i, F) | ι(F, t) ∈ D'_region ∀ t ∈ σ'(i)}.
//
// At the closed interval endpoints, degeneracies are permitted (Figure
// 6); the ι_s/ι_e cleanup removes point-degenerate segments and cancels
// even-parity fragments of overlapping collinear segments.

#ifndef MODB_TEMPORAL_UREGION_H_
#define MODB_TEMPORAL_UREGION_H_

#include <string>
#include <vector>

#include "core/interval.h"
#include "core/status.h"
#include "spatial/bbox.h"
#include "spatial/region.h"
#include "temporal/mseg.h"

namespace modb {

/// A moving cycle: the moving version of a simple polygon.
using MCycle = std::vector<MSeg>;

/// A moving face: outer moving cycle plus moving holes.
struct MFace {
  MCycle outer;
  std::vector<MCycle> holes;

  friend bool operator==(const MFace& a, const MFace& b) {
    return a.outer == b.outer && a.holes == b.holes;
  }
};

/// The ι_s/ι_e endpoint cleanup of Section 3.2.6: for collections of
/// overlapping collinear segments, partitions the supporting line into
/// fragments and keeps exactly the fragments covered an odd number of
/// times. Non-overlapping segments pass through unchanged.
std::vector<Seg> OddParityFragments(std::vector<Seg> segs);

class URegion {
 public:
  using ValueType = Region;

  /// Validating factory. Structural checks are exact (cycle sizes,
  /// non-rotation via MSeg); temporal validity (ι(F, t) ∈ D'_region on
  /// the open interval) is verified by evaluating the region at
  /// endpoint-clamped probes, at all pairwise configuration-change events
  /// (endpoint/segment crossing roots), and between consecutive events.
  static Result<URegion> Make(TimeInterval interval, std::vector<MFace> faces);

  /// Non-validating factory for the storage layer: reconstructs a unit
  /// whose invariants were established before serialization.
  static URegion MakeTrusted(TimeInterval interval, std::vector<MFace> faces) {
    return URegion(interval, std::move(faces));
  }

  /// Convenience: one moving face without holes.
  static Result<URegion> FromCycle(TimeInterval interval, MCycle cycle) {
    return Make(interval, {MFace{std::move(cycle), {}}});
  }

  const TimeInterval& interval() const { return interval_; }
  const std::vector<MFace>& faces() const { return faces_; }
  std::size_t NumFaces() const { return faces_.size(); }
  std::size_t NumMSegs() const;

  /// All moving segments, flattened (the msegments subarray of
  /// Section 4.2).
  std::vector<MSeg> AllMSegs() const;

  /// ι(F, t) without structure: the raw evaluated segments, O(r). This is
  /// the paper's "output only" path of Section 5.1 (display on screen).
  std::vector<Seg> Snapshot(Instant t) const;

  /// The full region value at t: evaluates every moving segment and
  /// `close`s the result into a structured region (O(r log r) path of
  /// Section 5.1). At interval endpoints the ι_s/ι_e cleanup is applied
  /// first.
  Region ValueAt(Instant t) const;

  Cube BoundingCube() const;

  static bool FunctionEqual(const URegion& a, const URegion& b) {
    return a.faces_ == b.faces_;
  }

  Result<URegion> WithInterval(TimeInterval sub) const;

  std::string ToString() const;

 private:
  URegion(TimeInterval interval, std::vector<MFace> faces)
      : interval_(interval), faces_(std::move(faces)) {}

  TimeInterval interval_;
  std::vector<MFace> faces_;
};

}  // namespace modb

#endif  // MODB_TEMPORAL_UREGION_H_
