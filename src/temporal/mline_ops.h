// Operations specific to moving lines: the lifted length (exact, thanks
// to the non-rotation constraint) and the traversed projection into the
// plane.

#ifndef MODB_TEMPORAL_MLINE_OPS_H_
#define MODB_TEMPORAL_MLINE_OPS_H_

#include "core/status.h"
#include "spatial/region.h"
#include "temporal/moving.h"

namespace modb {

/// Lifted `length`: the total length of the moving line over time. Under
/// the non-rotation constraint each moving segment's length |w + t·dv| is
/// linear in t within a unit (dv ∥ w and no degeneration on the open
/// interval), so the sum is linear and exactly representable as a plain
/// ureal. Recovered by two-point interpolation per unit.
Result<MovingReal> Length(const MovingLine& ml);

/// traversed: the 2-dimensional part of the plane swept by the moving
/// line — the union of each moving segment's swept trapezium. Segments
/// that translate along their own direction sweep no area; a fully
/// stationary moving line yields the empty region.
Result<Region> Traversed(const MovingLine& ml);

}  // namespace modb

#endif  // MODB_TEMPORAL_MLINE_OPS_H_
