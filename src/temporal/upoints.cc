#include "temporal/upoints.h"

#include <algorithm>
#include <sstream>

#include "core/real.h"

namespace modb {

CoincidenceResult Coincidence(const LinearMotion& a, const LinearMotion& b) {
  CoincidenceResult out;
  double dx0 = a.x0 - b.x0, dx1 = a.x1 - b.x1;
  double dy0 = a.y0 - b.y0, dy1 = a.y1 - b.y1;
  // Coincide at t iff dx0 + dx1·t == 0 and dy0 + dy1·t == 0.
  if (dx1 == 0 && dy1 == 0) {
    out.always = (dx0 == 0 && dy0 == 0);
    return out;
  }
  Instant t;
  if (std::fabs(dx1) >= std::fabs(dy1)) {
    if (dx1 == 0) {
      if (dx0 != 0) return out;
      t = -dy0 / dy1;
    } else {
      t = -dx0 / dx1;
    }
  } else {
    t = -dy0 / dy1;
  }
  if (ApproxEq(dx0 + dx1 * t, 0, kEpsilon * (1 + std::fabs(dx0))) &&
      ApproxEq(dy0 + dy1 * t, 0, kEpsilon * (1 + std::fabs(dy0)))) {
    out.instants.push_back(t);
  }
  return out;
}

Result<UPoints> UPoints::Make(TimeInterval interval,
                              std::vector<LinearMotion> motions) {
  if (motions.empty()) {
    return Status::InvalidArgument("upoints unit needs at least one motion");
  }
  std::sort(motions.begin(), motions.end());
  for (std::size_t i = 0; i < motions.size(); ++i) {
    for (std::size_t j = i + 1; j < motions.size(); ++j) {
      CoincidenceResult co = Coincidence(motions[i], motions[j]);
      if (co.always) {
        return Status::InvalidArgument(
            "upoints unit contains identical motions");
      }
      for (Instant t : co.instants) {
        if (interval.ContainsOpen(t) ||
            (interval.IsDegenerate() && t == interval.start())) {
          return Status::InvalidArgument(
              "upoints motions coincide inside the unit interval");
        }
      }
    }
  }
  return UPoints(interval, std::move(motions));
}

Points UPoints::ValueAt(Instant t) const {
  std::vector<Point> pts;
  pts.reserve(motions_.size());
  for (const LinearMotion& m : motions_) pts.push_back(m.At(t));
  return Points::FromVector(std::move(pts));
}

Cube UPoints::BoundingCube() const {
  Rect r;
  for (const LinearMotion& m : motions_) {
    r.Extend(m.At(interval_.start()));
    r.Extend(m.At(interval_.end()));
  }
  return Cube(r, interval_.start(), interval_.end());
}

std::string UPoints::ToString() const {
  std::ostringstream os;
  os << "upoints" << interval_.ToString() << " " << motions_.size()
     << " motions";
  return os.str();
}

}  // namespace modb
