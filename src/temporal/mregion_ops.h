// Operations specific to moving regions: the lifted size (area) and
// perimeter of Section 3.2.5's closure discussion, and the traversed
// projection into the plane.

#ifndef MODB_TEMPORAL_MREGION_OPS_H_
#define MODB_TEMPORAL_MREGION_OPS_H_

#include "core/status.h"
#include "spatial/region.h"
#include "temporal/moving.h"

namespace modb {

/// Lifted `size`: the area of the moving region over time. With
/// non-rotating linearly moving segments the area is *exactly* a
/// quadratic polynomial per unit, so the result is representable in
/// mapping(ureal) without error (the closure property claimed in Section
/// 3.2.5). Coefficients are recovered by interpolating three interior
/// samples.
Result<MovingReal> Area(const MovingRegion& mr);

/// Lifted `perimeter`. A pleasant consequence of the non-rotation
/// constraint: a moving segment's direction is constant, so its length
/// |w + t·dv| is *linear* in t within a unit (dv is parallel to w), and
/// the unit perimeter — a sum of such lengths — is linear too. The
/// quadratic fit therefore recovers it exactly (up to roundoff); the
/// `subdivisions` parameter is kept as a safety net for inputs whose
/// coefficients only approximately satisfy the coplanarity tolerance.
Result<MovingReal> PerimeterApprox(const MovingRegion& mr,
                                   int subdivisions = 8);

/// traversed: the part of the plane ever covered by the moving region —
/// the union of the initial snapshot, the final snapshot, and the swept
/// trapezium of every moving segment, per unit.
Result<Region> Traversed(const MovingRegion& mr);

}  // namespace modb

#endif  // MODB_TEMPORAL_MREGION_OPS_H_
