// The upoint unit type (Section 3.2.6): a linearly moving point.
//   MPoint = {(x0, x1, y0, y1)}, ι((x0,x1,y0,y1), t) = (x0 + x1·t, y0 + y1·t)
//   D_upoint = Interval(Instant) × MPoint.

#ifndef MODB_TEMPORAL_UPOINT_H_
#define MODB_TEMPORAL_UPOINT_H_

#include <optional>
#include <string>

#include "core/interval.h"
#include "core/status.h"
#include "spatial/bbox.h"
#include "spatial/point.h"
#include "spatial/seg.h"

namespace modb {

/// The paper's MPoint carrier: coefficients of a 3D line describing the
/// unbounded temporal evolution of a 2D point.
struct LinearMotion {
  double x0 = 0;
  double x1 = 0;
  double y0 = 0;
  double y1 = 0;

  /// ι((x0,x1,y0,y1), t).
  Point At(Instant t) const { return Point(x0 + x1 * t, y0 + y1 * t); }

  bool IsStatic() const { return x1 == 0 && y1 == 0; }

  friend bool operator==(const LinearMotion& a, const LinearMotion& b) {
    return a.x0 == b.x0 && a.x1 == b.x1 && a.y0 == b.y0 && a.y1 == b.y1;
  }
  /// Lexicographic order on the quadruple (the storage order of
  /// Section 4.2).
  friend bool operator<(const LinearMotion& a, const LinearMotion& b) {
    if (a.x0 != b.x0) return a.x0 < b.x0;
    if (a.x1 != b.x1) return a.x1 < b.x1;
    if (a.y0 != b.y0) return a.y0 < b.y0;
    return a.y1 < b.y1;
  }
};

/// A upoint unit: a time interval plus a LinearMotion.
class UPoint {
 public:
  using ValueType = Point;

  /// Direct factory from motion coefficients.
  static Result<UPoint> Make(TimeInterval interval, LinearMotion motion) {
    return UPoint(interval, motion);
  }

  /// Factory from the observed positions at the interval's endpoints —
  /// the natural constructor when slicing a sampled trajectory.
  /// A degenerate (single-instant) interval requires p_start == p_end.
  static Result<UPoint> FromEndpoints(TimeInterval interval,
                                      const Point& p_start,
                                      const Point& p_end);

  /// A stationary unit.
  static Result<UPoint> Static(TimeInterval interval, const Point& p) {
    return Make(interval, LinearMotion{p.x, 0, p.y, 0});
  }

  const TimeInterval& interval() const { return interval_; }
  const LinearMotion& motion() const { return motion_; }

  Point ValueAt(Instant t) const { return motion_.At(t); }
  Point StartPoint() const { return motion_.At(interval_.start()); }
  Point EndPoint() const { return motion_.At(interval_.end()); }

  /// Projection into the plane: a segment, or nullopt when the unit is
  /// stationary (projection is a single point — the `trajectory`
  /// operation keeps only line parts, Section 2).
  std::optional<Seg> TrajectorySegment() const;

  /// Constant speed of the unit (|velocity|).
  double Speed() const;

  /// The instant within the unit interval at which the moving point is at
  /// p, if any. A stationary unit at p reports the interval start.
  std::optional<Instant> InstantAt(const Point& p) const;

  /// 3D bounding cube (Section 4.2 stores one per variable-size unit; for
  /// upoint it is derivable but useful for indexing).
  Cube BoundingCube() const;

  static bool FunctionEqual(const UPoint& a, const UPoint& b) {
    return a.motion_ == b.motion_;
  }

  Result<UPoint> WithInterval(TimeInterval sub) const {
    return Make(sub, motion_);
  }

  std::string ToString() const;

 private:
  UPoint(TimeInterval interval, LinearMotion motion)
      : interval_(interval), motion_(motion) {}

  TimeInterval interval_;
  LinearMotion motion_;
};

}  // namespace modb

#endif  // MODB_TEMPORAL_UPOINT_H_
