#include "temporal/uline.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "core/real.h"
#include "temporal/ureal.h"

namespace modb {

namespace {

// Quadratic coefficients of cross(e_a(t) - s_a(t), q(t) - s_a(t)) for a
// linear motion q.
struct Quad {
  double c2, c1, c0;
  double Eval(double t) const { return (c2 * t + c1) * t + c0; }
  bool NearZeroAll(double tol) const {
    return std::fabs(c2) <= tol && std::fabs(c1) <= tol &&
           std::fabs(c0) <= tol;
  }
};

Quad CrossQuad(const MSeg& a, const LinearMotion& q) {
  double ax0 = a.e().x0 - a.s().x0, ax1 = a.e().x1 - a.s().x1;
  double ay0 = a.e().y0 - a.s().y0, ay1 = a.e().y1 - a.s().y1;
  double bx0 = q.x0 - a.s().x0, bx1 = q.x1 - a.s().x1;
  double by0 = q.y0 - a.s().y0, by1 = q.y1 - a.s().y1;
  return Quad{ax1 * by1 - ay1 * bx1,
              ax0 * by1 + ax1 * by0 - ay0 * bx1 - ay1 * bx0,
              ax0 * by0 - ay0 * bx0};
}

bool OverlapAt(const MSeg& a, const MSeg& b, Instant t) {
  auto sa = a.ValueAt(t);
  auto sb = b.ValueAt(t);
  if (!sa || !sb) return false;
  return Overlap(*sa, *sb);
}

}  // namespace

OverlapEvents CollinearOverlapTimes(const MSeg& a, const MSeg& b,
                                    const TimeInterval& within) {
  OverlapEvents out;
  Quad q1 = CrossQuad(a, b.s());
  Quad q2 = CrossQuad(a, b.e());
  double tol = kEpsilon * 1e3;  // Coefficient-level tolerance.
  if (q1.NearZeroAll(tol) && q2.NearZeroAll(tol)) {
    // Permanently collinear: probe for overlap across the interval.
    for (int i = 1; i <= 9; ++i) {
      Instant t = within.start() + Duration(within) * i / 10.0;
      if (Duration(within) == 0) t = within.start();
      if (OverlapAt(a, b, t)) {
        out.always = true;
        return out;
      }
    }
    return out;
  }
  std::vector<double> candidates = QuadraticRoots(q1.c2, q1.c1, q1.c0);
  if (q1.NearZeroAll(tol)) {
    candidates = QuadraticRoots(q2.c2, q2.c1, q2.c0);
  }
  for (double t : candidates) {
    if (!within.Contains(t)) continue;
    // Both endpoints of b must be on a's supporting line at t.
    double scale = 1 + std::fabs(q2.c0) + std::fabs(q2.c1) + std::fabs(q2.c2);
    if (std::fabs(q2.Eval(t)) > kEpsilon * scale * 1e3) continue;
    if (OverlapAt(a, b, t)) out.times.push_back(t);
  }
  std::sort(out.times.begin(), out.times.end());
  out.times.erase(std::unique(out.times.begin(), out.times.end()),
                  out.times.end());
  return out;
}

Result<ULine> ULine::Make(TimeInterval interval, std::vector<MSeg> msegs) {
  if (msegs.empty()) {
    return Status::InvalidArgument("uline unit needs at least one mseg");
  }
  std::sort(msegs.begin(), msegs.end());
  // No segment may degenerate inside the open interval.
  for (const MSeg& m : msegs) {
    for (Instant t : m.DegenerationTimes()) {
      if (interval.ContainsOpen(t)) {
        return Status::InvalidArgument(
            "moving segment degenerates inside the unit interval: " +
            m.ToString());
      }
      if (interval.IsDegenerate() && t == interval.start()) {
        return Status::InvalidArgument(
            "moving segment degenerate at instant unit");
      }
    }
  }
  // No collinear overlap at any instant of the open interval.
  for (std::size_t i = 0; i < msegs.size(); ++i) {
    for (std::size_t j = i + 1; j < msegs.size(); ++j) {
      OverlapEvents ev = CollinearOverlapTimes(msegs[i], msegs[j], interval);
      if (ev.always) {
        return Status::InvalidArgument(
            "moving segments overlap throughout the unit");
      }
      for (Instant t : ev.times) {
        bool open_hit = interval.ContainsOpen(t);
        bool instant_hit = interval.IsDegenerate() && t == interval.start();
        if (open_hit || instant_hit) {
          return Status::InvalidArgument(
              "moving segments overlap inside the unit interval");
        }
      }
    }
  }
  return ULine(interval, std::move(msegs));
}

Line ULine::ValueAt(Instant t) const {
  std::vector<Seg> segs;
  segs.reserve(msegs_.size());
  for (const MSeg& m : msegs_) {
    if (auto s = m.ValueAt(t)) segs.push_back(*s);
  }
  // Line::Canonical implements exactly the ι_s/ι_e cleanup: degenerate
  // members were dropped above, merge-segs fuses overlapping segments.
  return Line::Canonical(std::move(segs));
}

Cube ULine::BoundingCube() const {
  Rect r;
  for (const MSeg& m : msegs_) {
    r.Extend(m.s().At(interval_.start()));
    r.Extend(m.s().At(interval_.end()));
    r.Extend(m.e().At(interval_.start()));
    r.Extend(m.e().At(interval_.end()));
  }
  return Cube(r, interval_.start(), interval_.end());
}

Result<ULine> ULine::WithInterval(TimeInterval sub) const {
  // A sub-interval of a valid unit is valid (its open part is a subset of
  // the original open part), so construct directly.
  return ULine(sub, msegs_);
}

std::string ULine::ToString() const {
  std::ostringstream os;
  os << "uline" << interval_.ToString() << " " << msegs_.size() << " msegs";
  return os.str();
}

}  // namespace modb
