// The mapping(α) type constructor (Section 3.2.4) — the sliced
// representation. A mapping is a finite set of temporal units with
//   (i)  equal intervals ⇒ equal unit functions,
//   (ii) distinct intervals ⇒ disjoint, and adjacent ⇒ distinct unit
//        functions,
// stored as an array of unit records ordered by time interval (Section
// 4.3, Figure 7). Units are located by binary search (the O(log n) step
// of the atinstant algorithm, Section 5.1).
//
// A unit type U must provide:
//   using ValueType = ...;
//   const TimeInterval& interval() const;
//   ValueType ValueAt(Instant) const;
//   static bool FunctionEqual(const U&, const U&);
//   Result<U> WithInterval(TimeInterval) const;

#ifndef MODB_TEMPORAL_MAPPING_H_
#define MODB_TEMPORAL_MAPPING_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/interval.h"
#include "core/intime.h"
#include "core/range_set.h"
#include "core/status.h"
#include "spatial/bbox.h"

namespace modb {

/// Optional SoA side-structure for a Mapping (built on demand by
/// Mapping::BuildSearchIndex): the unit intervals unpacked into
/// contiguous start/end arrays so the FindUnit binary search probes
/// packed doubles instead of striding over full unit records, plus a
/// cached deftime bounding interval and (for spatial unit types) the
/// union of the unit bounding cubes.
struct MappingSearchIndex {
  static constexpr std::uint8_t kLeftClosed = 1;
  static constexpr std::uint8_t kRightClosed = 2;

  std::vector<Instant> start;
  std::vector<Instant> end;
  std::vector<std::uint8_t> closed;  // kLeftClosed | kRightClosed bits.

  /// Branchless search keys folding the closedness flags into the
  /// comparison value:
  ///   end_key[i]   <  t  ⟺  unit i lies entirely before t
  ///   start_key[i] <= t  ⟺  unit i starts at or before t
  /// (an open bound is nudged one ulp inward), so search probes are a
  /// single double compare on one packed array. Both arrays carry one
  /// trailing +inf sentinel slot (index = unit count) so merge sweeps
  /// can advance and test containment without bounds checks: the
  /// sentinel is never "before" any t and never "starts by" any t.
  std::vector<Instant> start_key;
  std::vector<Instant> end_key;

  /// Bounding interval of the deftime: [min start, max end]. Only
  /// meaningful when `start` is non-empty.
  Instant min_start = 0;
  Instant max_end = 0;

  /// Union of the unit bounding cubes for unit types exposing
  /// BoundingCube(); left empty (IsEmpty()) otherwise.
  Cube bbox;

  /// Packed linear-motion coefficients (x = x0 + x1·t, y = y0 + y1·t)
  /// for unit types exposing motion() with those fields (upoint); empty
  /// for other unit types. The batch kernels evaluate positions off
  /// these four contiguous arrays — including via the AVX2 gather path —
  /// instead of striding over the full unit records.
  std::vector<double> motion_x0, motion_x1, motion_y0, motion_y1;

  /// True when the packed motion arrays are populated (one slot per
  /// unit).
  bool has_motion() const { return !motion_x0.empty(); }

  bool left_closed(std::size_t i) const {
    return (closed[i] & kLeftClosed) != 0;
  }
  bool right_closed(std::size_t i) const {
    return (closed[i] & kRightClosed) != 0;
  }

  /// Membership of t in unit i's interval, on the packed arrays.
  bool Contains(std::size_t i, Instant t) const {
    if (t < start[i] || end[i] < t) return false;
    if (t == start[i] && !left_closed(i)) return false;
    if (t == end[i] && !right_closed(i)) return false;
    return true;
  }
};

template <typename U>
class Mapping {
 public:
  using UnitType = U;
  using ValueType = typename U::ValueType;

  /// The empty mapping (a moving value that is nowhere defined).
  Mapping() = default;

  /// Validating factory: enforces the Mapping(S) constraints.
  static Result<Mapping> Make(std::vector<U> units) {
    std::sort(units.begin(), units.end(), [](const U& a, const U& b) {
      return a.interval() < b.interval();
    });
    for (std::size_t i = 0; i + 1 < units.size(); ++i) {
      const TimeInterval& u = units[i].interval();
      const TimeInterval& v = units[i + 1].interval();
      if (!TimeInterval::Disjoint(u, v)) {
        return Status::InvalidArgument(
            "mapping units overlap in time: " + u.ToString() + " and " +
            v.ToString());
      }
      if (TimeInterval::Adjacent(u, v) &&
          U::FunctionEqual(units[i], units[i + 1])) {
        return Status::InvalidArgument(
            "adjacent mapping units with equal unit function (not minimal): " +
            u.ToString() + " and " + v.ToString());
      }
    }
    return Mapping(std::move(units));
  }

  /// Non-validating factory for the storage layer: `units` must already
  /// be sorted and satisfy the Mapping(S) constraints.
  static Mapping MakeTrusted(std::vector<U> units) {
    return Mapping(std::move(units));
  }

  bool IsEmpty() const { return units_.empty(); }
  std::size_t NumUnits() const { return units_.size(); }
  const std::vector<U>& units() const { return units_; }
  const U& unit(std::size_t i) const { return units_[i]; }

  /// Builds the SoA search index (idempotent). Copies of the mapping
  /// share the index; it stays valid because a Mapping's unit list never
  /// changes after construction.
  void BuildSearchIndex() {
    if (index_) return;
    auto ix = std::make_shared<MappingSearchIndex>();
    ix->start.reserve(units_.size());
    ix->end.reserve(units_.size());
    ix->closed.reserve(units_.size());
    ix->start_key.reserve(units_.size() + 1);
    ix->end_key.reserve(units_.size() + 1);
    constexpr Instant kInf = std::numeric_limits<Instant>::infinity();
    for (const U& u : units_) {
      const TimeInterval& iv = u.interval();
      ix->start.push_back(iv.start());
      ix->end.push_back(iv.end());
      ix->closed.push_back(
          std::uint8_t((iv.left_closed() ? MappingSearchIndex::kLeftClosed : 0) |
                       (iv.right_closed() ? MappingSearchIndex::kRightClosed
                                          : 0)));
      ix->start_key.push_back(iv.left_closed()
                                  ? iv.start()
                                  : std::nextafter(iv.start(), kInf));
      ix->end_key.push_back(iv.right_closed()
                                ? iv.end()
                                : std::nextafter(iv.end(), -kInf));
      if constexpr (requires(const U& un) {
                      { un.BoundingCube() } -> std::convertible_to<Cube>;
                    }) {
        ix->bbox.Extend(u.BoundingCube());
      }
      if constexpr (requires(const U& un) {
                      { un.motion().x0 } -> std::convertible_to<double>;
                      { un.motion().x1 } -> std::convertible_to<double>;
                      { un.motion().y0 } -> std::convertible_to<double>;
                      { un.motion().y1 } -> std::convertible_to<double>;
                    }) {
        ix->motion_x0.push_back(u.motion().x0);
        ix->motion_x1.push_back(u.motion().x1);
        ix->motion_y0.push_back(u.motion().y0);
        ix->motion_y1.push_back(u.motion().y1);
      }
    }
    if (!units_.empty()) {
      ix->min_start = ix->start.front();
      ix->max_end = ix->end.back();
    }
    // Sentinel slots (see the field comment): unguarded sweeps stop
    // here instead of bounds-checking every advance.
    ix->start_key.push_back(kInf);
    ix->end_key.push_back(kInf);
    index_ = std::move(ix);
  }

  bool HasSearchIndex() const { return index_ != nullptr; }

  /// The SoA index, or nullptr when BuildSearchIndex was never called.
  const MappingSearchIndex* search_index() const { return index_.get(); }

  /// Binary search for the unit whose interval contains t (the first step
  /// of the atinstant algorithm of Section 5.1). O(log n). Probes the
  /// packed SoA arrays when the search index has been built.
  std::optional<std::size_t> FindUnit(Instant t) const {
    if (const MappingSearchIndex* ix = index_.get()) {
      if (ix->start.empty() || t < ix->min_start || ix->max_end < t) {
        return std::nullopt;
      }
      // First unit not entirely before t; it contains t iff it starts at
      // or before t (single-compare probes on the packed key arrays).
      auto it =
          std::lower_bound(ix->end_key.begin(), ix->end_key.end(), t);
      if (it == ix->end_key.end()) return std::nullopt;
      std::size_t idx = std::size_t(std::distance(ix->end_key.begin(), it));
      if (ix->start_key[idx] <= t) return idx;
      return std::nullopt;
    }
    auto it = std::upper_bound(
        units_.begin(), units_.end(), t, [](Instant v, const U& u) {
          return v < u.interval().start();
        });
    if (it == units_.begin()) return std::nullopt;
    std::size_t idx = std::size_t(std::distance(units_.begin(), it)) - 1;
    if (units_[idx].interval().Contains(t)) return idx;
    // t may coincide with the left-open start of units_[idx] while the
    // previous unit ends (closed) exactly there.
    if (idx > 0 && units_[idx - 1].interval().Contains(t)) return idx - 1;
    return std::nullopt;
  }

  /// Linear-scan variant (the baseline against which bench_atinstant
  /// demonstrates the O(log n) claim).
  std::optional<std::size_t> FindUnitLinear(Instant t) const {
    for (std::size_t i = 0; i < units_.size(); ++i) {
      if (units_[i].interval().Contains(t)) return i;
      if (units_[i].interval().start() > t) break;
    }
    return std::nullopt;
  }

  /// atinstant: the value at time t, or an undefined Intime.
  Intime<ValueType> AtInstant(Instant t) const {
    std::optional<std::size_t> idx = FindUnit(t);
    if (!idx) return Intime<ValueType>::Undefined();
    return Intime<ValueType>(t, units_[*idx].ValueAt(t));
  }

  /// present: is the moving value defined at t?
  bool Present(Instant t) const { return FindUnit(t).has_value(); }

  /// present lifted to periods: defined at some instant of the periods?
  /// Two-pointer merge over the two sorted interval sequences, O(n + m)
  /// (Section 5.2).
  bool Present(const Periods& periods) const {
    const std::vector<TimeInterval>& ivs = periods.intervals();
    std::size_t i = 0, j = 0;
    while (i < units_.size() && j < ivs.size()) {
      const TimeInterval& u = units_[i].interval();
      const TimeInterval& v = ivs[j];
      if (TimeInterval::RDisjoint(u, v)) {
        ++i;
      } else if (TimeInterval::RDisjoint(v, u)) {
        ++j;
      } else {
        return true;
      }
    }
    return false;
  }

  /// deftime: the projection onto the time domain.
  Periods DefTime() const {
    std::vector<TimeInterval> ivs;
    ivs.reserve(units_.size());
    for (const U& u : units_) ivs.push_back(u.interval());
    return Periods::FromIntervals(std::move(ivs));
  }

  /// atperiods: restriction of the moving value to the given periods.
  /// Two-pointer merge over the sorted unit and period sequences,
  /// O(n + m + output) (Section 5.2).
  Result<Mapping> AtPeriods(const Periods& periods) const {
    const std::vector<TimeInterval>& ivs = periods.intervals();
    std::vector<U> out;
    std::size_t i = 0, j = 0;
    while (i < units_.size() && j < ivs.size()) {
      const TimeInterval& u = units_[i].interval();
      const TimeInterval& v = ivs[j];
      if (TimeInterval::RDisjoint(u, v)) {
        ++i;
        continue;
      }
      if (TimeInterval::RDisjoint(v, u)) {
        ++j;
        continue;
      }
      if (auto inter = TimeInterval::Intersect(u, v)) {
        Result<U> piece = units_[i].WithInterval(*inter);
        if (!piece.ok()) return piece.status();
        out.push_back(std::move(*piece));
      }
      // Advance the side whose interval ends first; the other may still
      // overlap what follows.
      if (u.end() < v.end() ||
          (u.end() == v.end() && !u.right_closed())) {
        ++i;
      } else {
        ++j;
      }
    }
    return Make(std::move(out));
  }

  /// initial: the (instant, value) pair at the earliest defined instant.
  Intime<ValueType> Initial() const {
    if (units_.empty()) return Intime<ValueType>::Undefined();
    const U& u = units_.front();
    return Intime<ValueType>(u.interval().start(),
                             u.ValueAt(u.interval().start()));
  }

  /// final: the (instant, value) pair at the latest defined instant.
  Intime<ValueType> Final() const {
    if (units_.empty()) return Intime<ValueType>::Undefined();
    const U& u = units_.back();
    return Intime<ValueType>(u.interval().end(), u.ValueAt(u.interval().end()));
  }

  /// Total time span covered.
  double TotalDuration() const {
    double d = 0;
    for (const U& u : units_) d += Duration(u.interval());
    return d;
  }

 private:
  explicit Mapping(std::vector<U> sorted_units)
      : units_(std::move(sorted_units)) {}

  std::vector<U> units_;
  // Shared across copies; never mutated after construction.
  std::shared_ptr<const MappingSearchIndex> index_;
};

/// Builder that assembles a mapping unit by unit, merging units with
/// adjacent intervals and equal unit functions (keeping the
/// representation minimal, as `concat` in Section 5.2 does in O(1) per
/// append). Appends must be in increasing time order.
template <typename U>
class MappingBuilder {
 public:
  /// Appends a unit; merges with the previous one when the intervals are
  /// adjacent and the unit functions equal.
  Status Append(U unit) {
    if (!units_.empty()) {
      const TimeInterval& prev = units_.back().interval();
      const TimeInterval& cur = unit.interval();
      if (!TimeInterval::Disjoint(prev, cur)) {
        return Status::InvalidArgument(
            "units appended out of order or overlapping: " + prev.ToString() +
            " then " + cur.ToString());
      }
      if (!TimeInterval::RDisjoint(prev, cur)) {
        return Status::InvalidArgument("units appended out of time order");
      }
      if (TimeInterval::Adjacent(prev, cur) &&
          U::FunctionEqual(units_.back(), unit)) {
        TimeInterval merged = TimeInterval::Merge(prev, cur);
        Result<U> m = unit.WithInterval(merged);
        if (!m.ok()) return m.status();
        units_.back() = std::move(*m);
        return Status::OK();
      }
    }
    units_.push_back(std::move(unit));
    return Status::OK();
  }

  std::size_t NumUnits() const { return units_.size(); }

  /// Pre-allocates capacity for n units (bulk assembly fast path).
  void Reserve(std::size_t n) { units_.reserve(n); }

  /// Finalizes into a mapping. The builder is left empty.
  Result<Mapping<U>> Build() {
    return Mapping<U>::Make(std::move(units_));
  }

 private:
  std::vector<U> units_;
};

}  // namespace modb

#endif  // MODB_TEMPORAL_MAPPING_H_
