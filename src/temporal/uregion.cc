#include "temporal/uregion.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "core/real.h"
#include "spatial/region_builder.h"

namespace modb {

namespace {

double ParamOf(const Seg& s, const Point& p) {
  double dx = s.b().x - s.a().x;
  double dy = s.b().y - s.a().y;
  if (std::fabs(dx) >= std::fabs(dy)) return (p.x - s.a().x) / dx;
  return (p.y - s.a().y) / dy;
}

Point Lerp(const Seg& s, double u) {
  return Point(s.a().x + u * (s.b().x - s.a().x),
               s.a().y + u * (s.b().y - s.a().y));
}

class DisjointSets {
 public:
  explicit DisjointSets(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  std::size_t Find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Merge(std::size_t a, std::size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

std::vector<Seg> OddParityFragments(std::vector<Seg> segs) {
  const std::size_t n = segs.size();
  if (n <= 1) return segs;
  DisjointSets ds(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (Collinear(segs[i], segs[j]) && Overlap(segs[i], segs[j])) {
        ds.Merge(i, j);
      }
    }
  }
  std::vector<Seg> out;
  std::vector<bool> done(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t root = ds.Find(i);
    if (done[root]) continue;
    done[root] = true;
    // Collect the group.
    std::vector<std::size_t> group;
    for (std::size_t j = 0; j < n; ++j) {
      if (ds.Find(j) == root) group.push_back(j);
    }
    if (group.size() == 1) {
      out.push_back(segs[group[0]]);
      continue;
    }
    // Fragment the supporting line of segs[root] at all group endpoints;
    // keep odd-coverage fragments (the paper's even/odd cancellation).
    const Seg& base = segs[root];
    std::vector<double> cuts;
    for (std::size_t j : group) {
      cuts.push_back(ParamOf(base, segs[j].a()));
      cuts.push_back(ParamOf(base, segs[j].b()));
    }
    std::sort(cuts.begin(), cuts.end());
    cuts.erase(std::unique(cuts.begin(), cuts.end(),
                           [](double a, double b) {
                             return std::fabs(a - b) <= 1e-12;
                           }),
               cuts.end());
    for (std::size_t k = 0; k + 1 < cuts.size(); ++k) {
      double mid = (cuts[k] + cuts[k + 1]) / 2;
      int coverage = 0;
      for (std::size_t j : group) {
        double u0 = ParamOf(base, segs[j].a());
        double u1 = ParamOf(base, segs[j].b());
        if (u0 > u1) std::swap(u0, u1);
        if (mid > u0 && mid < u1) ++coverage;
      }
      if (coverage % 2 == 1) {
        auto frag = Seg::Make(Lerp(base, cuts[k]), Lerp(base, cuts[k + 1]));
        if (frag.ok()) out.push_back(*frag);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t URegion::NumMSegs() const {
  std::size_t n = 0;
  for (const MFace& f : faces_) {
    n += f.outer.size();
    for (const MCycle& h : f.holes) n += h.size();
  }
  return n;
}

std::vector<MSeg> URegion::AllMSegs() const {
  std::vector<MSeg> out;
  out.reserve(NumMSegs());
  for (const MFace& f : faces_) {
    out.insert(out.end(), f.outer.begin(), f.outer.end());
    for (const MCycle& h : f.holes) {
      out.insert(out.end(), h.begin(), h.end());
    }
  }
  return out;
}

std::vector<Seg> URegion::Snapshot(Instant t) const {
  std::vector<Seg> segs;
  segs.reserve(NumMSegs());
  for (const MFace& f : faces_) {
    for (const MSeg& m : f.outer) {
      if (auto s = m.ValueAt(t)) segs.push_back(*s);
    }
    for (const MCycle& h : f.holes) {
      for (const MSeg& m : h) {
        if (auto s = m.ValueAt(t)) segs.push_back(*s);
      }
    }
  }
  return segs;
}

Region URegion::ValueAt(Instant t) const {
  std::vector<Seg> segs = Snapshot(t);
  bool endpoint = (t == interval_.start() || t == interval_.end());
  if (endpoint) segs = OddParityFragments(std::move(segs));
  Result<Region> r = RegionBuilder::Close(segs);
  if (r.ok()) return std::move(*r);
  if (!endpoint) {
    // Numeric degeneracy at an interior instant: fall back to the cleanup
    // path, which cancels overlapping fragments.
    Result<Region> repaired =
        RegionBuilder::Close(OddParityFragments(Snapshot(t)));
    if (repaired.ok()) return std::move(*repaired);
  }
  return Region();
}

Result<URegion> URegion::Make(TimeInterval interval,
                              std::vector<MFace> faces) {
  if (faces.empty()) {
    return Status::InvalidArgument("uregion unit needs at least one face");
  }
  for (MFace& f : faces) {
    if (f.outer.size() < 3) {
      return Status::InvalidArgument("moving cycle needs at least 3 msegs");
    }
    std::sort(f.outer.begin(), f.outer.end());
    for (MCycle& h : f.holes) {
      if (h.size() < 3) {
        return Status::InvalidArgument("moving hole needs at least 3 msegs");
      }
      std::sort(h.begin(), h.end());
    }
  }
  URegion candidate(interval, std::move(faces));

  // Collect probe instants: clamped endpoints, midpoint, pairwise
  // configuration events and midpoints between consecutive events.
  const double dur = Duration(interval);
  std::vector<Instant> probes;
  if (dur == 0) {
    probes.push_back(interval.start());
  } else {
    const double delta = dur * 1e-6;
    probes.push_back(interval.start() + delta);
    probes.push_back(interval.start() + dur / 2);
    probes.push_back(interval.end() - delta);
    std::vector<MSeg> all = candidate.AllMSegs();
    std::vector<Instant> events;
    for (std::size_t i = 0; i < all.size(); ++i) {
      for (std::size_t j = i + 1; j < all.size(); ++j) {
        for (Instant t : ConfigurationEvents(all[i], all[j], interval)) {
          if (interval.ContainsOpen(t)) events.push_back(t);
        }
      }
      for (Instant t : all[i].DegenerationTimes()) {
        if (interval.ContainsOpen(t)) {
          return Status::InvalidArgument(
              "moving segment degenerates inside the unit interval");
        }
      }
    }
    std::sort(events.begin(), events.end());
    events.erase(std::unique(events.begin(), events.end()), events.end());
    for (std::size_t i = 0; i < events.size(); ++i) {
      probes.push_back(events[i]);
      Instant next = (i + 1 < events.size()) ? events[i + 1] : interval.end();
      probes.push_back((events[i] + next) / 2);
    }
  }
  for (Instant t : probes) {
    if (!interval.Contains(t)) continue;
    Result<Region> r = RegionBuilder::Close(candidate.Snapshot(t));
    if (!r.ok()) {
      return Status::InvalidArgument(
          "uregion invalid at t=" + std::to_string(t) + ": " +
          r.status().message());
    }
    // Structural preservation: every hole must remain inside its own
    // face's outer cycle (ι(F, t) must denote the same face structure).
    for (const MFace& f : candidate.faces()) {
      std::vector<Seg> outer;
      for (const MSeg& m : f.outer) {
        if (auto s = m.ValueAt(t)) outer.push_back(*s);
      }
      for (const MCycle& h : f.holes) {
        for (const MSeg& m : h) {
          auto s = m.ValueAt(t);
          if (!s) continue;
          bool on_boundary = false;
          if (!EvenOddContains(outer, s->Midpoint(), &on_boundary) &&
              !on_boundary) {
            return Status::InvalidArgument(
                "uregion hole leaves its face at t=" + std::to_string(t));
          }
        }
      }
    }
  }
  return candidate;
}

Cube URegion::BoundingCube() const {
  Rect r;
  for (const MSeg& m : AllMSegs()) {
    r.Extend(m.s().At(interval_.start()));
    r.Extend(m.s().At(interval_.end()));
    r.Extend(m.e().At(interval_.start()));
    r.Extend(m.e().At(interval_.end()));
  }
  return Cube(r, interval_.start(), interval_.end());
}

Result<URegion> URegion::WithInterval(TimeInterval sub) const {
  // Sub-intervals of a valid unit remain valid.
  return URegion(sub, faces_);
}

std::string URegion::ToString() const {
  std::ostringstream os;
  os << "uregion" << interval_.ToString() << " " << faces_.size()
     << " mfaces, " << NumMSegs() << " msegs";
  return os.str();
}

}  // namespace modb
