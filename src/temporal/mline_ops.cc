#include "temporal/mline_ops.h"

#include <cmath>

#include "core/real.h"
#include "spatial/overlay.h"

namespace modb {

Result<MovingReal> Length(const MovingLine& ml) {
  MappingBuilder<UReal> builder;
  builder.Reserve(ml.NumUnits());
  for (const ULine& u : ml.units()) {
    const TimeInterval& iv = u.interval();
    double dur = Duration(iv);
    auto total_length = [&u](Instant t) {
      double total = 0;
      for (const MSeg& m : u.msegs()) {
        if (auto s = m.ValueAt(t)) total += s->Length();
      }
      return total;
    };
    if (dur == 0) {
      auto unit = UReal::Constant(iv, total_length(iv.start()));
      if (!unit.ok()) return unit.status();
      MODB_RETURN_IF_ERROR(builder.Append(*unit));
      continue;
    }
    // Linear in t: two interior samples determine it exactly (interior
    // instants dodge endpoint degeneracies/merges).
    double t1 = iv.start() + dur * 0.25;
    double t2 = iv.start() + dur * 0.75;
    double v1 = total_length(t1);
    double v2 = total_length(t2);
    double b = (v2 - v1) / (t2 - t1);
    double c = v1 - b * t1;
    auto unit = UReal::Make(iv, 0, SnapZero(b), c, false);
    if (!unit.ok()) return unit.status();
    MODB_RETURN_IF_ERROR(builder.Append(*unit));
  }
  return builder.Build();
}

Result<Region> Traversed(const MovingLine& ml) {
  Region acc;
  for (const ULine& u : ml.units()) {
    const TimeInterval& iv = u.interval();
    for (const MSeg& m : u.msegs()) {
      Point s0 = m.s().At(iv.start());
      Point e0 = m.e().At(iv.start());
      Point s1 = m.s().At(iv.end());
      Point e1 = m.e().At(iv.end());
      std::vector<Point> ring;
      for (const Point& p : {s0, e0, e1, s1}) {
        if (ring.empty() || !(ring.back() == p)) ring.push_back(p);
      }
      while (ring.size() > 1 && ring.front() == ring.back()) ring.pop_back();
      if (ring.size() < 3) continue;
      if (std::fabs(SignedArea(ring)) < kEpsilon) continue;
      Result<Region> sweep = Region::FromPolygon(ring);
      if (!sweep.ok()) continue;  // Degenerate sliver.
      Result<Region> merged = Union(acc, *sweep);
      if (!merged.ok()) return merged.status();
      acc = std::move(*merged);
    }
  }
  return acc;
}

}  // namespace modb
