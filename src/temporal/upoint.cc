#include "temporal/upoint.h"

#include <cmath>
#include <sstream>

#include "core/real.h"

namespace modb {

Result<UPoint> UPoint::FromEndpoints(TimeInterval interval,
                                     const Point& p_start,
                                     const Point& p_end) {
  double dur = Duration(interval);
  if (dur == 0) {
    if (!(p_start == p_end)) {
      return Status::InvalidArgument(
          "instant unit with two distinct positions");
    }
    return Static(interval, p_start);
  }
  double x1 = (p_end.x - p_start.x) / dur;
  double y1 = (p_end.y - p_start.y) / dur;
  LinearMotion m{p_start.x - x1 * interval.start(), x1,
                 p_start.y - y1 * interval.start(), y1};
  return Make(interval, m);
}

std::optional<Seg> UPoint::TrajectorySegment() const {
  Point p = StartPoint();
  Point q = EndPoint();
  if (p == q) return std::nullopt;
  auto s = Seg::Make(p, q);
  if (!s.ok()) return std::nullopt;
  return *s;
}

double UPoint::Speed() const {
  return std::sqrt(motion_.x1 * motion_.x1 + motion_.y1 * motion_.y1);
}

std::optional<Instant> UPoint::InstantAt(const Point& p) const {
  if (motion_.IsStatic()) {
    if (ApproxEqual(motion_.At(interval_.start()), p)) {
      return interval_.start();
    }
    return std::nullopt;
  }
  Instant t;
  if (std::fabs(motion_.x1) >= std::fabs(motion_.y1)) {
    t = (p.x - motion_.x0) / motion_.x1;
  } else {
    t = (p.y - motion_.y0) / motion_.y1;
  }
  if (!interval_.Contains(t)) return std::nullopt;
  if (!ApproxEqual(motion_.At(t), p)) return std::nullopt;
  return t;
}

Cube UPoint::BoundingCube() const {
  Rect r = Rect::Of(StartPoint());
  r.Extend(EndPoint());
  return Cube(r, interval_.start(), interval_.end());
}

std::string UPoint::ToString() const {
  std::ostringstream os;
  os << "upoint" << interval_.ToString() << " " << StartPoint().ToString()
     << "->" << EndPoint().ToString();
  return os.str();
}

}  // namespace modb
