// Table 3 of the paper: the correspondence between abstract moving types
// and their discrete sliced representations.
//
//   moving(int)    = mapping(const(int))     → MovingInt
//   moving(string) = mapping(const(string))  → MovingString
//   moving(bool)   = mapping(const(bool))    → MovingBool
//   moving(real)   = mapping(ureal)          → MovingReal
//   moving(point)  = mapping(upoint)         → MovingPoint
//   moving(points) = mapping(upoints)        → MovingPoints
//   moving(line)   = mapping(uline)          → MovingLine
//   moving(region) = mapping(uregion)        → MovingRegion

#ifndef MODB_TEMPORAL_MOVING_H_
#define MODB_TEMPORAL_MOVING_H_

#include "spatial/line.h"
#include "spatial/points.h"
#include "spatial/region.h"
#include "temporal/const_unit.h"
#include "temporal/mapping.h"
#include "temporal/upoint.h"
#include "temporal/upoints.h"
#include "temporal/ureal.h"
#include "temporal/uline.h"
#include "temporal/uregion.h"

namespace modb {

using MovingInt = Mapping<UInt>;
using MovingString = Mapping<UString>;
using MovingBool = Mapping<UBool>;
using MovingReal = Mapping<UReal>;
using MovingPoint = Mapping<UPoint>;
using MovingPoints = Mapping<UPoints>;
using MovingLine = Mapping<ULine>;
using MovingRegion = Mapping<URegion>;

// Section 3.2.5 also notes that const(α) "can nevertheless be applied to
// other types … useful for applications where values of such types change
// only in discrete steps": stepped spatial mappings, e.g. a land parcel
// whose shape changes at survey dates.
using SteppedPoint = Mapping<ConstUnit<Point>>;
using SteppedPoints = Mapping<ConstUnit<Points>>;
using SteppedLine = Mapping<ConstUnit<Line>>;
using SteppedRegion = Mapping<ConstUnit<Region>>;

}  // namespace modb

#endif  // MODB_TEMPORAL_MOVING_H_
