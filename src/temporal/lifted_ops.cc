#include "temporal/lifted_ops.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <numbers>
#include <optional>

#include "core/real.h"
#include "spatial/spatial_ops.h"
#include "temporal/batch_ops.h"
#include "temporal/refinement.h"

namespace modb {

namespace {

// ---------------------------------------------------------------------------
// moving(real) helpers.
// ---------------------------------------------------------------------------

bool EvalCmp(double lhs, double rhs, CmpOp op) {
  switch (op) {
    case CmpOp::kLt:
      return lhs < rhs;
    case CmpOp::kLe:
      return lhs <= rhs;
    case CmpOp::kGt:
      return lhs > rhs;
    case CmpOp::kGe:
      return lhs >= rhs;
    case CmpOp::kEq:
      return lhs == rhs;
    case CmpOp::kNe:
      return lhs != rhs;
  }
  return false;
}

// Value of the comparison exactly at an instant where lhs == rhs.
bool CmpAtEquality(CmpOp op) {
  return op == CmpOp::kLe || op == CmpOp::kGe || op == CmpOp::kEq;
}

// Emits boolean units covering `interval` for the predicate
// op(f(t), c), where `breaks` are the instants with f(t) == c and
// `eval_mid` evaluates the predicate at an interior instant.
Status EmitPiecewiseBool(const TimeInterval& interval,
                         std::vector<Instant> breaks, CmpOp op,
                         const std::function<bool(Instant)>& eval_mid,
                         MappingBuilder<UBool>* builder) {
  std::sort(breaks.begin(), breaks.end());
  breaks.erase(std::unique(breaks.begin(), breaks.end()), breaks.end());
  const bool eq_value = CmpAtEquality(op);

  Instant pos = interval.start();
  bool pos_closed = interval.left_closed();
  auto emit_span = [&](Instant to, bool to_closed) -> Status {
    if (to < pos) return Status::OK();
    if (to == pos && !(pos_closed && to_closed)) return Status::OK();
    auto iv = TimeInterval::Make(pos, to, pos_closed, to_closed);
    if (!iv.ok()) return iv.status();
    bool value = eval_mid((pos + to) / 2);
    auto unit = UBool::Make(*iv, value);
    if (!unit.ok()) return unit.status();
    return builder->Append(*unit);
  };

  for (Instant t : breaks) {
    if (!interval.Contains(t)) continue;
    // Span before the break.
    MODB_RETURN_IF_ERROR(emit_span(t, false));
    // The break instant itself.
    auto at = UBool::Make(TimeInterval::At(t), eq_value);
    if (!at.ok()) return at.status();
    MODB_RETURN_IF_ERROR(builder->Append(*at));
    pos = t;
    pos_closed = false;
  }
  return emit_span(interval.end(), interval.right_closed());
}

// ---------------------------------------------------------------------------
// inside core (Section 5.2, upoint_uregion_inside).
// ---------------------------------------------------------------------------

// Boolean units describing when the linearly moving point `p` is inside
// the moving boundary given by `msegs`, over `interval`. `snapshot(t)`
// must return the boundary segments at t (plumbline input). Crossing
// instants belong to the true side (the region is closed).
Status InsideCore(const LinearMotion& p, const TimeInterval& interval,
                  const std::vector<MSeg>& msegs,
                  const std::function<std::vector<Seg>(Instant)>& snapshot,
                  MappingBuilder<UBool>* builder) {
  // Find all intersections of the 3D line with the moving segments.
  std::vector<Instant> times;
  for (const MSeg& m : msegs) {
    MSegCrossings c = CrossingTimes(p, m, interval);
    // `always_collinear` (point riding along a boundary line) needs no
    // crossing events; the plumbline midpoint evaluation classifies it.
    for (Instant t : c.times) times.push_back(t);
  }
  std::sort(times.begin(), times.end());
  times.erase(std::unique(times.begin(), times.end()), times.end());

  auto state_at = [&](Instant t) {
    return EvenOddContains(snapshot(t), p.At(t));
  };

  // Crossings exactly at a closed interval endpoint: the point is on the
  // boundary there, hence inside; emit a degenerate true unit and open
  // the adjoining span.
  Instant lo = interval.start();
  bool lo_closed = interval.left_closed();
  Instant hi = interval.end();
  bool hi_closed = interval.right_closed();
  bool emit_hi_true = false;
  {
    std::vector<Instant> interior;
    for (Instant t : times) {
      if (t == lo && lo_closed) {
        auto at = UBool::Make(TimeInterval::At(lo), true);
        MODB_RETURN_IF_ERROR(builder->Append(*at));
        lo_closed = false;
      } else if (t == hi && hi_closed) {
        emit_hi_true = true;
        hi_closed = false;
      } else if (t > lo && t < hi) {
        interior.push_back(t);
      }
    }
    times = std::move(interior);
  }

  if (lo < hi || (lo == hi && lo_closed && hi_closed)) {
    if (times.empty()) {
      // k = 0 of the paper's algorithm: a single plumbline test decides
      // the whole span.
      auto iv = TimeInterval::Make(lo, hi, lo_closed, hi_closed);
      if (iv.ok()) {
        auto unit = UBool::Make(*iv, state_at((lo + hi) / 2));
        MODB_RETURN_IF_ERROR(builder->Append(*unit));
      }
    } else {
      // The paper's algorithm alternates the state across the sorted
      // crossing list. We evaluate the plumbline state once per span
      // instead: equivalent for clean transversal crossings, and also
      // correct for the degenerate cases alternation mishandles — a
      // crossing through a region *vertex* is reported by both incident
      // moving segments (two events, one actual crossing) and a tangent
      // touch flips nothing. Crossing instants themselves lie on the
      // boundary, hence inside (the region is closed): they attach to an
      // adjacent inside span, or stand alone as a degenerate true unit
      // between two outside spans.
      std::vector<bool> span_state(times.size() + 1);
      for (std::size_t k = 0; k <= times.size(); ++k) {
        Instant a = (k == 0) ? lo : times[k - 1];
        Instant b = (k == times.size()) ? hi : times[k];
        span_state[k] = state_at((a + b) / 2);
      }
      Instant pos = lo;
      bool pos_closed = lo_closed;
      for (std::size_t k = 0; k <= times.size(); ++k) {
        bool state = span_state[k];
        Instant to = (k < times.size()) ? times[k] : hi;
        // The crossing instant `to` belongs to the true side; if both
        // neighbors are false it becomes its own degenerate unit below.
        bool next_true = (k < times.size()) && span_state[k + 1];
        bool to_closed = (k < times.size()) ? state : hi_closed;
        if (to > pos || (to == pos && pos_closed && to_closed)) {
          auto iv = TimeInterval::Make(pos, to, pos_closed, to_closed);
          if (iv.ok()) {
            auto unit = UBool::Make(*iv, state);
            MODB_RETURN_IF_ERROR(builder->Append(*unit));
          }
        }
        if (k < times.size() && !state && !next_true) {
          // Boundary touch between two outside spans.
          auto at = UBool::Make(TimeInterval::At(to), true);
          MODB_RETURN_IF_ERROR(builder->Append(*at));
          pos_closed = false;
        } else {
          pos_closed = !state;
        }
        pos = to;
      }
    }
  }
  if (emit_hi_true) {
    auto at = UBool::Make(TimeInterval::At(hi), true);
    MODB_RETURN_IF_ERROR(builder->Append(*at));
  }
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------------------
// moving(bool) algebra.
// ---------------------------------------------------------------------------

MovingBool Not(const MovingBool& b) {
  std::vector<UBool> units;
  units.reserve(b.NumUnits());
  for (const UBool& u : b.units()) {
    units.push_back(*UBool::Make(u.interval(), !u.value()));
  }
  return *MovingBool::Make(std::move(units));
}

namespace {

Result<MovingBool> BoolCombine(const MovingBool& a, const MovingBool& b,
                               bool is_and) {
  MappingBuilder<UBool> builder;
  // Function-local thread_local scratch: reused across calls (one
  // allocation per thread, not per tuple pair), and safe under the
  // parallel query operators.
  thread_local RefinementScratch rp;
  MODB_RETURN_IF_ERROR(RefinementPartitionInto(a, b, &rp));
  for (const RefinementEntry& e : rp) {
    if (!e.HasBoth()) continue;
    bool va = a.unit(std::size_t(e.unit_a)).value();
    bool vb = b.unit(std::size_t(e.unit_b)).value();
    bool v = is_and ? (va && vb) : (va || vb);
    auto unit = UBool::Make(e.interval, v);
    if (!unit.ok()) return unit.status();
    MODB_RETURN_IF_ERROR(builder.Append(*unit));
  }
  return builder.Build();
}

}  // namespace

Result<MovingBool> And(const MovingBool& a, const MovingBool& b) {
  return BoolCombine(a, b, true);
}

Result<MovingBool> Or(const MovingBool& a, const MovingBool& b) {
  return BoolCombine(a, b, false);
}

Periods WhenTrue(const MovingBool& b) {
  std::vector<TimeInterval> ivs;
  for (const UBool& u : b.units()) {
    if (u.value()) ivs.push_back(u.interval());
  }
  return Periods::FromIntervals(std::move(ivs));
}

// ---------------------------------------------------------------------------
// moving(real) operations.
// ---------------------------------------------------------------------------

Result<MovingReal> LiftedDistance(const MovingPoint& a, const MovingPoint& b) {
  MappingBuilder<UReal> builder;
  // Function-local thread_local scratch: reused across calls (one
  // allocation per thread, not per tuple pair), and safe under the
  // parallel query operators.
  thread_local RefinementScratch rp;
  MODB_RETURN_IF_ERROR(RefinementPartitionInto(a, b, &rp));
  for (const RefinementEntry& e : rp) {
    if (!e.HasBoth()) continue;
    const LinearMotion& ma = a.unit(std::size_t(e.unit_a)).motion();
    const LinearMotion& mb = b.unit(std::size_t(e.unit_b)).motion();
    double dx0 = ma.x0 - mb.x0, dx1 = ma.x1 - mb.x1;
    double dy0 = ma.y0 - mb.y0, dy1 = ma.y1 - mb.y1;
    auto unit = UReal::Make(e.interval, dx1 * dx1 + dy1 * dy1,
                            2 * (dx0 * dx1 + dy0 * dy1),
                            dx0 * dx0 + dy0 * dy0, /*r=*/true);
    if (!unit.ok()) return unit.status();
    MODB_RETURN_IF_ERROR(builder.Append(*unit));
  }
  return builder.Build();
}

Result<MovingReal> LiftedDistance(const MovingPoint& a, const Point& p) {
  MappingBuilder<UReal> builder;
  builder.Reserve(a.NumUnits());
  for (const UPoint& u : a.units()) {
    const LinearMotion& m = u.motion();
    double dx0 = m.x0 - p.x, dx1 = m.x1;
    double dy0 = m.y0 - p.y, dy1 = m.y1;
    auto unit = UReal::Make(u.interval(), dx1 * dx1 + dy1 * dy1,
                            2 * (dx0 * dx1 + dy0 * dy1),
                            dx0 * dx0 + dy0 * dy0, /*r=*/true);
    if (!unit.ok()) return unit.status();
    MODB_RETURN_IF_ERROR(builder.Append(*unit));
  }
  return builder.Build();
}

namespace {

// Squared-distance quadratic between two linear motions.
struct DistQuad {
  double a, b, c;
  double Eval(double t) const { return (a * t + b) * t + c; }
};

DistQuad SquaredDistanceQuad(const LinearMotion& p, const LinearMotion& q) {
  double dx0 = p.x0 - q.x0, dx1 = p.x1 - q.x1;
  double dy0 = p.y0 - q.y0, dy1 = p.y1 - q.y1;
  return {dx1 * dx1 + dy1 * dy1, 2 * (dx0 * dx1 + dy0 * dy1),
          dx0 * dx0 + dy0 * dy0};
}

}  // namespace

Result<MovingReal> LiftedDistance(const MovingPoint& a,
                                  const MovingPoints& b) {
  MappingBuilder<UReal> builder;
  // Function-local thread_local scratch: reused across calls (one
  // allocation per thread, not per tuple pair), and safe under the
  // parallel query operators.
  thread_local RefinementScratch rp;
  MODB_RETURN_IF_ERROR(RefinementPartitionInto(a, b, &rp));
  for (const RefinementEntry& e : rp) {
    if (!e.HasBoth()) continue;
    const LinearMotion& p = a.unit(std::size_t(e.unit_a)).motion();
    const std::vector<LinearMotion>& members =
        b.unit(std::size_t(e.unit_b)).motions();
    std::vector<DistQuad> quads;
    quads.reserve(members.size());
    for (const LinearMotion& m : members) {
      quads.push_back(SquaredDistanceQuad(p, m));
    }
    // The member attaining the minimum can only change where two squared
    // distances are equal: the roots of pairwise quadratic differences.
    std::vector<Instant> cuts = {e.interval.start(), e.interval.end()};
    for (std::size_t i = 0; i < quads.size(); ++i) {
      for (std::size_t j = i + 1; j < quads.size(); ++j) {
        for (double t : QuadraticRoots(quads[i].a - quads[j].a,
                                       quads[i].b - quads[j].b,
                                       quads[i].c - quads[j].c)) {
          if (e.interval.ContainsOpen(t)) cuts.push_back(t);
        }
      }
    }
    std::sort(cuts.begin(), cuts.end());
    cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
    for (std::size_t k = 0; k + 1 < cuts.size() || cuts.size() == 1; ++k) {
      Instant t0 = cuts[k];
      Instant t1 = (cuts.size() == 1) ? cuts[0] : cuts[k + 1];
      double mid = (t0 + t1) / 2;
      std::size_t best = 0;
      for (std::size_t i = 1; i < quads.size(); ++i) {
        if (quads[i].Eval(mid) < quads[best].Eval(mid)) best = i;
      }
      bool lc = (k == 0) ? e.interval.left_closed() : true;
      bool rc = (t1 == e.interval.end()) ? e.interval.right_closed() : false;
      auto iv = TimeInterval::Make(t0, t1, lc, rc);
      if (!iv.ok()) return iv.status();
      auto unit = UReal::Make(*iv, quads[best].a, quads[best].b,
                              quads[best].c, /*r=*/true);
      if (!unit.ok()) return unit.status();
      MODB_RETURN_IF_ERROR(builder.Append(*unit));
      if (cuts.size() == 1) break;
    }
  }
  return builder.Build();
}

Result<MovingBool> Inside(const MovingPoint& a, const MovingPoints& b) {
  MappingBuilder<UBool> builder;
  // Function-local thread_local scratch: reused across calls (one
  // allocation per thread, not per tuple pair), and safe under the
  // parallel query operators.
  thread_local RefinementScratch rp;
  MODB_RETURN_IF_ERROR(RefinementPartitionInto(a, b, &rp));
  for (const RefinementEntry& e : rp) {
    if (!e.HasBoth()) continue;
    const LinearMotion& p = a.unit(std::size_t(e.unit_a)).motion();
    const std::vector<LinearMotion>& members =
        b.unit(std::size_t(e.unit_b)).motions();
    bool always = false;
    std::vector<Instant> breaks;
    for (const LinearMotion& m : members) {
      CoincidenceResult co = Coincidence(p, m);
      if (co.always) {
        always = true;
        break;
      }
      for (Instant t : co.instants) {
        if (e.interval.Contains(t)) breaks.push_back(t);
      }
    }
    if (always) {
      auto unit = UBool::Make(e.interval, true);
      MODB_RETURN_IF_ERROR(builder.Append(*unit));
      continue;
    }
    MODB_RETURN_IF_ERROR(EmitPiecewiseBool(
        e.interval, std::move(breaks), CmpOp::kEq,
        [](Instant) { return false; }, &builder));
  }
  return builder.Build();
}

std::optional<double> MinValue(const MovingReal& m) {
  std::optional<double> best;
  for (const UReal& u : m.units()) {
    double v = u.Extrema().min_value;
    if (!best || v < *best) best = v;
  }
  return best;
}

std::optional<double> MaxValue(const MovingReal& m) {
  std::optional<double> best;
  for (const UReal& u : m.units()) {
    double v = u.Extrema().max_value;
    if (!best || v > *best) best = v;
  }
  return best;
}

namespace {

Result<MovingReal> AtExtremum(const MovingReal& m, bool minimum) {
  std::optional<double> target = minimum ? MinValue(m) : MaxValue(m);
  if (!target) return MovingReal();
  const double tol = kEpsilon * (1 + std::fabs(*target));
  std::vector<TimeInterval> hits;
  for (const UReal& u : m.units()) {
    if (u.EqualsEverywhere(u.ValueAt(u.interval().start())) &&
        std::fabs(u.ValueAt(u.interval().start()) - *target) <= tol) {
      hits.push_back(u.interval());
      continue;
    }
    // Candidate instants: interval endpoints and the parabola vertex.
    std::vector<Instant> candidates = {u.interval().start(),
                                       u.interval().end()};
    if (u.a() != 0) {
      double vertex = -u.b() / (2 * u.a());
      if (u.interval().ContainsOpen(vertex)) candidates.push_back(vertex);
    }
    for (Instant t : candidates) {
      if (std::fabs(u.ValueAt(t) - *target) <= tol) {
        hits.push_back(TimeInterval::At(t));
      }
    }
  }
  return m.AtPeriods(Periods::FromIntervals(std::move(hits)));
}

}  // namespace

Result<MovingReal> AtMin(const MovingReal& m) { return AtExtremum(m, true); }
Result<MovingReal> AtMax(const MovingReal& m) { return AtExtremum(m, false); }

Result<MovingBool> Compare(const MovingReal& m, double c, CmpOp op) {
  MappingBuilder<UBool> builder;
  for (const UReal& u : m.units()) {
    if (u.EqualsEverywhere(c)) {
      auto unit = UBool::Make(u.interval(), CmpAtEquality(op));
      MODB_RETURN_IF_ERROR(builder.Append(*unit));
      continue;
    }
    MODB_RETURN_IF_ERROR(EmitPiecewiseBool(
        u.interval(), u.InstantsAtValue(c), op,
        [&u, c, op](Instant t) { return EvalCmp(u.ValueAt(t), c, op); },
        &builder));
  }
  return builder.Build();
}

Result<MovingBool> Compare(const MovingReal& a, const MovingReal& b,
                           CmpOp op) {
  MappingBuilder<UBool> builder;
  // Function-local thread_local scratch: reused across calls (one
  // allocation per thread, not per tuple pair), and safe under the
  // parallel query operators.
  thread_local RefinementScratch rp;
  MODB_RETURN_IF_ERROR(RefinementPartitionInto(a, b, &rp));
  for (const RefinementEntry& e : rp) {
    if (!e.HasBoth()) continue;
    const UReal& ua = a.unit(std::size_t(e.unit_a));
    const UReal& ub = b.unit(std::size_t(e.unit_b));
    // Reduce to sign analysis of a quadratic. Cases that stay in the
    // class: both plain quadratics (compare the difference with 0); both
    // roots over non-negative radicands (compare the radicands); one
    // root against a constant (square the constant).
    double da, db, dc;
    std::function<bool(Instant)> eval = [&ua, &ub, op](Instant t) {
      return EvalCmp(ua.ValueAt(t), ub.ValueAt(t), op);
    };
    if (!ua.root() && !ub.root()) {
      da = ua.a() - ub.a();
      db = ua.b() - ub.b();
      dc = ua.c() - ub.c();
    } else if (ua.root() && ub.root()) {
      da = ua.a() - ub.a();
      db = ua.b() - ub.b();
      dc = ua.c() - ub.c();
    } else {
      const UReal& rooted = ua.root() ? ua : ub;
      const UReal& plain = ua.root() ? ub : ua;
      if (plain.a() != 0 || plain.b() != 0) {
        return Status::Unimplemented(
            "comparison of a root ureal against a non-constant ureal is not "
            "closed in the discrete model");
      }
      double c = plain.c();
      if (c < 0) {
        // √radicand >= 0 > c always; orient by which side is the root.
        bool value = ua.root() ? EvalCmp(1.0, 0.0, op)   // root > const
                               : EvalCmp(0.0, 1.0, op);  // const < root
        auto unit = UBool::Make(e.interval, value);
        MODB_RETURN_IF_ERROR(builder.Append(*unit));
        continue;
      }
      // Breaks are where radicand == c²; between breaks the sign is
      // constant and `eval` decides it at midpoints.
      da = rooted.a();
      db = rooted.b();
      dc = rooted.c() - c * c;
    }
    std::vector<Instant> breaks;
    for (double t : QuadraticRoots(da, db, dc)) {
      if (e.interval.Contains(t)) breaks.push_back(t);
    }
    if (da == 0 && db == 0 && dc == 0) {
      // Identically equal on the interval.
      auto unit = UBool::Make(e.interval, CmpAtEquality(op));
      MODB_RETURN_IF_ERROR(builder.Append(*unit));
      continue;
    }
    MODB_RETURN_IF_ERROR(EmitPiecewiseBool(e.interval, std::move(breaks), op,
                                           eval, &builder));
  }
  return builder.Build();
}

namespace {

Result<MovingReal> AddSub(const MovingReal& a, const MovingReal& b,
                          double sign) {
  MappingBuilder<UReal> builder;
  // Function-local thread_local scratch: reused across calls (one
  // allocation per thread, not per tuple pair), and safe under the
  // parallel query operators.
  thread_local RefinementScratch rp;
  MODB_RETURN_IF_ERROR(RefinementPartitionInto(a, b, &rp));
  for (const RefinementEntry& e : rp) {
    if (!e.HasBoth()) continue;
    const UReal& ua = a.unit(std::size_t(e.unit_a));
    const UReal& ub = b.unit(std::size_t(e.unit_b));
    if (ua.root() || ub.root()) {
      return Status::Unimplemented(
          "sum/difference involving root ureals is not closed in the "
          "discrete model");
    }
    auto unit = UReal::Make(e.interval, ua.a() + sign * ub.a(),
                            ua.b() + sign * ub.b(), ua.c() + sign * ub.c(),
                            false);
    if (!unit.ok()) return unit.status();
    MODB_RETURN_IF_ERROR(builder.Append(*unit));
  }
  return builder.Build();
}

}  // namespace

Result<MovingReal> Plus(const MovingReal& a, const MovingReal& b) {
  return AddSub(a, b, 1);
}

Result<MovingReal> Minus(const MovingReal& a, const MovingReal& b) {
  return AddSub(a, b, -1);
}

Result<MovingReal> At(const MovingReal& m, double v) {
  std::vector<TimeInterval> hits;
  for (const UReal& u : m.units()) {
    if (u.EqualsEverywhere(v)) {
      hits.push_back(u.interval());
      continue;
    }
    for (Instant t : u.InstantsAtValue(v)) {
      hits.push_back(TimeInterval::At(t));
    }
  }
  return m.AtPeriods(Periods::FromIntervals(std::move(hits)));
}

Result<MovingReal> AtRange(const MovingReal& m, double lo, double hi) {
  if (hi < lo) {
    return Status::InvalidArgument("atrange requires lo <= hi");
  }
  std::vector<TimeInterval> hits;
  for (const UReal& u : m.units()) {
    // Breakpoints where the value crosses lo or hi partition the unit
    // interval into spans of constant membership.
    std::vector<Instant> cuts = {u.interval().start(), u.interval().end()};
    for (double bound : {lo, hi}) {
      for (Instant t : u.InstantsAtValue(bound)) cuts.push_back(t);
    }
    std::sort(cuts.begin(), cuts.end());
    cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
    for (std::size_t k = 0; k + 1 < cuts.size(); ++k) {
      double mid_value = u.ValueAt((cuts[k] + cuts[k + 1]) / 2);
      if (mid_value >= lo && mid_value <= hi) {
        auto iv = TimeInterval::Make(cuts[k], cuts[k + 1], true, true);
        if (iv.ok()) hits.push_back(*iv);
      } else {
        // The cut instants themselves may still hit the closed range.
        for (Instant t : {cuts[k], cuts[k + 1]}) {
          double value = u.ValueAt(t);
          if (value >= lo && value <= hi && u.interval().Contains(t)) {
            hits.push_back(TimeInterval::At(t));
          }
        }
      }
    }
    if (u.interval().IsDegenerate()) {
      double value = u.ValueAt(u.interval().start());
      if (value >= lo && value <= hi) hits.push_back(u.interval());
    }
  }
  return m.AtPeriods(Periods::FromIntervals(std::move(hits)));
}

bool Passes(const MovingReal& m, double v) {
  for (const UReal& u : m.units()) {
    if (u.EqualsEverywhere(v)) return true;
    if (!u.InstantsAtValue(v).empty()) return true;
  }
  return false;
}

RealRange RangeValues(const MovingReal& m) {
  std::vector<Interval<double>> ivs;
  for (const UReal& u : m.units()) {
    URealExtrema ex = u.Extrema();
    auto iv = Interval<double>::Closed(ex.min_value, ex.max_value);
    if (iv.ok()) ivs.push_back(*iv);
  }
  return RealRange::FromIntervals(std::move(ivs));
}

// ---------------------------------------------------------------------------
// moving(point) operations.
// ---------------------------------------------------------------------------

Line Trajectory(const MovingPoint& mp) {
  std::vector<Seg> segs;
  segs.reserve(mp.NumUnits());
  for (const UPoint& u : mp.units()) {
    if (auto s = u.TrajectorySegment()) segs.push_back(*s);
  }
  return Line::Canonical(std::move(segs));
}

Points Locations(const MovingPoint& mp) {
  std::vector<Point> pts;
  for (const UPoint& u : mp.units()) {
    if (u.motion().IsStatic()) pts.push_back(u.StartPoint());
  }
  return Points::FromVector(std::move(pts));
}

Result<MovingReal> Speed(const MovingPoint& mp) {
  MappingBuilder<UReal> builder;
  builder.Reserve(mp.NumUnits());
  for (const UPoint& u : mp.units()) {
    auto unit = UReal::Constant(u.interval(), u.Speed());
    if (!unit.ok()) return unit.status();
    MODB_RETURN_IF_ERROR(builder.Append(*unit));
  }
  return builder.Build();
}

Result<MovingReal> MDirection(const MovingPoint& mp) {
  MappingBuilder<UReal> builder;
  for (const UPoint& u : mp.units()) {
    if (u.motion().IsStatic()) continue;  // Direction undefined.
    double deg = std::atan2(u.motion().y1, u.motion().x1) * 180.0 /
                 std::numbers::pi;
    if (deg < 0) deg += 360.0;
    auto unit = UReal::Constant(u.interval(), deg);
    if (!unit.ok()) return unit.status();
    MODB_RETURN_IF_ERROR(builder.Append(*unit));
  }
  return builder.Build();
}

Result<MovingPoint> Velocity(const MovingPoint& mp) {
  MappingBuilder<UPoint> builder;
  builder.Reserve(mp.NumUnits());
  for (const UPoint& u : mp.units()) {
    auto unit = UPoint::Static(u.interval(),
                               Point(u.motion().x1, u.motion().y1));
    if (!unit.ok()) return unit.status();
    MODB_RETURN_IF_ERROR(builder.Append(*unit));
  }
  return builder.Build();
}

bool Passes(const MovingPoint& mp, const Point& p) {
  for (const UPoint& u : mp.units()) {
    if (u.InstantAt(p)) return true;
  }
  return false;
}

Result<MovingPoint> At(const MovingPoint& mp, const Point& p) {
  std::vector<TimeInterval> hits;
  for (const UPoint& u : mp.units()) {
    if (u.motion().IsStatic()) {
      if (ApproxEqual(u.StartPoint(), p)) hits.push_back(u.interval());
      continue;
    }
    if (auto t = u.InstantAt(p)) hits.push_back(TimeInterval::At(*t));
  }
  return mp.AtPeriods(Periods::FromIntervals(std::move(hits)));
}

Result<MovingPoint> Intersection(const MovingPoint& mp, const Line& l) {
  std::vector<TimeInterval> hits;
  for (const UPoint& u : mp.units()) {
    const LinearMotion& p = u.motion();
    for (const Seg& s : l.segments()) {
      auto ms = MSeg::StaticSeg(s);
      if (!ms.ok()) return ms.status();
      MSegCrossings c = CrossingTimes(p, *ms, u.interval());
      for (Instant t : c.times) hits.push_back(TimeInterval::At(t));
      if (!c.always_collinear) continue;
      // The unit's path rides along the segment's supporting line: the
      // point is on the segment while its 1D parameter stays in [0, 1].
      double dx = s.b().x - s.a().x, dy = s.b().y - s.a().y;
      double len2 = dx * dx + dy * dy;
      // param(t) = u0 + u1·t.
      double u0 = ((p.x0 - s.a().x) * dx + (p.y0 - s.a().y) * dy) / len2;
      double u1 = (p.x1 * dx + p.y1 * dy) / len2;
      if (u1 == 0) {
        if (u0 >= 0 && u0 <= 1) hits.push_back(u.interval());
        continue;
      }
      double t_at0 = -u0 / u1;
      double t_at1 = (1 - u0) / u1;
      if (t_at0 > t_at1) std::swap(t_at0, t_at1);
      auto window = TimeInterval::Make(t_at0, t_at1, true, true);
      if (!window.ok()) continue;
      if (auto iv = TimeInterval::Intersect(u.interval(), *window)) {
        hits.push_back(*iv);
      }
    }
  }
  return mp.AtPeriods(Periods::FromIntervals(std::move(hits)));
}

Result<MovingBool> Inside(const MovingPoint& mp, const Line& l) {
  Result<MovingPoint> on = Intersection(mp, l);
  if (!on.ok()) return on.status();
  Periods on_periods = on->DefTime();
  // true on on_periods, false on the rest of mp's deftime.
  Periods off_periods = Periods::Difference(mp.DefTime(), on_periods);
  std::vector<UBool> units;
  for (const TimeInterval& iv : on_periods.intervals()) {
    units.push_back(*UBool::Make(iv, true));
  }
  for (const TimeInterval& iv : off_periods.intervals()) {
    units.push_back(*UBool::Make(iv, false));
  }
  return MovingBool::Make(std::move(units));
}

Result<MovingBool> Equals(const MovingPoint& a, const MovingPoint& b) {
  MappingBuilder<UBool> builder;
  // Function-local thread_local scratch: reused across calls (one
  // allocation per thread, not per tuple pair), and safe under the
  // parallel query operators.
  thread_local RefinementScratch rp;
  MODB_RETURN_IF_ERROR(RefinementPartitionInto(a, b, &rp));
  for (const RefinementEntry& e : rp) {
    if (!e.HasBoth()) continue;
    CoincidenceResult co = Coincidence(a.unit(std::size_t(e.unit_a)).motion(),
                                       b.unit(std::size_t(e.unit_b)).motion());
    if (co.always) {
      auto unit = UBool::Make(e.interval, true);
      MODB_RETURN_IF_ERROR(builder.Append(*unit));
      continue;
    }
    std::vector<Instant> breaks;
    for (Instant t : co.instants) {
      if (e.interval.Contains(t)) breaks.push_back(t);
    }
    MODB_RETURN_IF_ERROR(EmitPiecewiseBool(
        e.interval, std::move(breaks), CmpOp::kEq,
        [](Instant) { return false; },  // Off the breaks they differ.
        &builder));
  }
  return builder.Build();
}

// ---------------------------------------------------------------------------
// inside (Section 5.2).
// ---------------------------------------------------------------------------

Result<MovingBool> Inside(const MovingPoint& mp, const MovingRegion& mr,
                          const InsideOptions& options) {
  MappingBuilder<UBool> builder;
  // Function-local thread_local scratch: reused across calls (one
  // allocation per thread, not per tuple pair), and safe under the
  // parallel query operators.
  thread_local RefinementScratch rp;
  MODB_RETURN_IF_ERROR(RefinementPartitionInto(mp, mr, &rp));
  for (const RefinementEntry& e : rp) {
    if (!e.HasBoth()) continue;
    const UPoint& up = mp.unit(std::size_t(e.unit_a));
    const URegion& ur = mr.unit(std::size_t(e.unit_b));
    if (options.use_bounding_boxes) {
      // The paper's fast path: when the 3D bounding boxes are disjoint,
      // no crossing computation is needed; the point is outside for the
      // whole refinement interval.
      Rect pr = Rect::Of(up.ValueAt(e.interval.start()));
      pr.Extend(up.ValueAt(e.interval.end()));
      Cube pc(pr, e.interval.start(), e.interval.end());
      if (!Cube::Intersect(pc, ur.BoundingCube())) {
        auto unit = UBool::Make(e.interval, false);
        MODB_RETURN_IF_ERROR(builder.Append(*unit));
        continue;
      }
    }
    std::vector<MSeg> msegs = ur.AllMSegs();
    MODB_RETURN_IF_ERROR(InsideCore(
        up.motion(), e.interval, msegs,
        [&ur](Instant t) { return ur.Snapshot(t); }, &builder));
  }
  return builder.Build();
}

Result<MovingBool> Inside(const MovingPoint& mp, const Region& r) {
  std::vector<Seg> boundary = r.Segments();
  std::vector<MSeg> msegs;
  msegs.reserve(boundary.size());
  for (const Seg& s : boundary) {
    auto m = MSeg::StaticSeg(s);
    if (!m.ok()) return m.status();
    msegs.push_back(*m);
  }
  MappingBuilder<UBool> builder;
  for (const UPoint& up : mp.units()) {
    Rect pr = Rect::Of(up.StartPoint());
    pr.Extend(up.EndPoint());
    if (!Rect::Intersect(pr, r.BoundingBox())) {
      auto unit = UBool::Make(up.interval(), false);
      MODB_RETURN_IF_ERROR(builder.Append(*unit));
      continue;
    }
    MODB_RETURN_IF_ERROR(InsideCore(
        up.motion(), up.interval(), msegs,
        [&boundary](Instant) { return boundary; }, &builder));
  }
  return builder.Build();
}

Result<MovingBool> Inside(const Point& p, const MovingRegion& mr) {
  // The Section 5.2 scheme with a stationary 3D line: the boundary's
  // moving segments sweep over p at the crossing instants.
  LinearMotion still{p.x, 0, p.y, 0};
  MappingBuilder<UBool> builder;
  for (const URegion& ur : mr.units()) {
    Cube pc(Rect::Of(p), ur.interval().start(), ur.interval().end());
    if (!Cube::Intersect(pc, ur.BoundingCube())) {
      auto unit = UBool::Make(ur.interval(), false);
      MODB_RETURN_IF_ERROR(builder.Append(*unit));
      continue;
    }
    MODB_RETURN_IF_ERROR(InsideCore(
        still, ur.interval(), ur.AllMSegs(),
        [&ur](Instant t) { return ur.Snapshot(t); }, &builder));
  }
  return builder.Build();
}

bool Passes(const MovingRegion& mr, const Point& p) {
  Result<MovingBool> in = Inside(p, mr);
  if (!in.ok()) return false;
  for (const UBool& u : in->units()) {
    if (u.value()) return true;
  }
  return false;
}

Result<MovingPoint> At(const MovingPoint& mp, const MovingRegion& mr) {
  Result<MovingBool> in = Inside(mp, mr);
  if (!in.ok()) return in.status();
  return mp.AtPeriods(WhenTrue(*in));
}

Result<MovingPoint> At(const MovingPoint& mp, const Region& r) {
  Result<MovingBool> in = Inside(mp, r);
  if (!in.ok()) return in.status();
  return mp.AtPeriods(WhenTrue(*in));
}

}  // namespace modb
