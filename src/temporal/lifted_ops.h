// Temporally lifted operations ([GBE+98] Section 2; paper Sections 2 and
// 5): operations on non-temporal types made applicable to moving types,
// plus the projection/interaction operations of the temporal algebra.
//
// All binary operations follow the generic scheme of Section 5.2: compute
// the refinement partition, solve the problem per unit pair, concatenate
// (merging value-equal adjacent units).

#ifndef MODB_TEMPORAL_LIFTED_OPS_H_
#define MODB_TEMPORAL_LIFTED_OPS_H_

#include "core/range_set.h"
#include "spatial/line.h"
#include "spatial/region.h"
#include "temporal/moving.h"

namespace modb {

// ---------------------------------------------------------------------------
// moving(bool) algebra.
// ---------------------------------------------------------------------------

/// Logical negation, lifted.
MovingBool Not(const MovingBool& b);
/// Logical and/or, lifted; defined where both operands are defined.
Result<MovingBool> And(const MovingBool& a, const MovingBool& b);
Result<MovingBool> Or(const MovingBool& a, const MovingBool& b);
/// The time periods during which the moving bool is true (the `when`
/// projection used to restrict other moving values).
Periods WhenTrue(const MovingBool& b);

// ---------------------------------------------------------------------------
// moving(real) operations.
// ---------------------------------------------------------------------------

/// Lifted Euclidean distance between two moving points; each refinement
/// unit yields one ureal with the root flag set (the paper's motivation
/// for the √quadratic class, Section 3.2.5).
Result<MovingReal> LiftedDistance(const MovingPoint& a, const MovingPoint& b);
/// Lifted distance between a moving and a fixed point.
Result<MovingReal> LiftedDistance(const MovingPoint& a, const Point& p);

/// Lifted distance between a moving point and a moving point *set*: the
/// pointwise minimum over the members. Exact: within a refinement unit
/// the minimum switches members only where two squared distances (both
/// quadratics) are equal, so the result is piecewise √quadratic.
Result<MovingReal> LiftedDistance(const MovingPoint& a,
                                  const MovingPoints& b);

/// Lifted inside of a moving point in a moving point set: true exactly
/// at the instants the point coincides with some member.
Result<MovingBool> Inside(const MovingPoint& a, const MovingPoints& b);

/// Global minimum/maximum of a moving real (over its deftime).
/// Undefined (returns empty optional) for the empty moving real.
std::optional<double> MinValue(const MovingReal& m);
std::optional<double> MaxValue(const MovingReal& m);

/// atmin/atmax: the moving real restricted to the times where it takes
/// its global minimum/maximum value (Section 2).
Result<MovingReal> AtMin(const MovingReal& m);
Result<MovingReal> AtMax(const MovingReal& m);

enum class CmpOp { kLt, kLe, kGt, kGe, kEq, kNe };

/// Lifted comparison of a moving real against a constant, e.g.
/// distance(p, q) < 0.5.
Result<MovingBool> Compare(const MovingReal& m, double c, CmpOp op);

/// Lifted comparison of two moving reals. Supported exactly when at most
/// one operand per refinement unit carries the root flag (the difference
/// must reduce to sign analysis of a quadratic); returns
/// kUnimplemented otherwise.
Result<MovingBool> Compare(const MovingReal& a, const MovingReal& b,
                           CmpOp op);

/// Lifted sum/difference of moving reals (non-root units only; the class
/// is not closed under adding square roots — mirrors the paper's
/// discussion of closure limits).
Result<MovingReal> Plus(const MovingReal& a, const MovingReal& b);
Result<MovingReal> Minus(const MovingReal& a, const MovingReal& b);

/// rangevalues: projection of a moving real onto its value range.
RealRange RangeValues(const MovingReal& m);

/// at: the moving real restricted to the times its value equals v.
Result<MovingReal> At(const MovingReal& m, double v);

/// at with a range argument: restriction to the times the value lies in
/// the (closed) interval [lo, hi].
Result<MovingReal> AtRange(const MovingReal& m, double lo, double hi);

/// passes: does the moving real ever take the value v?
bool Passes(const MovingReal& m, double v);

// ---------------------------------------------------------------------------
// moving(point) operations.
// ---------------------------------------------------------------------------

/// trajectory: the 1-dimensional parts of the projection of a moving
/// point into the plane (Section 2). Stationary episodes contribute no
/// segments (use Locations for the 0-dimensional parts).
Line Trajectory(const MovingPoint& mp);

/// The 0-dimensional projection parts: positions of stationary units.
Points Locations(const MovingPoint& mp);

/// speed: |velocity|, constant per unit.
Result<MovingReal> Speed(const MovingPoint& mp);

/// mdirection: heading in degrees [0, 360), constant per unit; stationary
/// units are skipped (undefined direction).
Result<MovingReal> MDirection(const MovingPoint& mp);

/// velocity: the derivative of a upoint is representable (constant per
/// unit); returned as a moving point whose position encodes the velocity
/// vector.
Result<MovingPoint> Velocity(const MovingPoint& mp);

/// passes: does the moving point ever run through p?
bool Passes(const MovingPoint& mp, const Point& p);

/// at: the moving point restricted to the times it is located at p.
Result<MovingPoint> At(const MovingPoint& mp, const Point& p);

/// Lifted intersection with a line value: the moving point restricted to
/// the times it lies on `l` — isolated crossing instants, plus whole
/// intervals when a unit's motion rides along a segment of the line.
Result<MovingPoint> Intersection(const MovingPoint& mp, const Line& l);

/// Lifted inside against a line value (derived from Intersection): true
/// exactly while the moving point lies on the line; defined on the whole
/// deftime of mp.
Result<MovingBool> Inside(const MovingPoint& mp, const Line& l);

/// Lifted equality of two moving points.
Result<MovingBool> Equals(const MovingPoint& a, const MovingPoint& b);

// ---------------------------------------------------------------------------
// inside (Section 5.2).
// ---------------------------------------------------------------------------

/// Options for the moving-point/moving-region inside algorithm.
struct InsideOptions {
  /// Use the per-unit-pair 3D bounding-cube filter (the paper's O(n+m)
  /// fast path when the objects are far apart).
  bool use_bounding_boxes = true;
};

/// inside(mp, mr): when was the moving point inside the moving region?
/// Implements algorithm `inside` + `upoint_uregion_inside` of Section
/// 5.2: refinement partition, per pair intersection of the 3D line with
/// the moving-segment trapeziums, alternation of boolean units.
/// Result defined wherever both arguments are defined (a deliberate
/// strengthening of the paper's pseudo-code, which returns no units for
/// bounding-box-disjoint pairs).
Result<MovingBool> Inside(const MovingPoint& mp, const MovingRegion& mr,
                          const InsideOptions& options = {});

/// inside against a fixed region (region treated as static msegs).
Result<MovingBool> Inside(const MovingPoint& mp, const Region& r);

/// inside of a fixed point in a moving region: when does the region cover
/// p? (The dual of the Section 5.2 algorithm with a stationary 3D line.)
Result<MovingBool> Inside(const Point& p, const MovingRegion& mr);

/// passes lifted to regions: does the moving region ever cover p?
bool Passes(const MovingRegion& mr, const Point& p);

/// at: the moving point restricted to the times it is inside the moving
/// region (derived: atperiods(mp, whentrue(inside(mp, mr)))).
Result<MovingPoint> At(const MovingPoint& mp, const MovingRegion& mr);
Result<MovingPoint> At(const MovingPoint& mp, const Region& r);

}  // namespace modb

#endif  // MODB_TEMPORAL_LIFTED_OPS_H_
