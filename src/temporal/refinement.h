// The refinement partition of the time axis (Figure 8): given two unit
// lists ordered by time interval, a parallel scan produces the common
// subdivision, pairing each refinement interval with the unit (if any) of
// each mapping valid on it. This is the generic first stage of every
// binary lifted operation (Section 5.2: "algorithms for binary operations
// on moving objects can generally be reduced to simpler algorithms on
// pairs of units").

#ifndef MODB_TEMPORAL_REFINEMENT_H_
#define MODB_TEMPORAL_REFINEMENT_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "core/interval.h"
#include "core/status.h"
#include "obs/metrics.h"
#include "temporal/mapping.h"

namespace modb {

/// One interval of the refinement partition. unit_a/unit_b are indices
/// into the respective mappings, or kNoUnit when that mapping is not
/// defined on the interval. Indices are int32_t; RefinementPartitionInto
/// rejects mappings with more units than int32_t can address rather than
/// letting the narrowing wrap.
struct RefinementEntry {
  static constexpr std::int32_t kNoUnit = -1;

  TimeInterval interval = TimeInterval::At(0);
  std::int32_t unit_a = kNoUnit;
  std::int32_t unit_b = kNoUnit;

  bool HasBoth() const { return unit_a != kNoUnit && unit_b != kNoUnit; }
};

/// Largest unit count addressable by a RefinementEntry index.
inline constexpr std::size_t kMaxRefinementUnits =
    std::size_t(std::numeric_limits<std::int32_t>::max());

namespace refinement_internal {

/// The part of `whole` strictly before `common` (sharing whole's left
/// boundary), or nullopt when empty.
inline std::optional<TimeInterval> LeadingPiece(const TimeInterval& whole,
                                                const TimeInterval& common) {
  if (whole.start() < common.start()) {
    auto piece = TimeInterval::Make(whole.start(), common.start(),
                                    whole.left_closed(),
                                    !common.left_closed());
    if (piece.ok()) return *piece;
    return std::nullopt;
  }
  if (whole.start() == common.start() && whole.left_closed() &&
      !common.left_closed()) {
    return TimeInterval::At(whole.start());
  }
  return std::nullopt;
}

/// The part of `whole` strictly after `common`, or nullopt when empty.
inline std::optional<TimeInterval> TrailingPiece(const TimeInterval& whole,
                                                 const TimeInterval& common) {
  if (common.end() < whole.end()) {
    auto piece = TimeInterval::Make(common.end(), whole.end(),
                                    !common.right_closed(),
                                    whole.right_closed());
    if (piece.ok()) return *piece;
    return std::nullopt;
  }
  if (whole.end() == common.end() && whole.right_closed() &&
      !common.right_closed()) {
    return TimeInterval::At(whole.end());
  }
  return std::nullopt;
}

}  // namespace refinement_internal

/// Computes the refinement partition of the deftimes of two mappings in
/// O(n + m), appending into `*out` (cleared first). Reusing one scratch
/// vector across many pairs avoids the per-pair allocation that dominates
/// small-unit workloads (batch joins evaluate this per tuple pair).
/// Intervals where neither mapping is defined are omitted.
template <typename UA, typename UB>
Status RefinementPartitionInto(const Mapping<UA>& a, const Mapping<UB>& b,
                               std::vector<RefinementEntry>* out) {
  using refinement_internal::LeadingPiece;
  using refinement_internal::TrailingPiece;

  out->clear();
  const std::size_t n = a.NumUnits(), m = b.NumUnits();
  if (n > kMaxRefinementUnits || m > kMaxRefinementUnits) {
    return Status::OutOfRange(
        "refinement partition supports at most 2^31-1 units per mapping");
  }
  std::size_t i = 0, j = 0;
  // The not-yet-emitted remainder of the current unit on each side.
  std::optional<TimeInterval> cur_a =
      n ? std::optional(a.unit(0).interval()) : std::nullopt;
  std::optional<TimeInterval> cur_b =
      m ? std::optional(b.unit(0).interval()) : std::nullopt;
  auto advance_a = [&] {
    ++i;
    cur_a = (i < n) ? std::optional(a.unit(i).interval()) : std::nullopt;
  };
  auto advance_b = [&] {
    ++j;
    cur_b = (j < m) ? std::optional(b.unit(j).interval()) : std::nullopt;
  };
  auto ia = [&] { return std::int32_t(i); };
  auto ib = [&] { return std::int32_t(j); };

  while (cur_a || cur_b) {
    if (!cur_b) {
      out->push_back({*cur_a, ia(), RefinementEntry::kNoUnit});
      advance_a();
      continue;
    }
    if (!cur_a) {
      out->push_back({*cur_b, RefinementEntry::kNoUnit, ib()});
      advance_b();
      continue;
    }
    if (TimeInterval::RDisjoint(*cur_a, *cur_b)) {
      out->push_back({*cur_a, ia(), RefinementEntry::kNoUnit});
      advance_a();
      continue;
    }
    if (TimeInterval::RDisjoint(*cur_b, *cur_a)) {
      out->push_back({*cur_b, RefinementEntry::kNoUnit, ib()});
      advance_b();
      continue;
    }
    auto common = TimeInterval::Intersect(*cur_a, *cur_b);
    // Overlap implies a non-empty intersection.
    if (auto lead = LeadingPiece(*cur_a, *common)) {
      out->push_back({*lead, ia(), RefinementEntry::kNoUnit});
    }
    if (auto lead = LeadingPiece(*cur_b, *common)) {
      out->push_back({*lead, RefinementEntry::kNoUnit, ib()});
    }
    out->push_back({*common, ia(), ib()});
    std::optional<TimeInterval> trail_a = TrailingPiece(*cur_a, *common);
    std::optional<TimeInterval> trail_b = TrailingPiece(*cur_b, *common);
    if (trail_a) {
      cur_a = trail_a;
    } else {
      advance_a();
    }
    if (trail_b) {
      cur_b = trail_b;
    } else {
      advance_b();
    }
  }
  MODB_COUNTER_INC("temporal.refinement.partitions");
  MODB_COUNTER_ADD("temporal.refinement.entries", out->size());
  return Status::OK();
}

/// Allocating convenience wrapper around RefinementPartitionInto.
template <typename UA, typename UB>
std::vector<RefinementEntry> RefinementPartition(const Mapping<UA>& a,
                                                 const Mapping<UB>& b) {
  std::vector<RefinementEntry> out;
  Status s = RefinementPartitionInto(a, b, &out);
  // Only fails past 2^31-1 units per mapping; unreachable through the
  // validating factories on any realistic memory budget.
  assert(s.ok());
  (void)s;
  return out;
}

}  // namespace modb

#endif  // MODB_TEMPORAL_REFINEMENT_H_
