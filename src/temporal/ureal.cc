#include "temporal/ureal.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "core/real.h"

namespace modb {

std::vector<double> QuadraticRoots(double a, double b, double c) {
  std::vector<double> roots;
  if (a == 0) {
    if (b == 0) return roots;  // Constant: no isolated roots.
    roots.push_back(-c / b);
    return roots;
  }
  double disc = b * b - 4 * a * c;
  if (disc < 0) return roots;
  if (disc == 0) {
    roots.push_back(-b / (2 * a));
    return roots;
  }
  // Numerically stable quadratic formula.
  double sq = std::sqrt(disc);
  double q = -0.5 * (b + (b >= 0 ? sq : -sq));
  double r1 = q / a;
  double r2 = c / q;
  roots.push_back(std::min(r1, r2));
  roots.push_back(std::max(r1, r2));
  return roots;
}

Result<UReal> UReal::Make(TimeInterval interval, double a, double b, double c,
                          bool r) {
  if (r) {
    // The radicand must be non-negative on the unit interval: check the
    // endpoints and, if interior, the vertex of the parabola.
    auto poly = [&](double t) { return a * t * t + b * t + c; };
    double tol = kEpsilon * (1 + std::fabs(c));
    if (poly(interval.start()) < -tol || poly(interval.end()) < -tol) {
      return Status::InvalidArgument(
          "ureal: radicand negative at unit interval endpoint");
    }
    if (a != 0) {
      double vertex = -b / (2 * a);
      if (interval.ContainsOpen(vertex) && poly(vertex) < -tol) {
        return Status::InvalidArgument(
            "ureal: radicand negative inside unit interval");
      }
    }
  }
  return UReal(interval, a, b, c, r);
}

double UReal::ValueAt(Instant t) const {
  double v = a_ * t * t + b_ * t + c_;
  if (!root_) return v;
  return v <= 0 ? 0 : std::sqrt(v);
}

URealExtrema UReal::Extrema() const {
  std::vector<Instant> candidates = {interval_.start(), interval_.end()};
  if (a_ != 0) {
    double vertex = -b_ / (2 * a_);
    if (interval_.ContainsOpen(vertex)) candidates.push_back(vertex);
  }
  URealExtrema ex{ValueAt(candidates[0]), candidates[0],
                  ValueAt(candidates[0]), candidates[0]};
  for (Instant t : candidates) {
    double v = ValueAt(t);
    if (v < ex.min_value) {
      ex.min_value = v;
      ex.min_at = t;
    }
    if (v > ex.max_value) {
      ex.max_value = v;
      ex.max_at = t;
    }
  }
  return ex;
}

std::vector<Instant> UReal::InstantsAtValue(double v) const {
  // Solve ι(t) = v. For the root case: √poly = v requires v >= 0 and
  // poly = v².
  if (EqualsEverywhere(v)) return {};
  double target_c = c_;
  double rhs = v;
  if (root_) {
    if (v < 0) return {};
    rhs = v * v;
  }
  std::vector<double> roots = QuadraticRoots(a_, b_, target_c - rhs);
  std::vector<Instant> out;
  for (double t : roots) {
    if (interval_.Contains(t)) out.push_back(t);
  }
  return out;
}

bool UReal::EqualsEverywhere(double v) const {
  if (a_ != 0 || b_ != 0) return false;
  if (!root_) return c_ == v;
  return v >= 0 && ApproxEq(c_, v * v);
}

std::string UReal::ToString() const {
  std::ostringstream os;
  os << "ureal" << interval_.ToString() << " ";
  if (root_) os << "sqrt(";
  os << a_ << "t^2 + " << b_ << "t + " << c_;
  if (root_) os << ")";
  return os.str();
}

}  // namespace modb
