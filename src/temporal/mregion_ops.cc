#include "temporal/mregion_ops.h"

#include <cmath>
#include <vector>

#include "core/real.h"
#include "spatial/overlay.h"

namespace modb {

namespace {

struct QuadFit {
  double a, b, c;
};

// Interpolates the quadratic through (t1,v1), (t2,v2), (t3,v3).
QuadFit FitQuadratic(double t1, double v1, double t2, double v2, double t3,
                     double v3) {
  double d12 = (v1 - v2) / (t1 - t2);
  double d23 = (v2 - v3) / (t2 - t3);
  double a = (d12 - d23) / (t1 - t3);
  double b = d12 - a * (t1 + t2);
  double c = v1 - a * t1 * t1 - b * t1;
  return {SnapZero(a), SnapZero(b), c};
}

}  // namespace

Result<MovingReal> Area(const MovingRegion& mr) {
  MappingBuilder<UReal> builder;
  builder.Reserve(mr.NumUnits());
  for (const URegion& u : mr.units()) {
    const TimeInterval& iv = u.interval();
    double dur = Duration(iv);
    if (dur == 0) {
      auto unit = UReal::Constant(iv, u.ValueAt(iv.start()).Area());
      if (!unit.ok()) return unit.status();
      MODB_RETURN_IF_ERROR(builder.Append(*unit));
      continue;
    }
    // Three interior samples determine the exact quadratic (interior
    // instants avoid endpoint degeneracies).
    double t1 = iv.start() + dur * 0.25;
    double t2 = iv.start() + dur * 0.5;
    double t3 = iv.start() + dur * 0.75;
    QuadFit q = FitQuadratic(t1, u.ValueAt(t1).Area(), t2,
                             u.ValueAt(t2).Area(), t3, u.ValueAt(t3).Area());
    auto unit = UReal::Make(iv, q.a, q.b, q.c, false);
    if (!unit.ok()) return unit.status();
    MODB_RETURN_IF_ERROR(builder.Append(*unit));
  }
  return builder.Build();
}

Result<MovingReal> PerimeterApprox(const MovingRegion& mr, int subdivisions) {
  if (subdivisions < 1) {
    return Status::InvalidArgument("subdivisions must be >= 1");
  }
  MappingBuilder<UReal> builder;
  builder.Reserve(mr.NumUnits() * std::size_t(subdivisions));
  for (const URegion& u : mr.units()) {
    const TimeInterval& iv = u.interval();
    double dur = Duration(iv);
    if (dur == 0) {
      auto unit = UReal::Constant(iv, u.ValueAt(iv.start()).Perimeter());
      if (!unit.ok()) return unit.status();
      MODB_RETURN_IF_ERROR(builder.Append(*unit));
      continue;
    }
    auto perimeter_at = [&u](Instant t) {
      double total = 0;
      for (const MSeg& m : u.AllMSegs()) {
        if (auto s = m.ValueAt(t)) total += s->Length();
      }
      return total;
    };
    for (int k = 0; k < subdivisions; ++k) {
      double s = iv.start() + dur * k / subdivisions;
      double e = iv.start() + dur * (k + 1) / subdivisions;
      bool lc = (k == 0) ? iv.left_closed() : true;
      bool rc = (k == subdivisions - 1) ? iv.right_closed() : false;
      auto sub = TimeInterval::Make(s, e, lc, rc);
      if (!sub.ok()) return sub.status();
      double h = (e - s);
      QuadFit q = FitQuadratic(s + h * 0.25, perimeter_at(s + h * 0.25),
                               s + h * 0.5, perimeter_at(s + h * 0.5),
                               s + h * 0.75, perimeter_at(s + h * 0.75));
      auto unit = UReal::Make(*sub, q.a, q.b, q.c, false);
      if (!unit.ok()) return unit.status();
      MODB_RETURN_IF_ERROR(builder.Append(*unit));
    }
  }
  return builder.Build();
}

Result<Region> Traversed(const MovingRegion& mr) {
  Region acc;
  auto merge = [&acc](const Region& r) -> Status {
    if (r.IsEmpty()) return Status::OK();
    Result<Region> u = Union(acc, r);
    if (!u.ok()) return u.status();
    acc = std::move(*u);
    return Status::OK();
  };
  for (const URegion& u : mr.units()) {
    const TimeInterval& iv = u.interval();
    // Snapshots at the exact ends: ValueAt applies the ι_s/ι_e cleanup
    // there, and exact endpoints keep the snapshots' vertices aligned
    // with the swept-quad corners (no sliver geometry in the overlay).
    MODB_RETURN_IF_ERROR(merge(u.ValueAt(iv.start())));
    if (Duration(iv) > 0) MODB_RETURN_IF_ERROR(merge(u.ValueAt(iv.end())));
    // Swept trapezium of every moving segment: any interior point of the
    // moving region at an intermediate instant either lies in the start
    // snapshot or some boundary segment swept over it.
    for (const MSeg& m : u.AllMSegs()) {
      Point s0 = m.s().At(iv.start());
      Point e0 = m.e().At(iv.start());
      Point s1 = m.s().At(iv.end());
      Point e1 = m.e().At(iv.end());
      std::vector<Point> quad = {s0, e0, e1, s1};
      // Drop consecutive duplicates (degenerate ends).
      std::vector<Point> ring;
      for (const Point& p : quad) {
        if (ring.empty() || !(ring.back() == p)) ring.push_back(p);
      }
      while (ring.size() > 1 && ring.front() == ring.back()) ring.pop_back();
      if (ring.size() < 3) continue;
      if (std::fabs(SignedArea(ring)) < kEpsilon) continue;
      Result<Region> sweep = Region::FromPolygon(ring);
      if (!sweep.ok()) continue;  // Degenerate sweep; covered by snapshots.
      MODB_RETURN_IF_ERROR(merge(*sweep));
    }
  }
  return acc;
}

}  // namespace modb
