// The const(α) unit type constructor (Section 3.2.5): a temporal unit
// whose unit function is constant — ι(v, t) = v. This is the sliced
// representation for discretely changing values; mapping(const(int)),
// mapping(const(string)) and mapping(const(bool)) realize moving(int),
// moving(string) and moving(bool) (Table 3).

#ifndef MODB_TEMPORAL_CONST_UNIT_H_
#define MODB_TEMPORAL_CONST_UNIT_H_

#include <string>
#include <utility>

#include "core/interval.h"
#include "core/status.h"

namespace modb {

/// A unit (i, v) with constant unit function. T must be regular
/// (copyable, equality comparable).
template <typename T>
class ConstUnit {
 public:
  using ValueType = T;

  static Result<ConstUnit> Make(TimeInterval interval, T value) {
    // D_const(α) = Interval(Instant) × D'_α: undefined values are not
    // representable here by construction (T is the defined carrier).
    return ConstUnit(interval, std::move(value));
  }

  const TimeInterval& interval() const { return interval_; }
  const T& value() const { return value_; }

  /// ι(v, t) = v.
  T ValueAt(Instant /*t*/) const { return value_; }

  /// Unit-function equality: the adjacency constraint of Mapping(S)
  /// ("adjacent intervals ⇒ distinct values") compares these.
  static bool FunctionEqual(const ConstUnit& a, const ConstUnit& b) {
    return a.value_ == b.value_;
  }

  /// The same unit function on a sub-interval (used by atperiods).
  Result<ConstUnit> WithInterval(TimeInterval sub) const {
    return Make(sub, value_);
  }

 private:
  ConstUnit(TimeInterval interval, T value)
      : interval_(interval), value_(std::move(value)) {}

  TimeInterval interval_;
  T value_;
};

using UBool = ConstUnit<bool>;
using UInt = ConstUnit<int64_t>;
using UString = ConstUnit<std::string>;

}  // namespace modb

#endif  // MODB_TEMPORAL_CONST_UNIT_H_
