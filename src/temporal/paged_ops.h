// Query operators over *spilled* mappings: the Section-5 algorithms
// (atinstant, present) evaluated against values that live on secondary
// memory as checksummed pages (storage/spill.h) rather than in RAM. Each
// reader loads the mapping on demand through a BufferPool — cold calls
// pay one device read per page, warm calls none — then runs the same
// batch kernels as the in-memory path, so results are identical
// regardless of where the value resides.
//
// The entrypoints share the unified db/query.h shape: the last
// parameter is a const ExecOptions& supplying the stats sink and the
// (validated) parallel policy, exactly like their in-memory twins in
// temporal/batch_ops.h.

#ifndef MODB_TEMPORAL_PAGED_OPS_H_
#define MODB_TEMPORAL_PAGED_OPS_H_

#include <cstdint>
#include <vector>

#include "core/instant.h"
#include "core/intime.h"
#include "core/status.h"
#include "storage/spill.h"
#include "temporal/batch_ops.h"
#include "temporal/mapping.h"

namespace modb {

/// atinstant over ascending instants against a spilled mapping; the paged
/// counterpart of AtInstantBatchInto (identical output).
template <typename U>
Status AtInstantBatchSpilled(Spilled<Mapping<U>>* value, BufferPool* pool,
                             const std::vector<Instant>& instants,
                             std::vector<Intime<typename U::ValueType>>* out,
                             const ExecOptions& options = {}) {
  Result<const Mapping<U>*> m = value->Load(pool, /*build_search_index=*/true);
  if (!m.ok()) return m.status();
  BatchScratch scratch;
  return AtInstantBatchInto(**m, instants, out, &scratch, options);
}

/// present over ascending instants against a spilled mapping; the paged
/// counterpart of PresentBatchInto.
template <typename U>
Status PresentBatchSpilled(Spilled<Mapping<U>>* value, BufferPool* pool,
                           const std::vector<Instant>& instants,
                           std::vector<std::uint8_t>* out,
                           const ExecOptions& options = {}) {
  Result<const Mapping<U>*> m = value->Load(pool, /*build_search_index=*/true);
  if (!m.ok()) return m.status();
  return PresentBatchInto(**m, instants, out, options);
}

/// present at a single instant against a spilled mapping.
template <typename U>
Result<bool> PresentSpilled(Spilled<Mapping<U>>* value, BufferPool* pool,
                            Instant t, const ExecOptions& options = {}) {
  MODB_RETURN_IF_ERROR(ValidateParallelOptions(options.parallel));
  Result<const Mapping<U>*> m = value->Load(pool, /*build_search_index=*/true);
  if (!m.ok()) return m.status();
  return (*m)->Present(t);
}

}  // namespace modb

#endif  // MODB_TEMPORAL_PAGED_OPS_H_
