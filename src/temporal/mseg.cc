#include "temporal/mseg.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "core/real.h"
#include "temporal/ureal.h"

namespace modb {

namespace {

// Relative scale of a motion's coefficients, for tolerance decisions.
double MotionScale(const LinearMotion& m) {
  return 1.0 + std::fabs(m.x0) + std::fabs(m.x1) + std::fabs(m.y0) +
         std::fabs(m.y1);
}

}  // namespace

Result<MSeg> MSeg::Make(LinearMotion s, LinearMotion e) {
  if (s == e) {
    return Status::InvalidArgument("mseg endpoints have identical motion");
  }
  // Coplanarity (non-rotation): (P_e(0) - P_s(0)) · (d_s × d_e) == 0 for
  // the 3D direction vectors d = (x1, y1, 1). Expands to
  //   wx (y1s - y1e) + wy (x1e - x1s) == 0,   w = offset at t = 0.
  double wx = e.x0 - s.x0;
  double wy = e.y0 - s.y0;
  double det = wx * (s.y1 - e.y1) + wy * (e.x1 - s.x1);
  double tol = kEpsilon * MotionScale(s) * MotionScale(e);
  if (std::fabs(det) > tol) {
    return Status::InvalidArgument(
        "mseg endpoints are not coplanar (rotating segment)");
  }
  if (e < s) std::swap(s, e);
  return MSeg(s, e);
}

Result<MSeg> MSeg::FromEndSegments(Instant t0, const Seg& at_start,
                                   Instant t1, const Seg& at_end) {
  if (t1 <= t0) {
    return Status::InvalidArgument("mseg requires t0 < t1");
  }
  double dur = t1 - t0;
  auto motion = [&](const Point& p0, const Point& p1) {
    double x1 = (p1.x - p0.x) / dur;
    double y1 = (p1.y - p0.y) / dur;
    return LinearMotion{p0.x - x1 * t0, x1, p0.y - y1 * t0, y1};
  };
  return Make(motion(at_start.a(), at_end.a()),
              motion(at_start.b(), at_end.b()));
}

std::optional<Seg> MSeg::ValueAt(Instant t) const {
  Point p = s_.At(t);
  Point q = e_.At(t);
  if (p == q) return std::nullopt;
  auto seg = Seg::Make(p, q);
  if (!seg.ok()) return std::nullopt;
  return *seg;
}

std::vector<Instant> MSeg::DegenerationTimes() const {
  CoincidenceResult co = Coincidence(s_, e_);
  return co.instants;  // `always` is impossible: Make rejects s == e.
}

std::string MSeg::ToString() const {
  std::ostringstream os;
  os << "mseg[(" << s_.x0 << "+" << s_.x1 << "t, " << s_.y0 << "+" << s_.y1
     << "t) - (" << e_.x0 << "+" << e_.x1 << "t, " << e_.y0 << "+" << e_.y1
     << "t)]";
  return os.str();
}

MSegCrossings CrossingTimes(const LinearMotion& p, const MSeg& m,
                            const TimeInterval& within) {
  MSegCrossings out;
  // A(t) = e(t) - s(t), B(t) = p(t) - s(t); the point lies on the
  // supporting line when cross(A, B) = 0, a quadratic in t.
  double ax0 = m.e().x0 - m.s().x0, ax1 = m.e().x1 - m.s().x1;
  double ay0 = m.e().y0 - m.s().y0, ay1 = m.e().y1 - m.s().y1;
  double bx0 = p.x0 - m.s().x0, bx1 = p.x1 - m.s().x1;
  double by0 = p.y0 - m.s().y0, by1 = p.y1 - m.s().y1;
  double c2 = ax1 * by1 - ay1 * bx1;
  double c1 = ax0 * by1 + ax1 * by0 - ay0 * bx1 - ay1 * bx0;
  double c0 = ax0 * by0 - ay0 * bx0;
  double scale = 1 + std::fabs(ax0) + std::fabs(ay0) + std::fabs(bx0) +
                 std::fabs(by0);
  double tol = kEpsilon * scale * scale;
  if (std::fabs(c2) <= tol && std::fabs(c1) <= tol && std::fabs(c0) <= tol) {
    out.always_collinear = true;
    return out;
  }
  std::vector<double> roots = QuadraticRoots(c2, c1, c0);
  for (double t : roots) {
    if (!within.Contains(t)) continue;
    // Betweenness: B(t) projected onto A(t) must fall within [0, |A|²].
    double axt = ax0 + ax1 * t, ayt = ay0 + ay1 * t;
    double bxt = bx0 + bx1 * t, byt = by0 + by1 * t;
    double len2 = axt * axt + ayt * ayt;
    if (len2 == 0) continue;  // Segment degenerate at t.
    double u = (bxt * axt + byt * ayt) / len2;
    if (u >= -1e-9 && u <= 1 + 1e-9) out.times.push_back(t);
  }
  std::sort(out.times.begin(), out.times.end());
  return out;
}

std::vector<Instant> ConfigurationEvents(const MSeg& a, const MSeg& b,
                                         const TimeInterval& within) {
  std::vector<Instant> events;
  auto add = [&](const MSegCrossings& c) {
    for (Instant t : c.times) events.push_back(t);
  };
  add(CrossingTimes(a.s(), b, within));
  add(CrossingTimes(a.e(), b, within));
  add(CrossingTimes(b.s(), a, within));
  add(CrossingTimes(b.e(), a, within));
  for (Instant t : a.DegenerationTimes()) {
    if (within.Contains(t)) events.push_back(t);
  }
  for (Instant t : b.DegenerationTimes()) {
    if (within.Contains(t)) events.push_back(t);
  }
  std::sort(events.begin(), events.end());
  events.erase(std::unique(events.begin(), events.end()), events.end());
  return events;
}

}  // namespace modb
