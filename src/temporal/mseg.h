// Moving segments (Section 3.2.6):
//   MSeg = {(s, e) | s, e ∈ MPoint, s ≠ e, s coplanar with e}.
// Coplanarity of the two 3D lines is exactly the paper's non-rotation
// constraint: the segment keeps its direction throughout the motion, so a
// moving segment sweeps a planar trapezium (or triangle) in (x, y, t)
// space.

#ifndef MODB_TEMPORAL_MSEG_H_
#define MODB_TEMPORAL_MSEG_H_

#include <optional>
#include <string>
#include <vector>

#include "core/interval.h"
#include "core/status.h"
#include "spatial/seg.h"
#include "temporal/upoints.h"

namespace modb {

class MSeg {
 public:
  /// Validating factory: rejects identical endpoint motions and motions
  /// violating the coplanarity (non-rotation) constraint. Endpoints are
  /// stored in lexicographic quadruple order (the subarray order of
  /// Section 4.2).
  static Result<MSeg> Make(LinearMotion s, LinearMotion e);

  /// Convenience: the moving segment interpolating segment `at_start` at
  /// time t0 to segment `at_end` at time t1 (matching a-to-a, b-to-b).
  /// This is how Figure 5-style discrete representations of continuously
  /// moving lines are constructed.
  static Result<MSeg> FromEndSegments(Instant t0, const Seg& at_start,
                                      Instant t1, const Seg& at_end);

  /// A non-moving segment.
  static Result<MSeg> StaticSeg(const Seg& s) {
    return Make(LinearMotion{s.a().x, 0, s.a().y, 0},
                LinearMotion{s.b().x, 0, s.b().y, 0});
  }

  const LinearMotion& s() const { return s_; }
  const LinearMotion& e() const { return e_; }

  /// ι((s,e), t) as a segment; nullopt when the segment degenerates to a
  /// point at t (allowed only at unit-interval endpoints).
  std::optional<Seg> ValueAt(Instant t) const;

  /// Instants at which the segment degenerates to a point.
  std::vector<Instant> DegenerationTimes() const;

  friend bool operator==(const MSeg& a, const MSeg& b) {
    return a.s_ == b.s_ && a.e_ == b.e_;
  }
  friend bool operator<(const MSeg& a, const MSeg& b) {
    if (!(a.s_ == b.s_)) return a.s_ < b.s_;
    return a.e_ < b.e_;
  }

  std::string ToString() const;

 private:
  MSeg(LinearMotion s, LinearMotion e) : s_(s), e_(e) {}

  LinearMotion s_;
  LinearMotion e_;
};

/// Times (within `within`) at which the moving point `p` crosses the
/// moving segment `m`. `always_collinear` reports the degenerate case of
/// the point travelling along the segment's supporting moving line.
struct MSegCrossings {
  std::vector<Instant> times;
  bool always_collinear = false;
};

MSegCrossings CrossingTimes(const LinearMotion& p, const MSeg& m,
                            const TimeInterval& within);

/// Candidate instants at which the mutual configuration of two moving
/// segments can change (an endpoint of one crossing the other). Used by
/// the uline/uregion validity checks.
std::vector<Instant> ConfigurationEvents(const MSeg& a, const MSeg& b,
                                         const TimeInterval& within);

}  // namespace modb

#endif  // MODB_TEMPORAL_MSEG_H_
