// The upoints unit type (Section 3.2.6): a set of linearly moving points
// that stay pairwise distinct throughout the open unit interval
// (condition (i) of D_upoints), and pairwise distinct at the single
// instant for degenerate intervals (condition (ii)).

#ifndef MODB_TEMPORAL_UPOINTS_H_
#define MODB_TEMPORAL_UPOINTS_H_

#include <string>
#include <vector>

#include "core/interval.h"
#include "core/status.h"
#include "spatial/bbox.h"
#include "spatial/points.h"
#include "temporal/upoint.h"

namespace modb {

class UPoints {
 public:
  using ValueType = Points;

  /// Validating factory: rejects motions that coincide at some instant of
  /// the open unit interval. Motions are stored in lexicographic order of
  /// their quadruples (the subarray order of Section 4.2).
  static Result<UPoints> Make(TimeInterval interval,
                              std::vector<LinearMotion> motions);

  /// Non-validating factory for the storage layer: reconstructs a unit
  /// whose invariants were established before serialization.
  static UPoints MakeTrusted(TimeInterval interval,
                             std::vector<LinearMotion> motions) {
    return UPoints(interval, std::move(motions));
  }

  const TimeInterval& interval() const { return interval_; }
  const std::vector<LinearMotion>& motions() const { return motions_; }
  std::size_t Size() const { return motions_.size(); }

  /// ι(M, t) = { ι(m, t) | m ∈ M }. At the (possibly degenerate)
  /// endpoints, distinct motions may collapse to the same point; the
  /// Points canonicalization performs the cleanup.
  Points ValueAt(Instant t) const;

  Cube BoundingCube() const;

  static bool FunctionEqual(const UPoints& a, const UPoints& b) {
    return a.motions_ == b.motions_;
  }

  Result<UPoints> WithInterval(TimeInterval sub) const {
    return Make(sub, motions_);
  }

  std::string ToString() const;

 private:
  UPoints(TimeInterval interval, std::vector<LinearMotion> motions)
      : interval_(interval), motions_(std::move(motions)) {}

  TimeInterval interval_;
  std::vector<LinearMotion> motions_;
};

/// Instants where two linear motions coincide: none, one, or "always"
/// (encoded by `always`). Used by the D_upoints validity check and by
/// lifted equality of moving points.
struct CoincidenceResult {
  bool always = false;
  std::vector<Instant> instants;  // At most one for non-parallel motions.
};

CoincidenceResult Coincidence(const LinearMotion& a, const LinearMotion& b);

}  // namespace modb

#endif  // MODB_TEMPORAL_UPOINTS_H_
