// The ureal unit type (Section 3.2.5): the unit function is
//   ι((a,b,c,r), t) = a·t² + b·t + c        if ¬r
//                   = √(a·t² + b·t + c)     if r.
//
// The paper motivates this choice as the closure class for the lifted
// size, perimeter and distance operations (Euclidean distance between two
// linearly moving points is the square root of a quadratic in t); the
// derivative operation is explicitly NOT closed in this class.

#ifndef MODB_TEMPORAL_UREAL_H_
#define MODB_TEMPORAL_UREAL_H_

#include <optional>
#include <string>
#include <vector>

#include "core/interval.h"
#include "core/status.h"

namespace modb {

/// Roots of a·t² + b·t + c = 0, sorted ascending (0, 1 or 2 entries; the
/// "identically zero" polynomial reports no roots — callers handle it via
/// IsZero checks).
std::vector<double> QuadraticRoots(double a, double b, double c);

/// Extremum (min and max) of a quadratic or √quadratic over an interval.
struct URealExtrema {
  double min_value;
  Instant min_at;
  double max_value;
  Instant max_at;
};

class UReal {
 public:
  using ValueType = double;

  /// Validating factory: when r (square root) is set, the polynomial must
  /// be non-negative on the whole unit interval.
  static Result<UReal> Make(TimeInterval interval, double a, double b,
                            double c, bool r);

  /// A constant unit (a = b = 0, c = value).
  static Result<UReal> Constant(TimeInterval interval, double value) {
    return Make(interval, 0, 0, value, false);
  }

  const TimeInterval& interval() const { return interval_; }
  double a() const { return a_; }
  double b() const { return b_; }
  double c() const { return c_; }
  bool root() const { return root_; }

  /// ι((a,b,c,r), t).
  double ValueAt(Instant t) const;

  /// Min/max of the unit function over the unit interval.
  URealExtrema Extrema() const;

  /// Instants in the unit interval where the unit function equals v,
  /// ascending. For a constant unit equal to v everywhere, returns empty
  /// (callers treat the whole interval as matching via EqualsEverywhere).
  std::vector<Instant> InstantsAtValue(double v) const;

  /// True iff the unit function is the constant v on the whole interval.
  bool EqualsEverywhere(double v) const;

  static bool FunctionEqual(const UReal& a, const UReal& b) {
    return a.a_ == b.a_ && a.b_ == b.b_ && a.c_ == b.c_ &&
           a.root_ == b.root_;
  }

  Result<UReal> WithInterval(TimeInterval sub) const {
    return Make(sub, a_, b_, c_, root_);
  }

  std::string ToString() const;

 private:
  UReal(TimeInterval interval, double a, double b, double c, bool r)
      : interval_(interval), a_(a), b_(b), c_(c), root_(r) {}

  TimeInterval interval_;
  double a_;
  double b_;
  double c_;
  bool root_;
};

}  // namespace modb

#endif  // MODB_TEMPORAL_UREAL_H_
