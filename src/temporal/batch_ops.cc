#include "temporal/batch_ops.h"

#include <cstddef>
#include <cstring>

#include "core/simd.h"
#include "temporal/moving.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#include <immintrin.h>
#define MODB_BATCH_AVX2 1
#endif

namespace modb {
namespace batch_internal {
namespace {

// The AVX2 kernel stores each Intime<Point> as one 32-byte vector row
// {instant, x, y, defined-as-low-byte}; these asserts pin the layout it
// depends on.
static_assert(sizeof(Intime<Point>) == 32);
static_assert(offsetof(Intime<Point>, instant) == 0);
static_assert(offsetof(Intime<Point>, value) == 8);
static_assert(offsetof(Intime<Point>, defined) == 24);
static_assert(offsetof(Point, x) == 0 && offsetof(Point, y) == 8);
static_assert(sizeof(Instant) == 8);

// Scalar reference cores. Evaluation is x0 + x1*t / y0 + y1*t — exactly
// LinearMotion::At, so the fast path reproduces the generic path's
// doubles bit for bit.

void EvalPositionsScalar(const MappingSearchIndex& ix, const Instant* ts,
                         const std::int32_t* idx, std::size_t n,
                         Intime<Point>* out) {
  const double* x0 = ix.motion_x0.data();
  const double* x1 = ix.motion_x1.data();
  const double* y0 = ix.motion_y0.data();
  const double* y1 = ix.motion_y1.data();
  for (std::size_t i = 0; i < n; ++i) {
    const std::int32_t j = idx[i];
    if (j < 0) {
      out[i] = Intime<Point>::Undefined();
      continue;
    }
    const double t = ts[i];
    out[i] = Intime<Point>(t, Point(x0[j] + x1[j] * t, y0[j] + y1[j] * t));
  }
}

void EvalPositionsXYScalar(const MappingSearchIndex& ix, const Instant* ts,
                           const std::int32_t* idx, std::size_t n, double* xs,
                           double* ys, std::uint8_t* defined) {
  const double* x0 = ix.motion_x0.data();
  const double* x1 = ix.motion_x1.data();
  const double* y0 = ix.motion_y0.data();
  const double* y1 = ix.motion_y1.data();
  for (std::size_t i = 0; i < n; ++i) {
    const std::int32_t j = idx[i];
    if (j < 0) {
      xs[i] = 0;
      ys[i] = 0;
      defined[i] = 0;
    } else {
      const double t = ts[i];
      xs[i] = x0[j] + x1[j] * t;
      ys[i] = y0[j] + y1[j] * t;
      defined[i] = 1;
    }
  }
}

#ifdef MODB_BATCH_AVX2

// AVX2 cores: masked i32 gathers over the packed coefficient arrays and
// explicit multiply-then-add (no FMA — the scalar baseline compiles
// without -mfma, and contraction would change the rounding). Undefined
// lanes are zeroed through the gather mask, matching
// Intime<Point>::Undefined() (instant 0, value (0,0), defined false).

__attribute__((target("avx2"))) void EvalPositionsAvx2(
    const MappingSearchIndex& ix, const Instant* ts, const std::int32_t* idx,
    std::size_t n, Intime<Point>* out) {
  const double* x0 = ix.motion_x0.data();
  const double* x1 = ix.motion_x1.data();
  const double* y0 = ix.motion_y0.data();
  const double* y1 = ix.motion_y1.data();
  const __m256d zero = _mm256_setzero_pd();
  const __m128i neg1 = _mm_set1_epi32(-1);
  const __m256i one64 = _mm256_set1_epi64x(1);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i j =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + i));
    // Lane mask: all-ones where the instant resolved to a unit. The
    // masked gathers never touch memory on undefined lanes, so j = -1
    // is safe even against empty coefficient arrays.
    const __m128i def32 = _mm_cmpgt_epi32(j, neg1);
    const __m256i def64 = _mm256_cvtepi32_epi64(def32);
    const __m256d mask = _mm256_castsi256_pd(def64);
    const __m256d vx0 = _mm256_mask_i32gather_pd(zero, x0, j, mask, 8);
    const __m256d vx1 = _mm256_mask_i32gather_pd(zero, x1, j, mask, 8);
    const __m256d vy0 = _mm256_mask_i32gather_pd(zero, y0, j, mask, 8);
    const __m256d vy1 = _mm256_mask_i32gather_pd(zero, y1, j, mask, 8);
    const __m256d t = _mm256_and_pd(_mm256_loadu_pd(ts + i), mask);
    const __m256d vx =
        _mm256_and_pd(_mm256_add_pd(vx0, _mm256_mul_pd(vx1, t)), mask);
    const __m256d vy =
        _mm256_and_pd(_mm256_add_pd(vy0, _mm256_mul_pd(vy1, t)), mask);
    // defined byte: 64-bit 0x1 on defined lanes, 0 otherwise — lands on
    // the bool at offset 24 with zeroed padding.
    const __m256d vd =
        _mm256_castsi256_pd(_mm256_and_si256(def64, one64));
    // 4x4 transpose from column vectors (t, x, y, d) to one 32-byte row
    // per output struct.
    const __m256d tmp0 = _mm256_unpacklo_pd(t, vx);   // t0 x0 t2 x2
    const __m256d tmp1 = _mm256_unpackhi_pd(t, vx);   // t1 x1 t3 x3
    const __m256d tmp2 = _mm256_unpacklo_pd(vy, vd);  // y0 d0 y2 d2
    const __m256d tmp3 = _mm256_unpackhi_pd(vy, vd);  // y1 d1 y3 d3
    double* dst = reinterpret_cast<double*>(out + i);
    _mm256_storeu_pd(dst + 0, _mm256_permute2f128_pd(tmp0, tmp2, 0x20));
    _mm256_storeu_pd(dst + 4, _mm256_permute2f128_pd(tmp1, tmp3, 0x20));
    _mm256_storeu_pd(dst + 8, _mm256_permute2f128_pd(tmp0, tmp2, 0x31));
    _mm256_storeu_pd(dst + 12, _mm256_permute2f128_pd(tmp1, tmp3, 0x31));
  }
  if (i < n) {
    EvalPositionsScalar(ix, ts + i, idx + i, n - i, out + i);
  }
}

__attribute__((target("avx2"))) void EvalPositionsXYAvx2(
    const MappingSearchIndex& ix, const Instant* ts, const std::int32_t* idx,
    std::size_t n, double* xs, double* ys, std::uint8_t* defined) {
  const double* x0 = ix.motion_x0.data();
  const double* x1 = ix.motion_x1.data();
  const double* y0 = ix.motion_y0.data();
  const double* y1 = ix.motion_y1.data();
  const __m256d zero = _mm256_setzero_pd();
  const __m128i neg1 = _mm_set1_epi32(-1);
  const __m128i one32 = _mm_set1_epi32(1);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i j =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + i));
    const __m128i def32 = _mm_cmpgt_epi32(j, neg1);
    const __m256d mask = _mm256_castsi256_pd(_mm256_cvtepi32_epi64(def32));
    const __m256d vx0 = _mm256_mask_i32gather_pd(zero, x0, j, mask, 8);
    const __m256d vx1 = _mm256_mask_i32gather_pd(zero, x1, j, mask, 8);
    const __m256d vy0 = _mm256_mask_i32gather_pd(zero, y0, j, mask, 8);
    const __m256d vy1 = _mm256_mask_i32gather_pd(zero, y1, j, mask, 8);
    const __m256d t = _mm256_and_pd(_mm256_loadu_pd(ts + i), mask);
    _mm256_storeu_pd(
        xs + i, _mm256_and_pd(_mm256_add_pd(vx0, _mm256_mul_pd(vx1, t)), mask));
    _mm256_storeu_pd(
        ys + i, _mm256_and_pd(_mm256_add_pd(vy0, _mm256_mul_pd(vy1, t)), mask));
    // Narrow the 0/-1 lane mask to four 0/1 bytes.
    const __m128i ones = _mm_and_si128(def32, one32);
    const int packed = _mm_cvtsi128_si32(_mm_shuffle_epi8(
        ones, _mm_setr_epi8(0, 4, 8, 12, -1, -1, -1, -1, -1, -1, -1, -1, -1,
                            -1, -1, -1)));
    std::memcpy(defined + i, &packed, 4);
  }
  if (i < n) {
    EvalPositionsXYScalar(ix, ts + i, idx + i, n - i, xs + i, ys + i,
                          defined + i);
  }
}

#endif  // MODB_BATCH_AVX2

}  // namespace

void EvalMotionPositions(const MappingSearchIndex& ix, const Instant* ts,
                         const std::int32_t* idx, std::size_t n,
                         Intime<Point>* out) {
#ifdef MODB_BATCH_AVX2
  if (simd::UseAvx2()) {
    EvalPositionsAvx2(ix, ts, idx, n, out);
    return;
  }
#endif
  EvalPositionsScalar(ix, ts, idx, n, out);
}

void EvalMotionPositionsXY(const MappingSearchIndex& ix, const Instant* ts,
                           const std::int32_t* idx, std::size_t n, double* xs,
                           double* ys, std::uint8_t* defined) {
#ifdef MODB_BATCH_AVX2
  if (simd::UseAvx2()) {
    EvalPositionsXYAvx2(ix, ts, idx, n, xs, ys, defined);
    return;
  }
#endif
  EvalPositionsXYScalar(ix, ts, idx, n, xs, ys, defined);
}

}  // namespace batch_internal

// The kernels are header-only templates; this TU compiles the header
// standalone and pins explicit instantiations for the moving types the
// query layer evaluates in bulk, keeping their code out of every
// including TU.

template Status AtInstantBatchInto<UPoint>(const Mapping<UPoint>&,
                                           const std::vector<Instant>&,
                                           std::vector<Intime<Point>>*,
                                           BatchScratch*, const ExecOptions&);
template Status AtInstantBatchInto<UReal>(const Mapping<UReal>&,
                                          const std::vector<Instant>&,
                                          std::vector<Intime<double>>*,
                                          BatchScratch*, const ExecOptions&);
template Result<std::vector<Intime<Point>>> AtInstantBatch<UPoint>(
    const Mapping<UPoint>&, const std::vector<Instant>&, const ExecOptions&);
template Result<std::vector<Intime<double>>> AtInstantBatch<UReal>(
    const Mapping<UReal>&, const std::vector<Instant>&, const ExecOptions&);
template Status AtInstantBatchXYInto<UPoint>(const Mapping<UPoint>&,
                                             const std::vector<Instant>&,
                                             BatchXYOutput*, BatchScratch*,
                                             const ExecOptions&);
template Result<BatchXYOutput> AtInstantBatchXY<UPoint>(
    const Mapping<UPoint>&, const std::vector<Instant>&, const ExecOptions&);
template Status AtInstantBatchManyXY<UPoint>(
    const std::vector<const Mapping<UPoint>*>&, const std::vector<Instant>&,
    std::vector<BatchXYOutput>*, const ExecOptions&);
template Status PresentBatchInto<UPoint>(const Mapping<UPoint>&,
                                         const std::vector<Instant>&,
                                         std::vector<std::uint8_t>*,
                                         const ExecOptions&);
template Status PresentBatchInto<UReal>(const Mapping<UReal>&,
                                        const std::vector<Instant>&,
                                        std::vector<std::uint8_t>*,
                                        const ExecOptions&);
template Result<std::vector<std::uint8_t>> PresentBatch<UPoint>(
    const Mapping<UPoint>&, const std::vector<Instant>&, const ExecOptions&);
template Result<std::vector<std::uint8_t>> PresentBatch<UReal>(
    const Mapping<UReal>&, const std::vector<Instant>&, const ExecOptions&);

}  // namespace modb
