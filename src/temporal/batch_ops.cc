#include "temporal/batch_ops.h"

#include "temporal/moving.h"

namespace modb {

// The kernels are header-only templates; this TU compiles the header
// standalone and pins explicit instantiations for the moving types the
// query layer evaluates in bulk, keeping their code out of every
// including TU.

template Status AtInstantBatchInto<UPoint>(const Mapping<UPoint>&,
                                           const std::vector<Instant>&,
                                           std::vector<Intime<Point>>*);
template Status AtInstantBatchInto<UReal>(const Mapping<UReal>&,
                                          const std::vector<Instant>&,
                                          std::vector<Intime<double>>*);
template Result<std::vector<Intime<Point>>> AtInstantBatch<UPoint>(
    const Mapping<UPoint>&, const std::vector<Instant>&);
template Result<std::vector<Intime<double>>> AtInstantBatch<UReal>(
    const Mapping<UReal>&, const std::vector<Instant>&);
template Status PresentBatchInto<UPoint>(const Mapping<UPoint>&,
                                         const std::vector<Instant>&,
                                         std::vector<std::uint8_t>*);
template Status PresentBatchInto<UReal>(const Mapping<UReal>&,
                                        const std::vector<Instant>&,
                                        std::vector<std::uint8_t>*);
template Result<std::vector<std::uint8_t>> PresentBatch<UPoint>(
    const Mapping<UPoint>&, const std::vector<Instant>&);
template Result<std::vector<std::uint8_t>> PresentBatch<UReal>(
    const Mapping<UReal>&, const std::vector<Instant>&);

}  // namespace modb
