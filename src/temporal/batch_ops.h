// Batch sweep kernels over the sliced representation. The paper's
// Section-5 complexity claims are per operation — atinstant is
// O(log n), binary lifted ops are O(n + m) via the refinement partition
// — but realistic workloads (the Section-2 queries, bench_queries, the
// examples) evaluate them over many instants and many tuple pairs. The
// kernels here amortize that:
//
//   * AtInstantBatch / PresentBatch: k ascending instants against n
//     units in one forward merge sweep. The cursor only moves forward
//     and advances by galloping (exponential probe + binary search), so
//     the cost is O(n + k) when the instants are dense in the units and
//     O(k log n) when they are sparse — never worse than k independent
//     binary searches, and without their repeated cold-cache descents.
//   * ForEachRefinementPair: the refinement-partition driver that
//     reuses one scratch buffer across tuple pairs (no per-pair vector
//     allocation), for bulk evaluation of binary lifted operations.
//
// All kernels use the Mapping's SoA search index when it has been built
// (Mapping::BuildSearchIndex), falling back to the unit records.

#ifndef MODB_TEMPORAL_BATCH_OPS_H_
#define MODB_TEMPORAL_BATCH_OPS_H_

#include <algorithm>
#include <chrono>
#include <concepts>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/instant.h"
#include "core/intime.h"
#include "core/status.h"
#include "db/parallel.h"
#include "obs/exec_stats.h"
#include "obs/metrics.h"
#include "temporal/mapping.h"
#include "temporal/refinement.h"

namespace modb {

namespace batch_internal {

/// Accessor over the packed SoA arrays of a MappingSearchIndex. The
/// precomputed key arrays make both sweep predicates a single double
/// compare on one contiguous array.
struct SoAView {
  const MappingSearchIndex* ix;

  std::size_t size() const { return ix->start.size(); }
  /// Deftime-bounds prefilter: t strictly outside [min start, max end]
  /// is undefined without probing the key arrays (cached bounds, one
  /// compare pair per instant).
  bool certainly_undefined(Instant t) const {
    return ix->start.empty() || t < ix->min_start || ix->max_end < t;
  }
  /// Unit k lies entirely before t (r-disjoint from [t, t]).
  bool before(std::size_t k, Instant t) const { return ix->end_key[k] < t; }
  /// Unit k starts at or before t.
  bool starts_by(std::size_t k, Instant t) const {
    return ix->start_key[k] <= t;
  }
  /// Approximate end of unit k, for interpolation probe seeding.
  Instant end_approx(std::size_t k) const { return ix->end_key[k]; }
  /// First index at or after i that is not before t (may be size()).
  /// The +inf sentinel slot lets the sweep advance without bounds
  /// checks, and the two leading steps are unconditional compare+adds
  /// (no branch to mispredict) covering the common dense-merge case of
  /// advancing 0–2 units per instant.
  std::size_t advance_to(std::size_t i, Instant t) const {
    const Instant* ek = ix->end_key.data();
    i += std::size_t(ek[i] < t);
    i += std::size_t(ek[i] < t);
    while (ek[i] < t) ++i;
    return i;
  }
  /// Containment test for an advance_to result (sentinel-safe: i ==
  /// size() reads the +inf start_key slot and reports false).
  bool contains_at(std::size_t i, Instant t) const {
    return ix->start_key[i] <= t;
  }
  /// First index in [lo, hi) that is not before t, or hi. Branchless
  /// binary search over the packed key array (the comparison result
  /// feeds a conditional move, not a branch, so random probe outcomes
  /// cost no mispredictions).
  std::size_t first_not_before(std::size_t lo, std::size_t hi,
                               Instant t) const {
    const Instant* data = ix->end_key.data();
    const Instant* base = data + lo;
    std::size_t len = hi - lo;
    while (len > 1) {
      std::size_t half = len / 2;
      base += (base[half - 1] < t) ? half : 0;
      len -= half;
    }
    if (len == 1 && *base < t) ++base;
    return std::size_t(base - data);
  }
};

/// Accessor over the full unit records (no index built).
template <typename U>
struct UnitsView {
  const std::vector<U>* units;

  std::size_t size() const { return units->size(); }
  /// No cached bounds without the SoA index; never prefilters.
  bool certainly_undefined(Instant) const { return false; }
  bool before(std::size_t k, Instant t) const {
    const TimeInterval& iv = (*units)[k].interval();
    return iv.end() < t || (iv.end() == t && !iv.right_closed());
  }
  bool starts_by(std::size_t k, Instant t) const {
    const TimeInterval& iv = (*units)[k].interval();
    return iv.start() < t || (iv.start() == t && iv.left_closed());
  }
  Instant end_approx(std::size_t k) const {
    return (*units)[k].interval().end();
  }
  std::size_t first_not_before(std::size_t lo, std::size_t hi,
                               Instant t) const {
    while (lo < hi) {
      std::size_t mid = lo + (hi - lo) / 2;
      if (before(mid, t)) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }
  /// Guarded equivalents of SoAView's sentinel-based sweep steps.
  std::size_t advance_to(std::size_t i, Instant t) const {
    const std::size_t n = size();
    while (i < n && before(i, t)) ++i;
    return i;
  }
  bool contains_at(std::size_t i, Instant t) const {
    return i < size() && starts_by(i, t);
  }
};

/// Per-batch tallies of how each instant was resolved: straight off the
/// forward cursor, or by dispatching a gallop + binary search. Kernels
/// accumulate into plain locals and flush once per batch, so the sweep
/// inner loop carries no atomics (and under MODB_NO_METRICS the flush is
/// a no-op and the locals fold away).
struct SweepCounters {
  std::uint64_t cursor_hits = 0;     // resolved by the sweep cursor as-is
  std::uint64_t gallop_searches = 0; // needed the gallop/binary-search path
  std::uint64_t bbox_skips = 0;      // resolved by the deftime-bounds prefilter
};

/// One step of the merge sweep: the index of the unit containing t, or
/// npos. `*cursor` only moves forward; with ascending queries the total
/// advance over a whole batch is O(n + k) (galloping keeps each
/// individual advance at O(log jump)).
inline constexpr std::size_t kNpos = std::size_t(-1);

template <typename View>
std::size_t SweepFind(const View& v, Instant t, std::size_t* cursor,
                      std::size_t hint = 1,
                      SweepCounters* counters = nullptr) {
  const std::size_t n = v.size();
  std::size_t i = *cursor;
  bool needs_advance = i < n && v.before(i, t);
  if (needs_advance) {
    // Dense fast steps: with instants about as dense as the units (the
    // k ≈ n sweep case) the advance is almost always a handful of
    // adjacent units — resolve those with single compares before
    // falling into the interpolation/gallop machinery below.
    for (int s = 0; s < 3 && needs_advance; ++s) {
      ++i;
      needs_advance = i < n && v.before(i, t);
    }
  }
  if (counters != nullptr) {
    ++(needs_advance ? counters->gallop_searches : counters->cursor_hits);
  }
  if (needs_advance) {
    // First probe: interpolate t's position within the remaining unit
    // ends. On near-uniform unit durations (the common case for sliced
    // trajectories) this lands within a few units of the target, so a
    // query costs O(1) probes; badly skewed durations only degrade the
    // seed, and the gallop below restores the O(log jump) bound.
    std::size_t g = hint;
    const Instant lo_e = v.end_approx(i), hi_e = v.end_approx(n - 1);
    if (hi_e > lo_e && t > lo_e) {
      const double f = (t - lo_e) / (hi_e - lo_e) * double(n - 1 - i);
      g = f < 1 ? 1
                : (f >= double(n - i) ? n - i : std::size_t(f) + 1);
    }
    std::size_t pos = std::min(i + g, n - 1);
    if (v.before(pos, t)) {
      // Gallop forward: exponential probe, then search the bracket. The
      // first not-before unit is in (i, i + step] (or absent).
      i = pos;
      std::size_t step = std::max<std::size_t>(g, 1);
      while (i + step < n && v.before(i + step, t)) {
        i += step;
        step *= 2;
      }
      i = v.first_not_before(i + 1, std::min(i + step + 1, n), t);
    } else {
      // Overshot: gallop backward for the first not-before in (i, pos].
      std::size_t step = 1, hi2 = pos;
      while (hi2 > i + step && !v.before(hi2 - step, t)) {
        hi2 -= step;
        step *= 2;
      }
      std::size_t lo2 = hi2 > i + step ? hi2 - step + 1 : i + 1;
      i = v.first_not_before(lo2, hi2 + 1, t);
    }
  }
  *cursor = i;
  if (i >= n) return kNpos;
  // Not before t, so t <= end (closed there). Containment only needs the
  // start side.
  return v.starts_by(i, t) ? i : kNpos;
}

inline Status NotAscending() {
  return Status::InvalidArgument(
      "batch kernels require instants in ascending order");
}

/// Sentinel unit index for "undefined at this instant" in resolved
/// index arrays.
inline constexpr std::int32_t kUndefinedUnit = -1;

/// Phase 1 of the split batch kernels: resolves every instant to its
/// containing unit index (kUndefinedUnit when undefined), combining the
/// deftime-bounds prefilter with the forward merge sweep. Returns false
/// when the instants are not ascending. idx must hold instant count
/// slots.
template <typename View>
bool ResolveAscending(const View& v, const std::vector<Instant>& instants,
                      std::int32_t* idx, std::size_t* cursor,
                      SweepCounters* counters) {
  const std::size_t n = v.size();
  const std::size_t k = instants.size();
  Instant prev = -std::numeric_limits<Instant>::infinity();
  if (k * 4 >= n) {
    // Dense regime (k ≳ n/4): the cursor advances by ~n/k ≤ 4 units per
    // instant, so a pure two-pointer merge — one compare per unit
    // stepped over — beats dispatching the interpolation/gallop
    // machinery. Still O(n + k) in total. The ascending check is one
    // predictable up-front pass, and with sorted instants the
    // deftime-bounds prefilter hits exactly a prefix (t before the
    // first unit) and a suffix (t after the last), so both hoist out
    // and the merge loop is two compares per instant.
    if (!std::is_sorted(instants.begin(), instants.end())) return false;
    std::size_t lo = 0, hi = k;
    while (lo < hi && v.certainly_undefined(instants[lo])) {
      idx[lo++] = kUndefinedUnit;
    }
    while (hi > lo && v.certainly_undefined(instants[hi - 1])) {
      idx[--hi] = kUndefinedUnit;
    }
    counters->bbox_skips += lo + (k - hi);
    std::size_t i = *cursor;
    for (std::size_t q = lo; q < hi; ++q) {
      const Instant t = instants[q];
      i = v.advance_to(i, t);
      idx[q] = v.contains_at(i, t) ? std::int32_t(i) : kUndefinedUnit;
    }
    counters->cursor_hits += hi - lo;
    *cursor = i;
    return true;
  }
  const std::size_t hint =
      std::max<std::size_t>(1, n / std::max<std::size_t>(1, k));
  for (std::size_t q = 0; q < k; ++q) {
    const Instant t = instants[q];
    if (t < prev) return false;
    prev = t;
    if (v.certainly_undefined(t)) {
      ++counters->bbox_skips;
      idx[q] = kUndefinedUnit;
      continue;
    }
    const std::size_t r = SweepFind(v, t, cursor, hint, counters);
    idx[q] = r == kNpos ? kUndefinedUnit : std::int32_t(r);
  }
  return true;
}

/// Phase 2 kernels over the packed motion-coefficient arrays
/// (MappingSearchIndex::motion_*): scalar reference cores with AVX2
/// specializations (gather + multiply-then-add, never FMA, so the two
/// paths are byte-identical) dispatched at runtime via core/simd.h.
/// Undefined slots (idx < 0) produce zeroed outputs with the defined
/// flag clear, exactly like Intime::Undefined(). Defined in
/// batch_ops.cc.
void EvalMotionPositions(const MappingSearchIndex& ix, const Instant* ts,
                         const std::int32_t* idx, std::size_t n,
                         Intime<Point>* out);
void EvalMotionPositionsXY(const MappingSearchIndex& ix, const Instant* ts,
                           const std::int32_t* idx, std::size_t n, double* xs,
                           double* ys, std::uint8_t* defined);

inline void FlushSweepCounters(const SweepCounters& sweep,
                               std::size_t units_scanned) {
  MODB_COUNTER_ADD("temporal.batch.units_scanned", units_scanned);
  MODB_COUNTER_ADD("temporal.batch.sweep_cursor_hits", sweep.cursor_hits);
  MODB_COUNTER_ADD("temporal.batch.sweep_gallop_searches",
                   sweep.gallop_searches);
  MODB_COUNTER_ADD("temporal.batch.sweep_bbox_skips", sweep.bbox_skips);
}

}  // namespace batch_internal

/// Reusable buffers for the split (resolve, then evaluate) batch
/// kernels: hoist one instance out of a per-tuple loop and the kernels
/// allocate nothing after warmup.
struct BatchScratch {
  std::vector<std::int32_t> unit_idx;
};

namespace batch_internal {

/// The atinstant sweep core (see AtInstantBatchInto for the contract).
template <typename U>
Status AtInstantBatchCore(const Mapping<U>& m,
                          const std::vector<Instant>& instants,
                          std::vector<Intime<typename U::ValueType>>* out,
                          BatchScratch* scratch) {
  using Out = Intime<typename U::ValueType>;
  std::size_t cursor = 0;
  batch_internal::SweepCounters sweep;
  const MappingSearchIndex* ix = m.search_index();
  bool ok;
  if constexpr (std::is_same_v<typename U::ValueType, Point>) {
    if (ix != nullptr && (ix->has_motion() || ix->start.empty())) {
      // Split fast path: resolve into the scratch index array, then
      // evaluate positions off the packed coefficients in one
      // vectorizable pass.
      const std::size_t k = instants.size();
      scratch->unit_idx.resize(k);
      if (!batch_internal::ResolveAscending(batch_internal::SoAView{ix},
                                            instants, scratch->unit_idx.data(),
                                            &cursor, &sweep)) {
        out->clear();
        return batch_internal::NotAscending();
      }
      // resize without a clear: a warm same-size buffer skips the
      // element re-initialization pass (the evaluate kernel overwrites
      // every slot, defined or not).
      out->resize(k);
      batch_internal::EvalMotionPositions(*ix, instants.data(),
                                          scratch->unit_idx.data(), k,
                                          out->data());
      MODB_COUNTER_INC("temporal.batch.atinstant_calls");
      MODB_COUNTER_ADD("temporal.batch.atinstant_instants", k);
      MODB_COUNTER_INC("temporal.batch.dispatch_soa_index");
      batch_internal::FlushSweepCounters(sweep, cursor);
      return Status::OK();
    }
  }
  out->clear();
  out->reserve(instants.size());
  auto run = [&](const auto& view) {
    Instant prev = -std::numeric_limits<Instant>::infinity();
    const std::size_t hint = std::max<std::size_t>(
        1, view.size() / std::max<std::size_t>(1, instants.size()));
    for (Instant t : instants) {
      if (t < prev) return false;
      prev = t;
      if (view.certainly_undefined(t)) {
        ++sweep.bbox_skips;
        out->push_back(Out::Undefined());
        continue;
      }
      std::size_t idx =
          batch_internal::SweepFind(view, t, &cursor, hint, &sweep);
      if (idx == batch_internal::kNpos) {
        out->push_back(Out::Undefined());
      } else {
        out->push_back(Out(t, m.unit(idx).ValueAt(t)));
      }
    }
    return true;
  };
  ok = ix != nullptr ? run(batch_internal::SoAView{ix})
                     : run(batch_internal::UnitsView<U>{&m.units()});
  if (!ok) return batch_internal::NotAscending();
  MODB_COUNTER_INC("temporal.batch.atinstant_calls");
  MODB_COUNTER_ADD("temporal.batch.atinstant_instants", instants.size());
  batch_internal::FlushSweepCounters(sweep, cursor);
  if (ix != nullptr) {
    MODB_COUNTER_INC("temporal.batch.dispatch_soa_index");
  } else {
    MODB_COUNTER_INC("temporal.batch.dispatch_unit_records");
  }
  return Status::OK();
}

/// The XY evaluation core (see AtInstantBatchXYInto for the contract).
template <typename U>
  requires requires(const U& u) {
    { u.motion().x0 } -> std::convertible_to<double>;
  }
Status AtInstantBatchXYCore(const Mapping<U>& m,
                            const std::vector<Instant>& instants,
                            std::vector<double>* xs, std::vector<double>* ys,
                            std::vector<std::uint8_t>* defined,
                            BatchScratch* scratch) {
  const std::size_t k = instants.size();
  std::size_t cursor = 0;
  batch_internal::SweepCounters sweep;
  scratch->unit_idx.resize(k);
  bool ok;
  const MappingSearchIndex* ix = m.search_index();
  if (ix != nullptr) {
    ok = batch_internal::ResolveAscending(batch_internal::SoAView{ix},
                                          instants, scratch->unit_idx.data(),
                                          &cursor, &sweep);
  } else {
    ok = batch_internal::ResolveAscending(
        batch_internal::UnitsView<U>{&m.units()}, instants,
        scratch->unit_idx.data(), &cursor, &sweep);
  }
  if (!ok) {
    xs->clear();
    ys->clear();
    defined->clear();
    return batch_internal::NotAscending();
  }
  // resize without a clear (see AtInstantBatchInto): every slot is
  // overwritten below, so a warm same-size buffer costs nothing.
  xs->resize(k);
  ys->resize(k);
  defined->resize(k);
  if (ix != nullptr && ix->has_motion()) {
    batch_internal::EvalMotionPositionsXY(*ix, instants.data(),
                                          scratch->unit_idx.data(), k,
                                          xs->data(), ys->data(),
                                          defined->data());
  } else {
    // No packed coefficients: evaluate off the unit records (same
    // outputs, strided reads).
    for (std::size_t i = 0; i < k; ++i) {
      const std::int32_t j = scratch->unit_idx[i];
      if (j < 0) {
        (*xs)[i] = 0;
        (*ys)[i] = 0;
        (*defined)[i] = 0;
      } else {
        const Point p = m.unit(std::size_t(j)).ValueAt(instants[i]);
        (*xs)[i] = p.x;
        (*ys)[i] = p.y;
        (*defined)[i] = 1;
      }
    }
  }
  MODB_COUNTER_INC("temporal.batch.atinstant_xy_calls");
  MODB_COUNTER_ADD("temporal.batch.atinstant_instants", k);
  batch_internal::FlushSweepCounters(sweep, cursor);
  return Status::OK();
}

/// Shared ExecStats fill for the unified batch entrypoints: one node
/// with the op label, input cardinality, and wall time. When no sink is
/// set it skips everything, even the clock reads — same discipline as
/// the db/query.h operators.
class BatchStatsScope {
 public:
  BatchStatsScope(obs::ExecStats* stats, const char* op,
                  std::uint64_t tuples_in)
      : stats_(stats) {
    if (stats_ == nullptr) return;
    *stats_ = obs::ExecStats{};
    stats_->op = op;
    stats_->tuples_in = tuples_in;
    stats_->workers = 1;
    start_ = std::chrono::steady_clock::now();
  }
  ~BatchStatsScope() {
    if (stats_ == nullptr) return;
    auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - start_)
                  .count();
    stats_->wall_ns = ns > 0 ? std::uint64_t(ns) : 0;
  }
  BatchStatsScope(const BatchStatsScope&) = delete;
  BatchStatsScope& operator=(const BatchStatsScope&) = delete;

  bool armed() const { return stats_ != nullptr; }
  void set_tuples_out(std::uint64_t n) {
    if (stats_ != nullptr) stats_->tuples_out = n;
  }
  void set_workers(std::uint64_t n) {
    if (stats_ != nullptr) stats_->workers = n;
  }

 private:
  obs::ExecStats* stats_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace batch_internal

/// SoA outputs of one mapping's batched position evaluation.
struct BatchXYOutput {
  std::vector<double> xs;
  std::vector<double> ys;
  std::vector<std::uint8_t> defined;
};

// ---------------------------------------------------------------------------
// Unified front-ends. Every public batch entrypoint below shares the
// db/query.h operator shape — Result<…>/Status(…, const ExecOptions&) —
// validating options.parallel through the same shared helper as the
// query operators and the exec engine, and filling options.stats with
// one node when set. The merge sweeps are inherently serial, so the
// single-mapping kernels run inline regardless of the requested worker
// count (exactly like Project, a pure copy); AtInstantBatchManyXY is
// the fan-out point and honours the full policy. The paged twins in
// temporal/paged_ops.h share this shape.
// ---------------------------------------------------------------------------

/// atinstant over a batch of ascending instants: one merge sweep instead
/// of k independent O(log n) searches. Instants outside the deftime
/// yield undefined Intime values, exactly like Mapping::AtInstant.
/// Clears and fills `*out`, reusing its capacity — hoist the buffer and
/// the BatchScratch out of a per-tuple loop to evaluate many batches
/// without reallocating.
///
/// When the mapping has a SoA search index with packed motion
/// coefficients (upoint), the kernel splits into a resolve pass (merge
/// sweep filling `scratch->unit_idx`) and a vectorized evaluation pass
/// over the contiguous coefficient arrays — byte-identical output to
/// the generic path.
template <typename U>
Status AtInstantBatchInto(const Mapping<U>& m,
                          const std::vector<Instant>& instants,
                          std::vector<Intime<typename U::ValueType>>* out,
                          BatchScratch* scratch,
                          const ExecOptions& options = {}) {
  MODB_RETURN_IF_ERROR(ValidateParallelOptions(options.parallel));
  batch_internal::BatchStatsScope stats(options.stats, "atinstant_batch",
                                        instants.size());
  MODB_RETURN_IF_ERROR(
      batch_internal::AtInstantBatchCore(m, instants, out, scratch));
  if (stats.armed()) {
    std::uint64_t defined = 0;
    for (const auto& v : *out) defined += v.defined ? 1 : 0;
    stats.set_tuples_out(defined);
  }
  return Status::OK();
}

/// Allocating convenience wrapper around AtInstantBatchInto.
template <typename U>
Result<std::vector<Intime<typename U::ValueType>>> AtInstantBatch(
    const Mapping<U>& m, const std::vector<Instant>& instants,
    const ExecOptions& options = {}) {
  std::vector<Intime<typename U::ValueType>> out;
  BatchScratch scratch;
  MODB_RETURN_IF_ERROR(
      AtInstantBatchInto(m, instants, &out, &scratch, options));
  return out;
}

/// Batched upoint position evaluation with SoA outputs: out->xs/ys get
/// the evaluated coordinates (0 where undefined) and out->defined the
/// 0/1 presence flags — packed arrays ready for downstream vector
/// kernels, with the same resolve pass as AtInstantBatchInto. Requires
/// ascending instants. Clears and fills the output vectors, reusing
/// capacity.
template <typename U>
  requires requires(const U& u) {
    { u.motion().x0 } -> std::convertible_to<double>;
  }
Status AtInstantBatchXYInto(const Mapping<U>& m,
                            const std::vector<Instant>& instants,
                            BatchXYOutput* out, BatchScratch* scratch,
                            const ExecOptions& options = {}) {
  MODB_RETURN_IF_ERROR(ValidateParallelOptions(options.parallel));
  batch_internal::BatchStatsScope stats(options.stats, "atinstant_batch_xy",
                                        instants.size());
  MODB_RETURN_IF_ERROR(batch_internal::AtInstantBatchXYCore(
      m, instants, &out->xs, &out->ys, &out->defined, scratch));
  if (stats.armed()) {
    std::uint64_t defined = 0;
    for (std::uint8_t d : out->defined) defined += d;
    stats.set_tuples_out(defined);
  }
  return Status::OK();
}

/// Deprecated xs/ys/defined triple; migrate to the BatchXYOutput +
/// Allocating convenience wrapper around AtInstantBatchXYInto.
template <typename U>
  requires requires(const U& u) {
    { u.motion().x0 } -> std::convertible_to<double>;
  }
Result<BatchXYOutput> AtInstantBatchXY(const Mapping<U>& m,
                                       const std::vector<Instant>& instants,
                                       const ExecOptions& options = {}) {
  BatchXYOutput out;
  BatchScratch scratch;
  MODB_RETURN_IF_ERROR(
      AtInstantBatchXYInto(m, instants, &out, &scratch, options));
  return out;
}

/// Many-mapping parallel front-end for AtInstantBatchXYInto: evaluates
/// every mapping of `maps` at the same ascending instants, filling
/// (*outs)[i] from maps[i]. The mapping list is statically chunked
/// across `options.parallel` (same chunk-boundary rule as ParallelFor,
/// one warm BatchScratch per chunk), so outputs land at fixed slots and
/// the result is identical to the serial loop for any worker count. The
/// thread-count sanity bound is enforced by the same shared helper as
/// the query operators and the exec engine (db/parallel.h); on error,
/// the lowest failing mapping index's Status is returned.
template <typename U>
  requires requires(const U& u) {
    { u.motion().x0 } -> std::convertible_to<double>;
  }
Status AtInstantBatchManyXY(const std::vector<const Mapping<U>*>& maps,
                            const std::vector<Instant>& instants,
                            std::vector<BatchXYOutput>* outs,
                            const ExecOptions& options = {}) {
  MODB_RETURN_IF_ERROR(ValidateParallelOptions(options.parallel));
  batch_internal::BatchStatsScope stats(
      options.stats, "atinstant_batch_many_xy",
      std::uint64_t(maps.size()) * instants.size());
  outs->resize(maps.size());
  auto run_range = [&](std::size_t begin, std::size_t end,
                       BatchScratch* scratch) -> Status {
    for (std::size_t i = begin; i < end; ++i) {
      BatchXYOutput& o = (*outs)[i];
      MODB_RETURN_IF_ERROR(batch_internal::AtInstantBatchXYCore(
          *maps[i], instants, &o.xs, &o.ys, &o.defined, scratch));
    }
    return Status::OK();
  };
  const std::size_t workers = ResolveWorkerCount(options.parallel);
  const std::size_t chunks = std::min(workers, maps.size());
  stats.set_workers(chunks > 0 ? chunks : 1);
  Status run_status = Status::OK();
  if (chunks <= 1) {
    BatchScratch scratch;
    run_status = run_range(0, maps.size(), &scratch);
  } else {
    std::vector<Status> chunk_status(chunks, Status::OK());
    ParallelFor(ResolvePool(options.parallel), maps.size(), chunks,
                [&](std::size_t c, std::size_t begin, std::size_t end) {
                  BatchScratch scratch;
                  chunk_status[c] = run_range(begin, end, &scratch);
                });
    for (Status& s : chunk_status) {
      if (!s.ok()) {
        run_status = s;
        break;
      }
    }
  }
  MODB_RETURN_IF_ERROR(run_status);
  if (stats.armed()) {
    std::uint64_t defined = 0;
    for (const BatchXYOutput& o : *outs) {
      for (std::uint8_t d : o.defined) defined += d;
    }
    stats.set_tuples_out(defined);
  }
  return Status::OK();
}

namespace batch_internal {

/// The present sweep core (see PresentBatchInto for the contract).
template <typename U>
Status PresentBatchCore(const Mapping<U>& m,
                        const std::vector<Instant>& instants,
                        std::vector<std::uint8_t>* out) {
  out->clear();
  out->reserve(instants.size());
  std::size_t cursor = 0;
  Instant prev = -std::numeric_limits<Instant>::infinity();
  batch_internal::SweepCounters sweep;
  auto run = [&](const auto& view) {
    const std::size_t hint = std::max<std::size_t>(
        1, view.size() / std::max<std::size_t>(1, instants.size()));
    for (Instant t : instants) {
      if (t < prev) return false;
      prev = t;
      if (view.certainly_undefined(t)) {
        ++sweep.bbox_skips;
        out->push_back(0);
        continue;
      }
      out->push_back(batch_internal::SweepFind(view, t, &cursor, hint,
                                               &sweep) !=
                             batch_internal::kNpos
                         ? 1
                         : 0);
    }
    return true;
  };
  bool ok = m.search_index()
                ? run(batch_internal::SoAView{m.search_index()})
                : run(batch_internal::UnitsView<U>{&m.units()});
  if (!ok) return batch_internal::NotAscending();
  MODB_COUNTER_INC("temporal.batch.present_calls");
  MODB_COUNTER_ADD("temporal.batch.present_instants", instants.size());
  batch_internal::FlushSweepCounters(sweep, cursor);
  return Status::OK();
}

}  // namespace batch_internal

/// present over a batch of ascending instants; (*out)[i] is 1 iff the
/// moving value is defined at instants[i]. Clears and fills `*out`,
/// reusing its capacity.
template <typename U>
Status PresentBatchInto(const Mapping<U>& m,
                        const std::vector<Instant>& instants,
                        std::vector<std::uint8_t>* out,
                        const ExecOptions& options = {}) {
  MODB_RETURN_IF_ERROR(ValidateParallelOptions(options.parallel));
  batch_internal::BatchStatsScope stats(options.stats, "present_batch",
                                        instants.size());
  MODB_RETURN_IF_ERROR(batch_internal::PresentBatchCore(m, instants, out));
  if (stats.armed()) {
    std::uint64_t present = 0;
    for (std::uint8_t p : *out) present += p;
    stats.set_tuples_out(present);
  }
  return Status::OK();
}

/// Allocating convenience wrapper around PresentBatchInto.
template <typename U>
Result<std::vector<std::uint8_t>> PresentBatch(
    const Mapping<U>& m, const std::vector<Instant>& instants,
    const ExecOptions& options = {}) {
  std::vector<std::uint8_t> out;
  MODB_RETURN_IF_ERROR(PresentBatchInto(m, instants, &out, options));
  return out;
}

/// Scratch buffer for bulk refinement-partition evaluation; reuse one
/// instance across tuple pairs to keep the entry vector's capacity.
using RefinementScratch = std::vector<RefinementEntry>;

/// Batched refinement driver: computes the partition of (a, b) into
/// `*scratch` and invokes fn(entry) for every interval where BOTH
/// mappings are defined (the case every binary lifted op consumes).
/// fn must return Status; the first error aborts the sweep.
template <typename UA, typename UB, typename Fn>
Status ForEachRefinementPair(const Mapping<UA>& a, const Mapping<UB>& b,
                             RefinementScratch* scratch, Fn&& fn) {
  if (scratch->capacity() > 0) {
    MODB_COUNTER_INC("temporal.refinement.scratch_reused");
  } else {
    MODB_COUNTER_INC("temporal.refinement.scratch_fresh");
  }
  MODB_RETURN_IF_ERROR(RefinementPartitionInto(a, b, scratch));
  std::uint64_t codefined = 0;
  for (const RefinementEntry& e : *scratch) {
    if (!e.HasBoth()) continue;
    ++codefined;
    MODB_RETURN_IF_ERROR(fn(e));
  }
  MODB_COUNTER_ADD("temporal.refinement.codefined_entries", codefined);
  return Status::OK();
}

}  // namespace modb

#endif  // MODB_TEMPORAL_BATCH_OPS_H_
