// Batch sweep kernels over the sliced representation. The paper's
// Section-5 complexity claims are per operation — atinstant is
// O(log n), binary lifted ops are O(n + m) via the refinement partition
// — but realistic workloads (the Section-2 queries, bench_queries, the
// examples) evaluate them over many instants and many tuple pairs. The
// kernels here amortize that:
//
//   * AtInstantBatch / PresentBatch: k ascending instants against n
//     units in one forward merge sweep. The cursor only moves forward
//     and advances by galloping (exponential probe + binary search), so
//     the cost is O(n + k) when the instants are dense in the units and
//     O(k log n) when they are sparse — never worse than k independent
//     binary searches, and without their repeated cold-cache descents.
//   * ForEachRefinementPair: the refinement-partition driver that
//     reuses one scratch buffer across tuple pairs (no per-pair vector
//     allocation), for bulk evaluation of binary lifted operations.
//
// All kernels use the Mapping's SoA search index when it has been built
// (Mapping::BuildSearchIndex), falling back to the unit records.

#ifndef MODB_TEMPORAL_BATCH_OPS_H_
#define MODB_TEMPORAL_BATCH_OPS_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/instant.h"
#include "core/intime.h"
#include "core/status.h"
#include "obs/metrics.h"
#include "temporal/mapping.h"
#include "temporal/refinement.h"

namespace modb {

namespace batch_internal {

/// Accessor over the packed SoA arrays of a MappingSearchIndex. The
/// precomputed key arrays make both sweep predicates a single double
/// compare on one contiguous array.
struct SoAView {
  const MappingSearchIndex* ix;

  std::size_t size() const { return ix->start.size(); }
  /// Unit k lies entirely before t (r-disjoint from [t, t]).
  bool before(std::size_t k, Instant t) const { return ix->end_key[k] < t; }
  /// Unit k starts at or before t.
  bool starts_by(std::size_t k, Instant t) const {
    return ix->start_key[k] <= t;
  }
  /// Approximate end of unit k, for interpolation probe seeding.
  Instant end_approx(std::size_t k) const { return ix->end_key[k]; }
  /// First index in [lo, hi) that is not before t, or hi. Branchless
  /// binary search over the packed key array (the comparison result
  /// feeds a conditional move, not a branch, so random probe outcomes
  /// cost no mispredictions).
  std::size_t first_not_before(std::size_t lo, std::size_t hi,
                               Instant t) const {
    const Instant* data = ix->end_key.data();
    const Instant* base = data + lo;
    std::size_t len = hi - lo;
    while (len > 1) {
      std::size_t half = len / 2;
      base += (base[half - 1] < t) ? half : 0;
      len -= half;
    }
    if (len == 1 && *base < t) ++base;
    return std::size_t(base - data);
  }
};

/// Accessor over the full unit records (no index built).
template <typename U>
struct UnitsView {
  const std::vector<U>* units;

  std::size_t size() const { return units->size(); }
  bool before(std::size_t k, Instant t) const {
    const TimeInterval& iv = (*units)[k].interval();
    return iv.end() < t || (iv.end() == t && !iv.right_closed());
  }
  bool starts_by(std::size_t k, Instant t) const {
    const TimeInterval& iv = (*units)[k].interval();
    return iv.start() < t || (iv.start() == t && iv.left_closed());
  }
  Instant end_approx(std::size_t k) const {
    return (*units)[k].interval().end();
  }
  std::size_t first_not_before(std::size_t lo, std::size_t hi,
                               Instant t) const {
    while (lo < hi) {
      std::size_t mid = lo + (hi - lo) / 2;
      if (before(mid, t)) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }
};

/// Per-batch tallies of how each instant was resolved: straight off the
/// forward cursor, or by dispatching a gallop + binary search. Kernels
/// accumulate into plain locals and flush once per batch, so the sweep
/// inner loop carries no atomics (and under MODB_NO_METRICS the flush is
/// a no-op and the locals fold away).
struct SweepCounters {
  std::uint64_t cursor_hits = 0;     // resolved by the sweep cursor as-is
  std::uint64_t gallop_searches = 0; // needed the gallop/binary-search path
};

/// One step of the merge sweep: the index of the unit containing t, or
/// npos. `*cursor` only moves forward; with ascending queries the total
/// advance over a whole batch is O(n + k) (galloping keeps each
/// individual advance at O(log jump)).
inline constexpr std::size_t kNpos = std::size_t(-1);

template <typename View>
std::size_t SweepFind(const View& v, Instant t, std::size_t* cursor,
                      std::size_t hint = 1,
                      SweepCounters* counters = nullptr) {
  const std::size_t n = v.size();
  std::size_t i = *cursor;
  const bool needs_advance = i < n && v.before(i, t);
  if (counters != nullptr) {
    ++(needs_advance ? counters->gallop_searches : counters->cursor_hits);
  }
  if (needs_advance) {
    // First probe: interpolate t's position within the remaining unit
    // ends. On near-uniform unit durations (the common case for sliced
    // trajectories) this lands within a few units of the target, so a
    // query costs O(1) probes; badly skewed durations only degrade the
    // seed, and the gallop below restores the O(log jump) bound.
    std::size_t g = hint;
    const Instant lo_e = v.end_approx(i), hi_e = v.end_approx(n - 1);
    if (hi_e > lo_e && t > lo_e) {
      const double f = (t - lo_e) / (hi_e - lo_e) * double(n - 1 - i);
      g = f < 1 ? 1
                : (f >= double(n - i) ? n - i : std::size_t(f) + 1);
    }
    std::size_t pos = std::min(i + g, n - 1);
    if (v.before(pos, t)) {
      // Gallop forward: exponential probe, then search the bracket. The
      // first not-before unit is in (i, i + step] (or absent).
      i = pos;
      std::size_t step = std::max<std::size_t>(g, 1);
      while (i + step < n && v.before(i + step, t)) {
        i += step;
        step *= 2;
      }
      i = v.first_not_before(i + 1, std::min(i + step + 1, n), t);
    } else {
      // Overshot: gallop backward for the first not-before in (i, pos].
      std::size_t step = 1, hi2 = pos;
      while (hi2 > i + step && !v.before(hi2 - step, t)) {
        hi2 -= step;
        step *= 2;
      }
      std::size_t lo2 = hi2 > i + step ? hi2 - step + 1 : i + 1;
      i = v.first_not_before(lo2, hi2 + 1, t);
    }
  }
  *cursor = i;
  if (i >= n) return kNpos;
  // Not before t, so t <= end (closed there). Containment only needs the
  // start side.
  return v.starts_by(i, t) ? i : kNpos;
}

inline Status NotAscending() {
  return Status::InvalidArgument(
      "batch kernels require instants in ascending order");
}

}  // namespace batch_internal

/// atinstant over a batch of ascending instants: one merge sweep instead
/// of k independent O(log n) searches. Instants outside the deftime
/// yield undefined Intime values, exactly like Mapping::AtInstant.
/// Clears and fills `*out`, reusing its capacity — hoist the buffer out
/// of a per-tuple loop to evaluate many batches without reallocating.
template <typename U>
Status AtInstantBatchInto(const Mapping<U>& m,
                          const std::vector<Instant>& instants,
                          std::vector<Intime<typename U::ValueType>>* out) {
  using Out = Intime<typename U::ValueType>;
  out->clear();
  out->reserve(instants.size());
  std::size_t cursor = 0;
  Instant prev = -std::numeric_limits<Instant>::infinity();
  batch_internal::SweepCounters sweep;
  auto run = [&](const auto& view) {
    const std::size_t hint = std::max<std::size_t>(
        1, view.size() / std::max<std::size_t>(1, instants.size()));
    for (Instant t : instants) {
      if (t < prev) return false;
      prev = t;
      std::size_t idx =
          batch_internal::SweepFind(view, t, &cursor, hint, &sweep);
      if (idx == batch_internal::kNpos) {
        out->push_back(Out::Undefined());
      } else {
        out->push_back(Out(t, m.unit(idx).ValueAt(t)));
      }
    }
    return true;
  };
  bool ok = m.search_index()
                ? run(batch_internal::SoAView{m.search_index()})
                : run(batch_internal::UnitsView<U>{&m.units()});
  if (!ok) return batch_internal::NotAscending();
  MODB_COUNTER_INC("temporal.batch.atinstant_calls");
  MODB_COUNTER_ADD("temporal.batch.atinstant_instants", instants.size());
  MODB_COUNTER_ADD("temporal.batch.units_scanned", cursor);
  MODB_COUNTER_ADD("temporal.batch.sweep_cursor_hits", sweep.cursor_hits);
  MODB_COUNTER_ADD("temporal.batch.sweep_gallop_searches",
                   sweep.gallop_searches);
  if (m.search_index()) {
    MODB_COUNTER_INC("temporal.batch.dispatch_soa_index");
  } else {
    MODB_COUNTER_INC("temporal.batch.dispatch_unit_records");
  }
  return Status::OK();
}

/// Allocating convenience wrapper around AtInstantBatchInto.
template <typename U>
Result<std::vector<Intime<typename U::ValueType>>> AtInstantBatch(
    const Mapping<U>& m, const std::vector<Instant>& instants) {
  std::vector<Intime<typename U::ValueType>> out;
  MODB_RETURN_IF_ERROR(AtInstantBatchInto(m, instants, &out));
  return out;
}

/// present over a batch of ascending instants; (*out)[i] is 1 iff the
/// moving value is defined at instants[i]. Clears and fills `*out`,
/// reusing its capacity.
template <typename U>
Status PresentBatchInto(const Mapping<U>& m,
                        const std::vector<Instant>& instants,
                        std::vector<std::uint8_t>* out) {
  out->clear();
  out->reserve(instants.size());
  std::size_t cursor = 0;
  Instant prev = -std::numeric_limits<Instant>::infinity();
  batch_internal::SweepCounters sweep;
  auto run = [&](const auto& view) {
    const std::size_t hint = std::max<std::size_t>(
        1, view.size() / std::max<std::size_t>(1, instants.size()));
    for (Instant t : instants) {
      if (t < prev) return false;
      prev = t;
      out->push_back(batch_internal::SweepFind(view, t, &cursor, hint,
                                               &sweep) !=
                             batch_internal::kNpos
                         ? 1
                         : 0);
    }
    return true;
  };
  bool ok = m.search_index()
                ? run(batch_internal::SoAView{m.search_index()})
                : run(batch_internal::UnitsView<U>{&m.units()});
  if (!ok) return batch_internal::NotAscending();
  MODB_COUNTER_INC("temporal.batch.present_calls");
  MODB_COUNTER_ADD("temporal.batch.present_instants", instants.size());
  MODB_COUNTER_ADD("temporal.batch.units_scanned", cursor);
  MODB_COUNTER_ADD("temporal.batch.sweep_cursor_hits", sweep.cursor_hits);
  MODB_COUNTER_ADD("temporal.batch.sweep_gallop_searches",
                   sweep.gallop_searches);
  return Status::OK();
}

/// Allocating convenience wrapper around PresentBatchInto.
template <typename U>
Result<std::vector<std::uint8_t>> PresentBatch(
    const Mapping<U>& m, const std::vector<Instant>& instants) {
  std::vector<std::uint8_t> out;
  MODB_RETURN_IF_ERROR(PresentBatchInto(m, instants, &out));
  return out;
}

/// Scratch buffer for bulk refinement-partition evaluation; reuse one
/// instance across tuple pairs to keep the entry vector's capacity.
using RefinementScratch = std::vector<RefinementEntry>;

/// Batched refinement driver: computes the partition of (a, b) into
/// `*scratch` and invokes fn(entry) for every interval where BOTH
/// mappings are defined (the case every binary lifted op consumes).
/// fn must return Status; the first error aborts the sweep.
template <typename UA, typename UB, typename Fn>
Status ForEachRefinementPair(const Mapping<UA>& a, const Mapping<UB>& b,
                             RefinementScratch* scratch, Fn&& fn) {
  if (scratch->capacity() > 0) {
    MODB_COUNTER_INC("temporal.refinement.scratch_reused");
  } else {
    MODB_COUNTER_INC("temporal.refinement.scratch_fresh");
  }
  MODB_RETURN_IF_ERROR(RefinementPartitionInto(a, b, scratch));
  std::uint64_t codefined = 0;
  for (const RefinementEntry& e : *scratch) {
    if (!e.HasBoth()) continue;
    ++codefined;
    MODB_RETURN_IF_ERROR(fn(e));
  }
  MODB_COUNTER_ADD("temporal.refinement.codefined_entries", codefined);
  return Status::OK();
}

}  // namespace modb

#endif  // MODB_TEMPORAL_BATCH_OPS_H_
