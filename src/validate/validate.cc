#include "validate/validate.h"

#include <cstddef>
#include <map>
#include <utility>

namespace modb {
namespace validate {

namespace internal {

Status Violation(std::string message) {
  MODB_COUNTER_INC("validate.violations");
  return Status::InvalidArgument(std::move(message));
}

void RecordCheck() { MODB_COUNTER_INC("validate.checks"); }

}  // namespace internal

Status ValidateHalfSegmentOrder(const std::vector<HalfSegment>& hs) {
  internal::RecordCheck();
  if (hs.size() % 2 != 0) {
    return internal::Violation("halfsegment array has odd length " +
                               std::to_string(hs.size()) +
                               "; every segment must appear twice");
  }
  for (std::size_t i = 0; i + 1 < hs.size(); ++i) {
    if (!HalfSegmentLess(hs[i], hs[i + 1])) {
      return internal::Violation(
          "halfsegments out of ROSE order at index " + std::to_string(i) +
          ": " + hs[i].seg.ToString() + " must sort strictly before " +
          hs[i + 1].seg.ToString());
    }
  }
  // Pairing: each underlying segment exactly once per dominance side.
  std::map<Seg, std::pair<int, int>> sides;  // seg -> (left, right) counts
  for (const HalfSegment& h : hs) {
    std::pair<int, int>& c = sides[h.seg];
    (h.left_dominating ? c.first : c.second) += 1;
  }
  for (const auto& [seg, c] : sides) {
    if (c.first != 1 || c.second != 1) {
      return internal::Violation(
          "segment " + seg.ToString() + " appears " +
          std::to_string(c.first) + " time(s) left-dominating and " +
          std::to_string(c.second) +
          " time(s) right-dominating; each side must appear exactly once");
    }
  }
  return Status::OK();
}

Status ValidateLine(const Line& line) {
  internal::RecordCheck();
  const std::vector<Seg>& segs = line.segments();
  for (std::size_t i = 0; i + 1 < segs.size(); ++i) {
    if (!(segs[i] < segs[i + 1])) {
      return internal::Violation(
          "line segments not strictly ascending at index " +
          std::to_string(i) + ": " + segs[i].ToString() +
          " must sort strictly before " + segs[i + 1].ToString());
    }
  }
  return Status::OK();
}

Status ValidateRegion(const Region& region) {
  MODB_RETURN_IF_ERROR(ValidateHalfSegmentOrder(region.halfsegments()));
  internal::RecordCheck();
  const std::vector<HalfSegment>& hs = region.halfsegments();
  const auto num_hs = std::int32_t(hs.size());
  const auto num_cycles = std::int32_t(region.NumCycles());
  const auto num_faces = std::int32_t(region.NumFaces());
  for (std::size_t i = 0; i < hs.size(); ++i) {
    const HalfSegment& h = hs[i];
    if (h.cycle < 0 || h.cycle >= num_cycles) {
      return internal::Violation("halfsegment " + std::to_string(i) +
                                 " has cycle link " + std::to_string(h.cycle) +
                                 " outside [0, " + std::to_string(num_cycles) +
                                 ")");
    }
    if (h.face < 0 || h.face >= num_faces) {
      return internal::Violation("halfsegment " + std::to_string(i) +
                                 " has face link " + std::to_string(h.face) +
                                 " outside [0, " + std::to_string(num_faces) +
                                 ")");
    }
    if (h.next_in_cycle < 0 || h.next_in_cycle >= num_hs) {
      return internal::Violation(
          "halfsegment " + std::to_string(i) + " has next-in-cycle link " +
          std::to_string(h.next_in_cycle) + " outside [0, " +
          std::to_string(num_hs) + ")");
    }
  }
  for (std::size_t c = 0; c < region.cycles().size(); ++c) {
    const CycleRecord& rec = region.cycles()[c];
    if (rec.first_halfsegment < 0 || rec.first_halfsegment >= num_hs) {
      return internal::Violation(
          "cycle " + std::to_string(c) + " has first-halfsegment link " +
          std::to_string(rec.first_halfsegment) + " outside [0, " +
          std::to_string(num_hs) + ")");
    }
    if (rec.face < 0 || rec.face >= num_faces) {
      return internal::Violation("cycle " + std::to_string(c) +
                                 " has face link " + std::to_string(rec.face) +
                                 " outside [0, " + std::to_string(num_faces) +
                                 ")");
    }
    if (rec.next_cycle_in_face < -1 || rec.next_cycle_in_face >= num_cycles) {
      return internal::Violation(
          "cycle " + std::to_string(c) + " has next-cycle link " +
          std::to_string(rec.next_cycle_in_face) + " outside [-1, " +
          std::to_string(num_cycles) + ")");
    }
  }
  for (std::size_t f = 0; f < region.faces().size(); ++f) {
    const FaceRecord& rec = region.faces()[f];
    if (rec.first_cycle < 0 || rec.first_cycle >= num_cycles) {
      return internal::Violation(
          "face " + std::to_string(f) + " has first-cycle link " +
          std::to_string(rec.first_cycle) + " outside [0, " +
          std::to_string(num_cycles) + ")");
    }
  }
  return Status::OK();
}

}  // namespace validate
}  // namespace modb
