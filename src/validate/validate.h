// Structural validators for the Section-3 carrier-set invariants — the
// constraints a value must satisfy to *be* a value of its type:
//
//   * range(α), §3.2.3: an ordered set of pairwise disjoint,
//     non-adjacent intervals.
//   * mapping(U), §3.2.4: unit intervals pairwise disjoint and in
//     ascending order, and adjacent intervals carry distinct unit
//     functions (the representation is minimal).
//   * halfsegment arrays, §4.1: strictly ascending in the ROSE total
//     order, every segment present exactly twice (once per dominating
//     endpoint).
//
// The validating factories (Mapping::Make, Line::Make, RegionBuilder)
// enforce these at construction, but the storage layer also has trusted
// paths (MakeTrusted, Region::FromParts) that skip them for speed —
// and a recovered store must not serve a value whose bytes were
// silently damaged in ways the per-page CRC cannot see (a checksummed
// page of *wrong but well-formed* bytes, a stale shadow page stitched
// into a torn commit). Recovery therefore re-checks every loaded root
// with these validators before it is served (storage/recovery.h), and
// Spilled<M>::LoadValidated lets any reader opt in.
//
// Every check bumps validate.checks; every rejection bumps
// validate.violations. All rejections are descriptive InvalidArgument
// statuses naming the violated invariant.

#ifndef MODB_VALIDATE_VALIDATE_H_
#define MODB_VALIDATE_VALIDATE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "core/range_set.h"
#include "core/status.h"
#include "obs/metrics.h"
#include "spatial/halfsegment.h"
#include "spatial/line.h"
#include "spatial/region.h"
#include "temporal/mapping.h"

namespace modb {
namespace validate {

namespace internal {

/// Counts and wraps a rejection: a descriptive InvalidArgument that
/// also bumps validate.violations.
Status Violation(std::string message);

/// Bumps validate.checks (one per validator invocation).
void RecordCheck();

}  // namespace internal

/// range(α) invariants (§3.2.3): intervals in ascending order, pairwise
/// disjoint, and non-adjacent (the canonical, minimal representation).
template <typename T>
Status ValidateRangeSet(const RangeSet<T>& r) {
  internal::RecordCheck();
  const std::vector<Interval<T>>& ivs = r.intervals();
  for (std::size_t i = 0; i + 1 < ivs.size(); ++i) {
    const Interval<T>& u = ivs[i];
    const Interval<T>& v = ivs[i + 1];
    if (!Interval<T>::Disjoint(u, v)) {
      return internal::Violation("range intervals overlap: " + u.ToString() +
                                 " and " + v.ToString());
    }
    if (!Interval<T>::RDisjoint(u, v)) {
      return internal::Violation("range intervals out of order: " +
                                 u.ToString() + " before " + v.ToString());
    }
    if (Interval<T>::Adjacent(u, v)) {
      return internal::Violation(
          "range intervals adjacent (not canonical/minimal): " +
          u.ToString() + " and " + v.ToString());
    }
  }
  return Status::OK();
}

/// mapping(U) invariants (§3.2.4): unit intervals in ascending order and
/// pairwise disjoint; adjacent intervals must carry distinct unit
/// functions (otherwise the representation is not minimal).
template <typename U>
Status ValidateMapping(const Mapping<U>& m) {
  internal::RecordCheck();
  const std::vector<U>& units = m.units();
  for (std::size_t i = 0; i + 1 < units.size(); ++i) {
    const TimeInterval& u = units[i].interval();
    const TimeInterval& v = units[i + 1].interval();
    if (!TimeInterval::Disjoint(u, v)) {
      return internal::Violation("mapping unit intervals overlap: " +
                                 u.ToString() + " and " + v.ToString());
    }
    if (!TimeInterval::RDisjoint(u, v)) {
      return internal::Violation("mapping units out of time order: " +
                                 u.ToString() + " before " + v.ToString());
    }
    if (TimeInterval::Adjacent(u, v) &&
        U::FunctionEqual(units[i], units[i + 1])) {
      return internal::Violation(
          "adjacent mapping units with equal unit function (not minimal): " +
          u.ToString() + " and " + v.ToString());
    }
  }
  return Status::OK();
}

/// Halfsegment-array invariants (§4.1): strictly ascending in the ROSE
/// total order, and each underlying segment stored exactly twice — once
/// left-dominating, once right-dominating.
Status ValidateHalfSegmentOrder(const std::vector<HalfSegment>& hs);

/// Line invariants: segments strictly ascending and unique (the sorted
/// array the halfsegment order is derived from).
Status ValidateLine(const Line& line);

/// Region invariants: the stored halfsegment array is ROSE-ordered and
/// paired, and every cycle/face/next-in-cycle link index is in range.
Status ValidateRegion(const Region& region);

/// Callable adapter for Spilled<M>::LoadValidated: validates the mapping
/// invariants of any moving type's sliced representation.
struct MappingValidator {
  template <typename U>
  Status operator()(const Mapping<U>& m) const {
    return ValidateMapping(m);
  }
};

}  // namespace validate
}  // namespace modb

#endif  // MODB_VALIDATE_VALIDATE_H_
