#include "spatial/region.h"

#include <sstream>

#include "spatial/region_builder.h"

namespace modb {

double SignedArea(const std::vector<Point>& ring) {
  double area2 = 0;
  const std::size_t n = ring.size();
  for (std::size_t i = 0; i < n; ++i) {
    const Point& p = ring[i];
    const Point& q = ring[(i + 1) % n];
    area2 += p.x * q.y - q.x * p.y;
  }
  return area2 / 2;
}

bool EvenOddContains(const std::vector<Seg>& segs, const Point& p,
                     bool* on_boundary) {
  if (on_boundary) *on_boundary = false;
  int crossings = 0;
  for (const Seg& s : segs) {
    if (s.Contains(p)) {
      if (on_boundary) *on_boundary = true;
      return true;
    }
    const Point& a = s.a();
    const Point& b = s.b();
    // Half-open x-range rule avoids double counting at shared vertices.
    bool spans = (a.x <= p.x) != (b.x <= p.x);
    if (!spans) continue;
    double y_at = a.y + (p.x - a.x) * (b.y - a.y) / (b.x - a.x);
    if (y_at > p.y) ++crossings;
  }
  return (crossings % 2) == 1;
}

Result<Region> Region::FromPolygon(const std::vector<Point>& ring) {
  return FromRings(ring, {});
}

Result<Region> Region::FromRings(
    const std::vector<Point>& outer,
    const std::vector<std::vector<Point>>& holes) {
  std::vector<Seg> segs;
  auto add_ring = [&segs](const std::vector<Point>& ring) -> Status {
    if (ring.size() < 3) {
      return Status::InvalidArgument("ring needs at least 3 vertices");
    }
    for (std::size_t i = 0; i < ring.size(); ++i) {
      auto s = Seg::Make(ring[i], ring[(i + 1) % ring.size()]);
      if (!s.ok()) return s.status();
      segs.push_back(*s);
    }
    return Status::OK();
  };
  MODB_RETURN_IF_ERROR(add_ring(outer));
  for (const auto& hole : holes) MODB_RETURN_IF_ERROR(add_ring(hole));
  return RegionBuilder::Close(std::move(segs));
}

Result<Region> Region::FromParts(std::vector<HalfSegment> halfsegments,
                                 std::vector<CycleRecord> cycles,
                                 std::vector<FaceRecord> faces, double area,
                                 double perimeter, Rect bbox) {
  if (halfsegments.size() % 2 != 0) {
    return Status::InvalidArgument("odd halfsegment count");
  }
  const int32_t n_hs = int32_t(halfsegments.size());
  const int32_t n_cy = int32_t(cycles.size());
  const int32_t n_fa = int32_t(faces.size());
  for (const HalfSegment& h : halfsegments) {
    if (h.cycle < 0 || h.cycle >= n_cy || h.face < 0 || h.face >= n_fa ||
        h.next_in_cycle < 0 || h.next_in_cycle >= n_hs) {
      return Status::InvalidArgument("halfsegment link out of range");
    }
  }
  for (const CycleRecord& c : cycles) {
    if (c.first_halfsegment < 0 || c.first_halfsegment >= n_hs ||
        c.face < 0 || c.face >= n_fa || c.next_cycle_in_face >= n_cy) {
      return Status::InvalidArgument("cycle record out of range");
    }
  }
  for (const FaceRecord& f : faces) {
    if (f.first_cycle < 0 || f.first_cycle >= n_cy) {
      return Status::InvalidArgument("face record out of range");
    }
  }
  return Region(std::move(halfsegments), std::move(cycles), std::move(faces),
                area, perimeter, bbox);
}

std::vector<Seg> Region::Segments() const {
  std::vector<Seg> out;
  out.reserve(halfsegments_.size() / 2);
  for (const HalfSegment& h : halfsegments_) {
    if (h.left_dominating) out.push_back(h.seg);
  }
  return out;
}

std::vector<Seg> Region::CycleSegments(int32_t c) const {
  std::vector<Seg> out;
  if (c < 0 || c >= static_cast<int32_t>(cycles_.size())) return out;
  int32_t start = cycles_[c].first_halfsegment;
  int32_t cur = start;
  do {
    out.push_back(halfsegments_[cur].seg);
    cur = halfsegments_[cur].next_in_cycle;
  } while (cur != start && cur >= 0);
  return out;
}

std::vector<Point> Region::CycleVertices(int32_t c) const {
  std::vector<Seg> segs = CycleSegments(c);
  std::vector<Point> out;
  if (segs.empty()) return out;
  // Reconstruct walk order of vertices: consecutive segments share a
  // vertex; emit the shared one.
  for (std::size_t i = 0; i < segs.size(); ++i) {
    const Seg& cur = segs[i];
    const Seg& nxt = segs[(i + 1) % segs.size()];
    // The vertex NOT shared with nxt comes first in walk order.
    if (nxt.HasEndpoint(cur.a())) {
      out.push_back(cur.b());
    } else {
      out.push_back(cur.a());
    }
  }
  return out;
}

bool Region::Contains(const Point& p) const {
  if (!bbox_.Contains(p)) return false;
  // Plumbline directly over the halfsegment array (left halves only), so
  // the hot path allocates nothing.
  int crossings = 0;
  for (const HalfSegment& h : halfsegments_) {
    if (!h.left_dominating) continue;
    if (h.seg.Contains(p)) return true;
    const Point& a = h.seg.a();
    const Point& b = h.seg.b();
    bool spans = (a.x <= p.x) != (b.x <= p.x);
    if (!spans) continue;
    double y_at = a.y + (p.x - a.x) * (b.y - a.y) / (b.x - a.x);
    if (y_at > p.y) ++crossings;
  }
  return (crossings % 2) == 1;
}

bool Region::OnBoundary(const Point& p) const {
  if (!bbox_.Contains(p)) return false;
  for (const HalfSegment& h : halfsegments_) {
    if (h.left_dominating && h.seg.Contains(p)) return true;
  }
  return false;
}

bool Region::InteriorContains(const Point& p) const {
  return Contains(p) && !OnBoundary(p);
}

bool operator==(const Region& a, const Region& b) {
  if (a.halfsegments_.size() != b.halfsegments_.size()) return false;
  for (std::size_t i = 0; i < a.halfsegments_.size(); ++i) {
    if (!(a.halfsegments_[i].seg == b.halfsegments_[i].seg) ||
        a.halfsegments_[i].left_dominating != b.halfsegments_[i].left_dominating) {
      return false;
    }
  }
  return true;
}

std::string Region::ToString() const {
  std::ostringstream os;
  os << "region(" << NumFaces() << " faces, " << NumCycles() << " cycles, "
     << NumSegments() << " segs, area=" << area_ << ")";
  return os.str();
}

}  // namespace modb
