#include "spatial/seg.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace modb {

namespace {

// Parameter of p along s (0 at s.a(), 1 at s.b()), projecting onto the
// dominant axis for stability. Precondition: p collinear with s.
double ParamOf(const Seg& s, const Point& p) {
  double dx = s.b().x - s.a().x;
  double dy = s.b().y - s.a().y;
  if (std::fabs(dx) >= std::fabs(dy)) return (p.x - s.a().x) / dx;
  return (p.y - s.a().y) / dy;
}

Point Lerp(const Seg& s, double u) {
  return Point(s.a().x + u * (s.b().x - s.a().x),
               s.a().y + u * (s.b().y - s.a().y));
}

}  // namespace

std::string Seg::ToString() const {
  std::ostringstream os;
  os << a_.ToString() << "-" << b_.ToString();
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Seg& s) {
  return os << s.ToString();
}

bool Seg::Contains(const Point& p) const {
  if (Orientation(a_, b_, p) != 0) return false;
  // p within the bounding box of the segment (with tolerance).
  return ApproxGe(p.x, std::min(a_.x, b_.x)) &&
         ApproxLe(p.x, std::max(a_.x, b_.x)) &&
         ApproxGe(p.y, std::min(a_.y, b_.y)) &&
         ApproxLe(p.y, std::max(a_.y, b_.y));
}

bool Seg::InteriorContains(const Point& p) const {
  return Contains(p) && !ApproxEqual(p, a_) && !ApproxEqual(p, b_);
}

bool Collinear(const Seg& s, const Seg& t) {
  return Orientation(s.a(), s.b(), t.a()) == 0 &&
         Orientation(s.a(), s.b(), t.b()) == 0;
}

bool Meet(const Seg& s, const Seg& t) {
  return s.HasEndpoint(t.a()) || s.HasEndpoint(t.b());
}

bool Touch(const Seg& s, const Seg& t) {
  return s.InteriorContains(t.a()) || s.InteriorContains(t.b()) ||
         t.InteriorContains(s.a()) || t.InteriorContains(s.b());
}

bool Overlap(const Seg& s, const Seg& t) {
  if (!Collinear(s, t)) return false;
  SegIntersection x = Intersect(s, t);
  return x.kind == SegIntersection::Kind::kSegment;
}

bool PIntersect(const Seg& s, const Seg& t) {
  if (Collinear(s, t)) return false;
  int o1 = Orientation(s.a(), s.b(), t.a());
  int o2 = Orientation(s.a(), s.b(), t.b());
  int o3 = Orientation(t.a(), t.b(), s.a());
  int o4 = Orientation(t.a(), t.b(), s.b());
  // Strict crossing: endpoints of each segment strictly on opposite sides
  // of the other's supporting line.
  return o1 * o2 < 0 && o3 * o4 < 0;
}

bool SegsIntersect(const Seg& s, const Seg& t) {
  return Intersect(s, t).kind != SegIntersection::Kind::kNone;
}

SegIntersection Intersect(const Seg& s, const Seg& t) {
  SegIntersection out;
  if (Collinear(s, t)) {
    // Project both onto s's parameterization.
    double u0 = ParamOf(s, t.a());
    double u1 = ParamOf(s, t.b());
    if (u0 > u1) std::swap(u0, u1);
    double lo = std::max(0.0, u0);
    double hi = std::min(1.0, u1);
    double span_eps = kEpsilon / std::max(s.Length(), kEpsilon);
    if (hi < lo - span_eps) return out;  // Disjoint collinear segments.
    Point pa = Lerp(s, lo);
    Point pb = Lerp(s, hi);
    if (hi - lo <= span_eps) {
      out.kind = SegIntersection::Kind::kPoint;
      out.point = pa;
      return out;
    }
    out.kind = SegIntersection::Kind::kSegment;
    if (pb < pa) std::swap(pa, pb);
    out.seg_a = pa;
    out.seg_b = pb;
    return out;
  }
  // Non-collinear: solve s.a + u*(s.b-s.a) = t.a + v*(t.b-t.a).
  double d1x = s.b().x - s.a().x, d1y = s.b().y - s.a().y;
  double d2x = t.b().x - t.a().x, d2y = t.b().y - t.a().y;
  double denom = d1x * d2y - d1y * d2x;
  if (denom == 0) return out;  // Parallel non-collinear.
  double ex = t.a().x - s.a().x, ey = t.a().y - s.a().y;
  double u = (ex * d2y - ey * d2x) / denom;
  double v = (ex * d1y - ey * d1x) / denom;
  double ues = kEpsilon / std::max(s.Length(), kEpsilon);
  double vet = kEpsilon / std::max(t.Length(), kEpsilon);
  if (u < -ues || u > 1 + ues || v < -vet || v > 1 + vet) return out;
  out.kind = SegIntersection::Kind::kPoint;
  out.point = Lerp(s, std::clamp(u, 0.0, 1.0));
  return out;
}

double Distance(const Point& p, const Seg& s) {
  double dx = s.b().x - s.a().x, dy = s.b().y - s.a().y;
  double len2 = dx * dx + dy * dy;
  double u = ((p.x - s.a().x) * dx + (p.y - s.a().y) * dy) / len2;
  u = std::clamp(u, 0.0, 1.0);
  return Distance(p, Point(s.a().x + u * dx, s.a().y + u * dy));
}

double Distance(const Seg& s, const Seg& t) {
  if (SegsIntersect(s, t)) return 0;
  return std::min(std::min(Distance(s.a(), t), Distance(s.b(), t)),
                  std::min(Distance(t.a(), s), Distance(t.b(), s)));
}

}  // namespace modb
