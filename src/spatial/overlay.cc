#include "spatial/overlay.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/real.h"
#include "spatial/region_builder.h"
#include "spatial/seg.h"
#include "spatial/segment_grid.h"

namespace modb {

namespace {

double ParamOf(const Seg& s, const Point& p) {
  double dx = s.b().x - s.a().x;
  double dy = s.b().y - s.a().y;
  if (std::fabs(dx) >= std::fabs(dy)) return (p.x - s.a().x) / dx;
  return (p.y - s.a().y) / dy;
}

Point Lerp(const Seg& s, double u) {
  return Point(s.a().x + u * (s.b().x - s.a().x),
               s.a().y + u * (s.b().y - s.a().y));
}

// Splits every segment of `own` at its intersections with `other`,
// pruning candidates with a grid over `other`.
std::vector<Seg> Node(const std::vector<Seg>& own,
                      const std::vector<Seg>& other,
                      const SegmentGrid& other_grid) {
  std::vector<Seg> out;
  std::vector<int32_t> candidates;
  for (const Seg& s : own) {
    candidates.clear();
    // Segments of `other` registered in any grid column overlapping s's
    // x-range are a sound candidate superset for intersections with s.
    Rect bb = s.BoundingBox();
    other_grid.VisitXRange(bb.min_x, bb.max_x,
                           [&](int32_t i) { candidates.push_back(i); });
    std::vector<double> params = {0.0, 1.0};
    for (int32_t ti : candidates) {
      const Seg& t = other[std::size_t(ti)];
      SegIntersection x = Intersect(s, t);
      if (x.kind == SegIntersection::Kind::kPoint) {
        params.push_back(ParamOf(s, x.point));
      } else if (x.kind == SegIntersection::Kind::kSegment) {
        params.push_back(ParamOf(s, x.seg_a));
        params.push_back(ParamOf(s, x.seg_b));
      }
    }
    std::sort(params.begin(), params.end());
    double eps = kEpsilon / std::max(s.Length(), kEpsilon);
    double prev = 0.0;
    for (double u : params) {
      u = std::clamp(u, 0.0, 1.0);
      if (u > prev + eps) {
        auto piece = Seg::Make(Lerp(s, prev), Lerp(s, u));
        if (piece.ok()) out.push_back(*piece);
        prev = u;
      }
    }
    if (prev < 1.0 - eps) {
      auto piece = Seg::Make(Lerp(s, prev), Lerp(s, 1.0));
      if (piece.ok()) out.push_back(*piece);
    }
  }
  return out;
}

// Snaps nearly coincident endpoints (produced by noding the same
// intersection from two different parent segments) to one representative
// so RegionBuilder sees exactly shared vertices.
class SnapPool {
 public:
  explicit SnapPool(double tol) : tol_(tol) {}

  void Add(const Point& p) { pts_.push_back(p); }

  void Build() {
    std::sort(pts_.begin(), pts_.end());
    reps_.clear();
    for (const Point& p : pts_) {
      bool merged = false;
      // Candidates are nearby in the sorted order; scan back while x is
      // within tolerance.
      for (auto it = reps_.rbegin(); it != reps_.rend(); ++it) {
        if (p.x - it->x > tol_) break;
        if (std::fabs(p.y - it->y) <= tol_) {
          merged = true;
          break;
        }
      }
      if (!merged) reps_.push_back(p);
    }
  }

  Point Snap(const Point& p) const {
    // Binary search window on x, then nearest rep within tolerance.
    auto lo = std::lower_bound(reps_.begin(), reps_.end(),
                               Point(p.x - tol_ * 2, -kInfinity));
    const Point* best = nullptr;
    double best_d = tol_;
    for (auto it = lo; it != reps_.end() && it->x <= p.x + tol_ * 2; ++it) {
      double d = std::max(std::fabs(it->x - p.x), std::fabs(it->y - p.y));
      if (d <= best_d) {
        best_d = d;
        best = &*it;
      }
    }
    return best ? *best : p;
  }

 private:
  double tol_;
  std::vector<Point> pts_;
  std::vector<Point> reps_;
};

// Parity of operand boundary crossings strictly above (non-vertical) or
// strictly left (vertical) of the midpoint m of a sub-segment, with
// candidates from the operand's grid. Odd parity means the operand's
// interior occupies that side.
bool SideInside(const std::vector<Seg>& operand, const SegmentGrid& grid,
                const Point& m, bool vertical, bool positive_side) {
  int parity = 0;
  double tol = kEpsilon * (1.0 + std::fabs(vertical ? m.x : m.y));
  auto tally = [&](int32_t i) {
    const Seg& t = operand[std::size_t(i)];
    const Point& a = t.a();
    const Point& b = t.b();
    if (!vertical) {
      bool spans = (a.x <= m.x) != (b.x <= m.x);
      if (!spans) return;
      double y_at = a.y + (m.x - a.x) * (b.y - a.y) / (b.x - a.x);
      if (positive_side ? (y_at > m.y + tol) : (y_at < m.y - tol)) ++parity;
    } else {
      bool spans = (a.y <= m.y) != (b.y <= m.y);
      if (!spans) return;
      double x_at = a.x + (m.y - a.y) * (b.x - a.x) / (b.y - a.y);
      if (positive_side ? (x_at > m.x + tol) : (x_at < m.x - tol)) ++parity;
    }
  };
  if (!vertical) {
    grid.VisitColumn(m.x, tally);
  } else {
    grid.VisitRow(m.y, tally);
  }
  return (parity % 2) == 1;
}

bool Combine(BoolOp op, bool in_a, bool in_b) {
  switch (op) {
    case BoolOp::kUnion:
      return in_a || in_b;
    case BoolOp::kIntersection:
      return in_a && in_b;
    case BoolOp::kDifference:
      return in_a && !in_b;
  }
  return false;
}

}  // namespace

Result<Region> Overlay(const Region& a, const Region& b, BoolOp op) {
  const std::vector<Seg> segs_a = a.Segments();
  const std::vector<Seg> segs_b = b.Segments();

  // Cheap outs.
  if (a.IsEmpty()) {
    if (op == BoolOp::kUnion) return b;
    return Region();
  }
  if (b.IsEmpty()) {
    if (op == BoolOp::kIntersection) return Region();
    return a;
  }

  SegmentGrid grid_a(segs_a);
  SegmentGrid grid_b(segs_b);

  std::vector<Seg> noded = Node(segs_a, segs_b, grid_b);
  std::vector<Seg> noded_b = Node(segs_b, segs_a, grid_a);
  noded.insert(noded.end(), noded_b.begin(), noded_b.end());

  // Classify BEFORE snapping: every noded piece is an exact sub-segment
  // of an original boundary edge, so the vertical/horizontal ray parity
  // test is meaningful (snapping can tilt an exactly-vertical piece by an
  // ulp, which would break the side classification).
  std::vector<Seg> kept;
  for (const Seg& s : noded) {
    Point m = s.Midpoint();
    bool vertical = s.IsVertical();
    bool above_a = SideInside(segs_a, grid_a, m, vertical, true);
    bool below_a = SideInside(segs_a, grid_a, m, vertical, false);
    bool above_b = SideInside(segs_b, grid_b, m, vertical, true);
    bool below_b = SideInside(segs_b, grid_b, m, vertical, false);
    bool above_r = Combine(op, above_a, above_b);
    bool below_r = Combine(op, below_a, below_b);
    if (above_r != below_r) kept.push_back(s);
  }
  if (kept.empty()) return Region();

  // Snap endpoints so fragments produced by noding the two operands
  // independently share exact vertices, then deduplicate shared-boundary
  // fragments.
  SnapPool pool(kEpsilon * 16);
  for (const Seg& s : kept) {
    pool.Add(s.a());
    pool.Add(s.b());
  }
  pool.Build();
  std::vector<Seg> snapped;
  snapped.reserve(kept.size());
  for (const Seg& s : kept) {
    auto piece = Seg::Make(pool.Snap(s.a()), pool.Snap(s.b()));
    if (piece.ok()) snapped.push_back(*piece);
  }
  std::sort(snapped.begin(), snapped.end());
  snapped.erase(std::unique(snapped.begin(), snapped.end()), snapped.end());

  if (snapped.empty()) return Region();
  return RegionBuilder::Close(std::move(snapped));
}

}  // namespace modb
