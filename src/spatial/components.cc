#include "spatial/components.h"

#include <numeric>

#include "spatial/region_builder.h"

namespace modb {

namespace {

class DisjointSets {
 public:
  explicit DisjointSets(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  std::size_t Find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Merge(std::size_t a, std::size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

Result<std::vector<Region>> Components(const Region& r) {
  std::vector<Region> out;
  out.reserve(r.NumFaces());
  for (std::size_t f = 0; f < r.NumFaces(); ++f) {
    // Gather the face's cycles by walking its cycle chain.
    std::vector<Seg> segs;
    int32_t c = r.faces()[f].first_cycle;
    while (c >= 0) {
      std::vector<Seg> cyc = r.CycleSegments(c);
      segs.insert(segs.end(), cyc.begin(), cyc.end());
      c = r.cycles()[std::size_t(c)].next_cycle_in_face;
    }
    Result<Region> face = RegionBuilder::Close(std::move(segs));
    if (!face.ok()) return face.status();
    out.push_back(std::move(*face));
  }
  return out;
}

std::vector<Line> Components(const Line& l) {
  const std::vector<Seg>& segs = l.segments();
  const std::size_t n = segs.size();
  DisjointSets ds(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      // Sorted by left endpoint: past i's x-range nothing connects.
      if (segs[j].a().x > segs[i].b().x) break;
      if (SegsIntersect(segs[i], segs[j])) ds.Merge(i, j);
    }
  }
  std::vector<std::vector<Seg>> groups;
  std::vector<int> group_of(n, -1);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t root = ds.Find(i);
    if (group_of[root] < 0) {
      group_of[root] = int(groups.size());
      groups.emplace_back();
    }
    groups[std::size_t(group_of[root])].push_back(segs[i]);
  }
  std::vector<Line> out;
  out.reserve(groups.size());
  for (auto& group : groups) {
    // The segments come from a valid line value, so Make cannot fail.
    out.push_back(*Line::Make(std::move(group)));
  }
  return out;
}

std::size_t NumComponents(const Region& r) { return r.NumFaces(); }

std::size_t NumComponents(const Line& l) { return Components(l).size(); }

}  // namespace modb
