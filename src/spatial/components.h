// The `components` operation of the abstract model: decomposing composite
// spatial values into their connected parts — a region into its faces, a
// line into its edge-connected components.

#ifndef MODB_SPATIAL_COMPONENTS_H_
#define MODB_SPATIAL_COMPONENTS_H_

#include <vector>

#include "core/status.h"
#include "spatial/line.h"
#include "spatial/region.h"

namespace modb {

/// Splits a region into single-face regions (each keeping its holes).
Result<std::vector<Region>> Components(const Region& r);

/// Splits a line into connected components (segments linked by shared
/// endpoints or crossings).
std::vector<Line> Components(const Line& l);

/// Number of faces / connected components without materializing them.
std::size_t NumComponents(const Region& r);
std::size_t NumComponents(const Line& l);

}  // namespace modb

#endif  // MODB_SPATIAL_COMPONENTS_H_
