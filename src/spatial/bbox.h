// Bounding boxes: 2D rectangles (the "bounding box" summary data of
// Section 4.1) and 3D bounding cubes over space × time (the per-unit
// "bounding cube" of Section 4.2).

#ifndef MODB_SPATIAL_BBOX_H_
#define MODB_SPATIAL_BBOX_H_

#include <algorithm>

#include "core/instant.h"
#include "core/real.h"
#include "spatial/point.h"

namespace modb {

/// Axis-aligned 2D rectangle. An empty Rect (default constructed) has
/// min > max and contains nothing.
struct Rect {
  double min_x = kInfinity;
  double min_y = kInfinity;
  double max_x = -kInfinity;
  double max_y = -kInfinity;

  Rect() = default;
  Rect(double x0, double y0, double x1, double y1)
      : min_x(x0), min_y(y0), max_x(x1), max_y(y1) {}

  static Rect Of(const Point& p) { return Rect(p.x, p.y, p.x, p.y); }

  bool IsEmpty() const { return min_x > max_x || min_y > max_y; }

  void Extend(const Point& p) {
    min_x = std::min(min_x, p.x);
    min_y = std::min(min_y, p.y);
    max_x = std::max(max_x, p.x);
    max_y = std::max(max_y, p.y);
  }

  void Extend(const Rect& r) {
    min_x = std::min(min_x, r.min_x);
    min_y = std::min(min_y, r.min_y);
    max_x = std::max(max_x, r.max_x);
    max_y = std::max(max_y, r.max_y);
  }

  bool Contains(const Point& p) const {
    return p.x >= min_x && p.x <= max_x && p.y >= min_y && p.y <= max_y;
  }

  static bool Intersect(const Rect& a, const Rect& b) {
    return a.min_x <= b.max_x && b.min_x <= a.max_x && a.min_y <= b.max_y &&
           b.min_y <= a.max_y;
  }

  friend bool operator==(const Rect& a, const Rect& b) {
    return a.min_x == b.min_x && a.min_y == b.min_y && a.max_x == b.max_x &&
           a.max_y == b.max_y;
  }
};

/// Axis-aligned 3D box over (x, y, t): the bounding cube stored with each
/// variable-size unit (Section 4.2) and the key of the R-tree index.
struct Cube {
  Rect rect;
  Instant min_t = kInfinity;
  Instant max_t = -kInfinity;

  Cube() = default;
  Cube(const Rect& r, Instant t0, Instant t1)
      : rect(r), min_t(t0), max_t(t1) {}

  bool IsEmpty() const { return rect.IsEmpty() || min_t > max_t; }

  void Extend(const Cube& c) {
    rect.Extend(c.rect);
    min_t = std::min(min_t, c.min_t);
    max_t = std::max(max_t, c.max_t);
  }

  static bool Intersect(const Cube& a, const Cube& b) {
    return Rect::Intersect(a.rect, b.rect) && a.min_t <= b.max_t &&
           b.min_t <= a.max_t;
  }

  /// Margin-based volume used by the R-tree heuristics (degenerate boxes
  /// still get non-zero weight).
  double Volume() const {
    if (IsEmpty()) return 0;
    return (rect.max_x - rect.min_x + 1e-12) *
           (rect.max_y - rect.min_y + 1e-12) * (max_t - min_t + 1e-12);
  }
};

}  // namespace modb

#endif  // MODB_SPATIAL_BBOX_H_
