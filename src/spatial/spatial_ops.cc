#include "spatial/spatial_ops.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "spatial/overlay.h"

namespace modb {

bool Inside(const Point& p, const Region& r) { return r.Contains(p); }

bool Inside(const Points& ps, const Region& r) {
  if (ps.IsEmpty()) return false;
  for (const Point& p : ps.points()) {
    if (!r.Contains(p)) return false;
  }
  return true;
}

bool Inside(const Line& l, const Region& r) {
  if (l.IsEmpty()) return false;
  const std::vector<Seg> boundary = r.Segments();
  for (const Seg& s : l.segments()) {
    // Both endpoints and the midpoint inside, and no proper crossing with
    // the boundary.
    if (!r.Contains(s.a()) || !r.Contains(s.b()) || !r.Contains(s.Midpoint())) {
      return false;
    }
    for (const Seg& b : boundary) {
      if (PIntersect(s, b)) return false;
    }
  }
  return true;
}

bool Inside(const Region& a, const Region& b) {
  if (a.IsEmpty()) return false;
  Result<Region> diff = Difference(a, b);
  return diff.ok() && diff->IsEmpty();
}

bool Intersects(const Line& a, const Line& b) {
  if (!Rect::Intersect(a.BoundingBox(), b.BoundingBox())) return false;
  for (const Seg& s : a.segments()) {
    for (const Seg& t : b.segments()) {
      if (SegsIntersect(s, t)) return true;
    }
  }
  return false;
}

bool Intersects(const Line& l, const Region& r) {
  if (!Rect::Intersect(l.BoundingBox(), r.BoundingBox())) return false;
  const std::vector<Seg> boundary = r.Segments();
  for (const Seg& s : l.segments()) {
    if (r.Contains(s.a()) || r.Contains(s.b())) return true;
    for (const Seg& b : boundary) {
      if (SegsIntersect(s, b)) return true;
    }
  }
  return false;
}

bool Intersects(const Region& a, const Region& b) {
  if (!Rect::Intersect(a.BoundingBox(), b.BoundingBox())) return false;
  // Boundary contact or crossing.
  for (const Seg& s : a.Segments()) {
    if (b.Contains(s.a()) || b.Contains(s.b())) return true;
    for (const Seg& t : b.Segments()) {
      if (SegsIntersect(s, t)) return true;
    }
  }
  // One may contain the other entirely.
  for (const Seg& t : b.Segments()) {
    if (a.Contains(t.a())) return true;
  }
  return false;
}

namespace {

double ParamOf(const Seg& s, const Point& p) {
  double dx = s.b().x - s.a().x;
  double dy = s.b().y - s.a().y;
  if (std::fabs(dx) >= std::fabs(dy)) return (p.x - s.a().x) / dx;
  return (p.y - s.a().y) / dy;
}

Point Lerp(const Seg& s, double u) {
  return Point(s.a().x + u * (s.b().x - s.a().x),
               s.a().y + u * (s.b().y - s.a().y));
}

// Splits the line's segments at region-boundary crossings and keeps the
// pieces whose midpoint satisfies `keep_inside`.
Line ClipLine(const Line& l, const Region& r, bool keep_inside) {
  const std::vector<Seg> boundary = r.Segments();
  std::vector<Seg> out;
  for (const Seg& s : l.segments()) {
    std::vector<double> cuts = {0.0, 1.0};
    for (const Seg& b : boundary) {
      SegIntersection x = Intersect(s, b);
      if (x.kind == SegIntersection::Kind::kPoint) {
        cuts.push_back(ParamOf(s, x.point));
      } else if (x.kind == SegIntersection::Kind::kSegment) {
        cuts.push_back(ParamOf(s, x.seg_a));
        cuts.push_back(ParamOf(s, x.seg_b));
      }
    }
    std::sort(cuts.begin(), cuts.end());
    double eps = kEpsilon / std::max(s.Length(), kEpsilon);
    double prev = 0.0;
    for (double u : cuts) {
      u = std::clamp(u, 0.0, 1.0);
      if (u <= prev + eps) continue;
      Point mid = Lerp(s, (prev + u) / 2);
      if (r.Contains(mid) == keep_inside) {
        auto piece = Seg::Make(Lerp(s, prev), Lerp(s, u));
        if (piece.ok()) out.push_back(*piece);
      }
      prev = u;
    }
  }
  return Line::Canonical(std::move(out));
}

}  // namespace

Line Intersection(const Line& l, const Region& r) {
  if (!Rect::Intersect(l.BoundingBox(), r.BoundingBox())) return Line();
  return ClipLine(l, r, /*keep_inside=*/true);
}

Line Difference(const Line& l, const Region& r) {
  if (!Rect::Intersect(l.BoundingBox(), r.BoundingBox())) return l;
  return ClipLine(l, r, /*keep_inside=*/false);
}

double SpatialDistance(const Point& p, const Points& ps) {
  double best = kInfinity;
  for (const Point& q : ps.points()) best = std::min(best, Distance(p, q));
  return best;
}

double SpatialDistance(const Point& p, const Line& l) {
  double best = kInfinity;
  for (const Seg& s : l.segments()) best = std::min(best, Distance(p, s));
  return best;
}

double SpatialDistance(const Point& p, const Region& r) {
  if (r.Contains(p)) return 0;
  double best = kInfinity;
  for (const HalfSegment& h : r.halfsegments()) {
    if (h.left_dominating) best = std::min(best, Distance(p, h.seg));
  }
  return best;
}

double SpatialDistance(const Line& a, const Line& b) {
  double best = kInfinity;
  for (const Seg& s : a.segments()) {
    for (const Seg& t : b.segments()) {
      best = std::min(best, Distance(s, t));
      if (best == 0) return 0;
    }
  }
  return best;
}

double SpatialDistance(const Region& a, const Region& b) {
  if (Intersects(a, b)) return 0;
  double best = kInfinity;
  for (const Seg& s : a.Segments()) {
    for (const Seg& t : b.Segments()) {
      best = std::min(best, Distance(s, t));
    }
  }
  return best;
}

double Direction(const Point& p, const Point& q) {
  if (p == q) return -1;
  double deg = std::atan2(q.y - p.y, q.x - p.x) * 180.0 / std::numbers::pi;
  if (deg < 0) deg += 360.0;
  return deg;
}

}  // namespace modb
