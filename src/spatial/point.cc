#include "spatial/point.h"

#include <algorithm>
#include <sstream>

namespace modb {

std::string Point::ToString() const {
  std::ostringstream os;
  os << "(" << x << ", " << y << ")";
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Point& p) {
  return os << p.ToString();
}

int Orientation(const Point& a, const Point& b, const Point& c) {
  double cr = Cross(a, b, c);
  // Relative tolerance: the cross product scales with the product of the
  // two edge lengths, so an absolute epsilon would misclassify large
  // coordinates and over-classify tiny ones.
  double scale = std::max({1.0, std::fabs(b.x - a.x) + std::fabs(b.y - a.y),
                           std::fabs(c.x - a.x) + std::fabs(c.y - a.y)});
  double eps = kEpsilon * scale * scale;
  if (cr > eps) return 1;
  if (cr < -eps) return -1;
  return 0;
}

}  // namespace modb
