// RegionBuilder implements the `close` operation of Section 4.1:
// "Algorithms constructing region values generally compute the list of
// halfsegments and then call a close operation offered by the region data
// type, which determines the structure of faces and cycles and represents
// it by setting pointers."
//
// Close validates the D_region carrier-set constraints (Section 3.2.2):
//   * no properly intersecting segments anywhere,
//   * no collinear overlapping segments anywhere,
//   * every endpoint of even degree, segments decomposable into simple
//     cycles (each endpoint occurring exactly twice per cycle),
//   * no touch within a single cycle (touch across cycles is allowed),
// and then derives cycles, hole/outer classification by containment
// depth, face assignment, inside-above flags, and the index-linked
// halfsegment/cycle/face arrays.

#ifndef MODB_SPATIAL_REGION_BUILDER_H_
#define MODB_SPATIAL_REGION_BUILDER_H_

#include <vector>

#include "core/status.h"
#include "spatial/region.h"
#include "spatial/seg.h"

namespace modb {

class RegionBuilder {
 public:
  /// Pairwise-constraint checking strategy. kGrid uses a uniform spatial
  /// hash (near-linear for realistic inputs); kNaive compares all pairs
  /// with an x-sorted early exit (the baseline for bench_region_close).
  enum class Validation { kGrid, kNaive };

  /// The close operation: builds a Region from a segment soup.
  /// Endpoints that should be shared must match exactly (bitwise double
  /// equality); this mirrors the paper's unique-representation premise.
  static Result<Region> Close(std::vector<Seg> segs,
                              Validation validation = Validation::kGrid);
};

}  // namespace modb

#endif  // MODB_SPATIAL_REGION_BUILDER_H_
