// The `points` type (Section 3.2.2): D_points = 2^Point, a finite set of
// points. Stored as a lexicographically sorted array (Section 4.1), which
// makes equality a memcmp-style array comparison.

#ifndef MODB_SPATIAL_POINTS_H_
#define MODB_SPATIAL_POINTS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "spatial/bbox.h"
#include "spatial/point.h"

namespace modb {

/// A finite set of points in canonical (sorted, duplicate-free) order.
class Points {
 public:
  /// The empty point set.
  Points() = default;

  /// Builds the canonical set from arbitrary input (sorts, removes
  /// duplicates).
  static Points FromVector(std::vector<Point> pts);

  bool IsEmpty() const { return points_.empty(); }
  std::size_t Size() const { return points_.size(); }
  const std::vector<Point>& points() const { return points_; }
  const Point& point(std::size_t i) const { return points_[i]; }

  bool Contains(const Point& p) const;
  Rect BoundingBox() const;

  static Points Union(const Points& a, const Points& b);
  static Points Intersection(const Points& a, const Points& b);
  static Points Difference(const Points& a, const Points& b);

  friend bool operator==(const Points& a, const Points& b) {
    return a.points_ == b.points_;
  }

  std::string ToString() const;

 private:
  explicit Points(std::vector<Point> sorted) : points_(std::move(sorted)) {}

  std::vector<Point> points_;
};

}  // namespace modb

#endif  // MODB_SPATIAL_POINTS_H_
