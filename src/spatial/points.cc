#include "spatial/points.h"

#include <algorithm>
#include <sstream>

namespace modb {

Points Points::FromVector(std::vector<Point> pts) {
  std::sort(pts.begin(), pts.end());
  pts.erase(std::unique(pts.begin(), pts.end()), pts.end());
  return Points(std::move(pts));
}

bool Points::Contains(const Point& p) const {
  return std::binary_search(points_.begin(), points_.end(), p);
}

Rect Points::BoundingBox() const {
  Rect r;
  for (const Point& p : points_) r.Extend(p);
  return r;
}

Points Points::Union(const Points& a, const Points& b) {
  std::vector<Point> out;
  out.reserve(a.Size() + b.Size());
  std::set_union(a.points_.begin(), a.points_.end(), b.points_.begin(),
                 b.points_.end(), std::back_inserter(out));
  return Points(std::move(out));
}

Points Points::Intersection(const Points& a, const Points& b) {
  std::vector<Point> out;
  std::set_intersection(a.points_.begin(), a.points_.end(), b.points_.begin(),
                        b.points_.end(), std::back_inserter(out));
  return Points(std::move(out));
}

Points Points::Difference(const Points& a, const Points& b) {
  std::vector<Point> out;
  std::set_difference(a.points_.begin(), a.points_.end(), b.points_.begin(),
                      b.points_.end(), std::back_inserter(out));
  return Points(std::move(out));
}

std::string Points::ToString() const {
  std::ostringstream os;
  os << "{";
  for (std::size_t i = 0; i < points_.size(); ++i) {
    if (i) os << ", ";
    os << points_[i].ToString();
  }
  os << "}";
  return os.str();
}

}  // namespace modb
