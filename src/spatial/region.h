// The `region` type (Section 3.2.2): a set of edge-disjoint faces, each an
// outer cycle plus hole cycles, discretized as polygons.
//
// Data structure per Section 4.1: an ordered halfsegment array plus two
// link arrays `cycles` and `faces`; all cross references are array indices
// ("pointers" in the paper's terminology). Regions are immutable and can
// only be created through RegionBuilder::Close (the paper's "close"
// operation), which validates the D_region constraints and derives the
// cycle/face structure.

#ifndef MODB_SPATIAL_REGION_H_
#define MODB_SPATIAL_REGION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/status.h"
#include "spatial/bbox.h"
#include "spatial/halfsegment.h"
#include "spatial/seg.h"

namespace modb {

/// A cycle record of the `cycles` array: a simple polygon, either the
/// outer boundary of a face or a hole.
struct CycleRecord {
  /// Index of the first halfsegment of this cycle in the halfsegment
  /// array.
  int32_t first_halfsegment = -1;
  /// Index of the next cycle of the same face (-1 at the end) — the
  /// paper's per-face cycle chain.
  int32_t next_cycle_in_face = -1;
  /// Owning face.
  int32_t face = -1;
  /// True for hole cycles.
  bool is_hole = false;
  /// Number of segments in the cycle.
  int32_t size = 0;
};

/// A face record of the `faces` array.
struct FaceRecord {
  /// Index of the face's outer cycle (head of the cycle chain).
  int32_t first_cycle = -1;
  /// Number of hole cycles.
  int32_t num_holes = 0;
};

/// A region value. Immutable; equality is array equality thanks to the
/// canonical halfsegment order (Section 4's "two set values are equal iff
/// their array representations are equal").
class Region {
 public:
  /// The empty region.
  Region() = default;

  /// Convenience: builds a single-face region from a simple polygon ring
  /// (vertices in any orientation, consecutive duplicates rejected).
  static Result<Region> FromPolygon(const std::vector<Point>& ring);

  /// Convenience: one face with holes.
  static Result<Region> FromRings(const std::vector<Point>& outer,
                                  const std::vector<std::vector<Point>>& holes);

  /// Non-validating reassembly from the stored arrays (Section 4.1's
  /// representation); used by the storage layer. Performs only structural
  /// sanity checks (sizes, index bounds).
  static Result<Region> FromParts(std::vector<HalfSegment> halfsegments,
                                  std::vector<CycleRecord> cycles,
                                  std::vector<FaceRecord> faces, double area,
                                  double perimeter, Rect bbox);

  bool IsEmpty() const { return halfsegments_.empty(); }
  std::size_t NumSegments() const { return halfsegments_.size() / 2; }
  std::size_t NumCycles() const { return cycles_.size(); }
  std::size_t NumFaces() const { return faces_.size(); }

  const std::vector<HalfSegment>& halfsegments() const {
    return halfsegments_;
  }
  const std::vector<CycleRecord>& cycles() const { return cycles_; }
  const std::vector<FaceRecord>& faces() const { return faces_; }

  /// The undirected segments (each once).
  std::vector<Seg> Segments() const;
  /// The segments of cycle `c` in walk order (following next_in_cycle).
  std::vector<Seg> CycleSegments(int32_t c) const;
  /// The vertices of cycle `c` in walk order.
  std::vector<Point> CycleVertices(int32_t c) const;

  /// Point-set membership (interior or boundary) — the plumbline
  /// algorithm referenced in Section 5.2.
  bool Contains(const Point& p) const;
  /// True iff p lies on a boundary segment.
  bool OnBoundary(const Point& p) const;
  /// True iff p is in the interior (contained but not on the boundary).
  bool InteriorContains(const Point& p) const;

  /// Total area (the `size` operation of the abstract model): face areas
  /// minus hole areas.
  double Area() const { return area_; }
  /// Total boundary length.
  double Perimeter() const { return perimeter_; }
  Rect BoundingBox() const { return bbox_; }

  friend bool operator==(const Region& a, const Region& b);

  std::string ToString() const;

 private:
  friend class RegionBuilder;

  Region(std::vector<HalfSegment> hs, std::vector<CycleRecord> cycles,
         std::vector<FaceRecord> faces, double area, double perimeter,
         Rect bbox)
      : halfsegments_(std::move(hs)),
        cycles_(std::move(cycles)),
        faces_(std::move(faces)),
        area_(area),
        perimeter_(perimeter),
        bbox_(bbox) {}

  std::vector<HalfSegment> halfsegments_;
  std::vector<CycleRecord> cycles_;
  std::vector<FaceRecord> faces_;
  double area_ = 0;
  double perimeter_ = 0;
  Rect bbox_;
};

/// Signed area of a polygon given by its vertices in walk order
/// (positive for counterclockwise).
double SignedArea(const std::vector<Point>& ring);

/// Even-odd point-in-polygon test against an arbitrary segment soup.
/// Returns true when p is inside or on a segment. This is the plumbline
/// primitive: it counts boundary crossings of the upward vertical ray.
bool EvenOddContains(const std::vector<Seg>& segs, const Point& p,
                     bool* on_boundary = nullptr);

}  // namespace modb

#endif  // MODB_SPATIAL_REGION_H_
