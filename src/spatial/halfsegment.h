// Halfsegments (Section 4.1): each segment is stored twice, once per
// endpoint; the stored endpoint is the *dominating point*. The total order
// on halfsegments (dominating point first, right-before-left at equal
// points, then angular order) is what makes plane-sweep algorithms a
// linear scan over the array — the design rationale given in the paper and
// in [GdRS95].

#ifndef MODB_SPATIAL_HALFSEGMENT_H_
#define MODB_SPATIAL_HALFSEGMENT_H_

#include <cstdint>
#include <vector>

#include "spatial/seg.h"

namespace modb {

/// A halfsegment record. The cycle/face/link fields are only meaningful
/// inside a Region (set by RegionBuilder); Line leaves them at defaults.
struct HalfSegment {
  Seg seg;
  /// True when the dominating point is the left (smaller) endpoint.
  bool left_dominating = true;
  /// True when the region's interior lies above (for vertical segments:
  /// left of) the segment. Only meaningful inside a Region.
  bool inside_above = false;
  /// Index of the cycle this halfsegment belongs to (Region only).
  int32_t cycle = -1;
  /// Index of the face this halfsegment belongs to (Region only).
  int32_t face = -1;
  /// Index of the next halfsegment in the same cycle (Region only);
  /// realizes the paper's "next-in-cycle" links as array indices.
  int32_t next_in_cycle = -1;

  const Point& DominatingPoint() const {
    return left_dominating ? seg.a() : seg.b();
  }
  const Point& SecondaryPoint() const {
    return left_dominating ? seg.b() : seg.a();
  }
};

/// The ROSE-style total order on halfsegments.
bool HalfSegmentLess(const HalfSegment& s, const HalfSegment& t);

/// Expands segments into their 2n halfsegments in sorted order.
std::vector<HalfSegment> MakeHalfSegments(const std::vector<Seg>& segs);

}  // namespace modb

#endif  // MODB_SPATIAL_HALFSEGMENT_H_
